// Tests for partial evaluation of distribution queries (paper Section 3.1):
// DCASE arm verdicts, redundant DISTRIBUTE detection, RANGE diagnostics and
// use-before-distribution reporting.
#include <gtest/gtest.h>

#include "vf/compile/parteval.hpp"

namespace vf::compile {
namespace {

using query::any_dim;
using query::p_block;
using query::p_col;
using query::p_cyclic;
using query::p_cyclic_any;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{p_block()}; }
AbstractDist cyclicT(dist::Index k) { return TypePattern{p_cyclic(k)}; }

halo::HaloSpec halo1() { return halo::HaloSpec({1}, {1}, false); }

TEST(EvalIdt, ThreeWayVerdicts) {
  DistSet s;
  s.add(blockT());
  EXPECT_EQ(eval_idt(s, TypePattern{p_block()}), ArmVerdict::Always);
  EXPECT_EQ(eval_idt(s, TypePattern{p_cyclic_any()}), ArmVerdict::Never);
  s.add(cyclicT(2));
  EXPECT_EQ(eval_idt(s, TypePattern{p_block()}), ArmVerdict::Maybe);
  EXPECT_EQ(eval_idt(s, TypePattern::wildcard()), ArmVerdict::Always);
}

TEST(EvalIdt, UndistributedBlocksAlways) {
  DistSet s;
  s.undistributed = true;
  s.add(blockT());
  EXPECT_EQ(eval_idt(s, TypePattern{p_block()}), ArmVerdict::Maybe);
}

TEST(PartialEval, DeadAndAlwaysArms) {
  // A is either CYCLIC(2) or CYCLIC(4): a BLOCK arm is dead; a CYCLIC(*)
  // arm always fires (as the first live arm).
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = cyclicT(2)})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(4)); })
      .dcase({"A"}, {{{TypePattern{p_block()}}, nullptr},
                     {{TypePattern{p_cyclic_any()}}, nullptr},
                     {{TypePattern{any_dim()}}, nullptr}});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  ASSERT_EQ(report.dcases.size(), 1u);
  const auto& arms = report.dcases[0].arms;
  ASSERT_EQ(arms.size(), 3u);
  EXPECT_EQ(arms[0], ArmVerdict::Never);
  EXPECT_EQ(arms[1], ArmVerdict::Always);
  EXPECT_EQ(arms[2], ArmVerdict::Never);  // shadowed by the Always arm
}

TEST(PartialEval, MaybeArmsWhenSetsOverlap) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); })
      .dcase({"A"}, {{{TypePattern{p_block()}}, nullptr},
                     {{TypePattern{p_cyclic_any()}}, nullptr}});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  const auto& arms = report.dcases[0].arms;
  EXPECT_EQ(arms[0], ArmVerdict::Maybe);
  EXPECT_EQ(arms[1], ArmVerdict::Maybe);
}

TEST(PartialEval, DefaultArmAlwaysWhenOthersDead) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .dcase({"A"}, {{{TypePattern{p_cyclic_any()}}, nullptr}},
             [](ProgramBuilder&) {});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  const auto& arms = report.dcases[0].arms;
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_EQ(arms[0], ArmVerdict::Never);
  EXPECT_EQ(arms[1], ArmVerdict::Always);  // DEFAULT
}

TEST(PartialEval, MultiSelectorArmNeedsAllSelectors) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .declare(
          {.name = "B", .rank = 1, .dynamic = true, .initial = cyclicT(3)})
      .dcase({"A", "B"},
             {{{TypePattern{p_block()}, TypePattern{p_block()}}, nullptr},
              {{TypePattern{p_block()}, TypePattern{p_cyclic(3)}}, nullptr}});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  const auto& arms = report.dcases[0].arms;
  EXPECT_EQ(arms[0], ArmVerdict::Never);   // B is never BLOCK
  EXPECT_EQ(arms[1], ArmVerdict::Always);  // both selectors certain
}

TEST(PartialEval, RedundantDistributeDetected) {
  // The second DISTRIBUTE BLOCK is provably a no-op: the compile-time
  // counterpart of the Section 3.2.2 rule "data motion is suppressed where
  // data flow analysis ... permits".
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .distribute("A", blockT())
      .distribute("A", cyclicT(2))
      .distribute("A", cyclicT(2));
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_EQ(report.redundant_distributes.size(), 2u);
}

TEST(PartialEval, UnknownParameterIsNotRedundant) {
  // CYCLIC(*) -> CYCLIC(*) cannot be proved redundant (parameters may
  // differ at runtime).
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .distribute("A", TypePattern{p_cyclic_any()})
      .distribute("A", TypePattern{p_cyclic_any()});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.redundant_distributes.empty());
}

TEST(PartialEval, BranchKillsRedundancy) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); })
      .distribute("A", blockT());  // not redundant: CYCLIC(2) may hold
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.redundant_distributes.empty());
}

TEST(PartialEval, PossibleRangeViolationFlagged) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .range = {TypePattern{p_block()}},
             .initial = blockT()})
      .distribute("A", cyclicT(2));
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  ASSERT_EQ(report.possible_range_violations.size(), 1u);
  EXPECT_EQ(report.possible_range_violations[0].second, "A");
}

TEST(PartialEval, InRangeDistributeNotFlagged) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .range = {TypePattern{p_block()}, TypePattern{p_cyclic_any()}},
             .initial = blockT()})
      .distribute("A", cyclicT(2));
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.possible_range_violations.empty());
}

TEST(PartialEval, UseBeforeDistributionReported) {
  ProgramBuilder b;
  b.declare({.name = "B1", .rank = 1, .dynamic = true})
      .use({"B1"}, "early")
      .distribute("B1", blockT())
      .use({"B1"}, "late");
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  ASSERT_EQ(report.use_before_distribution.size(), 1u);
  EXPECT_EQ(report.use_before_distribution[0].first, p.find_label("early"));
}

TEST(PartialEval, AdiPatternStaysPrecise) {
  // The Figure 1 structure: V starts (:, BLOCK), sweeps, remap to
  // (BLOCK, :), sweeps.  At each sweep the analysis knows the exact
  // distribution, so a dcase over V is fully evaluable.
  const AbstractDist colblock = TypePattern{p_col(), p_block()};
  const AbstractDist blockcol = TypePattern{p_block(), p_col()};
  ProgramBuilder b;
  b.declare({.name = "V", .rank = 2, .dynamic = true, .initial = colblock})
      .use({"V"}, "xsweep")
      .distribute("V", blockcol)
      .use({"V"}, "ysweep")
      .dcase({"V"}, {{{TypePattern{p_col(), p_block()}}, nullptr},
                     {{TypePattern{p_block(), p_col()}}, nullptr}});
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_EQ(r.plausible(p.find_label("xsweep"), "V").types[0], colblock);
  EXPECT_EQ(r.plausible(p.find_label("ysweep"), "V").types[0], blockcol);
  auto report = partial_eval(p, r);
  EXPECT_EQ(report.dcases[0].arms[0], ArmVerdict::Never);
  EXPECT_EQ(report.dcases[0].arms[1], ArmVerdict::Always);
}

/// Halo redundancy: a second exchange with only reads in between is
/// provably redundant; a write or a DISTRIBUTE in between makes the next
/// exchange necessary again.
TEST(PartialEvalHalo, BackToBackExchangeIsRedundant) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x1")
      .use({"A"}, "read")
      .exchange_halo("A", "x2")
      .write({"A"}, "store")
      .exchange_halo("A", "x3")
      .distribute("A", cyclicT(2))
      .exchange_halo("A", "x4");
  Program p = b.build();
  auto r = analyze_reaching(p);
  auto report = partial_eval(p, r);
  // Only x2 (reads since x1) is redundant; x1 starts stale, x3 follows a
  // write, and x4 follows a DISTRIBUTE (ghost storage reallocated).
  ASSERT_EQ(report.redundant_halo_exchanges.size(), 1u);
  EXPECT_EQ(report.redundant_halo_exchanges[0], p.find_label("x2"));
  // The declared spec flows into the reaching sets.
  const DistSet& at_read = r.plausible(p.find_label("read"), "A");
  ASSERT_TRUE(at_read.halo.has_value());
  EXPECT_EQ(*at_read.halo, halo1());
  EXPECT_TRUE(at_read.halo_fresh);
}

TEST(PartialEvalHalo, JoinNeedsFreshnessOnEveryPath) {
  // Only the then-branch exchanges: after the join the ghosts may be
  // stale, so the following exchange is NOT redundant.
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .if_else([](ProgramBuilder& t) { t.exchange_halo("A", "maybe"); })
      .exchange_halo("A", "after_join");
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.redundant_halo_exchanges.empty());

  // Both branches exchanging makes the join fresh.
  ProgramBuilder b2;
  b2.declare({.name = "A",
              .rank = 1,
              .dynamic = true,
              .initial = blockT(),
              .halo = halo1()})
      .if_else([](ProgramBuilder& t) { t.exchange_halo("A", "t"); },
               [](ProgramBuilder& e) { e.exchange_halo("A", "e"); })
      .exchange_halo("A", "after_join");
  Program p2 = b2.build();
  auto report2 = partial_eval(p2, analyze_reaching(p2));
  ASSERT_EQ(report2.redundant_halo_exchanges.size(), 1u);
  EXPECT_EQ(report2.redundant_halo_exchanges[0], p2.find_label("after_join"));
}

TEST(PartialEvalHalo, LoopBackEdgeInvalidatesFreshness) {
  // The loop body writes after the exchange, so on the back edge the
  // exchange's ghosts are stale again: the in-loop exchange is needed on
  // every iteration (the classic stencil loop shape).
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .loop([](ProgramBuilder& body) {
        body.exchange_halo("A", "in_loop").write({"A"}, "update");
      });
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.redundant_halo_exchanges.empty());
}

TEST(PartialEvalHalo, OpaqueCallAndProcCallInvalidate) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x1")
      .call_unknown({"A"})
      .exchange_halo("A", "x2");
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  EXPECT_TRUE(report.redundant_halo_exchanges.empty());
}

TEST(PartialEvalHalo, EmptySpecExchangeIsTriviallyRedundant) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo::HaloSpec::none(1)})
      .exchange_halo("A", "noop");
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  ASSERT_EQ(report.redundant_halo_exchanges.size(), 1u);
  EXPECT_EQ(report.redundant_halo_exchanges[0], p.find_label("noop"));
}

/// Under a per-rank (asymmetric) declaration an empty LOCAL spec proves
/// nothing: other ranks may have declared wide ghosts this rank must
/// serve, and a rank-dependent skip of the collective would deadlock --
/// so the empty-spec shortcut is suppressed.  The freshness argument is
/// SPMD-consistent (derived from program structure) and still applies.
TEST(PartialEvalHalo, AsymmetricSpecSuppressesEmptySpecShortcut) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo::HaloSpec::none(1),
             .halo_asymmetric = true})
      .exchange_halo("A", "first")
      .use({"A"}, "read")
      .exchange_halo("A", "second");
  Program p = b.build();
  auto r = analyze_reaching(p);
  auto report = partial_eval(p, r);
  // "first" must NOT be reported (the empty local spec is a rank-local
  // fact); "second" still is, via freshness.
  ASSERT_EQ(report.redundant_halo_exchanges.size(), 1u);
  EXPECT_EQ(report.redundant_halo_exchanges[0], p.find_label("second"));
  // The asymmetry flag flows through the reaching sets.
  EXPECT_TRUE(r.plausible(p.find_label("read"), "A").halo_asymmetric);
}

}  // namespace
}  // namespace vf::compile
