// Lifecycle soak (apps/soak): the sweeping-front + jittered-DISTRIBUTE
// churn scenario must (a) compute exactly what the sequential reference
// computes -- reclamation and eviction never change values -- and
// (b) hold resident bytes on a plateau under budget pressure while the
// caches demonstrably evict and the registry demonstrably sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "spmd_test_util.hpp"
#include "vf/apps/amr_front.hpp"
#include "vf/apps/soak.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::apps {
namespace {

using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Soak, SplitSizesAreExactAndRespectTheFloor) {
  for (int step = 0; step < 200; ++step) {
    const std::vector<dist::Index> s =
        soak_split_sizes(/*n=*/32, /*q=*/2, /*min_seg=*/3, /*seed=*/7, step);
    ASSERT_EQ(s.size(), 2u);
    dist::Index total = 0;
    for (dist::Index w : s) {
      EXPECT_GE(w, 3);
      total += w;
    }
    EXPECT_EQ(total, 32);
  }
}

TEST(Soak, MatchesSequentialReferenceThroughSweeps) {
  SoakConfig cfg;
  cfg.n = 16;
  cfg.steps = 48;
  cfg.sweep_every = 8;
  cfg.sample_every = 16;
  cfg.redist_every = 1;
  const double want = amr_checksum(soak_reference(cfg));

  run_checked(4, [&](Context& ctx, SpmdChecker& ck) {
    const SoakResult res = run_soak(ctx, cfg);
    ck.check_eq(res.checksum, want, ctx.rank(),
                "soak checksum vs sequential reference");
    ck.check(res.sweeps == 6, ctx.rank(), "sweep cadence honored");
    ck.check(res.registry_swept > 0, ctx.rank(),
             "retired descriptors were reclaimed");
  });
}

TEST(Soak, ResidencyPlateausUnderBudgetPressure) {
  SoakConfig cfg;
  cfg.n = 16;
  cfg.steps = 10000;
  cfg.sweep_every = 64;
  cfg.sample_every = 250;
  cfg.redist_every = 1;
  cfg.halo_budget_bytes = std::size_t{64} << 10;
  cfg.plan_budget_bytes = std::size_t{256} << 10;

  run_checked(4, [&](Context& ctx, SpmdChecker& ck) {
    const SoakResult res = run_soak(ctx, cfg);
    // The plateau: the later half of the run must not keep growing.  A
    // leak of even one entry per redistribution would dwarf these bounds
    // (each plan/descriptor is hundreds of bytes, 10^4 steps).
    std::uint64_t first_half_peak = 0;
    std::uint64_t second_half_peak = 0;
    for (std::size_t k = 0; k < res.samples.size(); ++k) {
      const std::uint64_t r =
          res.samples[k].registry_bytes + res.samples[k].cache_bytes;
      (k < res.samples.size() / 2 ? first_half_peak : second_half_peak) =
          std::max(k < res.samples.size() / 2 ? first_half_peak
                                              : second_half_peak,
                   r);
    }
    ck.check(second_half_peak <= first_half_peak + first_half_peak / 4,
             ctx.rank(), "resident bytes plateau (second-half peak within "
                         "25% of first-half peak)");
    ck.check(res.bytes_per_step_slope < 32.0, ctx.rank(),
             "second-half growth slope is flat");
    // The bound is doing work, not vacuously true:
    ck.check(res.halo_evictions + res.plan_evictions > 0, ctx.rank(),
             "budget pressure caused evictions");
    ck.check(res.registry_swept > 0, ctx.rank(), "sweeps reclaimed");
    ck.check(res.halo_plan_hits > 0, ctx.rank(),
             "the cache still serves hits under pressure");
  });
}

}  // namespace
}  // namespace vf::apps
