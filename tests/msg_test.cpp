// Tests for the message-passing substrate: mailboxes, point-to-point,
// collectives, statistics and the cost model.
#include <gtest/gtest.h>

#include <numeric>

#include "spmd_test_util.hpp"
#include "vf/msg/context.hpp"
#include "vf/msg/machine.hpp"
#include "vf/msg/spmd.hpp"

namespace vf {
namespace {

using msg::CommStats;
using msg::Context;
using msg::CostModel;
using msg::Machine;
using msg::ReduceOp;
using testing::run_checked;
using testing::SpmdChecker;

TEST(CostModel, MessageCostIsAffine) {
  CostModel cm{.alpha_us = 100.0, .beta_us_per_byte = 0.5};
  EXPECT_DOUBLE_EQ(cm.message_us(0), 100.0);
  EXPECT_DOUBLE_EQ(cm.message_us(200), 200.0);
}

TEST(CostModel, StatsModeledTime) {
  CommStats s;
  s.data_messages = 4;
  s.data_bytes = 1000;
  CostModel cm{.alpha_us = 10.0, .beta_us_per_byte = 0.1};
  EXPECT_DOUBLE_EQ(s.modeled_us(cm), 4 * 10.0 + 1000 * 0.1);
  EXPECT_DOUBLE_EQ(s.modeled_data_us(cm), s.modeled_us(cm));
  s.ctl_messages = 2;
  s.ctl_bytes = 100;
  EXPECT_DOUBLE_EQ(s.modeled_us(cm), 6 * 10.0 + 1100 * 0.1);
  EXPECT_DOUBLE_EQ(s.modeled_data_us(cm), 4 * 10.0 + 1000 * 0.1);
}

TEST(CostModel, StatsAccumulate) {
  CommStats a{1, 2, 3, 4, 5};
  CommStats b{10, 20, 30, 40, 50};
  CommStats c = a + b;
  EXPECT_EQ(c.data_messages, 11u);
  EXPECT_EQ(c.data_bytes, 22u);
  EXPECT_EQ(c.ctl_messages, 33u);
  EXPECT_EQ(c.ctl_bytes, 44u);
  EXPECT_EQ(c.collectives, 55u);
}

TEST(Mailbox, TryPopMatchesWithoutBlocking) {
  msg::Mailbox box;
  msg::Message out;
  EXPECT_FALSE(box.try_pop(msg::kAnySource, 0, out));  // empty: no block
  box.push(msg::Message{0, 5, {std::byte{1}}});
  box.push(msg::Message{1, 7, {std::byte{2}}});
  EXPECT_FALSE(box.try_pop(0, 7, out));  // (src, tag) must BOTH match
  EXPECT_FALSE(box.try_pop(1, 5, out));
  ASSERT_TRUE(box.try_pop(1, 7, out));
  EXPECT_EQ(out.src, 1);
  EXPECT_EQ(out.payload.at(0), std::byte{2});
  EXPECT_EQ(box.size(), 1u);
  ASSERT_TRUE(box.try_pop(msg::kAnySource, 5, out));
  EXPECT_EQ(out.src, 0);
  EXPECT_FALSE(box.try_pop(msg::kAnySource, 5, out));
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, AnySourcePopsFifoAmongMatching) {
  // The documented guarantee: among messages satisfying the filter,
  // matching is in arrival order -- even with non-matching messages
  // interleaved ahead of them.
  msg::Mailbox box;
  box.push(msg::Message{3, 9, {std::byte{30}}});  // wrong tag, stays queued
  box.push(msg::Message{2, 4, {std::byte{20}}});
  box.push(msg::Message{0, 4, {std::byte{0}}});
  box.push(msg::Message{1, 4, {std::byte{10}}});
  EXPECT_EQ(box.pop(msg::kAnySource, 4).src, 2);
  EXPECT_EQ(box.pop(msg::kAnySource, 4).src, 0);
  EXPECT_EQ(box.pop(msg::kAnySource, 4).src, 1);
  EXPECT_EQ(box.pop(msg::kAnySource, 9).src, 3);
}

TEST(Mailbox, PerSourceFifoWithExplicitSource) {
  msg::Mailbox box;
  for (int k = 0; k < 3; ++k) {
    box.push(msg::Message{0, 1, {std::byte(k)}});
    box.push(msg::Message{1, 1, {std::byte(100 + k)}});
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(box.pop(1, 1).payload.at(0), std::byte(100 + k));
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(box.pop(0, 1).payload.at(0), std::byte(k));
  }
}

TEST(Machine, RejectsNonPositiveProcs) {
  EXPECT_THROW(Machine(0), std::invalid_argument);
  EXPECT_THROW(Machine(-3), std::invalid_argument);
}

TEST(Spmd, EveryRankRuns) {
  std::vector<int> seen(8, 0);
  Machine m(8);
  msg::run_spmd(m, [&](Context& ctx) { seen[ctx.rank()] = 1; });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 8);
}

TEST(Spmd, ExceptionsPropagate) {
  Machine m(3);
  EXPECT_THROW(
      msg::run_spmd(m,
                    [&](Context& ctx) {
                      if (ctx.rank() == 2) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
}

TEST(PointToPoint, RingPassesValues) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int next = (ctx.rank() + 1) % ctx.nprocs();
    const int prev = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
    ctx.send_value<int>(next, 7, ctx.rank() * 10);
    const int got = ctx.recv_value<int>(prev, 7);
    ck.check_eq(got, prev * 10, ctx.rank(), "ring value");
  });
}

TEST(PointToPoint, TagsAreMatched) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, /*tag=*/5, 55);
      ctx.send_value<int>(1, /*tag=*/9, 99);
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      ck.check_eq(ctx.recv_value<int>(0, 9), 99, 1, "tag 9");
      ck.check_eq(ctx.recv_value<int>(0, 5), 55, 1, "tag 5");
    }
  });
}

TEST(PointToPoint, AnySourceReceives) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        auto m = ctx.recv_msg(msg::kAnySource, 1);
        sum += m.src;
      }
      ck.check_eq(sum, 3, 0, "received from both peers");
    } else {
      ctx.send_value<int>(0, 1, ctx.rank());
    }
  });
}

TEST(PointToPoint, VectorPayloadRoundTrips) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      std::vector<double> v(100);
      std::iota(v.begin(), v.end(), 0.5);
      ctx.send<double>(1, 3, v);
    } else {
      auto v = ctx.recv<double>(0, 3);
      ck.check_eq(v.size(), std::size_t{100}, 1, "size");
      ck.check_eq(v[99], 99.5, 1, "last element");
    }
  });
}

TEST(PointToPoint, StatsCountSenderSide) {
  Machine m(2);
  msg::run_spmd(m, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<std::byte> payload(64);
      ctx.send_bytes(1, 0, payload);
      ctx.send_bytes(1, 0, payload);
    } else {
      (void)ctx.recv_bytes(0, 0);
      (void)ctx.recv_bytes(0, 0);
    }
  });
  EXPECT_EQ(m.stats(0).data_messages, 2u);
  EXPECT_EQ(m.stats(0).data_bytes, 128u);
  EXPECT_EQ(m.stats(1).data_messages, 0u);
}

TEST(Collectives, Barrier) {
  // A barrier between two phases forces phase-1 sends to be visible.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    ctx.send_value<int>((ctx.rank() + 1) % 4, 1, ctx.rank());
    ctx.barrier();
    ck.check_eq(ctx.machine().mailbox(ctx.rank()).size(), std::size_t{1},
                ctx.rank(), "message waiting after barrier");
    (void)ctx.recv_value<int>(msg::kAnySource, 1);
  });
}

TEST(Collectives, Broadcast) {
  run_checked(5, [](Context& ctx, SpmdChecker& ck) {
    const double v = ctx.broadcast(ctx.rank() == 2 ? 3.25 : -1.0, 2);
    ck.check_eq(v, 3.25, ctx.rank(), "broadcast value");
  });
}

TEST(Collectives, AllreduceSumMinMax) {
  run_checked(6, [](Context& ctx, SpmdChecker& ck) {
    const int r = ctx.rank();
    ck.check_eq(ctx.allreduce(r, ReduceOp::Sum), 15, r, "sum");
    ck.check_eq(ctx.allreduce(r, ReduceOp::Min), 0, r, "min");
    ck.check_eq(ctx.allreduce(r, ReduceOp::Max), 5, r, "max");
  });
}

TEST(Collectives, AllreduceVector) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    std::vector<long> v{static_cast<long>(ctx.rank()), 1, 100};
    auto r = ctx.allreduce_vec(v, ReduceOp::Sum);
    ck.check_eq(r[0], 3L, ctx.rank(), "sum of ranks");
    ck.check_eq(r[1], 3L, ctx.rank(), "sum of ones");
    ck.check_eq(r[2], 300L, ctx.rank(), "sum of hundreds");
  });
}

TEST(Collectives, Allgather) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    auto all = ctx.allgather<int>(ctx.rank() * ctx.rank());
    for (int p = 0; p < 4; ++p) {
      ck.check_eq(all[static_cast<std::size_t>(p)], p * p, ctx.rank(),
                  "allgather slot");
    }
  });
}

TEST(Collectives, AllgatherVariableLengths) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank()), ctx.rank());
    auto all = ctx.allgather_vec(mine);
    for (int p = 0; p < 3; ++p) {
      ck.check_eq(all[static_cast<std::size_t>(p)].size(),
                  static_cast<std::size_t>(p), ctx.rank(), "length");
    }
  });
}

TEST(Collectives, AlltoallvExchangesPersonalizedData) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int np = ctx.nprocs();
    std::vector<std::vector<int>> out(static_cast<std::size_t>(np));
    for (int d = 0; d < np; ++d) {
      // Send d copies of my rank to rank d.
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d),
                                              ctx.rank());
    }
    auto in = ctx.alltoallv(std::move(out));
    for (int s = 0; s < np; ++s) {
      auto& v = in[static_cast<std::size_t>(s)];
      ck.check_eq(v.size(), static_cast<std::size_t>(ctx.rank()), ctx.rank(),
                  "count from " + std::to_string(s));
      for (int x : v) ck.check_eq(x, s, ctx.rank(), "value from sender");
    }
  });
}

TEST(Collectives, AlltoallvEmptyPayloadsSendNoDataMessages) {
  Machine m(4);
  msg::run_spmd(m, [](Context& ctx) {
    std::vector<std::vector<int>> out(4);
    if (ctx.rank() == 0) out[1] = {1, 2, 3};
    auto in = ctx.alltoallv(std::move(out));
    if (ctx.rank() == 1) {
      if (in[0].size() != 3) throw std::runtime_error("bad payload");
    }
  });
  // Only one non-empty pair (0 -> 1): exactly one data message in total.
  EXPECT_EQ(m.total_stats().data_messages, 1u);
  EXPECT_EQ(m.total_stats().data_bytes, 3 * sizeof(int));
  EXPECT_GT(m.total_stats().ctl_messages, 0u);
}

TEST(Collectives, InterleavedCollectivesStayMatched) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    for (int iter = 0; iter < 10; ++iter) {
      const int s = ctx.allreduce(1, ReduceOp::Sum);
      ck.check_eq(s, 3, ctx.rank(), "sum stays 3");
      const int b = ctx.broadcast(ctx.rank() == 0 ? iter : -1, 0);
      ck.check_eq(b, iter, ctx.rank(), "broadcast iteration");
    }
  });
}

TEST(PointToPoint, RecvValueRejectsEmptyPayloadWithProtocolError) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_bytes(1, 11, {});  // zero bytes where one element is expected
    } else {
      try {
        (void)ctx.recv_value<int>(0, 11);
        ck.fail("expected runtime_error");
      } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        ck.check(what.find("src=0") != std::string::npos, 1, what);
        ck.check(what.find("tag=11") != std::string::npos, 1, what);
      }
    }
  });
}

TEST(Collectives, TagSpaceExhaustionFailsLoudly) {
  // Near the top of the sequence space collectives still work (the last
  // usable tag is INT_MIN exactly); one step beyond throws instead of
  // silently recycling tags that may still have pending messages.
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    ctx.skip_coll_tags(Context::kMaxCollSeq - 1);
    ck.check_eq(ctx.allreduce(1, ReduceOp::Sum), 2, ctx.rank(),
                "collective near the tag-space edge");
    // allreduce consumed seq kMaxCollSeq-1 and kMaxCollSeq; the space is
    // now exhausted on every rank.
    try {
      (void)ctx.broadcast(1, 0);
      ck.fail("expected overflow_error");
    } catch (const std::overflow_error&) {
    }
  });
}

TEST(Machine, ResetStatsClearsCounters) {
  Machine m(2);
  msg::run_spmd(m, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 0, 1);
    } else {
      (void)ctx.recv_value<int>(0, 0);
    }
  });
  EXPECT_GT(m.total_stats().data_messages, 0u);
  m.reset_stats();
  EXPECT_EQ(m.total_stats().data_messages, 0u);
}

TEST(Machine, MaxRankModeledTime) {
  Machine m(2, CostModel{.alpha_us = 1.0, .beta_us_per_byte = 0.0});
  msg::run_spmd(m, [](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int k = 0; k < 5; ++k) ctx.send_value<int>(1, 0, k);
    } else {
      for (int k = 0; k < 5; ++k) (void)ctx.recv_value<int>(0, 0);
    }
  });
  EXPECT_DOUBLE_EQ(m.max_rank_modeled_us(), 5.0);
}

}  // namespace
}  // namespace vf
