// Seeded SPMD-deterministic cross-layer fuzz of the halo subsystem under
// per-rank ASYMMETRIC overlap specs (and uniform ones, for the clipping
// semantics they keep): random contiguous distribution x random per-rank
// spec x random DISTRIBUTE flips, with every exchange_overlap result
// compared BITWISE against the sequential reference -- the array holds a
// global fingerprint field, so after an exchange every ghost cell this
// rank's spec says is filled must hold exactly the fingerprint of its
// global index, every ghost cell outside the filled regions must be
// untouched (zero), and every owned cell must still fingerprint (data
// preservation through flips and set_overlap storage reshapes).
//
// The expected filled widths are re-derived INDEPENDENTLY here (nearest
// non-empty neighbour coordinate per dimension, clipped by its owned
// count) rather than through halo::filled_widths, so a bug there cannot
// vindicate itself.  Machines cover P in {1, 4, 9} with grid and line
// processor arrays, domain extents small enough to produce degenerate
// one-plane segments and coordinates owning nothing at all.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "halo_fuzz_util.hpp"
#include "spmd_test_util.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::draw_specs;
using testing::expected_fill;
using testing::Fill;
using testing::fingerprint;
using testing::FuzzConfig;
using testing::kFuzzConfigs;
using testing::random_dist;
using testing::RankSpec;
using testing::specs_valid;
using testing::SpmdChecker;

/// Verifies every ghost region of `a` against the fingerprint field:
/// filled cells hold their global fingerprint bitwise, unfilled ghost
/// cells (inside the declared widths but beyond the filled ones, or
/// corner cells without the corners flag) hold 0 -- nothing may write
/// them.
void verify_ghosts(DistArray<double>& a, const RankSpec& mine, Context& ctx,
                   SpmdChecker& ck, const std::string& tag) {
  const dist::Distribution& d = a.distribution();
  const dist::LocalLayout& L = a.layout();
  if (!L.member || L.total == 0) return;
  const IndexDomain& dom = a.domain();
  const Fill fill = expected_fill(mine, d, L);
  dist::Range seg[2];
  for (int dim = 0; dim < 2; ++dim) {
    const auto s = d.dim_map(dim).segment(static_cast<int>(L.coords[dim]));
    if (!s) return;
    seg[dim] = *s;
  }
  // Walk every cell of the declared ghost frame (the allocated padding).
  for (Index i0 = seg[0].lo - mine.lo[0]; i0 <= seg[0].hi + mine.hi[0];
       ++i0) {
    for (Index i1 = seg[1].lo - mine.lo[1]; i1 <= seg[1].hi + mine.hi[1];
         ++i1) {
      const bool own0 = seg[0].contains(i0);
      const bool own1 = seg[1].contains(i1);
      if (own0 && own1) continue;  // owned cells checked elsewhere
      const bool in0 = own0 || (i0 < seg[0].lo
                                    ? seg[0].lo - i0 <= fill.lo[0]
                                    : i0 - seg[0].hi <= fill.hi[0]);
      const bool in1 = own1 || (i1 < seg[1].lo
                                    ? seg[1].lo - i1 <= fill.lo[1]
                                    : i1 - seg[1].hi <= fill.hi[1]);
      const int ghost_dims = (own0 ? 0 : 1) + (own1 ? 0 : 1);
      const bool filled =
          in0 && in1 && (ghost_dims == 1 || mine.corners);
      const double got = a.halo({i0, i1});
      const double want =
          filled ? fingerprint(dom.linearize({i0, i1})) : 0.0;
      if (!(got == want)) {
        ck.fail("[rank " + std::to_string(ctx.rank()) + "] " + tag +
                " ghost (" + std::to_string(i0) + "," + std::to_string(i1) +
                ") = " + std::to_string(got) + ", want " +
                std::to_string(want) + (filled ? " (filled)" : " (unfilled)"));
      }
    }
  }
}

void verify_owned(DistArray<double>& a, Context& ctx, SpmdChecker& ck,
                  const std::string& tag) {
  const IndexDomain& dom = a.domain();
  a.for_owned([&](const IndexVec& i, const double& v) {
    if (!(v == fingerprint(dom.linearize(i)))) {
      ck.fail("[rank " + std::to_string(ctx.rank()) + "] " + tag +
              " owned " + i.to_string() + " lost its fingerprint");
    }
  });
}

void run_chain(const FuzzConfig& cfg, unsigned seed) {
  constexpr int kSteps = 6;
  msg::Machine machine(cfg.nprocs);
  SpmdChecker ck;
  msg::run_spmd(machine, [&](Context& ctx) {
    std::mt19937 rng(seed);
    Env env(ctx, cfg.grid ? dist::ProcessorArray::grid(cfg.q0, cfg.q1)
                          : dist::ProcessorArray::line(cfg.nprocs));
    const Index n0 = 2 + static_cast<Index>(rng() % 8);
    const Index n1 = 2 + static_cast<Index>(rng() % 8);
    const IndexDomain dom = IndexDomain::of_extents({n0, n1});
    DistArray<double> a(env,
                        {.name = "F",
                         .domain = dom,
                         .dynamic = true,
                         .initial = random_dist(rng, cfg, n0, n1)});
    a.init([&](const IndexVec& i) { return fingerprint(dom.linearize(i)); });

    bool asymmetric = rng() % 2 == 0;
    std::vector<RankSpec> specs =
        draw_specs(rng, cfg.nprocs, asymmetric, a.distribution());
    const auto apply_specs = [&]() {
      const RankSpec& mine =
          specs[static_cast<std::size_t>(ctx.rank())];
      a.set_overlap(mine.lo, mine.hi, mine.corners, asymmetric);
    };
    apply_specs();

    for (int step = 0; step < kSteps; ++step) {
      const std::string tag =
          std::string(cfg.name) + " seed " + std::to_string(seed) +
          " step " + std::to_string(step);
      switch (rng() % 3) {
        case 0: {
          // Re-declare the overlap (the refinement front moved).
          asymmetric = rng() % 2 == 0;
          specs = draw_specs(rng, cfg.nprocs, asymmetric, a.distribution());
          apply_specs();
          break;
        }
        case 1: {
          // DISTRIBUTE flip.  Keep the current spec family when it is
          // still strictly servable under the new mapping (exercises
          // family reuse across descriptor swaps); redraw otherwise.
          a.distribute(random_dist(rng, cfg, n0, n1));
          if (asymmetric && !specs_valid(specs, a.distribution(),
                                         cfg.nprocs)) {
            specs = draw_specs(rng, cfg.nprocs, asymmetric,
                               a.distribution());
            apply_specs();
          }
          break;
        }
        default:
          break;  // plain repeat exchange (plan-cache replay)
      }
      a.exchange_overlap();
      verify_ghosts(a, specs[static_cast<std::size_t>(ctx.rank())], ctx, ck,
                    tag);
      verify_owned(a, ctx, ck, tag);
    }
  });
  ck.expect_clean();
}

class HaloFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(HaloFuzz, ExchangeMatchesSequentialReference) {
  for (const FuzzConfig& cfg : kFuzzConfigs) {
    run_chain(cfg, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaloFuzz, ::testing::Range(1u, 11u));

/// Cross-layer leg: a PARTI halo-aware gather under an asymmetric family
/// serves overlap-area reads from ghost storage (zero transport) with the
/// values the asymmetric exchange placed there.
TEST(HaloFuzz, AsymmetricHaloSatisfiedGather) {
  constexpr int kP = 4;
  msg::Machine machine(kP);
  SpmdChecker ck;
  msg::run_spmd(machine, [&](Context& ctx) {
    Env env(ctx, dist::ProcessorArray::line(kP));
    const Index n = 16;
    const IndexDomain dom = IndexDomain::of_extents({n});
    DistArray<double> a(env, {.name = "G",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([&](const IndexVec& i) { return fingerprint(dom.linearize(i)); });
    // Rank r asks for (r % 3) + 1 ghost planes on each side: widths 1..3
    // against 4-cell segments, different on every rank.
    const Index w = static_cast<Index>(ctx.rank() % 3) + 1;
    a.set_overlap({w}, {w}, false, /*asymmetric=*/true);
    a.exchange_overlap();

    // Request every cell within my filled reach (owned + ghost planes).
    const auto seg = a.distribution().dim_map(0).segment(
        static_cast<int>(a.layout().coords[0]));
    if (!seg) {
      ck.fail("BLOCK rank owns no segment");
      return;
    }
    std::vector<IndexVec> pts;
    for (Index i = std::max<Index>(1, seg->lo - w);
         i <= std::min<Index>(n, seg->hi + w); ++i) {
      pts.push_back({i});
    }
    parti::Schedule sched(ctx, a.dist_handle(), pts, a.halo_spec());
    ck.check(sched.n_unique_offproc() == 0, ctx.rank(),
             "asymmetric halo reads still travelled");
    ck.check(sched.n_halo() > 0, ctx.rank(), "no halo-satisfied points");
    std::vector<double> out(pts.size());
    sched.gather(ctx, a, out);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ck.check_eq(out[k], fingerprint(dom.linearize(pts[k])), ctx.rank(),
                  "halo gather value");
    }
  });
  ck.expect_clean();
}

}  // namespace
}  // namespace vf::rt
