// Tests for procedure-boundary distribution semantics (paper Sections 3
// and 5): implicit redistribution of actual arguments to match formal
// declarations, and the Vienna Fortran vs HPF difference in what happens
// on return.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"
#include "vf/rt/procedure.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Procedure, ExplicitFormalRedistributesOnEntry) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([&](const IndexVec& i) { return 1.0 * dom.linearize(i); });
    const auto report = call_procedure(
        {{&a, FormalArg::with_type(DistributionType{cyclic(1)})}},
        ArgReturnMode::ReturnNewDistribution, [&] {
          // Inside the procedure the dummy is CYCLIC.
          ck.check(query::range_allows(
                       {query::TypePattern{query::p_cyclic(1)}},
                       a.distribution().type()),
                   ctx.rank(), "dummy distribution");
          a.for_owned([&](const IndexVec& i, double& v) {
            ck.check_eq(v, 1.0 * dom.linearize(i), ctx.rank(),
                        "values moved in");
          });
        });
    ck.check_eq(report.entry_redistributions, 1, ctx.rank(), "one entry");
    ck.check_eq(report.exit_restores, 0, ctx.rank(), "no restore (VF)");
    // Vienna Fortran semantics: the new distribution is returned.
    ck.check_eq(a.distribution().type().dim(0).kind,
                dist::DimDistKind::Cyclic, ctx.rank(), "returned new dist");
  });
}

TEST(Procedure, HpfModeRestoresCallerDistribution) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([&](const IndexVec& i) { return 1.0 * dom.linearize(i); });
    const auto report = call_procedure(
        {{&a, FormalArg::with_type(DistributionType{cyclic(1)})}},
        ArgReturnMode::RestoreOnExit, [] {});
    ck.check_eq(report.entry_redistributions, 1, ctx.rank(), "entry");
    ck.check_eq(report.exit_restores, 1, ctx.rank(), "restored (HPF)");
    ck.check_eq(a.distribution().type().dim(0).kind,
                dist::DimDistKind::Block, ctx.rank(), "caller dist back");
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 1.0 * dom.linearize(i), ctx.rank(), "values intact");
    });
  });
}

TEST(Procedure, MatchingFormalSkipsRedistribution) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    const auto report = call_procedure(
        {{&a, FormalArg::with_type(DistributionType{block()})}},
        ArgReturnMode::RestoreOnExit, [] {});
    ck.check_eq(report.entry_redistributions, 0, ctx.rank(), "no motion");
    ck.check_eq(report.exit_restores, 0, ctx.rank(), "no restore");
  });
}

TEST(Procedure, InheritedFormalAcceptsAnything) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{cyclic(3)}});
    const auto report =
        call_procedure({{&a, FormalArg::inherited()}},
                       ArgReturnMode::RestoreOnExit, [&] {
                         ck.check_eq(a.distribution().type().dim(0).cyclic_block,
                                     dist::Index{3}, ctx.rank(), "unchanged");
                       });
    ck.check_eq(report.entry_redistributions, 0, ctx.rank(), "none");
  });
}

TEST(Procedure, MatchFormalRejectsWrongDistribution) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    try {
      call_procedure(
          {{&a, FormalArg::matching(query::TypePattern{query::p_cyclic_any()})}},
          ArgReturnMode::ReturnNewDistribution, [] {});
      ck.fail("expected ArgumentMismatchError");
    } catch (const ArgumentMismatchError&) {
    }
    // Matching pattern passes without data motion.
    const auto report = call_procedure(
        {{&a, FormalArg::matching(query::TypePattern{query::p_block()})}},
        ArgReturnMode::ReturnNewDistribution, [] {});
    ck.check_eq(report.entry_redistributions, 0, ctx.rank(), "no motion");
  });
}

TEST(Procedure, CalleeRedistributionVisibleOrRestored) {
  // The callee itself executes a DISTRIBUTE; VF returns it, HPF undoes it.
  for (const auto mode : {ArgReturnMode::ReturnNewDistribution,
                          ArgReturnMode::RestoreOnExit}) {
    run_checked(4, [mode](Context& ctx, SpmdChecker& ck) {
      Env env(ctx);
      DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({16}),
                                .dynamic = true,
                                .initial = DistributionType{block()}});
      a.fill(5.0);
      const auto report = call_procedure(
          {{&a, FormalArg::inherited()}}, mode, [&] {
            a.distribute(DistributionType{cyclic(2)});
          });
      const auto kind = a.distribution().type().dim(0).kind;
      if (mode == ArgReturnMode::ReturnNewDistribution) {
        ck.check_eq(kind, dist::DimDistKind::Cyclic, ctx.rank(),
                    "VF returns callee's distribution");
        ck.check_eq(report.exit_restores, 0, ctx.rank(), "no restore");
      } else {
        ck.check_eq(kind, dist::DimDistKind::Block, ctx.rank(),
                    "HPF restores caller's distribution");
        ck.check_eq(report.exit_restores, 1, ctx.rank(), "one restore");
      }
      ck.check_eq(a.reduce(msg::ReduceOp::Sum), 16 * 5.0, ctx.rank(),
                  "values survive either way");
    });
  }
}

TEST(Procedure, MultipleArgumentsBoundIndependently) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({12});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{cyclic(1)}});
    const auto report = call_procedure(
        {{&a, FormalArg::with_type(DistributionType{cyclic(1)})},
         {&b, FormalArg::with_type(DistributionType{cyclic(1)})}},
        ArgReturnMode::RestoreOnExit, [] {});
    // A needed motion, B already matched.
    ck.check_eq(report.entry_redistributions, 1, ctx.rank(), "only A moved");
    ck.check_eq(report.exit_restores, 1, ctx.rank(), "only A restored");
  });
}

TEST(Procedure, StaticActualForExplicitFormalThrows) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .initial = DistributionType{block()}});
    try {
      call_procedure(
          {{&a, FormalArg::with_type(DistributionType{cyclic(1)})}},
          ArgReturnMode::ReturnNewDistribution, [] {});
      ck.fail("expected logic_error (static actual)");
    } catch (const std::logic_error&) {
    }
  });
}

}  // namespace
}  // namespace vf::rt
