// Tests for Distribution: application of distribution types to arrays and
// processor sections (paper Section 2.2), ownership, local layout and the
// loc_map access function (Section 3.2.1).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "vf/dist/distribution.hpp"

namespace vf::dist {
namespace {

ProcessorSection line(int p) {
  return ProcessorSection(ProcessorArray::line(p));
}

ProcessorSection grid(int r, int c) {
  return ProcessorSection(ProcessorArray::grid(r, c));
}

TEST(Distribution, Block1D) {
  Distribution d(IndexDomain::of_extents({100}), {block()}, line(4));
  EXPECT_EQ(d.owner_rank({1}), 0);
  EXPECT_EQ(d.owner_rank({25}), 0);
  EXPECT_EQ(d.owner_rank({26}), 1);
  EXPECT_EQ(d.owner_rank({100}), 3);
  EXPECT_EQ(d.local_size(0), 25);
  EXPECT_EQ(d.local_size(3), 25);
}

TEST(Distribution, RejectsRankMismatch) {
  // Expression rank must match array rank.
  EXPECT_THROW(
      Distribution(IndexDomain::of_extents({10, 10}), {block()}, line(2)),
      std::invalid_argument);
  // Distributed dims must match section free rank.
  EXPECT_THROW(Distribution(IndexDomain::of_extents({10, 10}),
                            {block(), block()}, line(2)),
               std::invalid_argument);
  EXPECT_THROW(
      Distribution(IndexDomain::of_extents({10}), {block()}, grid(2, 2)),
      std::invalid_argument);
}

TEST(Distribution, Example1FromPaper) {
  // REAL C(10,10,10) DIST(BLOCK, BLOCK, :) TO R(1:2,1:2)
  // delta_C(i,j,k) = R(ceil(i/5), ceil(j/5)) for all k.
  Distribution d(IndexDomain::of_extents({10, 10, 10}),
                 {block(), block(), col()}, grid(2, 2));
  ProcessorArray r = ProcessorArray::grid(2, 2);
  for (Index i : {1, 5, 6, 10}) {
    for (Index j : {1, 5, 6, 10}) {
      for (Index k : {1, 10}) {
        const Index pi = (i + 4) / 5;
        const Index pj = (j + 4) / 5;
        EXPECT_EQ(d.owner_rank({i, j, k}), r.machine_rank({pi, pj}))
            << i << "," << j << "," << k;
      }
    }
  }
  // Each processor owns a 5x5x10 brick.
  for (int p = 0; p < 4; ++p) EXPECT_EQ(d.local_size(p), 250);
}

TEST(Distribution, ColumnDistribution) {
  // (:, BLOCK): columns spread blockwise, rows local (the ADI layout).
  Distribution d(IndexDomain::of_extents({8, 8}), {col(), block()}, line(4));
  for (Index j = 1; j <= 8; ++j) {
    const int owner = d.owner_rank({1, j});
    for (Index i = 2; i <= 8; ++i) {
      EXPECT_EQ(d.owner_rank({i, j}), owner) << "whole column same owner";
    }
  }
  EXPECT_EQ(d.owner_rank({5, 1}), 0);
  EXPECT_EQ(d.owner_rank({5, 3}), 1);
  EXPECT_EQ(d.local_size(2), 16);
}

TEST(Distribution, MixedBlockCyclic) {
  Distribution d(IndexDomain::of_extents({12, 12}), {block(), cyclic(2)},
                 grid(3, 2));
  // dim 0: blocks of 4 onto 3 row-procs; dim 1: cyclic(2) onto 2 col-procs.
  ProcessorArray r = ProcessorArray::grid(3, 2);
  EXPECT_EQ(d.owner_rank({1, 1}), r.machine_rank({1, 1}));
  EXPECT_EQ(d.owner_rank({5, 3}), r.machine_rank({2, 2}));
  EXPECT_EQ(d.owner_rank({12, 5}), r.machine_rank({3, 1}));
}

TEST(Distribution, GenBlockFromBounds) {
  // B_BLOCK(BOUNDS) with BOUNDS = cumulative upper bounds (the PIC usage).
  Distribution d(IndexDomain::of_extents({10}), {b_block({3, 7, 10})},
                 line(3));
  EXPECT_EQ(d.owner_rank({3}), 0);
  EXPECT_EQ(d.owner_rank({4}), 1);
  EXPECT_EQ(d.owner_rank({7}), 1);
  EXPECT_EQ(d.owner_rank({8}), 2);
  EXPECT_EQ(d.local_size(0), 3);
  EXPECT_EQ(d.local_size(1), 4);
  EXPECT_EQ(d.local_size(2), 3);
}

TEST(Distribution, GenBlockBoundsValidation) {
  EXPECT_THROW(Distribution(IndexDomain::of_extents({10}),
                            {b_block({3, 7, 9})}, line(3)),
               std::invalid_argument);
  EXPECT_THROW(Distribution(IndexDomain::of_extents({10}),
                            {b_block({3, 7})}, line(3)),
               std::invalid_argument);
}

TEST(Distribution, TotalityAndDisjointness2D) {
  // Every index point has exactly one owner, and local sizes sum to the
  // domain size.
  const IndexDomain dom = IndexDomain::of_extents({9, 14});
  Distribution d(dom, {cyclic(3), block()}, grid(2, 3));
  std::map<int, Index> counts;
  for (Index i = 1; i <= 9; ++i) {
    for (Index j = 1; j <= 14; ++j) {
      counts[d.owner_rank({i, j})]++;
    }
  }
  Index total = 0;
  for (auto& [rank, n] : counts) {
    EXPECT_EQ(n, d.local_size(rank)) << "rank " << rank;
    total += n;
  }
  EXPECT_EQ(total, dom.size());
}

TEST(Distribution, LocMapIsDenseBijection) {
  const IndexDomain dom = IndexDomain::of_extents({7, 11});
  Distribution d(dom, {block(), cyclic(2)}, grid(2, 2));
  for (int p = 0; p < 4; ++p) {
    const LocalLayout L = d.layout_for(p);
    ASSERT_TRUE(L.member);
    std::set<Index> offsets;
    d.for_owned(p, [&](const IndexVec& i) {
      const Index off = d.local_offset(L, i);
      EXPECT_GE(off, 0);
      EXPECT_LT(off, L.total);
      EXPECT_TRUE(offsets.insert(off).second) << "duplicate offset";
    });
    EXPECT_EQ(static_cast<Index>(offsets.size()), L.total);
  }
}

TEST(Distribution, ForOwnedVisitsInColumnMajorOrder) {
  Distribution d(IndexDomain::of_extents({4, 4}), {block(), col()}, line(2));
  std::vector<IndexVec> visited;
  d.for_owned(1, [&](const IndexVec& i) { visited.push_back(i); });
  ASSERT_EQ(visited.size(), 8u);
  EXPECT_EQ(visited[0], (IndexVec{3, 1}));
  EXPECT_EQ(visited[1], (IndexVec{4, 1}));
  EXPECT_EQ(visited[2], (IndexVec{3, 2}));
  EXPECT_EQ(visited.back(), (IndexVec{4, 4}));
}

TEST(Distribution, LayoutForNonMemberRank) {
  ProcessorArray r = ProcessorArray::line(8);
  ProcessorSection s(r, {SectionDim::all(Range{1, 4})});
  Distribution d(IndexDomain::of_extents({16}), {block()}, s);
  EXPECT_EQ(d.local_size(5), 0);
  EXPECT_FALSE(d.layout_for(5).member);
  EXPECT_EQ(d.local_size(3), 4);
}

TEST(Distribution, SectionOffsetsMachineRanks) {
  // Distribute onto processors 4..7 of an 8-proc line.
  ProcessorArray r = ProcessorArray::line(8);
  ProcessorSection s(r, {SectionDim::all(Range{5, 8})});
  Distribution d(IndexDomain::of_extents({8}), {block()}, s);
  EXPECT_EQ(d.owner_rank({1}), 4);
  EXPECT_EQ(d.owner_rank({8}), 7);
}

TEST(Distribution, SameMappingDetectsNoops) {
  const IndexDomain dom = IndexDomain::of_extents({24});
  Distribution a(dom, {block()}, line(4));
  Distribution b(dom, {block()}, line(4));
  Distribution c(dom, {cyclic(6)}, line(4));
  EXPECT_TRUE(a.same_mapping(b));
  // CYCLIC(6) of 24 on 4 procs: blocks 1-6,7-12,13-18,19-24 -> same
  // ownership as BLOCK, and same local ordering.
  EXPECT_TRUE(a.same_mapping(c));
  Distribution e(dom, {cyclic(1)}, line(4));
  EXPECT_FALSE(a.same_mapping(e));
}

TEST(Distribution, RankAffineMatchesOwnerRank) {
  Distribution d(IndexDomain::of_extents({10, 12}), {block(), cyclic(3)},
                 grid(2, 3));
  const auto& a = d.rank_affine();
  for (Index i = 1; i <= 10; ++i) {
    for (Index j = 1; j <= 12; ++j) {
      Index rk = a.base;
      rk += a.stride[0] * d.dim_map(0).proc_of(i);
      rk += a.stride[1] * d.dim_map(1).proc_of(j);
      EXPECT_EQ(static_cast<int>(rk), d.owner_rank({i, j}));
    }
  }
}

// Property sweep: totality + loc_map density for a family of 2-D
// distributions.
struct DistCase {
  std::string label;
  DistributionType type;
  int pr, pc;  // processor grid (pc==0 -> line of pr)
  Index n0, n1;
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, TotalOwnershipAndDenseLocMap) {
  const auto& tc = GetParam();
  const IndexDomain dom({Range{1, tc.n0}, Range{1, tc.n1}});
  ProcessorSection sec =
      tc.pc == 0 ? line(tc.pr) : grid(tc.pr, tc.pc);
  Distribution d(dom, tc.type, sec);

  std::map<int, std::set<Index>> per_rank;
  for (Index i = 1; i <= tc.n0; ++i) {
    for (Index j = 1; j <= tc.n1; ++j) {
      const int p = d.owner_rank({i, j});
      const LocalLayout L = d.layout_for(p);
      ASSERT_TRUE(L.member);
      const Index off = d.local_offset(L, {i, j});
      ASSERT_GE(off, 0) << tc.label;
      ASSERT_LT(off, L.total) << tc.label;
      EXPECT_TRUE(per_rank[p].insert(off).second)
          << tc.label << ": offset collision at (" << i << "," << j << ")";
    }
  }
  Index total = 0;
  for (auto& [p, offs] : per_rank) {
    EXPECT_EQ(static_cast<Index>(offs.size()), d.local_size(p)) << tc.label;
    total += static_cast<Index>(offs.size());
  }
  EXPECT_EQ(total, dom.size()) << tc.label;
}

std::vector<DistCase> dist_cases() {
  return {
      {"block_col_line3", {block(), col()}, 3, 0, 10, 7},
      {"col_block_line3", {col(), block()}, 3, 0, 10, 7},
      {"cyclic1_col_line4", {cyclic(1), col()}, 4, 0, 13, 5},
      {"block_block_2x2", {block(), block()}, 2, 2, 9, 9},
      {"block_cyclic2_2x3", {block(), cyclic(2)}, 2, 3, 8, 13},
      {"cyclic3_cyclic1_3x2", {cyclic(3), cyclic(1)}, 3, 2, 11, 6},
      {"genblock_col_line4",
       {s_block({5, 0, 4, 6}), col()}, 4, 0, 15, 4},
      {"col_col_line1", {col(), col()}, 1, 0, 6, 6},
  };
}

INSTANTIATE_TEST_SUITE_P(Family, DistributionProperty,
                         ::testing::ValuesIn(dist_cases()),
                         [](const ::testing::TestParamInfo<DistCase>& pinfo) {
                           return pinfo.param.label;
                         });

}  // namespace
}  // namespace vf::dist
