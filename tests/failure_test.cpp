// Failure-injection tests: every documented error path of the public API
// must throw the documented exception type and must not corrupt state that
// is observable afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>

#include "spmd_test_util.hpp"
#include "vf/compile/parteval.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/parti/translation_table.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf {
namespace {

using dist::block;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using msg::Context;
using rt::DistArray;
using rt::Env;
using testing::run_checked;
using testing::run_checked_on;
using testing::SpmdChecker;

TEST(Failure, EnvRejectsOversizedProcessorArray) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    try {
      Env env(ctx, dist::ProcessorArray::line(8));  // machine has 2
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Failure, DuplicateGenBlockSizesRejected) {
  EXPECT_THROW(dist::DimMap::gen_block(dist::Range{1, 4}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)dist::s_block({}), std::invalid_argument);
  EXPECT_THROW((void)dist::b_block({}), std::invalid_argument);
  EXPECT_THROW((void)dist::b_block({5, 3}), std::invalid_argument);
  EXPECT_THROW((void)dist::cyclic(0), std::invalid_argument);
  EXPECT_THROW((void)dist::indirect(std::vector<int>{}), std::invalid_argument);
}

TEST(Failure, ArrayStateSurvivesRangeViolation) {
  // A rejected DISTRIBUTE must leave the old distribution and data intact.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(
        env, {.name = "A",
              .domain = IndexDomain::of_extents({16}),
              .dynamic = true,
              .initial = DistributionType{block()},
              .range = {query::TypePattern{query::p_block()},
                        query::TypePattern{query::p_gen_block()}}});
    a.init([](const dist::IndexVec& i) { return 1.0 * i[0]; });
    try {
      a.distribute(DistributionType{cyclic(1)});
      ck.fail("expected RangeViolationError");
    } catch (const rt::RangeViolationError&) {
    }
    ck.check_eq(a.distribution().type().dim(0).kind, dist::DimDistKind::Block,
                ctx.rank(), "old descriptor intact");
    a.for_owned([&](const dist::IndexVec& i, double& v) {
      ck.check_eq(v, 1.0 * i[0], ctx.rank(), "data intact");
    });
    // And the class remains usable afterwards.
    a.distribute(DistributionType{dist::s_block({4, 4, 4, 4})});
    a.for_owned([&](const dist::IndexVec& i, double& v) {
      ck.check_eq(v, 1.0 * i[0], ctx.rank(), "data moves after recovery");
    });
  });
}

TEST(Failure, OrphanedConnectClassRejectsDistribute) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    auto b = std::make_unique<DistArray<int>>(
        env, DistArray<int>::Spec{.name = "B",
                                  .domain = IndexDomain::of_extents({8}),
                                  .dynamic = true,
                                  .initial = DistributionType{block()}});
    DistArray<int> a(env,
                     {.name = "A",
                      .domain = IndexDomain::of_extents({8}),
                      .dynamic = true},
                     rt::Connection::extraction(*b));
    b.reset();  // primary dies first: the class is orphaned
    try {
      a.distribute(DistributionType{cyclic(1)});
      ck.fail("expected logic_error (orphaned class)");
    } catch (const std::logic_error&) {
    }
  });
}

TEST(Failure, AccessOutsideDomainThrows) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    try {
      (void)a.distribution().owner_rank({9});
      ck.fail("expected out_of_range");
    } catch (const std::out_of_range&) {
    }
    try {
      (void)a.distribution().owner_rank({0});
      ck.fail("expected out_of_range");
    } catch (const std::out_of_range&) {
    }
  });
}

TEST(Failure, ScheduleRejectsOutOfDomainPoints) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    // The inspector validates every point against the target domain
    // before planting anything in its serve/request structures, and the
    // error names the offending point.
    try {
      parti::Schedule s(ctx, a.dist_handle(), {{99}});
      ck.fail("expected out_of_range");
    } catch (const std::out_of_range& e) {
      ck.check(std::string(e.what()).find("(99)") != std::string::npos,
               ctx.rank(), "error message names the point");
    }
    // Below-range and zero (the domain is 1-based) fail the same way.
    try {
      parti::Schedule s(ctx, a.dist_handle(), {{1}, {0}});
      ck.fail("expected out_of_range for index 0");
    } catch (const std::out_of_range&) {
    }
    // A point whose rank does not match the domain is out of domain too.
    try {
      parti::Schedule s(ctx, a.dist_handle(), {{1, 1}});
      ck.fail("expected out_of_range for rank mismatch");
    } catch (const std::out_of_range&) {
    }
    // Both ranks threw before communicating; the machine is still usable,
    // and a valid schedule built afterwards works.
    ctx.barrier();
    a.init([](const dist::IndexVec& i) { return 2.0 * i[0]; });
    parti::Schedule good(ctx, a.dist_handle(),
                         {{static_cast<dist::Index>(1 + ctx.rank() * 4)}});
    std::vector<double> out(1);
    good.gather(ctx, a, out);
    ck.check_eq(out[0], 2.0 * (1 + ctx.rank() * 4), ctx.rank(),
                "machine usable after rejected inspectors");
  });
}

TEST(Failure, ScheduleRejectsOutOfDomainPoints2D) {
  // Per-dimension validity is not enough: each component may lie inside
  // its own dimension's range of SOME point while the tuple as a whole is
  // outside the domain (wrong rank), or one component strays while the
  // others are fine.  The inspector must catch all of it up front.
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({6, 4}),
                           .dynamic = true,
                           .initial = DistributionType{block(), dist::col()}});
    for (const dist::IndexVec bad :
         {dist::IndexVec{7, 1}, dist::IndexVec{1, 5}, dist::IndexVec{3}}) {
      try {
        parti::Schedule s(ctx, a.dist_handle(), {bad});
        ck.fail("expected out_of_range for " + bad.to_string());
      } catch (const std::out_of_range&) {
      }
    }
    ctx.barrier();
  });
}

TEST(Failure, TranslationTableRejectsBadQueries) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    parti::TranslationTable t(ctx, 8, [](dist::Index) { return 0; });
    try {
      (void)t.page_owner(8);
      ck.fail("expected out_of_range");
    } catch (const std::out_of_range&) {
    }
    try {
      (void)t.page_owner(-1);
      ck.fail("expected out_of_range");
    } catch (const std::out_of_range&) {
    }
  });
}

TEST(Failure, DcaseRunWithUndistributedSelectorThrows) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true});
    try {
      (void)query::dcase({&b}).otherwise([] {}).run();
      ck.fail("expected NotDistributedError");
    } catch (const rt::NotDistributedError&) {
    }
  });
}

TEST(Failure, BuilderRejectsUndeclaredArrays) {
  compile::ProgramBuilder b;
  EXPECT_THROW(b.distribute("ghost", query::TypePattern::wildcard()),
               std::invalid_argument);
  EXPECT_THROW(b.use({"ghost"}), std::invalid_argument);
  EXPECT_THROW(b.dcase({"ghost"}, {}), std::invalid_argument);
  b.declare({.name = "A", .rank = 1, .dynamic = true});
  EXPECT_THROW(b.declare({.name = "A", .rank = 1, .dynamic = true}),
               std::invalid_argument);
}

TEST(Failure, AlltoallvSizeMismatchThrows) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    std::vector<std::vector<int>> wrong(1);  // should be nprocs()==2
    try {
      (void)ctx.alltoallv(std::move(wrong));
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Failure, IndexVecOverflowThrows) {
  EXPECT_THROW((dist::IndexVec{1, 2, 3, 4, 5}), std::length_error);
  EXPECT_THROW((void)dist::IndexDomain::of_extents({1, 2, 3, 4, 5}),
               std::length_error);
}

/// Asymmetric overlap negative paths: a set_overlap whose width vectors
/// do not match the array rank (or carry negative widths) must throw
/// without corrupting the array, which stays usable afterwards.
TEST(Failure, SetOverlapRejectsBadWidths) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env,
                        {.name = "A",
                         .domain = IndexDomain::of_extents({8, 6}),
                         .dynamic = true,
                         .initial = DistributionType{block(), dist::col()}});
    a.init([](const dist::IndexVec& i) {
      return static_cast<double>(i[0] * 10 + i[1]);
    });
    try {
      a.set_overlap({1}, {1});  // rank-1 widths on a rank-2 array
      ck.fail("expected invalid_argument (rank mismatch)");
    } catch (const std::invalid_argument&) {
    }
    try {
      a.set_overlap({1, -1}, {1, 0});
      ck.fail("expected invalid_argument (negative width)");
    } catch (const std::invalid_argument&) {
    }
    // State intact: a legal declaration and exchange still work, and the
    // owned values survived the rejected calls.
    a.set_overlap({1, 0}, {1, 0}, false, /*asymmetric=*/true);
    a.exchange_overlap();
    a.for_owned([&](const dist::IndexVec& i, const double& v) {
      ck.check_eq(v, static_cast<double>(i[0] * 10 + i[1]), ctx.rank(),
                  "owned value after rejected set_overlap");
    });
  });
}

/// Ghost-satisfied points are read-only under asymmetric specs too: a
/// halo-aware schedule that planted overlap reads must reject scatter
/// executors, and stay usable for gathers afterwards.
TEST(Failure, AsymmetricGhostScatterRejected) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([&](const dist::IndexVec& i) {
      return static_cast<double>(dom.linearize(i)) + 0.5;
    });
    const dist::Index w = ctx.rank() == 0 ? 1 : 2;  // per-rank widths
    a.set_overlap({w}, {w}, false, /*asymmetric=*/true);
    a.exchange_overlap();
    // One owned point and one filled ghost point per rank.
    const dist::Index ghost = ctx.rank() == 0 ? 5 : 3;
    std::vector<dist::IndexVec> pts{{ctx.rank() == 0 ? 2 : 6}, {ghost}};
    parti::Schedule sched(ctx, a.dist_handle(), pts, a.halo_spec());
    ck.check(sched.n_halo() == 1, ctx.rank(), "expected one halo point");
    std::vector<double> in(pts.size(), 1.0);
    try {
      sched.scatter(ctx, in, a);
      ck.fail("expected logic_error (scatter through ghost region)");
    } catch (const std::logic_error&) {
    }
    std::vector<double> out(pts.size());
    sched.gather(ctx, a, out);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ck.check_eq(out[k],
                  static_cast<double>(dom.linearize(pts[k])) + 0.5,
                  ctx.rank(), "gather after rejected scatter");
    }
  });
}

/// The asymmetric spec contract is exact: a rank requesting a ghost wider
/// than its neighbour's owned segment is rejected at plan time with a
/// clear error (every rank throws identically -- the family is
/// replicated -- so no rank hangs in the exchange), and the machine is
/// usable after shrinking the width.
TEST(Failure, AsymmetricGhostWiderThanNeighbourSegmentThrows) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({4});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const dist::IndexVec& i) { return 1.0 * i[0]; });
    // BLOCK of 4 over 4 ranks: one cell each.  Rank 1 asks for 2 low
    // ghost planes; rank 0 owns only 1.
    a.set_overlap({ctx.rank() == 1 ? 2 : 1}, {1}, false,
                  /*asymmetric=*/true);
    try {
      a.exchange_overlap();
      ck.fail("expected invalid_argument (ghost wider than neighbour)");
    } catch (const std::invalid_argument& e) {
      ck.check(std::string(e.what()).find("owns only") != std::string::npos,
               ctx.rank(), std::string("unclear error: ") + e.what());
    }
    // Shrinking the request makes the family servable again.
    a.set_overlap({1}, {1}, false, /*asymmetric=*/true);
    a.exchange_overlap();
    a.for_owned([&](const dist::IndexVec& i, const double& v) {
      ck.check_eq(v, 1.0 * i[0], ctx.rank(), "owned value after recovery");
    });
  });
}

// ---- abort-fence containment: rank-local failures no longer deadlock ------

/// A single rank throwing out of its body (while every peer sits in a
/// collective) used to deadlock the machine; the fence now wakes the peers
/// with RankAbort and run_spmd rethrows the origin's ORIGINAL error type.
TEST(Failure, LoneRankThrowIsContained) {
  msg::Machine m(4);
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 2) throw std::out_of_range("rank 2 local failure");
      (void)ctx.allreduce(1, msg::ReduceOp::Sum);  // peers block here
    });
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "rank 2 local failure");
  }
  const msg::FailureReport rep = m.last_failure_report();
  EXPECT_TRUE(rep.any_failed);
  EXPECT_EQ(rep.origin_rank, 2);
  for (const msg::RankFailure& f : rep.ranks) {
    EXPECT_TRUE(f.failed) << "rank " << f.rank;
    if (f.rank != 2) {
      EXPECT_EQ(f.abort_origin, 2) << "rank " << f.rank;
    }
  }
  EXPECT_EQ(m.fence_trips(), 1u);
}

/// Context::abort trips the fence explicitly: peers blocked in a barrier
/// wake with the origin's reason.
TEST(Failure, ContextAbortPropagatesToAllRanks) {
  msg::Machine m(4);
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 1) ctx.abort("unrecoverable input on rank 1");
      ctx.barrier();
    });
    FAIL() << "expected RankAbort";
  } catch (const msg::RankAbort& e) {
    EXPECT_EQ(e.origin_rank, 1);
    EXPECT_EQ(e.reason, "unrecoverable input on rank 1");
  }
  for (const msg::RankFailure& f : m.last_failure_report().ranks) {
    EXPECT_TRUE(f.failed);
    EXPECT_EQ(f.abort_origin, 1);
  }
}

/// Plan-time validation failure on ONE rank only: rank 0 hands the
/// inspector an out-of-domain point while the others build a valid
/// schedule and block in its collectives.  Pre-fence this required every
/// rank to throw identically; now the lone bad rank aborts the machine
/// and the original out_of_range surfaces.
TEST(Failure, InspectorBadPointOnOneRankIsContained) {
  msg::Machine m(4);
  EXPECT_THROW(
      msg::run_spmd(m,
                    [](Context& ctx) {
                      Env env(ctx);
                      DistArray<double> a(
                          env, {.name = "A",
                                .domain = IndexDomain::of_extents({16}),
                                .dynamic = true,
                                .initial = DistributionType{block()}});
                      a.init([](const dist::IndexVec& i) { return 1.0 * i[0]; });
                      const dist::IndexVec pt =
                          ctx.rank() == 0 ? dist::IndexVec{99}
                                          : dist::IndexVec{1};
                      parti::Schedule s(ctx, a.dist_handle(), {pt});
                      std::vector<double> out(1);
                      s.gather(ctx, a, out);
                    }),
      std::out_of_range);
  EXPECT_EQ(m.last_failure_report().origin_rank, 0);
}

/// Too-wide ghost with ASYMMETRIC handling: ranks 1-3 let the plan-time
/// invalid_argument propagate, rank 0 catches it locally and walks into a
/// barrier.  The fence turns rank 0's barrier into a secondary RankAbort
/// instead of a deadlock, and run_spmd still rethrows the original
/// invalid_argument.
TEST(Failure, TooWideGhostWithLocalCatchOnOneRank) {
  msg::Machine m(4);
  EXPECT_THROW(
      msg::run_spmd(
          m,
          [](Context& ctx) {
            Env env(ctx);
            DistArray<double> a(env,
                                {.name = "A",
                                 .domain = IndexDomain::of_extents({4}),
                                 .dynamic = true,
                                 .initial = DistributionType{block()}});
            a.init([](const dist::IndexVec& i) { return 1.0 * i[0]; });
            // One cell per rank; rank 1 requests 2 low ghost planes.
            a.set_overlap({ctx.rank() == 1 ? 2 : 1}, {1}, false,
                          /*asymmetric=*/true);
            if (ctx.rank() == 0) {
              try {
                a.exchange_overlap();
              } catch (const std::invalid_argument&) {
                // Swallowed locally -- pre-fence this rank would now hang
                // forever in the barrier below.
              }
              ctx.barrier();
            } else {
              a.exchange_overlap();
              ctx.barrier();
            }
          }),
      std::invalid_argument);
  const msg::FailureReport rep = m.last_failure_report();
  EXPECT_TRUE(rep.any_failed);
  EXPECT_NE(rep.origin_rank, 0);  // rank 0 swallowed its own error
  const msg::RankFailure& r0 = rep.ranks.at(0);
  EXPECT_TRUE(r0.failed);
  EXPECT_EQ(r0.abort_origin, rep.origin_rank);
}

/// A count mismatch sends nothing, so nothing throws -- only the recv
/// watchdog can surface it.  The deadlock report must name what the stuck
/// rank was blocked on.
TEST(Failure, CountMismatchSurfacesViaWatchdog) {
  msg::Machine m(2);
  m.set_recv_watchdog(std::chrono::milliseconds(300));
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) {
        (void)ctx.recv_bytes(1, 7);  // rank 1 never sends
      }
    });
    FAIL() << "expected RankAbort";
  } catch (const msg::RankAbort& e) {
    EXPECT_EQ(e.origin_rank, 0);
    EXPECT_NE(e.reason.find("recv watchdog expired"), std::string::npos)
        << e.reason;
    EXPECT_NE(e.reason.find("blocked in recv(src=1, tag=7)"),
              std::string::npos)
        << e.reason;
  }
}

/// Watchdog coverage for barriers: a rank that never arrives is reported
/// with the blocked ranks' barrier generation.
TEST(Failure, MissingBarrierArrivalSurfacesViaWatchdog) {
  msg::Machine m(2);
  m.set_recv_watchdog(std::chrono::milliseconds(300));
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) ctx.barrier();  // rank 1 never arrives
    });
    FAIL() << "expected RankAbort";
  } catch (const msg::RankAbort& e) {
    EXPECT_NE(e.reason.find("blocked in barrier"), std::string::npos)
        << e.reason;
  }
  m.set_recv_watchdog(std::chrono::milliseconds(0));
}

/// The machine is reusable after an aborted run: reset_failure_state
/// clears queued frames, link sequences and the fence, so a healthy run
/// on the same machine completes with correct results.
TEST(Failure, MachineIsReusableAfterAbort) {
  msg::Machine m(4);
  EXPECT_THROW(msg::run_spmd(m,
                             [](Context& ctx) {
                               if (ctx.rank() == 3) {
                                 throw std::runtime_error("boom");
                               }
                               // Peers with in-flight traffic and a
                               // collective in progress when the fence
                               // trips.
                               ctx.send_value(3, 5, ctx.rank());
                               (void)ctx.allreduce(1, msg::ReduceOp::Sum);
                             }),
               std::runtime_error);
  EXPECT_EQ(m.fence_trips(), 1u);
  run_checked_on(m, [](Context& ctx, SpmdChecker& ck) {
    const int sum = ctx.allreduce(ctx.rank(), msg::ReduceOp::Sum);
    ck.check_eq(sum, 6, ctx.rank(), "allreduce after reset");
    const int right = (ctx.rank() + 1) % ctx.nprocs();
    const int left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
    ctx.send_value(right, 9, ctx.rank());
    ck.check_eq(ctx.recv_value<int>(left, 9), left, ctx.rank(),
                "point-to-point after reset");
  });
  EXPECT_FALSE(m.last_failure_report().any_failed);
}

}  // namespace
}  // namespace vf
