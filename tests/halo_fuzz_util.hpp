// Shared generators for the halo fuzz harnesses (halo_fuzz_test and
// split_phase_test): seeded random contiguous distributions, per-rank
// overlap specs with the asymmetric admission rule re-derived
// independently of halo::filled_widths, and the expected filled widths of
// one rank's ghost frame.  Everything is SPMD-deterministic -- all ranks
// drawing from the same seed see the same values.
#pragma once

#include <algorithm>
#include <random>
#include <vector>

#include "vf/dist/distribution.hpp"

namespace vf::testing {

inline double fingerprint(dist::Index lin) {
  return static_cast<double>(lin) + 1.5;
}

struct FuzzConfig {
  const char* name;
  int nprocs;
  bool grid;  ///< grid(q, q) with q = sqrt(nprocs), else line(nprocs)
  int q0;     ///< coordinates in dimension 0
  int q1;     ///< coordinates in dimension 1 (1 = collapsed)
};

inline constexpr FuzzConfig kFuzzConfigs[] = {
    {"p1", 1, true, 1, 1},
    {"grid4", 4, true, 2, 2},
    {"line4", 4, false, 4, 1},
    {"grid9", 9, true, 3, 3},
};

/// Random contiguous per-dimension distribution over `q` coordinates:
/// BLOCK or a random S_BLOCK partition (zeros allowed -- coordinates that
/// own nothing).
inline dist::DimDist random_contiguous(std::mt19937& rng, dist::Index extent,
                                       int q) {
  if (q == 1 || rng() % 2 == 0) return dist::block();
  std::vector<dist::Index> sizes(static_cast<std::size_t>(q), 0);
  dist::Index rest = extent;
  for (int c = 0; c < q - 1; ++c) {
    sizes[static_cast<std::size_t>(c)] =
        static_cast<dist::Index>(rng() % (rest + 1));
    rest -= sizes[static_cast<std::size_t>(c)];
  }
  sizes[static_cast<std::size_t>(q - 1)] = rest;
  return dist::s_block(std::move(sizes));
}

inline dist::DistributionType random_dist(std::mt19937& rng,
                                          const FuzzConfig& cfg,
                                          dist::Index n0, dist::Index n1) {
  if (cfg.grid) {
    return dist::DistributionType{random_contiguous(rng, n0, cfg.q0),
                                  random_contiguous(rng, n1, cfg.q1)};
  }
  // Processor line: one distributed dimension, the other collapsed.
  if (rng() % 2 == 0) {
    return dist::DistributionType{random_contiguous(rng, n0, cfg.nprocs),
                                  dist::col()};
  }
  return dist::DistributionType{dist::col(),
                                random_contiguous(rng, n1, cfg.nprocs)};
}

/// Largest strictly-servable ghost width per dimension: the smallest
/// non-zero owned count among the dimension's coordinates (capped at 3 to
/// keep regions small).  Asymmetric specs must respect this; uniform
/// specs may exceed it and get clipped.
inline dist::Index width_cap(const dist::Distribution& d, int dim) {
  const dist::DimMap& m = d.dim_map(dim);
  dist::Index cap = 3;
  for (int c = 0; c < m.nprocs(); ++c) {
    if (m.count_on(c) > 0) cap = std::min(cap, m.count_on(c));
  }
  return cap;
}

struct RankSpec {
  dist::IndexVec lo;
  dist::IndexVec hi;
  bool corners = false;
};

/// Draws one spec per rank (identically on every rank: the rng is SPMD-
/// shared).  `asymmetric` draws independent per-rank widths bounded by
/// the strict caps; uniform draws one shared spec with unbounded widths
/// in [0, 3] (clipping allowed there).
inline std::vector<RankSpec> draw_specs(std::mt19937& rng, int np,
                                        bool asymmetric,
                                        const dist::Distribution& d) {
  using dist::Index;
  std::vector<RankSpec> specs(static_cast<std::size_t>(np));
  const Index cap0 = width_cap(d, 0);
  const Index cap1 = width_cap(d, 1);
  const bool corners = rng() % 2 == 0;
  if (!asymmetric) {
    RankSpec s{{static_cast<Index>(rng() % 4), static_cast<Index>(rng() % 4)},
               {static_cast<Index>(rng() % 4), static_cast<Index>(rng() % 4)},
               corners};
    for (auto& out : specs) out = s;
    return specs;
  }
  for (auto& out : specs) {
    out = RankSpec{{static_cast<Index>(rng() % (cap0 + 1)),
                    static_cast<Index>(rng() % (cap1 + 1))},
                   {static_cast<Index>(rng() % (cap0 + 1)),
                    static_cast<Index>(rng() % (cap1 + 1))},
                   corners};
  }
  return specs;
}

/// Whether every rank's spec is strictly servable under `d` (the
/// asymmetric-plan admission rule, recomputed independently).
inline bool specs_valid(const std::vector<RankSpec>& specs,
                        const dist::Distribution& d, int np) {
  using dist::Index;
  for (int p = 0; p < np; ++p) {
    const dist::LocalLayout L = d.layout_for(p);
    if (!L.member || L.total == 0) continue;
    for (int dim = 0; dim < 2; ++dim) {
      const dist::DimMap& m = d.dim_map(dim);
      const int c = static_cast<int>(L.coords[dim]);
      const auto neighbour_count = [&](int step) -> Index {
        for (int x = c + step; x >= 0 && x < m.nprocs(); x += step) {
          if (m.count_on(x) > 0) return m.count_on(x);
        }
        return -1;  // no neighbour: any width is fine (region absent)
      };
      const Index nl = neighbour_count(-1);
      const Index nh = neighbour_count(+1);
      if (specs[static_cast<std::size_t>(p)].lo[dim] > 0 && nl >= 0 &&
          nl < specs[static_cast<std::size_t>(p)].lo[dim]) {
        return false;
      }
      if (specs[static_cast<std::size_t>(p)].hi[dim] > 0 && nh >= 0 &&
          nh < specs[static_cast<std::size_t>(p)].hi[dim]) {
        return false;
      }
    }
  }
  return true;
}

/// Independently derived filled widths of one rank: own declared width
/// clipped by the nearest non-empty neighbour's owned count, 0 without a
/// neighbour.
struct Fill {
  dist::Index lo[2] = {0, 0};
  dist::Index hi[2] = {0, 0};
};

inline Fill expected_fill(const RankSpec& mine, const dist::Distribution& d,
                          const dist::LocalLayout& L) {
  Fill f;
  for (int dim = 0; dim < 2; ++dim) {
    const dist::DimMap& m = d.dim_map(dim);
    const int c = static_cast<int>(L.coords[dim]);
    for (int x = c - 1; x >= 0; --x) {
      if (m.count_on(x) > 0) {
        f.lo[dim] = std::min(mine.lo[dim], m.count_on(x));
        break;
      }
    }
    for (int x = c + 1; x < m.nprocs(); ++x) {
      if (m.count_on(x) > 0) {
        f.hi[dim] = std::min(mine.hi[dim], m.count_on(x));
        break;
      }
    }
  }
  return f;
}

}  // namespace vf::testing
