// Tests for the PARTI-style runtime support (paper Section 3.2, [15]):
// distributed translation tables and inspector/executor schedules.
#include <gtest/gtest.h>

#include <random>

#include "spmd_test_util.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/parti/translation_table.hpp"

namespace vf::parti {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::Distribution;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using rt::DistArray;
using rt::Env;
using testing::run_checked;
using testing::SpmdChecker;

TEST(TranslationTable, PagesAreBlockDistributed) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    TranslationTable t(ctx, 10, [](Index i) { return static_cast<int>(i % 3); });
    // ceil(10/4) = 3 entries per page.
    const std::size_t expect =
        ctx.rank() < 3 ? 3u : 1u;
    ck.check_eq(t.local_page().size(), expect, ctx.rank(), "page size");
    ck.check_eq(t.page_owner(0), 0, ctx.rank(), "page 0");
    ck.check_eq(t.page_owner(9), 3, ctx.rank(), "page 3");
  });
}

TEST(TranslationTable, DereferenceAnswersFromRemotePages) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const Index n = 64;
    TranslationTable t(ctx, n,
                       [](Index i) { return static_cast<int>((i * 7) % 4); });
    // Every rank queries a different scattered subset.
    std::vector<Index> queries;
    for (Index i = ctx.rank(); i < n; i += 5) queries.push_back(i);
    auto owners = t.dereference(ctx, queries);
    ck.check_eq(owners.size(), queries.size(), ctx.rank(), "answer count");
    for (std::size_t k = 0; k < queries.size(); ++k) {
      ck.check_eq(owners[k], static_cast<int>((queries[k] * 7) % 4),
                  ctx.rank(), "owner of " + std::to_string(queries[k]));
    }
  });
}

TEST(TranslationTable, MatchesClosedFormDistribution) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const IndexDomain dom = IndexDomain::of_extents({12, 4});
    Distribution d(dom, {cyclic(2), col()},
                   dist::ProcessorSection(dist::ProcessorArray::line(4)));
    TranslationTable t(ctx, d);
    std::vector<Index> queries;
    for (Index i = 0; i < dom.size(); i += 3) queries.push_back(i);
    auto owners = t.dereference(ctx, queries);
    for (std::size_t k = 0; k < queries.size(); ++k) {
      ck.check_eq(owners[k], d.owner_rank(dom.delinearize(queries[k])),
                  ctx.rank(), "table vs closed form");
    }
  });
}

TEST(Schedule, GatherFetchesRemoteValues) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({32});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 10.0 * i[0]; });
    // Every rank wants the 8 elements "opposite" to its own segment.
    std::vector<IndexVec> wanted;
    const Index base = ((ctx.rank() + 2) % 4) * 8 + 1;
    for (Index k = 0; k < 8; ++k) wanted.push_back({base + k});
    Schedule s(ctx, a.dist_handle(), wanted);
    ck.check_eq(s.n_points(), std::size_t{8}, ctx.rank(), "points");
    ck.check_eq(s.n_local(), std::size_t{0}, ctx.rank(), "all remote");
    std::vector<double> out(8);
    s.gather(ctx, a, out);
    for (Index k = 0; k < 8; ++k) {
      ck.check_eq(out[static_cast<std::size_t>(k)], 10.0 * (base + k),
                  ctx.rank(), "gathered value");
    }
  });
}

TEST(Schedule, DuplicateRequestsTravelOnce) {
  msg::Machine m(2);
  msg::run_spmd(m, [](Context& ctx) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 1.0 * i[0]; });
    // Rank 0 asks for element 5 (owned by rank 1) four times.
    std::vector<IndexVec> wanted;
    if (ctx.rank() == 0) {
      wanted = {{5}, {5}, {5}, {5}};
    }
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    Schedule s(ctx, a.dist_handle(), wanted);
    if (ctx.rank() == 0 && s.n_unique_offproc() != 1) {
      throw std::runtime_error("dedup failed");
    }
    std::vector<double> out(wanted.size());
    s.gather(ctx, a, out);
    for (double v : out) {
      if (v != 5.0) throw std::runtime_error("bad gather value");
    }
  });
  // Data traffic: 1 id (8B) in the inspector + 1 value (8B) in the
  // executor; duplicates add nothing.
  EXPECT_EQ(m.total_stats().data_bytes, 16u);
}

TEST(Schedule, GatherMixedLocalAndRemote) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16, 4});
    DistArray<int> a(env, {.name = "A",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{block(), col()}});
    a.init([](const IndexVec& i) {
      return static_cast<int>(100 * i[0] + i[1]);
    });
    // A stencil-like pattern: my rows plus one remote row.
    std::vector<IndexVec> wanted;
    const Index my_first = 4 * ctx.rank() + 1;
    wanted.push_back({my_first, 1});                       // local
    wanted.push_back({(my_first + 4 - 1) % 16 + 1, 2});    // mostly remote
    wanted.push_back({my_first, 3});                       // local
    Schedule s(ctx, a.dist_handle(), wanted);
    std::vector<int> out(wanted.size());
    s.gather(ctx, a, out);
    for (std::size_t k = 0; k < wanted.size(); ++k) {
      ck.check_eq(out[k],
                  static_cast<int>(100 * wanted[k][0] + wanted[k][1]),
                  ctx.rank(), "value " + std::to_string(k));
    }
  });
}

TEST(Schedule, ScatterWritesRemoteValues) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({32});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.fill(0.0);
    // Rank r writes to the segment of rank (r+1)%4.
    std::vector<IndexVec> targets;
    const Index base = ((ctx.rank() + 1) % 4) * 8 + 1;
    for (Index k = 0; k < 8; ++k) targets.push_back({base + k});
    Schedule s(ctx, a.dist_handle(), targets);
    std::vector<double> vals;
    for (Index k = 0; k < 8; ++k) {
      vals.push_back(100.0 * ctx.rank() + static_cast<double>(k));
    }
    s.scatter(ctx, std::span<const double>(vals), a);
    ctx.barrier();
    // My segment was written by rank (me+3)%4.
    const int writer = (ctx.rank() + 3) % 4;
    a.for_owned([&](const IndexVec& i, double& v) {
      const Index k = (i[0] - 1) % 8;
      ck.check_eq(v, 100.0 * writer + static_cast<double>(k), ctx.rank(),
                  "scattered value at " + i.to_string());
    });
  });
}

TEST(Schedule, ScatterAddAccumulatesAllContributions) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<long> a(env, {.name = "A",
                            .domain = IndexDomain::of_extents({4}),
                            .dynamic = true,
                            .initial = DistributionType{block()}});
    a.fill(0);
    // Every rank adds 1 to every element, twice (duplicates must count).
    std::vector<IndexVec> targets = {{1}, {2}, {3}, {4}, {1}, {2}, {3}, {4}};
    Schedule s(ctx, a.dist_handle(), targets);
    std::vector<long> ones(targets.size(), 1);
    s.scatter_add(ctx, std::span<const long>(ones), a);
    ctx.barrier();
    a.for_owned([&](const IndexVec& i, long& v) {
      ck.check_eq(v, 8L, ctx.rank(), "sum at " + i.to_string());
    });
  });
}

TEST(Schedule, ReusedScheduleSeesUpdatedData) {
  // The inspector/executor split: one inspection, many executions.
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    std::vector<IndexVec> wanted = {{1}, {8}};
    Schedule s(ctx, a.dist_handle(), wanted);
    std::vector<double> out(2);
    for (int round = 0; round < 3; ++round) {
      a.init([&](const IndexVec& i) {
        return 10.0 * round + static_cast<double>(i[0]);
      });
      ctx.barrier();
      s.gather(ctx, a, out);
      ck.check_eq(out[0], 10.0 * round + 1.0, ctx.rank(), "round value 1");
      ck.check_eq(out[1], 10.0 * round + 8.0, ctx.rank(), "round value 8");
    }
  });
}

TEST(Schedule, ExecutorBufferSizeIsValidated) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    Schedule s(ctx, a.dist_handle(), {{1}, {2}});
    std::vector<double> wrong(3);
    try {
      s.gather(ctx, a, std::span<double>(wrong));
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
      // Re-synchronize: the other rank entered the collective.  Use a
      // correctly sized buffer to drain it.
    }
    std::vector<double> right(2);
    s.gather(ctx, a, right);
  });
}

TEST(Schedule, MultiArrayBindingCacheServesSeveralArrays) {
  // One schedule, several arrays with the identical interned descriptor:
  // alternating executors must not re-translate offsets on every call
  // (the ROADMAP multi-array binding item), and every array still gets
  // correct data.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({40});
    const DistributionType t{cyclic(2)};
    DistArray<int> a(env, {.name = "A", .domain = dom, .initial = t});
    DistArray<int> b(env, {.name = "B", .domain = dom, .initial = t});
    DistArray<int> c(env, {.name = "C", .domain = dom, .initial = t});
    ck.check(a.dist_handle() == b.dist_handle(), ctx.rank(),
             "identical specs intern to one descriptor");
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    b.init([](const IndexVec& i) { return static_cast<int>(100 + i[0]); });
    c.init([](const IndexVec& i) { return static_cast<int>(200 + i[0]); });

    std::vector<IndexVec> wanted;
    for (Index g = 1 + ctx.rank(); g <= 40; g += 4) wanted.push_back({g});
    Schedule s(ctx, a.dist_handle(), wanted);
    std::vector<int> out(wanted.size());
    for (int round = 0; round < 3; ++round) {
      for (DistArray<int>* arr : {&a, &b, &c}) {
        s.gather(ctx, *arr, out);
        const int base = arr == &a ? 0 : (arr == &b ? 100 : 200);
        for (std::size_t k = 0; k < wanted.size(); ++k) {
          ck.check_eq(out[k], base + static_cast<int>(wanted[k][0]),
                      ctx.rank(), "multi-array gather");
        }
      }
    }
    ck.check_eq(s.n_bound_arrays(), std::size_t{3}, ctx.rank(),
                "three bindings cached");
    ck.check_eq(s.binding_misses(), std::uint64_t{3}, ctx.rank(),
                "one translation per array");
    ck.check_eq(s.binding_hits(), std::uint64_t{6}, ctx.rank(),
                "later rounds hit the binding cache");
  });
}

TEST(Schedule, BindingCachePurgesStaleEntriesAcrossFlips) {
  // Repeated DISTRIBUTE flips between mapping-equivalent spellings swap
  // the array's descriptor handle without moving data, so the schedule
  // keeps serving it -- through a fresh binding each flip.  The stale
  // (serial, old-handle) entries must be purged on the miss path, or each
  // flip leaks one of the kBindingCapacity slots until LRU eviction and
  // can squeeze out live bindings of other arrays.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 3.0 * i[0]; });
    // A second array with the same descriptor: its binding must survive
    // A's flips.
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    b.init([](const IndexVec& i) { return 1000.0 + i[0]; });

    std::vector<IndexVec> wanted;
    for (Index g = 1 + ctx.rank(); g <= 16; g += 4) wanted.push_back({g});
    Schedule s(ctx, a.dist_handle(), wanted);
    std::vector<double> out(wanted.size());
    s.gather(ctx, b, out);  // bind B once, up front

    // Four spellings of the identical BLOCK mapping over 4 ranks; each
    // interns to a distinct handle, so each flip is an adopt-descriptor
    // swap (no data motion) that invalidates A's previous binding.
    std::vector<int> owners;
    for (int p = 0; p < 4; ++p) {
      for (int k = 0; k < 4; ++k) owners.push_back(p);
    }
    const std::vector<DistributionType> spellings = {
        DistributionType{dist::s_block({4, 4, 4, 4})},
        DistributionType{dist::block()},
        DistributionType{dist::b_block({4, 8, 12, 16})},
        DistributionType{dist::indirect(owners)},
    };
    for (int round = 0; round < 4; ++round) {
      for (const auto& t : spellings) {
        a.distribute(t);
        s.gather(ctx, a, out);
        for (std::size_t k = 0; k < wanted.size(); ++k) {
          ck.check_eq(out[k], 3.0 * wanted[k][0], ctx.rank(),
                      "gather across spelling flip");
        }
        ck.check(s.n_bound_arrays() <= 2, ctx.rank(),
                 "stale bindings purged (A keeps exactly one slot)");
      }
    }
    // B's binding never went stale and must still be cached: gathering
    // from B now is a pure hit, not a re-translation.
    const auto misses_before = s.binding_misses();
    s.gather(ctx, b, out);
    ck.check_eq(s.binding_misses(), misses_before, ctx.rank(),
                "B's binding survived A's flips");
    for (std::size_t k = 0; k < wanted.size(); ++k) {
      ck.check_eq(out[k], 1000.0 + wanted[k][0], ctx.rank(), "B data");
    }
  });
}

TEST(Schedule, RandomizedGatherAgainstGlobalTruth) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({19, 7});
    DistArray<int> a(env, {.name = "A",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{cyclic(3), col()}});
    a.init([&](const IndexVec& i) {
      return static_cast<int>(dom.linearize(i));
    });
    std::mt19937 rng(1234 + ctx.rank());
    std::uniform_int_distribution<Index> pick(0, dom.size() - 1);
    std::vector<IndexVec> wanted;
    for (int k = 0; k < 100; ++k) wanted.push_back(dom.delinearize(pick(rng)));
    Schedule s(ctx, a.dist_handle(), wanted);
    std::vector<int> out(wanted.size());
    s.gather(ctx, a, out);
    for (std::size_t k = 0; k < wanted.size(); ++k) {
      ck.check_eq(out[k], static_cast<int>(dom.linearize(wanted[k])),
                  ctx.rank(), "random gather");
    }
  });
}

/// Halo reuse: a schedule built with the target's halo spec satisfies
/// overlap-area reads from ghost storage a preceding exchange_overlap
/// filled, so a stencil gather moves NO data at all -- the inspector
/// plants those points in the halo list instead of the request lists.
TEST(Schedule, HaloAwareGatherReadsGhostsWithoutTransport) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return static_cast<double>(7 * i[0]); });
    a.exchange_overlap();

    // Every rank reads its owned points plus their +-1 neighbours (the
    // 3-point stencil support): all off-processor reads land in the halo.
    std::vector<IndexVec> pts;
    const Index lo = 4 * ctx.rank() + 1;
    for (Index i = lo; i < lo + 4; ++i) {
      for (Index d = -1; d <= 1; ++d) {
        const Index x = i + d;
        if (x >= 1 && x <= 16) pts.push_back({x});
      }
    }
    Schedule sched(ctx, a.dist_handle(), pts, a.halo_spec());
    ck.check(sched.n_halo() > 0, ctx.rank(),
             "boundary neighbours are halo-satisfied");
    ck.check_eq(sched.n_unique_offproc(), std::size_t{0}, ctx.rank(),
                "no off-processor uniques remain");

    const auto before = ctx.stats().data_messages;
    std::vector<double> out(pts.size());
    sched.gather(ctx, a, out);
    ck.check_eq(ctx.stats().data_messages, before, ctx.rank(),
                "gather sent no data messages");
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ck.check_eq(out[k], static_cast<double>(7 * pts[k][0]), ctx.rank(),
                  "gathered value at " + pts[k].to_string());
    }

    // Halo-satisfied points are read-only.
    try {
      sched.scatter(ctx, out, a);
      ck.fail("scatter through a halo-aware schedule must throw");
    } catch (const std::logic_error&) {
    }
  });
}

/// Reads beyond the filled ghost width still travel: the inspector only
/// plants points the exchange actually made current.
TEST(Schedule, HaloAwareInspectorRespectsFilledWidths) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return static_cast<double>(3 * i[0]); });
    a.exchange_overlap();
    // Distance-2 neighbours are outside the width-1 halo: they must be
    // fetched from their owners, and the gather still returns the truth.
    std::vector<IndexVec> pts;
    const Index lo = 4 * ctx.rank() + 1;
    for (const Index d : {Index{-2}, Index{2}}) {
      const Index x = lo + (d < 0 ? 0 : 3) + d;
      if (x >= 1 && x <= 16) pts.push_back({x});
    }
    Schedule sched(ctx, a.dist_handle(), pts, a.halo_spec());
    ck.check_eq(sched.n_halo(), std::size_t{0}, ctx.rank(),
                "distance-2 points are not halo-satisfied");
    ck.check_eq(sched.n_unique_offproc(), pts.size(), ctx.rank(),
                "they travel as off-processor uniques");
    std::vector<double> out(pts.size());
    sched.gather(ctx, a, out);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ck.check_eq(out[k], static_cast<double>(3 * pts[k][0]), ctx.rank(),
                  "fetched value");
    }
  });
}

/// Binding validates the array's halo spec by identity: an array with a
/// different overlap description cannot serve halo-satisfied reads.
TEST(Schedule, HaloAwareBindingRejectsMismatchedSpec) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    DistArray<double> c(env, {.name = "C",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {2},
                              .overlap_hi = {2}});
    a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
    c.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
    a.exchange_overlap();
    c.exchange_overlap();
    // A boundary neighbour: halo-satisfied under A's spec.
    const Index x = ctx.rank() == 0 ? 5 : 4;
    std::vector<IndexVec> pts{{x}};
    Schedule sched(ctx, a.dist_handle(), pts, a.halo_spec());
    ck.check_eq(sched.n_halo(), std::size_t{1}, ctx.rank(), "halo point");
    std::vector<double> out(1);
    sched.gather(ctx, a, out);  // same spec: fine
    ck.check_eq(out[0], static_cast<double>(x), ctx.rank(), "value");
    try {
      sched.gather(ctx, c, out);
      ck.fail("gather against a different halo spec must throw");
    } catch (const std::logic_error&) {
    }
  });
}

}  // namespace
}  // namespace vf::parti
