// Tests for the first-class halo subsystem: HaloSpec interning through the
// DistRegistry, run-based HaloPlans with corner (diagonal) exchange, and
// the per-Env plan cache keyed on (DistHandle uid, HaloSpec uid) -- in
// particular that a repeat exchange_overlap under an unchanged
// distribution is a pure cache hit that rebuilds no index lists.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/halo/exchange.hpp"
#include "vf/halo/plan.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(HaloSpec, InterningIsIdentity) {
  dist::DistRegistry reg;
  const halo::HaloSpec s({1, 2}, {0, 1}, true);
  const halo::HaloHandle h1 = reg.intern(s);
  const halo::HaloHandle h2 = reg.intern(halo::HaloSpec({1, 2}, {0, 1}, true));
  EXPECT_TRUE(h1 == h2);
  EXPECT_EQ(h1.uid(), h2.uid());
  EXPECT_NE(h1.uid(), 0u);
  EXPECT_EQ(reg.stats().halo_spec_hits, 1u);
  EXPECT_EQ(reg.stats().halo_spec_misses, 1u);

  // The corners flag and each width participate in identity.
  const halo::HaloHandle faces =
      reg.intern(halo::HaloSpec({1, 2}, {0, 1}, false));
  EXPECT_FALSE(h1 == faces);
  EXPECT_NE(h1.uid(), faces.uid());
}

TEST(HaloSpec, ValidationRejectsBadWidths) {
  EXPECT_THROW(halo::HaloSpec({1}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(halo::HaloSpec({-1}, {0}), std::invalid_argument);
  EXPECT_TRUE(halo::HaloSpec::none(2).empty());
  EXPECT_FALSE(halo::HaloSpec({0, 1}, {0, 0}).empty());
}

/// Satellite: repeat exchanges must be allocation-free on the planning
/// path -- the second exchange_overlap is a cache hit that invokes
/// HaloPlan::build zero times (no send/recv index-list rebuild).
TEST(HaloPlanCache, RepeatExchangeDoesNotRebuildPlans) {
  constexpr int kP = 4;
  run_checked(kP, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({32}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });

    // Barrier-bracketed snapshot: every rank captures the process-wide
    // build counter before any rank can reach its first exchange.
    ctx.barrier();
    const std::uint64_t builds0 = halo::HaloPlan::builds();
    ctx.barrier();
    a.exchange_overlap();
    const auto& st = env.halo_plans().stats();
    ck.check_eq(st.misses, std::uint64_t{1}, ctx.rank(), "first is a miss");
    ck.check_eq(st.hits, std::uint64_t{0}, ctx.rank(), "no hit yet");

    // Each rank built exactly one plan; the repeats build none.
    a.exchange_overlap();
    a.exchange_overlap();
    ck.check_eq(st.misses, std::uint64_t{1}, ctx.rank(),
                "repeat exchanges stay misses == 1");
    ck.check_eq(st.hits, std::uint64_t{2}, ctx.rank(), "two hits");
    ctx.barrier();
    if (ctx.rank() == 0) {
      // Machine-wide: kP builds total, all from the first exchange.
      ck.check_eq(halo::HaloPlan::builds() - builds0,
                  std::uint64_t{kP}, 0, "one build per rank, ever");
    }
    // Values are still exchanged correctly on the replayed plan.
    const dist::Index lo = 8 * ctx.rank() + 1;
    if (lo > 1) {
      ck.check_eq(a.halo({lo - 1}), static_cast<double>(lo - 1), ctx.rank(),
                  "low ghost value");
    }
  });
}

/// Two arrays with the same interned (distribution, spec) pair share one
/// cached plan: the Env-level cache serves the smoothing ping-pong pair
/// with a single inspector run.
TEST(HaloPlanCache, CrossArrayPlanSharing) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const DistArray<double>::Spec spec{
        .name = "A",
        .domain = IndexDomain::of_extents({32}),
        .dynamic = true,
        .initial = DistributionType{block()},
        .overlap_lo = {1},
        .overlap_hi = {1}};
    DistArray<double> a(env, spec);
    auto bspec = spec;
    bspec.name = "B";
    DistArray<double> b(env, bspec);
    ck.check(a.dist_handle() == b.dist_handle(), ctx.rank(),
             "interning shares the descriptor");
    ck.check(a.halo_spec() == b.halo_spec(), ctx.rank(),
             "interning shares the halo spec");
    a.exchange_overlap();
    b.exchange_overlap();
    const auto& st = env.halo_plans().stats();
    ck.check_eq(st.misses, std::uint64_t{1}, ctx.rank(),
                "second array reuses the first's plan");
    ck.check_eq(st.hits, std::uint64_t{1}, ctx.rank(), "one hit");
  });
}

/// DISTRIBUTE swaps the descriptor handle, so the cached plan is keyed
/// away naturally -- no explicit invalidation -- and the exchange under
/// the new layout is correct.
TEST(HaloPlanCache, DistributeInvalidatesByKey) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8, 8}),
                              .dynamic = true,
                              .initial = DistributionType{col(), block()},
                              .overlap_lo = {0, 1},
                              .overlap_hi = {0, 1}});
    a.init([](const IndexVec& i) {
      return static_cast<double>(100 * i[0] + i[1]);
    });
    a.exchange_overlap();
    const auto& st = env.halo_plans().stats();
    ck.check_eq(st.misses, std::uint64_t{1}, ctx.rank(), "first plan");
    a.distribute(DistributionType{col(), dist::cyclic(4)});
    a.exchange_overlap();
    ck.check_eq(st.misses, std::uint64_t{2}, ctx.rank(),
                "new handle, new plan");
    // Ghost columns adjacent to the new segments carry neighbour values.
    const dist::Index jb = ctx.rank() == 0 ? 5 : 4;
    for (dist::Index i = 1; i <= 8; ++i) {
      ck.check_eq(a.halo({i, jb}), static_cast<double>(100 * i + jb),
                  ctx.rank(), "ghost after redistribute");
    }
  });
}

/// Corner exchange: on a 2x2 (BLOCK, BLOCK) grid with corners enabled,
/// the diagonal ghost element is filled; with corners disabled it stays
/// at its initialized value.
TEST(HaloCorners, DiagonalGhostsFilledWhenRequested) {
  for (const bool corners : {true, false}) {
    run_checked(4, [corners](Context& ctx, SpmdChecker& ck) {
      dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
      Env env(ctx, grid);
      DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({8, 8}),
                                .dynamic = true,
                                .initial = DistributionType{block(), block()},
                                .overlap_lo = {1, 1},
                                .overlap_hi = {1, 1},
                                .overlap_corners = corners});
      a.init([](const IndexVec& i) {
        return static_cast<double>(100 * i[0] + i[1]);
      });
      a.exchange_overlap();
      // Every rank owns a 4x4 block; its inward diagonal neighbour exists.
      const dist::Index x0 = ctx.rank() % 2 == 0 ? 4 : 5;  // my corner row
      const dist::Index y0 = ctx.rank() / 2 == 0 ? 4 : 5;  // my corner col
      const dist::Index dx = ctx.rank() % 2 == 0 ? 1 : -1;
      const dist::Index dy = ctx.rank() / 2 == 0 ? 1 : -1;
      const IndexVec diag{x0 + dx, y0 + dy};
      ck.check(a.halo_readable(diag), ctx.rank(), "corner storage exists");
      const double expect_filled =
          static_cast<double>(100 * diag[0] + diag[1]);
      if (corners) {
        ck.check_eq(a.halo(diag), expect_filled, ctx.rank(),
                    "diagonal ghost value");
      } else {
        ck.check_eq(a.halo(diag), 0.0, ctx.rank(),
                    "faces-only leaves the corner unfilled");
      }
      // Face ghosts are filled either way.
      ck.check_eq(a.halo({x0 + dx, y0}),
                  static_cast<double>(100 * (x0 + dx) + y0), ctx.rank(),
                  "face ghost value");
    });
  }
}

/// A neighbour owning fewer planes than the overlap width sends what it
/// has (partial fill), for faces and corners alike; coordinates owning
/// nothing are skipped when locating the neighbour.
TEST(HaloCorners, PartialWidthsAndEmptySegments) {
  run_checked(9, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(3, 3);
    Env env(ctx, grid);
    // BLOCK on 4 elements over 3 coords: sizes 2, 2, 0 -- the last
    // coordinate owns nothing in each dimension.
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({4, 4}),
                              .dynamic = true,
                              .initial = DistributionType{block(), block()},
                              .overlap_lo = {2, 2},
                              .overlap_hi = {2, 2},
                              .overlap_corners = true});
    a.init([](const IndexVec& i) {
      return static_cast<double>(10 * i[0] + i[1]);
    });
    a.exchange_overlap();
    const auto& L = a.layout();
    if (L.member && L.total > 0) {
      // Every in-domain neighbour within the exchanged widths is correct.
      a.for_owned([&](const IndexVec& i, double&) {
        for (dist::Index di = -2; di <= 2; ++di) {
          for (dist::Index dj = -2; dj <= 2; ++dj) {
            const IndexVec p{i[0] + di, i[1] + dj};
            if (!a.domain().contains(p)) continue;
            if (!a.halo_readable(p)) continue;
            ck.check_eq(a.halo(p), static_cast<double>(10 * p[0] + p[1]),
                        ctx.rank(), "value at " + p.to_string());
          }
        }
      });
    }
  });
}

/// Arrays without overlap widths still make the (collective) exchange a
/// cheap no-op, and plans for the empty spec move nothing.
TEST(HaloPlanCache, EmptySpecExchangesNothing) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    const auto before = ctx.stats().data_messages;
    a.exchange_overlap();
    a.exchange_overlap();
    ck.check_eq(ctx.stats().data_messages, before, ctx.rank(),
                "no data traffic for the empty spec");
  });
}

/// HaloFamily interning: identity, uniformity detection, order
/// sensitivity and the hit/miss counters.
TEST(HaloFamily, InterningAndUniformity) {
  dist::DistRegistry reg;
  const halo::HaloHandle h1 = reg.intern(halo::HaloSpec({1}, {1}));
  const halo::HaloHandle h2 = reg.intern(halo::HaloSpec({2}, {0}));
  const halo::FamilyHandle uni = reg.intern_family({h1, h1});
  EXPECT_TRUE(uni->uniform());
  EXPECT_FALSE(uni->empty());
  EXPECT_TRUE(uni.interned());
  const halo::FamilyHandle asym = reg.intern_family({h1, h2});
  EXPECT_FALSE(asym->uniform());
  const halo::FamilyHandle asym2 = reg.intern_family({h1, h2});
  EXPECT_TRUE(asym == asym2);
  EXPECT_EQ(asym.uid(), asym2.uid());
  EXPECT_EQ(reg.stats().halo_family_hits, 1u);
  EXPECT_EQ(reg.stats().halo_family_misses, 2u);
  // Member order is identity: the family names ranks positionally.
  const halo::FamilyHandle swapped = reg.intern_family({h2, h1});
  EXPECT_NE(asym.uid(), swapped.uid());
  // All-zero members make an empty family.
  const halo::HaloHandle z = reg.intern(halo::HaloSpec::none(1));
  EXPECT_TRUE(reg.intern_family({z, z})->empty());
  // Null members and mismatched ranks are rejected.
  EXPECT_THROW((void)reg.intern_family({}), std::invalid_argument);
  EXPECT_THROW((void)reg.intern_family({h1, halo::HaloHandle{}}),
               std::invalid_argument);
  const halo::HaloHandle r2 = reg.intern(halo::HaloSpec({1, 1}, {1, 1}));
  EXPECT_THROW((void)reg.intern_family({h1, r2}), std::invalid_argument);
  // A leading rank-0 "none" spec is compatible with anything but must not
  // disable the consistency check for the members after it.
  const halo::HaloHandle none = reg.intern(halo::HaloSpec{});
  EXPECT_THROW((void)reg.intern_family({none, h1, r2}),
               std::invalid_argument);
  EXPECT_FALSE(reg.intern_family({none, h1, h1})->uniform());
}

/// Keying satellite: two arrays whose LOCAL spec is identical on this
/// rank but whose families differ must not alias one plan entry -- the
/// pre-family (DistHandle uid, HaloSpec uid) key could not tell them
/// apart on the rank where the local specs coincide, the family uid can.
TEST(HaloPlanCache, AsymmetricFamiliesDoNotAliasLocalSpecs) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({12});
    const auto mk = [&](const char* name) {
      return DistArray<double>(env, {.name = name,
                                     .domain = dom,
                                     .dynamic = true,
                                     .initial = DistributionType{block()}});
    };
    auto a = mk("A");
    auto b = mk("B");
    const auto fp = [&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i)) + 0.25;
    };
    a.init(fp);
    b.init(fp);
    // Rank 0's local spec is {1}/{1} in BOTH families; rank 1 differs
    // (2 vs 3 low planes), so A and B reconcile to distinct families and
    // rank 0's send side must pack 2 planes for A but 3 for B.
    a.set_overlap({ctx.rank() == 0 ? 1 : 2}, {1}, false, true);
    b.set_overlap({ctx.rank() == 0 ? 1 : 3}, {1}, false, true);
    a.exchange_overlap();
    b.exchange_overlap();
    ck.check(a.halo_family() && !a.halo_family()->uniform(), ctx.rank(),
             "A's family should be asymmetric");
    ck.check(!(a.halo_family() == b.halo_family()), ctx.rank(),
             "families must be distinct handles");
    if (ctx.rank() == 0) {
      // Same local spec handle, same distribution -- the pre-family key
      // would collide here.
      ck.check(a.halo_spec() == b.halo_spec(), 0,
               "local specs should coincide on rank 0");
      ck.check_eq(env.halo_plans().size(), std::size_t{2}, 0,
                  "two distinct family plan entries");
      ck.check_eq(env.halo_plans().stats().misses, std::uint64_t{2}, 0,
                  "no aliasing hit between the families");
    }
    if (ctx.rank() == 1) {
      // The ghosts prove the send sides differed: rank 1's segment is
      // [7, 12], so 2 filled planes under A's family ({5, 6}) and 3
      // under B's ({4, 5, 6}).
      for (dist::Index g = 5; g <= 6; ++g) {
        ck.check_eq(a.halo({g}), fp({g}), 1, "A ghost");
      }
      for (dist::Index g = 4; g <= 6; ++g) {
        ck.check_eq(b.halo({g}), fp({g}), 1, "B ghost");
      }
    }
  });
}

/// Keying satellite: an asymmetric DECLARATION whose widths happen to be
/// equal everywhere reconciles to a uniform family and must hit the very
/// same cache entry a uniform declaration produced -- while the uniform
/// declaration itself never performs a spec exchange at all (the
/// zero-extra-collective fast path, asserted through the counters).
TEST(HaloPlanCache, UniformFamilyHitsPrePRKey) {
  const std::uint64_t global_before = halo::spec_exchanges();
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({12});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1},
                              .overlap_asymmetric = true});
    a.init([](const IndexVec&) { return 1.0; });
    b.init([](const IndexVec&) { return 2.0; });
    a.exchange_overlap();
    const auto misses_after_a = env.halo_plans().stats().misses;
    b.exchange_overlap();
    // The uniform declaration paid no spec exchange; the asymmetric one
    // paid exactly one and detected uniformity.
    ck.check_eq(a.halo_spec_exchanges(), std::uint64_t{0}, ctx.rank(),
                "uniform spec must not spec-exchange");
    ck.check_eq(b.halo_spec_exchanges(), std::uint64_t{1}, ctx.rank(),
                "asymmetric declaration reconciles once");
    ck.check(b.halo_family() && b.halo_family()->uniform(), ctx.rank(),
             "family should reconcile to uniform");
    // Same cache entry: B's exchange was a HIT on A's (dist, spec) key.
    ck.check_eq(env.halo_plans().stats().misses, misses_after_a, ctx.rank(),
                "uniform family must reuse the pre-family cache entry");
    ck.check(env.halo_plans().stats().hits >= 1, ctx.rank(),
             "expected a cache hit for the uniform family");
    ck.check_eq(env.halo_plans().size(), std::size_t{1}, ctx.rank(),
                "one shared plan entry");
    // Repeat exchanges stay spec-exchange-free: the family is cached on
    // the array until the next set_overlap.
    b.exchange_overlap();
    ck.check_eq(b.halo_spec_exchanges(), std::uint64_t{1}, ctx.rank(),
                "repeat exchange must not re-reconcile");
  });
  // The process-wide counter agrees: one reconcile per rank for B, none
  // for A, across the whole machine run.
  EXPECT_EQ(halo::spec_exchanges() - global_before, 2u);
}

}  // namespace
}  // namespace vf::rt
