// The runtime lockstep checker (msg/lockstep.hpp): armed machines must
// convert collective divergence -- mismatched tags, mismatched exchange
// counts, op-order disagreement, one rank skipping an exchange -- into a
// deterministic LockstepMismatch naming the first diverging op, instead of
// a watchdog timeout or a silent hang.  Every scenario runs at P in {4, 9}
// on both transports, and the machine must stay reusable afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <cstdlib>
#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/msg/exchange_scratch.hpp"
#include "vf/msg/lockstep.hpp"
#include "vf/msg/transport.hpp"

namespace vf::msg {
namespace {

using testing::SpmdChecker;

struct LockstepParam {
  int np;
  TransportKind transport;
};

std::string param_name(const ::testing::TestParamInfo<LockstepParam>& pinfo) {
  std::string s = "P";
  s += std::to_string(pinfo.param.np);
  s += '_';
  s += to_string(pinfo.param.transport);
  return s;
}

class LockstepSuite : public ::testing::TestWithParam<LockstepParam> {
 protected:
  // Machine owns mutexes and atomics (immovable): heap-construct it.
  [[nodiscard]] std::unique_ptr<Machine> make_armed() const {
    auto m = std::make_unique<Machine>(GetParam().np, CostModel{},
                                       GetParam().transport);
    m->set_lockstep_check(true);
    return m;
  }
};

/// One symmetric alltoallv round, `count` doubles per peer.
void ring_round(Context& ctx, SpmdChecker& ck, std::uint64_t count) {
  const int np = ctx.nprocs();
  ExchangeScratch arena;
  ExchangeLane& lane = arena.lane(sizeof(double));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(np), count);
  lane.prepare(counts, counts);
  for (int d = 0; d < np; ++d) {
    for (std::uint64_t i = 0; i < count; ++i) {
      lane.send<double>(d)[i] = ctx.rank() * 1000.0 + d + 0.25 * double(i);
    }
  }
  ctx.alltoallv_known_into(lane);
  for (int s = 0; s < np; ++s) {
    ck.check_eq(lane.recv<double>(s)[0], s * 1000.0 + ctx.rank(), ctx.rank(),
                "ring value");
  }
}

/// Runs `body` on an armed machine and asserts the run fails with a
/// type-preserved LockstepMismatch whose reason mentions `expect_in_what`;
/// returns the caught mismatch description.
std::string expect_mismatch(Machine& m,
                            const std::function<void(Context&)>& body,
                            const std::string& expect_in_what) {
  try {
    run_spmd(m, body);
  } catch (const LockstepMismatch& e) {
    EXPECT_NE(std::string(e.what()).find("lockstep mismatch"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(expect_in_what), std::string::npos)
        << "expected '" << expect_in_what << "' in: " << e.what();
    EXPECT_GE(m.lockstep().mismatches(), 1u);
    EXPECT_TRUE(m.last_failure_report().any_failed);
    EXPECT_NE(m.last_failure_report().reason.find("lockstep mismatch"),
              std::string::npos);
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected LockstepMismatch, got: " << e.what();
    return {};
  }
  ADD_FAILURE() << "expected LockstepMismatch, run completed cleanly";
  return {};
}

/// Proves the machine is healthy (and the checker still armed) after a
/// mismatch by running a clean collective workload on it.
void expect_reusable(Machine& m) {
  ASSERT_TRUE(m.lockstep_check()) << "mismatch recovery disarmed the checker";
  SpmdChecker ck;
  run_spmd(m, [&](Context& ctx) {
    ring_round(ctx, ck, 2);
    const int sum = ctx.allreduce(1, ReduceOp::Sum);
    ck.check_eq(sum, ctx.nprocs(), ctx.rank(), "post-recovery allreduce");
    ctx.barrier();
  });
  ck.expect_clean();
}

TEST_P(LockstepSuite, CleanRunChainsAgree) {
  auto mp = make_armed();
  Machine& m = *mp;
  SpmdChecker ck;
  run_spmd(m, [&](Context& ctx) {
    ctx.barrier();
    const int sum = ctx.allreduce(ctx.rank(), ReduceOp::Sum);
    ck.check_eq(sum, ctx.nprocs() * (ctx.nprocs() - 1) / 2, ctx.rank(),
                "allreduce sum");
    ring_round(ctx, ck, 3);
    ctx.barrier();
  });
  ck.expect_clean();
  EXPECT_EQ(m.lockstep().mismatches(), 0u);
  EXPECT_EQ(m.fence_trips(), 0u);
  const std::uint64_t ops0 = m.lockstep().ops(0);
  const std::uint64_t chain0 = m.lockstep().chain(0);
  EXPECT_GE(ops0, 4u);  // barrier + allreduce + exchange + barrier
  for (int r = 1; r < m.nprocs(); ++r) {
    EXPECT_EQ(m.lockstep().ops(r), ops0) << "rank " << r;
    EXPECT_EQ(m.lockstep().chain(r), chain0) << "rank " << r;
  }
}

TEST_P(LockstepSuite, MismatchedTagCaught) {
  auto mp = make_armed();
  Machine& m = *mp;
  expect_mismatch(
      m,
      [](Context& ctx) {
        // One rank burns a collective tag: its next collective signature
        // disagrees with everyone else's even though the op kind matches.
        if (ctx.rank() == 2) ctx.skip_coll_tags(1);
        (void)ctx.allreduce(1, ReduceOp::Sum);
        ctx.barrier();
      },
      "allreduce");
  expect_reusable(m);
}

TEST_P(LockstepSuite, CountMismatchCaught) {
  // Without the checker this is the watchdog-only failure mode: the
  // divergent rank publishes short payloads and every peer blocks waiting
  // for bytes that never come.  Armed, the divergence surfaces at op
  // entry, deterministically, with the byte counts named.
  auto mp = make_armed();
  Machine& m = *mp;
  const std::string what = expect_mismatch(
      m,
      [](Context& ctx) {
        SpmdChecker ignored;
        ring_round(ctx, ignored, ctx.rank() == 1 ? 2 : 3);
      },
      "exchange");
  EXPECT_NE(what.find("bytes"), std::string::npos) << what;
  expect_reusable(m);
}

TEST_P(LockstepSuite, OpOrderDivergenceCaught) {
  auto mp = make_armed();
  Machine& m = *mp;
  try {
    run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) {
        (void)ctx.allreduce(1, ReduceOp::Sum);
      } else {
        ctx.barrier();
      }
    });
    ADD_FAILURE() << "expected LockstepMismatch";
  } catch (const LockstepMismatch& e) {
    EXPECT_EQ(e.op_seq, 0u);  // the FIRST diverging op is named
    const std::string what = e.what();
    EXPECT_NE(what.find("allreduce"), std::string::npos) << what;
    EXPECT_NE(what.find("barrier"), std::string::npos) << what;
  }
  expect_reusable(m);
}

TEST_P(LockstepSuite, SkippedExchangeCaught) {
  auto mp = make_armed();
  Machine& m = *mp;
  expect_mismatch(
      m,
      [](Context& ctx) {
        SpmdChecker ignored;
        // Rank 2 "optimizes away" its exchange and goes straight to the
        // next collective -- the classic rank-local-shortcut deadlock.
        if (ctx.rank() != 2) ring_round(ctx, ignored, 2);
        ctx.barrier();
      },
      "lockstep mismatch");
  expect_reusable(m);
}

TEST_P(LockstepSuite, DisabledHasNoFootprint) {
  Machine m(GetParam().np, {}, GetParam().transport);
  // Explicit disarm: the machine may have been armed by VF_LOCKSTEP=1 in
  // the environment (the CI lockstep leg runs this whole suite armed).
  m.set_lockstep_check(false);
  ASSERT_FALSE(m.lockstep_check());
  SpmdChecker ck;
  run_spmd(m, [&](Context& ctx) {
    ring_round(ctx, ck, 2);
    ctx.barrier();
  });
  ck.expect_clean();
  EXPECT_EQ(m.lockstep().ops(0), 0u);
  EXPECT_EQ(m.lockstep().chain(0), 0u);
  EXPECT_EQ(m.lockstep().mismatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LockstepSuite,
    ::testing::Values(LockstepParam{4, TransportKind::Mailbox},
                      LockstepParam{4, TransportKind::SharedMemory},
                      LockstepParam{9, TransportKind::Mailbox},
                      LockstepParam{9, TransportKind::SharedMemory}),
    param_name);

TEST(LockstepEnv, VfLockstepArmsTheMachine) {
  const char* old = std::getenv("VF_LOCKSTEP");
  std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  ::setenv("VF_LOCKSTEP", "1", 1);
  {
    Machine m(2);
    EXPECT_TRUE(m.lockstep_check());
  }
  ::setenv("VF_LOCKSTEP", "0", 1);
  {
    Machine m(2);
    EXPECT_FALSE(m.lockstep_check());
  }
  ::unsetenv("VF_LOCKSTEP");
  {
    Machine m(2);
    EXPECT_FALSE(m.lockstep_check());
  }

  if (had) {
    ::setenv("VF_LOCKSTEP", saved.c_str(), 1);
  } else {
    ::unsetenv("VF_LOCKSTEP");
  }
}

TEST(LockstepEnv, ManualArmDisarm) {
  Machine m(3);
  m.set_lockstep_check(false);  // VF_LOCKSTEP=1 may have armed the ctor
  EXPECT_FALSE(m.lockstep_check());
  m.set_lockstep_check(true);
  EXPECT_TRUE(m.lockstep_check());
  m.set_lockstep_check(false);
  EXPECT_FALSE(m.lockstep_check());
}

}  // namespace
}  // namespace vf::msg
