// Tests for the reaching-distribution analysis (paper Section 3.1): the
// plausible-distribution sets computed at array references.
#include <gtest/gtest.h>

#include "vf/compile/reaching.hpp"

namespace vf::compile {
namespace {

using query::any_dim;
using query::p_block;
using query::p_col;
using query::p_cyclic;
using query::p_cyclic_any;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{p_block()}; }
AbstractDist cyclicT(dist::Index k) { return TypePattern{p_cyclic(k)}; }
AbstractDist cyclicAnyT() { return TypePattern{p_cyclic_any()}; }

TEST(Reaching, StraightLineStrongUpdate) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .use({"A"}, "u1")
      .distribute("A", cyclicT(2))
      .use({"A"}, "u2");
  Program p = b.build();
  auto r = analyze_reaching(p);

  const auto& before = r.plausible(p.find_label("u1"), "A");
  ASSERT_EQ(before.types.size(), 1u);
  EXPECT_EQ(before.types[0], blockT());
  EXPECT_FALSE(before.undistributed);

  const auto& after = r.plausible(p.find_label("u2"), "A");
  ASSERT_EQ(after.types.size(), 1u);
  EXPECT_EQ(after.types[0], cyclicT(2));
}

TEST(Reaching, UndistributedUntilFirstDistribute) {
  ProgramBuilder b;
  b.declare({.name = "B1", .rank = 1, .dynamic = true})
      .use({"B1"}, "early")
      .distribute("B1", blockT())
      .use({"B1"}, "late");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_TRUE(r.plausible(p.find_label("early"), "B1").undistributed);
  EXPECT_FALSE(r.plausible(p.find_label("late"), "B1").undistributed);
}

TEST(Reaching, BranchesMergeBothDistributions) {
  // if (...) DISTRIBUTE A :: CYCLIC(2) else DISTRIBUTE A :: CYCLIC(4);
  // both reach the use -- the situation Section 2.5 says dcase handles.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); },
               [](ProgramBuilder& e) { e.distribute("A", cyclicT(4)); })
      .use({"A"}, "merged");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("merged"), "A");
  EXPECT_EQ(d.types.size(), 2u);
  EXPECT_NE(std::find(d.types.begin(), d.types.end(), cyclicT(2)),
            d.types.end());
  EXPECT_NE(std::find(d.types.begin(), d.types.end(), cyclicT(4)),
            d.types.end());
}

TEST(Reaching, EmptyElseKeepsOriginal) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); })
      .use({"A"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("after"), "A");
  EXPECT_EQ(d.types.size(), 2u);  // BLOCK (fall-through) + CYCLIC(2)
}

TEST(Reaching, LoopMergesBackEdge) {
  // DO ... DISTRIBUTE A :: CYCLIC(3) ... ENDDO: inside and after the loop
  // both the initial and the loop distribution are plausible.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .loop([](ProgramBuilder& body) {
        body.use({"A"}, "inside").distribute("A", cyclicT(3));
      })
      .use({"A"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& inside = r.plausible(p.find_label("inside"), "A");
  EXPECT_EQ(inside.types.size(), 2u);
  const auto& after = r.plausible(p.find_label("after"), "A");
  EXPECT_EQ(after.types.size(), 2u);
}

TEST(Reaching, RuntimeValuedParameterIsAbstract) {
  // K = expr; DISTRIBUTE B1, B2 :: (CYCLIC(K)) -- Example 3's second
  // statement: the analysis sees CYCLIC(*).
  ProgramBuilder b;
  b.declare({.name = "B1", .rank = 1, .dynamic = true, .initial = blockT()})
      .distribute("B1", cyclicAnyT())
      .use({"B1"}, "u");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("u"), "B1");
  ASSERT_EQ(d.types.size(), 1u);
  EXPECT_EQ(d.types[0], cyclicAnyT());
}

TEST(Reaching, CallUnknownBoundedByRange) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 2,
             .dynamic = true,
             .range = {TypePattern{p_block(), p_block()},
                       TypePattern{any_dim(), p_cyclic_any()}},
             .initial = TypePattern{p_block(), p_block()}})
      .call_unknown({"A"})
      .use({"A"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("after"), "A");
  EXPECT_EQ(d.types.size(), 2u);  // exactly the RANGE patterns
  EXPECT_FALSE(d.is_widened());
}

TEST(Reaching, CallUnknownWithoutRangeWidens) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .call_unknown({"A"})
      .use({"A"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_TRUE(r.plausible(p.find_label("after"), "A").is_widened());
}

TEST(Reaching, DCaseArmsRefineSelectors) {
  // Inside an arm that matched (BLOCK), the plausible set shrinks to the
  // matching types only.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); })
      .dcase({"A"},
             {{{TypePattern{p_block()}},
               [](ProgramBuilder& arm) { arm.use({"A"}, "block_arm"); }},
              {{TypePattern{p_cyclic_any()}},
               [](ProgramBuilder& arm) { arm.use({"A"}, "cyclic_arm"); }}});
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& ba = r.plausible(p.find_label("block_arm"), "A");
  ASSERT_EQ(ba.types.size(), 1u);
  EXPECT_EQ(ba.types[0], blockT());
  const auto& ca = r.plausible(p.find_label("cyclic_arm"), "A");
  ASSERT_EQ(ca.types.size(), 1u);
  EXPECT_EQ(ca.types[0], cyclicT(2));
}

TEST(Reaching, WideningBoundsSetSize) {
  // More distinct distributions than kWidenLimit collapse to the wildcard.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  for (int k = 1; k <= 12; ++k) {
    const dist::Index kk = k;
    b.if_else([kk](ProgramBuilder& t) { t.distribute("A", cyclicT(kk)); });
  }
  b.use({"A"}, "end");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_TRUE(r.plausible(p.find_label("end"), "A").is_widened());
}

TEST(Reaching, IndependentArraysTrackedSeparately) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .declare({.name = "B", .rank = 1, .dynamic = true, .initial = cyclicT(1)})
      .distribute("A", cyclicT(9))
      .use({"A", "B"}, "u");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_EQ(r.plausible(p.find_label("u"), "A").types[0], cyclicT(9));
  EXPECT_EQ(r.plausible(p.find_label("u"), "B").types[0], cyclicT(1));
}

TEST(Reaching, UnknownArrayQueryThrows) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .use({"A"}, "u");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_THROW((void)r.plausible(p.find_label("u"), "Z"),
               std::invalid_argument);
}

}  // namespace
}  // namespace vf::compile
