// Tests for Alignment and CONSTRUCT (paper Definitions 2 and Section 2.1):
// the induced distribution of an aligned array must place corresponding
// elements on the same processor.
#include <gtest/gtest.h>

#include "vf/dist/alignment.hpp"

namespace vf::dist {
namespace {

ProcessorSection line(int p) { return ProcessorSection(ProcessorArray::line(p)); }
ProcessorSection grid(int r, int c) {
  return ProcessorSection(ProcessorArray::grid(r, c));
}

TEST(Alignment, ApplyIdentity) {
  auto a = Alignment::identity(2);
  EXPECT_EQ(a.apply({3, 4}), (IndexVec{3, 4}));
}

TEST(Alignment, ApplyPermutationExample1) {
  // ALIGN D(I,J,K) WITH C(J,I,K): the alignment function maps (i,j,k) in
  // I^D to (j,i,k) in I^C.
  auto a = Alignment::permutation(3, {1, 0, 2});
  EXPECT_EQ(a.apply({1, 2, 3}), (IndexVec{2, 1, 3}));
}

TEST(Alignment, ApplyOffsetAndConstant) {
  // A(i) WITH B(i+2, 5)
  Alignment a(1, {AlignExpr::dim(0, 1, 2), AlignExpr::constant(5)});
  EXPECT_EQ(a.apply({7}), (IndexVec{9, 5}));
}

TEST(Alignment, ValidationRejectsBadSpecs) {
  EXPECT_THROW(Alignment(1, {AlignExpr::dim(1)}), std::invalid_argument);
  EXPECT_THROW(Alignment(2, {AlignExpr::dim(0, 2)}), std::invalid_argument);
  EXPECT_THROW(Alignment(1, {AlignExpr::dim(0), AlignExpr::dim(0)}),
               std::invalid_argument);
}

/// Checks the fundamental alignment guarantee: "corresponding elements are
/// guaranteed to reside in the same processor".
void check_colocation(const Alignment& a, const Distribution& da,
                      const Distribution& db) {
  const IndexDomain& dom = da.domain();
  std::vector<Index> idx(static_cast<std::size_t>(dom.rank()), 0);
  // Enumerate the whole (small) source domain.
  const Index n = dom.size();
  for (Index off = 0; off < n; ++off) {
    const IndexVec i = dom.delinearize(off);
    const IndexVec j = a.apply(i);
    EXPECT_EQ(da.owner_rank(i), db.owner_rank(j))
        << "source " << i.to_string() << " target " << j.to_string();
  }
}

TEST(Construct, IdentityAlignmentReproducesDistribution) {
  const IndexDomain dom = IndexDomain::of_extents({12, 8});
  Distribution db(dom, {block(), cyclic(2)}, grid(2, 2));
  auto a = Alignment::identity(2);
  Distribution da = a.construct(db, dom);
  check_colocation(a, da, db);
  EXPECT_TRUE(da.same_mapping(db));
}

TEST(Construct, TransposePermutation) {
  // Example 1: D aligned with C transposed; C distributed (BLOCK, BLOCK, :).
  const IndexDomain cdom = IndexDomain::of_extents({10, 10, 10});
  Distribution dc(cdom, {block(), block(), col()}, grid(2, 2));
  auto a = Alignment::permutation(3, {1, 0, 2});
  Distribution dd = a.construct(dc, cdom);
  check_colocation(a, dd, dc);
  // D's first dimension now follows C's second (BLOCK on proc dim 1).
  EXPECT_EQ(dd.proc_dim_of(0), 1);
  EXPECT_EQ(dd.proc_dim_of(1), 0);
  EXPECT_EQ(dd.proc_dim_of(2), -1);
}

TEST(Construct, OffsetAlignmentSmallerArray) {
  // B(1:20) BLOCK; A(1:10) WITH B(i+5).
  const IndexDomain bdom = IndexDomain::of_extents({20});
  const IndexDomain adom = IndexDomain::of_extents({10});
  Distribution db(bdom, {block()}, line(4));
  Alignment a(1, {AlignExpr::dim(0, 1, 5)});
  Distribution da = a.construct(db, adom);
  check_colocation(a, da, db);
}

TEST(Construct, ConstantPinsProcessorDimension) {
  // B(8,8) (BLOCK, BLOCK) on 2x2; A(1:8) WITH B(i, 1): A lives on the
  // processor column owning B(:,1).
  const IndexDomain bdom = IndexDomain::of_extents({8, 8});
  const IndexDomain adom = IndexDomain::of_extents({8});
  Distribution db(bdom, {block(), block()}, grid(2, 2));
  Alignment a(1, {AlignExpr::dim(0), AlignExpr::constant(1)});
  Distribution da = a.construct(db, adom);
  check_colocation(a, da, db);
  // All of A's owners must be in processor column 0.
  ProcessorArray r = ProcessorArray::grid(2, 2);
  for (Index i = 1; i <= 8; ++i) {
    const IndexVec coords = r.coords_of(da.owner_rank({i}));
    EXPECT_EQ(coords[1], 1) << "pinned to column 1";
  }
}

TEST(Construct, UnmentionedSourceDimCollapses) {
  // B(1:8) BLOCK; A(8,6) WITH B(i): A's second dimension is collapsed.
  const IndexDomain bdom = IndexDomain::of_extents({8});
  const IndexDomain adom = IndexDomain::of_extents({8, 6});
  Distribution db(bdom, {block()}, line(4));
  Alignment a(2, {AlignExpr::dim(0)});
  Distribution da = a.construct(db, adom);
  check_colocation(a, da, db);
  EXPECT_EQ(da.proc_dim_of(1), -1);
  EXPECT_EQ(da.type().dim(1).kind, DimDistKind::Collapsed);
  // Rows of A are distributed like B, whole rows together.
  for (Index i = 1; i <= 8; ++i) {
    const int owner = da.owner_rank({i, 1});
    for (Index j = 2; j <= 6; ++j) {
      EXPECT_EQ(da.owner_rank({i, j}), owner);
    }
    EXPECT_EQ(owner, db.owner_rank({i}));
  }
}

TEST(Construct, ReversalAlignment) {
  // A(i) WITH B(21-i): stride -1.
  const IndexDomain bdom = IndexDomain::of_extents({20});
  Distribution db(bdom, {cyclic(3)}, line(4));
  Alignment a(1, {AlignExpr::dim(0, -1, 21)});
  Distribution da = a.construct(db, bdom);
  check_colocation(a, da, db);
}

TEST(Construct, CollapsedTargetDimIgnoresSource) {
  // B(8,8) (BLOCK, :) on line(4); A(8,8) WITH B(j, i) (transpose).
  // A's dim 1 follows B's dim 0 (BLOCK); A's dim 0 feeds B's collapsed
  // dim 1 and therefore collapses.
  const IndexDomain dom = IndexDomain::of_extents({8, 8});
  Distribution db(dom, {block(), col()}, line(4));
  auto a = Alignment::permutation(2, {1, 0});
  Distribution da = a.construct(db, dom);
  check_colocation(a, da, db);
  EXPECT_EQ(da.type().dim(0).kind, DimDistKind::Collapsed);
  EXPECT_EQ(da.type().dim(1).kind, DimDistKind::Block);
}

TEST(Construct, RankMismatchThrows) {
  const IndexDomain bdom = IndexDomain::of_extents({8, 8});
  Distribution db(bdom, {block(), col()}, line(4));
  auto a = Alignment::identity(1);  // target rank 1 != B's rank 2
  EXPECT_THROW(a.construct(db, IndexDomain::of_extents({8})),
               std::invalid_argument);
}

TEST(Construct, GenBlockAlignment) {
  const IndexDomain bdom = IndexDomain::of_extents({16});
  Distribution db(bdom, {s_block({2, 6, 5, 3})}, line(4));
  Alignment a(1, {AlignExpr::dim(0, 1, 4)});
  const IndexDomain adom = IndexDomain::of_extents({12});
  Distribution da = a.construct(db, adom);
  check_colocation(a, da, db);
  // Induced type reports general-block sizes over A's own domain.
  EXPECT_EQ(da.type().dim(0).kind, DimDistKind::GenBlock);
}

}  // namespace
}  // namespace vf::dist
