// Property tests: randomized redistribution chains and alignment
// compositions over the full distribution family.  The invariants:
//
//   * data preservation: after any chain of DISTRIBUTE statements, every
//     element still holds its fingerprint (Section 3.2.2's correctness
//     condition);
//   * ownership totality after every step;
//   * colocation: an aligned secondary remains colocated with its primary
//     through every redistribution (Definition 2's guarantee);
//   * message-count bound: each redistribution sends at most P*(P-1) data
//     messages.
#include <gtest/gtest.h>

#include <random>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::DimDist;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

/// Draws a random distribution type for a rank-2 array on a processor
/// line: exactly one distributed dimension (free rank 1), full variety of
/// per-dimension kinds.
DistributionType random_type(std::mt19937& rng, Index n0, Index n1,
                             int nprocs) {
  const int which = static_cast<int>(rng() % 2);  // which dim is distributed
  const Index extent = which == 0 ? n0 : n1;
  DimDist d;
  switch (rng() % 4) {
    case 0:
      d = dist::block();
      break;
    case 1:
      d = dist::cyclic(1 + static_cast<Index>(rng() % 5));
      break;
    case 2: {
      std::vector<Index> sizes(static_cast<std::size_t>(nprocs), 0);
      Index rest = extent;
      for (int c = 0; c < nprocs - 1; ++c) {
        sizes[static_cast<std::size_t>(c)] =
            static_cast<Index>(rng() % (rest + 1));
        rest -= sizes[static_cast<std::size_t>(c)];
      }
      sizes[static_cast<std::size_t>(nprocs - 1)] = rest;
      d = dist::s_block(std::move(sizes));
      break;
    }
    default: {
      std::vector<int> owners(static_cast<std::size_t>(extent));
      for (auto& o : owners) o = static_cast<int>(rng() % nprocs);
      d = dist::indirect(std::move(owners));
      break;
    }
  }
  return which == 0 ? DistributionType{d, dist::col()}
                    : DistributionType{dist::col(), d};
}

class RedistChainProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RedistChainProperty, ChainPreservesDataAndBounds) {
  const unsigned seed = GetParam();
  constexpr int kProcs = 4;
  constexpr Index kN0 = 11;
  constexpr Index kN1 = 7;
  constexpr int kChainLength = 6;

  msg::Machine machine(kProcs);
  testing::SpmdChecker ck;
  msg::run_spmd(machine, [&](Context& ctx) {
    // Same seed on every rank: the chain is SPMD-deterministic.
    std::mt19937 rng(seed);
    Env env(ctx);
    const IndexDomain dom({dist::Range{1, kN0}, dist::Range{1, kN1}});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = random_type(rng, kN0, kN1, kProcs)});
    a.init([&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i)) + 0.25;
    });
    for (int step = 0; step < kChainLength; ++step) {
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      a.distribute(random_type(rng, kN0, kN1, kProcs));
      ctx.barrier();
      if (ctx.rank() == 0) {
        const auto s = machine.total_stats();
        ck.check(s.data_messages <=
                     static_cast<std::uint64_t>(kProcs) * (kProcs - 1),
                 0, "pair bound step " + std::to_string(step));
      }
      ctx.barrier();  // peers hold here until the rank-0 read completes
      // Totality: every rank's owned count sums to the domain size.
      const auto mine = a.layout().member ? a.layout().total : 0;
      const auto total = ctx.allreduce<Index>(mine, msg::ReduceOp::Sum);
      ck.check_eq(total, dom.size(), ctx.rank(),
                  "totality step " + std::to_string(step));
      // Data preservation.
      a.for_owned([&](const IndexVec& i, double& v) {
        ck.check_eq(v, static_cast<double>(dom.linearize(i)) + 0.25,
                    ctx.rank(), "fingerprint step " + std::to_string(step));
      });
    }
  });
  ck.expect_clean();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistChainProperty,
                         ::testing::Range(1u, 13u));

class AlignedChainProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlignedChainProperty, SecondaryStaysColocatedThroughChain) {
  const unsigned seed = GetParam();
  constexpr int kProcs = 4;
  constexpr Index kN = 8;

  run_checked(kProcs, [&](Context& ctx, SpmdChecker& ck) {
    std::mt19937 rng(seed);
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({kN, kN});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = random_type(rng, kN, kN, kProcs)});
    // Transposed secondary: D(i,j) WITH B(j,i).
    DistArray<double> d(env, {.name = "D", .domain = dom, .dynamic = true},
                        Connection::alignment(
                            b, dist::Alignment::permutation(2, {1, 0})));
    d.init([&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i));
    });
    for (int step = 0; step < 4; ++step) {
      b.distribute(random_type(rng, kN, kN, kProcs));
      d.for_owned([&](const IndexVec& i, double& v) {
        ck.check_eq(v, static_cast<double>(dom.linearize(i)), ctx.rank(),
                    "secondary data step " + std::to_string(step));
        ck.check_eq(b.distribution().owner_rank({i[1], i[0]}), ctx.rank(),
                    ctx.rank(), "colocation step " + std::to_string(step));
      });
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignedChainProperty,
                         ::testing::Range(100u, 108u));

}  // namespace
}  // namespace vf::rt
