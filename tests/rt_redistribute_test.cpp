// Tests for the DISTRIBUTE statement's data motion (paper Sections 2.4 and
// 3.2.2): values must be preserved across arbitrary redistributions, data
// messages must stay within the P*(P-1) pair bound, and no-op
// redistributions must move nothing.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::b_block;
using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using dist::s_block;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

/// Fills an array with a global fingerprint, redistributes, and verifies
/// every element still holds its fingerprint.
template <typename Body>
void check_preserves(int np, const IndexDomain& dom, DistributionType from,
                     Body&& redistribute_actions) {
  run_checked(np, [&](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = from});
    a.init([&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i) + 1);
    });
    redistribute_actions(a);
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, static_cast<double>(dom.linearize(i) + 1), ctx.rank(),
                  "value at " + i.to_string());
    });
  });
}

TEST(Redistribute, BlockToCyclic1D) {
  check_preserves(4, IndexDomain::of_extents({37}),
                  DistributionType{block()}, [](DistArray<double>& a) {
                    a.distribute(DistributionType{cyclic(1)});
                  });
}

TEST(Redistribute, CyclicToBlock1D) {
  check_preserves(4, IndexDomain::of_extents({64}),
                  DistributionType{cyclic(3)}, [](DistArray<double>& a) {
                    a.distribute(DistributionType{block()});
                  });
}

TEST(Redistribute, TransposeStyle2D) {
  // The Figure 1 ADI remap: (:, BLOCK) -> (BLOCK, :).
  check_preserves(4, IndexDomain::of_extents({16, 16}),
                  DistributionType{col(), block()}, [](DistArray<double>& a) {
                    a.distribute(DistributionType{block(), col()});
                  });
}

TEST(Redistribute, ToGeneralBlock) {
  // The Figure 2 PIC remap: BLOCK -> B_BLOCK(BOUNDS).
  check_preserves(4, IndexDomain::of_extents({20}),
                  DistributionType{block()}, [](DistArray<double>& a) {
                    a.distribute(DistributionType{b_block({2, 11, 13, 20})});
                  });
}

TEST(Redistribute, ChainedRedistributions) {
  check_preserves(4, IndexDomain::of_extents({24}),
                  DistributionType{block()}, [](DistArray<double>& a) {
                    a.distribute(DistributionType{cyclic(2)});
                    a.distribute(DistributionType{s_block({10, 2, 7, 5})});
                    a.distribute(DistributionType{cyclic(5)});
                    a.distribute(DistributionType{block()});
                  });
}

TEST(Redistribute, OntoDifferentSection) {
  // BLOCK over all 4 procs -> BLOCK over procs 3..4 only.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({12});
    DistArray<int> a(env, {.name = "A",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    dist::ProcessorSection upper(
        env.processors(), {dist::SectionDim::all(dist::Range{3, 4})});
    a.distribute(DistExpr(DistributionType{block()}).to(upper));
    if (ctx.rank() >= 2) {
      ck.check_eq(a.layout().total, dist::Index{6}, ctx.rank(), "half each");
    } else {
      ck.check(!a.layout().member, ctx.rank(), "drained rank");
    }
    a.for_owned([&](const IndexVec& i, int& v) {
      ck.check_eq(v, static_cast<int>(i[0]), ctx.rank(), "value preserved");
    });
  });
}

TEST(Redistribute, StaticArraysCannotBeRedistributed) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .initial = DistributionType{block()}});
    try {
      a.distribute(DistributionType{cyclic(1)});
      ck.fail("expected logic_error");
    } catch (const std::logic_error&) {
    }
  });
}

TEST(Redistribute, RangeIsEnforced) {
  // Example 2's B3: RANGE ((BLOCK, BLOCK), (*, CYCLIC)).
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
    Env genv(ctx, grid);
    DistArray<double> b3(
        genv,
        {.name = "B3",
         .domain = IndexDomain::of_extents({8, 8}),
         .dynamic = true,
         .initial = DistributionType{block(), cyclic(1)},
         .range = {query::TypePattern{query::p_block(), query::p_block()},
                   query::TypePattern{query::any_dim(),
                                      query::p_cyclic_any()}}});
    // (BLOCK, BLOCK) is within range.
    b3.distribute(DistributionType{block(), block()});
    // (CYCLIC(2), CYCLIC(4)) matches (*, CYCLIC).
    b3.distribute(DistributionType{cyclic(2), cyclic(4)});
    // (CYCLIC, BLOCK) matches neither pattern.
    try {
      b3.distribute(DistributionType{cyclic(1), block()});
      ck.fail("expected RangeViolationError");
    } catch (const RangeViolationError&) {
    }
  });
}

TEST(Redistribute, NoopMovesNoData) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({32}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.fill(3.0);
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    a.distribute(DistributionType{block()});  // identical mapping
    ctx.barrier();
    if (ctx.rank() == 0) {
      ck.check_eq(ctx.machine().total_stats().data_messages,
                  std::uint64_t{0}, 0, "no data motion for no-op");
    }
    ctx.barrier();
  });
}

TEST(Redistribute, MessageCountWithinPairBound) {
  // A BLOCK -> CYCLIC redistribution communicates at most P*(P-1) data
  // messages (one per ordered processor pair).
  msg::Machine m(4);
  msg::run_spmd(m, [](Context& ctx) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({64}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.fill(1.0);
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    a.distribute(DistributionType{cyclic(1)});
  });
  EXPECT_LE(m.total_stats().data_messages, 4u * 3u);
  EXPECT_GT(m.total_stats().data_messages, 0u);
  // Every element leaves its old rank except those staying put: with 64
  // elements on 4 ranks, block segment p holds 16 elements of which 4 stay.
  EXPECT_EQ(m.total_stats().data_bytes, (64 - 16) * sizeof(double));
}

TEST(Redistribute, DistExprExtractionForm) {
  // DISTRIBUTE B4 :: (=B1, CYCLIC(3)) -- Example 3, fourth statement.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
    Env env(ctx, grid);
    Env line_env(ctx);
    DistArray<double> b1(line_env, {.name = "B1",
                                    .domain = IndexDomain::of_extents({8}),
                                    .dynamic = true,
                                    .initial = DistributionType{cyclic(7)}});
    DistArray<double> b4(env, {.name = "B4",
                               .domain = IndexDomain::of_extents({8, 8}),
                               .dynamic = true,
                               .initial = DistributionType{block(), cyclic(1)}});
    b4.distribute(DistExpr{extract_dim(b1, 0), dist::cyclic(3)});
    ck.check_eq(b4.distribution().type().dim(0).kind,
                dist::DimDistKind::Cyclic, ctx.rank(), "extracted kind");
    ck.check_eq(b4.distribution().type().dim(0).cyclic_block, dist::Index{7},
                ctx.rank(), "extracted parameter");
    ck.check_eq(b4.distribution().type().dim(1).cyclic_block, dist::Index{3},
                ctx.rank(), "explicit parameter");
  });
}

TEST(Redistribute, AlignmentFormOfDistribute) {
  // DISTRIBUTE B :: ALIGN WITH A(transpose): B adopts A's distribution
  // through the alignment.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8, 8});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{col(), block()}});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{col(), block()}});
    b.init([&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i));
    });
    b.distribute(
        DistExpr::align_with(a, dist::Alignment::permutation(2, {1, 0})));
    // B(i,j) now colocated with A(j,i).
    b.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, static_cast<double>(dom.linearize(i)), ctx.rank(),
                  "value preserved");
      ck.check_eq(a.distribution().owner_rank({i[1], i[0]}), ctx.rank(),
                  ctx.rank(), "colocation");
    });
  });
}

// Property sweep: every (from, to) pair of a distribution family preserves
// array contents on 2-D data.
struct RedistCase {
  std::string label;
  DistributionType from;
  DistributionType to;
};

class RedistributeProperty : public ::testing::TestWithParam<RedistCase> {};

TEST_P(RedistributeProperty, PreservesValues) {
  const auto& tc = GetParam();
  check_preserves(4, IndexDomain::of_extents({9, 13}), tc.from,
                  [&](DistArray<double>& a) { a.distribute(tc.to); });
}

std::vector<RedistCase> redist_cases() {
  const std::vector<std::pair<std::string, DistributionType>> family = {
      {"colblock", {col(), block()}},
      {"blockcol", {block(), col()}},
      {"cyc1col", {cyclic(1), col()}},
      {"colcyc2", {col(), cyclic(2)}},
      {"gencol", {s_block({3, 0, 2, 4}), col()}},
  };
  std::vector<RedistCase> cases;
  for (const auto& [nf, f] : family) {
    for (const auto& [nt, t] : family) {
      if (nf == nt) continue;
      cases.push_back({nf + "_to_" + nt, f, t});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Pairs, RedistributeProperty,
                         ::testing::ValuesIn(redist_cases()),
                         [](const ::testing::TestParamInfo<RedistCase>& pinfo) {
                           return pinfo.param.label;
                         });

}  // namespace
}  // namespace vf::rt
