// Tests for the run-based redistribution plan cache (Section 3.2.2 +
// inspector/executor amortization): a cached DISTRIBUTE must produce
// bit-identical data to the cold path across the whole distribution
// family, must actually hit the cache on repeated flips, and must not
// re-run any inspector exchange -- the repeated flip performs exactly one
// collective (the value all-to-all) with zero control messages.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

std::vector<int> pseudo_owners(Index n, int nprocs, int salt) {
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    owners.push_back(static_cast<int>((k * 7 + salt) % nprocs));
  }
  return owners;
}

/// Property: flipping A<->B twice with the plan cache enabled must yield
/// exactly the same global contents as with the cache disabled, for every
/// ordered pair of the family.
TEST(RedistPlanCache, CachedFlipsMatchColdPathAcrossFamily) {
  constexpr int kProcs = 4;
  constexpr Index kN = 29;
  const std::vector<std::pair<std::string, DistributionType>> family = {
      {"block", {block()}},
      {"cyclic3", {cyclic(3)}},
      {"sblock", {dist::s_block({12, 2, 7, 8})}},
      {"indirect", {dist::indirect(pseudo_owners(kN, kProcs, 3))}},
  };
  for (const auto& [na, ta] : family) {
    for (const auto& [nb, tb] : family) {
      if (na == nb) continue;
      std::vector<double> cold;
      std::vector<double> cached;
      for (const bool use_cache : {false, true}) {
        run_checked(kProcs, [&, use_cache](Context& ctx, SpmdChecker& ck) {
          Env env(ctx);
          DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = ta});
          a.set_redist_plan_cache(use_cache);
          a.init([](const IndexVec& i) { return 10.0 * i[0] + 0.5; });
          // Two full round trips: the second exercises cached plans for
          // both directions when the cache is on.
          for (int flip = 0; flip < 4; ++flip) {
            a.distribute(flip % 2 == 0 ? tb : ta);
          }
          if (use_cache) {
            ck.check(a.redist_plan_hits() >= 2, ctx.rank(),
                     na + "->" + nb + ": expected plan cache hits");
          } else {
            ck.check_eq(a.redist_plan_hits(), std::uint64_t{0}, ctx.rank(),
                        "cache disabled: no hits");
          }
          auto full = a.gather_global();
          if (ctx.rank() == 0) {
            (use_cache ? cached : cold) = full;
          }
        });
      }
      EXPECT_EQ(cold, cached) << na << " -> " << nb;
      ASSERT_EQ(cold.size(), static_cast<std::size_t>(kN));
      for (Index k = 0; k < kN; ++k) {
        EXPECT_EQ(cold[static_cast<std::size_t>(k)], 10.0 * (k + 1) + 0.5)
            << na << " -> " << nb << " at " << k;
      }
    }
  }
}

/// A repeated DISTRIBUTE must not re-run any inspector exchange: the plan
/// knows both sides' counts, so each flip is exactly one collective (the
/// value all-to-all) and sends zero control messages.
TEST(RedistPlanCache, RepeatedDistributeRunsNoInspectorExchange) {
  msg::Machine m(4);
  msg::CommStats warm_stats;
  msg::run_spmd(m, [&](Context& ctx) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16, 16}),
                              .dynamic = true,
                              .initial = DistributionType{col(), block()}});
    a.fill(1.0);
    // Warm the cache with one full row<->column round trip (the ADI
    // pattern of Section 4).
    a.distribute(DistributionType{block(), col()});
    a.distribute(DistributionType{col(), block()});
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    a.distribute(DistributionType{block(), col()});
    ctx.barrier();
    if (ctx.rank() == 0) warm_stats = ctx.machine().total_stats();
    ctx.barrier();
    EXPECT_GE(a.redist_plan_hits(), 1u);
  });
  // One alltoallv_known per rank = 4 collectives machine-wide (plus the
  // barriers we injected around the measurement, which send no payload).
  EXPECT_EQ(warm_stats.ctl_messages, 0u);
  EXPECT_EQ(warm_stats.ctl_bytes, 0u);
  EXPECT_GT(warm_stats.data_messages, 0u);
  EXPECT_LE(warm_stats.data_messages, 4u * 3u);
}

/// The cold path already avoids the count exchange (the freshly built plan
/// knows the counts), but must re-run the local inspector; the cache
/// counters expose the difference.
TEST(RedistPlanCache, CountersDistinguishColdAndCachedFlips) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({48}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    a.distribute(DistributionType{cyclic(1)});
    ck.check_eq(a.redist_plan_misses(), std::uint64_t{1}, ctx.rank(),
                "first flip is a miss");
    a.distribute(DistributionType{block()});
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    ck.check_eq(a.redist_plan_misses(), std::uint64_t{2}, ctx.rank(),
                "one miss per direction");
    ck.check_eq(a.redist_plan_hits(), std::uint64_t{2}, ctx.rank(),
                "repeats hit");
    a.for_owned([&](const IndexVec& i, int& v) {
      ck.check_eq(v, static_cast<int>(i[0]), ctx.rank(), "data preserved");
    });
  });
}

/// Overlap (ghost) widths change the storage geometry, so plans built with
/// ghosts must still round-trip data exactly.
TEST(RedistPlanCache, GhostPaddedStorageRedistributesCorrectly) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({24}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {2},
                              .overlap_hi = {2}});
    a.init([](const IndexVec& i) { return 3.0 * i[0]; });
    a.distribute(DistributionType{dist::s_block({9, 3, 5, 7})});
    a.distribute(DistributionType{block()});
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 3.0 * i[0], ctx.rank(), "ghost-padded round trip");
    });
    a.exchange_overlap();
    const Index lo = 6 * ctx.rank() + 1;
    if (lo > 1) {
      ck.check_eq(a.halo({lo - 1}), 3.0 * (lo - 1), ctx.rank(),
                  "ghost value after redistribute");
    }
  });
}

}  // namespace
}  // namespace vf::rt
