// Tests for DistArray: declarations (static / DYNAMIC / RANGE / initial
// distribution), local access functions, iteration, reductions and
// gathering (paper Sections 2.3 and 3.2.1).
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(DistArrayDecl, StaticArrayRequiresInitialDistribution) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    try {
      DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({8})});
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(DistArrayDecl, DynamicWithoutInitialIsUnaccessible) {
  // "An array for which an initial distribution has not been specified
  // cannot be legally accessed before ... a distribute statement."
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> b1(env, {.name = "B1",
                               .domain = IndexDomain::of_extents({8}),
                               .dynamic = true});
    ck.check(!b1.has_distribution(), ctx.rank(), "no distribution yet");
    try {
      (void)b1.at({1});
      ck.fail("expected NotDistributedError");
    } catch (const NotDistributedError&) {
    }
    b1.distribute(dist::DistributionType{block()});
    ck.check(b1.has_distribution(), ctx.rank(), "distributed now");
    b1.fill(1.0);
  });
}

TEST(DistArrayDecl, InitialDistributionIsApplied) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b2(env, {.name = "B2",
                            .domain = IndexDomain::of_extents({16}),
                            .dynamic = true,
                            .initial = dist::DistributionType{block()}});
    ck.check(b2.has_distribution(), ctx.rank(), "initial dist");
    ck.check_eq(b2.layout().total, dist::Index{4}, ctx.rank(), "local size");
    ck.check_eq(b2.distribution().owner_rank({5}), 1, ctx.rank(), "owner");
  });
}

TEST(DistArrayDecl, RangeRejectsInitialOutsideRange) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    try {
      DistArray<int> b(env, {.name = "B",
                             .domain = IndexDomain::of_extents({8}),
                             .dynamic = true,
                             .initial = dist::DistributionType{cyclic(1)},
                             .range = {query::TypePattern{query::p_block()}}});
      ck.fail("expected RangeViolationError");
    } catch (const RangeViolationError&) {
    }
  });
}

TEST(DistArrayDecl, RegistryFindsArraysByName) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({4}),
                           .dynamic = true});
    ck.check(env.find_array("A") == &a, ctx.rank(), "registry lookup");
    ck.check(env.find_array("Z") == nullptr, ctx.rank(), "missing name");
  });
}

TEST(DistArrayAccess, OwnerComputesWriteAndRead) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8, 8}),
                              .dynamic = true,
                              .initial = dist::DistributionType{col(), block()}});
    // Owner-computes: every rank writes f(i,j) into its owned elements.
    a.init([](const IndexVec& i) {
      return static_cast<double>(10 * i[0] + i[1]);
    });
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, static_cast<double>(10 * i[0] + i[1]), ctx.rank(),
                  "read back " + i.to_string());
    });
    // operator() convenience on an owned element.
    const dist::Index my_col = 2 * ctx.rank() + 1;
    a(1, my_col) = -1.0;
    ck.check_eq(a.at({1, my_col}), -1.0, ctx.rank(), "operator()");
  });
}

TEST(DistArrayAccess, GatherGlobalAssemblesWholeArray) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({6, 5}),
                           .dynamic = true,
                           .initial = dist::DistributionType{block(), col()}});
    a.init([](const IndexVec& i) {
      return static_cast<int>(100 * i[0] + i[1]);
    });
    auto full = a.gather_global();
    ck.check_eq(full.size(), std::size_t{30}, ctx.rank(), "size");
    for (dist::Index i = 1; i <= 6; ++i) {
      for (dist::Index j = 1; j <= 5; ++j) {
        const auto off = static_cast<std::size_t>(
            a.domain().linearize({i, j}));
        ck.check_eq(full[off], static_cast<int>(100 * i + j), ctx.rank(),
                    "gathered value");
      }
    }
  });
}

TEST(DistArrayAccess, ReduceSumMinMax) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<long> a(env, {.name = "A",
                            .domain = IndexDomain::of_extents({10}),
                            .dynamic = true,
                            .initial = dist::DistributionType{cyclic(1)}});
    a.init([](const IndexVec& i) { return static_cast<long>(i[0]); });
    ck.check_eq(a.reduce(msg::ReduceOp::Sum), 55L, ctx.rank(), "sum");
    ck.check_eq(a.reduce(msg::ReduceOp::Min), 1L, ctx.rank(), "min");
    ck.check_eq(a.reduce(msg::ReduceOp::Max), 10L, ctx.rank(), "max");
  });
}

TEST(DistArrayAccess, ReduceWithEmptyRanks) {
  // 2 elements on 4 ranks: two ranks own nothing and must contribute the
  // identity.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({2}),
                           .dynamic = true,
                           .initial = dist::DistributionType{block()}});
    a.init([](const IndexVec& i) { return static_cast<int>(5 * i[0]); });
    ck.check_eq(a.reduce(msg::ReduceOp::Sum), 15, ctx.rank(), "sum");
    ck.check_eq(a.reduce(msg::ReduceOp::Min), 5, ctx.rank(), "min");
    ck.check_eq(a.reduce(msg::ReduceOp::Max), 10, ctx.rank(), "max");
  });
}

TEST(DistArrayDecl, DescriptorReflectsState) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<float> a(env, {.name = "A",
                             .domain = IndexDomain::of_extents({12}),
                             .dynamic = true,
                             .initial = dist::DistributionType{block()}});
    const Descriptor d = a.describe();
    ck.check(d.dynamic, ctx.rank(), "dynamic flag");
    ck.check(d.primary, ctx.rank(), "primary flag");
    ck.check_eq(d.index_dom.size(), dist::Index{12}, ctx.rank(), "domain");
    ck.check_eq(d.connect_class_size, std::size_t{1}, ctx.rank(), "class");
    ck.check(d.dist != nullptr, ctx.rank(), "dist present");
  });
}

TEST(DistArrayDecl, SectionRestrictedArrayLeavesOtherRanksEmpty) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    dist::ProcessorSection half(
        env.processors(),
        {dist::SectionDim::all(dist::Range{1, 2})});
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = dist::DistributionType{block()},
                           .to = half});
    if (ctx.rank() < 2) {
      ck.check_eq(a.layout().total, dist::Index{4}, ctx.rank(), "owns half");
    } else {
      ck.check(!a.layout().member, ctx.rank(), "outside section");
    }
    // Collective ops still work for non-members.
    ck.check_eq(a.reduce(msg::ReduceOp::Sum), 0, ctx.rank(), "zero sum");
  });
}

}  // namespace
}  // namespace vf::rt
