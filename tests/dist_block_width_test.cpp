// Tests for BLOCK(M): the explicit-width block distribution of the Vienna
// Fortran specification, plus the descriptor-only no-op DISTRIBUTE path.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::dist {
namespace {

TEST(BlockWidth, ExplicitWidthShiftsBoundaries) {
  // 10 elements, width 5 on 4 procs: procs 0..1 own 5 each, 2..3 empty.
  auto m = DimMap::block_width(Range{1, 10}, 4, 5);
  EXPECT_EQ(m.count_on(0), 5);
  EXPECT_EQ(m.count_on(1), 5);
  EXPECT_EQ(m.count_on(2), 0);
  EXPECT_EQ(m.count_on(3), 0);
  EXPECT_EQ(m.proc_of(6), 1);
}

TEST(BlockWidth, MustCoverDomain) {
  EXPECT_THROW(DimMap::block_width(Range{1, 10}, 2, 4),
               std::invalid_argument);
  EXPECT_THROW(DimMap::block_width(Range{1, 10}, 2, 0),
               std::invalid_argument);
  EXPECT_NO_THROW(DimMap::block_width(Range{1, 10}, 2, 5));
}

TEST(BlockWidth, TypeFactoryAndApplication) {
  Distribution d(IndexDomain::of_extents({12}), {block_width(4)},
                 ProcessorSection(ProcessorArray::line(4)));
  EXPECT_EQ(d.local_size(0), 4);
  EXPECT_EQ(d.local_size(2), 4);
  EXPECT_EQ(d.local_size(3), 0);
  EXPECT_EQ(d.type().to_string(), "(BLOCK(4))");
  EXPECT_THROW((void)block_width(0), std::invalid_argument);
}

TEST(BlockWidth, OwnershipInvariants) {
  auto m = DimMap::block_width(Range{1, 17}, 3, 7);
  Index total = 0;
  for (int c = 0; c < 3; ++c) total += m.count_on(c);
  EXPECT_EQ(total, 17);
  for (Index i = 1; i <= 17; ++i) {
    const int c = m.proc_of(i);
    EXPECT_EQ(m.global_of(c, m.local_of(i)), i);
  }
}

}  // namespace
}  // namespace vf::dist

namespace vf::rt {
namespace {

using dist::DistributionType;
using dist::IndexDomain;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(NoopDistribute, DescriptorStillAdoptsRequestedType) {
  // DISTRIBUTE to a mapping-equivalent type keeps the data in place but
  // the descriptor (and therefore IDT/DCASE) must see the new type.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{dist::block()}});
    a.init([](const dist::IndexVec& i) { return 1.0 * i[0]; });
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    // S_BLOCK(4,4,4,4) of 16 on 4 == BLOCK: no data moves...
    a.distribute(DistributionType{dist::s_block({4, 4, 4, 4})});
    ctx.barrier();
    if (ctx.rank() == 0) {
      ck.check_eq(ctx.machine().total_stats().data_messages,
                  std::uint64_t{0}, 0, "no data motion");
    }
    ctx.barrier();  // peers hold here until the rank-0 read completes
    // ...but the descriptor reflects the request.
    ck.check_eq(a.distribution().type().dim(0).kind,
                dist::DimDistKind::GenBlock, ctx.rank(), "adopted type");
    a.for_owned([&](const dist::IndexVec& i, double& v) {
      ck.check_eq(v, 1.0 * i[0], ctx.rank(), "data untouched");
    });
    // BLOCK(4) is also equivalent here.
    a.distribute(DistributionType{dist::block_width(4)});
    ck.check_eq(a.distribution().type().dim(0).block_width, dist::Index{4},
                ctx.rank(), "explicit width adopted");
  });
}

TEST(BlockWidthArray, RedistributeWithExplicitWidth) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({12}),
                           .dynamic = true,
                           .initial = DistributionType{dist::block()}});
    a.init([](const dist::IndexVec& i) { return static_cast<int>(i[0]); });
    // Width 4 blocks pack everything onto the first three processors.
    a.distribute(DistributionType{dist::block_width(4)});
    if (ctx.rank() < 3) {
      ck.check_eq(a.layout().total, dist::Index{4}, ctx.rank(), "4 each");
    } else {
      ck.check_eq(a.layout().total, dist::Index{0}, ctx.rank(), "empty");
    }
    a.for_owned([&](const dist::IndexVec& i, int& v) {
      ck.check_eq(v, static_cast<int>(i[0]), ctx.rank(), "values moved");
    });
  });
}

}  // namespace
}  // namespace vf::rt
