// Tests for connect classes (paper Section 2.3) and the NOTRANSFER
// attribute (Section 2.4): secondary arrays follow the primary through
// DISTRIBUTE, extraction and alignment connections are maintained, and
// NOTRANSFER suppresses data motion.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Connect, SecondaryMustBeDynamic) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    try {
      DistArray<int> a(env,
                       {.name = "A",
                        .domain = IndexDomain::of_extents({8})},
                       Connection::extraction(b));
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Connect, ExtractionAdoptsPrimaryTypeImmediately) {
  // Example 2: A1(N,N) DYNAMIC, CONNECT(=B4).
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
    Env env(ctx, grid);
    DistArray<double> b4(env, {.name = "B4",
                               .domain = IndexDomain::of_extents({8, 8}),
                               .dynamic = true,
                               .initial = DistributionType{block(), cyclic(1)}});
    DistArray<double> a1(env,
                         {.name = "A1",
                          .domain = IndexDomain::of_extents({6, 6}),
                          .dynamic = true},
                         Connection::extraction(b4));
    ck.check(a1.has_distribution(), ctx.rank(), "adopted at declaration");
    ck.check(a1.is_secondary(), ctx.rank(), "secondary");
    ck.check(b4.is_primary(), ctx.rank(), "primary");
    ck.check_eq(a1.distribution().type(), b4.distribution().type(),
                ctx.rank(), "same type");
    ck.check_eq(b4.connect_class().secondaries().size(), std::size_t{1},
                ctx.rank(), "C(B4) = {B4, A1}");
  });
}

TEST(Connect, DistributePropagatesThroughClass) {
  // Example 3, fourth statement: distributing B4 redistributes A1 and A2.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
    Env env(ctx, grid);
    const IndexDomain dom = IndexDomain::of_extents({8, 8});
    DistArray<double> b4(env, {.name = "B4",
                               .domain = dom,
                               .dynamic = true,
                               .initial = DistributionType{block(), cyclic(1)}});
    DistArray<double> a1(env, {.name = "A1", .domain = dom, .dynamic = true},
                         Connection::extraction(b4));
    DistArray<double> a2(env, {.name = "A2", .domain = dom, .dynamic = true},
                         Connection::alignment(
                             b4, dist::Alignment::identity(2)));
    a1.init([&](const IndexVec& i) { return 1.0 * dom.linearize(i); });
    a2.init([&](const IndexVec& i) { return 2.0 * dom.linearize(i); });

    b4.distribute(DistributionType{cyclic(2), cyclic(3)});

    ck.check_eq(a1.distribution().type(), b4.distribution().type(),
                ctx.rank(), "A1 follows");
    ck.check_eq(a2.distribution().type(), b4.distribution().type(),
                ctx.rank(), "A2 follows");
    // Identity alignment: same mapping as the primary.
    ck.check(a2.distribution().same_mapping(b4.distribution()), ctx.rank(),
             "A2 identical mapping");
    a1.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 1.0 * dom.linearize(i), ctx.rank(), "A1 data moved");
    });
    a2.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 2.0 * dom.linearize(i), ctx.rank(), "A2 data moved");
    });
  });
}

TEST(Connect, AlignmentConnectionKeepsColocation) {
  // A transposed secondary stays colocated across redistributions.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8, 8});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{col(), block()}});
    DistArray<double> d(env, {.name = "D", .domain = dom, .dynamic = true},
                        Connection::alignment(
                            b, dist::Alignment::permutation(2, {1, 0})));
    b.distribute(DistributionType{block(), col()});
    d.for_owned([&](const IndexVec& i, double&) {
      ck.check_eq(b.distribution().owner_rank({i[1], i[0]}), ctx.rank(),
                  ctx.rank(), "D(i,j) with B(j,i)");
    });
  });
}

TEST(Connect, DistributeOnSecondaryIsRejected) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    DistArray<int> a(env,
                     {.name = "A",
                      .domain = IndexDomain::of_extents({8}),
                      .dynamic = true},
                     Connection::extraction(b));
    try {
      a.distribute(DistributionType{cyclic(1)});
      ck.fail("expected logic_error (secondary)");
    } catch (const std::logic_error&) {
    }
  });
}

TEST(Connect, SecondaryOfSecondaryIsRejected) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    DistArray<int> a(env,
                     {.name = "A",
                      .domain = IndexDomain::of_extents({8}),
                      .dynamic = true},
                     Connection::extraction(b));
    try {
      DistArray<int> c(env,
                       {.name = "C",
                        .domain = IndexDomain::of_extents({8}),
                        .dynamic = true},
                       Connection::extraction(a));
      ck.fail("expected invalid_argument (secondary primary)");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Connect, NoTransferSkipsDataMotion) {
  msg::Machine m(4);
  msg::run_spmd(m, [](Context& ctx) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({64});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    DistArray<double> a(env, {.name = "A", .domain = dom, .dynamic = true},
                        Connection::extraction(b));
    b.fill(1.0);
    a.fill(2.0);
    ctx.barrier();
    if (ctx.rank() == 0) ctx.machine().reset_stats();
    ctx.barrier();
    b.distribute(DistributionType{cyclic(1)}, NoTransfer{&a});
    // A's descriptor changed even though its data did not move.
    if (a.distribution().type().dim(0).kind != dist::DimDistKind::Cyclic) {
      throw std::runtime_error("descriptor not updated");
    }
  });
  // Only B's elements travelled: 64 - 16 stay-at-home = 48 doubles.
  EXPECT_EQ(m.total_stats().data_bytes, 48 * sizeof(double));
}

TEST(Connect, NoTransferValidatesMembership) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    DistArray<int> x(env, {.name = "X",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    try {
      b.distribute(DistributionType{cyclic(1)}, NoTransfer{&x});
      ck.fail("expected invalid_argument (X not in C(B))");
    } catch (const std::invalid_argument&) {
    }
    try {
      x.distribute(DistributionType{cyclic(1)}, NoTransfer{&x});
      ck.fail("expected invalid_argument (primary in NOTRANSFER)");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Connect, IndependentClassesDoNotInterfere) {
  // "The distributions of arrays in different equivalence classes are
  // independent of each other."
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b1(env, {.name = "B1",
                            .domain = IndexDomain::of_extents({8}),
                            .dynamic = true,
                            .initial = DistributionType{block()}});
    DistArray<int> b2(env, {.name = "B2",
                            .domain = IndexDomain::of_extents({8}),
                            .dynamic = true,
                            .initial = DistributionType{block()}});
    b1.distribute(DistributionType{cyclic(1)});
    ck.check_eq(b2.distribution().type().dim(0).kind,
                dist::DimDistKind::Block, ctx.rank(), "B2 untouched");
  });
}

TEST(Connect, SecondaryRangeIsCheckedOnPropagation) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    DistArray<int> a(env,
                     {.name = "A",
                      .domain = IndexDomain::of_extents({8}),
                      .dynamic = true,
                      .range = {query::TypePattern{query::p_block()}}},
                     Connection::extraction(b));
    try {
      b.distribute(DistributionType{cyclic(1)});
      ck.fail("expected RangeViolationError via secondary");
    } catch (const RangeViolationError&) {
    }
  });
}

}  // namespace
}  // namespace vf::rt
