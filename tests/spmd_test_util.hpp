// Helpers for running SPMD test bodies: gtest assertions are not
// thread-safe, so rank bodies record failures through SpmdChecker and the
// main thread asserts afterwards.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "vf/msg/spmd.hpp"

namespace vf::testing {

class SpmdChecker {
 public:
  /// Records a failure message (thread-safe).
  void fail(const std::string& msg) {
    std::lock_guard lk(mu_);
    failures_.push_back(msg);
  }

  /// Checks a condition; on failure records `what` with rank context.
  void check(bool ok, int rank, const std::string& what) {
    if (!ok) {
      std::ostringstream os;
      os << "[rank " << rank << "] " << what;
      fail(os.str());
    }
  }

  template <typename A, typename B>
  void check_eq(const A& a, const B& b, int rank, const std::string& what) {
    if (!(a == b)) {
      std::ostringstream os;
      os << "[rank " << rank << "] " << what << ": ";
      if constexpr (requires(std::ostream& s) { s << a << b; }) {
        os << a << " != " << b;
      } else {
        os << "values differ";
      }
      fail(os.str());
    }
  }

  /// Asserts (on the main thread) that no failures were recorded.
  void expect_clean() const {
    for (const auto& f : failures_) ADD_FAILURE() << f;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> failures_;
};

/// Runs `body(ctx, checker)` on every rank of an existing machine and
/// asserts no recorded failures -- for tests exercising machine reuse.
inline void run_checked_on(
    msg::Machine& m,
    const std::function<void(msg::Context&, SpmdChecker&)>& body) {
  SpmdChecker checker;
  msg::run_spmd(m, [&](msg::Context& ctx) { body(ctx, checker); });
  checker.expect_clean();
}

/// Runs `body(ctx, checker)` on `nprocs` ranks and asserts no recorded
/// failures.  Returns the machine's total communication statistics.
inline msg::CommStats run_checked(
    int nprocs,
    const std::function<void(msg::Context&, SpmdChecker&)>& body,
    msg::CostModel cm = {}) {
  SpmdChecker checker;
  msg::Machine m(nprocs, cm);
  msg::run_spmd(m, [&](msg::Context& ctx) { body(ctx, checker); });
  checker.expect_clean();
  return m.total_stats();
}

}  // namespace vf::testing
