// Tests for index domains, ranges and processor arrays/sections.
#include <gtest/gtest.h>

#include "vf/dist/index.hpp"
#include "vf/dist/processors.hpp"

namespace vf::dist {
namespace {

TEST(Range, SizeAndContains) {
  Range r{3, 7};
  EXPECT_EQ(r.size(), 5);
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(7));
  EXPECT_FALSE(r.contains(2));
  EXPECT_FALSE(r.contains(8));
  EXPECT_FALSE(r.empty());
}

TEST(Range, EmptyWhenHiBelowLo) {
  Range r{5, 4};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0);
  EXPECT_FALSE(r.contains(5));
}

TEST(Range, OfExtentIsOneBased) {
  Range r = Range::of_extent(10);
  EXPECT_EQ(r.lo, 1);
  EXPECT_EQ(r.hi, 10);
}

TEST(Range, Intersect) {
  EXPECT_EQ(Range(1, 10).intersect({5, 20}), Range(5, 10));
  EXPECT_TRUE(Range(1, 3).intersect({5, 9}).empty());
}

TEST(IndexVec, BasicOps) {
  IndexVec v{1, 2, 3};
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.at(2), 3);
  EXPECT_THROW((void)v.at(3), std::out_of_range);
  v.push_back(9);
  EXPECT_EQ(v.size(), 4);
  EXPECT_THROW(v.push_back(1), std::length_error);
}

TEST(IndexVec, Equality) {
  EXPECT_EQ((IndexVec{1, 2}), (IndexVec{1, 2}));
  EXPECT_NE((IndexVec{1, 2}), (IndexVec{1, 2, 3}));
  EXPECT_NE((IndexVec{1, 2}), (IndexVec{2, 1}));
}

TEST(IndexVec, Filled) {
  auto v = IndexVec::filled(3, 7);
  EXPECT_EQ(v, (IndexVec{7, 7, 7}));
}

TEST(IndexDomain, SizeAndContains) {
  IndexDomain d = IndexDomain::of_extents({10, 20});
  EXPECT_EQ(d.rank(), 2);
  EXPECT_EQ(d.size(), 200);
  EXPECT_TRUE(d.contains({1, 1}));
  EXPECT_TRUE(d.contains({10, 20}));
  EXPECT_FALSE(d.contains({11, 1}));
  EXPECT_FALSE(d.contains({1, 0}));
  EXPECT_FALSE(d.contains({1}));  // rank mismatch
}

TEST(IndexDomain, LinearizeIsColumnMajorAndInvertible) {
  IndexDomain d({Range{2, 4}, Range{1, 3}});
  // Column-major: first dimension fastest.
  EXPECT_EQ(d.linearize({2, 1}), 0);
  EXPECT_EQ(d.linearize({3, 1}), 1);
  EXPECT_EQ(d.linearize({2, 2}), 3);
  for (Index off = 0; off < d.size(); ++off) {
    EXPECT_EQ(d.linearize(d.delinearize(off)), off);
  }
}

TEST(ProcessorArray, RankMapping) {
  ProcessorArray r("R", IndexDomain::of_extents({2, 3}));
  EXPECT_EQ(r.nprocs(), 6);
  EXPECT_EQ(r.machine_rank({1, 1}), 0);
  EXPECT_EQ(r.machine_rank({2, 1}), 1);
  EXPECT_EQ(r.machine_rank({1, 2}), 2);
  for (int p = 0; p < 6; ++p) {
    EXPECT_EQ(r.machine_rank(r.coords_of(p)), p);
  }
  EXPECT_THROW((void)r.machine_rank({3, 1}), std::out_of_range);
}

TEST(ProcessorArray, BaseRankOffsetsMachineRanks) {
  ProcessorArray r("R", IndexDomain::of_extents({4}), /*base_rank=*/2);
  EXPECT_EQ(r.machine_rank({1}), 2);
  EXPECT_EQ(r.machine_rank({4}), 5);
  EXPECT_TRUE(r.contains_rank(2));
  EXPECT_FALSE(r.contains_rank(1));
  EXPECT_FALSE(r.contains_rank(6));
}

TEST(ProcessorSection, WholeArray) {
  ProcessorArray r = ProcessorArray::grid(2, 2);
  ProcessorSection s(r);
  EXPECT_EQ(s.free_rank(), 2);
  EXPECT_EQ(s.nprocs(), 4);
  auto ranks = s.machine_ranks();
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProcessorSection, FixedDimensionReducesRank) {
  // R(2, 1:3) of a 2x3 array: one free dimension of extent 3.
  ProcessorArray r("R", IndexDomain::of_extents({2, 3}));
  ProcessorSection s(r, {SectionDim::at(2), SectionDim::all(Range{1, 3})});
  EXPECT_EQ(s.free_rank(), 1);
  EXPECT_EQ(s.nprocs(), 3);
  EXPECT_EQ(s.machine_rank({0}), r.machine_rank({2, 1}));
  EXPECT_EQ(s.machine_rank({2}), r.machine_rank({2, 3}));
}

TEST(ProcessorSection, SubRange) {
  ProcessorArray r = ProcessorArray::line(8);
  ProcessorSection s(r, {SectionDim::all(Range{3, 6})});
  EXPECT_EQ(s.nprocs(), 4);
  EXPECT_EQ(s.machine_rank({0}), 2);  // processor R(3) is machine rank 2
  auto fc = s.free_coords_of(4);
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ((*fc)[0], 2);
  EXPECT_FALSE(s.free_coords_of(1).has_value());  // outside sub-range
  EXPECT_FALSE(s.free_coords_of(7).has_value());
}

TEST(ProcessorSection, FreeCoordsRejectMismatchedFixed) {
  ProcessorArray r("R", IndexDomain::of_extents({2, 2}));
  ProcessorSection s(r, {SectionDim::at(1), SectionDim::all(Range{1, 2})});
  // Machine rank 1 is R(2,1): fixed coordinate 1 != 2 -> not in section.
  EXPECT_FALSE(s.free_coords_of(1).has_value());
  EXPECT_TRUE(s.free_coords_of(0).has_value());
  EXPECT_TRUE(s.free_coords_of(2).has_value());
}

TEST(ProcessorSection, RejectsOutOfBoundsRange) {
  ProcessorArray r = ProcessorArray::line(4);
  EXPECT_THROW(ProcessorSection(r, {SectionDim::all(Range{1, 5})}),
               std::out_of_range);
  EXPECT_THROW(ProcessorSection(r, {}), std::invalid_argument);
}

}  // namespace
}  // namespace vf::dist
