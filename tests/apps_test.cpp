// Integration tests for the application engines of Section 4: the three
// ADI strategies must agree numerically, smoothing must be layout-
// independent, and PIC must conserve particles while rebalancing improves
// the load balance.
#include <gtest/gtest.h>

#include <cmath>

#include "spmd_test_util.hpp"
#include "vf/apps/adi_sim.hpp"
#include "vf/apps/amr_front.hpp"
#include "vf/apps/kernels.hpp"
#include "vf/apps/pic_sim.hpp"
#include "vf/apps/smoothing_sim.hpp"

namespace vf::apps {
namespace {

using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Kernels, TridiagSolvesConstantCoefficientSystem) {
  // Verify a*x[k-1] + b*x[k] + a*x[k+1] = rhs for the computed solution.
  std::vector<double> rhs = {1.0, -2.0, 3.5, 0.0, 7.25, -1.0};
  const std::vector<double> orig = rhs;
  tridiag(rhs, -1.0, 4.0);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    double lhs = 4.0 * rhs[k];
    if (k > 0) lhs += -1.0 * rhs[k - 1];
    if (k + 1 < rhs.size()) lhs += -1.0 * rhs[k + 1];
    EXPECT_NEAR(lhs, orig[k], 1e-10) << "row " << k;
  }
}

TEST(Kernels, TridiagHandlesEdgeSizes) {
  std::vector<double> one = {8.0};
  tridiag(one, -1.0, 4.0);
  EXPECT_DOUBLE_EQ(one[0], 2.0);
  std::vector<double> empty;
  tridiag(empty);  // no-op, no crash
}

TEST(Kernels, BalancePartitionsEqualWork) {
  std::vector<std::int64_t> per_cell(16, 10);
  auto bounds = balance(per_cell, 4);
  EXPECT_EQ(bounds, (std::vector<dist::Index>{4, 8, 12, 16}));
}

TEST(Kernels, BalanceHandlesSkew) {
  // All work in the first 4 cells: they get split across processors.
  std::vector<std::int64_t> per_cell(16, 0);
  for (int c = 0; c < 4; ++c) per_cell[static_cast<std::size_t>(c)] = 100;
  auto bounds = balance(per_cell, 4);
  EXPECT_EQ(bounds.back(), 16);
  EXPECT_LE(bounds[0], 2);  // first processor's segment ends early
  // Bounds non-decreasing.
  for (std::size_t p = 1; p < bounds.size(); ++p) {
    EXPECT_GE(bounds[p], bounds[p - 1]);
  }
}

TEST(Kernels, ImbalanceMetric) {
  std::vector<std::int64_t> even = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(imbalance(even), 1.0);
  std::vector<std::int64_t> skew = {40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(skew), 4.0);
}

TEST(AdiStrategies, AllThreeAgreeNumerically) {
  // The same computation under the three data-layout strategies of E2
  // must produce identical results -- redistribution, gathered lines and
  // two-copy assignment are different communications of the same math.
  constexpr int kProcs = 4;
  const AdiConfig cfg{.nx = 24, .ny = 24, .iterations = 2};
  double sums[3] = {0, 0, 0};
  for (int s = 0; s < 3; ++s) {
    msg::Machine machine(kProcs);
    msg::run_spmd(machine, [&](Context& ctx) {
      auto r = run_adi(ctx, cfg, static_cast<AdiStrategy>(s));
      if (ctx.rank() == 0) sums[s] = r.checksum;
    });
  }
  EXPECT_NEAR(sums[0], sums[1], 1e-9 * std::abs(sums[0]));
  EXPECT_NEAR(sums[0], sums[2], 1e-9 * std::abs(sums[0]));
}

TEST(AdiStrategies, DynamicConfinesCommunicationToRedistribute) {
  constexpr int kProcs = 4;
  msg::Machine machine(kProcs);
  msg::run_spmd(machine, [&](Context& ctx) {
    auto r = run_adi(ctx, {.nx = 16, .ny = 16, .iterations = 1},
                     AdiStrategy::DynamicRedistribution);
    (void)r;
  });
  // Two redistributions (over + back), each at most P*(P-1) messages, plus
  // the final reduction's control traffic.
  EXPECT_LE(machine.total_stats().data_messages, 2u * kProcs * (kProcs - 1));
}

TEST(Smoothing, LayoutsAgreeNumerically) {
  const SmoothConfig cfg{.n = 32, .steps = 3};
  double sums[2] = {0, 0};
  {
    msg::Machine machine(4);
    msg::run_spmd(machine, [&](Context& ctx) {
      auto r = run_smoothing(ctx, cfg, SmoothLayout::Columns);
      if (ctx.rank() == 0) sums[0] = r.checksum;
    });
  }
  {
    msg::Machine machine(4);
    msg::run_spmd(machine, [&](Context& ctx) {
      auto r = run_smoothing(ctx, cfg, SmoothLayout::Grid2D);
      if (ctx.rank() == 0) sums[1] = r.checksum;
    });
  }
  EXPECT_NEAR(sums[0], sums[1], 1e-9 * std::abs(sums[0]));
}

TEST(Smoothing, Grid2DRequiresSquareProcessorCount) {
  msg::Machine machine(3);
  EXPECT_THROW(
      msg::run_spmd(machine,
                    [&](Context& ctx) {
                      (void)run_smoothing(ctx, {.n = 16, .steps = 1},
                                          SmoothLayout::Grid2D);
                    }),
      std::invalid_argument);
}

TEST(Smoothing, DecisionRuleFollowsAlphaBeta) {
  // High startup cost favours fewer, larger messages (columns); high
  // per-byte cost favours less volume (2-D blocks).
  const msg::CostModel latency_bound{.alpha_us = 1000.0,
                                     .beta_us_per_byte = 0.001};
  const msg::CostModel bandwidth_bound{.alpha_us = 1.0,
                                       .beta_us_per_byte = 1.0};
  EXPECT_EQ(choose_layout(256, 16, latency_bound, 8), SmoothLayout::Columns);
  EXPECT_EQ(choose_layout(256, 16, bandwidth_bound, 8), SmoothLayout::Grid2D);
}

TEST(Pic, ParticlesConservedWithoutOverflow) {
  constexpr int kProcs = 4;
  PicConfig cfg;
  cfg.ncell = 64;
  cfg.npart_max = 800;
  cfg.particles = 3000;
  cfg.steps = 20;
  cfg.rebalance_period = 10;
  msg::Machine machine(kProcs);
  PicResult result;
  msg::run_spmd(machine, [&](Context& ctx) {
    auto r = run_pic(ctx, cfg);
    if (ctx.rank() == 0) result = std::move(r);
  });
  EXPECT_EQ(result.dropped, 0);
  EXPECT_EQ(result.final_particles, cfg.particles);
  EXPECT_EQ(static_cast<int>(result.steps.size()), cfg.steps);
}

TEST(Pic, RebalancingImprovesLoadBalance) {
  constexpr int kProcs = 4;
  PicConfig cfg;
  cfg.ncell = 96;
  cfg.npart_max = 800;
  cfg.particles = 4000;
  cfg.steps = 30;

  auto run_with = [&](int period) {
    PicConfig c = cfg;
    c.rebalance_period = period;
    msg::Machine machine(kProcs);
    PicResult result;
    msg::run_spmd(machine, [&](Context& ctx) {
      auto r = run_pic(ctx, c);
      if (ctx.rank() == 0) result = std::move(r);
    });
    return result;
  };

  const PicResult statics = run_with(0);
  const PicResult dynamic = run_with(10);
  EXPECT_LT(dynamic.mean_imbalance, statics.mean_imbalance);
  EXPECT_LT(dynamic.makespan_units, statics.makespan_units);
  EXPECT_GT(dynamic.rebalances, 0);
  EXPECT_EQ(statics.rebalances, 0);
}

/// The refinement-front mini-app: per-rank asymmetric ghost widths that
/// follow the front must reproduce the sequential reference BITWISE on
/// every machine size -- including P = 9, where small grids leave whole
/// processor rows without interior cells.
TEST(AmrFront, MatchesSequentialReferenceAcrossMachineSizes) {
  const AmrFrontConfig cfg{
      .n = 30, .steps = 5, .front0 = 3, .front_step = 5};
  const double want = amr_checksum(amr_front_reference(cfg));
  for (const int np : {1, 4, 9}) {
    double got = 0.0;
    msg::Machine m(np);
    msg::run_spmd(m, [&](Context& ctx) {
      const auto r = run_amr_front(ctx, cfg);
      if (ctx.rank() == 0) got = r.checksum;
    });
    EXPECT_EQ(got, want) << "P=" << np;
  }
}

/// Counter contract of the sweep: one spec exchange per rank per step
/// (each step re-declares the overlap), and a stationary front turns
/// every exchange after the first into a family-plan cache hit.
TEST(AmrFront, SpecExchangeAndPlanCacheCounters) {
  constexpr int kP = 4;
  {
    AmrFrontResult res;
    msg::Machine m(kP);
    msg::run_spmd(m, [&](Context& ctx) {
      const auto r = run_amr_front(
          ctx, {.n = 24, .steps = 6, .front0 = 4, .front_step = 4});
      if (ctx.rank() == 0) res = r;
    });
    EXPECT_EQ(res.spec_exchanges, 6u * kP);  // one per rank per step
  }
  {
    // Stationary front: the family re-interns identically each step, so
    // one plan build per rank and hits for every further exchange.
    AmrFrontResult res;
    msg::Machine m(kP);
    msg::run_spmd(m, [&](Context& ctx) {
      const auto r = run_amr_front(
          ctx, {.n = 24, .steps = 6, .front0 = 12, .front_step = 0});
      if (ctx.rank() == 0) res = r;
    });
    EXPECT_EQ(res.spec_exchanges, 6u * kP);
    EXPECT_EQ(res.halo_plan_misses, static_cast<std::uint64_t>(kP));
    EXPECT_EQ(res.halo_plan_hits, 5u * kP);
  }
}

TEST(AmrFront, RejectsNonSquareMachinesAndThinSegments) {
  msg::Machine m(2);
  EXPECT_THROW(msg::run_spmd(m,
                             [&](Context& ctx) {
                               (void)run_amr_front(ctx, {.n = 24});
                             }),
               std::invalid_argument);
  // n = 4 over a 2x2 grid: 2-cell segments cannot serve front_width 3.
  msg::Machine m2(4);
  EXPECT_THROW(msg::run_spmd(m2,
                             [&](Context& ctx) {
                               (void)run_amr_front(ctx, {.n = 4});
                             }),
               std::invalid_argument);
}

}  // namespace
}  // namespace vf::apps
