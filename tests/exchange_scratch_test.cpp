// Tests for the shared exchange-scratch facility (msg::ExchangeScratch /
// Context::alltoallv_known_into) and the allocation-free executor replays
// built on it: PARTI gather/scatter/scatter_add, cached DISTRIBUTE
// replay, and halo exchange all draw their serve/combine/receive buffers
// from persistent per-owner arenas, so a warmed-up replay performs no
// heap allocation -- asserted here through the arena's grow_allocs
// counter -- while interleaved paths and alternating element types must
// never observe each other's scratch contents.
#include <gtest/gtest.h>

#include <random>

#include "spmd_test_util.hpp"
#include "vf/msg/exchange_scratch.hpp"
#include "vf/parti/schedule.hpp"

namespace vf {
namespace {

using dist::block;
using dist::col;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using msg::ExchangeLane;
using msg::ExchangeScratch;
using parti::Schedule;
using rt::DistArray;
using rt::Env;
using testing::run_checked;
using testing::SpmdChecker;

TEST(ExchangeScratchUnit, LanesAreKeyedByElementSize) {
  ExchangeScratch arena;
  ExchangeLane& d8 = arena.lane(8);
  ExchangeLane& d4 = arena.lane(4);
  EXPECT_EQ(arena.n_lanes(), 2u);
  EXPECT_EQ(&arena.lane(8), &d8);
  EXPECT_EQ(&arena.lane(4), &d4);
  EXPECT_EQ(arena.n_lanes(), 2u);
  EXPECT_EQ(d8.elem_size(), 8u);
  EXPECT_THROW((void)arena.lane(0), std::invalid_argument);
}

TEST(ExchangeScratchUnit, PrepareSizesBuffersAndZeroesCursors) {
  ExchangeScratch arena;
  ExchangeLane& lane = arena.lane(sizeof(double));
  const std::vector<std::uint64_t> snd = {3, 0, 2};
  const std::vector<std::uint64_t> rcv = {1, 4, 0};
  lane.prepare(snd, rcv);
  EXPECT_EQ(lane.peers(), 3);
  EXPECT_EQ(lane.send<double>(0).size(), 3u);
  EXPECT_EQ(lane.send<double>(1).size(), 0u);
  EXPECT_EQ(lane.recv<double>(1).size(), 4u);
  EXPECT_EQ(lane.send_bytes(2).size(), 2 * sizeof(double));
  const auto cur = lane.cursors();
  ASSERT_EQ(cur.size(), 3u);
  EXPECT_EQ(cur[0] + cur[1] + cur[2], 0u);
  cur[1] = 7;
  lane.prepare(snd, rcv);
  EXPECT_EQ(lane.cursors()[1], 0u);  // re-zeroed every prepare
  EXPECT_THROW(lane.prepare(snd, std::vector<std::uint64_t>{1, 2}),
               std::invalid_argument);
}

TEST(ExchangeScratchUnit, MoveRepointsLanesAndCopyStartsEmpty) {
  // Schedules (and anything else holding an arena by value) are movable:
  // the lanes' owner back-pointers must follow the arena, so counters
  // land on the new owner and never write through a dead one.
  ExchangeScratch a;
  ExchangeLane& lane = a.lane(sizeof(int));
  const std::vector<std::uint64_t> cnt = {2, 2};
  lane.prepare(cnt, cnt);
  const auto warm_allocs = a.stats().grow_allocs;

  ExchangeScratch b(std::move(a));
  EXPECT_EQ(b.n_lanes(), 1u);
  EXPECT_EQ(b.stats().grow_allocs, warm_allocs);
  b.reset_stats();
  b.lane(sizeof(int)).prepare(cnt, cnt);  // same lane object, warm
  EXPECT_EQ(b.stats().prepares, 1u);
  EXPECT_EQ(b.stats().grow_allocs, 0u);

  ExchangeScratch c;
  c = std::move(b);
  c.lane(sizeof(int)).prepare(cnt, cnt);
  EXPECT_EQ(c.stats().prepares, 2u);  // counter travelled with the lanes
  EXPECT_EQ(c.stats().grow_allocs, 0u);

  // Copies start empty: scratch is transient replay state.  Both copy
  // forms honor it -- assignment drops the destination's old lanes too.
  const ExchangeScratch& cref = c;
  ExchangeScratch d(cref);
  EXPECT_EQ(d.n_lanes(), 0u);
  EXPECT_EQ(d.stats().prepares, 0u);
  ExchangeScratch e;
  (void)e.lane(sizeof(double));
  e = cref;
  EXPECT_EQ(e.n_lanes(), 0u);
  EXPECT_EQ(e.stats().grow_allocs, 0u);
}

TEST(ExchangeScratchUnit, RepeatPreparesAllocateNothing) {
  ExchangeScratch arena;
  ExchangeLane& lane = arena.lane(sizeof(int));
  const std::vector<std::uint64_t> big = {100, 0, 50, 7};
  const std::vector<std::uint64_t> small = {1, 1, 1, 1};
  // Warmup covers the loop's per-peer maximum envelope (peer 1 sends
  // nothing in `big` but one element in `small`).
  lane.prepare(big, big);
  lane.prepare(small, small);
  EXPECT_GT(arena.stats().grow_allocs, 0u);
  arena.reset_stats();
  for (int k = 0; k < 20; ++k) {
    lane.prepare(k % 2 ? big : small, k % 2 ? small : big);
  }
  EXPECT_EQ(arena.stats().grow_allocs, 0u);  // capacity is remembered
  EXPECT_EQ(arena.stats().prepares, 20u);
  // Growing past the warmed-up maximum is (counted as) an allocation.
  lane.prepare(std::vector<std::uint64_t>{200, 0, 0, 0}, big);
  EXPECT_GT(arena.stats().grow_allocs, 0u);
}

TEST(ExchangeScratchUnit, AlltoallvKnownIntoMovesLaneContents) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    ExchangeScratch arena;
    ExchangeLane& lane = arena.lane(sizeof(int));
    // Rank r sends r*10+d to destination d, except nothing to rank 0
    // (exercising the empty-payload slots on both sides).
    std::vector<std::uint64_t> snd(4), rcv(4);
    for (int d = 0; d < 4; ++d) snd[static_cast<std::size_t>(d)] = d ? 1 : 0;
    for (int s = 0; s < 4; ++s) {
      rcv[static_cast<std::size_t>(s)] = ctx.rank() ? 1 : 0;
    }
    for (int round = 0; round < 3; ++round) {
      lane.prepare(snd, rcv);
      for (int d = 1; d < 4; ++d) {
        lane.send<int>(d)[0] = ctx.rank() * 10 + d + round;
      }
      ctx.alltoallv_known_into(lane);
      for (int s = 0; s < 4; ++s) {
        const auto got = lane.recv<int>(s);
        if (ctx.rank() == 0) {
          ck.check_eq(got.size(), std::size_t{0}, ctx.rank(), "empty slot");
        } else {
          ck.check_eq(got[0], s * 10 + ctx.rank() + round, ctx.rank(),
                      "exchanged value");
        }
      }
    }
  });
}

/// One schedule alternating element types: the binding cache serves a
/// double array and an int array with the identical interned descriptor,
/// and the scratch arena keeps one lane per element size, so alternating
/// executor calls stay allocation-free after one warm round of each type.
TEST(ExchangeScratchExec, AlternatingElementTypesReplayAllocationFree) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({64});
    DistArray<double> d(env, {.name = "D",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    DistArray<int> n(env, {.name = "N",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    ck.check(d.dist_handle() == n.dist_handle(), ctx.rank(),
             "same interned descriptor");
    d.init([](const IndexVec& i) { return 0.5 * i[0]; });
    n.init([](const IndexVec& i) { return static_cast<int>(7 * i[0]); });

    std::mt19937 rng(99 + ctx.rank());
    std::uniform_int_distribution<Index> pick(1, 64);
    std::vector<IndexVec> pts;
    for (int k = 0; k < 40; ++k) pts.push_back({pick(rng)});
    Schedule s(ctx, d.dist_handle(), pts);

    std::vector<double> dout(pts.size());
    std::vector<int> nout(pts.size());
    s.gather(ctx, d, dout);  // warm the double lane
    s.gather(ctx, n, nout);  // warm the int lane
    s.reset_scratch_stats();
    for (int round = 0; round < 5; ++round) {
      s.gather(ctx, d, dout);
      s.gather(ctx, n, nout);
      for (std::size_t k = 0; k < pts.size(); ++k) {
        ck.check_eq(dout[k], 0.5 * pts[k][0], ctx.rank(), "double gather");
        ck.check_eq(nout[k], static_cast<int>(7 * pts[k][0]), ctx.rank(),
                    "int gather");
      }
    }
    ck.check_eq(s.scratch_stats().grow_allocs, std::uint64_t{0}, ctx.rank(),
                "alternating-type replays allocate nothing");
    ck.check_eq(s.scratch_stats().prepares, std::uint64_t{10}, ctx.rank(),
                "every executor call routed through the scratch");
  });
}

/// scatter_add with duplicate-heavy request lists, property-tested
/// bitwise-identical against a sequential reference.  Values are dyadic
/// rationals, so floating-point addition is exact in every combine order
/// and "bitwise identical" is a meaningful cross-implementation check.
TEST(ExchangeScratchExec, ScatterAddDuplicateHeavyMatchesSequentialReference) {
  constexpr int kProcs = 4;
  constexpr Index kN = 48;
  constexpr int kReqs = 300;  // >> kN: heavy duplication per rank
  // Deterministic per-rank request streams every rank can reproduce.
  auto requests_of = [](int rank) {
    std::mt19937 rng(1000 + rank);
    std::uniform_int_distribution<Index> pick(1, kN);
    std::vector<std::pair<Index, double>> reqs;
    for (int k = 0; k < kReqs; ++k) {
      const Index g = pick(rng);
      reqs.emplace_back(g, 0.25 * static_cast<double>((g + k + rank) % 64));
    }
    return reqs;
  };
  run_checked(kProcs, [&](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({kN}),
                              .dynamic = true,
                              .initial = DistributionType{dist::cyclic(3)}});
    a.init([](const IndexVec& i) { return 2.0 * i[0]; });

    const auto mine = requests_of(ctx.rank());
    std::vector<IndexVec> pts;
    std::vector<double> vals;
    for (const auto& [g, v] : mine) {
      pts.push_back({g});
      vals.push_back(v);
    }
    Schedule s(ctx, a.dist_handle(), pts);
    ck.check(s.n_unique_offproc() < static_cast<std::size_t>(kReqs),
             ctx.rank(), "duplicates were combined before transport");
    for (int round = 0; round < 3; ++round) {
      s.scatter_add(ctx, vals, a);
    }
    ctx.barrier();

    // Sequential reference: every contribution of every rank, three
    // rounds, applied to the initial contents.
    std::vector<double> expect(static_cast<std::size_t>(kN));
    for (Index g = 1; g <= kN; ++g) {
      expect[static_cast<std::size_t>(g - 1)] = 2.0 * g;
    }
    for (int round = 0; round < 3; ++round) {
      for (int r = 0; r < kProcs; ++r) {
        for (const auto& [g, v] : requests_of(r)) {
          expect[static_cast<std::size_t>(g - 1)] += v;
        }
      }
    }
    a.for_owned([&](const IndexVec& i, double& x) {
      ck.check_eq(x, expect[static_cast<std::size_t>(i[0] - 1)], ctx.rank(),
                  "bitwise-identical scatter_add at " + i.to_string());
    });
  });
}

/// Interleaved gather / scatter_add / halo-exchange replays: three replay
/// paths with different per-peer geometries share lanes (the schedule's
/// gather and scatter alternate send/recv sizes on one lane; the array's
/// halo exchange and DISTRIBUTE replay share another arena).  Results
/// must stay correct every round -- scratch from one path leaking into
/// another would corrupt values -- and the steady state allocates
/// nothing.
TEST(ExchangeScratchExec, InterleavedReplaysStayIsolatedAndAllocationFree) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({32});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    // Gather the opposite rank's segment; scatter_add into the next
    // rank's segment -- geometries differ, so lane sizes alternate.
    std::vector<IndexVec> gpts, spts;
    const Index gbase = ((ctx.rank() + 2) % 4) * 8 + 1;
    const Index sbase = ((ctx.rank() + 1) % 4) * 8 + 1;
    for (Index k = 0; k < 8; ++k) {
      gpts.push_back({gbase + k});
      gpts.push_back({gbase + k});  // duplicates ride along
      spts.push_back({sbase + k});
    }
    Schedule gs(ctx, a.dist_handle(), gpts);
    Schedule ss(ctx, a.dist_handle(), spts);
    std::vector<double> gout(gpts.size());
    std::vector<double> ones(spts.size(), 0.125);

    auto run_round = [&](int round) {
      a.init([&](const IndexVec& i) {
        return static_cast<double>(i[0]) + 16.0 * round;
      });
      ctx.barrier();
      a.exchange_overlap();
      // Ghost plane below my segment (ranks 1..3): filled by the
      // neighbour, readable through halo().
      if (ctx.rank() > 0) {
        const Index left = 8 * ctx.rank();  // neighbour's last element
        ck.check_eq(a.halo({left}), static_cast<double>(left) + 16.0 * round,
                    ctx.rank(), "halo value after exchange");
      }
      gs.gather(ctx, a, gout);
      for (std::size_t k = 0; k < gpts.size(); ++k) {
        ck.check_eq(gout[k],
                    static_cast<double>(gpts[k][0]) + 16.0 * round,
                    ctx.rank(), "gathered value between halo replays");
      }
      ss.scatter_add(ctx, ones, a);
      ctx.barrier();
      // My segment received +0.125 per element from rank (me+3)%4.
      a.for_owned([&](const IndexVec& i, double& v) {
        ck.check_eq(v,
                    static_cast<double>(i[0]) + 16.0 * round + 0.125,
                    ctx.rank(), "scattered value at " + i.to_string());
      });
    };

    run_round(0);  // warmup: lanes grow to their steady-state sizes
    gs.reset_scratch_stats();
    ss.reset_scratch_stats();
    a.reset_exchange_scratch_stats();
    for (int round = 1; round <= 4; ++round) run_round(round);
    ck.check_eq(gs.scratch_stats().grow_allocs, std::uint64_t{0}, ctx.rank(),
                "gather replays allocation-free");
    ck.check_eq(ss.scratch_stats().grow_allocs, std::uint64_t{0}, ctx.rank(),
                "scatter replays allocation-free");
    ck.check_eq(a.exchange_scratch_stats().grow_allocs, std::uint64_t{0},
                ctx.rank(), "halo replays allocation-free");
    ck.check_eq(a.exchange_scratch_stats().prepares, std::uint64_t{4},
                ctx.rank(), "one halo exchange per round");
  });
}

/// Cached DISTRIBUTE replay draws pack/unpack buffers from the array's
/// arena: after one flip in each direction, further flips allocate
/// nothing in the facility and move the data correctly.
TEST(ExchangeScratchExec, RedistributionReplayAllocationFree) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({64}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 1.5 * i[0]; });
    const DistributionType t_cyc{dist::cyclic(1)};
    const DistributionType t_blk{block()};
    a.distribute(t_cyc);  // warmup: plans + scratch for both directions
    a.distribute(t_blk);
    a.reset_exchange_scratch_stats();
    for (int flip = 0; flip < 6; ++flip) {
      a.distribute(flip % 2 ? t_blk : t_cyc);
      a.for_owned([&](const IndexVec& i, double& v) {
        ck.check_eq(v, 1.5 * i[0], ctx.rank(), "data after flip");
      });
    }
    ck.check_eq(a.exchange_scratch_stats().grow_allocs, std::uint64_t{0},
                ctx.rank(), "cached flips allocate nothing in the scratch");
    ck.check_eq(a.exchange_scratch_stats().prepares, std::uint64_t{6},
                ctx.rank(), "every flip replayed through the facility");
    ck.check_eq(a.redist_plan_hits(), std::uint64_t{6}, ctx.rank(),
                "all six flips hit the plan cache");
  });
}

}  // namespace
}  // namespace vf
