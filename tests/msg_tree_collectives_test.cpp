// Tree-structured collectives: broadcast_vec and allreduce_vec run over
// binomial trees, and allgather_vec over a dissemination (Bruck)
// schedule, so no rank serializes P-1 messages and the modeled
// communication critical path drops from O(alpha * P) to
// O(alpha * log2 P).  Correctness across roots, sizes and non-power-of-2
// processor counts, plus cost-model assertions on the per-rank message
// bound and the total round count.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/msg/spmd.hpp"

namespace vf::msg {
namespace {

using testing::run_checked;
using testing::SpmdChecker;

int ceil_log2(int p) {
  int bits = 0;
  while ((1 << bits) < p) ++bits;
  return bits;
}

TEST(TreeCollectives, BroadcastDeliversFromEveryRoot) {
  for (const int np : {1, 2, 3, 4, 5, 7, 8, 16}) {
    run_checked(np, [np](Context& ctx, SpmdChecker& ck) {
      for (int root = 0; root < np; ++root) {
        std::vector<int> v;
        if (ctx.rank() == root) {
          v = {root * 100, root * 100 + 1, root * 100 + 2};
        }
        const auto got = ctx.broadcast_vec(v, root);
        ck.check_eq(got.size(), std::size_t{3}, ctx.rank(), "bcast size");
        ck.check_eq(got[0], root * 100, ctx.rank(), "bcast payload");
        ck.check_eq(got[2], root * 100 + 2, ctx.rank(), "bcast payload end");
      }
    });
  }
}

TEST(TreeCollectives, AllreduceMatchesAnalyticResultsAtAnyP) {
  for (const int np : {1, 2, 3, 5, 6, 8, 13}) {
    run_checked(np, [np](Context& ctx, SpmdChecker& ck) {
      const int r = ctx.rank();
      ck.check_eq(ctx.allreduce(r, ReduceOp::Sum), np * (np - 1) / 2, r,
                  "sum 0..P-1");
      ck.check_eq(ctx.allreduce(r, ReduceOp::Min), 0, r, "min");
      ck.check_eq(ctx.allreduce(r, ReduceOp::Max), np - 1, r, "max");
      auto v = std::vector<double>{static_cast<double>(r), 1.0};
      auto s = ctx.allreduce_vec(v, ReduceOp::Sum);
      ck.check_eq(s[0], static_cast<double>(np * (np - 1)) / 2.0, r,
                  "vec sum");
      ck.check_eq(s[1], static_cast<double>(np), r, "vec count");
    });
  }
}

/// The modeled critical path of one broadcast is O(alpha log P): with
/// beta = 0 and alpha = 1, the busiest rank sends at most ceil(log2 P)
/// messages (the old root-serialized implementation sent P-1).
TEST(TreeCollectives, BroadcastCriticalPathIsLogP) {
  for (const int np : {4, 8, 16, 32}) {
    const CostModel cm{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
    Machine m(np, cm);
    run_spmd(m, [](Context& ctx) {
      (void)ctx.broadcast_vec(std::vector<int>{1, 2, 3}, 0);
    });
    const double critical = m.max_rank_modeled_us();
    EXPECT_LE(critical, static_cast<double>(ceil_log2(np))) << "P=" << np;
    EXPECT_LT(critical, static_cast<double>(np - 1)) << "P=" << np;
    // Total message count is still P-1: every rank receives exactly once.
    EXPECT_DOUBLE_EQ(
        static_cast<double>(m.total_stats().ctl_messages),
        static_cast<double>(np - 1));
  }
}

/// One allreduce_vec = a binomial reduction plus a binomial broadcast:
/// the busiest rank sends at most 1 + ceil(log2 P) messages, so the
/// modeled critical path is O(log P), not the old 2(P-1) serialization
/// through rank 0.
TEST(TreeCollectives, AllreduceCriticalPathIsLogP) {
  for (const int np : {4, 8, 16, 32}) {
    const CostModel cm{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
    Machine m(np, cm);
    run_spmd(m, [](Context& ctx) {
      (void)ctx.allreduce(1, ReduceOp::Sum);
    });
    const double critical = m.max_rank_modeled_us();
    EXPECT_LE(critical, static_cast<double>(1 + ceil_log2(np)))
        << "P=" << np;
    EXPECT_LT(critical, static_cast<double>(2 * (np - 1))) << "P=" << np;
    // Reduction and broadcast each deliver P-1 messages machine-wide.
    EXPECT_DOUBLE_EQ(
        static_cast<double>(m.total_stats().ctl_messages),
        static_cast<double>(2 * (np - 1)));
  }
}

/// Dissemination allgather_vec: every rank ends up with every rank's
/// contribution in rank order -- the same result the old rank-0
/// fan-in/fan-out produced -- across non-power-of-two P, ragged sizes and
/// empty contributions.
TEST(TreeCollectives, AllgatherVecMatchesOldSemanticsAtAnyP) {
  for (const int np : {1, 2, 3, 5, 6, 7, 12, 13}) {
    run_checked(np, [np](Context& ctx, SpmdChecker& ck) {
      const int r = ctx.rank();
      // Ragged: rank r contributes r % 4 values 1000*r + k (rank 2 etc.
      // contribute nothing when r % 4 == 0).
      std::vector<int> mine;
      for (int k = 0; k < r % 4; ++k) mine.push_back(1000 * r + k);
      const auto all = ctx.allgather_vec(mine);
      ck.check_eq(all.size(), static_cast<std::size_t>(np), r, "P slots");
      for (int s = 0; s < np; ++s) {
        const auto& got = all[static_cast<std::size_t>(s)];
        ck.check_eq(got.size(), static_cast<std::size_t>(s % 4), r,
                    "contribution size of rank " + std::to_string(s));
        for (int k = 0; k < s % 4; ++k) {
          ck.check_eq(got[static_cast<std::size_t>(k)], 1000 * s + k, r,
                      "contribution value");
        }
      }
    });
  }
}

/// The dissemination schedule runs ceil(log2 P) rounds with exactly one
/// send per rank per round: P * ceil(log2 P) messages machine-wide and an
/// O(alpha log P) modeled critical path -- not the 2(P-1) messages the
/// old implementation serialized through rank 0.
TEST(TreeCollectives, AllgatherVecRoundCountIsLogP) {
  for (const int np : {4, 5, 8, 12, 16, 32}) {
    const CostModel cm{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
    Machine m(np, cm);
    run_spmd(m, [](Context& ctx) {
      (void)ctx.allgather_vec(std::vector<int>{ctx.rank()});
    });
    const double critical = m.max_rank_modeled_us();
    EXPECT_LE(critical, static_cast<double>(ceil_log2(np))) << "P=" << np;
    EXPECT_LT(critical, static_cast<double>(2 * (np - 1))) << "P=" << np;
    EXPECT_DOUBLE_EQ(
        static_cast<double>(m.total_stats().ctl_messages),
        static_cast<double>(np * ceil_log2(np)));
  }
}

/// alltoallv's count exchange rides on the dissemination allgather, so no
/// collective in the Context serializes through rank 0 any more: with
/// uniform per-pair payloads no rank's modeled time exceeds
/// O(log P + payload sends).
TEST(TreeCollectives, AlltoallvCountExchangeIsNotRankSerialized) {
  const int np = 8;
  const CostModel cm{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
  Machine m(np, cm);
  run_spmd(m, [np](Context& ctx) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(np));
    for (int d = 0; d < np; ++d) {
      out[static_cast<std::size_t>(d)] = {ctx.rank(), d};
    }
    auto in = ctx.alltoallv(std::move(out));
    for (int s = 0; s < np; ++s) {
      const auto& v = in[static_cast<std::size_t>(s)];
      if (v.size() != 2 || v[0] != s || v[1] != ctx.rank()) {
        throw std::runtime_error("alltoallv payload corrupted");
      }
    }
  });
  // Count exchange: log2(8) = 3 sends per rank; payloads: 7 sends per
  // rank.  The old rank-0 fan-in/fan-out gave rank 0 alone 2(P-1) = 14
  // control sends before any payload moved.
  const double critical = m.max_rank_modeled_us();
  EXPECT_LE(critical, 3.0 + static_cast<double>(np - 1));
}

}  // namespace
}  // namespace vf::msg
