// Tests for the interprocedural reaching-distribution analysis
// (Section 3.1): procedure summaries, CallProc transfer, and the contrast
// with CallUnknown's range/worst-case assumptions.
#include <gtest/gtest.h>

#include <memory>

#include "vf/compile/parteval.hpp"

namespace vf::compile {
namespace {

using query::p_block;
using query::p_col;
using query::p_cyclic;
using query::p_cyclic_any;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{p_block()}; }
AbstractDist cyclicT(dist::Index k) { return TypePattern{p_cyclic(k)}; }

/// A procedure SOLVE(X) whose dummy X is declared (CYCLIC(2)) and which
/// leaves X that way.
ProcedureDecl make_identity_proc() {
  ProgramBuilder b;
  b.declare({.name = "X", .rank = 1, .dynamic = true})
      .use({"X"}, "inside");
  auto body = std::make_shared<const Program>(b.build());
  return ProcedureDecl{
      .name = "SOLVE",
      .formals = {{.array = "X", .entry = cyclicT(2)}},
      .body = body};
}

/// A procedure REMAP(X) that redistributes its inherited formal to BLOCK.
ProcedureDecl make_remapping_proc() {
  ProgramBuilder b;
  b.declare({.name = "X", .rank = 1, .dynamic = true})
      .distribute("X", blockT());
  auto body = std::make_shared<const Program>(b.build());
  return ProcedureDecl{
      .name = "REMAP",
      .formals = {{.array = "X", .entry = std::nullopt}},
      .body = body};
}

TEST(Summary, ExplicitDummyKeptAtExit) {
  const auto summary = summarize_procedure(make_identity_proc());
  ASSERT_EQ(summary.exit_sets.size(), 1u);
  ASSERT_EQ(summary.exit_sets[0].types.size(), 1u);
  EXPECT_EQ(summary.exit_sets[0].types[0], cyclicT(2));
  EXPECT_FALSE(summary.exit_sets[0].undistributed);
}

TEST(Summary, RemappingProcedureExitsWithNewDistribution) {
  const auto summary = summarize_procedure(make_remapping_proc());
  ASSERT_EQ(summary.exit_sets[0].types.size(), 1u);
  EXPECT_EQ(summary.exit_sets[0].types[0], blockT());
}

TEST(Summary, InheritedUntouchedFormalStaysWildcard) {
  ProgramBuilder b;
  b.declare({.name = "X", .rank = 1, .dynamic = true}).use({"X"});
  auto body = std::make_shared<const Program>(b.build());
  const ProcedureDecl decl{.name = "NOP",
                           .formals = {{.array = "X", .entry = std::nullopt}},
                           .body = body};
  const auto summary = summarize_procedure(decl);
  EXPECT_TRUE(summary.exit_sets[0].is_widened());
}

TEST(Summary, ConditionalRemapYieldsBothTypes) {
  ProgramBuilder b;
  b.declare({.name = "X", .rank = 1, .dynamic = true})
      .if_else([](ProgramBuilder& t) { t.distribute("X", cyclicT(4)); });
  auto body = std::make_shared<const Program>(b.build());
  const ProcedureDecl decl{.name = "MAYBE",
                           .formals = {{.array = "X", .entry = blockT()}},
                           .body = body};
  const auto summary = summarize_procedure(decl);
  EXPECT_EQ(summary.exit_sets[0].types.size(), 2u);  // BLOCK or CYCLIC(4)
}

TEST(CallProc, CalleeEffectFlowsToActual) {
  // Vienna Fortran: the callee's exit distribution is returned.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  const int solve = b.declare_procedure(make_identity_proc());
  b.use({"A"}, "before").call_proc(solve, {"A"}).use({"A"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_EQ(r.plausible(p.find_label("before"), "A").types[0], blockT());
  const auto& after = r.plausible(p.find_label("after"), "A");
  ASSERT_EQ(after.types.size(), 1u);
  EXPECT_EQ(after.types[0], cyclicT(2));
}

TEST(CallProc, PrecisionBeatsCallUnknown) {
  // The same call through the opaque-call model loses the exact type.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  const int solve = b.declare_procedure(make_identity_proc());
  b.call_proc(solve, {"A"}).use({"A"}, "known");
  b.call_unknown({"A"}).use({"A"}, "unknown");
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_FALSE(r.plausible(p.find_label("known"), "A").is_widened());
  EXPECT_TRUE(r.plausible(p.find_label("unknown"), "A").is_widened());
}

TEST(CallProc, EnablesDcasePartialEvaluation) {
  // After an analysable call the dcase over the actual is fully decided;
  // after an opaque one it is not.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  const int solve = b.declare_procedure(make_identity_proc());
  b.call_proc(solve, {"A"});
  b.dcase({"A"}, {{{TypePattern{p_cyclic_any()}}, nullptr},
                  {{TypePattern{p_block()}}, nullptr}});
  Program p = b.build();
  auto report = partial_eval(p, analyze_reaching(p));
  ASSERT_EQ(report.dcases.size(), 1u);
  EXPECT_EQ(report.dcases[0].arms[0], ArmVerdict::Always);
  EXPECT_EQ(report.dcases[0].arms[1], ArmVerdict::Never);
}

TEST(CallProc, MultipleFormalsBoundPositionally) {
  ProgramBuilder body_b;
  body_b.declare({.name = "X", .rank = 1, .dynamic = true})
      .declare({.name = "Y", .rank = 1, .dynamic = true})
      .distribute("Y", cyclicT(3));
  auto body = std::make_shared<const Program>(body_b.build());
  const ProcedureDecl decl{
      .name = "TWO",
      .formals = {{.array = "X", .entry = blockT()},
                  {.array = "Y", .entry = std::nullopt}},
      .body = body};

  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = cyclicT(9)})
      .declare({.name = "B", .rank = 1, .dynamic = true, .initial = blockT()});
  const int two = b.declare_procedure(decl);
  b.call_proc(two, {"A", "B"}).use({"A", "B"}, "after");
  Program p = b.build();
  auto r = analyze_reaching(p);
  // A was bound to the BLOCK dummy and returned that way.
  EXPECT_EQ(r.plausible(p.find_label("after"), "A").types[0], blockT());
  // B was remapped by the callee.
  EXPECT_EQ(r.plausible(p.find_label("after"), "B").types[0], cyclicT(3));
}

TEST(CallProc, ValidationErrors) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  const int solve = b.declare_procedure(make_identity_proc());
  EXPECT_THROW(b.call_proc(solve, {"A", "A"}), std::invalid_argument);
  EXPECT_THROW(b.call_proc(solve, {"Z"}), std::invalid_argument);
  // Formal must be declared in the body.
  ProgramBuilder body_b;
  body_b.declare({.name = "X", .rank = 1, .dynamic = true});
  auto body = std::make_shared<const Program>(body_b.build());
  EXPECT_THROW(b.declare_procedure(ProcedureDecl{
                   .name = "BAD",
                   .formals = {{.array = "NOT_THERE", .entry = {}}},
                   .body = body}),
               std::invalid_argument);
}

TEST(CallProc, NestedProcedureCalls) {
  // outer calls inner; the chain of summaries composes.
  ProgramBuilder inner_b;
  inner_b.declare({.name = "X", .rank = 1, .dynamic = true})
      .distribute("X", cyclicT(7));
  auto inner_body = std::make_shared<const Program>(inner_b.build());
  const ProcedureDecl inner{.name = "INNER",
                            .formals = {{.array = "X", .entry = std::nullopt}},
                            .body = inner_body};

  ProgramBuilder outer_b;
  outer_b.declare({.name = "Y", .rank = 1, .dynamic = true});
  const int inner_idx = outer_b.declare_procedure(inner);
  outer_b.call_proc(inner_idx, {"Y"});
  auto outer_body = std::make_shared<const Program>(outer_b.build());
  const ProcedureDecl outer{.name = "OUTER",
                            .formals = {{.array = "Y", .entry = blockT()}},
                            .body = outer_body};

  const auto summary = summarize_procedure(outer);
  ASSERT_EQ(summary.exit_sets[0].types.size(), 1u);
  EXPECT_EQ(summary.exit_sets[0].types[0], cyclicT(7));
}

}  // namespace
}  // namespace vf::compile
