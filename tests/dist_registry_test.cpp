// Tests for the hash-consed descriptor registry (DistRegistry/DistHandle):
// interning must be sound (equal distributions -- including INDIRECT with
// independently constructed equal owner tables -- intern to one handle;
// unequal ones never share a handle), handle identity must drive the
// runtime's caches, and the hit/miss counters must behave across a
// DISTRIBUTE flip loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/dist/registry.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::dist {
namespace {

using rt::DistArray;
using rt::Env;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

std::vector<int> pseudo_owners(Index n, int nprocs, int salt) {
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    owners.push_back(static_cast<int>((k * 7 + salt) % nprocs));
  }
  return owners;
}

TEST(DistRegistry, EqualDistributionsInternToOneHandle) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({24});
  const ProcessorSection sec(ProcessorArray::line(4));

  // A family of types, each constructed twice from independent inputs.
  const std::vector<std::pair<DistributionType, DistributionType>> pairs = {
      {{block()}, {block()}},
      {{cyclic(3)}, {cyclic(3)}},
      {{s_block({10, 2, 5, 7})}, {s_block({10, 2, 5, 7})}},
      {{indirect(pseudo_owners(24, 4, 1))},
       {indirect(pseudo_owners(24, 4, 1))}},
  };
  for (const auto& [ta, tb] : pairs) {
    const DistHandle a = reg.intern(dom, ta, sec);
    const DistHandle b = reg.intern(dom, tb, sec);
    EXPECT_EQ(a, b) << ta.to_string();
    EXPECT_EQ(a.get(), b.get()) << ta.to_string();
    EXPECT_EQ(a.uid(), b.uid());
    EXPECT_TRUE(a.interned());
  }
}

TEST(DistRegistry, UnequalDistributionsNeverShareAHandle) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({24});
  const ProcessorSection sec4(ProcessorArray::line(4));

  std::vector<DistHandle> handles;
  handles.push_back(reg.intern(dom, {block()}, sec4));
  handles.push_back(reg.intern(dom, {cyclic(1)}, sec4));
  handles.push_back(reg.intern(dom, {cyclic(2)}, sec4));
  handles.push_back(reg.intern(dom, {s_block({10, 2, 5, 7})}, sec4));
  handles.push_back(
      reg.intern(dom, {indirect(pseudo_owners(24, 4, 1))}, sec4));
  handles.push_back(
      reg.intern(dom, {indirect(pseudo_owners(24, 4, 2))}, sec4));
  // Same type, different domain.
  handles.push_back(reg.intern(IndexDomain::of_extents({25}),
                               {block()}, sec4));
  for (std::size_t i = 0; i < handles.size(); ++i) {
    for (std::size_t j = i + 1; j < handles.size(); ++j) {
      EXPECT_NE(handles[i], handles[j]) << i << " vs " << j;
      EXPECT_NE(handles[i].uid(), handles[j].uid());
    }
  }
  EXPECT_EQ(reg.size(), handles.size());
}

TEST(DistRegistry, IndirectOwnerTablesAreSharedAndDimMapsInterned) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({16});
  const ProcessorSection sec(ProcessorArray::line(4));
  const DimDist ind = indirect(pseudo_owners(16, 4, 5));

  // Same DimDist (shared table) interned twice: the per-dimension map is
  // built once and shared by pointer.
  const DistHandle a = reg.intern(dom, {ind}, sec);
  const std::uint64_t misses_after_first = reg.stats().dim_map_misses;
  const DistHandle b =
      reg.intern(dom, {indirect(pseudo_owners(16, 4, 5))}, sec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.stats().dim_map_misses, misses_after_first);
  EXPECT_EQ(&a->dim_map(0), &b->dim_map(0));
}

TEST(DistRegistry, PostHocInterningMatchesFastPath) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({12});
  const ProcessorSection sec(ProcessorArray::line(3));
  const DistributionType t{cyclic(2)};

  const DistHandle fast = reg.intern(dom, t, sec);
  const DistHandle post = reg.intern(Distribution(dom, t, sec));
  EXPECT_EQ(fast, post);

  // A disabled registry wraps without interning: uid 0, fresh objects.
  reg.set_enabled(false);
  const DistHandle w1 = reg.intern(dom, t, sec);
  const DistHandle w2 = reg.intern(dom, t, sec);
  EXPECT_FALSE(w1.interned());
  EXPECT_NE(w1, w2);
  EXPECT_TRUE(w1->structural_equal(*w2));
}

/// Counters across a DISTRIBUTE flip loop: after the two warmup misses,
/// every flip resolves its target descriptor as a registry hit, arrays
/// keep handle-identical descriptors across flips, and the plan cache
/// keys on those identities.
TEST(DistRegistry, CountersAcrossDistributeFlipLoop) {
  constexpr Index kN = 32;
  constexpr int kProcs = 4;
  run_checked(kProcs, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const DistributionType ta{indirect(pseudo_owners(kN, kProcs, 1))};
    const DistributionType tb{indirect(pseudo_owners(kN, kProcs, 3))};
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({kN}),
                              .dynamic = true,
                              .initial = ta});
    const std::uint64_t base_misses = env.registry().stats().misses;
    const DistHandle h0 = a.dist_handle();
    ck.check(h0.interned(), ctx.rank(), "initial descriptor interned");

    a.init([](const IndexVec& i) { return 2.0 * i[0]; });
    for (int f = 0; f < 6; ++f) {
      a.distribute(f % 2 == 0 ? tb : ta);
    }
    // Exactly one admission per direction; every later flip is a hit.
    ck.check_eq(env.registry().stats().misses - base_misses,
                std::uint64_t{1}, ctx.rank(), "one miss for the new type");
    ck.check(env.registry().stats().hits >= 5, ctx.rank(),
             "flips resolve as registry hits");
    // Handle identity across flips: the array ends back on ta's handle.
    ck.check(a.dist_handle() == h0, ctx.rank(),
             "flip loop returns the identical interned handle");
    // Plan cache keyed on handle identity: one miss per direction.
    ck.check_eq(a.redist_plan_misses(), std::uint64_t{2}, ctx.rank(),
                "one plan miss per direction");
    ck.check(a.redist_plan_hits() >= 4, ctx.rank(), "plans replay");
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 2.0 * i[0], ctx.rank(), "data preserved");
    });
  });
}

/// Distributing to the identical handle is a pure no-op: no data motion,
/// no descriptor swap, no plan traffic.
TEST(DistRegistry, DistributeToIdenticalHandleIsNoOp) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({16}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    const DistHandle before = a.dist_handle();
    a.distribute(DistributionType{block()});
    ck.check(a.dist_handle() == before, ctx.rank(),
             "identical target keeps the identical handle");
    ck.check_eq(a.redist_plan_misses(), std::uint64_t{0}, ctx.rank(),
                "no plan traffic for an identity DISTRIBUTE");
    a.for_owned([&](const IndexVec& i, int& v) {
      ck.check_eq(v, static_cast<int>(i[0]), ctx.rank(), "data untouched");
    });
  });
}

}  // namespace
}  // namespace vf::dist
