// Additional distribution-layer tests: semantic mapping equality,
// string renderings, 3-D layouts, and DimMap corner cases.
#include <gtest/gtest.h>

#include "vf/dist/alignment.hpp"
#include "vf/dist/distribution.hpp"

namespace vf::dist {
namespace {

ProcessorSection line(int p) {
  return ProcessorSection(ProcessorArray::line(p));
}

TEST(SameMapping, DimMapSemanticEquivalences) {
  // CYCLIC(k) with one full cycle == BLOCK of the same widths.
  auto blockm = DimMap::block(Range{1, 24}, 4);
  auto cyc6 = DimMap::cyclic(Range{1, 24}, 4, 6);
  EXPECT_TRUE(blockm.same_mapping(cyc6));
  // GEN_BLOCK with even sizes == BLOCK.
  auto gb = DimMap::gen_block(Range{1, 24}, {6, 6, 6, 6});
  EXPECT_TRUE(blockm.same_mapping(gb));
  // INDIRECT spelling out the block pattern == BLOCK.
  std::vector<int> owners(24);
  for (int k = 0; k < 24; ++k) owners[static_cast<std::size_t>(k)] = k / 6;
  auto ind = DimMap::indirect(Range{1, 24}, owners, 4);
  EXPECT_TRUE(blockm.same_mapping(ind));
  // And a genuinely different mapping is detected.
  auto cyc1 = DimMap::cyclic(Range{1, 24}, 4, 1);
  EXPECT_FALSE(blockm.same_mapping(cyc1));
}

TEST(SameMapping, DifferentDomainsNeverEqual) {
  auto a = DimMap::block(Range{1, 10}, 2);
  auto b = DimMap::block(Range{1, 12}, 2);
  EXPECT_FALSE(a.same_mapping(b));
}

TEST(SameMapping, LocalOrderingMatters) {
  // Same ownership but different local order: GEN_BLOCK vs an INDIRECT
  // permutation with identical owners has identical order here, so build
  // a case via realignment reversal: ownership equal, order reversed.
  auto fwd = DimMap::block(Range{1, 8}, 2);
  auto rev = fwd.realigned(Range{1, 8}, -1, 9);
  // Reversal swaps which half each coordinate owns (1..4 -> coord 1).
  EXPECT_FALSE(fwd.same_mapping(rev));
}

TEST(Strings, RenderingsAreInformative) {
  Distribution d(IndexDomain::of_extents({8, 8}),
                 {block(), cyclic(2)},
                 ProcessorSection(ProcessorArray::grid(2, 2)));
  EXPECT_EQ(d.type().to_string(), "(BLOCK, CYCLIC(2))");
  EXPECT_NE(d.to_string().find("TO"), std::string::npos);
  EXPECT_EQ(s_block({1, 2}).to_string(), "S_BLOCK(1,2)");
  EXPECT_EQ(b_block({4, 8}).to_string(), "B_BLOCK(4,8)");
  EXPECT_EQ(col().to_string(), ":");
  EXPECT_EQ(to_string(DimDistKind::Indirect), "INDIRECT");
}

TEST(ThreeDim, CollapsedMiddleDimension) {
  Distribution d(IndexDomain::of_extents({4, 6, 8}),
                 {block(), col(), cyclic(1)},
                 ProcessorSection(ProcessorArray::grid(2, 2)));
  // dim 0 -> proc dim 0, dim 2 -> proc dim 1, dim 1 local.
  EXPECT_EQ(d.proc_dim_of(0), 0);
  EXPECT_EQ(d.proc_dim_of(1), -1);
  EXPECT_EQ(d.proc_dim_of(2), 1);
  Index total = 0;
  for (int p = 0; p < 4; ++p) total += d.local_size(p);
  EXPECT_EQ(total, 4 * 6 * 8);
  // Whole middle dimension colocated.
  for (Index j = 1; j <= 6; ++j) {
    EXPECT_EQ(d.owner_rank({1, j, 1}), d.owner_rank({1, 1, 1}));
  }
}

TEST(ThreeDim, OwnedInDimAscending) {
  Distribution d(IndexDomain::of_extents({6, 6, 6}),
                 {cyclic(1), col(), block()},
                 ProcessorSection(ProcessorArray::grid(2, 3)));
  const auto rows = d.owned_in_dim(0, 0);
  EXPECT_EQ(rows, (std::vector<Index>{1, 3, 5}));
  const auto mids = d.owned_in_dim(0, 1);
  EXPECT_EQ(mids.size(), 6u);
  const auto cols = d.owned_in_dim(0, 2);
  EXPECT_EQ(cols, (std::vector<Index>{1, 2}));
}

TEST(DimMapCorners, SingleElementDomain) {
  auto m = DimMap::block(Range{5, 5}, 3);
  EXPECT_EQ(m.proc_of(5), 0);
  EXPECT_EQ(m.count_on(0), 1);
  EXPECT_EQ(m.count_on(1), 0);
  EXPECT_EQ(m.local_of(5), 0);
}

TEST(DimMapCorners, CyclicLargerBlockThanExtent) {
  auto m = DimMap::cyclic(Range{1, 5}, 4, 100);
  EXPECT_EQ(m.count_on(0), 5);
  EXPECT_EQ(m.count_on(1), 0);
  EXPECT_TRUE(m.contiguous());
}

TEST(DimMapCorners, GenBlockAllOnOneProc) {
  auto m = DimMap::gen_block(Range{1, 9}, {0, 9, 0});
  EXPECT_EQ(m.proc_of(1), 1);
  EXPECT_EQ(m.proc_of(9), 1);
  EXPECT_EQ(m.count_on(0), 0);
  EXPECT_FALSE(m.segment(0).has_value());
  auto s = m.segment(1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, Range(1, 9));
}

TEST(AlignmentExtra, ChainedConstructsCompose) {
  // C aligned with B aligned with A: constructing C's distribution from
  // B's constructed distribution keeps three-way colocation.
  const IndexDomain dom = IndexDomain::of_extents({12});
  Distribution da(dom, {cyclic(2)}, line(3));
  Alignment ab(1, {AlignExpr::dim(0, 1, 0)});   // B(i) with A(i)
  Distribution db = ab.construct(da, dom);
  Alignment bc(1, {AlignExpr::dim(0, -1, 13)});  // C(i) with B(13-i)
  Distribution dc = bc.construct(db, dom);
  for (Index i = 1; i <= 12; ++i) {
    EXPECT_EQ(dc.owner_rank({i}), da.owner_rank({13 - i})) << i;
  }
}

TEST(Distribution, SameMappingAcrossDifferentSections) {
  // Same type but shifted sections differ.
  ProcessorArray r = ProcessorArray::line(8);
  ProcessorSection lo(r, {SectionDim::all(Range{1, 4})});
  ProcessorSection hi(r, {SectionDim::all(Range{5, 8})});
  const IndexDomain dom = IndexDomain::of_extents({16});
  Distribution a(dom, {block()}, lo);
  Distribution b(dom, {block()}, hi);
  EXPECT_FALSE(a.same_mapping(b));
  Distribution c(dom, {block()}, lo);
  EXPECT_TRUE(a.same_mapping(c));
}

}  // namespace
}  // namespace vf::dist
