// Tests for distribution-type patterns: runtime matching (Section 2.5) and
// the abstract may/must relations used by partial evaluation (Section 3.1).
#include <gtest/gtest.h>

#include "vf/query/pattern.hpp"

namespace vf::query {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::s_block;

TEST(DimPatternMatch, KindWildcardMatchesEverything) {
  const DimPattern p = any_dim();
  EXPECT_TRUE(p.matches(block()));
  EXPECT_TRUE(p.matches(cyclic(3)));
  EXPECT_TRUE(p.matches(col()));
  EXPECT_TRUE(p.matches(s_block({1, 2})));
}

TEST(DimPatternMatch, KindSpecificMatching) {
  EXPECT_TRUE(p_block().matches(block()));
  EXPECT_FALSE(p_block().matches(cyclic(1)));
  EXPECT_FALSE(p_block().matches(col()));
  EXPECT_TRUE(p_col().matches(col()));
  EXPECT_TRUE(p_gen_block().matches(s_block({2, 2})));
}

TEST(DimPatternMatch, CyclicParameterMatching) {
  EXPECT_TRUE(p_cyclic(3).matches(cyclic(3)));
  EXPECT_FALSE(p_cyclic(3).matches(cyclic(4)));
  EXPECT_TRUE(p_cyclic_any().matches(cyclic(4)));
  EXPECT_TRUE(p_cyclic_any().matches(cyclic(1)));
  EXPECT_FALSE(p_cyclic_any().matches(block()));
}

TEST(TypePatternMatch, WildcardMatchesAnyType) {
  const TypePattern w = TypePattern::wildcard();
  EXPECT_TRUE(w.matches(DistributionType{block()}));
  EXPECT_TRUE(w.matches(DistributionType{cyclic(2), col()}));
}

TEST(TypePatternMatch, RankMustAgree) {
  const TypePattern p{p_block()};
  EXPECT_TRUE(p.matches(DistributionType{block()}));
  EXPECT_FALSE(p.matches(DistributionType{block(), col()}));
}

TEST(TypePatternMatch, PaperExample4FirstClause) {
  // CASE (BLOCK),(BLOCK),(CYCLIC(2),CYCLIC): three positional queries.
  const TypePattern q1{p_block()};
  const TypePattern q3{p_cyclic(2), p_cyclic_any()};
  EXPECT_TRUE(q1.matches(DistributionType{block()}));
  EXPECT_TRUE(q3.matches(DistributionType{cyclic(2), cyclic(1)}));
  EXPECT_TRUE(q3.matches(DistributionType{cyclic(2), cyclic(9)}));
  EXPECT_FALSE(q3.matches(DistributionType{cyclic(3), cyclic(1)}));
}

TEST(TypePatternExact, RoundTripsConcreteTypes) {
  const DistributionType t{block(), cyclic(4), col()};
  const TypePattern p = TypePattern::exact(t);
  EXPECT_TRUE(p.matches(t));
  EXPECT_FALSE(p.matches(DistributionType{block(), cyclic(3), col()}));
  EXPECT_FALSE(p.matches(DistributionType{cyclic(4), block(), col()}));
}

TEST(RangeSpec, EmptyRangeAllowsEverything) {
  EXPECT_TRUE(range_allows({}, DistributionType{cyclic(7)}));
}

TEST(RangeSpec, UnionOfPatterns) {
  // Example 2's B3: RANGE ((BLOCK, BLOCK), (*, CYCLIC)).
  const RangeSpec r = {TypePattern{p_block(), p_block()},
                       TypePattern{any_dim(), p_cyclic_any()}};
  EXPECT_TRUE(range_allows(r, DistributionType{block(), block()}));
  EXPECT_TRUE(range_allows(r, DistributionType{block(), cyclic(5)}));
  EXPECT_TRUE(range_allows(r, DistributionType{col(), cyclic(1)}));
  EXPECT_FALSE(range_allows(r, DistributionType{cyclic(1), block()}));
}

// ---- abstract relations (analysis domain) --------------------------------

TEST(MayMatch, WildcardsAreOptimistic) {
  const TypePattern pat{p_block(), p_cyclic(3)};
  EXPECT_TRUE(pat.may_match(TypePattern::wildcard()));
  EXPECT_TRUE(pat.may_match(TypePattern{any_dim(), p_cyclic_any()}));
  EXPECT_TRUE(pat.may_match(TypePattern{p_block(), p_cyclic(3)}));
  EXPECT_FALSE(pat.may_match(TypePattern{p_col(), any_dim()}));
  EXPECT_FALSE(pat.may_match(TypePattern{p_block(), p_cyclic(4)}));
}

TEST(MayMatch, RankMismatchNeverMatches) {
  EXPECT_FALSE(TypePattern{p_block()}.may_match(
      TypePattern{p_block(), p_block()}));
}

TEST(MustMatch, RequiresAbstractPrecision) {
  const TypePattern pat{p_cyclic_any()};
  // Abstract CYCLIC(*) must match pattern CYCLIC(*).
  EXPECT_TRUE(pat.must_match(TypePattern{p_cyclic_any()}));
  // Abstract CYCLIC(3) must match CYCLIC(*).
  EXPECT_TRUE(pat.must_match(TypePattern{p_cyclic(3)}));
  // Abstract wildcard might be BLOCK: no must.
  EXPECT_FALSE(pat.must_match(TypePattern::wildcard()));
  // Pattern CYCLIC(3) vs abstract CYCLIC(*): parameter unknown -> no must.
  EXPECT_FALSE(TypePattern{p_cyclic(3)}.must_match(
      TypePattern{p_cyclic_any()}));
}

TEST(MustMatch, WildcardPatternAlwaysHolds) {
  EXPECT_TRUE(TypePattern::wildcard().must_match(TypePattern::wildcard()));
  EXPECT_TRUE(TypePattern::wildcard().must_match(TypePattern{p_block()}));
}

TEST(MustMatch, ImpliesMayMatch) {
  const std::vector<TypePattern> patterns = {
      TypePattern::wildcard(),
      TypePattern{p_block()},
      TypePattern{p_cyclic(2)},
      TypePattern{p_cyclic_any()},
      TypePattern{any_dim()},
      TypePattern{p_col()},
      TypePattern{p_gen_block()},
  };
  for (const auto& p : patterns) {
    for (const auto& a : patterns) {
      if (p.must_match(a)) {
        EXPECT_TRUE(p.may_match(a))
            << p.to_string() << " must but not may " << a.to_string();
      }
    }
  }
}

TEST(PatternToString, ReadableForms) {
  EXPECT_EQ(TypePattern::wildcard().to_string(), "*");
  EXPECT_EQ((TypePattern{p_block(), p_cyclic_any()}).to_string(),
            "(BLOCK, CYCLIC(*))");
  EXPECT_EQ((TypePattern{p_col(), any_dim()}).to_string(), "(:, *)");
}

}  // namespace
}  // namespace vf::query
