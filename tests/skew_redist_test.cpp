// Skew-aware redistribution (PRPD hybrid plans): detection, hybridization,
// end-to-end DISTRIBUTE equivalence, the PARTI partial-duplication
// schedule, per-peer CommStats, and fault containment.
//
// The correctness bar throughout is BITWISE equality with the plain
// all-to-owner reference on dyadic values: hybridization only reroutes
// data motion (and, in the Schedule, replaces per-requester serves with a
// deterministic rank-ascending reduction), so results must be identical,
// not merely close.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/dist/skew.hpp"
#include "vf/msg/fault.hpp"
#include "vf/msg/spmd.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::DimDist;
using dist::DimDistKind;
using dist::DistHandle;
using dist::DistRegistry;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::run_checked_on;
using testing::SpmdChecker;

// ---- per-peer CommStats (the detection counters) --------------------------

TEST(PeerStats, AddPeerMergeAndZeroPaddedEquality) {
  msg::CommStats a;
  a.add_peer(2, 100);
  a.add_peer(2, 20);
  a.add_peer(0, 5);
  ASSERT_EQ(a.peer_bytes.size(), 3u);
  EXPECT_EQ(a.peer_bytes[2], 120u);
  EXPECT_EQ(a.peer_messages[2], 2u);
  EXPECT_EQ(a.peer_bytes[0], 5u);
  EXPECT_EQ(a.peer_bytes[1], 0u);

  msg::CommStats b;
  b.add_peer(5, 7);
  msg::CommStats sum = a;
  sum += b;
  ASSERT_EQ(sum.peer_bytes.size(), 6u);
  EXPECT_EQ(sum.peer_bytes[2], 120u);
  EXPECT_EQ(sum.peer_bytes[5], 7u);
  EXPECT_EQ(sum.peer_messages[5], 1u);

  // A fresh counter and one resized by traffic to silent peers compare
  // equal: trailing zero slots are not observable state.
  msg::CommStats fresh;
  msg::CommStats padded;
  padded.peer_bytes.resize(4, 0);
  padded.peer_messages.resize(4, 0);
  EXPECT_TRUE(fresh == padded);
  padded.peer_bytes[3] = 1;
  EXPECT_FALSE(fresh == padded);
}

/// Every data-payload bump site also bumps the per-peer counters, so the
/// per-peer rows partition the aggregate exactly -- on both transports.
TEST(PeerStats, RowsPartitionAggregateOnBothTransports) {
  for (const auto kind :
       {msg::TransportKind::Mailbox, msg::TransportKind::SharedMemory}) {
    msg::Machine m(4, {}, kind);
    run_checked_on(m, [](Context& ctx, SpmdChecker& ck) {
      Env env(ctx);
      const IndexDomain dom({dist::Range{1, 64}});
      DistArray<double> a(env, {.name = "A",
                                .domain = dom,
                                .dynamic = true,
                                .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      a.distribute(DistributionType{dist::cyclic(1)});
      const msg::CommStats& st = ctx.stats();
      std::uint64_t bytes = 0;
      std::uint64_t msgs = 0;
      for (const std::uint64_t b : st.peer_bytes) bytes += b;
      for (const std::uint64_t n : st.peer_messages) msgs += n;
      ck.check_eq(bytes, st.data_bytes, ctx.rank(), "peer bytes partition");
      ck.check_eq(msgs, st.data_messages, ctx.rank(),
                  "peer messages partition");
      ck.check(st.data_bytes > 0, ctx.rank(), "redistribution moved data");
    });
  }
}

/// The per-peer data rows agree across transports for the same program
/// (ctl traffic differs by design and is deliberately not counted
/// per-peer).
TEST(PeerStats, PerPeerDataRowsAreTransportInvariant) {
  constexpr int kProcs = 4;
  std::vector<std::vector<std::uint64_t>> rows[2];
  int which = 0;
  for (const auto kind :
       {msg::TransportKind::Mailbox, msg::TransportKind::SharedMemory}) {
    rows[which].assign(kProcs, {});
    msg::Machine m(kProcs, {}, kind);
    run_checked_on(m, [&](Context& ctx, SpmdChecker&) {
      Env env(ctx);
      const IndexDomain dom({dist::Range{1, 96}});
      DistArray<double> a(env, {.name = "A",
                                .domain = dom,
                                .dynamic = true,
                                .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      a.distribute(DistributionType{dist::cyclic(2)});
      a.distribute(DistributionType{dist::block()});
      std::vector<std::uint64_t> mine = ctx.stats().peer_bytes;
      mine.resize(kProcs, 0);
      rows[which][static_cast<std::size_t>(ctx.rank())] = std::move(mine);
    });
    ++which;
  }
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(rows[0][static_cast<std::size_t>(r)],
              rows[1][static_cast<std::size_t>(r)])
        << "per-peer data bytes of rank " << r << " differ across transports";
  }
}

// ---- detection + hybridization units --------------------------------------

TEST(SkewDetect, HistogramAndMaxOverMean) {
  DistRegistry reg;
  const IndexDomain dom({dist::Range{1, 64}});
  const dist::ProcessorSection sec(dist::ProcessorArray::line(4));

  const DistHandle block = reg.intern(dom, {dist::block()}, sec);
  const auto balanced = dist::ownership_skew(*block, 4);
  EXPECT_EQ(balanced.total, 64);
  EXPECT_EQ(balanced.members, 4);
  EXPECT_DOUBLE_EQ(balanced.max_over_mean(), 1.0);
  EXPECT_FALSE(balanced.skewed(1.5));

  // 40 elements on rank 0, 8 on each of ranks 1..3: max/mean = 40/16.
  std::vector<int> owners(64);
  for (int i = 0; i < 64; ++i) owners[i] = i < 40 ? 0 : 1 + (i % 3);
  const DistHandle skewed =
      reg.intern(dom, {dist::indirect(std::move(owners))}, sec);
  const auto rep = dist::ownership_skew(*skewed, 4);
  EXPECT_EQ(rep.rank_elems[0], 40);
  EXPECT_EQ(rep.rank_elems[1], 8);
  EXPECT_DOUBLE_EQ(rep.max_over_mean(), 2.5);
  EXPECT_TRUE(rep.skewed(2.0));
  EXPECT_FALSE(rep.skewed(2.5));  // strict: at-threshold is not skewed
}

TEST(SkewHybridize, CapsExcessAndKeepsOldOwners) {
  DistRegistry reg;
  const IndexDomain dom({dist::Range{1, 64}});
  const dist::ProcessorSection sec(dist::ProcessorArray::line(4));
  const DistHandle od = reg.intern(dom, {dist::block()}, sec);
  // Every element wants rank 0: ownership skew 4.0, fair-share cap 16.
  const DistHandle nd =
      reg.intern(dom, {dist::indirect(std::vector<int>(64, 0))}, sec);

  const DistHandle h = dist::hybridize(reg, od, nd, {});
  ASSERT_TRUE(h);
  EXPECT_TRUE(h.interned());
  EXPECT_EQ(h->type().dim(0).kind, DimDistKind::Indirect);
  // The first 16 globals (ascending cap walk) stay with rank 0; the
  // excess keeps its BLOCK owner -- a perfectly rebalanced table here.
  const auto& table = h->type().dim(0).owners->owners();
  ASSERT_EQ(table.size(), 64u);
  for (int g = 0; g < 64; ++g) {
    EXPECT_EQ(table[static_cast<std::size_t>(g)], g < 16 ? 0 : g / 16)
        << "global " << g + 1;
  }
  EXPECT_DOUBLE_EQ(dist::ownership_skew(*h, 4).max_over_mean(), 1.0);

  // Determinism/idempotence: the same pair interns the same handle.
  EXPECT_TRUE(dist::hybridize(reg, od, nd, {}) == h);

  // cap_factor scales the bound: 2x fair share keeps 32 on rank 0, and
  // the excess (globals 33..64) falls back to its BLOCK owners 2 and 3.
  const DistHandle loose =
      dist::hybridize(reg, od, nd, {.threshold = 4.0, .cap_factor = 2.0});
  ASSERT_TRUE(loose);
  const auto rep = dist::ownership_skew(*loose, 4);
  EXPECT_EQ(rep.rank_elems[0], 32);
  EXPECT_EQ(rep.rank_elems[1], 0);
  EXPECT_EQ(rep.rank_elems[2], 16);
  EXPECT_EQ(rep.rank_elems[3], 16);
}

TEST(SkewHybridize, DeclinesWhenItDoesNotApply) {
  DistRegistry reg;
  const IndexDomain dom({dist::Range{1, 64}});
  const dist::ProcessorSection sec(dist::ProcessorArray::line(4));
  const DistHandle od = reg.intern(dom, {dist::block()}, sec);

  // Already balanced: no element exceeds the cap.
  const DistHandle cyc = reg.intern(dom, {dist::cyclic(1)}, sec);
  EXPECT_FALSE(dist::hybridize(reg, od, cyc, {}));

  // Null handles.
  EXPECT_FALSE(dist::hybridize(reg, DistHandle{}, cyc, {}));
  EXPECT_FALSE(dist::hybridize(reg, od, DistHandle{}, {}));

  // Collapsed dimension 0: the cap walk has nothing to reassign.
  const IndexDomain dom2({dist::Range{1, 8}, dist::Range{1, 64}});
  const DistHandle row =
      reg.intern(dom2, {dist::col(), dist::block()}, sec);
  const DistHandle hot = reg.intern(
      dom2, {dist::col(), dist::indirect(std::vector<int>(64, 0))}, sec);
  EXPECT_FALSE(dist::hybridize(reg, row, hot, {}));

  // Domain mismatch.
  const IndexDomain dom3({dist::Range{1, 32}});
  const DistHandle other = reg.intern(
      dom3, {dist::indirect(std::vector<int>(32, 0))}, sec);
  EXPECT_FALSE(dist::hybridize(reg, od, other, {}));

  // A dimension >= 1 mapping that differs: only dim 0 may be rewritten.
  const dist::ProcessorSection sec2(dist::ProcessorArray::grid(2, 2));
  const DistHandle od2 =
      reg.intern(dom2, {dist::block(), dist::cyclic(1)}, sec2);
  const DistHandle nd2 = reg.intern(
      dom2, {dist::indirect(std::vector<int>(8, 0)), dist::block()}, sec2);
  EXPECT_FALSE(dist::hybridize(reg, od2, nd2, {}));
}

// ---- plan-cache bypass heuristic (fragmented AND balanced only) -----------

TEST(RedistPlanSkew, LinkSkewSeparatesBalancedFromHotLink) {
  using Plans = DistArray<double>;
  RedistPlan balanced;
  for (int k = 0; k < 64; ++k) {
    balanced.pack_runs.push_back(
        {static_cast<std::size_t>(k), 1, k % 4});
  }
  balanced.send_counts = {16, 16, 16, 16};
  balanced.recv_counts = {0, 0, 0, 0};
  EXPECT_TRUE(balanced.per_element_fragmented());
  EXPECT_DOUBLE_EQ(balanced.link_skew(), 1.0);  // 16 to every peer
  EXPECT_TRUE(Plans::bypass_eligible(balanced));

  RedistPlan hot = balanced;
  hot.send_counts = {61, 1, 1, 1};
  EXPECT_TRUE(hot.per_element_fragmented());
  EXPECT_DOUBLE_EQ(hot.link_skew(), 61.0 / 16.0);  // under threshold: 3.8125
  EXPECT_TRUE(Plans::bypass_eligible(hot));
  hot.send_counts = {64, 0, 0, 0};
  hot.recv_counts = {64, 0, 0, 0};
  EXPECT_GE(hot.link_skew(), Plans::kPlanSkewThreshold);
  // Fragmented but link-skewed: a PRPD hybrid-flip plan, full priority.
  EXPECT_FALSE(Plans::bypass_eligible(hot));

  RedistPlan empty;
  EXPECT_DOUBLE_EQ(empty.link_skew(), 1.0);
  EXPECT_FALSE(empty.per_element_fragmented());
}

// ---- end-to-end DISTRIBUTE: hybrid vs all-to-owner ------------------------

TEST(SkewRedist, SkewedTargetIsHybridizedAndBalanced) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom({dist::Range{1, 64}});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = {{dist::block()}}});
    // Dyadic fingerprints: exact under any regrouping.
    a.init([&](const IndexVec& i) {
      return 0.5 * static_cast<double>(dom.linearize(i));
    });
    a.set_skew_policy(DistArrayBase::SkewPolicy::Auto, /*threshold=*/3.0);

    const auto table =
        std::make_shared<const dist::IndirectTable>(std::vector<int>(64, 0));
    const DistributionType target{dist::indirect(table)};
    a.distribute(target);

    ck.check_eq(a.skew_checks(), std::uint64_t{1}, ctx.rank(), "one check");
    ck.check_eq(a.hybrid_flips(), std::uint64_t{1}, ctx.rank(), "one flip");
    ck.check(a.last_target_skew() > 3.9 && a.last_target_skew() < 4.1,
             ctx.rank(), "detector saw the 4.0 ownership skew");
    // The installed mapping is the capped hybrid, not the hot table.
    const auto rep = dist::ownership_skew(a.distribution(), ctx.nprocs());
    ck.check_eq(rep.rank_elems[0], Index{16}, ctx.rank(), "rank 0 capped");
    ck.check(rep.max_over_mean() < 1.01, ctx.rank(), "hybrid balanced");
    ck.check(a.distribution().type().dim(0).kind == DimDistKind::Indirect,
             ctx.rank(), "hybrid is a plain INDIRECT mapping");

    // Data preserved bitwise through the hybrid flip and the flip back.
    const auto g1 = a.gather_global();
    for (std::size_t k = 0; k < g1.size(); ++k) {
      ck.check_eq(g1[k], 0.5 * static_cast<double>(k), ctx.rank(),
                  "fingerprint after hybrid flip");
    }
    a.distribute(DistributionType{dist::block()});
    // The balanced flip-back is not hybridized...
    ck.check_eq(a.hybrid_flips(), std::uint64_t{1}, ctx.rank(),
                "flip back stays plain");
    // ...and the repeat flip replays from the memo without a re-check.
    a.distribute(target);
    ck.check_eq(a.hybrid_flips(), std::uint64_t{2}, ctx.rank(), "memo hit");
    ck.check_eq(a.skew_checks(), std::uint64_t{2}, ctx.rank(),
                "one check per distinct (old, new) pair");
    const auto g2 = a.gather_global();
    ck.check(g1 == g2, ctx.rank(), "fingerprints stable across replay");
  });
}

TEST(SkewRedist, UniformTargetKeepsExistingPathAtZeroOverhead) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom({dist::Range{1, 64}});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = {{dist::block()}}});
    a.init([&](const IndexVec& i) {
      return 0.5 * static_cast<double>(dom.linearize(i));
    });
    a.set_skew_policy(DistArrayBase::SkewPolicy::Auto);

    // A rotated block: balanced, but every element moves.
    std::vector<int> owners(64);
    for (int g = 0; g < 64; ++g) owners[static_cast<std::size_t>(g)] =
        (g / 16 + 1) % 4;
    const auto table =
        std::make_shared<const dist::IndirectTable>(std::move(owners));
    const DistributionType target{dist::indirect(table)};
    const DistributionType blockT{dist::block()};
    for (int f = 0; f < 4; ++f) {
      a.distribute(f % 2 ? blockT : target);
      // The nominal target is installed untouched: the table pointer of
      // the INDIRECT flips is the one the program supplied.
      if (f % 2 == 0) {
        ck.check(a.distribution().type().dim(0).owners == table, ctx.rank(),
                 "uniform target installed verbatim");
      }
    }
    ck.check_eq(a.hybrid_flips(), std::uint64_t{0}, ctx.rank(),
                "no hybrid flips on balanced targets");
    ck.check(a.skew_checks() >= 1, ctx.rank(), "detector did run");
    const auto g = a.gather_global();
    for (std::size_t k = 0; k < g.size(); ++k) {
      ck.check_eq(g[k], 0.5 * static_cast<double>(k), ctx.rank(),
                  "fingerprint");
    }
  });
}

/// Draws a random 1-D distribution: the full family the DISTRIBUTE
/// machinery supports, including Zipf-ish indirect tables biased toward
/// low ranks (the skewed case hybridization rewrites).
DistributionType random_dist_1d(std::mt19937& rng, Index n, int nprocs) {
  switch (rng() % 5) {
    case 0:
      return DistributionType{dist::block()};
    case 1:
      return DistributionType{
          dist::cyclic(1 + static_cast<Index>(rng() % 4))};
    case 2: {
      std::vector<Index> sizes(static_cast<std::size_t>(nprocs), 0);
      Index rest = n;
      for (int c = 0; c < nprocs - 1; ++c) {
        sizes[static_cast<std::size_t>(c)] =
            static_cast<Index>(rng() % (rest + 1));
        rest -= sizes[static_cast<std::size_t>(c)];
      }
      sizes[static_cast<std::size_t>(nprocs - 1)] = rest;
      return DistributionType{dist::s_block(std::move(sizes))};
    }
    case 3: {
      std::vector<int> owners(static_cast<std::size_t>(n));
      for (auto& o : owners) o = static_cast<int>(rng() % nprocs);
      return DistributionType{dist::indirect(std::move(owners))};
    }
    default: {
      // min of two uniforms: quadratically biased toward rank 0.
      std::vector<int> owners(static_cast<std::size_t>(n));
      for (auto& o : owners) {
        const int r1 = static_cast<int>(rng() % nprocs);
        const int r2 = static_cast<int>(rng() % nprocs);
        o = r1 < r2 ? r1 : r2;
      }
      return DistributionType{dist::indirect(std::move(owners))};
    }
  }
}

/// Twin arrays through identical random DISTRIBUTE chains -- one with the
/// skew machinery off (the all-to-owner reference), one forced hybrid --
/// must stay bitwise identical on dyadic values, at every machine size
/// and under both transports.
TEST(SkewRedist, FuzzHybridMatchesAllToOwnerBitwise) {
  constexpr Index kN = 96;
  constexpr int kSteps = 10;
  for (const int np : {1, 4, 9}) {
    for (const auto kind :
         {msg::TransportKind::Mailbox, msg::TransportKind::SharedMemory}) {
      msg::Machine m(np, {}, kind);
      run_checked_on(m, [&](Context& ctx, SpmdChecker& ck) {
        Env env(ctx);
        const IndexDomain dom({dist::Range{1, kN}});
        DistArray<double> ref(env, {.name = "REF",
                                    .domain = dom,
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
        DistArray<double> hyb(env, {.name = "HYB",
                                    .domain = dom,
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
        const auto fingerprint = [&](const IndexVec& i) {
          return 0.5 * static_cast<double>(dom.linearize(i) % 1024);
        };
        ref.init(fingerprint);
        hyb.init(fingerprint);
        // Force: hybridize every applicable flip, skewed or not -- the
        // widest stress of the rewrite.
        hyb.set_skew_policy(DistArrayBase::SkewPolicy::Force,
                            /*threshold=*/4.0, /*cap_factor=*/1.0);
        // Same seed on every rank: the chain is SPMD-deterministic.
        std::mt19937 rng(1234u + static_cast<unsigned>(np) +
                         (kind == msg::TransportKind::SharedMemory ? 7u : 0u));
        for (int step = 0; step < kSteps; ++step) {
          const DistributionType t = random_dist_1d(rng, kN, np);
          ref.distribute(t);
          hyb.distribute(t);
          const auto gr = ref.gather_global();
          const auto gh = hyb.gather_global();
          ck.check(gr == gh, ctx.rank(),
                   "bitwise divergence at np=" + std::to_string(np) +
                       " step=" + std::to_string(step));
        }
      });
    }
  }
}

// ---- PARTI Schedule: partial duplication ----------------------------------

/// A request pattern with a hot set: every rank reads elements 1..8 (all
/// owned by rank 0 under BLOCK) plus two private elements of its
/// successor's range.  Rank 0's serve load dominates -> hybrid triggers.
std::vector<IndexVec> hot_points(int me, int np, Index n) {
  std::vector<IndexVec> pts;
  for (Index g = 1; g <= 8; ++g) pts.push_back({g});
  const Index blk = n / np;
  const Index base = ((me + 1) % np) * blk + 1;
  pts.push_back({base});
  pts.push_back({base + 1});
  pts.push_back({3});  // duplicate occurrence of a hot element
  return pts;
}

TEST(PartiSkew, HybridGatherAndScatterAddMatchPlainBitwise) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const int np = ctx.nprocs();
    const IndexDomain dom({dist::Range{1, 64}});
    DistArray<double> src(env, {.name = "SRC",
                                .domain = dom,
                                .dynamic = true,
                                .initial = {{dist::block()}}});
    src.init([&](const IndexVec& i) {
      return 0.5 * static_cast<double>(dom.linearize(i));
    });
    const auto points = hot_points(ctx.rank(), np, 64);

    parti::Schedule plain(ctx, src.dist_handle(), points);
    parti::Schedule hybrid(
        ctx, src.dist_handle(), points,
        parti::Schedule::SkewConfig{
            .enabled = true, .threshold = 1.5, .min_fan = 2});
    ck.check(hybrid.hybrid(), ctx.rank(), "hybrid path selected");
    ck.check(hybrid.n_heavy() > 0, ctx.rank(), "heavy elements elected");
    ck.check(hybrid.serve_skew() > 1.5, ctx.rank(), "serve skew observed");
    // Heavy elements left the all-to-owner exchange (rank 0 reads the hot
    // set locally, so its off-proc volume was small to begin with).
    ck.check(hybrid.n_unique_offproc() <= plain.n_unique_offproc(),
             ctx.rank(), "unique off-proc volume never grows");
    if (ctx.rank() != 0) {
      ck.check(hybrid.n_unique_offproc() < plain.n_unique_offproc(),
               ctx.rank(), "heavy requesters shed off-proc volume");
    }

    std::vector<double> out_plain(points.size());
    std::vector<double> out_hybrid(points.size());
    plain.gather(ctx, src, out_plain);
    hybrid.gather(ctx, src, out_hybrid);
    ck.check(out_plain == out_hybrid, ctx.rank(), "gather bitwise");
    for (std::size_t k = 0; k < points.size(); ++k) {
      const double want =
          0.5 * static_cast<double>(dom.linearize(points[k]));
      ck.check_eq(out_plain[k], want, ctx.rank(), "gather value");
    }

    // scatter_add: every occurrence contributes; the hybrid owner-side
    // rank-ascending reduction must agree bitwise on dyadic inputs.
    std::vector<double> contrib(points.size());
    for (std::size_t k = 0; k < contrib.size(); ++k) {
      contrib[k] = 0.25 * static_cast<double>(ctx.rank() + 1) *
                   static_cast<double>(k % 8);
    }
    DistArray<double> dst_plain(env, {.name = "DP",
                                      .domain = dom,
                                      .dynamic = true,
                                      .initial = {{dist::block()}}});
    DistArray<double> dst_hybrid(env, {.name = "DH",
                                       .domain = dom,
                                       .dynamic = true,
                                       .initial = {{dist::block()}}});
    dst_plain.fill(0.0);
    dst_hybrid.fill(0.0);
    plain.scatter_add(ctx, contrib, dst_plain);
    hybrid.scatter_add(ctx, contrib, dst_hybrid);
    const auto gp = dst_plain.gather_global();
    const auto gh = dst_hybrid.gather_global();
    ck.check(gp == gh, ctx.rank(), "scatter_add bitwise");

    // Plain scatter has no single last writer on replicated elements.
    bool threw = false;
    try {
      hybrid.scatter(ctx, contrib, dst_hybrid);
    } catch (const std::logic_error&) {
      threw = true;
    }
    ck.check(threw, ctx.rank(), "plain scatter rejects hybrid schedule");
  });
}

TEST(PartiSkew, UniformRequestsStayAllToOwner) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom({dist::Range{1, 64}});
    DistArray<double> src(env, {.name = "SRC",
                                .domain = dom,
                                .dynamic = true,
                                .initial = {{dist::block()}}});
    src.init([&](const IndexVec& i) {
      return 0.5 * static_cast<double>(dom.linearize(i));
    });
    // Balanced requests: each rank reads its successor's first 4 elements.
    std::vector<IndexVec> pts;
    const Index base = ((ctx.rank() + 1) % 4) * 16 + 1;
    for (Index k = 0; k < 4; ++k) pts.push_back({base + k});

    parti::Schedule s(ctx, src.dist_handle(), pts,
                      parti::Schedule::SkewConfig{.enabled = true});
    ck.check(!s.hybrid(), ctx.rank(), "uniform stays all-to-owner");
    ck.check_eq(s.n_heavy(), std::size_t{0}, ctx.rank(), "no heavy ids");
    std::vector<double> out(pts.size());
    s.gather(ctx, src, out);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ck.check_eq(out[k], 0.5 * static_cast<double>(dom.linearize(pts[k])),
                  ctx.rank(), "gather value");
    }
  });
}

// ---- fault containment ----------------------------------------------------

/// A rank aborting between hybrid flips surfaces as a structured
/// RankAbort on every peer (the abort fence wakes them out of the flip's
/// exchange), with the failure report naming the origin.
TEST(SkewAbort, AbortMidHybridFlipSurfacesAsRankAbort) {
  msg::Machine m(4, {}, msg::TransportKind::Mailbox);
  m.set_recv_watchdog(std::chrono::milliseconds(5000));
  try {
    msg::run_spmd(m, [](Context& ctx) {
      Env env(ctx);
      const IndexDomain dom({dist::Range{1, 64}});
      // CYCLIC old owners: the hybrid of (cyclic, all-zeros) genuinely
      // moves data on every flip (unlike BLOCK, whose capped hybrid
      // coincides with BLOCK itself), so peers block in the exchange.
      DistArray<double> a(env, {.name = "A",
                                .domain = dom,
                                .dynamic = true,
                                .initial = {{dist::cyclic(1)}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      a.set_skew_policy(DistArrayBase::SkewPolicy::Auto, /*threshold=*/3.0);
      const auto table = std::make_shared<const dist::IndirectTable>(
          std::vector<int>(64, 0));
      const DistributionType target{dist::indirect(table)};
      a.distribute(target);  // hybrid flip completes machine-wide
      a.distribute(DistributionType{dist::cyclic(1)});
      if (ctx.rank() == 2) ctx.abort("skew abort injection");
      a.distribute(target);  // peers block in the exchange until the fence
    });
    FAIL() << "expected RankAbort";
  } catch (const msg::RankAbort& e) {
    EXPECT_EQ(e.origin_rank, 2);
    EXPECT_NE(e.reason.find("skew abort injection"), std::string::npos);
  }
  const msg::FailureReport report = m.last_failure_report();
  EXPECT_TRUE(report.any_failed);
  // The origin and the blocked receiver fail for certain; ranks that only
  // send in this flip may complete before noticing the fence.  Every rank
  // that did fail names the injecting origin.
  EXPECT_TRUE(report.ranks[2].failed);
  EXPECT_TRUE(report.ranks[0].failed);
  for (const msg::RankFailure& f : report.ranks) {
    if (f.failed) {
      EXPECT_EQ(f.abort_origin, 2);
    }
  }
}

}  // namespace
}  // namespace vf::rt
