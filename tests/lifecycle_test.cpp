// Lifecycle tests: epoch-based registry reclamation (pin/sweep
// semantics, uid monotonicity, resident-byte accounting) and the
// byte-budgeted LRU caches (halo plans, redistribution plans, PARTI
// bindings), including the stats-reset-on-clear bugfixes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/dist/registry.hpp"
#include "vf/halo/plan.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"
#include "vf/rt/env.hpp"

namespace vf::dist {
namespace {

using halo::HaloPlanCache;
using halo::HaloSpec;
using msg::Context;
using parti::Schedule;
using rt::DistArray;
using rt::Env;
using rt::ExchangeInFlightError;
using testing::run_checked;
using testing::SpmdChecker;

// ---- registry pin/sweep (standalone, no machine) --------------------------

TEST(RegistrySweep, ReclaimsUnpinnedKeepsPinned) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({24});
  const ProcessorSection sec(ProcessorArray::line(4));

  const DistHandle live = reg.intern(dom, {block()}, sec);
  {
    const DistHandle dead = reg.intern(dom, {cyclic(3)}, sec);
    (void)dead;
  }
  ASSERT_EQ(reg.size(), 2u);

  const std::size_t reclaimed = reg.sweep();
  EXPECT_GE(reclaimed, 1u);  // the cyclic descriptor (+ its dim map)
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_GE(reg.stats().pinned, 1u);  // `live` and its components
  EXPECT_EQ(reg.stats().swept, reclaimed);

  // The pinned handle is untouched: re-interning its spelling is a hit on
  // the very same object.
  const DistHandle again = reg.intern(dom, {block()}, sec);
  EXPECT_EQ(again, live);
  EXPECT_EQ(again.uid(), live.uid());

  // Idempotent: with nothing newly unpinned, a second sweep reclaims
  // nothing and leaves the cumulative counter alone.
  const auto swept_before = reg.stats().swept;
  EXPECT_EQ(reg.sweep(), 0u);
  EXPECT_EQ(reg.stats().swept, swept_before);
  EXPECT_EQ(reg.epoch(), 2u);  // each sweep advanced the epoch
}

TEST(RegistrySweep, ResidentBytesReturnToZeroWhenAllHandlesDrop) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({40, 12});
  const ProcessorSection sec(ProcessorArray::grid(2, 2));
  {
    const DistHandle a = reg.intern(dom, {block(), block()}, sec);
    const DistHandle b = reg.intern(dom, {s_block({10, 30}), block()}, sec);
    EXPECT_GT(reg.stats().resident_bytes, 0u);
    // A hit charges nothing.
    const auto r = reg.stats().resident_bytes;
    const DistHandle c = reg.intern(dom, {block(), block()}, sec);
    EXPECT_EQ(c, a);
    EXPECT_EQ(reg.stats().resident_bytes, r);
    (void)b;
  }
  // Every handle is gone: one sweep must drain descriptors, dim maps and
  // sections alike, and the byte gauge must return exactly to zero (the
  // admission charge and the sweep credit are computed from the same
  // stored objects).
  reg.sweep();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.stats().resident_bytes, 0u);
  EXPECT_EQ(reg.stats().pinned, 0u);
}

TEST(RegistrySweep, UidsAreNeverReusedAcrossSweepOrClear) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({24});
  const ProcessorSection sec(ProcessorArray::line(4));

  std::uint32_t first_uid = 0;
  {
    const DistHandle d = reg.intern(dom, {cyclic(2)}, sec);
    first_uid = d.uid();
  }
  reg.sweep();

  // Re-interning the identical spelling after reclamation yields a NEW
  // uid: stale uid-keyed memos (skew hybrids, DCASE) can never produce a
  // false hit against the reincarnated descriptor.
  const DistHandle d2 = reg.intern(dom, {cyclic(2)}, sec);
  EXPECT_GT(d2.uid(), first_uid);

  const std::uint32_t before_clear = d2.uid();
  reg.clear();
  EXPECT_EQ(reg.stats().resident_bytes, 0u);  // clear resets the stats...
  EXPECT_EQ(reg.stats().misses, 0u);
  const DistHandle d3 = reg.intern(dom, {cyclic(2)}, sec);
  EXPECT_GT(d3.uid(), before_clear);  // ...but never the uid counters
}

// ---- halo-plan cache lifecycle (standalone, purely local builds) ----------

TEST(HaloPlanCacheLifecycle, ClearAndDisableResetStats) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({16});
  const ProcessorSection sec(ProcessorArray::line(4));
  const DistHandle d = reg.intern(dom, {block()}, sec);
  const halo::HaloHandle h = reg.intern(HaloSpec({1}, {1}));

  HaloPlanCache cache;
  ASSERT_NE(cache.lookup_or_build(d, h, 1, 4), nullptr);  // miss
  ASSERT_NE(cache.lookup_or_build(d, h, 1, 4), nullptr);  // hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);

  // The bugfix: clear() drops the counters with the contents, so a
  // reader comparing hit ratios across the clear sees only post-clear
  // traffic.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);

  ASSERT_NE(cache.lookup_or_build(d, h, 1, 4), nullptr);
  cache.set_enabled(false);  // cold path: also a clear
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  cache.set_enabled(true);
}

TEST(HaloPlanCacheLifecycle, ByteBudgetEvictsLruKeepsTouched) {
  DistRegistry reg;
  const IndexDomain dom = IndexDomain::of_extents({16});
  const ProcessorSection sec(ProcessorArray::line(4));
  // Three distinct splits of the same structure: equal-sized plans, so
  // a budget of exactly two entries admits the third only by evicting.
  const DistHandle da = reg.intern(dom, {s_block({4, 4, 4, 4})}, sec);
  const DistHandle db = reg.intern(dom, {s_block({3, 5, 4, 4})}, sec);
  const DistHandle dc = reg.intern(dom, {s_block({5, 3, 4, 4})}, sec);
  const halo::HaloHandle h = reg.intern(HaloSpec({1}, {1}));

  HaloPlanCache cache;
  ASSERT_NE(cache.lookup_or_build(da, h, 1, 4), nullptr);
  ASSERT_NE(cache.lookup_or_build(db, h, 1, 4), nullptr);
  const std::size_t two_entries = cache.resident_bytes();
  ASSERT_NE(cache.lookup_or_build(da, h, 1, 4), nullptr);  // touch A
  cache.set_max_bytes(two_entries);  // both fit; nothing evicted yet
  EXPECT_EQ(cache.evictions(), 0u);

  // Inserting C must evict the cold end -- B, not the just-touched A.
  ASSERT_NE(cache.lookup_or_build(dc, h, 1, 4), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.resident_bytes(), cache.max_bytes());

  const auto hits_before = cache.stats().hits;
  ASSERT_NE(cache.lookup_or_build(da, h, 1, 4), nullptr);
  EXPECT_EQ(cache.stats().hits, hits_before + 1) << "A survived";
  const auto misses_before = cache.stats().misses;
  ASSERT_NE(cache.lookup_or_build(db, h, 1, 4), nullptr);
  EXPECT_EQ(cache.stats().misses, misses_before + 1)
      << "B was evicted and rebuilds transparently";
}

// ---- Env::sweep pin semantics (SPMD) --------------------------------------

TEST(EnvSweep, LiveArrayPinsItsHandleChain) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return 3.0 * i[0]; });
    a.exchange_overlap();
    const std::uint32_t uid0 = a.dist_handle().uid();

    const Env::SweepReport rep = env.sweep();
    (void)rep;

    // The array's chain survived: re-interning its spelling is a hit on
    // the identical handle, and the halo machinery still works.
    ck.check_eq(env.intern(dom, DistributionType{block()}).uid(), uid0,
                ctx.rank(), "live descriptor survives the sweep");
    a.exchange_overlap();
    const auto seg = a.distribution().dim_map(0).segment(
        static_cast<int>(a.layout().coords[0]));
    if (seg && seg->lo > 1) {
      ck.check_eq(a.halo({seg->lo - 1}), 3.0 * (seg->lo - 1), ctx.rank(),
                  "ghosts intact after sweep");
    }
  });
}

TEST(EnvSweep, CachedPlanPinsRetiredDescriptorUntilDropped) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 7.0 * i[0]; });
    const std::uint32_t old_uid = a.dist_handle().uid();

    a.distribute(DistributionType{s_block({2, 6, 4, 4})});
    env.sweep();
    // The cached (old, new) plan holds the retired BLOCK handle for
    // flip-back replay, so the sweep must keep it.
    ck.check_eq(env.intern(dom, DistributionType{block()}).uid(), old_uid,
                ctx.rank(), "plan-pinned descriptor survives");

    // Dropping the plan cache un-pins it; the next sweep reclaims it and
    // a re-intern mints a strictly larger uid (never reused).
    a.set_redist_plan_cache(false);
    env.sweep();
    const std::uint32_t fresh =
        env.intern(dom, DistributionType{block()}).uid();
    ck.check(fresh > old_uid, ctx.rank(),
             "reclaimed spelling reincarnates under a fresh uid");
    a.set_redist_plan_cache(true);

    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 7.0 * i[0], ctx.rank(), "values intact");
    });
  });
}

TEST(EnvSweep, ThrowsWhileAnExchangeIsInFlight) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return 1.0 * i[0]; });
    a.begin_exchange_overlap();
    try {
      (void)env.sweep();
      ck.fail("[rank " + std::to_string(ctx.rank()) +
              "] Env::sweep mid-exchange did not throw");
    } catch (const ExchangeInFlightError& e) {
      ck.check_eq(e.array_name, std::string("A"), ctx.rank(), "array_name");
      ck.check_eq(e.operation, std::string("Env::sweep"), ctx.rank(),
                  "operation");
      ck.check_eq(e.pending_tag, a.pending_exchange_tag(), ctx.rank(),
                  "pending_tag");
    }
    // The rejected sweep touched nothing: the exchange completes and a
    // subsequent sweep succeeds.
    a.end_exchange_overlap();
    (void)env.sweep();
  });
}

TEST(EnvSweep, SkewMemoIsDroppedSoPairsRecheckAfterSweep) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 2.0 * i[0]; });
    a.set_skew_policy(DistArray<double>::SkewPolicy::Auto);

    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    const auto checks = a.skew_checks();
    ck.check_eq(checks, std::uint64_t{2}, ctx.rank(),
                "one detection pass per first-seen pair");
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    ck.check_eq(a.skew_checks(), checks, ctx.rank(), "memoized pairs");

    // The sweep drops the uid-keyed memo; the same flips re-check
    // instead of silently reusing entries keyed on potentially-reclaimed
    // uids.
    env.sweep();
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    ck.check_eq(a.skew_checks(), checks + 2, ctx.rank(),
                "pairs re-check after the memo is swept");
  });
}

// ---- redistribution-plan cache budget + stats reset (SPMD) ----------------

TEST(RedistPlanCacheLifecycle, ByteBudgetEvictsAndReplayStaysCorrect) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({64});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 5.0 * i[0]; });

    a.distribute(DistributionType{cyclic(1)});  // plan #1 cached
    const std::size_t one_plan = a.redist_plan_resident_bytes();
    ck.check(one_plan > 0, ctx.rank(), "plan bytes charged");
    // Room for one-and-a-half plans: caching the reverse plan must evict
    // the forward one.
    a.set_redist_plan_budget(one_plan + one_plan / 2);
    a.distribute(DistributionType{block()});  // plan #2 evicts #1
    ck.check(a.redist_plan_evictions() >= 1, ctx.rank(),
             "budget pressure evicted the cold plan");
    ck.check(a.redist_plan_resident_bytes() <= one_plan + one_plan / 2,
             ctx.rank(), "residency within the ceiling");

    // The evicted plan rebuilds transparently and data stays right.
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 5.0 * i[0], ctx.rank(), "values after evict/rebuild");
    });
  });
}

TEST(RedistPlanCacheLifecycle, DisableResetsStatsWithContents) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({32});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    a.init([](const IndexVec& i) { return 1.0 * i[0]; });
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
    a.distribute(DistributionType{cyclic(1)});  // replay: a hit
    ck.check(a.redist_plan_hits() >= 1, ctx.rank(), "warm replay hit");
    ck.check(a.redist_plan_misses() >= 2, ctx.rank(), "two cold builds");

    // The bugfix, mirrored from the halo cache: dropping the contents
    // drops the counters too.
    a.set_redist_plan_cache(false);
    ck.check_eq(a.redist_plan_hits(), std::uint64_t{0}, ctx.rank(),
                "hits reset");
    ck.check_eq(a.redist_plan_misses(), std::uint64_t{0}, ctx.rank(),
                "misses reset");
    ck.check_eq(a.redist_plan_count(), std::size_t{0}, ctx.rank(),
                "plans dropped");
    ck.check_eq(a.redist_plan_resident_bytes(), std::size_t{0}, ctx.rank(),
                "bytes credited back");
    a.set_redist_plan_cache(true);
  });
}

// ---- PARTI binding cache: LRU recency + byte budget (SPMD) ----------------

TEST(BindingCacheLifecycle, HotBindingSurvivesCapacityColdInsertions) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({40});
    const DistributionType t{cyclic(2)};
    DistArray<int> hot(env, {.name = "HOT", .domain = dom, .initial = t});
    hot.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    // More cold arrays than kBindingCapacity slots (8), all sharing the
    // interned descriptor so one schedule serves them all.
    std::vector<std::unique_ptr<DistArray<int>>> cold;
    for (int k = 0; k < 9; ++k) {
      std::string nm = "C";
      nm += std::to_string(k);
      cold.push_back(std::make_unique<DistArray<int>>(
          env, DistArray<int>::Spec{.name = nm, .domain = dom,
                                    .initial = t}));
      const int base = 100 * (k + 1);
      cold.back()->init([base](const IndexVec& i) {
        return base + static_cast<int>(i[0]);
      });
    }

    std::vector<IndexVec> wanted;
    for (Index g = 1 + ctx.rank(); g <= 40; g += 4) wanted.push_back({g});
    Schedule s(ctx, hot.dist_handle(), wanted);
    std::vector<int> out(wanted.size());

    // Interleave: the hot binding is re-touched after every cold
    // insertion, so LRU keeps it at the front while the cold tail cycles
    // through the capacity-bounded slots.
    s.gather(ctx, hot, out);
    for (std::size_t k = 0; k < cold.size(); ++k) {
      s.gather(ctx, *cold[k], out);
      s.gather(ctx, hot, out);
      for (std::size_t q = 0; q < wanted.size(); ++q) {
        ck.check_eq(out[q], static_cast<int>(wanted[q][0]), ctx.rank(),
                    "hot data after cold insertion");
      }
    }
    ck.check_eq(s.binding_misses(), std::uint64_t{10}, ctx.rank(),
                "exactly one translation per array: the hot binding was "
                "never evicted");
    ck.check(s.binding_evictions() >= 2, ctx.rank(),
             "10 bindings through 8 slots evicted the excess");
  });
}

TEST(BindingCacheLifecycle, ByteBudgetBoundsBindingsButNeverDropsIncoming) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({24});
    const DistributionType t{block()};
    DistArray<int> a(env, {.name = "A", .domain = dom, .initial = t});
    DistArray<int> b(env, {.name = "B", .domain = dom, .initial = t});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    b.init([](const IndexVec& i) { return 500 + static_cast<int>(i[0]); });

    std::vector<IndexVec> wanted;
    for (Index g = 1 + ctx.rank(); g <= 24; g += 4) wanted.push_back({g});
    Schedule s(ctx, a.dist_handle(), wanted);
    // A ceiling below any single binding: every insert evicts its
    // predecessor, but the incoming binding always lands (the executor
    // about to run needs it).
    s.set_binding_budget(1);
    std::vector<int> out(wanted.size());
    s.gather(ctx, a, out);
    s.gather(ctx, b, out);
    s.gather(ctx, a, out);
    for (std::size_t q = 0; q < wanted.size(); ++q) {
      ck.check_eq(out[q], static_cast<int>(wanted[q][0]), ctx.rank(),
                  "data correct under thrash");
    }
    ck.check_eq(s.binding_misses(), std::uint64_t{3}, ctx.rank(),
                "every gather re-translates under a one-byte budget");
    ck.check_eq(s.binding_evictions(), std::uint64_t{2}, ctx.rank(),
                "each landing evicted its predecessor");
  });
}

}  // namespace
}  // namespace vf::dist
