// Tests for indirect (user-defined) distributions: the Kali-style mapping
// arrays of Section 5 and the translation-table-backed complex
// distributions of Section 3.2.1.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "spmd_test_util.hpp"
#include "vf/dist/alignment.hpp"
#include "vf/parti/translation_table.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::dist {
namespace {

ProcessorSection line(int p) {
  return ProcessorSection(ProcessorArray::line(p));
}

TEST(DimMapIndirect, OwnershipFollowsTable) {
  std::vector<int> owners = {0, 2, 1, 1, 0, 2, 2, 0};
  auto m = DimMap::indirect(Range{1, 8}, owners, 3);
  for (Index i = 1; i <= 8; ++i) {
    EXPECT_EQ(m.proc_of(i), owners[static_cast<std::size_t>(i - 1)]);
  }
  EXPECT_EQ(m.count_on(0), 3);
  EXPECT_EQ(m.count_on(1), 2);
  EXPECT_EQ(m.count_on(2), 3);
}

TEST(DimMapIndirect, LocalIndicesAreDenseAndInvertible) {
  std::vector<int> owners = {1, 0, 1, 1, 0, 3, 3, 1, 0, 2};
  auto m = DimMap::indirect(Range{1, 10}, owners, 4);
  for (int c = 0; c < 4; ++c) {
    std::set<Index> locals;
    for (Index i = 1; i <= 10; ++i) {
      if (m.proc_of(i) != c) continue;
      const Index l = m.local_of(i);
      EXPECT_TRUE(locals.insert(l).second);
      EXPECT_EQ(m.global_of(c, l), i);
    }
    EXPECT_EQ(static_cast<Index>(locals.size()), m.count_on(c));
    if (!locals.empty()) {
      EXPECT_EQ(*locals.begin(), 0);
      EXPECT_EQ(*locals.rbegin(), m.count_on(c) - 1);
    }
  }
}

TEST(DimMapIndirect, Validation) {
  EXPECT_THROW(DimMap::indirect(Range{1, 4}, {0, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(DimMap::indirect(Range{1, 2}, {0, 5}, 2),
               std::invalid_argument);
  EXPECT_THROW(DimMap::indirect(Range{1, 2}, {0, -1}, 2),
               std::invalid_argument);
}

TEST(DimMapIndirect, RealignedThroughOffset) {
  std::vector<int> owners(20);
  for (int k = 0; k < 20; ++k) owners[static_cast<std::size_t>(k)] = k % 3;
  auto b = DimMap::indirect(Range{1, 20}, owners, 3);
  auto a = b.realigned(Range{1, 10}, 1, 5);
  for (Index i = 1; i <= 10; ++i) {
    EXPECT_EQ(a.proc_of(i), b.proc_of(i + 5));
  }
  Index total = 0;
  for (int c = 0; c < 3; ++c) total += a.count_on(c);
  EXPECT_EQ(total, 10);
}

TEST(DistributionIndirect, AppliedThroughType) {
  std::vector<int> owners = {3, 3, 2, 2, 1, 1, 0, 0};
  Distribution d(IndexDomain::of_extents({8}), {indirect(owners)}, line(4));
  EXPECT_EQ(d.owner_rank({1}), 3);
  EXPECT_EQ(d.owner_rank({8}), 0);
  EXPECT_EQ(d.local_size(2), 2);
  EXPECT_EQ(d.type().dim(0).kind, DimDistKind::Indirect);
}

TEST(DistributionIndirect, MixedWithRegularDims) {
  std::vector<int> owners = {1, 0, 1, 0, 1, 0};
  Distribution d(IndexDomain::of_extents({6, 4}), {indirect(owners), block()},
                 ProcessorSection(ProcessorArray::grid(2, 2)));
  ProcessorArray r = ProcessorArray::grid(2, 2);
  EXPECT_EQ(d.owner_rank({1, 1}), r.machine_rank({2, 1}));
  EXPECT_EQ(d.owner_rank({2, 3}), r.machine_rank({1, 2}));
  Index total = 0;
  for (int p = 0; p < 4; ++p) total += d.local_size(p);
  EXPECT_EQ(total, 24);
}

TEST(DistributionIndirect, AlignmentConstructsIndirect) {
  std::vector<int> owners = {0, 1, 2, 3, 0, 1, 2, 3, 3, 2, 1, 0};
  Distribution db(IndexDomain::of_extents({12}), {indirect(owners)}, line(4));
  Alignment a(1, {AlignExpr::dim(0, 1, 2)});
  const IndexDomain adom = IndexDomain::of_extents({10});
  Distribution da = a.construct(db, adom);
  EXPECT_EQ(da.type().dim(0).kind, DimDistKind::Indirect);
  for (Index i = 1; i <= 10; ++i) {
    EXPECT_EQ(da.owner_rank({i}), db.owner_rank({i + 2}));
  }
}

TEST(DistributionIndirect, RandomizedTotalityProperty) {
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 1 + static_cast<Index>(rng() % 64);
    const int p = 1 + static_cast<int>(rng() % 6);
    std::vector<int> owners(static_cast<std::size_t>(n));
    for (auto& o : owners) o = static_cast<int>(rng() % p);
    auto m = DimMap::indirect(Range{1, n}, owners, p);
    Index total = 0;
    for (int c = 0; c < p; ++c) total += m.count_on(c);
    ASSERT_EQ(total, n) << "trial " << trial;
    for (Index i = 1; i <= n; ++i) {
      const int c = m.proc_of(i);
      ASSERT_EQ(m.global_of(c, m.local_of(i)), i) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace vf::dist

namespace vf::rt {
namespace {

using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(IndirectArray, RedistributeBetweenIndirectAndBlock) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({24});
    std::vector<int> owners;
    for (int k = 0; k < 24; ++k) owners.push_back((k * 7 + 1) % 4);
    DistArray<double> a(env,
                        {.name = "A",
                         .domain = dom,
                         .dynamic = true,
                         .initial = DistributionType{dist::indirect(owners)}});
    a.init([&](const IndexVec& i) { return 3.0 * i[0]; });
    a.distribute(DistributionType{dist::block()});
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 3.0 * i[0], ctx.rank(), "indirect->block");
    });
    // And back to a different indirect mapping.
    std::vector<int> owners2;
    for (int k = 0; k < 24; ++k) owners2.push_back(3 - (k % 4));
    a.distribute(DistributionType{dist::indirect(owners2)});
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 3.0 * i[0], ctx.rank(), "block->indirect");
      ck.check_eq(ctx.rank(), owners2[static_cast<std::size_t>(i[0] - 1)],
                  ctx.rank(), "owner matches table");
    });
  });
}

TEST(IndirectArray, TranslationTableAgreesWithIndirectDistribution) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({32});
    std::vector<int> owners;
    for (int k = 0; k < 32; ++k) owners.push_back((k / 3) % 4);
    const dist::Distribution d(dom, {dist::indirect(owners)}, env.whole());
    parti::TranslationTable table(ctx, d);
    std::vector<dist::Index> queries;
    for (dist::Index q = 0; q < 32; q += 2) queries.push_back(q);
    auto result = table.dereference(ctx, queries);
    for (std::size_t k = 0; k < queries.size(); ++k) {
      ck.check_eq(result[k],
                  owners[static_cast<std::size_t>(queries[k])], ctx.rank(),
                  "table lookup");
    }
  });
}

}  // namespace
}  // namespace vf::rt
