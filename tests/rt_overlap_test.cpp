// Tests for overlap (ghost) areas: the descriptor component the compiler
// maintains for stencil communication (paper Section 3.1 "overlap areas")
// and the exchange operation used by the smoothing example of Section 4.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Overlap, GhostValuesArriveAfterExchange1D) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
    a.exchange_overlap();
    // Each rank owns 4 elements; interior neighbours must now be readable.
    const dist::Index lo = 4 * ctx.rank() + 1;
    const dist::Index hi = lo + 3;
    if (lo > 1) {
      ck.check(a.halo_readable({lo - 1}), ctx.rank(), "low ghost readable");
      ck.check_eq(a.halo({lo - 1}), static_cast<double>(lo - 1), ctx.rank(),
                  "low ghost value");
    }
    if (hi < 16) {
      ck.check(a.halo_readable({hi + 1}), ctx.rank(), "high ghost readable");
      ck.check_eq(a.halo({hi + 1}), static_cast<double>(hi + 1), ctx.rank(),
                  "high ghost value");
    }
    ck.check(!a.halo_readable({(lo + 8) % 16 + 1}), ctx.rank(),
             "far element not readable");
  });
}

TEST(Overlap, TwoDimFacesExchange) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(2, 2);
    Env env(ctx, grid);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8, 8}),
                              .dynamic = true,
                              .initial = DistributionType{block(), block()},
                              .overlap_lo = {1, 1},
                              .overlap_hi = {1, 1}});
    a.init([](const IndexVec& i) {
      return static_cast<double>(100 * i[0] + i[1]);
    });
    a.exchange_overlap();
    // Check the faces adjacent to each owned 4x4 block.
    a.for_owned([&](const IndexVec& i, double&) {
      for (int d = 0; d < 2; ++d) {
        for (int step : {-1, +1}) {
          IndexVec n = i;
          n[d] += step;
          if (!a.domain().contains(n)) continue;
          // A face neighbour differs from i in exactly one dimension; it
          // must be readable (owned or ghost).
          if (a.halo_readable(n)) {
            ck.check_eq(a.halo(n), static_cast<double>(100 * n[0] + n[1]),
                        ctx.rank(), "face value at " + n.to_string());
          } else {
            ck.fail("face neighbour " + n.to_string() + " not readable");
          }
        }
      }
    });
  });
}

TEST(Overlap, WiderOverlapCarriesTwoPlanes) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({12}),
                           .dynamic = true,
                           .initial = DistributionType{block()},
                           .overlap_lo = {2},
                           .overlap_hi = {2}});
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    a.exchange_overlap();
    if (ctx.rank() == 0) {
      ck.check_eq(a.halo({7}), 7, 0, "first ghost plane");
      ck.check_eq(a.halo({8}), 8, 0, "second ghost plane");
    } else {
      ck.check_eq(a.halo({6}), 6, 1, "first ghost plane");
      ck.check_eq(a.halo({5}), 5, 1, "second ghost plane");
    }
  });
}

TEST(Overlap, CollapsedDimNeedsNoExchange) {
  // (:, BLOCK): rows are entirely local, ghosts only needed in dim 1.
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({4, 8}),
                              .dynamic = true,
                              .initial = DistributionType{col(), block()},
                              .overlap_lo = {0, 1},
                              .overlap_hi = {0, 1}});
    a.init([](const IndexVec& i) {
      return static_cast<double>(10 * i[0] + i[1]);
    });
    a.exchange_overlap();
    const dist::Index jb = ctx.rank() == 0 ? 5 : 4;  // adjacent column
    for (dist::Index i = 1; i <= 4; ++i) {
      ck.check_eq(a.halo({i, jb}), static_cast<double>(10 * i + jb),
                  ctx.rank(), "column ghost");
    }
  });
}

TEST(Overlap, RejectsGhostOnNonContiguousDim) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    try {
      DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({16}),
                                .dynamic = true,
                                .initial = DistributionType{cyclic(1)},
                                .overlap_lo = {1},
                                .overlap_hi = {1}});
      ck.fail("expected invalid_argument (cyclic ghost)");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Overlap, SurvivesRedistribution) {
  // Ghost widths persist across a DISTRIBUTE between contiguous layouts.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8, 8}),
                              .dynamic = true,
                              .initial = DistributionType{col(), block()},
                              .overlap_lo = {0, 1},
                              .overlap_hi = {0, 1}});
    a.init([](const IndexVec& i) {
      return static_cast<double>(100 * i[0] + i[1]);
    });
    // Redistribution must refuse: ghosts declared on dim 1, and after the
    // remap dim 1 stays contiguous (col->block in dim 0 is invalid because
    // ghost widths were declared per dimension and dim 1 keeps them).
    a.distribute(DistributionType{col(), cyclic(4)});  // still contiguous
    a.exchange_overlap();
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, static_cast<double>(100 * i[0] + i[1]), ctx.rank(),
                  "data preserved");
    });
  });
}

TEST(Overlap, HaloAccessOutsideRegionThrows) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.exchange_overlap();
    if (ctx.rank() == 0) {
      try {
        (void)a.halo({7});  // two past my segment 1..4
        ck.fail("expected out_of_range");
      } catch (const std::out_of_range&) {
      }
    }
  });
}

}  // namespace
}  // namespace vf::rt
