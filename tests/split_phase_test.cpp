// Split-phase halo exchange: begin/end must be bitwise-equivalent to the
// blocking exchange_overlap under the full halo fuzz space (random
// contiguous distributions, per-rank asymmetric specs, DISTRIBUTE flips,
// empty ranks, P in {1, 4, 9}), the interior/boundary traversal pair must
// partition the owned set exactly, the in-flight misuse guards must throw
// the documented structured errors without corrupting the array, and the
// split-phase application paths (smoothing, AMR front, ADI coupled RHS)
// must reproduce their blocking checksums bitwise.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "halo_fuzz_util.hpp"
#include "spmd_test_util.hpp"
#include "vf/apps/adi_sim.hpp"
#include "vf/apps/amr_front.hpp"
#include "vf/apps/smoothing_sim.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::draw_specs;
using testing::fingerprint;
using testing::FuzzConfig;
using testing::kFuzzConfigs;
using testing::random_dist;
using testing::RankSpec;
using testing::specs_valid;
using testing::SpmdChecker;

/// Twin-array chain: BLK exchanges blocking, SPL split-phase, both walked
/// through the identical sequence of re-specs and DISTRIBUTE flips.  After
/// every step the two local storages (owned + every ghost cell) must
/// compare bitwise, and the interior/boundary pair must have visited each
/// owned cell of SPL exactly once and nothing else.
void run_twin_chain(const FuzzConfig& cfg, unsigned seed) {
  constexpr int kSteps = 5;
  msg::Machine machine(cfg.nprocs);
  SpmdChecker ck;
  msg::run_spmd(machine, [&](Context& ctx) {
    std::mt19937 rng(seed);
    Env env(ctx, cfg.grid ? dist::ProcessorArray::grid(cfg.q0, cfg.q1)
                          : dist::ProcessorArray::line(cfg.nprocs));
    const Index n0 = 2 + static_cast<Index>(rng() % 8);
    const Index n1 = 2 + static_cast<Index>(rng() % 8);
    const IndexDomain dom = IndexDomain::of_extents({n0, n1});
    const DistributionType type0 = random_dist(rng, cfg, n0, n1);
    DistArray<double> blk(env, {.name = "BLK",
                                .domain = dom,
                                .dynamic = true,
                                .initial = type0});
    DistArray<double> spl(env, {.name = "SPL",
                                .domain = dom,
                                .dynamic = true,
                                .initial = type0});
    const auto fp = [&](const IndexVec& i) {
      return fingerprint(dom.linearize(i));
    };
    blk.init(fp);
    spl.init(fp);

    bool asymmetric = rng() % 2 == 0;
    std::vector<RankSpec> specs =
        draw_specs(rng, cfg.nprocs, asymmetric, blk.distribution());
    const auto apply_specs = [&]() {
      const RankSpec& mine = specs[static_cast<std::size_t>(ctx.rank())];
      blk.set_overlap(mine.lo, mine.hi, mine.corners, asymmetric);
      spl.set_overlap(mine.lo, mine.hi, mine.corners, asymmetric);
    };
    apply_specs();

    for (int step = 0; step < kSteps; ++step) {
      const std::string tag =
          std::string(cfg.name) + " seed " + std::to_string(seed) +
          " step " + std::to_string(step);
      switch (rng() % 3) {
        case 0: {
          asymmetric = rng() % 2 == 0;
          specs = draw_specs(rng, cfg.nprocs, asymmetric, blk.distribution());
          apply_specs();
          break;
        }
        case 1: {
          const DistributionType next = random_dist(rng, cfg, n0, n1);
          blk.distribute(next);
          spl.distribute(next);
          if (asymmetric &&
              !specs_valid(specs, blk.distribution(), cfg.nprocs)) {
            specs = draw_specs(rng, cfg.nprocs, asymmetric,
                               blk.distribution());
            apply_specs();
          }
          break;
        }
        default:
          break;  // repeat exchange on the warm plan
      }

      blk.exchange_overlap();

      spl.begin_exchange_overlap();
      const auto m = spl.split_margins();
      std::vector<int> counts(spl.local_span().size(), 0);
      double* const base = spl.local_span().data();
      const auto visit = [&](const IndexVec&, double& x) {
        counts[static_cast<std::size_t>(&x - base)]++;
      };
      spl.for_owned_interior(m, visit);
      spl.end_exchange_overlap();
      spl.for_owned_boundary(m, visit);

      // Exact partition: every owned cell once, no ghost cell at all.
      spl.for_owned([&](const IndexVec& i, double& x) {
        const std::size_t off = static_cast<std::size_t>(&x - base);
        if (counts[off] != 1) {
          ck.fail("[rank " + std::to_string(ctx.rank()) + "] " + tag +
                  " owned cell " + i.to_string() + " visited " +
                  std::to_string(counts[off]) + " times");
        }
        counts[off] = 0;
      });
      for (std::size_t off = 0; off < counts.size(); ++off) {
        if (counts[off] != 0) {
          ck.fail("[rank " + std::to_string(ctx.rank()) + "] " + tag +
                  " non-owned storage cell " + std::to_string(off) +
                  " visited by the split traversals");
        }
      }

      // Bitwise twin comparison over the whole local storage (owned data
      // and every ghost cell, filled or untouched).
      const auto sa = blk.local_span();
      const auto sb = spl.local_span();
      ck.check(sa.size() == sb.size(), ctx.rank(), tag + " storage sizes");
      if (sa.size() == sb.size() && !sa.empty() &&
          std::memcmp(sa.data(), sb.data(), sa.size_bytes()) != 0) {
        ck.fail("[rank " + std::to_string(ctx.rank()) + "] " + tag +
                " split-phase storage differs from blocking twin");
      }
    }
  });
  ck.expect_clean();
}

class SplitPhaseFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SplitPhaseFuzz, BitwiseEqualToBlockingExchange) {
  for (const FuzzConfig& cfg : kFuzzConfigs) {
    run_twin_chain(cfg, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPhaseFuzz, ::testing::Range(1u, 7u));

/// The in-flight misuse guards: DISTRIBUTE, set_overlap and a second
/// begin throw ExchangeInFlightError naming the array, the operation and
/// the pending tag; the exchange then completes normally and the array
/// (ghosts included) is intact, so the guard never corrupts state.
TEST(SplitPhaseGuards, GeometryChangesInFlightThrowStructuredErrors) {
  constexpr int kP = 4;
  msg::Machine machine(kP);
  SpmdChecker ck;
  msg::run_spmd(machine, [&](Context& ctx) {
    Env env(ctx, dist::ProcessorArray::line(kP));
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([&](const IndexVec& i) { return fingerprint(dom.linearize(i)); });
    a.begin_exchange_overlap();
    ck.check(a.exchange_in_flight(), ctx.rank(), "in-flight flag set");

    const auto expect_in_flight = [&](const char* op, auto&& call) {
      try {
        call();
        ck.fail("[rank " + std::to_string(ctx.rank()) + "] " +
                std::string(op) + " in flight did not throw");
      } catch (const ExchangeInFlightError& e) {
        ck.check_eq(e.array_name, std::string("A"), ctx.rank(),
                    std::string(op) + ": array_name");
        ck.check_eq(e.operation, std::string(op), ctx.rank(), "operation");
        ck.check(e.pending_tag < 0, ctx.rank(),
                 std::string(op) + ": pending_tag is a collective tag");
      }
    };
    expect_in_flight("distribute", [&] {
      a.distribute(DistributionType{dist::cyclic(1)});
    });
    expect_in_flight("set_overlap", [&] { a.set_overlap({2}, {2}); });
    expect_in_flight("begin_exchange_overlap",
                     [&] { a.begin_exchange_overlap(); });

    // The pending exchange is untouched by the rejected calls: it
    // completes, fills the ghosts, and the array accepts geometry
    // changes again.
    a.end_exchange_overlap();
    ck.check(!a.exchange_in_flight(), ctx.rank(), "in-flight flag cleared");
    const auto seg = a.distribution().dim_map(0).segment(
        static_cast<int>(a.layout().coords[0]));
    if (seg && ctx.rank() > 0) {
      ck.check_eq(a.halo({seg->lo - 1}), fingerprint(seg->lo - 2),
                  ctx.rank(), "low ghost after guarded exchange");
    }
    a.distribute(DistributionType{dist::s_block({2, 6, 4, 4})});
    a.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, fingerprint(dom.linearize(i)), ctx.rank(),
                  "data after post-guard distribute");
    });
  });
  ck.expect_clean();
}

TEST(SplitPhaseGuards, EndWithoutBeginThrows) {
  testing::run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    a.init([](const IndexVec& i) { return 1.0 * i[0]; });
    try {
      a.end_exchange_overlap();
      ck.fail("end without begin did not throw");
    } catch (const NoExchangeInFlightError& e) {
      ck.check_eq(e.array_name, std::string("A"), ctx.rank(), "array_name");
    }
    // A completed pair re-arms the guard: a second end throws again.
    a.begin_exchange_overlap();
    a.end_exchange_overlap();
    try {
      a.end_exchange_overlap();
      ck.fail("double end did not throw");
    } catch (const NoExchangeInFlightError&) {
    }
  });
}

/// DISTRIBUTE on a connect-class member is also blocked while any OTHER
/// member has an exchange in flight -- the redistribution would drag the
/// in-flight array's storage along.
TEST(SplitPhaseGuards, ConnectClassDistributeBlockedBySecondaryInFlight) {
  testing::run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    DistArray<double> a(env,
                        {.name = "A", .domain = dom, .dynamic = true},
                        Connection::extraction(b));
    a.set_overlap({1}, {1});
    a.begin_exchange_overlap();
    try {
      b.distribute(DistributionType{dist::s_block({2, 6})});
      ck.fail("distribute with secondary in flight did not throw");
    } catch (const ExchangeInFlightError& e) {
      ck.check_eq(e.array_name, std::string("A"), ctx.rank(), "array_name");
      ck.check_eq(e.operation, std::string("distribute (via connect class)"),
                  ctx.rank(), "operation");
    }
    a.end_exchange_overlap();
    b.distribute(DistributionType{dist::s_block({2, 6})});
  });
}

// ---- application paths: split-phase reproduces blocking bitwise -----------

TEST(SplitPhaseApps, SmoothingMatchesBlockingBitwise) {
  for (const apps::SmoothStencil st :
       {apps::SmoothStencil::FivePoint, apps::SmoothStencil::NinePoint}) {
    for (const apps::SmoothLayout ly :
         {apps::SmoothLayout::Columns, apps::SmoothLayout::Grid2D}) {
      SCOPED_TRACE(std::string(to_string(st)) + "/" + to_string(ly));
      double blocking = 0.0;
      double split = 0.0;
      testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
        const auto r = apps::run_smoothing(
            ctx, {.n = 16, .steps = 3, .stencil = st}, ly);
        if (ctx.rank() == 0) blocking = r.checksum;
      });
      testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
        const auto r = apps::run_smoothing(
            ctx, {.n = 16, .steps = 3, .stencil = st, .split_phase = true},
            ly);
        if (ctx.rank() == 0) split = r.checksum;
      });
      EXPECT_EQ(blocking, split);
    }
  }
}

TEST(SplitPhaseApps, AmrFrontMatchesBlockingAndReferenceBitwise) {
  const apps::AmrFrontConfig base{.n = 16, .steps = 3};
  double blocking = 0.0;
  double split = 0.0;
  testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
    const auto r = apps::run_amr_front(ctx, base);
    if (ctx.rank() == 0) blocking = r.checksum;
  });
  apps::AmrFrontConfig cfg = base;
  cfg.split_phase = true;
  testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
    const auto r = apps::run_amr_front(ctx, cfg);
    if (ctx.rank() == 0) split = r.checksum;
  });
  EXPECT_EQ(blocking, split);
  EXPECT_EQ(split, apps::amr_checksum(apps::amr_front_reference(base)));
}

TEST(SplitPhaseApps, AdiCoupledRhsMatchesBlockingBitwise) {
  for (const apps::AdiStrategy strat :
       {apps::AdiStrategy::DynamicRedistribution,
        apps::AdiStrategy::StaticGatherLines,
        apps::AdiStrategy::StaticTwoCopies}) {
    SCOPED_TRACE(apps::to_string(strat));
    const apps::AdiConfig base{
        .nx = 12, .ny = 12, .iterations = 3, .rhs_halo = true};
    double blocking = 0.0;
    double split = 0.0;
    testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
      const auto r = apps::run_adi(ctx, base, strat);
      if (ctx.rank() == 0) blocking = r.checksum;
    });
    apps::AdiConfig cfg = base;
    cfg.split_phase = true;
    testing::run_checked(4, [&](Context& ctx, SpmdChecker&) {
      const auto r = apps::run_adi(ctx, cfg, strat);
      if (ctx.rank() == 0) split = r.checksum;
    });
    EXPECT_EQ(blocking, split);
    // The coupled RHS actually exercises the halo path.
    EXPECT_NE(blocking, 0.0);
  }
}

}  // namespace
}  // namespace vf::rt
