// Additional message-layer tests: ordering guarantees, payload edge cases,
// concurrency stress, and cost-model accounting of the collectives.
#include <gtest/gtest.h>

#include <numeric>

#include "spmd_test_util.hpp"
#include "vf/msg/spmd.hpp"

namespace vf::msg {
namespace {

using testing::run_checked;
using testing::SpmdChecker;

TEST(Ordering, FifoPerSourceAndTag) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    constexpr int kCount = 200;
    if (ctx.rank() == 0) {
      for (int k = 0; k < kCount; ++k) ctx.send_value<int>(1, 7, k);
    } else {
      for (int k = 0; k < kCount; ++k) {
        ck.check_eq(ctx.recv_value<int>(0, 7), k, 1, "FIFO order");
      }
    }
  });
}

TEST(Ordering, InterleavedTagsKeepPerTagOrder) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      for (int k = 0; k < 50; ++k) {
        ctx.send_value<int>(1, k % 2, k);
      }
    } else {
      int prev_even = -1, prev_odd = -1;
      for (int k = 0; k < 25; ++k) {
        const int e = ctx.recv_value<int>(0, 0);
        ck.check(e > prev_even, 1, "even tag order");
        prev_even = e;
      }
      for (int k = 0; k < 25; ++k) {
        const int o = ctx.recv_value<int>(0, 1);
        ck.check(o > prev_odd, 1, "odd tag order");
        prev_odd = o;
      }
    }
  });
}

TEST(Payload, EmptyMessageRoundTrips) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_bytes(1, 0, {});
    } else {
      auto b = ctx.recv_bytes(0, 0);
      ck.check_eq(b.size(), std::size_t{0}, 1, "empty payload");
    }
  });
}

TEST(Payload, LargeMessage) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    constexpr std::size_t kBig = 1 << 20;
    if (ctx.rank() == 0) {
      std::vector<std::int64_t> v(kBig);
      std::iota(v.begin(), v.end(), 0);
      ctx.send<std::int64_t>(1, 0, v);
    } else {
      auto v = ctx.recv<std::int64_t>(0, 0);
      ck.check_eq(v.size(), kBig, 1, "size");
      ck.check_eq(v[kBig - 1], static_cast<std::int64_t>(kBig - 1), 1,
                  "last value");
    }
  });
}

TEST(Payload, StructuredTriviallyCopyableType) {
  struct Particle {
    double pos;
    double vel;
    std::int32_t cell;
    std::int32_t pad;
  };
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 0, Particle{1.5, -2.5, 42, 0});
    } else {
      const auto p = ctx.recv_value<Particle>(0, 0);
      ck.check_eq(p.pos, 1.5, 1, "pos");
      ck.check_eq(p.cell, 42, 1, "cell");
    }
  });
}

TEST(Stress, ManyRanksAllToAllRepeated) {
  run_checked(8, [](Context& ctx, SpmdChecker& ck) {
    for (int round = 0; round < 5; ++round) {
      std::vector<std::vector<int>> out(8);
      for (int d = 0; d < 8; ++d) {
        out[static_cast<std::size_t>(d)] = {ctx.rank() * 100 + d + round};
      }
      auto in = ctx.alltoallv(std::move(out));
      for (int s = 0; s < 8; ++s) {
        ck.check_eq(in[static_cast<std::size_t>(s)].at(0),
                    s * 100 + ctx.rank() + round, ctx.rank(), "round value");
      }
    }
  });
}

TEST(Stress, MixedPointToPointAndCollectives) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    for (int round = 0; round < 20; ++round) {
      const int next = (ctx.rank() + 1) % 4;
      const int prev = (ctx.rank() + 3) % 4;
      ctx.send_value<int>(next, round, ctx.rank());
      const int sum = ctx.allreduce(1, ReduceOp::Sum);
      ck.check_eq(sum, 4, ctx.rank(), "collective mid-stream");
      ck.check_eq(ctx.recv_value<int>(prev, round), prev, ctx.rank(),
                  "p2p around collective");
    }
  });
}

TEST(Reduce, LogicalOps) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    const int mine = ctx.rank() == 1 ? 0 : 1;
    ck.check_eq(ctx.allreduce(mine, ReduceOp::LogicalAnd), 0, ctx.rank(),
                "and");
    ck.check_eq(ctx.allreduce(mine, ReduceOp::LogicalOr), 1, ctx.rank(),
                "or");
  });
}

TEST(Accounting, CollectiveControlTrafficIsSeparated) {
  Machine m(4);
  msg::run_spmd(m, [](Context& ctx) {
    (void)ctx.allreduce(1.0, ReduceOp::Sum);
  });
  const auto s = m.total_stats();
  EXPECT_EQ(s.data_messages, 0u);
  EXPECT_GT(s.ctl_messages, 0u);
  EXPECT_EQ(s.collectives, 4u);
}

TEST(Accounting, ModeledTimeScalesWithAlphaBeta) {
  CostModel cheap{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
  CostModel expensive{.alpha_us = 1000.0, .beta_us_per_byte = 1.0};
  CommStats s;
  s.data_messages = 10;
  s.data_bytes = 1000;
  EXPECT_DOUBLE_EQ(s.modeled_us(cheap), 10.0);
  EXPECT_DOUBLE_EQ(s.modeled_us(expensive), 10.0 * 1000 + 1000.0);
}

}  // namespace
}  // namespace vf::msg
