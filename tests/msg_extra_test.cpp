// Additional message-layer tests: ordering guarantees, payload edge cases,
// concurrency stress, and cost-model accounting of the collectives.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>

#include "spmd_test_util.hpp"
#include "vf/msg/spmd.hpp"

namespace vf::msg {
namespace {

using testing::run_checked;
using testing::SpmdChecker;

TEST(Ordering, FifoPerSourceAndTag) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    constexpr int kCount = 200;
    if (ctx.rank() == 0) {
      for (int k = 0; k < kCount; ++k) ctx.send_value<int>(1, 7, k);
    } else {
      for (int k = 0; k < kCount; ++k) {
        ck.check_eq(ctx.recv_value<int>(0, 7), k, 1, "FIFO order");
      }
    }
  });
}

TEST(Ordering, InterleavedTagsKeepPerTagOrder) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      for (int k = 0; k < 50; ++k) {
        ctx.send_value<int>(1, k % 2, k);
      }
    } else {
      int prev_even = -1, prev_odd = -1;
      for (int k = 0; k < 25; ++k) {
        const int e = ctx.recv_value<int>(0, 0);
        ck.check(e > prev_even, 1, "even tag order");
        prev_even = e;
      }
      for (int k = 0; k < 25; ++k) {
        const int o = ctx.recv_value<int>(0, 1);
        ck.check(o > prev_odd, 1, "odd tag order");
        prev_odd = o;
      }
    }
  });
}

TEST(Payload, EmptyMessageRoundTrips) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_bytes(1, 0, {});
    } else {
      auto b = ctx.recv_bytes(0, 0);
      ck.check_eq(b.size(), std::size_t{0}, 1, "empty payload");
    }
  });
}

TEST(Payload, LargeMessage) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    constexpr std::size_t kBig = 1 << 20;
    if (ctx.rank() == 0) {
      std::vector<std::int64_t> v(kBig);
      std::iota(v.begin(), v.end(), 0);
      ctx.send<std::int64_t>(1, 0, v);
    } else {
      auto v = ctx.recv<std::int64_t>(0, 0);
      ck.check_eq(v.size(), kBig, 1, "size");
      ck.check_eq(v[kBig - 1], static_cast<std::int64_t>(kBig - 1), 1,
                  "last value");
    }
  });
}

TEST(Payload, StructuredTriviallyCopyableType) {
  struct Particle {
    double pos;
    double vel;
    std::int32_t cell;
    std::int32_t pad;
  };
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 0, Particle{1.5, -2.5, 42, 0});
    } else {
      const auto p = ctx.recv_value<Particle>(0, 0);
      ck.check_eq(p.pos, 1.5, 1, "pos");
      ck.check_eq(p.cell, 42, 1, "cell");
    }
  });
}

TEST(Stress, ManyRanksAllToAllRepeated) {
  run_checked(8, [](Context& ctx, SpmdChecker& ck) {
    for (int round = 0; round < 5; ++round) {
      std::vector<std::vector<int>> out(8);
      for (int d = 0; d < 8; ++d) {
        out[static_cast<std::size_t>(d)] = {ctx.rank() * 100 + d + round};
      }
      auto in = ctx.alltoallv(std::move(out));
      for (int s = 0; s < 8; ++s) {
        ck.check_eq(in[static_cast<std::size_t>(s)].at(0),
                    s * 100 + ctx.rank() + round, ctx.rank(), "round value");
      }
    }
  });
}

TEST(Stress, MixedPointToPointAndCollectives) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    for (int round = 0; round < 20; ++round) {
      const int next = (ctx.rank() + 1) % 4;
      const int prev = (ctx.rank() + 3) % 4;
      ctx.send_value<int>(next, round, ctx.rank());
      const int sum = ctx.allreduce(1, ReduceOp::Sum);
      ck.check_eq(sum, 4, ctx.rank(), "collective mid-stream");
      ck.check_eq(ctx.recv_value<int>(prev, round), prev, ctx.rank(),
                  "p2p around collective");
    }
  });
}

TEST(Reduce, LogicalOps) {
  run_checked(3, [](Context& ctx, SpmdChecker& ck) {
    const int mine = ctx.rank() == 1 ? 0 : 1;
    ck.check_eq(ctx.allreduce(mine, ReduceOp::LogicalAnd), 0, ctx.rank(),
                "and");
    ck.check_eq(ctx.allreduce(mine, ReduceOp::LogicalOr), 1, ctx.rank(),
                "or");
  });
}

TEST(WireFormat, UnpackRingRoundTripsPackRing) {
  std::vector<std::vector<std::int32_t>> vs = {{1, 2, 3}, {}, {7}, {9, 9}};
  const auto blob = detail::pack_ring(vs, 2, 3, 4);  // blocks 2, 3, 0
  std::vector<std::vector<std::int32_t>> out(4);
  detail::unpack_ring<std::int32_t>(blob, out, 2, 3, 4);
  EXPECT_EQ(out[2], vs[2]);
  EXPECT_EQ(out[3], vs[3]);
  EXPECT_EQ(out[0], vs[0]);
  EXPECT_TRUE(out[1].empty());  // block 1 not in the frame set
}

TEST(WireFormat, UnpackRingRejectsCorruptFrameCount) {
  // A corrupt element count n from the wire must not wrap the bounds
  // check: with the old `off + n * sizeof(T) > blob.size()` arithmetic,
  // n = 2^61 makes n * sizeof(double) wrap to 0 and the truncated frame
  // sails through into a resize(2^61).  The overflow-safe rewrite
  // (`n > (blob.size() - off) / sizeof(T)`) rejects it.
  std::vector<std::byte> blob(sizeof(std::uint64_t));
  const std::uint64_t evil = std::uint64_t{1} << 61;  // evil * 8 wraps to 0
  std::memcpy(blob.data(), &evil, sizeof evil);
  std::vector<std::vector<double>> vs(2);
  EXPECT_THROW(detail::unpack_ring<double>(blob, vs, 0, 1, 2),
               std::runtime_error);
  // Near-max counts whose byte size wraps to a small positive value are
  // caught by the same check.
  const std::uint64_t evil2 = (std::uint64_t{1} << 61) + 1;  // wraps to 8
  std::memcpy(blob.data(), &evil2, sizeof evil2);
  EXPECT_THROW(detail::unpack_ring<double>(blob, vs, 0, 1, 2),
               std::runtime_error);
}

TEST(WireFormat, UnpackRingRejectsTruncatedAndTrailingBytes) {
  std::vector<std::vector<std::int64_t>> one = {{42}};
  auto blob = detail::pack_ring(one, 0, 1, 1);
  std::vector<std::vector<std::int64_t>> out(1);

  // Truncated payload: frame promises one element, bytes end early.
  std::vector<std::byte> cut(blob.begin(), blob.end() - 4);
  EXPECT_THROW(detail::unpack_ring<std::int64_t>(cut, out, 0, 1, 1),
               std::runtime_error);

  // Truncated header: fewer than 8 bytes left where a count is due.
  std::vector<std::byte> stub(blob.begin(), blob.begin() + 3);
  EXPECT_THROW(detail::unpack_ring<std::int64_t>(stub, out, 0, 1, 1),
               std::runtime_error);

  // Trailing garbage after the last frame.
  auto padded = blob;
  padded.push_back(std::byte{0});
  EXPECT_THROW(detail::unpack_ring<std::int64_t>(padded, out, 0, 1, 1),
               std::runtime_error);

  // The intact blob still round-trips.
  detail::unpack_ring<std::int64_t>(blob, out, 0, 1, 1);
  EXPECT_EQ(out[0], one[0]);
}

TEST(WireFormat, BytesToVectorRejectsRaggedPayload) {
  std::vector<std::byte> bytes(12);  // not a multiple of sizeof(double)
  EXPECT_THROW(detail::bytes_to_vector<double>(bytes), std::runtime_error);
  EXPECT_TRUE(detail::bytes_to_vector<double>({}).empty());
  bytes.resize(16);
  EXPECT_EQ(detail::bytes_to_vector<double>(bytes).size(), 2u);
}

TEST(Transport, RecvBytesIntoEnforcesPreAgreedCount) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    if (ctx.rank() == 0) {
      const std::array<double, 3> payload{1.0, 2.0, 3.0};
      ctx.send(1, 5, std::span<const double>(payload));
      ctx.send(1, 6, std::span<const double>(payload));
    } else {
      std::array<double, 3> buf{};
      ctx.recv_bytes_into(0, 5, std::as_writable_bytes(std::span(buf)));
      ck.check_eq(buf[2], 3.0, 1, "counted receive fills caller storage");
      std::array<double, 2> wrong{};
      try {
        ctx.recv_bytes_into(0, 6, std::as_writable_bytes(std::span(wrong)));
        ck.fail("expected runtime_error for count mismatch");
      } catch (const std::runtime_error&) {
      }
    }
  });
}

TEST(Accounting, CollectiveControlTrafficIsSeparated) {
  Machine m(4);
  msg::run_spmd(m, [](Context& ctx) {
    (void)ctx.allreduce(1.0, ReduceOp::Sum);
  });
  const auto s = m.total_stats();
  EXPECT_EQ(s.data_messages, 0u);
  EXPECT_GT(s.ctl_messages, 0u);
  EXPECT_EQ(s.collectives, 4u);
}

TEST(Accounting, ModeledTimeScalesWithAlphaBeta) {
  CostModel cheap{.alpha_us = 1.0, .beta_us_per_byte = 0.0};
  CostModel expensive{.alpha_us = 1000.0, .beta_us_per_byte = 1.0};
  CommStats s;
  s.data_messages = 10;
  s.data_bytes = 1000;
  EXPECT_DOUBLE_EQ(s.modeled_us(cheap), 10.0);
  EXPECT_DOUBLE_EQ(s.modeled_us(expensive), 10.0 * 1000 + 1000.0);
}

}  // namespace
}  // namespace vf::msg
