// The pluggable counted-exchange transport layer: VF_TRANSPORT parsing,
// mailbox/shared-memory equivalence (results AND data-traffic accounting),
// switching transports on a live machine, the zero-copy rendezvous's
// failure containment (RankAbort mid-exchange, pre-agreed count mismatch,
// machine reuse after an abort), and the allocation-free collective
// scratch the transports feed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/apps/amr_front.hpp"
#include "vf/apps/smoothing_sim.hpp"
#include "vf/msg/exchange_scratch.hpp"
#include "vf/msg/transport.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf {
namespace {

using dist::block;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using msg::ExchangeLane;
using msg::ExchangeScratch;
using msg::Machine;
using msg::RankAbort;
using msg::TransportKind;
using testing::run_checked_on;
using testing::SpmdChecker;

/// Scoped VF_TRANSPORT override that restores the previous value.
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv("VF_TRANSPORT");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value == nullptr) {
      ::unsetenv("VF_TRANSPORT");
    } else {
      ::setenv("VF_TRANSPORT", value, 1);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv("VF_TRANSPORT", saved_.c_str(), 1);
    } else {
      ::unsetenv("VF_TRANSPORT");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(TransportSelect, EnvVariableParsing) {
  {
    EnvGuard g(nullptr);
    EXPECT_EQ(msg::default_transport_kind(), TransportKind::Mailbox);
  }
  {
    EnvGuard g("mailbox");
    EXPECT_EQ(msg::default_transport_kind(), TransportKind::Mailbox);
  }
  for (const char* shm : {"shm", "shared", "shared-memory", "shared_memory"}) {
    EnvGuard g(shm);
    EXPECT_EQ(msg::default_transport_kind(), TransportKind::SharedMemory)
        << shm;
  }
  {
    EnvGuard g("carrier-pigeon");
    EXPECT_THROW((void)msg::default_transport_kind(), std::invalid_argument);
  }
  EXPECT_STREQ(msg::to_string(TransportKind::Mailbox), "mailbox");
  EXPECT_STREQ(msg::to_string(TransportKind::SharedMemory), "shm");
}

TEST(TransportSelect, MachineExposesAndSwitchesKind) {
  Machine m(2, {}, TransportKind::Mailbox);
  EXPECT_EQ(m.transport_kind(), TransportKind::Mailbox);
  m.set_transport(TransportKind::SharedMemory);
  EXPECT_EQ(m.transport_kind(), TransportKind::SharedMemory);
  m.set_transport(TransportKind::Mailbox);
  EXPECT_EQ(m.transport_kind(), TransportKind::Mailbox);
}

/// A ring alltoallv_known_into round on an existing machine; returns
/// nothing but checks every received value.
void ring_exchange_round(Context& ctx, SpmdChecker& ck, int round) {
  const int np = ctx.nprocs();
  ExchangeScratch arena;
  ExchangeLane& lane = arena.lane(sizeof(double));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(np), 2);
  lane.prepare(counts, counts);
  for (int d = 0; d < np; ++d) {
    lane.send<double>(d)[0] = ctx.rank() * 100.0 + d + round;
    lane.send<double>(d)[1] = 0.5 * ctx.rank();
  }
  ctx.alltoallv_known_into(lane);
  for (int s = 0; s < np; ++s) {
    ck.check_eq(lane.recv<double>(s)[0], s * 100.0 + ctx.rank() + round,
                ctx.rank(), "ring value");
    ck.check_eq(lane.recv<double>(s)[1], 0.5 * s, ctx.rank(), "ring value 2");
  }
}

/// The same workloads under both transports must produce bitwise-equal
/// results and, by design, identical data-message accounting: the
/// zero-copy transport meters every published payload exactly as the
/// framed path does.
TEST(TransportEquivalence, WorkloadResultsAndAccountingMatch) {
  double checksum[2] = {0.0, 0.0};
  msg::CommStats stats[2];
  const TransportKind kinds[2] = {TransportKind::Mailbox,
                                  TransportKind::SharedMemory};
  for (int t = 0; t < 2; ++t) {
    Machine m(4, {}, kinds[t]);
    SpmdChecker ck;
    msg::run_spmd(m, [&](Context& ctx) {
      ring_exchange_round(ctx, ck, 7);
      const auto r = apps::run_smoothing(
          ctx,
          {.n = 16, .steps = 3, .stencil = apps::SmoothStencil::NinePoint,
           .split_phase = true},
          apps::SmoothLayout::Grid2D);
      if (ctx.rank() == 0) checksum[t] = r.checksum;
    });
    ck.expect_clean();
    stats[t] = m.total_stats();
  }
  EXPECT_EQ(checksum[0], checksum[1]);
  EXPECT_EQ(stats[0].data_messages, stats[1].data_messages);
  EXPECT_EQ(stats[0].data_bytes, stats[1].data_bytes);
  EXPECT_EQ(stats[0].collectives, stats[1].collectives);
}

TEST(TransportEquivalence, SetTransportBetweenRunsOnOneMachine) {
  Machine m(4);
  double first = 0.0;
  double second = 0.0;
  run_checked_on(m, [&](Context& ctx, SpmdChecker& ck) {
    ring_exchange_round(ctx, ck, 1);
    const auto r = apps::run_amr_front(ctx, {.n = 16, .steps = 2});
    if (ctx.rank() == 0) first = r.checksum;
  });
  m.set_transport(TransportKind::SharedMemory);
  run_checked_on(m, [&](Context& ctx, SpmdChecker& ck) {
    ring_exchange_round(ctx, ck, 2);
    const auto r = apps::run_amr_front(
        ctx, {.n = 16, .steps = 2, .split_phase = true});
    if (ctx.rank() == 0) second = r.checksum;
  });
  EXPECT_EQ(first, second);
}

// ---- zero-copy failure containment ----------------------------------------

/// One rank dies between begin and end while its peers are already
/// blocked in the zero-copy rendezvous (waiting for rank 2's acks that
/// will never come).  The fence must wake every peer with a RankAbort --
/// not a hang -- and run_spmd rethrows the origin's original error.
TEST(TransportAbort, RankDeathMidExchangeWakesBlockedPeers) {
  Machine m(4, {}, TransportKind::SharedMemory);
  m.set_recv_watchdog(std::chrono::milliseconds(2000));
  try {
    msg::run_spmd(m, [](Context& ctx) {
      ExchangeScratch arena;
      ExchangeLane& lane = arena.lane(sizeof(double));
      const std::vector<std::uint64_t> counts(4, 1);
      lane.prepare(counts, counts);
      for (int d = 0; d < 4; ++d) lane.send<double>(d)[0] = 1.0 * ctx.rank();
      const int tag = ctx.begin_exchange(lane);
      if (ctx.rank() == 2) {
        throw std::runtime_error("rank 2 dies mid-exchange");
      }
      ctx.end_exchange(lane, tag);  // peers block on rank 2's ack
    });
    FAIL() << "expected the origin's runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 dies mid-exchange");
  }
  const msg::FailureReport rep = m.last_failure_report();
  EXPECT_TRUE(rep.any_failed);
  EXPECT_EQ(rep.origin_rank, 2);
  for (const msg::RankFailure& f : rep.ranks) {
    EXPECT_TRUE(f.failed) << "rank " << f.rank;
    if (f.rank != 2) {
      EXPECT_EQ(f.abort_origin, 2) << "rank " << f.rank;
    }
  }
  // reset_failure_state drops the orphaned publications: the machine is
  // fully reusable for a clean zero-copy run.
  run_checked_on(m, [](Context& ctx, SpmdChecker& ck) {
    ring_exchange_round(ctx, ck, 3);
  });
  EXPECT_FALSE(m.last_failure_report().any_failed);
}

/// Disagreeing pre-agreed counts (sender publishes 2 elements, receiver
/// expects 3) surface as a structured RankAbort naming the mismatch, on
/// both ranks, instead of reading past a buffer.
TEST(TransportAbort, PreAgreedCountMismatchAborts) {
  Machine m(2, {}, TransportKind::SharedMemory);
  m.set_recv_watchdog(std::chrono::milliseconds(2000));
  try {
    msg::run_spmd(m, [](Context& ctx) {
      ExchangeScratch arena;
      ExchangeLane& lane = arena.lane(sizeof(double));
      if (ctx.rank() == 0) {
        // Sends 2 to rank 1, expects 1 back.
        lane.prepare(std::vector<std::uint64_t>{0, 2},
                     std::vector<std::uint64_t>{0, 1});
      } else {
        // Sends 1 to rank 0, expects 3 -- but rank 0 published 2.
        lane.prepare(std::vector<std::uint64_t>{1, 0},
                     std::vector<std::uint64_t>{3, 0});
      }
      ctx.end_exchange(lane, ctx.begin_exchange(lane));
    });
    FAIL() << "expected RankAbort";
  } catch (const RankAbort& e) {
    // Unarmed, the shared-memory rendezvous itself detects the
    // disagreement on the receiver ("pre-agreed counts disagree"); with
    // the lockstep checker armed (the VF_LOCKSTEP=1 CI leg) the same
    // divergence is caught one layer earlier, at op entry, by whichever
    // rank records second ("pre-agreed counts diverged").
    if (e.reason.find("lockstep mismatch") != std::string::npos) {
      EXPECT_NE(e.reason.find("pre-agreed counts diverged"),
                std::string::npos)
          << e.reason;
      EXPECT_TRUE(e.origin_rank == 0 || e.origin_rank == 1) << e.origin_rank;
    } else {
      EXPECT_EQ(e.origin_rank, 1);  // the receiver detects the mismatch
      EXPECT_NE(e.reason.find("pre-agreed counts disagree"),
                std::string::npos)
          << e.reason;
    }
  }
  EXPECT_TRUE(m.last_failure_report().any_failed);
}

// ---- allocation-free collectives ------------------------------------------

/// Warm allreduce / allreduce_vec replays draw their fan-in buffers from
/// the context's persistent collective scratch: after one warmup round
/// the grow_allocs counter must stay flat on every rank (this is the
/// allocs_per_exchange == 0 gate CI enforces on the bench side).
TEST(CollectiveScratch, WarmAllreduceReplaysAllocationFree) {
  testing::run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    std::vector<double> v(32);
    for (std::size_t k = 0; k < v.size(); ++k) {
      v[k] = 0.25 * static_cast<double>(k) + ctx.rank();
    }
    // Warmup: both the scalar and the vector shape.
    (void)ctx.allreduce(1 + ctx.rank(), msg::ReduceOp::Sum);
    std::vector<double> w = ctx.allreduce_vec(v, msg::ReduceOp::Max);
    ctx.reset_collective_scratch_stats();

    for (int round = 0; round < 10; ++round) {
      const int s = ctx.allreduce(1 + ctx.rank(), msg::ReduceOp::Sum);
      ck.check_eq(s, 10, ctx.rank(), "scalar allreduce value");
      w = ctx.allreduce_vec(std::move(w), msg::ReduceOp::Max);
      for (std::size_t k = 0; k < w.size(); ++k) {
        ck.check_eq(w[k], 0.25 * static_cast<double>(k) + 3, ctx.rank(),
                    "vector allreduce value");
      }
    }
    ck.check_eq(ctx.collective_scratch_stats().grow_allocs, std::uint64_t{0},
                ctx.rank(), "warm collective replays allocate nothing");
  });
}

}  // namespace
}  // namespace vf
