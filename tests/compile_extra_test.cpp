// Additional compile-support tests: nested control flow, DCASE arm
// refinement interactions, DistSet behaviour, and the ADI/PIC-shaped
// programs the paper's analysis must handle.
#include <gtest/gtest.h>

#include "vf/compile/parteval.hpp"

namespace vf::compile {
namespace {

using query::any_dim;
using query::p_block;
using query::p_col;
using query::p_cyclic;
using query::p_cyclic_any;
using query::p_gen_block;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{p_block()}; }
AbstractDist cyclicT(dist::Index k) { return TypePattern{p_cyclic(k)}; }

TEST(DistSet, AddDeduplicates) {
  DistSet s;
  s.add(blockT());
  s.add(blockT());
  EXPECT_EQ(s.types.size(), 1u);
  s.add(cyclicT(2));
  EXPECT_EQ(s.types.size(), 2u);
}

TEST(DistSet, MergePropagatesUndistributed) {
  DistSet a;
  a.add(blockT());
  DistSet b;
  b.undistributed = true;
  a.merge(b);
  EXPECT_TRUE(a.undistributed);
  EXPECT_EQ(a.types.size(), 1u);
}

TEST(DistSet, ToStringListsMembers) {
  DistSet s;
  s.undistributed = true;
  s.add(blockT());
  const std::string str = s.to_string();
  EXPECT_NE(str.find("<undistributed>"), std::string::npos);
  EXPECT_NE(str.find("BLOCK"), std::string::npos);
}

TEST(NestedFlow, LoopInsideBranch) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) {
        t.loop([](ProgramBuilder& body) {
          body.distribute("A", cyclicT(2));
        });
      })
      .use({"A"}, "end");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("end"), "A");
  EXPECT_EQ(d.types.size(), 2u);  // BLOCK skip path + CYCLIC(2)
}

TEST(NestedFlow, DcaseInsideLoopConverges) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  b.loop([](ProgramBuilder& body) {
    body.dcase({"A"},
               {{{TypePattern{p_block()}},
                 [](ProgramBuilder& arm) {
                   arm.distribute("A", cyclicT(2));
                 }},
                {{TypePattern{p_cyclic_any()}},
                 [](ProgramBuilder& arm) {
                   arm.distribute("A", blockT());
                 }}});
  });
  b.use({"A"}, "end");
  Program p = b.build();
  auto r = analyze_reaching(p);  // must reach a fixpoint
  const auto& d = r.plausible(p.find_label("end"), "A");
  EXPECT_EQ(d.types.size(), 2u);
  EXPECT_FALSE(d.undistributed);
}

TEST(ArmRefinement, SecondArmSeesFirstArmFailure) {
  // Semantically, arm 2 runs only if arm 1 failed; our analysis refines
  // each arm only by its own pattern (no negative information), so arm 2's
  // body still sees both plausible types -- documented conservatism.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .if_else([](ProgramBuilder& t) { t.distribute("A", cyclicT(2)); })
      .dcase({"A"}, {{{TypePattern::wildcard()},
                      [](ProgramBuilder& arm) { arm.use({"A"}, "arm1"); }},
                     {{TypePattern{p_cyclic_any()}},
                      [](ProgramBuilder& arm) { arm.use({"A"}, "arm2"); }}});
  Program p = b.build();
  auto r = analyze_reaching(p);
  EXPECT_EQ(r.plausible(p.find_label("arm1"), "A").types.size(), 2u);
  EXPECT_EQ(r.plausible(p.find_label("arm2"), "A").types.size(), 1u);
}

TEST(PartialEvalExtra, PicShapedProgram) {
  // The Figure 2 structure: FIELD starts BLOCK, is B_BLOCK after balance,
  // and inside the loop either stays or is re-B_BLOCKed.  A dcase
  // dispatching on GEN_BLOCK is Always after the initial distribute.
  const AbstractDist genT = TypePattern{p_gen_block()};
  ProgramBuilder b;
  b.declare({.name = "FIELD",
             .rank = 1,
             .dynamic = true,
             .range = {TypePattern{p_block()}, TypePattern{p_gen_block()}},
             .initial = blockT()})
      .distribute("FIELD", genT)
      .loop([&](ProgramBuilder& body) {
        body.use({"FIELD"}, "step");
        body.if_else(
            [&](ProgramBuilder& t) { t.distribute("FIELD", genT); });
      })
      .dcase({"FIELD"}, {{{TypePattern{p_gen_block()}}, nullptr},
                         {{TypePattern{p_block()}}, nullptr}});
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& at_step = r.plausible(p.find_label("step"), "FIELD");
  ASSERT_EQ(at_step.types.size(), 1u);
  EXPECT_EQ(at_step.types[0], genT);
  auto report = partial_eval(p, r);
  ASSERT_EQ(report.dcases.size(), 1u);
  EXPECT_EQ(report.dcases[0].arms[0], ArmVerdict::Always);
  EXPECT_EQ(report.dcases[0].arms[1], ArmVerdict::Never);
}

TEST(PartialEvalExtra, EvalIdtOnRangeBoundedCall) {
  // After an opaque call, RANGE keeps an IDT query partially evaluable.
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 2,
             .dynamic = true,
             .range = {TypePattern{p_col(), p_block()},
                       TypePattern{p_block(), p_col()}},
             .initial = TypePattern{p_col(), p_block()}})
      .call_unknown({"A"})
      .use({"A"}, "q");
  Program p = b.build();
  auto r = analyze_reaching(p);
  const auto& d = r.plausible(p.find_label("q"), "A");
  // IDT(A, (BLOCK, BLOCK)) can never match within the range.
  EXPECT_EQ(eval_idt(d, TypePattern{p_block(), p_block()}),
            ArmVerdict::Never);
  // IDT(A, (*, *)) always matches.
  EXPECT_EQ(eval_idt(d, TypePattern{any_dim(), any_dim()}),
            ArmVerdict::Always);
  // IDT(A, (:, BLOCK)) might.
  EXPECT_EQ(eval_idt(d, TypePattern{p_col(), p_block()}), ArmVerdict::Maybe);
}

TEST(Builder, FindLabelAndStructure) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .use({"A"}, "only");
  Program p = b.build();
  EXPECT_NO_THROW((void)p.find_label("only"));
  EXPECT_THROW((void)p.find_label("missing"), std::invalid_argument);
  // Entry has no predecessors; exit has no successors.
  EXPECT_TRUE(p.node(p.entry()).preds.empty());
  EXPECT_TRUE(p.node(p.exit()).succs.empty());
}

}  // namespace
}  // namespace vf::compile
