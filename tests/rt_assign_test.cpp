// Tests for cross-distribution array assignment (the Section 4
// "two static arrays + array assignment" alternative to DISTRIBUTE).
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/rt/assign.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Assign, CopiesAcrossTransposedDistributions) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8, 8});
    DistArray<double> v(env, {.name = "V",
                              .domain = dom,
                              .initial = DistributionType{col(), block()}});
    DistArray<double> vt(env, {.name = "VT",
                               .domain = dom,
                               .initial = DistributionType{block(), col()}});
    v.init([&](const IndexVec& i) { return 1.0 * dom.linearize(i); });
    vt.fill(-1.0);
    assign(ctx, v, vt);
    vt.for_owned([&](const IndexVec& i, double& x) {
      ck.check_eq(x, 1.0 * dom.linearize(i), ctx.rank(), "copied value");
    });
  });
}

TEST(Assign, PlanIsReusable) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    DistArray<int> a(env, {.name = "A",
                           .domain = dom,
                           .initial = DistributionType{block()}});
    DistArray<int> b(env, {.name = "B",
                           .domain = dom,
                           .initial = DistributionType{cyclic(1)}});
    AssignPlan<int> plan(ctx, a, b);
    for (int round = 0; round < 3; ++round) {
      a.init([&](const IndexVec& i) {
        return static_cast<int>(100 * round + i[0]);
      });
      ctx.barrier();
      plan.run(ctx, a, b);
      b.for_owned([&](const IndexVec& i, int& x) {
        ck.check_eq(x, static_cast<int>(100 * round + i[0]), ctx.rank(),
                    "round value");
      });
    }
  });
}

TEST(Assign, DomainMismatchThrows) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .initial = DistributionType{block()}});
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({9}),
                           .initial = DistributionType{block()}});
    try {
      assign(ctx, a, b);
      ck.fail("expected invalid_argument");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(Assign, StalePlanIsRejected) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({8});
    DistArray<int> a(env, {.name = "A",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    DistArray<int> b(env, {.name = "B",
                           .domain = dom,
                           .dynamic = true,
                           .initial = DistributionType{cyclic(1)}});
    a.fill(1);
    AssignPlan<int> plan(ctx, a, b);
    a.distribute(DistributionType{cyclic(2)});
    try {
      plan.run(ctx, a, b);
      ck.fail("expected logic_error (stale plan)");
    } catch (const std::logic_error&) {
    }
  });
}

TEST(Assign, IndirectSourceDistribution) {
  // Assignment out of an INDIRECT-distributed array exercises the
  // translation machinery end to end.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({16});
    // Owner pattern: interleave processors in reversed pairs.
    std::vector<int> owners;
    for (int k = 0; k < 16; ++k) owners.push_back((k * 5 + 3) % 4);
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{dist::indirect(owners)}});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .initial = DistributionType{block()}});
    a.init([&](const IndexVec& i) { return 2.0 * i[0]; });
    assign(ctx, a, b);
    b.for_owned([&](const IndexVec& i, double& x) {
      ck.check_eq(x, 2.0 * i[0], ctx.rank(), "indirect copy");
    });
  });
}

}  // namespace
}  // namespace vf::rt
