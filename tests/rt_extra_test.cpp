// Additional runtime tests: 3-D arrays, sub-machine processor arrays,
// descriptor consistency across redistributions, halo readability, and a
// full end-to-end pipeline on 8 virtual processors.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/assign.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

TEST(ThreeDim, Example1LayoutAndRedistribution) {
  // C(10,10,10) DIST(BLOCK, BLOCK, :) TO R(2,2), then remapped to
  // (:, BLOCK, BLOCK): full 3-D data preservation.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx, dist::ProcessorArray::grid(2, 2));
    const IndexDomain dom = IndexDomain::of_extents({10, 10, 10});
    DistArray<double> c(env, {.name = "C",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block(), block(),
                                                          col()}});
    ck.check_eq(c.layout().total, dist::Index{250}, ctx.rank(), "5x5x10");
    c.init([&](const IndexVec& i) {
      return static_cast<double>(dom.linearize(i));
    });
    c.distribute(DistributionType{col(), block(), block()});
    c.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, static_cast<double>(dom.linearize(i)), ctx.rank(),
                  "3-D remap");
    });
  });
}

TEST(SubMachine, ProcessorArrayWithBaseRank) {
  // A 2-processor array living on machine ranks 2..3 of a 4-rank machine:
  // ranks 0..1 own nothing but still participate in collectives.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray procs("R", IndexDomain::of_extents({2}),
                               /*base_rank=*/2);
    Env env(ctx, procs);
    DistArray<int> a(env, {.name = "A",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    if (ctx.rank() >= 2) {
      ck.check_eq(a.layout().total, dist::Index{4}, ctx.rank(), "half each");
    } else {
      ck.check(!a.layout().member, ctx.rank(), "outside processor array");
    }
    a.init([](const IndexVec& i) { return static_cast<int>(i[0]); });
    ck.check_eq(a.reduce(msg::ReduceOp::Sum), 36, ctx.rank(), "global sum");
    a.distribute(DistributionType{cyclic(1)});
    a.for_owned([&](const IndexVec& i, int& v) {
      ck.check_eq(v, static_cast<int>(i[0]), ctx.rank(), "after remap");
    });
  });
}

TEST(Descriptor, TracksRedistribution) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    const Descriptor before = a.describe();
    ck.check(before.segment.member, ctx.rank(), "member before");
    a.distribute(DistributionType{cyclic(1)});
    const Descriptor after = a.describe();
    ck.check(before.dist != after.dist, ctx.rank(), "descriptor swapped");
    ck.check_eq(after.dist->type().dim(0).kind, dist::DimDistKind::Cyclic,
                ctx.rank(), "new type");
    ck.check_eq(after.segment.total, before.segment.total, ctx.rank(),
                "same local volume for even remap");
  });
}

TEST(Halo, ReadabilityBoundaries) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<double> a(env, {.name = "A",
                              .domain = IndexDomain::of_extents({16}),
                              .dynamic = true,
                              .initial = DistributionType{block()},
                              .overlap_lo = {1},
                              .overlap_hi = {1}});
    const dist::Index lo = 4 * ctx.rank() + 1;
    ck.check(a.halo_readable({lo}), ctx.rank(), "own element");
    if (lo > 1) {
      ck.check(a.halo_readable({lo - 1}), ctx.rank(), "ghost");
      if (lo > 2) {
        ck.check(!a.halo_readable({lo - 2}), ctx.rank(), "beyond ghost");
      }
    }
  });
}

TEST(Reduce, LogicalOpsOverArray) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> flags(env, {.name = "F",
                               .domain = IndexDomain::of_extents({8}),
                               .dynamic = true,
                               .initial = DistributionType{block()}});
    flags.fill(1);
    ck.check_eq(flags.reduce(msg::ReduceOp::LogicalAnd), 1, ctx.rank(),
                "all ones");
    flags.at({static_cast<dist::Index>(4 * ctx.rank() + 1)}) = 0;
    ck.check_eq(flags.reduce(msg::ReduceOp::LogicalAnd), 0, ctx.rank(),
                "one zero");
    ck.check_eq(flags.reduce(msg::ReduceOp::LogicalOr), 1, ctx.rank(),
                "some ones");
  });
}

TEST(Pipeline, EndToEndOnEightRanks) {
  // Declaration -> init -> redistribute -> dcase dispatch -> irregular
  // assignment -> procedure call, all on one 8-rank machine.
  run_checked(8, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    const IndexDomain dom = IndexDomain::of_extents({64});
    DistArray<double> a(env, {.name = "A",
                              .domain = dom,
                              .dynamic = true,
                              .initial = DistributionType{block()}});
    DistArray<double> b(env, {.name = "B",
                              .domain = dom,
                              .initial = DistributionType{cyclic(3)}});
    a.init([](const IndexVec& i) { return 0.5 * static_cast<double>(i[0]); });

    a.distribute(DistributionType{dist::s_block({8, 8, 8, 8, 8, 8, 8, 8})});
    const int arm = query::dcase({&a})
                        .when({query::TypePattern{query::p_gen_block()}},
                              nullptr)
                        .otherwise(nullptr)
                        .run();
    ck.check_eq(arm, 0, ctx.rank(), "gen-block arm");

    assign(ctx, a, b);
    b.for_owned([&](const IndexVec& i, double& v) {
      ck.check_eq(v, 0.5 * static_cast<double>(i[0]), ctx.rank(),
                  "assigned value");
    });

    const double total_before = a.reduce(msg::ReduceOp::Sum);
    a.distribute(DistributionType{cyclic(5)});
    ck.check_eq(a.reduce(msg::ReduceOp::Sum), total_before, ctx.rank(),
                "sum preserved through final remap");
  });
}

}  // namespace
}  // namespace vf::rt
