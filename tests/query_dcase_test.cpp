// Tests for the DCASE construct and the IDT intrinsic (paper Section 2.5),
// including a transcription of the paper's Example 4.
#include <gtest/gtest.h>

#include "spmd_test_util.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::query {
namespace {

using dist::block;
using dist::col;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using msg::Context;
using rt::DistArray;
using rt::Env;
using testing::run_checked;
using testing::SpmdChecker;

TEST(Idt, MatchesCurrentDistribution) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{cyclic(1)}});
    ck.check(idt(b, TypePattern{p_cyclic_any()}), ctx.rank(), "CYCLIC(*)");
    ck.check(idt(b, TypePattern{p_cyclic(1)}), ctx.rank(), "CYCLIC(1)");
    ck.check(!idt(b, TypePattern{p_block()}), ctx.rank(), "not BLOCK");
    b.distribute(DistributionType{block()});
    ck.check(idt(b, TypePattern{p_block()}), ctx.rank(), "BLOCK after");
  });
}

TEST(Idt, SectionVariant) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    dist::ProcessorSection half(
        env.processors(), {dist::SectionDim::all(dist::Range{1, 2})});
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()},
                           .to = half});
    ck.check(idt(b, TypePattern{p_block()}, half), ctx.rank(),
             "matches section");
    ck.check(!idt(b, TypePattern{p_block()}, env.whole()), ctx.rank(),
             "wrong section");
  });
}

TEST(Idt, ThrowsWhenUndistributed) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true});
    try {
      (void)idt(b, TypePattern::wildcard());
      ck.fail("expected NotDistributedError");
    } catch (const rt::NotDistributedError&) {
    }
  });
}

/// Sets up the three selectors of the paper's Example 4 and runs the dcase
/// with the given distributions, returning the arm index executed.
int run_example4(Context& ctx, const DistributionType& t1,
                 const DistributionType& t2, const DistributionType& t3) {
  Env line(ctx);
  dist::ProcessorArray gridp = dist::ProcessorArray::grid(2, 2);
  Env grid(ctx, gridp);
  DistArray<double> b1(line, {.name = "B1",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = t1});
  DistArray<double> b2(line, {.name = "B2",
                              .domain = IndexDomain::of_extents({8}),
                              .dynamic = true,
                              .initial = t2});
  DistArray<double> b3(grid, {.name = "B3",
                              .domain = IndexDomain::of_extents({8, 8}),
                              .dynamic = true,
                              .initial = t3});
  int taken = -1;
  auto mark = [&taken](int a) { return [&taken, a] { taken = a; }; };
  const int arm =
      dcase({&b1, &b2, &b3})
          .when({TypePattern{p_block()}, TypePattern{p_block()},
                 TypePattern{p_cyclic(2), p_cyclic_any()}},
                mark(1))
          .when_named({{"B1", TypePattern{p_cyclic_any()}},
                       {"B3", TypePattern{p_block(), any_dim()}}},
                      mark(2))
          .when_named({{"B3", TypePattern{p_block(), p_cyclic_any()}}},
                      mark(3))
          .otherwise(mark(4))
          .run();
  if (arm >= 0 && taken != arm + 1) {
    throw std::runtime_error("action/arm mismatch");
  }
  return arm;
}

TEST(DCaseExample4, FirstClauseMatches) {
  // t1 = t2 = (BLOCK), t3 = (CYCLIC(2), CYCLIC).
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int arm = run_example4(ctx, DistributionType{block()},
                                 DistributionType{block()},
                                 DistributionType{cyclic(2), cyclic(1)});
    ck.check_eq(arm, 0, ctx.rank(), "first clause");
  });
}

TEST(DCaseExample4, SecondClauseNameTagged) {
  // t1 = (CYCLIC), t3 = (BLOCK, anything), t2 arbitrary.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int arm = run_example4(ctx, DistributionType{cyclic(1)},
                                 DistributionType{cyclic(3)},
                                 DistributionType{block(), block()});
    ck.check_eq(arm, 1, ctx.rank(), "second clause");
  });
}

TEST(DCaseExample4, ThirdClauseIgnoresOtherSelectors) {
  // t3 = (BLOCK, CYCLIC); t1 block so clause 2 fails on B1.
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int arm = run_example4(ctx, DistributionType{block()},
                                 DistributionType{cyclic(3)},
                                 DistributionType{block(), cyclic(4)});
    // Clause 1 fails (t2 not BLOCK? t2=(CYCLIC(3)) -> fails);
    // clause 2 fails (B1 not CYCLIC); clause 3 matches B3.
    ck.check_eq(arm, 2, ctx.rank(), "third clause");
  });
}

TEST(DCaseExample4, DefaultTakenWhenNothingMatches) {
  run_checked(4, [](Context& ctx, SpmdChecker& ck) {
    const int arm = run_example4(ctx, DistributionType{block()},
                                 DistributionType{cyclic(3)},
                                 DistributionType{cyclic(1), cyclic(1)});
    ck.check_eq(arm, 3, ctx.rank(), "default clause");
  });
}

TEST(DCase, NoMatchWithoutDefaultExecutesNothing) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    bool ran = false;
    const int arm = dcase({&b})
                        .when({TypePattern{p_cyclic_any()}},
                              [&] { ran = true; })
                        .run();
    ck.check_eq(arm, -1, ctx.rank(), "no arm");
    ck.check(!ran, ctx.rank(), "no action");
  });
}

TEST(DCase, ShortPositionalListGetsImplicitWildcards) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b1(env, {.name = "B1",
                            .domain = IndexDomain::of_extents({8}),
                            .dynamic = true,
                            .initial = DistributionType{block()}});
    DistArray<int> b2(env, {.name = "B2",
                            .domain = IndexDomain::of_extents({8}),
                            .dynamic = true,
                            .initial = DistributionType{cyclic(1)}});
    // Query list with one entry: B2 matched implicitly.
    const int arm = dcase({&b1, &b2})
                        .when({TypePattern{p_block()}}, nullptr)
                        .run();
    ck.check_eq(arm, 0, ctx.rank(), "implicit *");
  });
}

TEST(DCase, SequentialEvaluationTakesFirstMatch) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    int count = 0;
    const int arm = dcase({&b})
                        .when({TypePattern::wildcard()}, [&] { ++count; })
                        .when({TypePattern{p_block()}}, [&] { ++count; })
                        .run();
    ck.check_eq(arm, 0, ctx.rank(), "first match wins");
    ck.check_eq(count, 1, ctx.rank(), "at most one action");
  });
}

TEST(DCase, ValidationErrors) {
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    try {
      (void)dcase({});
      ck.fail("expected invalid_argument (no selectors)");
    } catch (const std::invalid_argument&) {
    }
    try {
      dcase({&b}).when({TypePattern{p_block()}, TypePattern{p_block()}},
                       nullptr);
      ck.fail("expected invalid_argument (too many queries)");
    } catch (const std::invalid_argument&) {
    }
    try {
      dcase({&b}).when_named({{"Z", TypePattern{p_block()}}}, nullptr);
      ck.fail("expected invalid_argument (unknown tag)");
    } catch (const std::invalid_argument&) {
    }
    try {
      dcase({&b}).when_named({{"B", TypePattern{p_block()}},
                              {"B", TypePattern{p_block()}}},
                             nullptr);
      ck.fail("expected invalid_argument (duplicate tag)");
    } catch (const std::invalid_argument&) {
    }
  });
}

TEST(DCase, SelectorsChangeBetweenRuns) {
  // The construct re-reads distributions at each run(): redistribution
  // switches the arm, the idiom behind phase-adaptive algorithms (§4).
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    auto dc = dcase({&b})
                  .when({TypePattern{p_block()}}, nullptr)
                  .when({TypePattern{p_cyclic_any()}}, nullptr);
    ck.check_eq(dc.run(), 0, ctx.rank(), "block arm");
    b.distribute(DistributionType{cyclic(2)});
    ck.check_eq(dc.run(), 1, ctx.rank(), "cyclic arm after remap");
  });
}

TEST(DCase, DispatchMemoizesOnDescriptorHandles) {
  // Re-running a DCASE while every selector still holds the identical
  // interned descriptor replays the matched arm (actions included) after
  // pointer compares only; any redistribution invalidates the memo.
  run_checked(2, [](Context& ctx, SpmdChecker& ck) {
    Env env(ctx);
    DistArray<int> b(env, {.name = "B",
                           .domain = IndexDomain::of_extents({8}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
    int actions = 0;
    auto dc = dcase({&b})
                  .when({TypePattern{p_block()}}, [&] { ++actions; })
                  .when({TypePattern{p_cyclic_any()}}, nullptr);
    for (int k = 0; k < 5; ++k) {
      ck.check_eq(dc.run(), 0, ctx.rank(), "memoized arm");
    }
    ck.check_eq(actions, 5, ctx.rank(), "action runs on every dispatch");
    ck.check_eq(dc.dispatch_hits(), std::uint64_t{4}, ctx.rank(),
                "repeat dispatches hit the handle memo");
    b.distribute(DistributionType{cyclic(2)});
    ck.check_eq(dc.run(), 1, ctx.rank(), "remap invalidates the memo");
    ck.check_eq(dc.dispatch_hits(), std::uint64_t{4}, ctx.rank(),
                "changed handle misses");
    // A no-op DISTRIBUTE to the same spelling keeps the handle: memo hits
    // resume immediately.
    b.distribute(DistributionType{cyclic(2)});
    ck.check_eq(dc.run(), 1, ctx.rank(), "same arm");
    ck.check_eq(dc.dispatch_hits(), std::uint64_t{5}, ctx.rank(),
                "identity DISTRIBUTE preserves the memo");
  });
}

}  // namespace
}  // namespace vf::query
