// Tests for DimMap: the closed-form per-dimension ownership/addressing
// functions, including property sweeps (TEST_P) over kinds, extents and
// processor counts -- the invariants every Vienna Fortran distribution
// must satisfy (paper Definition 1: a distribution is a total function on
// the index domain).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "vf/dist/dim_map.hpp"

namespace vf::dist {
namespace {

TEST(DimMapBlock, EvenPartition) {
  auto m = DimMap::block(Range{1, 100}, 4);
  EXPECT_EQ(m.nprocs(), 4);
  EXPECT_EQ(m.proc_of(1), 0);
  EXPECT_EQ(m.proc_of(25), 0);
  EXPECT_EQ(m.proc_of(26), 1);
  EXPECT_EQ(m.proc_of(100), 3);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(m.count_on(c), 25);
  EXPECT_EQ(m.local_of(26), 0);
  EXPECT_EQ(m.local_of(50), 24);
}

TEST(DimMapBlock, UnevenPartitionUsesCeilWidth) {
  // 10 elements on 4 procs: width ceil(10/4)=3 -> counts 3,3,3,1.
  auto m = DimMap::block(Range{1, 10}, 4);
  EXPECT_EQ(m.count_on(0), 3);
  EXPECT_EQ(m.count_on(1), 3);
  EXPECT_EQ(m.count_on(2), 3);
  EXPECT_EQ(m.count_on(3), 1);
}

TEST(DimMapBlock, MoreProcsThanElements) {
  auto m = DimMap::block(Range{1, 3}, 8);
  Index total = 0;
  for (int c = 0; c < 8; ++c) total += m.count_on(c);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(m.count_on(0), 1);  // width 1
  EXPECT_EQ(m.count_on(3), 0);
}

TEST(DimMapBlock, SegmentsAreContiguous) {
  auto m = DimMap::block(Range{1, 10}, 4);
  EXPECT_TRUE(m.contiguous());
  auto s0 = m.segment(0);
  ASSERT_TRUE(s0);
  EXPECT_EQ(*s0, Range(1, 3));
  auto s3 = m.segment(3);
  ASSERT_TRUE(s3);
  EXPECT_EQ(*s3, Range(10, 10));
}

TEST(DimMapBlock, NonUnitLowerBound) {
  auto m = DimMap::block(Range{-5, 4}, 2);  // 10 elements
  EXPECT_EQ(m.proc_of(-5), 0);
  EXPECT_EQ(m.proc_of(-1), 0);
  EXPECT_EQ(m.proc_of(0), 1);
  EXPECT_EQ(m.proc_of(4), 1);
  EXPECT_EQ(m.local_of(0), 0);
}

TEST(DimMapCyclic, RoundRobin) {
  auto m = DimMap::cyclic(Range{1, 10}, 3, 1);
  EXPECT_EQ(m.proc_of(1), 0);
  EXPECT_EQ(m.proc_of(2), 1);
  EXPECT_EQ(m.proc_of(3), 2);
  EXPECT_EQ(m.proc_of(4), 0);
  EXPECT_EQ(m.count_on(0), 4);  // 1,4,7,10
  EXPECT_EQ(m.count_on(1), 3);
  EXPECT_EQ(m.count_on(2), 3);
  EXPECT_EQ(m.local_of(7), 2);
  EXPECT_FALSE(m.contiguous());
  EXPECT_EQ(m.owned_ascending(0), (std::vector<Index>{1, 4, 7, 10}));
}

TEST(DimMapCyclic, BlockCyclic) {
  // CYCLIC(2) of 12 on 3 procs: [1,2]->0 [3,4]->1 [5,6]->2 [7,8]->0 ...
  auto m = DimMap::cyclic(Range{1, 12}, 3, 2);
  EXPECT_EQ(m.proc_of(2), 0);
  EXPECT_EQ(m.proc_of(3), 1);
  EXPECT_EQ(m.proc_of(7), 0);
  EXPECT_EQ(m.owned_ascending(0), (std::vector<Index>{1, 2, 7, 8}));
  EXPECT_EQ(m.local_of(8), 3);
}

TEST(DimMapCyclic, SingleProcIsContiguous) {
  auto m = DimMap::cyclic(Range{1, 5}, 1, 1);
  EXPECT_TRUE(m.contiguous());
  auto s = m.segment(0);
  ASSERT_TRUE(s);
  EXPECT_EQ(*s, Range(1, 5));
}

TEST(DimMapGenBlock, IrregularSegments) {
  auto m = DimMap::gen_block(Range{1, 10}, {4, 0, 5, 1});
  EXPECT_EQ(m.proc_of(4), 0);
  EXPECT_EQ(m.proc_of(5), 2);
  EXPECT_EQ(m.proc_of(9), 2);
  EXPECT_EQ(m.proc_of(10), 3);
  EXPECT_EQ(m.count_on(1), 0);
  EXPECT_FALSE(m.segment(1).has_value());
  auto s2 = m.segment(2);
  ASSERT_TRUE(s2);
  EXPECT_EQ(*s2, Range(5, 9));
}

TEST(DimMapGenBlock, RejectsWrongTotal) {
  EXPECT_THROW(DimMap::gen_block(Range{1, 10}, {4, 4}), std::invalid_argument);
  EXPECT_THROW(DimMap::gen_block(Range{1, 10}, {11, -1}),
               std::invalid_argument);
}

TEST(DimMapCollapsed, SingleOwnerOwnsAll) {
  auto m = DimMap::collapsed(Range{1, 7});
  EXPECT_EQ(m.nprocs(), 1);
  EXPECT_TRUE(m.is_collapsed());
  EXPECT_EQ(m.count_on(0), 7);
  EXPECT_EQ(m.proc_of(5), 0);
  EXPECT_EQ(m.local_of(5), 4);
}

TEST(DimMap, OutOfDomainAccessesThrow) {
  auto m = DimMap::block(Range{1, 10}, 2);
  EXPECT_THROW((void)m.proc_of(0), std::out_of_range);
  EXPECT_THROW((void)m.proc_of(11), std::out_of_range);
  EXPECT_THROW((void)m.count_on(2), std::out_of_range);
  EXPECT_THROW((void)m.global_of(0, 5), std::out_of_range);
}

TEST(DimMapRealigned, ShiftWithinLargerSpace) {
  // B(1:20) BLOCK on 4; A(1:10) aligned A(i) WITH B(i+5).
  auto b = DimMap::block(Range{1, 20}, 4);
  auto a = b.realigned(Range{1, 10}, 1, 5);
  // A(i) lives where B(i+5) lives.
  for (Index i = 1; i <= 10; ++i) {
    EXPECT_EQ(a.proc_of(i), b.proc_of(i + 5)) << "i=" << i;
  }
  // A's elements on proc 1 are those with i+5 in 6..10 -> i in 1..5.
  EXPECT_EQ(a.count_on(0), 0);
  EXPECT_EQ(a.count_on(1), 5);
  EXPECT_EQ(a.count_on(2), 5);
  EXPECT_EQ(a.count_on(3), 0);
  EXPECT_EQ(a.local_of(1), 0);
}

TEST(DimMapRealigned, ReversalStrideMinusOne) {
  // A(i) WITH B(11-i): A(1)~B(10), A(10)~B(1).
  auto b = DimMap::block(Range{1, 10}, 2);
  auto a = b.realigned(Range{1, 10}, -1, 11);
  EXPECT_EQ(a.proc_of(1), b.proc_of(10));
  EXPECT_EQ(a.proc_of(10), b.proc_of(1));
  EXPECT_EQ(a.count_on(0), 5);
  EXPECT_EQ(a.count_on(1), 5);
  // Owned sets still enumerate ascending.
  EXPECT_EQ(a.owned_ascending(1), (std::vector<Index>{1, 2, 3, 4, 5}));
}

TEST(DimMapRealigned, RejectsOutOfSpaceImage) {
  auto b = DimMap::block(Range{1, 10}, 2);
  EXPECT_THROW(b.realigned(Range{1, 10}, 1, 5), std::out_of_range);
  EXPECT_THROW(b.realigned(Range{1, 10}, 2, 0), std::invalid_argument);
}

TEST(DimMapRealigned, CyclicWithOffset) {
  auto b = DimMap::cyclic(Range{1, 30}, 3, 2);
  auto a = b.realigned(Range{1, 20}, 1, 10);
  for (Index i = 1; i <= 20; ++i) {
    EXPECT_EQ(a.proc_of(i), b.proc_of(i + 10)) << "i=" << i;
  }
  // local_of must remain a dense 0-based enumeration per proc.
  for (int c = 0; c < 3; ++c) {
    auto owned = a.owned_ascending(c);
    std::set<Index> locals;
    for (Index g : owned) locals.insert(a.local_of(g));
    EXPECT_EQ(locals.size(), owned.size());
    if (!owned.empty()) {
      EXPECT_EQ(*locals.begin(), 0);
      EXPECT_EQ(*locals.rbegin(), static_cast<Index>(owned.size()) - 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Property sweep: for every kind/extent/nprocs combination, check the
// fundamental invariants:
//   totality: every index has exactly one owner coordinate
//   density:  local_of is a bijection onto [0, count_on(c))
//   inverse:  global_of(proc_of(i), local_of(i)) == i
//   counts:   sum of count_on == extent
// ---------------------------------------------------------------------------

struct DimMapCase {
  std::string label;
  DimMap map;
  Index extent;
};

class DimMapProperty : public ::testing::TestWithParam<DimMapCase> {};

TEST_P(DimMapProperty, OwnershipInvariants) {
  const auto& [label, m, extent] = GetParam();
  const Range dom = m.dom();
  ASSERT_EQ(dom.size(), extent);

  Index total = 0;
  for (int c = 0; c < m.nprocs(); ++c) total += m.count_on(c);
  EXPECT_EQ(total, extent) << label;

  std::vector<std::set<Index>> locals(static_cast<std::size_t>(m.nprocs()));
  for (Index i = dom.lo; i <= dom.hi; ++i) {
    const int c = m.proc_of(i);
    ASSERT_GE(c, 0) << label;
    ASSERT_LT(c, m.nprocs()) << label;
    const Index l = m.local_of(i);
    ASSERT_GE(l, 0) << label;
    ASSERT_LT(l, m.count_on(c)) << label << " i=" << i;
    EXPECT_TRUE(locals[static_cast<std::size_t>(c)].insert(l).second)
        << label << ": duplicate local index " << l << " on " << c;
    EXPECT_EQ(m.global_of(c, l), i) << label << " i=" << i;
  }
  for (int c = 0; c < m.nprocs(); ++c) {
    EXPECT_EQ(static_cast<Index>(locals[static_cast<std::size_t>(c)].size()),
              m.count_on(c))
        << label;
  }
}

TEST_P(DimMapProperty, SegmentsMatchOwnership) {
  const auto& [label, m, extent] = GetParam();
  if (!m.contiguous()) return;
  for (int c = 0; c < m.nprocs(); ++c) {
    auto seg = m.segment(c);
    if (m.count_on(c) == 0) {
      EXPECT_FALSE(seg.has_value()) << label;
      continue;
    }
    ASSERT_TRUE(seg.has_value()) << label;
    EXPECT_EQ(seg->size(), m.count_on(c)) << label;
    for (Index i = seg->lo; i <= seg->hi; ++i) {
      EXPECT_EQ(m.proc_of(i), c) << label;
    }
  }
}

std::vector<DimMapCase> make_cases() {
  std::vector<DimMapCase> cases;
  const std::vector<Index> extents = {1, 2, 7, 16, 31, 100};
  const std::vector<int> procs = {1, 2, 3, 4, 7};
  for (Index n : extents) {
    for (int p : procs) {
      Range dom{1, n};
      cases.push_back({"BLOCK n=" + std::to_string(n) + " p=" +
                           std::to_string(p),
                       DimMap::block(dom, p), n});
      for (Index k : {Index{1}, Index{2}, Index{5}}) {
        cases.push_back({"CYCLIC(" + std::to_string(k) + ") n=" +
                             std::to_string(n) + " p=" + std::to_string(p),
                         DimMap::cyclic(dom, p, k), n});
      }
      // General block: skewed sizes (everything beyond proc 0 split evenly,
      // remainder to the last).
      std::vector<Index> sizes(static_cast<std::size_t>(p), 0);
      Index rest = n;
      sizes[0] = n / 2;
      rest -= sizes[0];
      for (int c = 1; c < p; ++c) {
        sizes[static_cast<std::size_t>(c)] = rest / (p - c);
        rest -= sizes[static_cast<std::size_t>(c)];
      }
      sizes[static_cast<std::size_t>(p - 1)] += rest;
      cases.push_back({"GEN_BLOCK n=" + std::to_string(n) + " p=" +
                           std::to_string(p),
                       DimMap::gen_block(dom, sizes), n});
    }
    cases.push_back({"COLLAPSED n=" + std::to_string(n),
                     DimMap::collapsed(Range{1, n}), n});
  }
  // Realigned variants exercising offsets and reversal.
  auto base = DimMap::block(Range{1, 64}, 4);
  cases.push_back({"BLOCK realigned +16",
                   base.realigned(Range{1, 48}, 1, 16), 48});
  cases.push_back({"BLOCK realigned reversed",
                   base.realigned(Range{1, 64}, -1, 65), 64});
  auto cyc = DimMap::cyclic(Range{1, 64}, 4, 3);
  cases.push_back({"CYCLIC(3) realigned +7",
                   cyc.realigned(Range{1, 50}, 1, 7), 50});
  cases.push_back({"CYCLIC(3) realigned reversed",
                   cyc.realigned(Range{1, 64}, -1, 65), 64});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DimMapProperty,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<DimMapCase>& pinfo) {
                           std::string s = pinfo.param.label;
                           for (char& ch : s) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace vf::dist
