// Mutation-style tests for the lint diagnostics pass (compile/lint.hpp):
// each case seeds one bug into a small IR program and asserts the matching
// diagnostic is reported at the right statement, then runs a clean twin of
// the same shape and asserts the pass stays silent -- no false positives.
#include <gtest/gtest.h>

#include <algorithm>

#include "vf/compile/lint.hpp"

namespace vf::compile {
namespace {

using query::p_block;
using query::p_cyclic;
using query::p_cyclic_any;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{p_block()}; }
AbstractDist cyclicT(dist::Index k) { return TypePattern{p_cyclic(k)}; }
AbstractDist cyclicAnyT() { return TypePattern{p_cyclic_any()}; }
halo::HaloSpec halo1() { return halo::HaloSpec({1}, {1}, false); }

// ---- StaleHaloRead ---------------------------------------------------------

TEST(Lint, StaleHaloReadAfterWrite) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x")
      .write({"A"}, "store")  // invalidates ghost freshness
      .stencil_use({"A"}, "stencil");
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_TRUE(rep.has(LintCode::StaleHaloRead, p.find_label("stencil")));
  const auto& d = rep.diagnostics;
  auto it = std::find_if(d.begin(), d.end(), [&](const Diagnostic& di) {
    return di.code == LintCode::StaleHaloRead;
  });
  ASSERT_NE(it, d.end());
  EXPECT_EQ(it->severity, Severity::Error);
  EXPECT_EQ(it->array, "A");
}

TEST(Lint, StaleHaloReadNeverExchanged) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .stencil_use({"A"}, "stencil");
  Program p = b.build();
  EXPECT_TRUE(lint(p).has(LintCode::StaleHaloRead, p.find_label("stencil")));
}

TEST(Lint, StaleHaloReadOnOnePathOnly) {
  // One branch refreshes, the other writes after refreshing: the join is
  // MAY-stale, which must be reported (a path exists that reads garbage).
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x")
      .if_else([](ProgramBuilder& t) { t.write({"A"}, "dirty"); })
      .stencil_use({"A"}, "stencil");
  Program p = b.build();
  EXPECT_TRUE(lint(p).has(LintCode::StaleHaloRead, p.find_label("stencil")));
}

TEST(Lint, StaleHaloReadNoOverlapDeclared) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .stencil_use({"A"}, "stencil");
  Program p = b.build();
  EXPECT_TRUE(lint(p).has(LintCode::StaleHaloRead, p.find_label("stencil")));
}

TEST(Lint, CleanStencilAfterExchange) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .write({"A"}, "store")
      .exchange_halo("A", "x")
      .stencil_use({"A"}, "stencil")
      .use({"A"}, "plain");  // non-stencil read never needs fresh ghosts
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::StaleHaloRead), 0u);
}

TEST(Lint, CleanStencilInSteadyLoop) {
  // The canonical sweep: write, exchange, stencil each iteration.
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .loop([](ProgramBuilder& body) {
        body.write({"A"}, "update")
            .exchange_halo("A", "x")
            .stencil_use({"A"}, "stencil");
      });
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::StaleHaloRead), 0u);
}

// ---- UseBeforeDistribute ---------------------------------------------------

TEST(Lint, UseBeforeDistribute) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true})
      .use({"A"}, "early")
      .distribute("A", blockT());
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_TRUE(rep.has(LintCode::UseBeforeDistribute, p.find_label("early")));
}

TEST(Lint, CleanUseAfterDistribute) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true})
      .distribute("A", blockT())
      .use({"A"}, "late");
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::UseBeforeDistribute), 0u);
}

// ---- RedundantDistribute ---------------------------------------------------

TEST(Lint, RedundantDistribute) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .use({"A"}, "u")
      .distribute("A", blockT());  // provably already BLOCK
  Program p = b.build();
  auto rep = lint(p);
  ASSERT_EQ(rep.count(LintCode::RedundantDistribute), 1u);
  auto it = std::find_if(
      rep.diagnostics.begin(), rep.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == LintCode::RedundantDistribute; });
  EXPECT_EQ(it->severity, Severity::Warning);
}

TEST(Lint, CleanChangingDistribute) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()})
      .distribute("A", cyclicT(4))
      .distribute("A", blockT());
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::RedundantDistribute), 0u);
}

// ---- RedundantHaloExchange -------------------------------------------------

TEST(Lint, RedundantHaloExchange) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x1")
      .exchange_halo("A", "x2");  // ghosts still fresh: moves nothing new
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_TRUE(rep.has(LintCode::RedundantHaloExchange, p.find_label("x2")));
  EXPECT_FALSE(rep.has(LintCode::RedundantHaloExchange, p.find_label("x1")));
}

TEST(Lint, CleanExchangeAfterWrite) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .exchange_halo("A", "x1")
      .write({"A"}, "store")
      .exchange_halo("A", "x2");
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::RedundantHaloExchange), 0u);
}

// ---- AsymShortcutHazard ----------------------------------------------------

TEST(Lint, AsymShortcutHazard) {
  // Per-rank OVERLAP with a locally-empty spec: skipping the exchange on
  // this rank's local evidence would desert wider-halo neighbours.
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo::HaloSpec::none(1),
             .halo_asymmetric = true})
      .exchange_halo("A", "x");
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_TRUE(rep.has(LintCode::AsymShortcutHazard, p.find_label("x")));
  // The asymmetric declaration also suppresses the redundancy promotion:
  // rank-local facts prove nothing about the collective.
  EXPECT_EQ(rep.count(LintCode::RedundantHaloExchange), 0u);
}

TEST(Lint, CleanAsymWithRealLocalHalo) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1(),
             .halo_asymmetric = true})
      .exchange_halo("A", "x");
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::AsymShortcutHazard), 0u);
}

// ---- DCaseArmDivergence ----------------------------------------------------

TEST(Lint, DCaseArmDivergence) {
  // Arms with different data-motion sequences: if ranks disagree on the
  // selector's distribution they desynchronize on the collective.
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = cyclicAnyT(),
             .halo = halo1()});
  b.dcase({"A"},
          {{.pats = {cyclicT(2)},
            .body = [](ProgramBuilder& arm) {
              arm.distribute("A", blockT()).exchange_halo("A", "arm0_x");
            }},
           {.pats = {cyclicT(4)},
            .body = [](ProgramBuilder& arm) { arm.use({"A"}, "arm1_u"); }}});
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_EQ(rep.count(LintCode::DCaseArmDivergence), 1u);
}

TEST(Lint, CleanDCaseSameMotion) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = cyclicAnyT(),
             .halo = halo1()});
  b.dcase({"A"},
          {{.pats = {cyclicT(2)},
            .body = [](ProgramBuilder& arm) {
              arm.distribute("A", blockT()).exchange_halo("A", "a0");
            }},
           {.pats = {cyclicT(4)},
            .body = [](ProgramBuilder& arm) {
              arm.distribute("A", blockT()).exchange_halo("A", "a1");
            }}});
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::DCaseArmDivergence), 0u);
}

TEST(Lint, CleanDCaseSingleLiveArm) {
  // Partial evaluation proves one arm Never fires: no divergence possible.
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .initial = blockT()});
  b.dcase({"A"},
          {{.pats = {blockT()},
            .body = [](ProgramBuilder& arm) {
              arm.distribute("A", cyclicT(2));
            }},
           {.pats = {cyclicT(8)},  // A is provably BLOCK: arm is dead
            .body = [](ProgramBuilder& arm) { arm.use({"A"}, "dead"); }}});
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::DCaseArmDivergence), 0u);
}

// ---- PossibleRangeViolation ------------------------------------------------

TEST(Lint, PossibleRangeViolation) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .range = {blockT()},
             .initial = blockT()})
      .distribute("A", cyclicAnyT());  // runtime-valued: may leave RANGE
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::PossibleRangeViolation), 1u);
}

TEST(Lint, CleanDistributeWithinRange) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .range = {blockT(), cyclicAnyT()},
             .initial = blockT()})
      .distribute("A", cyclicT(2));
  Program p = b.build();
  EXPECT_EQ(lint(p).count(LintCode::PossibleRangeViolation), 0u);
}

// ---- report plumbing -------------------------------------------------------

TEST(Lint, CleanProgramIsEmpty) {
  ProgramBuilder b;
  b.declare({.name = "A",
             .rank = 1,
             .dynamic = true,
             .initial = blockT(),
             .halo = halo1()})
      .write({"A"}, "store")
      .exchange_halo("A", "x")
      .stencil_use({"A"}, "stencil")
      .distribute("A", cyclicT(2))
      .use({"A"}, "after");
  Program p = b.build();
  auto rep = lint(p);
  EXPECT_TRUE(rep.diagnostics.empty()) << rep.to_string();
}

TEST(Lint, ReportSortedAndPrintable) {
  ProgramBuilder b;
  b.declare({.name = "A", .rank = 1, .dynamic = true, .halo = halo1()})
      .use({"A"}, "early")               // use-before-distribute
      .distribute("A", blockT())
      .stencil_use({"A"}, "stencil");    // never exchanged
  Program p = b.build();
  auto rep = lint(p);
  ASSERT_GE(rep.diagnostics.size(), 2u);
  for (std::size_t i = 1; i < rep.diagnostics.size(); ++i) {
    EXPECT_LE(rep.diagnostics[i - 1].stmt_id, rep.diagnostics[i].stmt_id);
  }
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("stale"), std::string::npos);
  for (const auto& d : rep.diagnostics) {
    EXPECT_FALSE(d.to_string().empty());
    EXPECT_FALSE(d.message.empty());
  }
}

TEST(Lint, StencilUseRejectsUndeclaredArray) {
  ProgramBuilder b;
  EXPECT_THROW(b.stencil_use({"nope"}), std::invalid_argument);
}

}  // namespace
}  // namespace vf::compile
