// Seeded fault-injection fuzz: the acceptance gate of the containment
// layer.  For every fault class (drop, delay, duplicate, truncate,
// bit-flip) injected at a seeded point of a real workload run -- 9-point
// smoothing, the AMR refinement front, a redistribution loop -- at
// P in {4, 9}, the machine must NOT hang: the fault surfaces in-process
// as a structured RankAbort naming an origin rank on every rank that
// failed, and the machine is reusable afterwards.  No test here relies on
// the ctest timeout.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/apps/amr_front.hpp"
#include "vf/apps/smoothing_sim.hpp"
#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf {
namespace {

using dist::block;
using dist::cyclic;
using dist::DistributionType;
using dist::IndexDomain;
using msg::Context;
using msg::FaultKind;
using msg::FaultPlan;
using msg::Machine;
using msg::RankAbort;

// Workloads are kept tiny: the point is communication structure, not
// compute, and Drop/Delay runs pay a full watchdog period each.
constexpr auto kWatchdog = std::chrono::milliseconds(2000);

void smoothing_body(Context& ctx) {
  (void)apps::run_smoothing(
      ctx,
      {.n = 32, .steps = 3, .stencil = apps::SmoothStencil::NinePoint},
      apps::SmoothLayout::Grid2D);
}

void smoothing_split_body(Context& ctx) {
  (void)apps::run_smoothing(
      ctx,
      {.n = 32, .steps = 3, .stencil = apps::SmoothStencil::NinePoint,
       .split_phase = true},
      apps::SmoothLayout::Grid2D);
}

void amr_front_body(Context& ctx) {
  (void)apps::run_amr_front(ctx, {.n = 24, .steps = 3});
}

void redistribute_body(Context& ctx) {
  rt::Env env(ctx);
  rt::DistArray<double> a(env,
                          {.name = "R",
                           .domain = IndexDomain::of_extents({64}),
                           .dynamic = true,
                           .initial = DistributionType{block()}});
  a.init([](const dist::IndexVec& i) { return 1.5 * i[0]; });
  for (int k = 0; k < 3; ++k) {
    a.distribute(DistributionType{cyclic(1)});
    a.distribute(DistributionType{block()});
  }
}

struct Workload {
  const char* name;
  void (*body)(Context&);
};

constexpr Workload kWorkloads[] = {
    {"smoothing", smoothing_body},
    {"amr_front", amr_front_body},
    {"redistribute", redistribute_body},
};

constexpr FaultKind kKinds[] = {FaultKind::Drop, FaultKind::Delay,
                                FaultKind::Duplicate, FaultKind::Truncate,
                                FaultKind::BitFlip};

/// One seeded one-shot injection: runs the workload once fault-free to
/// count deliveries, picks a seeded injection point, and asserts the
/// faulted run aborts in-process with a coherent per-rank report.
void fuzz_one(const Workload& w, int nprocs, FaultKind kind,
              std::uint64_t seed,
              msg::TransportKind transport = msg::TransportKind::Mailbox) {
  SCOPED_TRACE(std::string(w.name) + " P=" + std::to_string(nprocs) +
               " fault=" + msg::to_string(kind) +
               " seed=" + std::to_string(seed) +
               " transport=" + msg::to_string(transport));
  Machine m(nprocs, {}, transport);
  m.set_recv_watchdog(kWatchdog);

  m.set_fault_plan({});  // baseline: count the deliveries of a clean run
  msg::run_spmd(m, w.body);
  const std::uint64_t deliveries = m.deliveries();
  ASSERT_GT(deliveries, 0u);

  const std::uint64_t nth = msg::mix64(seed) % deliveries;
  m.set_fault_plan({.kind = kind, .nth = nth, .seed = seed});
  try {
    msg::run_spmd(m, w.body);
    FAIL() << "injected fault did not surface (nth=" << nth << ")";
  } catch (const RankAbort& e) {
    EXPECT_GE(e.origin_rank, 0);
    EXPECT_LT(e.origin_rank, nprocs);
  } catch (const std::exception& e) {
    FAIL() << "fault surfaced as unstructured error: " << e.what();
  }
  EXPECT_EQ(m.faults_injected(), 1u) << "nth=" << nth;

  const msg::FailureReport rep = m.last_failure_report();
  EXPECT_TRUE(rep.any_failed);
  EXPECT_GE(rep.origin_rank, 0);
  EXPECT_LT(rep.origin_rank, nprocs);
  for (const msg::RankFailure& f : rep.ranks) {
    if (f.failed && f.abort_origin >= 0) {
      EXPECT_LT(f.abort_origin, nprocs) << "rank " << f.rank;
    }
  }

  // The machine must be reusable: a clean run on the same machine.
  m.set_fault_plan({});
  msg::run_spmd(m, w.body);
  EXPECT_FALSE(m.last_failure_report().any_failed);
}

TEST(FaultFuzz, SmoothingP4) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[0], 4, k, 0xA0 + static_cast<std::uint64_t>(k));
}

TEST(FaultFuzz, SmoothingP9) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[0], 9, k, 0xB0 + static_cast<std::uint64_t>(k));
}

TEST(FaultFuzz, AmrFrontP4) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[1], 4, k, 0xC0 + static_cast<std::uint64_t>(k));
}

TEST(FaultFuzz, AmrFrontP9) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[1], 9, k, 0xD0 + static_cast<std::uint64_t>(k));
}

TEST(FaultFuzz, RedistributeP4) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[2], 4, k, 0xE0 + static_cast<std::uint64_t>(k));
}

TEST(FaultFuzz, RedistributeP9) {
  for (const FaultKind k : kKinds) fuzz_one(kWorkloads[2], 9, k, 0xF0 + static_cast<std::uint64_t>(k));
}

// Under the zero-copy transport the counted exchanges bypass deliver(),
// but every OTHER frame (spec exchanges, reductions, barriers, parti
// traffic) still rides it -- an injected fault there must wake ranks
// blocked in the shared-memory rendezvous through the fence, never hang
// them.  The split-phase smoothing body keeps an exchange in flight
// around the interior update, so aborts land mid-exchange by design.
TEST(FaultFuzz, SplitSmoothingShmP4) {
  const Workload w{"smoothing-split", smoothing_split_body};
  for (const FaultKind k : kKinds) {
    fuzz_one(w, 4, k, 0x1A0 + static_cast<std::uint64_t>(k),
             msg::TransportKind::SharedMemory);
  }
}

TEST(FaultFuzz, AmrFrontShmP9) {
  for (const FaultKind k : kKinds) {
    fuzz_one(kWorkloads[1], 9, k, 0x1B0 + static_cast<std::uint64_t>(k),
             msg::TransportKind::SharedMemory);
  }
}

/// Rate-mode chaos: corrupt ~1% of frames of a smoothing run.  Whatever
/// the interleaving, the outcome is binary and coherent: either no frame
/// was hit and the run completes, or at least one was and the run aborts
/// with a structured RankAbort -- never a hang, never an unstructured
/// error.
TEST(FaultFuzz, RateModeChaosNeverHangs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Machine m(4);
    m.set_recv_watchdog(kWatchdog);
    m.set_fault_plan(
        {.kind = FaultKind::BitFlip, .rate = 0.01, .seed = seed});
    bool aborted = false;
    try {
      msg::run_spmd(m, smoothing_body);
    } catch (const RankAbort&) {
      aborted = true;
    }
    if (m.faults_injected() > 0) {
      EXPECT_TRUE(aborted) << m.faults_injected() << " faults injected";
      EXPECT_TRUE(m.last_failure_report().any_failed);
    } else {
      EXPECT_FALSE(aborted);
    }
  }
}

// ---- targeted per-kind detection (deterministic, P = 2) -------------------

TEST(FaultDetect, DuplicateIsDetectedAsSeqReplay) {
  Machine m(2);
  m.set_fault_plan({.kind = FaultKind::Duplicate, .nth = 0});
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) ctx.send_value<int>(1, 3, 42);
      if (ctx.rank() == 1) (void)ctx.recv_value<int>(0, 3);
    });
    FAIL() << "expected RankAbort";
  } catch (const RankAbort& e) {
    EXPECT_NE(e.reason.find("replayed"), std::string::npos) << e.reason;
  }
}

TEST(FaultDetect, DropIsDetectedAsSeqGapAtNextFrame) {
  // The dropped frame's link carries a later frame, so the gap surfaces
  // at push time on the sender's thread -- no watchdog needed.
  Machine m(2);
  m.set_fault_plan({.kind = FaultKind::Drop, .nth = 0});
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) {
        ctx.send_value<int>(1, 3, 1);
        ctx.send_value<int>(1, 3, 2);
      }
    });
    FAIL() << "expected RankAbort";
  } catch (const RankAbort& e) {
    EXPECT_EQ(e.origin_rank, 0);
    EXPECT_NE(e.reason.find("lost or delayed"), std::string::npos)
        << e.reason;
  }
}

TEST(FaultDetect, DroppedFinalFrameFallsToWatchdog) {
  Machine m(2);
  m.set_recv_watchdog(std::chrono::milliseconds(300));
  m.set_fault_plan({.kind = FaultKind::Drop, .nth = 0});
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) ctx.send_value<int>(1, 3, 42);
      if (ctx.rank() == 1) (void)ctx.recv_value<int>(0, 3);
    });
    FAIL() << "expected RankAbort";
  } catch (const RankAbort& e) {
    EXPECT_EQ(e.origin_rank, 1);
    EXPECT_NE(e.reason.find("recv watchdog expired"), std::string::npos)
        << e.reason;
  }
}

TEST(FaultDetect, DelayedFrameIsReportedAsParked) {
  Machine m(2);
  m.set_recv_watchdog(std::chrono::milliseconds(300));
  m.set_fault_plan({.kind = FaultKind::Delay, .nth = 0});
  try {
    msg::run_spmd(m, [](Context& ctx) {
      if (ctx.rank() == 0) ctx.send_value<int>(1, 3, 42);
      if (ctx.rank() == 1) (void)ctx.recv_value<int>(0, 3);
    });
    FAIL() << "expected RankAbort";
  } catch (const RankAbort& e) {
    EXPECT_NE(e.reason.find("parked in flight"), std::string::npos)
        << e.reason;
  }
}

TEST(FaultDetect, TruncateAndBitFlipFailTheChecksum) {
  for (const FaultKind k : {FaultKind::Truncate, FaultKind::BitFlip}) {
    SCOPED_TRACE(msg::to_string(k));
    Machine m(2);
    m.set_fault_plan({.kind = k, .nth = 0});
    try {
      msg::run_spmd(m, [](Context& ctx) {
        if (ctx.rank() == 0) {
          const std::vector<double> v(16, 2.5);
          ctx.send<double>(1, 3, v);
        }
        if (ctx.rank() == 1) (void)ctx.recv<double>(0, 3);
      });
      FAIL() << "expected RankAbort";
    } catch (const RankAbort& e) {
      EXPECT_EQ(e.origin_rank, 1);  // the receiver detects corruption
      EXPECT_NE(e.reason.find("checksum mismatch"), std::string::npos)
          << e.reason;
    }
  }
}

}  // namespace
}  // namespace vf
