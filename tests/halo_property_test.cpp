// Property test for corner-including halo exchange: a distributed 9-point
// smoothing step on a (BLOCK, BLOCK) grid must match a sequential
// reference BITWISE for a sweep of sizes, overlap widths and processor
// grids -- including processor counts where some coordinates own no
// interior cells at all (BLOCK of 4 elements over 3 coordinates leaves the
// last coordinate empty).  Both sides evaluate apps::smooth9_combine in
// the same order on the same values, so exact equality is the correct
// assertion: any deviation means a ghost plane was stale or misplaced.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "spmd_test_util.hpp"
#include "vf/apps/smoothing_sim.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {
namespace {

using dist::block;
using dist::DistributionType;
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;
using msg::Context;
using testing::run_checked;
using testing::SpmdChecker;

double seed_value(Index i, Index j, Index n) {
  // Deterministic, position-sensitive, cheap; the centre spike makes
  // directional mistakes visible.
  return static_cast<double>((i * 31 + j * 17) % 23) -
         (i == n / 2 && j == n / 2 ? 100.0 : 0.0);
}

/// One sequential 9-point step over the full n x n grid (1-based), with
/// the same out-of-domain fallback the distributed kernel uses.
std::vector<double> step_reference(const std::vector<double>& cur, Index n) {
  std::vector<double> next(cur.size());
  const auto at = [&](Index i, Index j) {
    return cur[static_cast<std::size_t>((i - 1) + n * (j - 1))];
  };
  for (Index j = 1; j <= n; ++j) {
    for (Index i = 1; i <= n; ++i) {
      const double c = at(i, j);
      const auto rd = [&](Index di, Index dj) {
        const Index x = i + di;
        const Index y = j + dj;
        if (x < 1 || x > n || y < 1 || y > n) return c;
        return at(x, y);
      };
      next[static_cast<std::size_t>((i - 1) + n * (j - 1))] =
          apps::smooth9_combine(c, rd(-1, 0), rd(+1, 0), rd(0, -1),
                                rd(0, +1), rd(-1, -1), rd(-1, +1),
                                rd(+1, -1), rd(+1, +1));
    }
  }
  return next;
}

void run_case(int q, Index n, Index w, int steps) {
  run_checked(q * q, [=](Context& ctx, SpmdChecker& ck) {
    dist::ProcessorArray grid = dist::ProcessorArray::grid(q, q);
    Env env(ctx, grid);
    const DistArray<double>::Spec base{
        .name = "A",
        .domain = IndexDomain::of_extents({n, n}),
        .dynamic = true,
        .initial = DistributionType{block(), block()},
        .overlap_lo = {w, w},
        .overlap_hi = {w, w},
        .overlap_corners = true};
    DistArray<double> a(env, base);
    auto bspec = base;
    bspec.name = "B";
    DistArray<double> b(env, bspec);
    a.init([n](const IndexVec& i) { return seed_value(i[0], i[1], n); });

    // Sequential reference, replicated on every rank.
    std::vector<double> ref(static_cast<std::size_t>(n * n));
    for (Index j = 1; j <= n; ++j) {
      for (Index i = 1; i <= n; ++i) {
        ref[static_cast<std::size_t>((i - 1) + n * (j - 1))] =
            seed_value(i, j, n);
      }
    }

    DistArray<double>* src = &a;
    DistArray<double>* dst = &b;
    for (int s = 0; s < steps; ++s) {
      src->exchange_overlap();
      dst->for_owned([&](const IndexVec& i, double& out) {
        const double c = src->at(i);
        const auto rd = [&](Index di, Index dj) {
          const Index x = i[0] + di;
          const Index y = i[1] + dj;
          if (x < 1 || x > n || y < 1 || y > n) return c;
          return src->halo({x, y});
        };
        out = apps::smooth9_combine(c, rd(-1, 0), rd(+1, 0), rd(0, -1),
                                    rd(0, +1), rd(-1, -1), rd(-1, +1),
                                    rd(+1, -1), rd(+1, +1));
      });
      ref = step_reference(ref, n);
      std::swap(src, dst);
    }

    src->for_owned([&](const IndexVec& i, const double& v) {
      const double want =
          ref[static_cast<std::size_t>((i[0] - 1) + n * (i[1] - 1))];
      // Bitwise: both sides ran identical arithmetic on identical values.
      if (!(v == want)) {
        ck.fail("[rank " + std::to_string(ctx.rank()) + "] mismatch at " +
                i.to_string() + " n=" + std::to_string(n) +
                " w=" + std::to_string(w) + " q=" + std::to_string(q));
      }
    });
  });
}

TEST(HaloProperty, NinePointMatchesSequentialReference) {
  for (const int q : {2, 3}) {
    for (const Index n : {4, 5, 7, 12}) {
      for (const Index w : {Index{1}, Index{2}}) {
        run_case(q, n, w, /*steps=*/3);
      }
    }
  }
}

/// P = 9 with n = 4: BLOCK leaves the third processor row and column
/// without interior cells; their ranks must still participate in the
/// collective exchange without deadlock or corruption.
TEST(HaloProperty, RanksOwningNothingParticipate) {
  run_case(/*q=*/3, /*n=*/4, /*w=*/1, /*steps=*/4);
  run_case(/*q=*/3, /*n=*/4, /*w=*/2, /*steps=*/2);
}

/// The app-level 9-point smoothing runs end-to-end on both layouts and
/// agrees across them (same stencil, same grid, different communication
/// shapes), and its repeat steps hit the halo-plan cache.
TEST(HaloProperty, AppNinePointLayoutsAgree) {
  constexpr Index kN = 24;
  constexpr int kSteps = 5;
  double cols = 0.0;
  double grid = 0.0;
  std::uint64_t grid_hits = 0;
  std::uint64_t grid_misses = 0;
  {
    msg::Machine m(4);
    msg::run_spmd(m, [&](Context& ctx) {
      auto r = apps::run_smoothing(
          ctx, {.n = kN, .steps = kSteps,
                .stencil = apps::SmoothStencil::NinePoint},
          apps::SmoothLayout::Columns);
      if (ctx.rank() == 0) cols = r.checksum;
    });
  }
  {
    msg::Machine m(4);
    msg::run_spmd(m, [&](Context& ctx) {
      auto r = apps::run_smoothing(
          ctx, {.n = kN, .steps = kSteps,
                .stencil = apps::SmoothStencil::NinePoint},
          apps::SmoothLayout::Grid2D);
      if (ctx.rank() == 0) {
        grid = r.checksum;
        grid_hits = r.halo_plan_hits;
        grid_misses = r.halo_plan_misses;
      }
    });
  }
  EXPECT_NEAR(cols, grid, 1e-6 + 1e-9 * std::abs(cols));
  // 2 arrays x 4 ranks share 4 plans; every further exchange is a hit.
  EXPECT_EQ(grid_misses, 4u);
  EXPECT_EQ(grid_hits, static_cast<std::uint64_t>(kSteps * 4 - 4));
}

}  // namespace
}  // namespace vf::rt
