// Distribution: the total function delta mapping every element of an
// index domain to a processor of a section (paper Definition 1 and
// Section 2.2), realized as one DimMap per dimension plus an affine
// machine-rank map over the section's free dimensions.
//
// The local layout (loc_map, Section 3.2.1) is column-major over the
// per-dimension dense local indices, so every processor stores its owned
// set contiguously regardless of the distribution kind.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vf/dist/dim_map.hpp"
#include "vf/dist/dist_type.hpp"
#include "vf/dist/processors.hpp"

namespace vf::dist {

/// One rank's local layout under a distribution: per-dimension processor
/// coordinates and owned counts, plus the total owned element count.
struct LocalLayout {
  bool member = false;  ///< whether the rank belongs to the target section
  IndexVec coords;      ///< per-dimension processor coordinate (0 if collapsed)
  IndexVec counts;      ///< per-dimension owned count
  Index total = 0;      ///< product of counts
};

/// Affine decomposition of owner_rank: for every index point i,
///   owner_rank(i) = base + sum_d stride[d] * dim_map(d).proc_of(i[d]).
struct RankAffine {
  Index base = 0;
  std::array<Index, kMaxRank> stride{};
};

class Distribution;
using DistributionPtr = std::shared_ptr<const Distribution>;
using DimMapPtr = std::shared_ptr<const DimMap>;
using ProcessorSectionPtr = std::shared_ptr<const ProcessorSection>;

class Distribution {
 public:
  /// Applies a distribution type to an index domain on a processor
  /// section.  The type's rank must match the domain's; the number of
  /// distributed (non-collapsed) dimensions must match the section's free
  /// rank.  Distributed dimensions are assigned to the section's free
  /// dimensions in order.
  Distribution(IndexDomain dom, DistributionType type, ProcessorSection sec);

  /// Constructs a distribution from explicit per-dimension maps (the
  /// CONSTRUCT operation of alignments).  free_dims[d] is the section
  /// free-dimension index that dimension d is mapped onto, or -1 for a
  /// collapsed dimension; maps[d].nprocs() must equal the corresponding
  /// free extent (or 1 when collapsed).
  Distribution(IndexDomain dom, DistributionType type, ProcessorSection sec,
               std::vector<DimMap> maps, std::vector<int> free_dims);

  /// Shared-component constructor (the DistRegistry's interning path):
  /// like the explicit-maps form, but every per-dimension map and the
  /// section are immutable shared objects, so a registry hit or a
  /// partially shared construction performs no owner-table or section
  /// copies.
  Distribution(IndexDomain dom, DistributionType type,
               ProcessorSectionPtr sec, std::vector<DimMapPtr> maps,
               std::vector<int> free_dims);

  /// The per-dimension map a DimDist induces on range `r` over `nprocs`
  /// processor coordinates (the per-dimension step of the type-based
  /// constructor, exposed so the DistRegistry can intern maps before
  /// building them).
  [[nodiscard]] static DimMap build_dim_map(const DimDist& dd, Range r,
                                            int nprocs);

  /// The section free-dimension assignment the type-based constructor
  /// derives: distributed dimensions take free dims in order, collapsed
  /// dimensions get -1.
  [[nodiscard]] static std::vector<int> derive_free_dims(
      const DistributionType& type);

  /// Validates that `type` can be applied to `dom` on `sec` (rank match,
  /// free-rank consumption); throws invalid_argument otherwise.  The
  /// type-based constructor and the DistRegistry share this check.
  static void check_applicable(const IndexDomain& dom,
                               const DistributionType& type,
                               const ProcessorSection& sec);

  [[nodiscard]] const IndexDomain& domain() const noexcept { return dom_; }
  [[nodiscard]] const DistributionType& type() const noexcept { return type_; }
  [[nodiscard]] const ProcessorSection& section() const noexcept {
    return *sec_;
  }
  [[nodiscard]] const ProcessorSectionPtr& section_ptr() const noexcept {
    return sec_;
  }

  [[nodiscard]] const DimMap& dim_map(int d) const {
    if (d < 0 || d >= dom_.rank()) {
      throw std::out_of_range("Distribution::dim_map");
    }
    return *maps_[static_cast<std::size_t>(d)];
  }

  /// Section free-dimension index dimension d maps onto, or -1 when d is
  /// collapsed.
  [[nodiscard]] int proc_dim_of(int d) const {
    if (d < 0 || d >= dom_.rank()) {
      throw std::out_of_range("Distribution::proc_dim_of");
    }
    return free_dims_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] const std::vector<int>& free_dims() const noexcept {
    return free_dims_;
  }

  [[nodiscard]] const RankAffine& rank_affine() const noexcept {
    return affine_;
  }

  /// Machine rank owning index point i.
  [[nodiscard]] int owner_rank(const IndexVec& i) const;
  [[nodiscard]] bool owns(int rank, const IndexVec& i) const {
    return owner_rank(i) == rank;
  }

  /// Number of elements owned by a machine rank (0 for non-members).
  [[nodiscard]] Index local_size(int rank) const;

  /// This rank's local layout.
  [[nodiscard]] LocalLayout layout_for(int rank) const;

  /// Column-major local storage offset of owned index point i under
  /// layout L (the loc_map access function).
  [[nodiscard]] Index local_offset(const LocalLayout& L,
                                   const IndexVec& i) const;

  /// Owned global indices of `rank` in dimension d, ascending; empty for
  /// non-members.
  [[nodiscard]] std::vector<Index> owned_in_dim(int rank, int d) const;

  /// Calls fn(i) for every index point owned by `rank`, in global
  /// column-major order.
  template <typename F>
  void for_owned(int rank, F&& fn) const {
    const LocalLayout L = layout_for(rank);
    if (!L.member || L.total == 0) return;
    const int r = dom_.rank();
    std::array<std::vector<Index>, kMaxRank> owned;
    for (int d = 0; d < r; ++d) {
      owned[static_cast<std::size_t>(d)] =
          maps_[static_cast<std::size_t>(d)]->owned_ascending(
              static_cast<int>(L.coords[d]));
      if (owned[static_cast<std::size_t>(d)].empty()) return;
    }
    std::array<std::size_t, kMaxRank> pos{};
    IndexVec i;
    for (int d = 0; d < r; ++d) {
      i.push_back(owned[static_cast<std::size_t>(d)][0]);
    }
    for (;;) {
      fn(static_cast<const IndexVec&>(i));
      int d = 0;
      for (; d < r; ++d) {
        auto& p = pos[static_cast<std::size_t>(d)];
        const auto& lst = owned[static_cast<std::size_t>(d)];
        if (++p < lst.size()) {
          i[d] = lst[p];
          break;
        }
        p = 0;
        i[d] = lst[0];
      }
      if (d == r) break;
    }
  }

  /// Semantic mapping equality: both distributions assign every index
  /// point to the same machine rank (and therefore, because local
  /// orderings are always ascending-dense, induce identical local
  /// layouts).  Decided dimension-wise on the affine decomposition.
  [[nodiscard]] bool same_mapping(const Distribution& o) const;

  /// Structural fingerprint of (domain, type, section, free-dim
  /// assignment): equal fingerprints imply identical mappings and layouts
  /// modulo hash collisions.  The DistRegistry uses it as the interning
  /// bucket key (verifying structurally only at admission); cache hot
  /// paths key on handle identity instead and never re-verify.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] bool structural_equal(const Distribution& o) const {
    return dom_ == o.dom_ && type_ == o.type_ && *sec_ == *o.sec_ &&
           free_dims_ == o.free_dims_;
  }

  /// The fingerprint a distribution over (dom, type, sec, free_dims)
  /// would carry, computable without building any per-dimension map --
  /// the DistRegistry's lookup key.
  [[nodiscard]] static std::uint64_t fingerprint_of(
      const IndexDomain& dom, const DistributionType& type,
      const ProcessorSection& sec, const std::vector<int>& free_dims);

  [[nodiscard]] std::string to_string() const;

  /// Approximate bytes held by this descriptor, EXCLUDING shared
  /// components (per-dimension maps, the section, indirect owner tables)
  /// which the registry accounts once per intern in their own buckets.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t b = sizeof(Distribution);
    b += maps_.capacity() * sizeof(DimMapPtr);
    b += free_dims_.capacity() * sizeof(int);
    b += type_.dims().capacity() * sizeof(DimDist);
    for (const DimDist& dd : type_.dims()) {
      b += dd.gen_sizes.capacity() * sizeof(Index);
      b += dd.gen_bounds.capacity() * sizeof(Index);
    }
    return b;
  }

 private:
  void finish_init();

  IndexDomain dom_;
  DistributionType type_;
  ProcessorSectionPtr sec_;
  std::vector<DimMapPtr> maps_;
  std::vector<int> free_dims_;
  RankAffine affine_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace vf::dist
