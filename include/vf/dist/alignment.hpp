// Alignments and the CONSTRUCT operation (paper Definition 2 and
// Section 2.1): an alignment is an affine map from a source array's index
// domain into a target array's, and CONSTRUCT derives the source's
// distribution from the target's so that corresponding elements are
// guaranteed to reside on the same processor.
#pragma once

#include <vector>

#include "vf/dist/distribution.hpp"

namespace vf::dist {

/// One target-dimension component of an alignment: either an affine
/// function stride * i_src + offset of one source dimension (stride
/// restricted to +-1), or a constant.
struct AlignExpr {
  enum class Kind { Dim, Constant };

  Kind kind = Kind::Constant;
  int src_dim = 0;
  Index stride = 1;
  Index offset = 0;
  Index value = 0;

  [[nodiscard]] static AlignExpr dim(int d, Index stride = 1,
                                     Index offset = 0) {
    AlignExpr e;
    e.kind = Kind::Dim;
    e.src_dim = d;
    e.stride = stride;
    e.offset = offset;
    return e;
  }

  [[nodiscard]] static AlignExpr constant(Index v) {
    AlignExpr e;
    e.kind = Kind::Constant;
    e.value = v;
    return e;
  }
};

/// ALIGN A(i_1, ..., i_m) WITH B(e_1, ..., e_n): one AlignExpr per target
/// (B) dimension over a source (A) of rank `source_rank`.
class Alignment {
 public:
  Alignment(int source_rank, std::vector<AlignExpr> exprs);

  /// Identity alignment of rank r: A(i) WITH B(i).
  [[nodiscard]] static Alignment identity(int r);

  /// Permutation alignment: target dimension t takes source dimension
  /// perm[t], as in ALIGN D(I,J,K) WITH C(J,I,K) == permutation(3, {1,0,2}).
  [[nodiscard]] static Alignment permutation(int source_rank,
                                             std::vector<int> perm);

  [[nodiscard]] int source_rank() const noexcept { return src_rank_; }
  [[nodiscard]] const std::vector<AlignExpr>& exprs() const noexcept {
    return exprs_;
  }

  /// The image of a source index point in the target's index space.
  [[nodiscard]] IndexVec apply(const IndexVec& i) const;

  /// CONSTRUCT: the distribution induced on the source domain by the
  /// target's distribution, such that apply-corresponding elements are
  /// colocated.
  [[nodiscard]] Distribution construct(const Distribution& target,
                                       const IndexDomain& source_dom) const;

 private:
  int src_rank_;
  std::vector<AlignExpr> exprs_;
};

}  // namespace vf::dist
