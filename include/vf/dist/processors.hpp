// Processor arrays and sections (paper Section 2.2): the PROCESSORS
// statement's named rectangular arrangements of the machine's processors,
// and processor sections (sub-arrays with fixed and free dimensions) that
// distributions target via the TO clause.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vf/dist/index.hpp"

namespace vf::dist {

/// A named rectangular arrangement of machine ranks.  Coordinates are
/// 1-based within the declared domain; machine ranks are assigned
/// column-major starting at base_rank.
class ProcessorArray {
 public:
  ProcessorArray() = default;
  ProcessorArray(std::string name, IndexDomain dom, int base_rank = 0);

  /// $P(1:n): the default 1-D arrangement of the whole machine.
  [[nodiscard]] static ProcessorArray line(int n);
  /// R(1:r, 1:c) grid.
  [[nodiscard]] static ProcessorArray grid(int r, int c);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const IndexDomain& domain() const noexcept { return dom_; }
  [[nodiscard]] int rank() const noexcept { return dom_.rank(); }
  [[nodiscard]] int base_rank() const noexcept { return base_; }
  [[nodiscard]] int nprocs() const noexcept {
    return static_cast<int>(dom_.size());
  }

  /// Machine rank of the processor with the given (1-based) coordinates.
  [[nodiscard]] int machine_rank(const IndexVec& coords) const;
  /// Coordinates of a machine rank (inverse of machine_rank).
  [[nodiscard]] IndexVec coords_of(int machine_rank) const;
  [[nodiscard]] bool contains_rank(int machine_rank) const noexcept;

  friend bool operator==(const ProcessorArray&,
                         const ProcessorArray&) = default;

 private:
  std::string name_;
  IndexDomain dom_;
  int base_ = 0;
};

/// One dimension of a processor section: either fixed at a coordinate or
/// free over a coordinate sub-range.
struct SectionDim {
  bool fixed = false;
  Index coord = 0;  ///< fixed coordinate (when fixed)
  Range range;      ///< coordinate sub-range (when free)

  [[nodiscard]] static SectionDim at(Index c) {
    SectionDim d;
    d.fixed = true;
    d.coord = c;
    return d;
  }
  [[nodiscard]] static SectionDim all(Range r) {
    SectionDim d;
    d.range = r;
    return d;
  }

  friend bool operator==(const SectionDim&, const SectionDim&) = default;
};

/// A rectangular section of a processor array.  The free dimensions (in
/// array-dimension order) form the section's own coordinate space, 0-based
/// per free dimension; machine ranks are affine in each free coordinate.
class ProcessorSection {
 public:
  ProcessorSection() = default;
  /// Whole-array section.
  explicit ProcessorSection(ProcessorArray arr);
  ProcessorSection(ProcessorArray arr, std::vector<SectionDim> dims);

  [[nodiscard]] const ProcessorArray& array() const noexcept { return arr_; }
  [[nodiscard]] const std::vector<SectionDim>& dims() const noexcept {
    return dims_;
  }

  /// Number of free dimensions.
  [[nodiscard]] int free_rank() const noexcept {
    return static_cast<int>(free_.size());
  }
  /// Number of processors in the section.
  [[nodiscard]] int nprocs() const noexcept;
  /// Extent of free dimension f.
  [[nodiscard]] int free_extent(int f) const;

  /// Machine rank of the processor at the given 0-based free coordinates.
  [[nodiscard]] int machine_rank(const IndexVec& free_coords) const;
  /// Machine rank at all-zero free coordinates.
  [[nodiscard]] int rank_base() const;
  /// Affine machine-rank stride of free dimension f.
  [[nodiscard]] Index rank_stride(int f) const;

  /// All machine ranks of the section, enumerated column-major over the
  /// free coordinates.
  [[nodiscard]] std::vector<int> machine_ranks() const;

  /// Free coordinates of a machine rank, or nullopt if the rank is not a
  /// member of the section.
  [[nodiscard]] std::optional<IndexVec> free_coords_of(int machine_rank) const;

  [[nodiscard]] std::string to_string() const;

  /// Bytes held by this section (registry byte accounting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return sizeof(ProcessorSection) + arr_.name().capacity() +
           dims_.capacity() * sizeof(SectionDim) +
           free_.capacity() * sizeof(int);
  }

  friend bool operator==(const ProcessorSection&,
                         const ProcessorSection&) = default;

 private:
  ProcessorArray arr_;
  std::vector<SectionDim> dims_;
  std::vector<int> free_;  ///< array-dimension index of each free dim
};

}  // namespace vf::dist
