// Hash-consed distribution descriptors (paper Sections 2.2 and 3.2.2).
//
// The DISTRIBUTE statement makes distributions first-class run-time values
// that are compared, cached and passed across procedure boundaries.  The
// DistRegistry makes those values cheap: it interns Distribution objects
// (together with their per-dimension DimMaps and processor sections; index
// domains are kMaxRank-bounded trivially copyable values that need no
// sharing) into immutable shared DistHandles, so that
//
//   * descriptor equality is pointer identity (one integer compare);
//   * a DISTRIBUTE of a previously-seen distribution costs a hash lookup
//     -- O(rank) thanks to IndirectTable's precomputed content hashes --
//     instead of an owner-table copy plus a DimMap::indirect rebuild;
//   * downstream caches (redistribution plans, PARTI schedule bindings,
//     procedure interface matching) key on handle identity, with no
//     fingerprint-collision re-verification on any hot path.
//
// Structural verification happens exactly once, at admission time; after
// that, two handles are equal iff their distributions are structurally
// equal.  One registry lives in each rt::Env (registries are per virtual
// processor and not thread-safe).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vf/dist/distribution.hpp"
#include "vf/halo/spec.hpp"

namespace vf::dist {

class DistRegistry;

/// Shared immutable reference to an interned Distribution.  Equality is
/// pointer identity; uid() is a small dense id (unique per registry, 0 for
/// the null handle and for unregistered wrappers) that downstream caches
/// pack into flat integer keys.
class DistHandle {
 public:
  DistHandle() = default;

  [[nodiscard]] const Distribution& operator*() const noexcept { return *p_; }
  [[nodiscard]] const Distribution* operator->() const noexcept {
    return p_.get();
  }
  [[nodiscard]] const Distribution* get() const noexcept { return p_.get(); }
  [[nodiscard]] const DistributionPtr& ptr() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  /// Dense registry id; 0 when null or created with a disabled registry
  /// (such handles never hit identity-keyed caches).
  [[nodiscard]] std::uint32_t uid() const noexcept { return uid_; }
  [[nodiscard]] bool interned() const noexcept { return uid_ != 0; }

  friend bool operator==(const DistHandle&, const DistHandle&) = default;
  friend bool operator==(const DistHandle& h, std::nullptr_t) noexcept {
    return h.p_ == nullptr;
  }

 private:
  friend class DistRegistry;
  DistHandle(DistributionPtr p, std::uint32_t uid)
      : p_(std::move(p)), uid_(uid) {}

  DistributionPtr p_;
  std::uint32_t uid_ = 0;
};

/// Interning traffic counters (reported per bench run as registry_* in
/// BENCH_<name>.json), plus the byte accounting that makes long-run
/// growth measurable rather than asserted.
struct RegistryStats {
  std::uint64_t hits = 0;            ///< whole-distribution intern hits
  std::uint64_t misses = 0;          ///< whole-distribution admissions
  std::uint64_t dim_map_hits = 0;    ///< per-dimension map intern hits
  std::uint64_t dim_map_misses = 0;  ///< per-dimension map admissions
  std::uint64_t halo_spec_hits = 0;    ///< halo-spec intern hits
  std::uint64_t halo_spec_misses = 0;  ///< halo-spec admissions
  std::uint64_t halo_family_hits = 0;    ///< halo-family intern hits
  std::uint64_t halo_family_misses = 0;  ///< halo-family admissions
  std::uint64_t resident_bytes = 0;  ///< approx bytes held by live interns
  std::uint64_t swept = 0;           ///< entries reclaimed across all sweeps
  std::uint64_t pinned = 0;          ///< entries kept by the LAST sweep
};

class DistRegistry {
 public:
  DistRegistry() = default;
  DistRegistry(const DistRegistry&) = delete;
  DistRegistry& operator=(const DistRegistry&) = delete;

  /// Interns the distribution `type` would induce on `dom` over `sec`.
  /// On a hit nothing is constructed: the key is hashed (O(rank), owner
  /// tables contribute precomputed hashes), the bucket candidate is
  /// verified component-wise, and the existing handle is returned.  On a
  /// miss the distribution is built from interned sections and dimension
  /// maps and admitted.
  [[nodiscard]] DistHandle intern(const IndexDomain& dom,
                                  const DistributionType& type,
                                  const ProcessorSection& sec);
  [[nodiscard]] DistHandle intern(const IndexDomain& dom,
                                  const DistributionType& type,
                                  ProcessorSectionPtr sec);

  /// Post-hoc interning of an already-constructed distribution (alignment
  /// CONSTRUCT results and other explicit-map forms): structurally keyed;
  /// `d` is dropped when an equal distribution is already interned.
  [[nodiscard]] DistHandle intern(Distribution d);

  /// Canonicalizes an already-shared distribution: a hit returns the
  /// interned handle, a miss admits the pointer as-is (no copy).
  [[nodiscard]] DistHandle intern(DistributionPtr d);

  /// Wraps a distribution without interning (uid 0); what intern()
  /// degrades to while the registry is disabled.
  [[nodiscard]] static DistHandle wrap(Distribution d);
  [[nodiscard]] static DistHandle wrap(DistributionPtr d);

  /// The per-dimension map `dd` induces on `r` over `nprocs` coordinates,
  /// shared across every interned distribution that uses it.
  [[nodiscard]] DimMapPtr intern_dim_map(const DimDist& dd, Range r,
                                         int nprocs);

  [[nodiscard]] ProcessorSectionPtr intern_section(const ProcessorSection& s);

  /// Interns a halo (overlap) spec alongside the distributions: spec
  /// equality becomes handle identity, and the (DistHandle uid, HaloSpec
  /// uid) pair keys the run-based halo-plan cache as one flat integer.
  [[nodiscard]] halo::HaloHandle intern(const halo::HaloSpec& s);

  /// Interns a reconciled per-rank spec family (the product of the
  /// plan-time spec exchange, see halo/exchange.hpp).  Members must be
  /// handles interned in THIS registry, so family equality reduces to
  /// element-wise handle identity and the (DistHandle uid, family uid)
  /// pair keys asymmetric halo plans the same way the (DistHandle uid,
  /// HaloSpec uid) pair keys uniform ones.
  [[nodiscard]] halo::FamilyHandle intern_family(
      std::vector<halo::HaloHandle> specs);

  /// Disabling makes intern() construct fresh unregistered handles (the
  /// benchmark cold path, measuring per-statement descriptor
  /// construction); existing entries are kept for re-enabling.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] const RegistryStats& stats() const noexcept { return stats_; }
  /// Zeroes the traffic counters; resident_bytes describes entries that
  /// still exist and survives the reset.
  void reset_stats() noexcept {
    const std::uint64_t resident = stats_.resident_bytes;
    stats_ = RegistryStats{};
    stats_.resident_bytes = resident;
  }

  /// Number of interned distributions.
  [[nodiscard]] std::size_t size() const noexcept { return n_dists_; }

  /// Epoch-based reclamation: drops every intern nothing outside the
  /// registry still references (a bucket entry is pinned iff some live
  /// array, cached plan, schedule binding or user handle shares its
  /// pointer).  Order matters: distributions retire before the dimension
  /// maps/sections they reference, families before their member specs, so
  /// components unshared after this pass are reclaimed in the same call.
  /// Advances epoch(); uids are NEVER reused across sweeps (or clear()),
  /// so uid-keyed memos can never alias a retired descriptor.  Returns
  /// the number of entries reclaimed; stats().swept accumulates it and
  /// stats().pinned snapshots what this sweep kept.
  std::size_t sweep();

  /// Number of completed sweeps.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Drops everything (pinned or not -- external handles keep their
  /// referents alive independently) and resets stats: counters describe
  /// current contents, and after a clear there are none.  uid counters
  /// stay monotonic, exactly as under sweep().
  void clear();

 private:
  struct DimMapEntry {
    DimDist dd;  // shares the owner table: cheap to keep as the key
    Range r;
    int np = 1;
    DimMapPtr map;
  };

  [[nodiscard]] DistHandle admit(DistributionPtr d, std::uint64_t key);

  bool enabled_ = true;
  RegistryStats stats_;
  std::uint64_t epoch_ = 0;
  std::uint32_t next_uid_ = 1;
  std::uint32_t next_halo_uid_ = 1;
  std::uint32_t next_family_uid_ = 1;
  std::size_t n_dists_ = 0;

  // Buckets keyed by structural fingerprint; vectors absorb collisions.
  std::unordered_map<std::uint64_t, std::vector<DistHandle>> dists_;
  std::unordered_map<std::uint64_t, std::vector<DimMapEntry>> dim_maps_;
  std::unordered_map<std::uint64_t, std::vector<ProcessorSectionPtr>>
      sections_;
  std::unordered_map<std::uint64_t, std::vector<halo::HaloHandle>> halos_;
  std::unordered_map<std::uint64_t, std::vector<halo::FamilyHandle>>
      halo_families_;
};

}  // namespace vf::dist
