// Skew detection and PRPD-style hybridization of target distributions.
//
// Vienna Fortran's dynamic DISTRIBUTE moves every element to its single
// owner, so an INDIRECT owner table (or a value-based repartition) with
// heavy keys hot-spots one rank: its send/recv volume dominates wall-clock
// while the rest of the machine idles.  This module implements the classic
// PRPD answer (partial redistribution / partial duplication):
//
//   * `ownership_skew` is the cheap inspector pass -- an exact per-owner
//     element histogram of a target mapping, O(P * rank) via the closed-form
//     `Distribution::local_size`, flagging skew when max/mean exceeds a
//     threshold (the same max-rank/mean-rank balance metric CommStats'
//     per-peer counters report at run time);
//
//   * `hybridize` builds the hybrid target H(old, new): equal to `new`
//     except that dimension-0 elements in excess of a per-rank fair-share
//     cap KEEP their `old` owners.  Heavy keys thus stay local -- the
//     redistribution old -> H ships strictly less data than old -> new and
//     bounds every rank's receive volume at the cap -- while light keys
//     ride the existing run-based plan machinery unchanged.  The result is
//     a plain interned INDIRECT distribution, so plan caching, hash-consed
//     descriptor equality and allocation-free replay all apply untouched.
//
// The duplication half of PRPD (replicating widely-shared heavy elements
// via allgather with an owner-side combine) lives in the PARTI Schedule
// inspector (parti/schedule.hpp), where per-element fan-in is known.
#pragma once

#include <cstdint>
#include <vector>

#include "vf/dist/distribution.hpp"
#include "vf/dist/registry.hpp"

namespace vf::dist {

/// Tuning knobs for detection and hybridization.
struct SkewConfig {
  /// Ownership max/mean above which a target mapping counts as skewed.
  double threshold = 4.0;
  /// Per-rank receive cap as a multiple of the dimension-0 fair share
  /// (ceil(extent / nprocs)).  1.0 bounds every rank at its fair share.
  double cap_factor = 1.0;
};

/// Exact per-rank ownership histogram of a distribution.
struct SkewReport {
  std::vector<Index> rank_elems;  ///< elements owned per machine rank
  Index total = 0;                ///< sum over member ranks
  int members = 0;                ///< ranks belonging to the target section

  /// Balance metric: max owned elements over the member-rank mean.
  /// 1.0 for perfectly balanced or empty mappings.
  [[nodiscard]] double max_over_mean() const noexcept;
  [[nodiscard]] bool skewed(double threshold) const noexcept {
    return max_over_mean() > threshold;
  }
};

/// Runs the inspector histogram pass over `d` for machine ranks
/// [0, nprocs).  O(nprocs * rank): per-rank counts come from the
/// closed-form layout, no element enumeration.
[[nodiscard]] SkewReport ownership_skew(const Distribution& d, int nprocs);

/// Builds and interns the hybrid target H(old, new) described above, or
/// returns a null handle when hybridization does not apply:
///
///   * the two distributions differ in domain, section, free-dimension
///     assignment, or any dimension >= 1 mapping (the cap walk only
///     reassigns dimension-0 owners, so everything else must agree);
///   * dimension 0 is collapsed in either distribution, or the two
///     dimension-0 maps span different processor-coordinate counts;
///   * no element exceeds the cap (the target is already balanced --
///     callers fall through to the ordinary all-to-owner plan, keeping
///     uniform workloads at zero hybrid overhead).
///
/// Determinism: the cap walk scans dimension-0 globals in ascending order,
/// so every rank computes the identical owner table and the interned
/// handle is SPMD-uniform by construction.
[[nodiscard]] DistHandle hybridize(DistRegistry& reg, const DistHandle& od,
                                   const DistHandle& nd,
                                   const SkewConfig& cfg);

}  // namespace vf::dist
