// DimMap: the closed-form per-dimension ownership and addressing functions
// of a distribution (paper Section 3.2.1).  A DimMap partitions a global
// index range over nprocs processor coordinates and answers, without
// communication:
//
//   proc_of(g)     -- owner coordinate of global index g
//   local_of(g)    -- dense 0-based local index of g on its owner
//   global_of(c,l) -- inverse of local_of
//   count_on(c)    -- number of indices owned by coordinate c
//
// Local indices always enumerate a coordinate's owned set in ascending
// global order, so loc_map is a dense bijection for every kind (the
// Definition 1 invariants; see dist_dim_map_test.cpp).
#pragma once

#include <optional>
#include <vector>

#include "vf/dist/index.hpp"

namespace vf::dist {

class DimMap {
 public:
  /// BLOCK: contiguous blocks of width ceil(extent / nprocs).
  [[nodiscard]] static DimMap block(Range dom, int nprocs);
  /// BLOCK(M): contiguous blocks of explicit width M; M * nprocs must
  /// cover the domain.
  [[nodiscard]] static DimMap block_width(Range dom, int nprocs, Index w);
  /// CYCLIC(k): round-robin blocks of length k.
  [[nodiscard]] static DimMap cyclic(Range dom, int nprocs, Index k);
  /// General block with explicit per-coordinate sizes (must sum to the
  /// extent, each >= 0).
  [[nodiscard]] static DimMap gen_block(Range dom, std::vector<Index> sizes);
  /// Collapsed dimension: a single coordinate owns everything.
  [[nodiscard]] static DimMap collapsed(Range dom);
  /// User-defined mapping: owners[i - dom.lo] is the owner coordinate of i.
  [[nodiscard]] static DimMap indirect(Range dom, std::vector<int> owners,
                                       int nprocs);

  [[nodiscard]] int nprocs() const noexcept { return np_; }
  [[nodiscard]] Range dom() const noexcept { return dom_; }
  [[nodiscard]] bool is_collapsed() const noexcept { return collapsed_; }

  /// Owner coordinate of g (throws out_of_range outside the domain).
  [[nodiscard]] int proc_of(Index g) const;
  /// Dense local index of g on its owner coordinate.
  [[nodiscard]] Index local_of(Index g) const;
  /// Global index of local slot l on coordinate c.
  [[nodiscard]] Index global_of(int c, Index l) const;
  /// Number of indices owned by coordinate c.
  [[nodiscard]] Index count_on(int c) const;

  /// Whether every coordinate's owned set is a contiguous interval.
  [[nodiscard]] bool contiguous() const noexcept { return contiguous_; }
  /// Owned interval of coordinate c (contiguous maps only; nullopt when c
  /// owns nothing or the map is not contiguous).
  [[nodiscard]] std::optional<Range> segment(int c) const;

  /// Owned global indices of coordinate c in ascending order.
  [[nodiscard]] std::vector<Index> owned_ascending(int c) const;

  /// Semantic equality: same domain and the same owner coordinate for
  /// every index.  (Local orderings always agree because every kind
  /// enumerates ascending.)
  [[nodiscard]] bool same_mapping(const DimMap& o) const;

  /// The map induced on `new_dom` by the affine alignment
  /// i -> stride * i + offset into this map's domain.  stride must be +1
  /// or -1 (invalid_argument otherwise); the image must stay within this
  /// map's domain (out_of_range otherwise).
  [[nodiscard]] DimMap realigned(Range new_dom, Index stride,
                                 Index offset) const;

  /// Heap + inline bytes held by this map (table maps dominate: the
  /// per-element owners/locals arrays).  Feeds registry byte accounting.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  enum class Rep { Contig, Cyclic, Table };

  void check_coord(int c) const;
  void check_index(Index g) const;
  void build_contig_lookup();

  Rep rep_ = Rep::Contig;
  Range dom_;
  int np_ = 1;
  bool collapsed_ = false;
  bool contiguous_ = true;

  // Contig: per-coordinate segments plus a sorted (start, coord) table for
  // O(log P) proc_of.
  std::vector<Range> segs_;
  std::vector<std::pair<Index, int>> starts_;

  // Cyclic.
  Index k_ = 1;

  // Table: per-element owners/locals plus per-coordinate owned lists.
  std::vector<int> owners_;
  std::vector<Index> locals_;
  std::vector<std::vector<Index>> owned_;
};

}  // namespace vf::dist
