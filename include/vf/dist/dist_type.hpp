// Distribution types (paper Section 2.2): the per-dimension intrinsics
// BLOCK, BLOCK(M), CYCLIC(k), general block (S_BLOCK sizes / B_BLOCK
// bounds), user-defined INDIRECT mappings, and the elision symbol ":".
// A DistributionType is the syntactic object that DISTRIBUTE statements,
// RANGE patterns and the DCASE construct manipulate; applying it to an
// index domain and a processor section yields a concrete Distribution.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "vf/dist/index.hpp"

namespace vf::dist {

enum class DimDistKind { Collapsed, Block, Cyclic, GenBlock, Indirect };

[[nodiscard]] std::string to_string(DimDistKind k);

/// Distribution of a single array dimension.
struct DimDist {
  DimDistKind kind = DimDistKind::Collapsed;
  /// BLOCK(M): explicit block width; 0 selects the default ceil width.
  Index block_width = 0;
  /// CYCLIC(k) block length.
  Index cyclic_block = 1;
  /// S_BLOCK(n1, ..., nP): per-processor segment sizes.
  std::vector<Index> gen_sizes;
  /// B_BLOCK(b1, ..., bP): cumulative per-processor upper bounds.
  std::vector<Index> gen_bounds;
  /// INDIRECT(map): owner coordinate of each element, in index order.
  std::vector<int> owners;

  [[nodiscard]] bool distributed() const noexcept {
    return kind != DimDistKind::Collapsed;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DimDist&, const DimDist&) = default;
};

/// BLOCK: contiguous even partition.
[[nodiscard]] DimDist block();
/// BLOCK(M): contiguous blocks of explicit width M (M >= 1).
[[nodiscard]] DimDist block_width(Index m);
/// CYCLIC(k): round-robin blocks of length k (k >= 1).
[[nodiscard]] DimDist cyclic(Index k);
/// ":": dimension not distributed.
[[nodiscard]] DimDist col();
/// S_BLOCK(sizes): general block with explicit per-processor sizes.
[[nodiscard]] DimDist s_block(std::vector<Index> sizes);
/// B_BLOCK(bounds): general block with cumulative upper bounds.
[[nodiscard]] DimDist b_block(std::vector<Index> bounds);
/// INDIRECT(owners): user-defined mapping array.
[[nodiscard]] DimDist indirect(std::vector<int> owners);

/// Distribution of a whole array: one DimDist per dimension.
class DistributionType {
 public:
  DistributionType() = default;
  DistributionType(std::initializer_list<DimDist> dims) : dims_(dims) {}
  explicit DistributionType(std::vector<DimDist> dims)
      : dims_(std::move(dims)) {}

  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const DimDist& dim(int d) const {
    if (d < 0 || d >= rank()) {
      throw std::out_of_range("DistributionType::dim");
    }
    return dims_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] const std::vector<DimDist>& dims() const noexcept {
    return dims_;
  }

  /// "(BLOCK, CYCLIC(2))" style rendering.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DistributionType&,
                         const DistributionType&) = default;

 private:
  std::vector<DimDist> dims_;
};

}  // namespace vf::dist
