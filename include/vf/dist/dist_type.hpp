// Distribution types (paper Section 2.2): the per-dimension intrinsics
// BLOCK, BLOCK(M), CYCLIC(k), general block (S_BLOCK sizes / B_BLOCK
// bounds), user-defined INDIRECT mappings, and the elision symbol ":".
// A DistributionType is the syntactic object that DISTRIBUTE statements,
// RANGE patterns and the DCASE construct manipulate; applying it to an
// index domain and a processor section yields a concrete Distribution.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "vf/dist/index.hpp"

namespace vf::dist {

enum class DimDistKind { Collapsed, Block, Cyclic, GenBlock, Indirect };

[[nodiscard]] std::string to_string(DimDistKind k);

/// An immutable INDIRECT mapping array, content-hashed exactly once at
/// construction.  DimDists share tables by pointer, so copying a
/// DistributionType that carries an INDIRECT dimension never copies the
/// owner table, and equality tests compare pointer, then hash, then (only
/// on a hash tie between distinct tables) contents.
class IndirectTable {
 public:
  explicit IndirectTable(std::vector<int> owners);

  [[nodiscard]] const std::vector<int>& owners() const noexcept {
    return owners_;
  }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::size_t size() const noexcept { return owners_.size(); }

  friend bool operator==(const IndirectTable& a, const IndirectTable& b) {
    return a.hash_ == b.hash_ && a.owners_ == b.owners_;
  }

 private:
  std::vector<int> owners_;
  std::uint64_t hash_ = 0;
};

using IndirectTablePtr = std::shared_ptr<const IndirectTable>;

/// Distribution of a single array dimension.
struct DimDist {
  DimDistKind kind = DimDistKind::Collapsed;
  /// BLOCK(M): explicit block width; 0 selects the default ceil width.
  Index block_width = 0;
  /// CYCLIC(k) block length.
  Index cyclic_block = 1;
  /// S_BLOCK(n1, ..., nP): per-processor segment sizes.
  std::vector<Index> gen_sizes;
  /// B_BLOCK(b1, ..., bP): cumulative per-processor upper bounds.
  std::vector<Index> gen_bounds;
  /// INDIRECT(map): shared owner table (owner coordinate of each element,
  /// in index order); null for every other kind.
  IndirectTablePtr owners;

  [[nodiscard]] bool distributed() const noexcept {
    return kind != DimDistKind::Collapsed;
  }

  /// Structural hash; the INDIRECT owner table contributes its
  /// precomputed content hash, so hashing is O(P) worst case (general
  /// block sizes), never O(N).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DimDist& a, const DimDist& b) {
    return a.kind == b.kind && a.block_width == b.block_width &&
           a.cyclic_block == b.cyclic_block && a.gen_sizes == b.gen_sizes &&
           a.gen_bounds == b.gen_bounds &&
           (a.owners == b.owners ||
            (a.owners != nullptr && b.owners != nullptr &&
             *a.owners == *b.owners));
  }
};

/// BLOCK: contiguous even partition.
[[nodiscard]] DimDist block();
/// BLOCK(M): contiguous blocks of explicit width M (M >= 1).
[[nodiscard]] DimDist block_width(Index m);
/// CYCLIC(k): round-robin blocks of length k (k >= 1).
[[nodiscard]] DimDist cyclic(Index k);
/// ":": dimension not distributed.
[[nodiscard]] DimDist col();
/// S_BLOCK(sizes): general block with explicit per-processor sizes.
[[nodiscard]] DimDist s_block(std::vector<Index> sizes);
/// B_BLOCK(bounds): general block with cumulative upper bounds.
[[nodiscard]] DimDist b_block(std::vector<Index> bounds);
/// INDIRECT(owners): user-defined mapping array (hashed once, shared
/// thereafter).
[[nodiscard]] DimDist indirect(std::vector<int> owners);
/// INDIRECT over an existing shared table: reusing a table across
/// DISTRIBUTE statements makes repeated flips O(1) in the table size.
[[nodiscard]] DimDist indirect(IndirectTablePtr table);

/// Distribution of a whole array: one DimDist per dimension.
class DistributionType {
 public:
  DistributionType() = default;
  DistributionType(std::initializer_list<DimDist> dims) : dims_(dims) {}
  explicit DistributionType(std::vector<DimDist> dims)
      : dims_(std::move(dims)) {}

  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const DimDist& dim(int d) const {
    if (d < 0 || d >= rank()) {
      throw std::out_of_range("DistributionType::dim");
    }
    return dims_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] const std::vector<DimDist>& dims() const noexcept {
    return dims_;
  }

  /// "(BLOCK, CYCLIC(2))" style rendering.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DistributionType&,
                         const DistributionType&) = default;

 private:
  std::vector<DimDist> dims_;
};

}  // namespace vf::dist
