// Index spaces of distributed arrays (paper Section 2.1): global index
// ranges, small fixed-capacity index tuples, and rectangular index domains
// with their column-major linearization.  These are the value types the
// whole runtime traffics in, so they are kept trivially copyable and
// allocation-free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace vf::dist {

/// Global (and local) index type.  Signed so that halo coordinates below a
/// segment's lower bound stay representable.
using Index = std::int64_t;

/// Maximum array rank supported by the runtime descriptors.
inline constexpr int kMaxRank = 4;

/// Closed interval [lo, hi] of global indices; empty when hi < lo.
struct Range {
  Index lo = 1;
  Index hi = 0;

  constexpr Range() = default;
  constexpr Range(Index l, Index h) : lo(l), hi(h) {}

  /// The 1-based range of a Fortran-style extent: 1..n.
  [[nodiscard]] static constexpr Range of_extent(Index n) { return {1, n}; }

  [[nodiscard]] constexpr Index size() const noexcept {
    return hi < lo ? 0 : hi - lo + 1;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return hi < lo; }
  [[nodiscard]] constexpr bool contains(Index i) const noexcept {
    return i >= lo && i <= hi;
  }
  [[nodiscard]] constexpr Range intersect(const Range& o) const noexcept {
    return {lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
  }

  friend constexpr bool operator==(const Range&, const Range&) = default;
};

/// Fixed-capacity tuple of indices (an index point, per-dimension counts,
/// strides, ...).  Capacity is kMaxRank; exceeding it throws length_error.
class IndexVec {
 public:
  IndexVec() = default;
  IndexVec(std::initializer_list<Index> xs) {
    if (xs.size() > static_cast<std::size_t>(kMaxRank)) {
      throw std::length_error("IndexVec: more than kMaxRank components");
    }
    for (Index x : xs) v_[n_++] = x;
  }

  [[nodiscard]] static IndexVec filled(int n, Index value) {
    if (n < 0 || n > kMaxRank) {
      throw std::length_error("IndexVec::filled: bad size");
    }
    IndexVec v;
    v.n_ = n;
    for (int d = 0; d < n; ++d) v.v_[static_cast<std::size_t>(d)] = value;
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(n_);
  }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] Index& operator[](int d) noexcept {
    return v_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] Index operator[](int d) const noexcept {
    return v_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] Index at(std::size_t d) const {
    if (d >= size()) throw std::out_of_range("IndexVec::at");
    return v_[d];
  }

  void push_back(Index x) {
    if (n_ >= kMaxRank) {
      throw std::length_error("IndexVec: capacity kMaxRank exceeded");
    }
    v_[static_cast<std::size_t>(n_++)] = x;
  }

  [[nodiscard]] const Index* begin() const noexcept { return v_.data(); }
  [[nodiscard]] const Index* end() const noexcept {
    return v_.data() + n_;
  }
  [[nodiscard]] Index* begin() noexcept { return v_.data(); }
  [[nodiscard]] Index* end() noexcept { return v_.data() + n_; }

  friend bool operator==(const IndexVec& a, const IndexVec& b) noexcept {
    if (a.n_ != b.n_) return false;
    for (int d = 0; d < a.n_; ++d) {
      if (a.v_[static_cast<std::size_t>(d)] !=
          b.v_[static_cast<std::size_t>(d)]) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "(";
    for (int d = 0; d < n_; ++d) {
      if (d) s += ", ";
      s += std::to_string(v_[static_cast<std::size_t>(d)]);
    }
    s += ")";
    return s;
  }

 private:
  std::array<Index, kMaxRank> v_{};
  int n_ = 0;
};

/// Rectangular index domain: the cartesian product of per-dimension ranges
/// (paper: I^A).  Linearization is column-major (first dimension fastest),
/// matching the Fortran storage order the paper assumes.
class IndexDomain {
 public:
  IndexDomain() = default;
  IndexDomain(std::initializer_list<Range> rs) {
    if (rs.size() > static_cast<std::size_t>(kMaxRank)) {
      throw std::length_error("IndexDomain: rank exceeds kMaxRank");
    }
    for (const Range& r : rs) dims_[static_cast<std::size_t>(rank_++)] = r;
  }

  /// 1-based domain of the given extents: (1:n0, 1:n1, ...).
  [[nodiscard]] static IndexDomain of_extents(std::initializer_list<Index> ns) {
    IndexDomain d;
    if (ns.size() > static_cast<std::size_t>(kMaxRank)) {
      throw std::length_error("IndexDomain: rank exceeds kMaxRank");
    }
    for (Index n : ns) {
      d.dims_[static_cast<std::size_t>(d.rank_++)] = Range::of_extent(n);
    }
    return d;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }

  [[nodiscard]] const Range& dim(int d) const {
    if (d < 0 || d >= rank_) throw std::out_of_range("IndexDomain::dim");
    return dims_[static_cast<std::size_t>(d)];
  }

  /// Number of index points (0 for the rank-0 domain).
  [[nodiscard]] Index size() const noexcept {
    if (rank_ == 0) return 0;
    Index n = 1;
    for (int d = 0; d < rank_; ++d) {
      n *= dims_[static_cast<std::size_t>(d)].size();
    }
    return n;
  }

  [[nodiscard]] bool contains(const IndexVec& i) const noexcept {
    if (static_cast<int>(i.size()) != rank_) return false;
    for (int d = 0; d < rank_; ++d) {
      if (!dims_[static_cast<std::size_t>(d)].contains(i[d])) return false;
    }
    return true;
  }

  /// Column-major linear offset (0-based) of an index point.
  [[nodiscard]] Index linearize(const IndexVec& i) const {
    if (!contains(i)) {
      throw std::out_of_range("IndexDomain::linearize: point outside domain " +
                              i.to_string());
    }
    Index off = 0;
    Index stride = 1;
    for (int d = 0; d < rank_; ++d) {
      const Range& r = dims_[static_cast<std::size_t>(d)];
      off += (i[d] - r.lo) * stride;
      stride *= r.size();
    }
    return off;
  }

  /// Inverse of linearize.
  [[nodiscard]] IndexVec delinearize(Index off) const {
    if (off < 0 || off >= size()) {
      throw std::out_of_range("IndexDomain::delinearize: offset outside");
    }
    IndexVec i;
    for (int d = 0; d < rank_; ++d) {
      const Range& r = dims_[static_cast<std::size_t>(d)];
      i.push_back(r.lo + off % r.size());
      off /= r.size();
    }
    return i;
  }

  friend bool operator==(const IndexDomain& a, const IndexDomain& b) noexcept {
    if (a.rank_ != b.rank_) return false;
    for (int d = 0; d < a.rank_; ++d) {
      if (a.dims_[static_cast<std::size_t>(d)] !=
          b.dims_[static_cast<std::size_t>(d)]) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<Range, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace vf::dist
