// The word-wise FNV-1a primitive every structural hash in the tree is
// built from (type hashes, distribution fingerprints, registry bucket
// keys, interned pattern keys).  One definition keeps all those keyspaces
// in agreement: Distribution::fingerprint_of and DistRegistry lookups,
// for instance, must hash identically or interning would silently miss.
#pragma once

#include <cstdint>

namespace vf::dist {

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// One xor-multiply per 64-bit value (not per byte: fingerprints fold in
/// whole owner-table hashes and size vectors, so per-byte mixing would
/// cost 8x the multiplies for no benefit).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h,
                                            std::uint64_t x) noexcept {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  return (h ^ x) * kPrime;
}

}  // namespace vf::dist
