// Shared application kernels for the examples and benches: the sequential
// TRIDIAG routine of Figure 1 and the PIC balance helpers of Figure 2.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "vf/dist/dist_type.hpp"

namespace vf::apps {

/// The sequential routine TRIDIAG of Figure 1: "given a right hand side
/// [it] overwrites it with the solution of a constant coefficient
/// tridiagonal system" (Thomas algorithm for a*x[k-1] + b*x[k] + a*x[k+1]
/// = rhs[k]).
inline void tridiag(std::span<double> rhs, double a = -1.0, double b = 4.0) {
  const std::size_t n = rhs.size();
  if (n == 0) return;
  std::vector<double> c(n);
  c[0] = a / b;
  rhs[0] /= b;
  for (std::size_t k = 1; k < n; ++k) {
    const double m = b - a * c[k - 1];
    c[k] = a / m;
    rhs[k] = (rhs[k] - a * rhs[k - 1]) / m;
  }
  for (std::size_t k = n - 1; k-- > 0;) {
    rhs[k] -= c[k] * rhs[k + 1];
  }
}

/// The procedure `balance` of Figure 2: "Using the number of particles in
/// each cell, [it] computes the block sizes to be assigned to each
/// processor" -- a prefix-sum partition targeting equal particle counts.
/// Returns the BOUNDS array (upper cell index per processor, 1-based,
/// suitable for B_BLOCK).
inline std::vector<dist::Index> balance(std::span<const std::int64_t> per_cell,
                                        int nprocs) {
  const auto ncell = static_cast<dist::Index>(per_cell.size());
  const std::int64_t total =
      std::accumulate(per_cell.begin(), per_cell.end(), std::int64_t{0});
  std::vector<dist::Index> bounds;
  bounds.reserve(static_cast<std::size_t>(nprocs));
  std::int64_t seen = 0;
  dist::Index cell = 0;
  for (int p = 0; p < nprocs; ++p) {
    const std::int64_t target = total * (p + 1) / nprocs;
    while (cell < ncell && seen < target) {
      seen += per_cell[static_cast<std::size_t>(cell)];
      ++cell;
    }
    bounds.push_back(p + 1 == nprocs ? ncell : cell);
  }
  return bounds;
}

/// Load imbalance of a per-processor work vector: max / mean (1.0 =
/// perfectly balanced).
inline double imbalance(std::span<const std::int64_t> work) {
  if (work.empty()) return 1.0;
  std::int64_t mx = 0, sum = 0;
  for (auto w : work) {
    mx = std::max(mx, w);
    sum += w;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(work.size());
  return static_cast<double>(mx) / mean;
}

}  // namespace vf::apps
