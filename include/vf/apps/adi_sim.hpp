// The ADI application of Figure 1, runnable under three data-layout
// strategies (paper Section 4):
//
//   DynamicRedistribution -- the Figure 1 program: V is DYNAMIC; an
//     explicit DISTRIBUTE between the x- and y-sweeps makes both sweeps
//     fully local ("all the communication is confined to the
//     redistribution operation").
//
//   StaticGatherLines -- V stays (:, BLOCK); the y-sweep operates on
//     distributed lines, so each line is gathered to a responsible
//     processor, solved, and scattered back (the communication the
//     compiler would have to embed in the generated code).
//
//   StaticTwoCopies -- the storage-wasting alternative the paper
//     mentions: a second array with the transposed distribution and array
//     assignment between the phases ("This approach, clearly, wastes
//     storage space").
#pragma once

#include <cstdint>

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

enum class AdiStrategy {
  DynamicRedistribution,
  StaticGatherLines,
  StaticTwoCopies,
};

[[nodiscard]] const char* to_string(AdiStrategy s);

struct AdiConfig {
  dist::Index nx = 64;
  dist::Index ny = 64;
  int iterations = 4;
  /// Opt-in neighbour-coupled right-hand side: the RHS of each iteration
  /// reads the previous iterate's dimension-1 neighbours of V, which
  /// needs a (0,1)/(0,1) overlap area and a halo exchange before every
  /// RHS fill.  Off by default -- the classic index-only RHS and its
  /// checksums are unchanged.
  bool rhs_halo = false;
  /// With rhs_halo: run that halo exchange split-phase, computing
  /// interior RHS values while boundary planes are in flight.  The RHS
  /// is computed into scratch and written back afterwards, so the result
  /// is bitwise-identical to the blocking variant regardless of
  /// traversal order.
  bool split_phase = false;
};

struct AdiResult {
  double checksum = 0.0;  ///< sum of V after the last iteration
  /// Machine-wide halo-plan cache traffic (summed over ranks).  ADI
  /// itself needs no ghost regions, so these stay 0 unless a strategy
  /// grows stencil phases -- emitted alongside the smoothing counters so
  /// BENCH json diffs cover every halo consumer.
  std::uint64_t halo_plan_hits = 0;
  std::uint64_t halo_plan_misses = 0;
};

/// Runs the ADI iteration on the calling SPMD context (collective).
AdiResult run_adi(msg::Context& ctx, const AdiConfig& cfg, AdiStrategy strat);

}  // namespace vf::apps
