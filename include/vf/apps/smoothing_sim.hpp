// The grid-smoothing scenario of Section 4: "in a grid based computation,
// such as smoothing, the value at a grid point is based on its 4 nearest
// neighbors.  A column distribution of the N x N grid will give rise to 2
// messages per processor, each of size N, per computation step.  On the
// other hand, if the grid is distributed by blocks in two dimensions
// across a p^2 processor array, then each computation step requires 4
// messages of size N/p each ... the ratio N/p will determine the most
// appropriate distribution."
//
// run_smoothing executes 5-point Jacobi smoothing steps under either
// layout using overlap areas; the caller reads message counts and volumes
// from the Machine's statistics.  choose_layout implements the runtime
// decision rule the paper proposes (using the machine's alpha/beta and
// $NP).
#pragma once

#include <cstdint>

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

enum class SmoothLayout {
  Columns,  ///< (:, BLOCK) on a processor line
  Grid2D,   ///< (BLOCK, BLOCK) on a sqrt(P) x sqrt(P) processor grid
};

[[nodiscard]] const char* to_string(SmoothLayout l);

/// Stencil shape of one smoothing step.
enum class SmoothStencil {
  FivePoint,  ///< 4 nearest neighbours (faces only)
  NinePoint,  ///< + the 4 diagonal neighbours: needs corner exchange on
              ///< a 2-D block distribution
};

[[nodiscard]] const char* to_string(SmoothStencil s);

struct SmoothConfig {
  dist::Index n = 256;  ///< grid is n x n
  int steps = 8;
  SmoothStencil stencil = SmoothStencil::FivePoint;
  /// Overlap communication with computation: each step begins the halo
  /// exchange, updates the interior points (which read no ghosts) while
  /// boundary values are in flight, then completes the exchange and
  /// updates the boundary points.  Bitwise-identical to the blocking
  /// schedule -- every point computes from the same inputs.
  bool split_phase = false;
};

struct SmoothResult {
  double checksum = 0.0;
  /// Machine-wide halo-plan cache traffic (summed over ranks): with the
  /// run-based plan cache, repeat steps under an unchanged distribution
  /// are hits -- one plan build per (rank, distribution, spec).
  std::uint64_t halo_plan_hits = 0;
  std::uint64_t halo_plan_misses = 0;
};

/// One 9-point combination with weights 4:2:1 (sum 16) in a fixed
/// evaluation order, shared by the distributed kernel and sequential
/// references so results compare bitwise.  (w/e are the +-1 neighbours in
/// dimension 0, so/no in dimension 1, the rest the diagonals.)
[[nodiscard]] inline double smooth9_combine(double c, double w, double e,
                                            double so, double no, double wso,
                                            double wno, double eso,
                                            double eno) {
  return (4.0 * c + 2.0 * (w + e + so + no) + (wso + wno + eso + eno)) / 16.0;
}

/// Runs the smoothing steps on the calling SPMD context (collective).
/// Grid2D requires nprocs to be a perfect square.
SmoothResult run_smoothing(msg::Context& ctx, const SmoothConfig& cfg,
                           SmoothLayout layout);

/// Per-step modeled communication cost of a layout for an n x n grid on p
/// processors under the given cost model (the paper's analytic rule):
/// columns: 2 messages of n elements; 2-D blocks: 4 messages of n/sqrt(p)
/// elements (per processor).
[[nodiscard]] double modeled_step_cost_us(SmoothLayout layout, dist::Index n,
                                          int nprocs,
                                          const msg::CostModel& cm,
                                          std::size_t elem_size);

/// The runtime distribution choice of Section 4: picks the layout with the
/// lower modeled per-step cost.
[[nodiscard]] SmoothLayout choose_layout(dist::Index n, int nprocs,
                                         const msg::CostModel& cm,
                                         std::size_t elem_size);

}  // namespace vf::apps
