// The grid-smoothing scenario of Section 4: "in a grid based computation,
// such as smoothing, the value at a grid point is based on its 4 nearest
// neighbors.  A column distribution of the N x N grid will give rise to 2
// messages per processor, each of size N, per computation step.  On the
// other hand, if the grid is distributed by blocks in two dimensions
// across a p^2 processor array, then each computation step requires 4
// messages of size N/p each ... the ratio N/p will determine the most
// appropriate distribution."
//
// run_smoothing executes 5-point Jacobi smoothing steps under either
// layout using overlap areas; the caller reads message counts and volumes
// from the Machine's statistics.  choose_layout implements the runtime
// decision rule the paper proposes (using the machine's alpha/beta and
// $NP).
#pragma once

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

enum class SmoothLayout {
  Columns,  ///< (:, BLOCK) on a processor line
  Grid2D,   ///< (BLOCK, BLOCK) on a sqrt(P) x sqrt(P) processor grid
};

[[nodiscard]] const char* to_string(SmoothLayout l);

struct SmoothConfig {
  dist::Index n = 256;  ///< grid is n x n
  int steps = 8;
};

struct SmoothResult {
  double checksum = 0.0;
};

/// Runs the smoothing steps on the calling SPMD context (collective).
/// Grid2D requires nprocs to be a perfect square.
SmoothResult run_smoothing(msg::Context& ctx, const SmoothConfig& cfg,
                           SmoothLayout layout);

/// Per-step modeled communication cost of a layout for an n x n grid on p
/// processors under the given cost model (the paper's analytic rule):
/// columns: 2 messages of n elements; 2-D blocks: 4 messages of n/sqrt(p)
/// elements (per processor).
[[nodiscard]] double modeled_step_cost_us(SmoothLayout layout, dist::Index n,
                                          int nprocs,
                                          const msg::CostModel& cm,
                                          std::size_t elem_size);

/// The runtime distribution choice of Section 4: picks the layout with the
/// lower modeled per-step cost.
[[nodiscard]] SmoothLayout choose_layout(dist::Index n, int nprocs,
                                         const msg::CostModel& cm,
                                         std::size_t elem_size);

}  // namespace vf::apps
