// The adaptive-refinement-front scenario the asymmetric halo subsystem
// exists for: a 2-D field on a (BLOCK, BLOCK) grid smoothed with a stencil
// whose radius in dimension 0 is locally refined -- wide near a front
// sweeping across the domain, narrow everywhere else.  Each rank therefore
// needs ghost planes exactly as wide as the largest radius its own cells
// read with, which differs per rank AND per side of its segment: the spec
// is per-rank asymmetric, re-declared (set_overlap) every time the front
// moves, reconciled by the plan-time spec exchange and exchanged through a
// family-keyed cached HaloPlan.
//
// The update rule is a pure function of the GLOBAL index and the step, so
// a sequential reference evaluates the identical arithmetic in the
// identical order and results compare bitwise -- the same proof obligation
// smoothing_sim discharges for the uniform 9-point stencil.
#pragma once

#include <cstdint>
#include <vector>

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

struct AmrFrontConfig {
  dist::Index n = 64;  ///< grid is n x n
  int steps = 6;
  dist::Index base_width = 1;   ///< stencil radius away from the front
  dist::Index front_width = 3;  ///< stencil radius near the front
  dist::Index front_halfspan = 2;  ///< |i - front| <= halfspan is "near"
  dist::Index front0 = 4;          ///< front column at step 0
  dist::Index front_step = 3;      ///< columns the front advances per step
  /// Overlap the halo exchange with the interior update (split-phase):
  /// the destination traversal is partitioned by the largest stencil
  /// radius any of the rank's own cells reads with (front_width when the
  /// front zone touches the segment) -- wider than the declared ghost
  /// widths, whose max(radius - edge distance) shape under-covers a
  /// refined cell sitting inside the segment -- so every in-flight read
  /// stays owned and only true boundary cells wait for
  /// end_exchange_overlap.  Bitwise-identical to the blocking schedule.
  bool split_phase = false;
};

struct AmrFrontResult {
  double checksum = 0.0;  ///< sum of the final grid in linearized order
  /// Machine-wide counters (summed over ranks): spec-exchange collectives
  /// performed (one per rank per set_overlap actually used), and
  /// halo-plan cache traffic.  A stationary front re-uses one family and
  /// turns every exchange after the first into a plan hit.
  std::uint64_t spec_exchanges = 0;
  std::uint64_t halo_plan_hits = 0;
  std::uint64_t halo_plan_misses = 0;
};

/// Stencil radius (dimension 0) at global column i with the front at f.
[[nodiscard]] constexpr dist::Index amr_radius(dist::Index i, dist::Index f,
                                               dist::Index halfspan,
                                               dist::Index base,
                                               dist::Index wide) {
  const dist::Index d = i > f ? i - f : f - i;
  return d <= halfspan ? wide : base;
}

/// One point update: the radius-r window along dimension 0 plus the two
/// dimension-1 neighbours, averaged; out-of-domain reads fall back to the
/// centre value.  `rd(x, y)` supplies in-domain values; evaluation order
/// is fixed (k ascending, then j-1, then j+1) so the distributed kernel
/// and sequential references agree bitwise.
template <typename Read>
[[nodiscard]] double amr_point(dist::Index i, dist::Index j, dist::Index n,
                               dist::Index r, Read&& rd) {
  const double c = rd(i, j);
  double acc = 0.0;
  for (dist::Index k = -r; k <= r; ++k) {
    const dist::Index x = i + k;
    acc += (x < 1 || x > n) ? c : rd(x, j);
  }
  acc += j - 1 < 1 ? c : rd(i, j - 1);
  acc += j + 1 > n ? c : rd(i, j + 1);
  return acc / static_cast<double>(2 * r + 3);
}

/// Deterministic initial value of cell (i, j).
[[nodiscard]] double amr_seed(dist::Index i, dist::Index j, dist::Index n);

/// Runs the refinement-front sweep on the calling SPMD context
/// (collective).  nprocs must be a perfect square q*q, and every block
/// segment must be at least front_width cells wide (the asymmetric spec
/// contract: a rank may not request a ghost wider than its neighbour's
/// segment).
[[nodiscard]] AmrFrontResult run_amr_front(msg::Context& ctx,
                                           const AmrFrontConfig& cfg);

/// The sequential reference: the full final grid in column-major
/// linearized order (and its checksum matches run_amr_front bitwise).
[[nodiscard]] std::vector<double> amr_front_reference(
    const AmrFrontConfig& cfg);

/// Checksum of a full grid in linearized order (shared by both sides).
[[nodiscard]] double amr_checksum(const std::vector<double>& full);

}  // namespace vf::apps
