// Long-run lifecycle soak: the amr_front refinement-front scenario driven
// for tens of thousands of steps with BOTH churn sources the dynamic
// model allows -- the sweeping front re-interning a halo spec + family
// per distinct position, and a periodic DISTRIBUTE to a step-jittered
// S_BLOCK split re-interning descriptors and redistribution plans.
//
// Without the lifecycle layer (Env::sweep + byte-budgeted caches) every
// intern and derived plan is immortal and registry resident_bytes grows
// with the number of DISTINCT (front, split) combinations seen; with it,
// residency plateaus at roughly (live handle chains + cache budgets) no
// matter how long the run.  The soak measures exactly that: a sampled
// resident-bytes series, its second-half slope, and the sweep/eviction
// counters, alongside a checksum proven against a sequential reference
// (reclamation must never change values).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

struct SoakConfig {
  dist::Index n = 32;  ///< grid is n x n
  int steps = 2000;
  /// Env::sweep() cadence in steps (0 = never -- the leak control).
  int sweep_every = 64;
  /// Resident-bytes sampling cadence in steps.
  int sample_every = 100;
  /// DISTRIBUTE cadence (0 = never): each one targets a step-jittered
  /// S_BLOCK dimension-0 split, so descriptors and plans churn too.
  int redist_every = 1;
  // Refinement front (see amr_front.hpp); the front wraps around the
  // domain so the churn never stops.
  dist::Index base_width = 1;
  dist::Index front_width = 3;
  dist::Index front_halfspan = 2;
  dist::Index front0 = 4;
  dist::Index front_step = 3;
  /// Byte ceilings armed on the Env halo-plan cache and each array's
  /// redistribution plan cache (0 = leave defaults).
  std::size_t halo_budget_bytes = 0;
  std::size_t plan_budget_bytes = 0;
  std::uint64_t seed = 0x5eed5eedULL;  ///< split-jitter stream
};

/// One resident-bytes sample of the calling rank.
struct SoakSample {
  int step = 0;
  std::uint64_t registry_bytes = 0;  ///< DistRegistry resident_bytes
  std::uint64_t cache_bytes = 0;     ///< halo-plan + redist-plan caches
};

struct SoakResult {
  double checksum = 0.0;  ///< bitwise vs soak_reference
  /// This rank's sampled residency series (registry + caches).
  std::vector<SoakSample> samples;
  std::uint64_t peak_resident_bytes = 0;   ///< max over samples, this rank
  std::uint64_t final_resident_bytes = 0;  ///< last sample, this rank
  /// Least-squares slope (bytes/step) over the second half of the
  /// series: ~0 once the lifecycle layer holds the plateau.
  double bytes_per_step_slope = 0.0;
  std::uint64_t sweeps = 0;           ///< Env::sweep calls, this rank
  std::uint64_t registry_pinned = 0;  ///< last sweep's kept count, this rank
  // Machine-wide sums (allreduced):
  std::uint64_t registry_swept = 0;
  std::uint64_t halo_plans_dropped = 0;  ///< dropped by Env::sweep
  std::uint64_t halo_evictions = 0;      ///< halo cache budget evictions
  std::uint64_t plan_evictions = 0;      ///< redist plan budget evictions
  std::uint64_t halo_plan_hits = 0;
  std::uint64_t halo_plan_misses = 0;
};

/// Dimension-0 S_BLOCK split sizes for step `step`: an even q-way split
/// of n with one boundary shifted by a seeded LCG draw, every segment
/// kept at least `min_seg` wide (the asymmetric-spec exactness
/// contract).  Deterministic and rank-independent, so all ranks of a
/// step DISTRIBUTE to the same descriptor.
[[nodiscard]] std::vector<dist::Index> soak_split_sizes(dist::Index n, int q,
                                                        dist::Index min_seg,
                                                        std::uint64_t seed,
                                                        int step);

/// Runs the soak on the calling SPMD context (collective).  nprocs must
/// be a perfect square q*q with even n/q segments at least front_width
/// wide.
[[nodiscard]] SoakResult run_soak(msg::Context& ctx, const SoakConfig& cfg);

/// Sequential reference of the same update sequence (values are
/// independent of distribution and sweeps by construction): the full
/// final grid in linearized order.
[[nodiscard]] std::vector<double> soak_reference(const SoakConfig& cfg);

}  // namespace vf::apps
