// The particle-in-cell application of Figure 2 (paper Section 4).
//
//   PARAMETER (NCELL = ..., NPART = ...)
//   INTEGER BOUNDS($NP)
//   REAL FIELD(NCELL, NPART, ...) DYNAMIC, DIST(BLOCK, :, :)
//   ...
//   CALL balance(BOUNDS, FIELD, ...)
//   DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)
//   DO k = 1, MAX_TIME
//     CALL update_field(...)
//     CALL update_part(...)
//     IF (MOD(k,10) .EQ. 0 .AND. rebalance()) THEN
//       CALL balance(BOUNDS, FIELD, ...)
//       DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)
//     ENDIF
//   ENDDO
//
// The physics is a synthetic 1-D substitute (see DESIGN.md section 5): a
// drifting, self-focusing particle cloud whose motion produces exactly the
// load-imbalance dynamics that motivate general block distributions.
// FIELD holds particle positions (cell-major, NPART slots per cell); the
// per-cell particle counts live in a secondary array connected to FIELD by
// alignment, so DISTRIBUTE moves both consistently.
#pragma once

#include <cstdint>
#include <vector>

#include "vf/dist/index.hpp"
#include "vf/msg/context.hpp"

namespace vf::apps {

/// Skew policy applied to FIELD's dynamic redistribution (mirrors
/// rt::DistArrayBase::SkewPolicy without pulling the rt headers in).
enum class PicSkewMode { Off, Auto, Force };

struct PicConfig {
  dist::Index ncell = 256;
  dist::Index npart_max = 512;   ///< NPART: max particles per cell
  int particles = 20000;
  int steps = 100;
  /// Rebalance check period (Figure 2 uses 10); 0 disables rebalancing
  /// entirely (the static BLOCK baseline).
  int rebalance_period = 10;
  /// rebalance() predicate: redistribute when max/mean load exceeds this.
  double rebalance_threshold = 1.10;
  double drift = 0.8;       ///< cells per step the cloud moves
  double focus = 0.25;      ///< self-focusing strength (clustering)
  std::uint64_t seed = 42;  ///< initial cloud placement
  /// Zipf exponent of the initial particle cloud: 0 keeps the Gaussian
  /// cloud of Figure 2; > 0 clusters particles over cells with
  /// probability proportional to cell^-s (heavy-key rebalance traffic --
  /// the skewed workload of the PRPD plans).
  double zipf_s = 0.0;
  /// Skew policy for FIELD's DISTRIBUTE statements.
  PicSkewMode skew = PicSkewMode::Off;
  /// Ownership max/mean above which PicSkewMode::Auto hybridizes.
  double skew_threshold = 4.0;
};

struct PicStepStats {
  double imbalance = 1.0;          ///< max/mean particles per processor
  std::int64_t moved = 0;          ///< particles that changed processor
  bool rebalanced = false;
};

struct PicResult {
  std::vector<PicStepStats> steps;
  double mean_imbalance = 1.0;
  double max_imbalance = 1.0;
  int rebalances = 0;
  std::int64_t dropped = 0;  ///< particles lost to NPART overflow
  /// Modeled computation makespan: sum over steps of the slowest rank's
  /// particle work (arbitrary per-particle unit).
  double makespan_units = 0.0;
  std::int64_t final_particles = 0;
  /// Machine-wide exchange-scratch traffic of the simulation's
  /// redistribution replays (FIELD + COUNT arrays, summed over ranks):
  /// replays routed through the facility and heap allocations it
  /// performed.  A healthy rebalance loop grows the scratch only while
  /// the partition envelope is still widening.
  std::uint64_t redist_scratch_prepares = 0;
  std::uint64_t redist_scratch_allocs = 0;
  /// Skew-aware redistribution counters of FIELD (SPMD-uniform): detection
  /// passes run, flips whose target was hybridized, and the ownership
  /// max/mean of the last inspected target mapping.
  std::uint64_t skew_checks = 0;
  std::uint64_t hybrid_flips = 0;
  double last_target_skew = 1.0;
};

/// Runs the PIC simulation on the calling SPMD context (collective).
PicResult run_pic(msg::Context& ctx, const PicConfig& cfg);

}  // namespace vf::apps
