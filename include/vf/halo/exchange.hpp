// The plan-time halo SPEC EXCHANGE: the collective that lifts the paper's
// SPMD-uniform OVERLAP declaration (Section 3.1) to per-rank asymmetric
// ghost widths -- the shape adaptive refinement fronts need.
//
// Protocol (one collective, riding the dissemination/Bruck allgather of
// msg::Context::allgather_vec):
//
//   1. every rank flattens its locally declared HaloSpec into a small
//      Index vector  [rank, corners, lo_0..lo_{r-1}, hi_0..hi_{r-1}];
//   2. one allgather_vec ships all P width vectors to all ranks in
//      ceil(log2 P) rounds;
//   3. each rank re-interns every peer's spec in its own DistRegistry and
//      interns the resulting per-rank HaloFamily, so the family handle's
//      uid is a dense local id the HaloPlanCache packs into its key.
//
// Reconciliation is where uniformity detects itself: if all P interned
// handles are identical the family reports uniform() and the caller keeps
// the uniform plan path and the pre-family (DistHandle uid, HaloSpec uid)
// cache key.  Arrays whose spec is DECLARED uniform (the SPMD default)
// never call this at all -- the zero-extra-collective fast path; the
// spec_exchanges() counter exists so tests and benchmarks can assert
// exactly that.
//
// The exchange is independent of the array's current distribution: a
// DISTRIBUTE invalidates halo plans (the descriptor uid changes) but not
// the reconciled family; only a new per-rank spec declaration
// (DistArray::set_overlap, collective) forces a re-exchange.
#pragma once

#include <cstdint>

#include "vf/dist/registry.hpp"
#include "vf/halo/spec.hpp"
#include "vf/msg/context.hpp"

namespace vf::halo {

/// Process-wide count of spec-exchange collectives performed (monotonic,
/// summed over all ranks' calls).  Uniform-spec arrays must hold this flat
/// -- the no-extra-collective fast path the tests gate on.
[[nodiscard]] std::uint64_t spec_exchanges() noexcept;

/// Reconciles the per-rank overlap declarations of one array (collective:
/// every rank passes its own interned local spec).  Returns the interned
/// family; family.handle_of(ctx.rank()) equals `local` re-interned.
[[nodiscard]] FamilyHandle exchange_specs(msg::Context& ctx,
                                          dist::DistRegistry& reg,
                                          const HaloHandle& local);

}  // namespace vf::halo
