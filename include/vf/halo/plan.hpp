// Run-based halo (overlap-area) exchange plans -- the ghost-region
// counterpart of rt::RedistPlan.
//
// The overlap exchange of a distribution + halo spec pair is deterministic
// per rank: every ghost region is filled by exactly one neighbouring rank
// (the nearest coordinate owning planes in that direction, clipped to what
// it owns), and both sides enumerate the region in the same local
// column-major order, so only values travel.  A HaloPlan is the inspector
// product of that enumeration:
//
//   * pack_runs:   maximal innermost-dimension contiguous runs of local
//                  storage whose elements fill one neighbour's ghost
//                  region -- one memcpy per run into that peer's buffer;
//   * send_counts: exact per-peer element counts, so buffers are sized
//                  once with no counting pass at exchange time;
//   * unpack_runs / recv_counts: the mirror image into this rank's ghost
//                  storage.
//
// With spec.corners() set, diagonal directions (more than one non-zero
// per-dimension offset) are exchanged in the same single alltoallv --
// the corner traffic a 9-point stencil needs and the face-only routine
// formerly buried in rt::array_base could not produce.
//
// Plans depend only on (Distribution, HaloSpec, rank, nprocs), so they are
// cached per Env in a HaloPlanCache keyed on the flat
// (DistHandle uid, HaloSpec uid) integer pair and shared by every array
// with that descriptor pair (the smoothing ping-pong arrays A and B hit
// the same plan).  Plans invalidate naturally on DISTRIBUTE: the
// descriptor handle changes, so the key changes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vf/core/cache_budget.hpp"
#include "vf/dist/distribution.hpp"
#include "vf/dist/registry.hpp"
#include "vf/halo/spec.hpp"

namespace vf::halo {

struct HaloPlan {
  /// One contiguous span of local storage exchanged with one peer.
  struct Run {
    std::size_t offset;  ///< element offset into local (ghost-padded) storage
    std::size_t length;  ///< run length in elements
    int peer;            ///< destination (pack) / source (unpack) rank
  };

  /// One contiguous block of unpack_runs sourced from one peer: entries
  /// [begin, end) of unpack_runs all carry .peer == peer, in the
  /// enumeration order the peer packs.  Split-phase consumers use this to
  /// scatter ONE arriving payload without scanning the whole run list
  /// (the zero-copy transport hands payloads over peer by peer).
  struct PeerRuns {
    int peer;
    std::uint32_t begin;
    std::uint32_t end;
  };

  std::vector<Run> pack_runs;
  std::vector<std::uint64_t> send_counts;
  std::vector<Run> unpack_runs;
  std::vector<PeerRuns> unpack_peers;  ///< unpack_runs grouped by source
  std::vector<std::uint64_t> recv_counts;

  /// Declared ghost widths of this rank per side (zeros for non-members
  /// and empty specs): the interior margins of a split-phase exchange.
  /// Owned elements at least this far from every ghosted face cannot be
  /// read by any stencil the halo serves (reach <= declared width by
  /// contract), so they are safe to update while the exchange is in
  /// flight.  Declared -- not clipped -- widths: partial fill only ever
  /// shrinks what arrives, so these margins are conservative.
  dist::IndexVec interior_lo;
  dist::IndexVec interior_hi;

  /// Total elements this rank sends per exchange.
  [[nodiscard]] std::uint64_t sent_elems() const noexcept {
    std::uint64_t n = 0;
    for (std::uint64_t c : send_counts) n += c;
    return n;
  }

  /// Builds the plan for rank `me` of an `np`-rank machine under a
  /// uniform (SPMD-declared) spec.  Purely local: no communication.
  /// Ghosted dimensions must be contiguous.  Ghost widths wider than a
  /// neighbour's owned segment are clipped ("partial fill").
  [[nodiscard]] static HaloPlan build(const dist::Distribution& d,
                                      const HaloSpec& spec, int me, int np);

  /// Builds the plan for rank `me` under a reconciled per-rank spec
  /// family (halo/exchange.hpp): the receive side enumerates MY ghost
  /// regions from my own spec, the send side packs exactly what each
  /// neighbour's spec demands -- so a rank with an empty local spec still
  /// serves its wide-halo neighbours.  Purely local once the family is
  /// known (the spec exchange already ran).  A uniform family delegates to
  /// the uniform build above (including its partial-fill clipping); a
  /// genuinely asymmetric family is validated strictly first: every
  /// ghosted dimension must be contiguous for every member, and a rank
  /// requesting a ghost wider than its neighbour's owned segment is a
  /// std::invalid_argument naming the rank, dimension and widths
  /// (asymmetric widths are refinement-driven and exact by contract;
  /// silent clipping would hide a mis-sized front).
  [[nodiscard]] static HaloPlan build_family(const dist::Distribution& d,
                                             const HaloFamily& fam, int me,
                                             int np);

  /// Process-wide count of build() invocations (monotonic; the repeat-
  /// exchange tests assert the cache keeps this flat on the hot path).
  [[nodiscard]] static std::uint64_t builds() noexcept;

  /// Heap + inline bytes this plan holds (cache byte budgeting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return sizeof(HaloPlan) + pack_runs.capacity() * sizeof(Run) +
           unpack_runs.capacity() * sizeof(Run) +
           unpack_peers.capacity() * sizeof(PeerRuns) +
           (send_counts.capacity() + recv_counts.capacity()) *
               sizeof(std::uint64_t);
  }
};

/// Receiver-side filled ghost widths of one rank: how many ghost planes on
/// each side actually receive values during an exchange (clipped by the
/// neighbour's segment size; 0 where no neighbour exists).  PARTI
/// schedules use this to decide which overlap-area reads the halo already
/// serves.
struct HaloFill {
  bool member = false;   ///< rank owns part of the array
  bool corners = false;  ///< diagonal regions are filled too
  dist::IndexVec lo;     ///< filled low-side widths per dimension
  dist::IndexVec hi;     ///< filled high-side widths per dimension
};

[[nodiscard]] HaloFill filled_widths(const dist::Distribution& d,
                                     const HaloSpec& spec, int me);

/// Per-Env cache of HaloPlans keyed on the (DistHandle uid, HaloSpec uid)
/// pair.  Identity-keyed: a hit is one integer hash lookup with no
/// structural comparison or index-list rebuild.  Uninterned handles
/// (uid 0) are uncacheable and rebuild every time -- the benchmark cold
/// path.
///
/// Bounded: true-LRU within a byte budget (default 16 MiB) plus a
/// kCapacity entry-count backstop.  A hit moves the entry to the front
/// of the recency list; an insert evicts from the back until both limits
/// hold.  An evicted plan rebuilds transparently on next use.
class HaloPlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the cached plan for (d, h), building and caching it on a
  /// miss.
  [[nodiscard]] std::shared_ptr<const HaloPlan> lookup_or_build(
      const dist::DistHandle& d, const HaloHandle& h, int me, int np);

  /// Family-keyed lookup for asymmetric per-rank specs: the key packs the
  /// interned family uid (tagged so it can never collide with a spec uid)
  /// next to the distribution uid.  Callers divert uniform families to the
  /// uniform overload above, so an asymmetric declaration that reconciles
  /// to a uniform family hits the very same cache entry a uniform
  /// declaration would.
  [[nodiscard]] std::shared_ptr<const HaloPlan> lookup_or_build(
      const dist::DistHandle& d, const FamilyHandle& f, int me, int np);

  /// Disabling also drops cached plans (benchmarks measuring the cold
  /// plan-construction + exchange path).
  void set_enabled(bool on) {
    enabled_ = on;
    if (!on) clear();
  }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Drops every entry AND the hit/miss counters: stats describe the
  /// cache's contents, and a reader comparing ratios across a clear (or
  /// a set_enabled(false) cold path) must not see pre-clear traffic.
  void clear() {
    map_.clear();
    lru_.clear();
    budget_.reset();
    stats_ = Stats{};
  }

  /// Byte ceiling (default 16 MiB); shrinking below residency evicts
  /// immediately from the cold end.
  void set_max_bytes(std::size_t b);
  [[nodiscard]] std::size_t max_bytes() const noexcept {
    return budget_.max_bytes();
  }
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return budget_.resident_bytes();
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return budget_.evictions();
  }

  /// Env::sweep() hook: drops entries whose distribution uid is not in
  /// `live` (no registered array holds that descriptor any more, so the
  /// key can never be looked up again -- uids are never reused).  Not
  /// counted as evictions; returns the number dropped.
  std::size_t sweep(const std::vector<std::uint32_t>& live_dist_uids);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

 private:
  struct Entry {
    // The handles pin the interned descriptors (and therefore the uids
    // the key was built from) for the lifetime of the entry.  Exactly one
    // of halo/family is non-null.
    dist::DistHandle dist;
    HaloHandle halo;
    FamilyHandle family;
    std::shared_ptr<const HaloPlan> plan;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_
  };

  // Spec and family uids live in separate registry keyspaces, so the key
  // tags its low bit: uniform entries end in 0, family entries in 1.  A
  // uniform lookup therefore keys on the same (dist uid, spec uid) pair it
  // did before families existed.
  [[nodiscard]] static std::uint64_t key_of(const dist::DistHandle& d,
                                            const HaloHandle& h) noexcept {
    return (static_cast<std::uint64_t>(d.uid()) << 33) |
           (static_cast<std::uint64_t>(h.uid()) << 1);
  }
  [[nodiscard]] static std::uint64_t key_of(const dist::DistHandle& d,
                                            const FamilyHandle& f) noexcept {
    return (static_cast<std::uint64_t>(d.uid()) << 33) |
           (static_cast<std::uint64_t>(f.uid()) << 1) | 1u;
  }

  [[nodiscard]] std::shared_ptr<const HaloPlan> insert(std::uint64_t key,
                                                       Entry e);
  void drop(std::uint64_t key, bool pressure);
  void evict_lru() { drop(lru_.back(), /*pressure=*/true); }

  static constexpr std::size_t kCapacity = 16;
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{16} << 20;

  bool enabled_ = true;
  Stats stats_;
  core::CacheBudget budget_{kDefaultMaxBytes};
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< most recently used first
};

}  // namespace vf::halo
