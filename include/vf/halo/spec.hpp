// HaloSpec: the overlap (ghost) description of the paper's OVERLAP
// annotation (Section 3.1 "overlap areas") promoted to a first-class
// interned value, the way distributions already are.
//
// A HaloSpec records, per array dimension, the lower and upper ghost
// widths plus whether diagonal (corner) ghost regions are maintained --
// the difference between a 5-point and a 9-point stencil on a
// (BLOCK, BLOCK) grid.  Specs are interned through dist::DistRegistry
// alongside distributions, so spec equality is pointer identity and the
// (DistHandle uid, HaloSpec uid) pair is a flat integer key for the
// run-based HaloPlan cache (see halo/plan.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vf/dist/hash.hpp"
#include "vf/dist/index.hpp"

namespace vf::dist {
class DistRegistry;
}  // namespace vf::dist

namespace vf::halo {

/// Per-dimension ghost widths plus the corners flag.  Immutable after
/// construction; rank 0 means "no overlap areas at all".
class HaloSpec {
 public:
  HaloSpec() = default;

  /// lo[d] / hi[d] are the ghost plane counts below / above this rank's
  /// segment in dimension d; both vectors must have the same rank and
  /// non-negative entries.  `corners` requests diagonal ghost regions
  /// (every direction with more than one non-zero offset) in addition to
  /// the faces.
  HaloSpec(dist::IndexVec lo, dist::IndexVec hi, bool corners = false);

  /// The all-zero spec of the given rank (faces nor corners).
  [[nodiscard]] static HaloSpec none(int rank);

  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(lo_.size());
  }
  [[nodiscard]] dist::Index lo(int d) const noexcept { return lo_[d]; }
  [[nodiscard]] dist::Index hi(int d) const noexcept { return hi_[d]; }
  [[nodiscard]] const dist::IndexVec& lo_vec() const noexcept { return lo_; }
  [[nodiscard]] const dist::IndexVec& hi_vec() const noexcept { return hi_; }
  [[nodiscard]] bool corners() const noexcept { return corners_; }

  /// Whether every width is zero (no ghost storage, exchange is a no-op).
  [[nodiscard]] bool empty() const noexcept;

  /// Structural hash (the registry's interning bucket key).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  [[nodiscard]] std::string to_string() const;

  /// Bytes held (all storage is inline; registry byte accounting).
  [[nodiscard]] static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(HaloSpec);
  }

  friend bool operator==(const HaloSpec&, const HaloSpec&) = default;

 private:
  dist::IndexVec lo_;
  dist::IndexVec hi_;
  bool corners_ = false;
};

using HaloSpecPtr = std::shared_ptr<const HaloSpec>;

/// Shared immutable reference to an interned HaloSpec.  Like DistHandle:
/// equality is pointer identity, uid() is a small dense per-registry id (0
/// for the null handle and for unregistered wrappers) that plan caches
/// pack into flat integer keys.
class HaloHandle {
 public:
  HaloHandle() = default;

  [[nodiscard]] const HaloSpec& operator*() const noexcept { return *p_; }
  [[nodiscard]] const HaloSpec* operator->() const noexcept {
    return p_.get();
  }
  [[nodiscard]] const HaloSpec* get() const noexcept { return p_.get(); }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  [[nodiscard]] std::uint32_t uid() const noexcept { return uid_; }
  [[nodiscard]] bool interned() const noexcept { return uid_ != 0; }

  /// Wraps a spec without interning (uid 0; never hits identity caches).
  [[nodiscard]] static HaloHandle wrap(HaloSpec s) {
    return HaloHandle(std::make_shared<const HaloSpec>(std::move(s)), 0);
  }

  friend bool operator==(const HaloHandle&, const HaloHandle&) = default;

 private:
  friend class vf::dist::DistRegistry;
  HaloHandle(HaloSpecPtr p, std::uint32_t uid) : p_(std::move(p)), uid_(uid) {}

  HaloSpecPtr p_;
  std::uint32_t uid_ = 0;
};

/// The reconciled per-rank overlap description of one distributed array:
/// one interned HaloSpec handle per rank of the machine, in rank order.
///
/// Uniform SPMD programs declare the same spec everywhere and never build
/// a family (the local handle alone keys every cache, as before this type
/// existed).  Adaptive codes -- a refinement front widening ghost zones
/// only where it currently sits -- declare per-rank specs; the plan-time
/// spec exchange (halo/exchange.hpp) allgathers every rank's widths and
/// reconciles them into a HaloFamily, so the send side of a halo plan can
/// pack exactly what each neighbour's spec demands.
///
/// Reconciliation detects uniformity: a family whose per-rank handles are
/// all identical reports uniform(), and callers fall back to the uniform
/// plan path and the pre-family (DistHandle uid, HaloSpec uid) cache key.
class HaloFamily {
 public:
  HaloFamily() = default;

  /// One interned handle per rank (all non-null, same rank).  Throws on an
  /// empty vector, a null member or mismatched spec ranks.
  explicit HaloFamily(std::vector<HaloHandle> specs);

  [[nodiscard]] int nprocs() const noexcept {
    return static_cast<int>(specs_.size());
  }
  [[nodiscard]] const HaloHandle& handle_of(int rank) const noexcept {
    return specs_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const HaloSpec& spec_of(int rank) const noexcept {
    return *specs_[static_cast<std::size_t>(rank)];
  }

  /// All per-rank handles identical: the family degenerates to one spec
  /// and callers keep the uniform fast path and cache key.
  [[nodiscard]] bool uniform() const noexcept { return uniform_; }
  /// Every rank's spec has all-zero widths (exchange is a no-op).
  [[nodiscard]] bool empty() const noexcept { return empty_; }

  /// Structural hash over the member specs (the registry's interning
  /// bucket key).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  [[nodiscard]] std::string to_string() const;

  /// Bytes held, excluding the member specs the registry accounts in its
  /// own halo bucket (registry byte accounting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return sizeof(HaloFamily) + specs_.capacity() * sizeof(HaloHandle);
  }

  /// Element-wise handle identity: families built from handles interned in
  /// the same registry compare structurally through it.
  friend bool operator==(const HaloFamily&, const HaloFamily&) = default;

 private:
  std::vector<HaloHandle> specs_;
  bool uniform_ = true;
  bool empty_ = true;
};

using HaloFamilyPtr = std::shared_ptr<const HaloFamily>;

/// Shared immutable reference to an interned HaloFamily, mirroring
/// HaloHandle: equality is pointer identity, uid() is a small dense
/// per-registry id (0 for null / unregistered wrappers) that the halo-plan
/// cache packs into flat integer keys alongside the distribution uid.
class FamilyHandle {
 public:
  FamilyHandle() = default;

  [[nodiscard]] const HaloFamily& operator*() const noexcept { return *p_; }
  [[nodiscard]] const HaloFamily* operator->() const noexcept {
    return p_.get();
  }
  [[nodiscard]] const HaloFamily* get() const noexcept { return p_.get(); }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  [[nodiscard]] std::uint32_t uid() const noexcept { return uid_; }
  [[nodiscard]] bool interned() const noexcept { return uid_ != 0; }

  /// Wraps a family without interning (uid 0; never hits identity caches).
  [[nodiscard]] static FamilyHandle wrap(HaloFamily f) {
    return FamilyHandle(std::make_shared<const HaloFamily>(std::move(f)), 0);
  }

  friend bool operator==(const FamilyHandle&, const FamilyHandle&) = default;

 private:
  friend class vf::dist::DistRegistry;
  FamilyHandle(HaloFamilyPtr p, std::uint32_t uid)
      : p_(std::move(p)), uid_(uid) {}

  HaloFamilyPtr p_;
  std::uint32_t uid_ = 0;
};

}  // namespace vf::halo
