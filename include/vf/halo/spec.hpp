// HaloSpec: the overlap (ghost) description of the paper's OVERLAP
// annotation (Section 3.1 "overlap areas") promoted to a first-class
// interned value, the way distributions already are.
//
// A HaloSpec records, per array dimension, the lower and upper ghost
// widths plus whether diagonal (corner) ghost regions are maintained --
// the difference between a 5-point and a 9-point stencil on a
// (BLOCK, BLOCK) grid.  Specs are interned through dist::DistRegistry
// alongside distributions, so spec equality is pointer identity and the
// (DistHandle uid, HaloSpec uid) pair is a flat integer key for the
// run-based HaloPlan cache (see halo/plan.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "vf/dist/hash.hpp"
#include "vf/dist/index.hpp"

namespace vf::dist {
class DistRegistry;
}  // namespace vf::dist

namespace vf::halo {

/// Per-dimension ghost widths plus the corners flag.  Immutable after
/// construction; rank 0 means "no overlap areas at all".
class HaloSpec {
 public:
  HaloSpec() = default;

  /// lo[d] / hi[d] are the ghost plane counts below / above this rank's
  /// segment in dimension d; both vectors must have the same rank and
  /// non-negative entries.  `corners` requests diagonal ghost regions
  /// (every direction with more than one non-zero offset) in addition to
  /// the faces.
  HaloSpec(dist::IndexVec lo, dist::IndexVec hi, bool corners = false);

  /// The all-zero spec of the given rank (faces nor corners).
  [[nodiscard]] static HaloSpec none(int rank);

  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(lo_.size());
  }
  [[nodiscard]] dist::Index lo(int d) const noexcept { return lo_[d]; }
  [[nodiscard]] dist::Index hi(int d) const noexcept { return hi_[d]; }
  [[nodiscard]] const dist::IndexVec& lo_vec() const noexcept { return lo_; }
  [[nodiscard]] const dist::IndexVec& hi_vec() const noexcept { return hi_; }
  [[nodiscard]] bool corners() const noexcept { return corners_; }

  /// Whether every width is zero (no ghost storage, exchange is a no-op).
  [[nodiscard]] bool empty() const noexcept;

  /// Structural hash (the registry's interning bucket key).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const HaloSpec&, const HaloSpec&) = default;

 private:
  dist::IndexVec lo_;
  dist::IndexVec hi_;
  bool corners_ = false;
};

using HaloSpecPtr = std::shared_ptr<const HaloSpec>;

/// Shared immutable reference to an interned HaloSpec.  Like DistHandle:
/// equality is pointer identity, uid() is a small dense per-registry id (0
/// for the null handle and for unregistered wrappers) that plan caches
/// pack into flat integer keys.
class HaloHandle {
 public:
  HaloHandle() = default;

  [[nodiscard]] const HaloSpec& operator*() const noexcept { return *p_; }
  [[nodiscard]] const HaloSpec* operator->() const noexcept {
    return p_.get();
  }
  [[nodiscard]] const HaloSpec* get() const noexcept { return p_.get(); }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  [[nodiscard]] std::uint32_t uid() const noexcept { return uid_; }
  [[nodiscard]] bool interned() const noexcept { return uid_ != 0; }

  /// Wraps a spec without interning (uid 0; never hits identity caches).
  [[nodiscard]] static HaloHandle wrap(HaloSpec s) {
    return HaloHandle(std::make_shared<const HaloSpec>(std::move(s)), 0);
  }

  friend bool operator==(const HaloHandle&, const HaloHandle&) = default;

 private:
  friend class vf::dist::DistRegistry;
  HaloHandle(HaloSpecPtr p, std::uint32_t uid) : p_(std::move(p)), uid_(uid) {}

  HaloSpecPtr p_;
  std::uint32_t uid_ = 0;
};

}  // namespace vf::halo
