// Inspector/executor schedules (paper Section 3.2 and reference [15],
// Saltz et al.): the runtime machinery for irregular accesses.
//
// The *inspector* (Schedule construction) analyses the set of global index
// points a processor wants to read or write, groups them by owner, removes
// duplicates, and exchanges the deduplicated request lists so that owners
// know what to serve.  The *executor* (gather / scatter / scatter_add)
// then moves only unique data, one aggregated message per communicating
// pair; duplicate occurrences are fanned out (gather) or pre-combined
// (scatter, scatter_add) on the requesting side.
//
// Executor hot loops are branch-free walks over flat std::size_t storage
// offsets: the first executor call against an array translates the served
// and locally-satisfied index points into local storage offsets once (and
// re-translates only if the array or its distribution changes), so
// repeated executor calls perform no per-element IndexVec arithmetic, no
// at() ownership checks, and -- because both sides' counts were agreed at
// inspector time -- no count-exchange collective.  Serve/combine and
// receive buffers are persistent per-schedule exchange scratch
// (msg::ExchangeScratch, one lane per element size) moved through
// Context::alltoallv_known_into, so a warmed-up executor replay performs
// no heap allocation at all.  This is what makes the inspector cost
// amortizable (bench E7) in codes like the PIC example of Section 4.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "vf/core/cache_budget.hpp"
#include "vf/dist/distribution.hpp"
#include "vf/dist/registry.hpp"
#include "vf/halo/spec.hpp"
#include "vf/msg/context.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::parti {

class Schedule {
 public:
  /// Inspector (collective): `points` are the global index points this
  /// rank's executor calls will touch, in local buffer order.  `target`
  /// is the interned descriptor of the distribution the points are
  /// resolved against (normally some array's dist_handle()); executors
  /// accept any array whose handle is identical -- one pointer compare --
  /// and fall back to a mapping-level comparison only for
  /// descriptor-swapped equivalents.
  ///
  /// Every point is validated against the target domain BEFORE the
  /// inspector communicates; a bad point throws std::out_of_range naming
  /// it.  The throw need not be rank-symmetric: peers already blocked in
  /// the inspector's collectives are woken by the machine's abort fence
  /// with a RankAbort, and run_spmd rethrows this rank's original error.
  Schedule(msg::Context& ctx, dist::DistHandle target,
           std::vector<dist::IndexVec> points);

  /// Inspector that reuses the target's halo runs for overlap-area reads:
  /// points owned by a neighbour but lying inside this rank's *filled*
  /// ghost region under (target, halo) -- the planes a preceding
  /// exchange_overlap() made current -- are satisfied from local ghost
  /// storage instead of travelling in the executor exchange.  The caller
  /// guarantees ghosts are current (exchange_overlap() since the last
  /// write); halo-satisfied points are read-only, so scatter executors
  /// reject schedules that carry any.
  ///
  /// `halo` is this rank's LOCAL spec even under an asymmetric per-rank
  /// declaration (pass the array's halo_spec()): which overlap reads the
  /// exchange serves is a pure receiver-side fact -- filled widths are my
  /// own declared widths clipped by what my neighbours own, and the spec
  /// exchange makes the send side honour exactly them -- so the inspector
  /// needs no knowledge of the reconciled family.
  Schedule(msg::Context& ctx, dist::DistHandle target,
           std::vector<dist::IndexVec> points, halo::HaloHandle halo);

  /// Knobs for the skew-aware hybrid (PRPD partial-duplication) inspector.
  /// Must be SPMD-uniform, like every other inspector argument.
  struct SkewConfig {
    bool enabled = false;  ///< run the serve-load skew pass at all
    /// Serve-load max/mean above which the inspector goes hybrid.
    double threshold = 4.0;
    /// Minimum requester fan-in for a served element to count as heavy;
    /// 0 selects max(2, nprocs/2).
    std::size_t min_fan = 0;
  };

  /// Skew-aware inspector: like the plain form, but when the per-owner
  /// serve loads are skewed beyond `cfg.threshold`, owners mark their
  /// widely-requested elements (fan-in >= min_fan) heavy and announce
  /// them in one plan-time allgather.  Heavy elements leave the
  /// all-to-owner request/serve structures on both sides; executors
  /// replicate them instead: gather allgathers the owners' heavy values
  /// and fans them out locally, scatter_add pre-combines each requester's
  /// heavy contributions, allgathers the partials and lets each owner
  /// reduce them in ascending rank order -- on dyadic values the result
  /// is bitwise identical to the all-to-owner reference.  Plain scatter
  /// (last-writer-wins) is not defined on replicated elements and throws
  /// std::logic_error on a hybrid schedule.
  Schedule(msg::Context& ctx, dist::DistHandle target,
           std::vector<dist::IndexVec> points, const SkewConfig& cfg);

  /// Whether the inspector selected the hybrid (partial-duplication)
  /// path.  False whenever the serve loads were balanced or no element
  /// met the fan-in bar -- the zero-overhead uniform outcome.
  [[nodiscard]] bool hybrid() const noexcept { return hybrid_; }
  /// Machine-wide count of heavy (replicated) elements.
  [[nodiscard]] std::size_t n_heavy() const noexcept { return n_heavy_; }
  /// Serve-load max/mean observed by the skew pass (1.0 when disabled).
  [[nodiscard]] double serve_skew() const noexcept { return serve_skew_; }

  /// Number of points this rank requested.
  [[nodiscard]] std::size_t n_points() const noexcept { return n_points_; }
  /// Number of distinct off-processor elements this rank touches per
  /// executor call (its incoming/outgoing data volume, in elements).
  [[nodiscard]] std::size_t n_unique_offproc() const noexcept {
    return n_unique_offproc_;
  }
  /// Number of points satisfied locally.
  [[nodiscard]] std::size_t n_local() const noexcept {
    return local_linear_.size();
  }
  /// Number of points satisfied from the overlap (ghost) area.
  [[nodiscard]] std::size_t n_halo() const noexcept {
    return halo_linear_.size();
  }

  /// Executor: fills out[k] with the value of the k-th requested point.
  /// Collective; `out.size() == n_points()`.
  template <typename T>
  void gather(msg::Context& ctx, const rt::DistArray<T>& src,
              std::span<T> out) const {
    check_size(out.size());
    const Binding& bound = bind(src);
    const int np = ctx.nprocs();
    const T* data = src.local_span().data();
    // Owners serve each unique requested element once: a branch-free copy
    // through the precomputed flat offsets into exactly-sized per-peer
    // buffers.  The buffers are persistent per-schedule scratch, keyed by
    // element size (one schedule may alternate double and int arrays
    // through its binding cache): a warmed-up replay allocates nothing on
    // either side of the exchange.
    msg::ExchangeLane& lane = scratch_.lane(sizeof(T));
    lane.prepare(expect_scatter_, req_unique_counts_);
    for (int p = 0; p < np; ++p) {
      const auto up = static_cast<std::size_t>(p);
      const std::size_t b = serve_start_[up];
      const std::size_t e = serve_start_[up + 1];
      T* buf = lane.send<T>(p).data();
      for (std::size_t k = b; k < e; ++k) {
        buf[k - b] = data[bound.serve_off[k]];
      }
    }
    ctx.alltoallv_known_into(lane);
    for (std::size_t k = 0; k < local_linear_.size(); ++k) {
      out[local_positions_[k]] = data[bound.local_off[k]];
    }
    // Overlap-area reads: served from ghost storage the preceding halo
    // exchange already filled -- no transport at all.
    for (std::size_t k = 0; k < halo_linear_.size(); ++k) {
      out[halo_positions_[k]] = data[bound.halo_off[k]];
    }
    // Fan replies out to every occurrence.
    for (int p = 0; p < np; ++p) {
      const auto& occ = occ_unique_index_[static_cast<std::size_t>(p)];
      const auto& pos = occ_positions_[static_cast<std::size_t>(p)];
      const T* vals = lane.recv<T>(p).data();
      for (std::size_t k = 0; k < occ.size(); ++k) {
        out[pos[k]] = vals[occ[k]];
      }
    }
    if (!hybrid_) return;
    // Replicated side: owners publish their heavy values once (Bruck
    // allgather), every rank fans them out to its occurrences locally.
    // A heavy element thus costs its owner one send per allgather round
    // instead of one serve slot per requesting rank.
    std::vector<T> mine(heavy_serve_linear_.size());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      mine[k] = data[bound.heavy_off[k]];
    }
    const auto per_rank = ctx.allgather_vec(std::move(mine));
    std::vector<T> heavy_vals(n_heavy_);
    for (int r = 0; r < np; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      std::copy(per_rank[ur].begin(), per_rank[ur].end(),
                heavy_vals.begin() +
                    static_cast<std::ptrdiff_t>(heavy_owner_start_[ur]));
    }
    for (std::size_t k = 0; k < heavy_occ_slot_.size(); ++k) {
      out[heavy_occ_pos_[k]] = heavy_vals[heavy_occ_slot_[k]];
    }
  }

  /// Vector convenience overloads (template deduction does not see through
  /// std::span).
  template <typename T>
  void gather(msg::Context& ctx, const rt::DistArray<T>& src,
              std::vector<T>& out) const {
    gather(ctx, src, std::span<T>(out));
  }
  template <typename T>
  void scatter(msg::Context& ctx, const std::vector<T>& in,
               rt::DistArray<T>& dst) const {
    scatter(ctx, std::span<const T>(in), dst);
  }
  template <typename T>
  void scatter_add(msg::Context& ctx, const std::vector<T>& in,
                   rt::DistArray<T>& dst) const {
    scatter_add(ctx, std::span<const T>(in), dst);
  }

  /// Executor: writes in[k] to the k-th requested point (collective).
  /// When several occurrences name the same point, the last occurrence in
  /// request order wins (duplicates are combined before transport).
  template <typename T>
  void scatter(msg::Context& ctx, std::span<const T> in,
               rt::DistArray<T>& dst) const {
    exec_scatter(ctx, in, dst, /*accumulate=*/false);
  }

  /// Executor: accumulates in[k] into the k-th requested point
  /// (collective); every occurrence contributes (pre-summed per unique
  /// element before transport).
  template <typename T>
  void scatter_add(msg::Context& ctx, std::span<const T> in,
                   rt::DistArray<T>& dst) const {
    exec_scatter(ctx, in, dst, /*accumulate=*/true);
  }

 private:
  template <typename T>
  void exec_scatter(msg::Context& ctx, std::span<const T> in,
                    rt::DistArray<T>& dst, bool accumulate) const {
    check_size(in.size());
    if (!halo_linear_.empty()) {
      throw std::logic_error(
          "Schedule: halo-satisfied points are read-only; scatter needs a "
          "schedule built without a halo spec");
    }
    if (hybrid_ && !accumulate) {
      // Replicated elements have no single last writer across ranks;
      // plain scatter is undefined on them.  hybrid_ is SPMD-uniform, so
      // this throws on every rank symmetrically.
      throw std::logic_error(
          "Schedule: plain scatter is not defined on a hybrid "
          "(partial-duplication) schedule; use scatter_add or build the "
          "schedule without SkewConfig");
    }
    const Binding& bound = bind(dst);
    const int np = ctx.nprocs();
    // Requester-side combining into persistent per-schedule scratch: one
    // slot per unique remote element.  The accumulate path pre-fills the
    // combine buffers with the additive identity; plain scatter writes
    // every slot (each unique element has at least one occurrence), so no
    // fill is needed and last-occurrence-wins falls out of request order.
    msg::ExchangeLane& lane = scratch_.lane(sizeof(T));
    lane.prepare(req_unique_counts_, expect_scatter_);
    for (int p = 0; p < np; ++p) {
      const auto up = static_cast<std::size_t>(p);
      const std::span<T> buf = lane.send<T>(p);
      if (accumulate) std::fill(buf.begin(), buf.end(), T{});
      const auto& occ = occ_unique_index_[up];
      const auto& pos = occ_positions_[up];
      for (std::size_t k = 0; k < occ.size(); ++k) {
        if (accumulate) {
          buf[occ[k]] += in[pos[k]];
        } else {
          buf[occ[k]] = in[pos[k]];
        }
      }
    }
    ctx.alltoallv_known_into(lane);
    T* data = dst.local_span().data();
    for (std::size_t k = 0; k < local_linear_.size(); ++k) {
      T& slot = data[bound.local_off[k]];
      if (accumulate) {
        slot += in[local_positions_[k]];
      } else {
        slot = in[local_positions_[k]];
      }
    }
    for (int p = 0; p < np; ++p) {
      const auto up = static_cast<std::size_t>(p);
      const std::size_t b = serve_start_[up];
      const std::size_t e = serve_start_[up + 1];
      const T* vals = lane.recv<T>(p).data();
      for (std::size_t k = b; k < e; ++k) {
        T& slot = data[bound.serve_off[k]];
        if (accumulate) {
          slot += vals[k - b];
        } else {
          slot = vals[k - b];
        }
      }
    }
    if (!hybrid_) return;
    // Replicated side of scatter_add: each requester pre-combines its
    // contributions to the heavy elements it touches, the partials are
    // allgathered, and each owner folds them into its heavy slots in
    // ascending rank order -- a deterministic reduction that is exact
    // (hence bitwise identical to all-to-owner) on dyadic values.
    std::vector<T> partials(touched_slots_.size(), T{});
    for (std::size_t k = 0; k < heavy_occ_touch_.size(); ++k) {
      partials[heavy_occ_touch_[k]] += in[heavy_occ_pos_[k]];
    }
    const auto all = ctx.allgather_vec(std::move(partials));
    for (std::size_t k = 0; k < heavy_serve_linear_.size(); ++k) {
      T& slot = data[bound.heavy_off[k]];
      for (std::size_t j = owner_reduce_start_[k];
           j < owner_reduce_start_[k + 1]; ++j) {
        slot += all[static_cast<std::size_t>(owner_reduce_rank_[j])]
                   [owner_reduce_idx_[j]];
      }
    }
  }

  void check_size(std::size_t n) const {
    if (n != n_points_) {
      throw std::invalid_argument(
          "Schedule executor: buffer size does not match the inspected "
          "point count");
    }
  }

  // Flat storage offsets bound to one array instance + distribution.
  // Keyed by the array's process-unique serial (never recycled, unlike a
  // heap address) plus its descriptor handle, so neither a recycled
  // address nor a shared interned descriptor can alias a stale binding.
  struct Binding {
    std::uint64_t array_serial = 0;
    dist::DistHandle dist;
    std::vector<std::size_t> serve_off;  ///< parallel to serve_linear_
    std::vector<std::size_t> local_off;  ///< parallel to local_linear_
    std::vector<std::size_t> halo_off;   ///< parallel to halo_linear_
    std::vector<std::size_t> heavy_off;  ///< parallel to heavy_serve_linear_
  };

 public:
  /// Number of arrays currently bound (distinct translation sets held by
  /// the multi-array binding cache).
  [[nodiscard]] std::size_t n_bound_arrays() const noexcept {
    return bindings_.size();
  }
  /// Executor-side binding cache hits/misses (a miss translates all
  /// served and local points of one array into flat storage offsets).
  [[nodiscard]] std::uint64_t binding_hits() const noexcept {
    return binding_hits_;
  }
  [[nodiscard]] std::uint64_t binding_misses() const noexcept {
    return binding_misses_;
  }
  /// Bindings dropped under capacity or byte pressure (an evicted binding
  /// re-translates transparently on next use).
  [[nodiscard]] std::uint64_t binding_evictions() const noexcept {
    return binding_budget_.evictions();
  }
  [[nodiscard]] std::size_t binding_resident_bytes() const noexcept {
    return binding_budget_.resident_bytes();
  }
  /// Byte ceiling of the binding cache (default 8 MiB); shrinking evicts
  /// cold bindings immediately (the MRU binding always survives).
  void set_binding_budget(std::size_t max_bytes);
  /// Executor exchange-scratch counters (prepares == executor calls that
  /// exchanged data; grow_allocs == heap allocations the scratch arena
  /// performed).  A warmed-up replay loop holds grow_allocs flat -- the
  /// allocs_per_replay == 0 steady state bench_parti gates.
  [[nodiscard]] const msg::ExchangeScratch::Stats& scratch_stats()
      const noexcept {
    return scratch_.stats();
  }
  void reset_scratch_stats() const noexcept { scratch_.reset_stats(); }

 private:
  /// Translates the served and local index points into flat storage
  /// offsets of `a`, through the multi-array binding cache: one schedule
  /// can serve gathers/scatters against several arrays (keyed by array
  /// identity + descriptor handle) without re-translating on every
  /// alternation.  Schedules are per-rank objects, so no synchronization
  /// is needed.
  const Binding& bind(const rt::DistArrayBase& a) const;

  /// Shared inspector body of every constructor.
  void init(msg::Context& ctx, std::vector<dist::IndexVec> points,
            const SkewConfig& cfg);
  /// The skew pass: serve-load histogram, heavy-element election and
  /// announcement, and the deterministic carve-out of heavy elements from
  /// the all-to-owner structures.  `requested` is the per-owner unique
  /// request list this rank shipped in the base inspector exchange.
  void init_hybrid(msg::Context& ctx,
                   const std::vector<std::vector<dist::Index>>& requested,
                   const SkewConfig& cfg);

  std::size_t n_points_ = 0;
  std::size_t n_unique_offproc_ = 0;

  // Requester side, per peer: positions (into the executor buffer) of each
  // off-processor occurrence and the index of its unique element within
  // the peer's serve list.
  std::vector<std::vector<std::size_t>> occ_positions_;
  std::vector<std::vector<std::size_t>> occ_unique_index_;
  // Number of unique elements I exchange with each peer (as requester);
  // doubles as the pre-agreed per-peer count of values arriving during a
  // gather, so it feeds alltoallv_known directly.
  std::vector<std::uint64_t> req_unique_counts_;

  // Owner side: unique linearized points to serve, concatenated per peer
  // with serve_start_[p] .. serve_start_[p+1] delimiting peer p's slice.
  dist::IndexDomain dom_;
  std::vector<dist::Index> serve_linear_;
  std::vector<std::size_t> serve_start_;

  // Locally satisfied points (linearized) and their buffer positions.
  std::vector<dist::Index> local_linear_;
  std::vector<std::size_t> local_positions_;

  // Overlap-area (ghost) satisfied points: owned by a neighbour but
  // current in this rank's filled halo region, so gathers read them
  // locally.  Only populated by the halo-aware constructor.
  std::vector<dist::Index> halo_linear_;
  std::vector<std::size_t> halo_positions_;
  halo::HaloHandle halo_;

  // Pre-agreed per-peer count of values arriving during a scatter (the
  // serve-slice sizes, cached as one vector for alltoallv_known).
  std::vector<std::uint64_t> expect_scatter_;

  // ---- hybrid (partial-duplication) state ---------------------------------
  //
  // Heavy elements form one machine-wide stream: each owner's sorted
  // announcement occupies slots heavy_owner_start_[r] ..
  // heavy_owner_start_[r+1], so a slot id names both the element and its
  // owner without any per-executor lookup.  All of it is SPMD-agreed at
  // plan time; executors only walk flat arrays.
  bool hybrid_ = false;
  double serve_skew_ = 1.0;
  std::size_t n_heavy_ = 0;                     ///< global stream length
  std::vector<std::size_t> heavy_owner_start_;  ///< per-rank slot offsets
  // Owner side: my announced heavy elements (sorted linearized ids) --
  // the values I publish in the gather allgather and reduce into during
  // scatter_add.
  std::vector<dist::Index> heavy_serve_linear_;
  // Requester side: per heavy occurrence, the global slot (gather), the
  // index into touched_slots_ (scatter_add pre-combine) and the executor
  // buffer position.
  std::vector<std::size_t> heavy_occ_slot_;
  std::vector<std::size_t> heavy_occ_touch_;
  std::vector<std::size_t> heavy_occ_pos_;
  // Global slots this rank touches, sorted ascending; the layout of its
  // scatter_add partial vector, announced at plan time so owners can
  // index every rank's partials directly.
  std::vector<std::size_t> touched_slots_;
  // Owner-side reduction lists, parallel to heavy_serve_linear_:
  // contributions to my k-th heavy element are
  // all[owner_reduce_rank_[j]][owner_reduce_idx_[j]] for j in
  // owner_reduce_start_[k] .. owner_reduce_start_[k+1], rank-ascending.
  std::vector<std::size_t> owner_reduce_start_;
  std::vector<int> owner_reduce_rank_;
  std::vector<std::size_t> owner_reduce_idx_;

  // The inspected target descriptor: executors accept an array whose
  // handle is identical (one pointer compare -- the hot path) and fall
  // back to a mapping-level comparison only for descriptor-only swaps
  // such as a no-op DISTRIBUTE to an equivalent spelling.  No structural
  // or fingerprint verification happens on the hot path.
  dist::DistHandle target_;

  /// Bytes one binding holds (its four offset vectors dominate).
  [[nodiscard]] static std::size_t binding_bytes(const Binding& b) noexcept {
    return sizeof(Binding) +
           (b.serve_off.capacity() + b.local_off.capacity() +
            b.halo_off.capacity() + b.heavy_off.capacity()) *
               sizeof(std::size_t);
  }

  // Multi-array binding cache (most recently used first), bounded by
  // kBindingCapacity entries within a byte budget.
  static constexpr std::size_t kBindingCapacity = 8;
  static constexpr std::size_t kDefaultBindingBudgetBytes = std::size_t{8}
                                                            << 20;
  mutable std::vector<Binding> bindings_;
  mutable core::CacheBudget binding_budget_{kDefaultBindingBudgetBytes};
  mutable std::uint64_t binding_hits_ = 0;
  mutable std::uint64_t binding_misses_ = 0;

  // Persistent executor exchange scratch: per-element-size send/combine
  // and receive buffers shared by gather, scatter and scatter_add.
  // Warmed-up executor replays perform no heap allocation.
  mutable msg::ExchangeScratch scratch_;
};

}  // namespace vf::parti
