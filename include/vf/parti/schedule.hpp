// Inspector/executor schedules (paper Section 3.2 and reference [15],
// Saltz et al.): the runtime machinery for irregular accesses.
//
// The *inspector* (Schedule construction) analyses the set of global index
// points a processor wants to read or write, groups them by owner, removes
// duplicates, and exchanges the deduplicated request lists so that owners
// know what to serve.  The *executor* (gather / scatter / scatter_add)
// then moves only unique data, one aggregated message per communicating
// pair; duplicate occurrences are fanned out (gather) or pre-combined
// (scatter, scatter_add) on the requesting side.  A schedule is reusable:
// the inspector cost is amortized over repeated executor calls (bench E7),
// which is what makes the inspector/executor paradigm pay off in codes
// like the PIC example of Section 4.
#pragma once

#include <span>
#include <vector>

#include "vf/dist/distribution.hpp"
#include "vf/msg/context.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::parti {

class Schedule {
 public:
  /// Inspector (collective): `points` are the global index points this
  /// rank's executor calls will touch, in local buffer order.
  Schedule(msg::Context& ctx, const dist::Distribution& target,
           std::vector<dist::IndexVec> points);

  /// Number of points this rank requested.
  [[nodiscard]] std::size_t n_points() const noexcept { return n_points_; }
  /// Number of distinct off-processor elements this rank touches per
  /// executor call (its incoming/outgoing data volume, in elements).
  [[nodiscard]] std::size_t n_unique_offproc() const noexcept {
    return n_unique_offproc_;
  }
  /// Number of points satisfied locally.
  [[nodiscard]] std::size_t n_local() const noexcept {
    return local_points_.size();
  }

  /// Executor: fills out[k] with the value of the k-th requested point.
  /// Collective; `out.size() == n_points()`.
  template <typename T>
  void gather(msg::Context& ctx, const rt::DistArray<T>& src,
              std::span<T> out) const {
    check_size(out.size());
    const int np = ctx.nprocs();
    // Owners serve each unique requested element once.
    std::vector<std::vector<T>> serve(static_cast<std::size_t>(np));
    for (int p = 0; p < np; ++p) {
      const auto& pts = serve_unique_[static_cast<std::size_t>(p)];
      auto& buf = serve[static_cast<std::size_t>(p)];
      buf.reserve(pts.size());
      for (const auto& i : pts) buf.push_back(src.at(i));
    }
    auto in = ctx.alltoallv(std::move(serve));
    for (std::size_t k = 0; k < local_points_.size(); ++k) {
      out[local_positions_[k]] = src.at(local_points_[k]);
    }
    // Fan replies out to every occurrence.
    for (int p = 0; p < np; ++p) {
      const auto& occ = occ_unique_index_[static_cast<std::size_t>(p)];
      const auto& pos = occ_positions_[static_cast<std::size_t>(p)];
      const auto& vals = in[static_cast<std::size_t>(p)];
      for (std::size_t k = 0; k < occ.size(); ++k) {
        out[pos[k]] = vals[occ[k]];
      }
    }
  }

  /// Vector convenience overloads (template deduction does not see through
  /// std::span).
  template <typename T>
  void gather(msg::Context& ctx, const rt::DistArray<T>& src,
              std::vector<T>& out) const {
    gather(ctx, src, std::span<T>(out));
  }
  template <typename T>
  void scatter(msg::Context& ctx, const std::vector<T>& in,
               rt::DistArray<T>& dst) const {
    scatter(ctx, std::span<const T>(in), dst);
  }
  template <typename T>
  void scatter_add(msg::Context& ctx, const std::vector<T>& in,
                   rt::DistArray<T>& dst) const {
    scatter_add(ctx, std::span<const T>(in), dst);
  }

  /// Executor: writes in[k] to the k-th requested point (collective).
  /// When several occurrences name the same point, the last occurrence in
  /// request order wins (duplicates are combined before transport).
  template <typename T>
  void scatter(msg::Context& ctx, std::span<const T> in,
               rt::DistArray<T>& dst) const {
    exec_scatter(ctx, in, dst, /*accumulate=*/false);
  }

  /// Executor: accumulates in[k] into the k-th requested point
  /// (collective); every occurrence contributes (pre-summed per unique
  /// element before transport).
  template <typename T>
  void scatter_add(msg::Context& ctx, std::span<const T> in,
                   rt::DistArray<T>& dst) const {
    exec_scatter(ctx, in, dst, /*accumulate=*/true);
  }

 private:
  template <typename T>
  void exec_scatter(msg::Context& ctx, std::span<const T> in,
                    rt::DistArray<T>& dst, bool accumulate) const {
    check_size(in.size());
    const int np = ctx.nprocs();
    // Requester-side combining: one slot per unique remote element.
    std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
    for (int p = 0; p < np; ++p) {
      const auto up = static_cast<std::size_t>(p);
      out[up].assign(serve_counts_[up], T{});
      const auto& occ = occ_unique_index_[up];
      const auto& pos = occ_positions_[up];
      for (std::size_t k = 0; k < occ.size(); ++k) {
        if (accumulate) {
          out[up][occ[k]] += in[pos[k]];
        } else {
          out[up][occ[k]] = in[pos[k]];
        }
      }
    }
    auto incoming = ctx.alltoallv(std::move(out));
    for (std::size_t k = 0; k < local_points_.size(); ++k) {
      T& slot = dst.at(local_points_[k]);
      if (accumulate) {
        slot += in[local_positions_[k]];
      } else {
        slot = in[local_positions_[k]];
      }
    }
    for (int p = 0; p < np; ++p) {
      const auto up = static_cast<std::size_t>(p);
      const auto& pts = serve_unique_[up];
      const auto& vals = incoming[up];
      for (std::size_t k = 0; k < pts.size(); ++k) {
        T& slot = dst.at(pts[k]);
        if (accumulate) {
          slot += vals[k];
        } else {
          slot = vals[k];
        }
      }
    }
  }

  void check_size(std::size_t n) const {
    if (n != n_points_) {
      throw std::invalid_argument(
          "Schedule executor: buffer size does not match the inspected "
          "point count");
    }
  }

  std::size_t n_points_ = 0;
  std::size_t n_unique_offproc_ = 0;

  // Requester side, per peer: positions (into the executor buffer) of each
  // off-processor occurrence and the index of its unique element within
  // the peer's serve list.
  std::vector<std::vector<std::size_t>> occ_positions_;
  std::vector<std::vector<std::size_t>> occ_unique_index_;
  // Number of unique elements I exchange with each peer (as requester).
  std::vector<std::size_t> serve_counts_;

  // Owner side, per peer: unique points to serve.
  std::vector<std::vector<dist::IndexVec>> serve_unique_;

  // Locally satisfied points.
  std::vector<dist::IndexVec> local_points_;
  std::vector<std::size_t> local_positions_;
};

}  // namespace vf::parti
