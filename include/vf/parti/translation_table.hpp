// Distributed translation table (paper Section 3.2: "implementation of
// irregular accesses via translation tables ... as implemented in the
// PARTI routines").
//
// A translation table records, for every element of a (linearized) index
// space, which processor owns it.  The table itself is distributed in
// equal pages across the machine, so looking up arbitrary indices requires
// communication: dereference() performs the two-phase batched exchange the
// PARTI inspector uses.
//
// For the closed-form distributions of this library the table contents can
// be computed locally; the table is still valuable (and tested) as the
// general mechanism for user-defined / irregular mappings, and as the cost
// model of inspector-phase translation (bench E7).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "vf/dist/distribution.hpp"
#include "vf/msg/context.hpp"

namespace vf::parti {

class TranslationTable {
 public:
  /// Builds the table for `n` elements with owners given by `owner`
  /// (a deterministic function evaluated for the locally stored page
  /// only).  Collective.
  TranslationTable(msg::Context& ctx, dist::Index n,
                   const std::function<int(dist::Index)>& owner);

  /// Builds the table of a concrete distribution: entry i is the owner of
  /// the index point linearized as i in the distribution's domain.
  TranslationTable(msg::Context& ctx, const dist::Distribution& d);

  [[nodiscard]] dist::Index size() const noexcept { return n_; }

  /// Rank storing table entry i (pages are BLOCK-distributed).
  [[nodiscard]] int page_owner(dist::Index i) const;

  /// Local page contents (owners of the entries this rank stores).
  [[nodiscard]] const std::vector<int>& local_page() const noexcept {
    return page_;
  }

  /// Batched dereference (collective): returns the owner of every queried
  /// linear index, in query order.  Two all-to-all rounds: requests to the
  /// page holders, replies back.
  [[nodiscard]] std::vector<int> dereference(
      msg::Context& ctx, std::span<const dist::Index> queries) const;

 private:
  dist::Index n_ = 0;
  dist::Index page_width_ = 1;
  std::vector<int> page_;
};

}  // namespace vf::parti
