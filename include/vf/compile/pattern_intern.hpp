// Hash-consed abstract distribution values for the compile layer.
//
// The reaching-distribution analysis (paper Section 3.1) manipulates sets
// of abstract distribution types (query::TypePattern).  Interning every
// pattern into a shared immutable handle makes abstract-value equality
// pointer identity, so DistSet membership tests, set merges and the
// fixpoint's state comparisons are integer compares and shared_ptr copies
// instead of deep pattern comparisons and vector clones -- the compile-
// layer mirror of the runtime's DistHandle.
#pragma once

#include <cstdint>
#include <memory>

#include "vf/query/pattern.hpp"

namespace vf::compile {

/// Shared immutable reference to an interned TypePattern.  Constructing
/// one from a TypePattern interns it (process-wide, thread-safe), so two
/// handles are equal iff their patterns are structurally equal -- and
/// equality is one pointer compare.
class PatternHandle {
 public:
  PatternHandle() = default;
  PatternHandle(const query::TypePattern& p);  // NOLINT(google-explicit-constructor)
  PatternHandle(query::TypePattern&& p);       // NOLINT(google-explicit-constructor)

  [[nodiscard]] const query::TypePattern& operator*() const noexcept {
    return *p_;
  }
  [[nodiscard]] const query::TypePattern* operator->() const noexcept {
    return p_.get();
  }
  [[nodiscard]] const query::TypePattern* get() const noexcept {
    return p_.get();
  }
  operator const query::TypePattern&() const noexcept {  // NOLINT
    return *p_;
  }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  friend bool operator==(const PatternHandle&, const PatternHandle&) = default;

  // Mixed comparisons against plain patterns compare structurally (exact-
  // match overloads, so the implicit conversions in both directions never
  // make handle/pattern comparisons ambiguous).
  friend bool operator==(const PatternHandle& a, const query::TypePattern& b) {
    return a.p_ != nullptr && *a.p_ == b;
  }
  friend bool operator==(const query::TypePattern& a, const PatternHandle& b) {
    return b == a;
  }

 private:
  friend PatternHandle intern_pattern(query::TypePattern p);
  explicit PatternHandle(std::shared_ptr<const query::TypePattern> p)
      : p_(std::move(p)) {}

  std::shared_ptr<const query::TypePattern> p_;
};

/// Structural hash of a pattern (the interner's bucket key).
[[nodiscard]] std::uint64_t hash_pattern(const query::TypePattern& p) noexcept;

/// Interns `p` into the process-wide pattern table.
[[nodiscard]] PatternHandle intern_pattern(query::TypePattern p);

/// Number of distinct patterns interned so far (diagnostics).
[[nodiscard]] std::size_t interned_pattern_count();

}  // namespace vf::compile
