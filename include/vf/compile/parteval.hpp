// Partial evaluation of distribution queries (paper Section 3.1):
//
//   "The compiler also performs a partial evaluation of distribution
//    queries (both IDT and the dcase construct), by checking whether there
//    is a plausible distribution which will match."
//
// Given the reaching-distribution result, this pass classifies every DCASE
// arm as Never / Maybe / Always taken, flags DISTRIBUTE statements whose
// target distribution provably already holds (redundant data motion --
// the compile-time counterpart of the runtime no-op check in
// Section 3.2.2), reports possible RANGE violations, and reports uses that
// may be reached with no distribution associated.
#pragma once

#include <string>
#include <vector>

#include "vf/compile/reaching.hpp"

namespace vf::compile {

enum class ArmVerdict {
  Never,   ///< no plausible distribution tuple matches: arm is dead
  Maybe,   ///< some plausible tuple matches, some may not
  Always,  ///< every plausible tuple matches and all earlier arms are dead
};

[[nodiscard]] std::string to_string(ArmVerdict v);

struct DCaseEvaluation {
  int node = -1;
  std::vector<ArmVerdict> arms;  ///< one per arm (DEFAULT arm included)
};

struct PartialEvalReport {
  std::vector<DCaseEvaluation> dcases;
  /// Distribute nodes whose target equals the unique plausible reaching
  /// distribution (same type, fully concrete): data motion is redundant.
  std::vector<int> redundant_distributes;
  /// ExchangeHalo nodes provably redundant: either the ghost regions are
  /// still current on every reaching path (halo_fresh -- no write,
  /// DISTRIBUTE or opaque call since the previous exchange) or the
  /// array's declared halo spec has no ghost planes at all.  The
  /// empty-spec argument is suppressed for per-rank (asymmetric)
  /// declarations: an empty LOCAL spec does not make the collective
  /// redundant -- this rank may still serve wider-halo neighbours.
  std::vector<int> redundant_halo_exchanges;
  /// (node, array): DISTRIBUTE statements that may violate the array's
  /// RANGE attribute.
  std::vector<std::pair<int, std::string>> possible_range_violations;
  /// (node, array): Use nodes that may be reached before the array has a
  /// distribution associated with it.
  std::vector<std::pair<int, std::string>> use_before_distribution;
};

[[nodiscard]] PartialEvalReport partial_eval(const Program& p,
                                             const ReachingResult& r);

/// Partial evaluation of a single IDT query at a program point: returns
/// Always if every plausible distribution matches the pattern, Never if
/// none may, Maybe otherwise.
[[nodiscard]] ArmVerdict eval_idt(const DistSet& plausible,
                                  const query::TypePattern& pattern);

}  // namespace vf::compile
