// A small statement IR and control-flow graph on which the compiler-side
// support of Section 3.1 runs: the reaching-distribution analysis needs to
// see declarations (DYNAMIC, RANGE, initial distributions), DISTRIBUTE
// statements (possibly with runtime-valued parameters), array references,
// opaque calls that may redistribute their arguments, and the control
// structure (conditionals, loops, DCASE constructs).
//
// Abstract distribution values are query::TypePattern: a concrete type is
// the exact pattern, a DISTRIBUTE whose parameter is a runtime value (e.g.
// CYCLIC(K) for variable K, Example 3) is CYCLIC(*), and "don't know" is
// the wildcard.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vf/halo/spec.hpp"
#include "vf/query/pattern.hpp"

namespace vf::compile {

using AbstractDist = query::TypePattern;

/// Declaration-site information about an array (Section 2.3 annotations).
struct ArrayInfo {
  std::string name;
  int rank = 1;
  bool dynamic = true;
  query::RangeSpec range;               ///< empty = unrestricted
  std::optional<AbstractDist> initial;  ///< DIST clause, if any
  /// OVERLAP annotation: the halo spec the array's ghost exchanges use.
  /// Carried through the reaching-distribution sets so partial evaluation
  /// can reason about exchange redundancy.
  std::optional<halo::HaloSpec> halo;
  /// The OVERLAP declaration is per-rank (asymmetric): `halo` is only this
  /// rank's local spec and other ranks may have declared wider ghosts.
  /// Rank-local facts (an empty local spec, say) then prove nothing about
  /// the collective exchange -- this rank still serves its neighbours --
  /// so partial evaluation must not use them for redundancy.
  bool halo_asymmetric = false;
};

enum class StmtKind {
  Entry,
  Exit,
  Nop,
  Distribute,    ///< DISTRIBUTE array :: dist
  Assume,        ///< analysis-only: array's type matches `dist` (DCASE arm)
  Use,           ///< array reference point (where plausible sets are queried)
  ExchangeHalo,  ///< overlap-area exchange of `array`'s ghost regions
  CallUnknown,   ///< opaque call that may redistribute the named arrays
  CallProc,      ///< call of a declared procedure (interprocedural analysis)
};

struct Stmt {
  StmtKind kind = StmtKind::Nop;
  std::string array;                ///< Distribute / Assume / Exchange target
  AbstractDist dist;                ///< Distribute: new type; Assume: filter
  std::vector<std::string> arrays;  ///< Use / CallUnknown / CallProc actuals
  int proc = -1;                    ///< CallProc: procedure table index
  bool writes = false;              ///< Use: the reference may store into
                                    ///< the arrays (invalidates halo
                                    ///< freshness)
  bool reads_halo = false;          ///< Use: the reference reads the
                                    ///< arrays' overlap areas (a stencil),
                                    ///< so stale ghosts are a bug
  std::string label;                ///< diagnostic tag
};

class Program;

/// A procedure whose body is available to the compiler (Section 3.1:
/// reaching distributions are computed "both for declared ... arrays as
/// well as for formal subroutine arguments" by "intra- and inter-
/// procedural analysis").  Formals with a declared entry distribution
/// model explicitly distributed dummies (implicit redistribution at the
/// call); inherited formals (nullopt) accept the caller's distribution.
/// Vienna Fortran semantics: the formal's exit distribution is returned
/// to the actual argument.
struct ProcedureDecl {
  std::string name;
  struct Formal {
    std::string array;                  ///< name of the formal in `body`
    std::optional<AbstractDist> entry;  ///< declared dummy distribution
  };
  std::vector<Formal> formals;
  std::shared_ptr<const Program> body;  ///< formals declared as arrays
};

struct Node {
  int id = -1;
  Stmt stmt;
  std::vector<int> succs;
  std::vector<int> preds;
};

/// A DCASE construct recorded for partial evaluation: the branch node, the
/// selector names, the per-arm query lists (nullopt = implicit "*"), and
/// the entry node of each arm body.
struct DCaseInfo {
  int node = -1;
  std::vector<std::string> selectors;
  std::vector<std::vector<std::optional<query::TypePattern>>> arms;
  std::vector<int> arm_entries;
  bool has_default = false;
};

class Program {
 public:
  Program();

  void declare(ArrayInfo info);
  [[nodiscard]] const ArrayInfo* array(const std::string& name) const;
  [[nodiscard]] const std::vector<ArrayInfo>& arrays() const noexcept {
    return arrays_;
  }

  int add_node(Stmt s);
  void add_edge(int from, int to);

  [[nodiscard]] const Node& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int entry() const noexcept { return entry_; }
  [[nodiscard]] int exit() const noexcept { return exit_; }

  /// Finds the first node whose stmt.label equals `label` (test helper).
  [[nodiscard]] int find_label(const std::string& label) const;

  void record_dcase(DCaseInfo d) { dcases_.push_back(std::move(d)); }
  [[nodiscard]] const std::vector<DCaseInfo>& dcases() const noexcept {
    return dcases_;
  }

  /// Registers a procedure whose body is available for interprocedural
  /// analysis; returns its table index for CallProc statements.
  int add_procedure(ProcedureDecl p);
  [[nodiscard]] const ProcedureDecl& procedure(int idx) const {
    return procedures_.at(static_cast<std::size_t>(idx));
  }
  [[nodiscard]] std::size_t num_procedures() const noexcept {
    return procedures_.size();
  }

  /// Seals the program: connects the current builder tail to exit.  Called
  /// by ProgramBuilder::build.
  void seal(int tail);

 private:
  std::vector<ArrayInfo> arrays_;
  std::vector<Node> nodes_;
  std::vector<DCaseInfo> dcases_;
  std::vector<ProcedureDecl> procedures_;
  int entry_ = -1;
  int exit_ = -1;
};

/// Structured-programming builder producing Programs with well-formed
/// CFGs.  All control constructs nest through callbacks.
class ProgramBuilder {
 public:
  ProgramBuilder();

  ProgramBuilder& declare(ArrayInfo info);

  /// DISTRIBUTE array :: dist (use patterns with unknown parameters for
  /// runtime-valued expressions).
  ProgramBuilder& distribute(const std::string& array, AbstractDist dist);

  /// An array-reference program point; `label` names it for queries.
  ProgramBuilder& use(std::vector<std::string> arrays,
                      const std::string& label = "");

  /// An array-reference point that may store into the named arrays: a
  /// write invalidates any overlap-area freshness the arrays had.
  ProgramBuilder& write(std::vector<std::string> arrays,
                        const std::string& label = "");

  /// An array-reference point that reads the named arrays' overlap areas
  /// (a stencil access): reaching it with stale ghost regions is a bug
  /// the lint pass reports.
  ProgramBuilder& stencil_use(std::vector<std::string> arrays,
                              const std::string& label = "");

  /// An overlap-area (ghost) exchange of `array` (the runtime
  /// exchange_overlap call); `label` names it for partial evaluation.
  ProgramBuilder& exchange_halo(const std::string& array,
                                const std::string& label = "");

  /// A call that may redistribute the named arrays (worst case bounded by
  /// their RANGE attributes).
  ProgramBuilder& call_unknown(std::vector<std::string> arrays);

  /// Declares a procedure with an analysable body; returns its index.
  int declare_procedure(ProcedureDecl p);

  /// A call of a declared procedure binding `actuals` to its formals in
  /// order.
  ProgramBuilder& call_proc(int proc, std::vector<std::string> actuals);

  using BodyFn = std::function<void(ProgramBuilder&)>;

  /// if (...) then_body else else_body -- the condition is opaque.
  ProgramBuilder& if_else(const BodyFn& then_body,
                          const BodyFn& else_body = nullptr);

  /// An opaque-trip-count loop around `body`.
  ProgramBuilder& loop(const BodyFn& body);

  struct DCaseArm {
    std::vector<std::optional<query::TypePattern>> pats;
    BodyFn body;
  };

  /// SELECT DCASE (selectors) with the given arms; `default_body` adds a
  /// CASE DEFAULT arm.  Arm bodies see Assume-refined distribution sets.
  ProgramBuilder& dcase(std::vector<std::string> selectors,
                        std::vector<DCaseArm> arms,
                        const BodyFn& default_body = nullptr);

  [[nodiscard]] Program build();

 private:
  int append(Stmt s);

  Program p_;
  int cur_;
};

}  // namespace vf::compile
