// The diagnostics pass over the compile-layer analyses: the reaching-
// distribution facts (Section 3.1) and the partial-evaluation report exist
// to drive optimization, but the same facts prove *bugs* -- a stencil read
// on a path where the ghost regions are stale, a reference before any
// DISTRIBUTE associates a distribution, an exchange or DISTRIBUTE that
// provably moves nothing, a rank-local shortcut on a per-rank OVERLAP
// declaration, or DCASE arms whose data-motion sequences differ (the
// compile-time shadow of the runtime lockstep checker in vf/msg).
//
// The pass is pure: it consumes a Program plus its ReachingResult and
// PartialEvalReport and produces structured Diagnostic records; nothing is
// recomputed, so lint costs one linear walk over the CFG plus one
// reachability sweep per DCASE.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vf/compile/parteval.hpp"
#include "vf/compile/reaching.hpp"

namespace vf::compile {

enum class Severity {
  Note,     ///< stylistic / informational
  Warning,  ///< probable performance or synchronization hazard
  Error,    ///< a path exists on which the program reads garbage
};

enum class LintCode {
  /// A stencil use (Stmt::reads_halo) is reachable with halo_fresh false:
  /// some path writes, redistributes or calls out after the last exchange
  /// (or never exchanges at all), so the ghost regions may be stale.
  StaleHaloRead,
  /// A use is reachable before any distribution is associated (promoted
  /// from PartialEvalReport::use_before_distribution).
  UseBeforeDistribute,
  /// A DISTRIBUTE whose target provably already holds (promoted from
  /// PartialEvalReport::redundant_distributes).
  RedundantDistribute,
  /// An ExchangeHalo provably moving nothing (promoted from
  /// PartialEvalReport::redundant_halo_exchanges).
  RedundantHaloExchange,
  /// An ExchangeHalo on a per-rank (asymmetric) OVERLAP declaration whose
  /// *local* spec is empty: the tempting rank-local skip would desert
  /// wider-halo neighbours mid-collective and deadlock.
  AsymShortcutHazard,
  /// Two plausible arms of one DCASE have different DISTRIBUTE /
  /// ExchangeHalo sequences: if ranks ever disagree on the selector
  /// distributions they desynchronize on collectives.
  DCaseArmDivergence,
  /// A DISTRIBUTE that may violate the array's RANGE attribute (promoted
  /// from PartialEvalReport::possible_range_violations).
  PossibleRangeViolation,
};

[[nodiscard]] std::string to_string(Severity s);
[[nodiscard]] std::string to_string(LintCode c);

struct Diagnostic {
  Severity severity = Severity::Warning;
  LintCode code = LintCode::StaleHaloRead;
  int stmt_id = -1;     ///< CFG node the diagnostic anchors to
  std::string array;    ///< subject array ("" for whole-construct records)
  std::string message;  ///< human-readable, includes the stmt label if any

  [[nodiscard]] std::string to_string() const;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(LintCode c) const;
  /// True if a diagnostic with `code` anchored at `stmt_id` exists
  /// (any stmt when stmt_id < 0).
  [[nodiscard]] bool has(LintCode c, int stmt_id = -1) const;
  [[nodiscard]] std::string to_string() const;
};

/// Runs the diagnostics pass over precomputed analysis results.
[[nodiscard]] LintReport lint(const Program& p, const ReachingResult& r,
                              const PartialEvalReport& pe);

/// Convenience: analyses `p` (reaching + partial evaluation) and lints it.
[[nodiscard]] LintReport lint(const Program& p);

}  // namespace vf::compile
