// The reaching-distribution analysis (paper Section 3.1):
//
//   "The most important task in the analysis phase is solving the reaching
//    distribution problem: that is, the compiler must determine the range
//    of distribution types which may reach a specific array access in the
//    code ... We call the set of all such pairs which is valid for a
//    specific array at a specific position in the program the set of
//    plausible distributions."
//
// A forward may-analysis over the Program CFG.  The abstract domain per
// array is a bounded set of TypePatterns (widened to the wildcard when it
// overflows) plus an "undistributed" flag tracking whether the array may
// still lack a distribution (Section 2.3: access before association is
// illegal).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vf/compile/ir.hpp"
#include "vf/compile/pattern_intern.hpp"

namespace vf::compile {

/// The set of plausible distributions of one array at one program point.
///
/// Members are interned pattern handles (see pattern_intern.hpp):
/// membership tests, merges and the fixpoint's state comparisons key on
/// handle identity -- integer compares -- and never deep-compare
/// patterns.  Handles convert implicitly to `const query::TypePattern&`,
/// so pattern queries read through them unchanged.
///
/// Alongside the may-set of types, the set carries the array's declared
/// halo (OVERLAP) spec and a must-flag `halo_fresh`: whether the ghost
/// regions are known current on every path reaching this point (set by
/// ExchangeHalo, cleared by writes, DISTRIBUTE and opaque calls, ANDed at
/// joins).  Partial evaluation uses it to prove an exchange redundant.
struct DistSet {
  /// The array may reach this point without an associated distribution.
  bool undistributed = false;
  /// May-set of abstract distribution types (interned handles).
  std::vector<PatternHandle> types;
  /// The array's declared halo spec, if any (flows unchanged from the
  /// declaration; merged away if two paths ever disagree).
  std::optional<halo::HaloSpec> halo;
  /// MUST-flag: ghost regions are current on every path to this point.
  bool halo_fresh = false;
  /// MAY-flag: the declaration is per-rank (asymmetric), so `halo` is only
  /// this rank's local spec; spec-shape deductions (e.g. "empty spec =>
  /// exchange moves nothing") are unsound and partial evaluation skips
  /// them.  ORed at joins, copied wherever `halo` is copied.
  bool halo_asymmetric = false;

  /// Widening bound: sets larger than this collapse to the wildcard.
  static constexpr std::size_t kWidenLimit = 8;

  void add(const AbstractDist& d);
  void add(const PatternHandle& h);
  void merge(const DistSet& o);

  [[nodiscard]] bool is_widened() const;

  friend bool operator==(const DistSet&, const DistSet&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Abstract state: plausible set per declared array.
using State = std::map<std::string, DistSet>;

struct ReachingResult {
  /// State at the *entry* of each node (indexed by node id).
  std::vector<State> in;
  /// Number of fixpoint iterations (for the E8 bench).
  int iterations = 0;

  /// Plausible distributions of `array` immediately before `node`.
  [[nodiscard]] const DistSet& plausible(int node,
                                         const std::string& array) const;
};

/// Interprocedural summary of a declared procedure (Section 3.1's
/// inter-procedural analysis): for each formal argument, the set of
/// plausible distributions at procedure exit -- which Vienna Fortran
/// returns to the actual argument.
struct ProcedureSummary {
  std::vector<DistSet> exit_sets;  ///< one per formal
};

/// Computes the summary of one procedure: the body is analysed with each
/// formal's entry set taken from its declared dummy distribution, or the
/// wildcard for inherited formals (the summary is then sound for any
/// caller).
[[nodiscard]] ProcedureSummary summarize_procedure(const ProcedureDecl& p);

/// Analyses `p`; CallProc statements apply the callee's (memoized)
/// summary.  `entry_override`, when given, replaces the declaration-based
/// entry sets for the named arrays (used for procedure bodies).
[[nodiscard]] ReachingResult analyze_reaching(
    const Program& p, const State* entry_override = nullptr);

}  // namespace vf::compile
