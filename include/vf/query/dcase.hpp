// The DCASE construct and the IDT intrinsic (paper Section 2.5): control
// constructs that branch on the runtime distribution of arrays.
//
//   SELECT DCASE (B1, B2, B3)
//     CASE (BLOCK), (BLOCK), (CYCLIC(2), CYCLIC) : a1
//     CASE B1: (CYCLIC), B3: (BLOCK, *)          : a2
//     CASE DEFAULT                                : a4
//   END SELECT
//
// transcribes to
//
//   dcase({&B1, &B2, &B3})
//     .when({{p_block()}, {p_block()}, {p_cyclic(2), p_cyclic_any()}}, a1)
//     .when_named({{"B1", {p_cyclic_any()}},
//                  {"B3", {p_block(), any_dim()}}}, a2)
//     .otherwise(a4)
//     .run();
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vf/query/pattern.hpp"
#include "vf/rt/array_base.hpp"

namespace vf::query {

/// The IDT intrinsic function: tests the distribution type associated with
/// its argument (Section 2.5.2).  Throws NotDistributedError if the array
/// has no distribution.
[[nodiscard]] bool idt(const rt::DistArrayBase& a, const TypePattern& p);

/// IDT with the optional processor-section test: additionally requires the
/// array to be distributed to exactly the given section.
[[nodiscard]] bool idt(const rt::DistArrayBase& a, const TypePattern& p,
                       const dist::ProcessorSection& section);

class DCase {
 public:
  explicit DCase(std::vector<const rt::DistArrayBase*> selectors);

  /// Positional query list: pattern k applies to selector k.  A list
  /// shorter than the selector list gets implicit "*" queries for the
  /// remaining selectors.
  DCase& when(std::vector<TypePattern> positional,
              std::function<void()> action);

  /// Name-tagged query list: each query names its selector explicitly;
  /// order is irrelevant and selectors may be omitted (implicit "*").
  DCase& when_named(
      std::vector<std::pair<std::string, TypePattern>> tagged,
      std::function<void()> action);

  /// CASE DEFAULT.
  DCase& otherwise(std::function<void()> action);

  /// Evaluates the construct: conditions are checked sequentially and the
  /// first matching arm's action runs; at most one arm executes.  Returns
  /// the index of the executed arm, or -1 if no condition matched.
  /// Every selector must be associated with a distribution.
  ///
  /// Dispatch is memoized on the selectors' descriptor handles: re-running
  /// the construct while every selector still holds the same interned
  /// descriptor replays the previously matched arm (its action still
  /// runs) after rank-many pointer compares, with no pattern matching.
  int run() const;

  /// Memoized-dispatch hit counter (diagnostics and benchmarks).
  [[nodiscard]] std::uint64_t dispatch_hits() const noexcept {
    return dispatch_hits_;
  }

 private:
  struct Arm {
    bool is_default = false;
    std::vector<std::optional<TypePattern>> pats;  // one per selector
    std::function<void()> action;
  };

  [[nodiscard]] int selector_index(const std::string& name) const;

  std::vector<const rt::DistArrayBase*> selectors_;
  std::vector<Arm> arms_;

  // Dispatch memo: the arm matched the last time every selector held
  // these descriptor handles (invalidated by arm-list growth).
  mutable std::vector<dist::DistHandle> memo_handles_;
  mutable int memo_arm_ = -1;
  mutable std::size_t memo_arm_count_ = 0;
  mutable std::uint64_t dispatch_hits_ = 0;
};

/// Convenience entry point mirroring SELECT DCASE (A1, ..., Ar).
[[nodiscard]] inline DCase dcase(
    std::vector<const rt::DistArrayBase*> selectors) {
  return DCase(std::move(selectors));
}

}  // namespace vf::query
