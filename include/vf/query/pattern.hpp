// Distribution-type patterns: the query language of RANGE annotations,
// the DCASE construct and the IDT intrinsic (paper Sections 2.3 and 2.5).
//
// A pattern is a distribution expression in which the "*" symbol may stand
// for an entire type (the "don't care" symbol of RANGE), for the kind of a
// dimension, or for the parameter of an intrinsic (e.g. CYCLIC(*)).
//
// Patterns serve double duty as the abstract domain of the reaching-
// distribution analysis (Section 3.1): an abstract distribution value is a
// pattern describing the set of concrete types it may stand for, and
// may_match / must_match implement the corresponding abstract tests used
// for partial evaluation of queries.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "vf/dist/dist_type.hpp"

namespace vf::query {

/// Pattern for one dimension of a distribution type.
struct DimPattern {
  /// Required kind; nullopt means "*": any kind (including collapsed).
  std::optional<dist::DimDistKind> kind;
  /// Required intrinsic parameter (CYCLIC block length); nullopt matches
  /// any parameter.  Only meaningful for Cyclic.
  std::optional<dist::Index> param;

  friend bool operator==(const DimPattern&, const DimPattern&) = default;

  [[nodiscard]] bool matches(const dist::DimDist& d) const;
  [[nodiscard]] std::string to_string() const;
};

/// "*" for a dimension: matches any per-dimension distribution.
[[nodiscard]] DimPattern any_dim();
/// Matches BLOCK (the paper also writes BLOCK(*); block sizes always match).
[[nodiscard]] DimPattern p_block();
/// Matches CYCLIC(k) exactly.
[[nodiscard]] DimPattern p_cyclic(dist::Index k);
/// Matches CYCLIC(*): any block length.
[[nodiscard]] DimPattern p_cyclic_any();
/// Matches general block distributions (B_BLOCK / S_BLOCK).
[[nodiscard]] DimPattern p_gen_block();
/// Matches indirect (user-defined) distributions.
[[nodiscard]] DimPattern p_indirect();
/// Matches the elision symbol ":" (dimension not distributed).
[[nodiscard]] DimPattern p_col();

/// Pattern for a whole distribution type.
class TypePattern {
 public:
  TypePattern() = default;
  TypePattern(std::initializer_list<DimPattern> dims)
      : dims_(dims) {}
  explicit TypePattern(std::vector<DimPattern> dims) : dims_(std::move(dims)) {}

  /// The whole-type "don't care" symbol "*".
  static TypePattern wildcard() {
    TypePattern p;
    p.any_ = true;
    return p;
  }

  /// Exact pattern for a concrete distribution type (used when concrete
  /// types flow through the abstract analysis).
  static TypePattern exact(const dist::DistributionType& t);

  [[nodiscard]] bool is_wildcard() const noexcept { return any_; }
  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const std::vector<DimPattern>& dims() const noexcept {
    return dims_;
  }

  /// Runtime query: does the concrete type `t` match this pattern?
  [[nodiscard]] bool matches(const dist::DistributionType& t) const;

  /// Abstract test: may some concrete type described by `abstract` match
  /// this pattern?
  [[nodiscard]] bool may_match(const TypePattern& abstract) const;

  /// Abstract test: must every concrete type described by `abstract` match
  /// this pattern?
  [[nodiscard]] bool must_match(const TypePattern& abstract) const;

  friend bool operator==(const TypePattern&, const TypePattern&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  bool any_ = false;
  std::vector<DimPattern> dims_;
};

/// A RANGE annotation: the set of distribution types that may be associated
/// with a dynamic array during execution (paper Section 2.3).  An empty
/// range means "no restriction".
using RangeSpec = std::vector<TypePattern>;

/// True if `t` is allowed by the range (ranges are unions of patterns; an
/// empty range allows everything).
[[nodiscard]] bool range_allows(const RangeSpec& range,
                                const dist::DistributionType& t);

[[nodiscard]] std::string to_string(const RangeSpec& range);

}  // namespace vf::query
