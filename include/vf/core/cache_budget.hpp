// Byte-budget accounting shared by every bounded cache in the runtime:
// the Env-wide halo-plan cache, the per-array RedistPlan cache, and the
// PARTI schedule binding cache.  Each cache keeps its own recency
// structure (an LRU list or MRU-first vector) and consults its budget to
// decide *when* to evict; the budget itself only tracks bytes and
// traffic, so the policy reads the same at every site: charge on insert,
// credit on removal, evict from the cold end while the ceiling is
// exceeded.  Evicted entries rebuild transparently on next use, so a
// ceiling is a performance knob, never a correctness one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vf::core {

class CacheBudget {
 public:
  CacheBudget() = default;
  explicit CacheBudget(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  void set_max_bytes(std::size_t b) noexcept { max_bytes_ = b; }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return resident_;
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t inserts() const noexcept { return inserts_; }

  /// Charge a newly cached entry.
  void add(std::size_t bytes) noexcept {
    resident_ += bytes;
    ++inserts_;
  }
  /// Credit an entry dropped for a non-pressure reason (invalidation,
  /// sweep, clear): not counted as an eviction.
  void remove(std::size_t bytes) noexcept {
    resident_ = bytes > resident_ ? 0 : resident_ - bytes;
  }
  /// Credit an entry dropped to stay under the ceiling.
  void evict(std::size_t bytes) noexcept {
    remove(bytes);
    ++evictions_;
  }

  [[nodiscard]] bool over() const noexcept { return resident_ > max_bytes_; }
  /// Whether charging `incoming` more bytes would exceed the ceiling.
  [[nodiscard]] bool would_exceed(std::size_t incoming) const noexcept {
    return resident_ + incoming > max_bytes_;
  }

  /// Cache cleared: residency and traffic counters both drop, so a
  /// later reader never sees ratios describing entries that no longer
  /// exist.  The ceiling is configuration and survives.
  void reset() noexcept {
    resident_ = 0;
    evictions_ = 0;
    inserts_ = 0;
  }

 private:
  std::size_t max_bytes_ = ~std::size_t{0};  ///< unlimited until set
  std::size_t resident_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t inserts_ = 0;
};

/// Bytes held by a vector's heap allocation (capacity, not size: that is
/// what the allocator actually handed out).
template <typename T>
[[nodiscard]] inline std::size_t vector_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

}  // namespace vf::core
