// Failure containment for the virtual machine: the abort fence, the recv
// watchdog, and the seeded fault-injection plan.
//
// The paper's SPMD model assumes every processor executes the same
// communication sequence; its worst failure mode is therefore a rank-local
// error mid-collective that leaves every peer blocked forever.  This header
// gives the machine three layers of defence:
//
//   * AbortFence -- a machine-wide abort flag every blocking primitive
//     (Mailbox::pop, Machine::barrier_wait and everything built on them)
//     checks.  The first rank to fail trips the fence; every other rank
//     wakes out of its blocking call and throws a structured RankAbort
//     naming the origin rank, so run_spmd can join everyone and rethrow
//     the ORIGINAL error with a per-rank report.
//   * Recv watchdog -- an optional machine deadline on blocking waits.  A
//     rank blocked past the deadline snapshots every rank's blocked-on
//     state (src/tag or barrier generation) into a deadlock report and
//     trips the fence: count-mismatch bugs become named in-process
//     failures instead of external test timeouts.
//   * FaultPlan -- a seeded per-Machine fault injector on the delivery
//     path (drop / delay / duplicate / truncate / bit-flip), paired with
//     lightweight frame integrity (per-link sequence numbers on every
//     message, checksums on control messages and -- whenever a plan is
//     active -- on data messages too) so every injected fault is detected,
//     reported and fence-propagated rather than hanging the machine.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace vf::msg {

/// The structured abort error: thrown by every blocking primitive once the
/// fence is tripped, and by the detection sites (frame integrity, watchdog,
/// Context::abort) that trip it.  `origin_rank` is the rank the failure
/// originated on; `reason` is the origin's error text or deadlock report.
struct RankAbort : std::runtime_error {
  RankAbort(int origin, const std::string& why)
      : std::runtime_error("rank " + std::to_string(origin) +
                           " aborted the machine: " + why),
        origin_rank(origin),
        reason(why) {}

  int origin_rank;
  std::string reason;
};

/// Fault classes the injector can apply to one delivery.
enum class FaultKind : int {
  None = 0,
  Drop,       ///< the frame never reaches the destination mailbox
  Delay,      ///< the frame is parked in flight (not delivered until reset)
  Duplicate,  ///< the frame is delivered twice (replayed link sequence)
  Truncate,   ///< the payload is cut short; the checksum still covers the
              ///< original bytes, so the receiver detects the loss
  BitFlip,    ///< one payload bit is flipped after checksumming
};

[[nodiscard]] const char* to_string(FaultKind k);

/// A seeded per-Machine fault-injection plan, consulted on every delivery.
/// Two modes:
///   * one-shot (`rate == 0`): inject `kind` on the `nth` delivery the
///     machine performs (0-based, machine-wide order);
///   * rate (`rate > 0`): inject `kind` on each delivery independently
///     with probability `rate`, decided by a hash of (seed, src, dest,
///     link seq) -- deterministic per link position regardless of thread
///     interleaving.
struct FaultPlan {
  FaultKind kind = FaultKind::None;
  std::uint64_t nth = 0;
  double rate = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool active() const noexcept {
    return kind != FaultKind::None;
  }
};

/// FNV-1a 64-bit payload checksum: the lightweight frame-integrity hash.
[[nodiscard]] std::uint64_t frame_checksum(
    std::span<const std::byte> payload) noexcept;

/// splitmix64 finalizer: the deterministic hash behind rate-mode fault
/// decisions and bit-flip positions.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// What one rank of a finished (failed) SPMD run did.
struct RankFailure {
  int rank = -1;
  bool failed = false;
  /// Origin rank of the RankAbort this rank threw, or -1 if it threw a
  /// non-fence error (the original failure) or completed.
  int abort_origin = -1;
  std::string what;
};

/// The per-rank report run_spmd leaves on the Machine after a failed run:
/// which rank originated the failure, why, and what every other rank threw
/// (or that it completed).
struct FailureReport {
  bool any_failed = false;
  int origin_rank = -1;
  std::string reason;
  std::vector<RankFailure> ranks;

  [[nodiscard]] std::string to_string() const;
};

/// The machine-wide abort fence plus the blocked-state registry the recv
/// watchdog snapshots.  One per Machine; thread-safe.
class AbortFence {
 public:
  explicit AbortFence(int nprocs);

  /// True once any rank tripped the fence.  Checked (one acquire load) by
  /// every blocking primitive before and after each wait.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  /// Trips the fence (first caller wins; later calls are no-ops) and
  /// wakes every registered blocking primitive.  Returns true iff this
  /// call tripped it.
  bool trip(int origin, std::string reason);

  /// The RankAbort a blocking primitive throws after waking on a tripped
  /// fence (precondition: aborted()).
  [[nodiscard]] RankAbort make_abort() const;

  [[nodiscard]] int origin() const;
  [[nodiscard]] std::string reason() const;

  /// Cumulative trip count (0 across any healthy run -- the bench
  /// fence_trips counter).
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  /// Clears the abort state (not the cumulative trip counter).  Only safe
  /// with no rank running -- run_spmd calls it after joining a failed run.
  void reset();

  /// Registers a blocking primitive's (mutex, condvar) pair so trip() can
  /// wake it.  Registration happens at Machine construction only.
  void register_wake(std::mutex* mu, std::condition_variable* cv);

  // ---- recv watchdog -----------------------------------------------------

  /// Arms (or, with zero, disarms) the deadline on blocking waits.
  void set_watchdog(std::chrono::milliseconds d) noexcept {
    watchdog_ms_.store(d.count(), std::memory_order_relaxed);
  }
  [[nodiscard]] std::chrono::milliseconds watchdog() const noexcept {
    return std::chrono::milliseconds(
        watchdog_ms_.load(std::memory_order_relaxed));
  }

  // ---- blocked-state registry --------------------------------------------
  // Each blocking primitive records what its rank is blocked on; the
  // watchdog's deadlock report is a snapshot of these.  Relaxed atomics:
  // the report is diagnostic, a torn read across fields is acceptable.

  void enter_recv(int rank, int src, int tag) noexcept;
  void enter_barrier(int rank, std::uint64_t gen) noexcept;
  void leave(int rank) noexcept;

  /// The deadlock report a watchdog expiry produces: every rank's
  /// blocked-on state plus any frames parked by fault injection.
  [[nodiscard]] std::string deadlock_report(int expired_rank) const;

  /// Fault-injection bookkeeping surfaced in deadlock reports.
  void note_parked(std::uint64_t n) noexcept {
    parked_.fetch_add(n, std::memory_order_relaxed);
  }
  void clear_parked() noexcept {
    parked_.store(0, std::memory_order_relaxed);
  }

 private:
  enum class BlockKind : int { None = 0, Recv = 1, Barrier = 2 };

  struct alignas(64) BlockedState {
    std::atomic<int> kind{0};
    std::atomic<int> src{0};
    std::atomic<int> tag{0};
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::int64_t> since_ms{0};  ///< steady-clock entry stamp
  };

  std::atomic<bool> aborted_{false};
  std::atomic<std::uint64_t> trips_{0};
  mutable std::mutex mu_;
  int origin_ = -1;
  std::string reason_;
  std::vector<std::pair<std::mutex*, std::condition_variable*>> wakes_;
  std::atomic<std::int64_t> watchdog_ms_{0};
  std::vector<BlockedState> blocked_;
  std::atomic<std::uint64_t> parked_{0};
};

}  // namespace vf::msg
