// Shared exchange scratch: the per-replay buffer arena behind every
// executor hot path (PARTI schedule gather/scatter, cached DISTRIBUTE
// replay, halo exchange).
//
// The inspector/executor argument (paper Section 3.2, PARTI [15]) only
// holds if replaying a schedule or plan costs pure data motion.  The
// run-based executors already move data with memcpy into exactly-sized
// buffers with pre-agreed counts -- but sizing those buffers with fresh
// std::vector<T>s on every call re-introduces a heap allocation per peer
// per replay.  An ExchangeScratch owns those buffers persistently:
//
//   * type-erased: buffers are raw byte storage, grouped into one
//     ExchangeLane per element size, so a single schedule can alternate
//     double and int arrays through its binding cache and each element
//     size keeps its own steady-state capacity;
//   * prepare() sizes the per-peer send/recv buffers for one exchange.
//     std::vector keeps capacity across shrinks, so once a lane has seen
//     the largest exchange of its replay loop, every further prepare()
//     is allocation-free;
//   * instrumented: the arena counts prepare() calls and actual capacity
//     growths (grow_allocs).  "Steady state" is measurable: after
//     warmup, a healthy replay loop shows grow_allocs == 0 -- the
//     allocs_per_replay counter bench_parti/bench_pic emit and CI gates.
//
// The lane's receive buffers pair with Context::alltoallv_known_into,
// which fills caller-owned storage instead of returning freshly
// allocated vectors -- completing on the receive side the reuse story
// PR 3's send-side-only transport variant started.  (The simulated
// transport still copies payloads through mailboxes internally; the
// counters measure executor-side buffer allocations, which is what the
// inspector/executor amortization argument is about.)
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "vf/msg/transport.hpp"

namespace vf::msg {

class ExchangeScratch;

/// One element-size lane of an ExchangeScratch arena: per-peer send and
/// receive byte buffers plus a per-peer cursor array (for run-walking
/// pack/unpack loops).  Obtained via ExchangeScratch::lane(); references
/// stay valid for the lifetime of the arena.
class ExchangeLane {
 public:
  [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
  [[nodiscard]] int peers() const noexcept {
    return static_cast<int>(send_.size());
  }

  /// Sizes the per-peer buffers for one exchange: send_counts[d] /
  /// recv_counts[s] are ELEMENT counts (the pre-agreed counts of an
  /// alltoallv_known-style exchange; both vectors must have equal length,
  /// one entry per rank).  Buffer contents are unspecified afterwards --
  /// the caller packs the send side and the transport fills the receive
  /// side.  Capacity is kept across calls, so a repeat exchange of the
  /// same (or smaller) geometry performs no heap allocation.
  void prepare(std::span<const std::uint64_t> send_counts,
               std::span<const std::uint64_t> recv_counts);

  /// Typed views of one peer's buffers (sized by the last prepare()).
  /// The view's element size must be the lane's: mixing lanes and types
  /// would silently reinterpret bytes (asserted in debug builds).
  template <typename T>
  [[nodiscard]] std::span<T> send(int peer) noexcept {
    check_type<T>();
    assert(sizeof(T) == elem_size_);
    auto& b = send_[static_cast<std::size_t>(peer)];
    return {reinterpret_cast<T*>(b.data()), b.size() / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> recv(int peer) const noexcept {
    check_type<T>();
    assert(sizeof(T) == elem_size_);
    const auto& b = recv_[static_cast<std::size_t>(peer)];
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }

  /// Raw byte views (what the transport reads/writes).
  [[nodiscard]] std::span<const std::byte> send_bytes(int peer) const noexcept {
    return send_[static_cast<std::size_t>(peer)];
  }
  [[nodiscard]] std::span<std::byte> recv_bytes(int peer) noexcept {
    return recv_[static_cast<std::size_t>(peer)];
  }

  /// Per-peer element cursors, zeroed by prepare(): scratch for the
  /// run-walking pack/unpack loops (replaces the per-call cursor vectors
  /// executors used to allocate).
  [[nodiscard]] std::span<std::size_t> cursors() noexcept { return cursors_; }

  /// Internal (Context::begin_exchange): remembers that this lane's send
  /// buffers are published to `tx` under `tag` until the matching
  /// end_exchange retires them.  If the lane is destroyed or re-prepared
  /// with the publication outstanding -- a rank unwinding out of a
  /// split-phase exchange -- the publication is withdrawn first, so no
  /// peer is left reading freed memory.  The transport must outlive the
  /// pending window; Machine keeps its transports for its own lifetime.
  void note_published(Transport* tx, int rank, int tag) noexcept {
    pending_tx_ = tx;
    pending_rank_ = rank;
    pending_tag_ = tag;
  }
  /// Internal (Context::end_exchange): the exchange completed (or the
  /// transport already withdrew on its abort path); nothing is pending.
  void note_retired() noexcept { pending_tx_ = nullptr; }

  ~ExchangeLane() { abandon_pending(); }

 private:
  friend class ExchangeScratch;
  ExchangeLane(ExchangeScratch* owner, std::size_t elem_size)
      : owner_(owner), elem_size_(elem_size) {}

  void abandon_pending() noexcept {
    if (pending_tx_ != nullptr) {
      pending_tx_->withdraw(pending_rank_, pending_tag_);
      pending_tx_ = nullptr;
    }
  }

  template <typename T>
  static void check_type() noexcept {
    static_assert(std::is_trivially_copyable_v<T>,
                  "exchange scratch holds trivially copyable elements only");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned element types are not supported");
  }

  /// resize() that records an arena-level grow_alloc when the buffer's
  /// remembered capacity is insufficient (i.e. the resize heap-allocates).
  void grow_resize(std::vector<std::byte>& b, std::size_t n);

  ExchangeScratch* owner_;
  std::size_t elem_size_;
  std::vector<std::vector<std::byte>> send_;
  std::vector<std::vector<std::byte>> recv_;
  std::vector<std::size_t> cursors_;

  // In-flight publication of the send buffers (split-phase window
  // between begin_exchange and end_exchange); see note_published.
  Transport* pending_tx_ = nullptr;
  int pending_rank_ = -1;
  int pending_tag_ = -1;
};

/// A small arena of ExchangeLanes keyed by element size, plus the
/// steady-state instrumentation counters.  One arena per replayable
/// executor owner: each parti::Schedule has one, and each DistArray has
/// one shared by DISTRIBUTE replay and halo exchange.  Per-rank objects;
/// no synchronization.
class ExchangeScratch {
 public:
  ExchangeScratch() = default;
  // Lanes carry a back-pointer to their arena (for the counters), so a
  // move must re-point them; a copy starts empty -- scratch is transient
  // replay state that rebuilds itself on first use, and sharing or
  // duplicating warmed buffers across owners has no meaning.
  ExchangeScratch(const ExchangeScratch&) noexcept {}
  ExchangeScratch& operator=(const ExchangeScratch&) noexcept {
    stats_ = Stats{};
    lanes_.clear();
    return *this;
  }
  ExchangeScratch(ExchangeScratch&& o) noexcept
      : stats_(o.stats_), lanes_(std::move(o.lanes_)) {
    adopt_lanes();
    o.stats_ = Stats{};
  }
  ExchangeScratch& operator=(ExchangeScratch&& o) noexcept {
    if (this != &o) {
      stats_ = o.stats_;
      lanes_ = std::move(o.lanes_);
      adopt_lanes();
      o.stats_ = Stats{};
    }
    return *this;
  }

  struct Stats {
    /// prepare() calls routed through this arena (== executor replays
    /// that used the facility).
    std::uint64_t prepares = 0;
    /// Heap allocations performed by the facility: lane creation plus
    /// every buffer capacity growth.  A warmed-up replay loop holds this
    /// at zero -- the allocs_per_replay == 0 contract CI gates.
    std::uint64_t grow_allocs = 0;
  };

  /// The lane for `elem_size`, created on first use.  Lanes are few (one
  /// per element size ever exchanged), so lookup is a linear scan.
  [[nodiscard]] ExchangeLane& lane(std::size_t elem_size) {
    for (const auto& l : lanes_) {
      if (l->elem_size_ == elem_size) return *l;
    }
    if (elem_size == 0) {
      throw std::invalid_argument("ExchangeScratch: zero element size");
    }
    ++stats_.grow_allocs;  // lane construction is itself an allocation
    lanes_.push_back(
        std::unique_ptr<ExchangeLane>(new ExchangeLane(this, elem_size)));
    return *lanes_.back();
  }

  [[nodiscard]] std::size_t n_lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

 private:
  friend class ExchangeLane;

  void adopt_lanes() noexcept {
    for (const auto& l : lanes_) l->owner_ = this;
  }

  Stats stats_;
  std::vector<std::unique_ptr<ExchangeLane>> lanes_;
};

inline void ExchangeLane::grow_resize(std::vector<std::byte>& b,
                                      std::size_t n) {
  if (b.capacity() < n) ++owner_->stats_.grow_allocs;
  b.resize(n);
}

inline void ExchangeLane::prepare(std::span<const std::uint64_t> send_counts,
                                  std::span<const std::uint64_t> recv_counts) {
  if (send_counts.size() != recv_counts.size()) {
    throw std::invalid_argument(
        "ExchangeLane::prepare: send/recv count vectors differ in length");
  }
  // Re-preparing over an abandoned split-phase exchange (the caller
  // caught the abort and reuses the lane): reclaim the published buffers
  // before resizing them out from under a peer.
  abandon_pending();
  ++owner_->stats_.prepares;
  const std::size_t np = send_counts.size();
  if (send_.capacity() < np) ++owner_->stats_.grow_allocs;
  send_.resize(np);
  if (recv_.capacity() < np) ++owner_->stats_.grow_allocs;
  recv_.resize(np);
  if (cursors_.capacity() < np) ++owner_->stats_.grow_allocs;
  cursors_.assign(np, 0);
  for (std::size_t p = 0; p < np; ++p) {
    grow_resize(send_[p], static_cast<std::size_t>(send_counts[p]) *
                              elem_size_);
    grow_resize(recv_[p], static_cast<std::size_t>(recv_counts[p]) *
                              elem_size_);
  }
}

}  // namespace vf::msg
