// The virtual distributed-memory machine.
//
// This is the substrate substitution documented in DESIGN.md section 5: the
// paper ran on Intel iPSC-class hardware; we run P virtual processors as P
// host threads, each with private local memory (whatever the per-rank code
// allocates) and a message-passing fabric with buffered sends.  All
// communication is metered per rank (CommStats) and priced by a CostModel,
// so the experiments can report machine-independent message counts/volumes
// as well as modeled time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "vf/msg/cost_model.hpp"
#include "vf/msg/mailbox.hpp"

namespace vf::msg {

/// Shared state of a P-processor virtual machine.  Construct once, then run
/// SPMD programs on it with run_spmd() (see spmd.hpp).  Thread-safe.
class Machine {
 public:
  /// Creates a machine with `nprocs` virtual processors.  nprocs >= 1.
  explicit Machine(int nprocs, CostModel cm = {});

  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cm_; }

  [[nodiscard]] Mailbox& mailbox(int rank);
  [[nodiscard]] CommStats& stats(int rank);

  /// Sum of all per-rank statistics.
  [[nodiscard]] CommStats total_stats() const;

  /// Maximum over ranks of modeled communication time -- the machine-level
  /// communication critical path under the simple model where each rank's
  /// traffic serializes at its own network interface.
  [[nodiscard]] double max_rank_modeled_us() const;

  void reset_stats();

  /// Sense-reversing barrier across all nprocs() ranks.
  void barrier_wait();

 private:
  int nprocs_;
  CostModel cm_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  // Stats are padded to their own cache lines: every send bumps the
  // sender's counters and ranks run concurrently.
  struct alignas(64) PaddedStats {
    CommStats s;
  };
  std::vector<PaddedStats> stats_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
};

}  // namespace vf::msg
