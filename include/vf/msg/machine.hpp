// The virtual distributed-memory machine.
//
// This is the substrate substitution documented in DESIGN.md section 5: the
// paper ran on Intel iPSC-class hardware; we run P virtual processors as P
// host threads, each with private local memory (whatever the per-rank code
// allocates) and a message-passing fabric with buffered sends.  All
// communication is metered per rank (CommStats) and priced by a CostModel,
// so the experiments can report machine-independent message counts/volumes
// as well as modeled time.
//
// The machine also owns the failure-containment layer (fault.hpp): an abort
// fence every blocking primitive checks, an optional recv watchdog, and a
// seeded fault-injection plan applied on the single delivery path deliver().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "vf/msg/cost_model.hpp"
#include "vf/msg/fault.hpp"
#include "vf/msg/lockstep.hpp"
#include "vf/msg/mailbox.hpp"
#include "vf/msg/transport.hpp"

namespace vf::msg {

/// Shared state of a P-processor virtual machine.  Construct once, then run
/// SPMD programs on it with run_spmd() (see spmd.hpp).  Thread-safe, and
/// reusable after a failed run: run_spmd() calls reset_failure_state() once
/// every rank has been joined.
class Machine {
 public:
  /// Creates a machine with `nprocs` virtual processors.  nprocs >= 1.
  ///
  /// `transport` selects how counted exchanges (alltoallv_known_into and
  /// the split-phase begin/end_exchange pair) move lane buffers:
  ///
  ///   * TransportKind::Mailbox (default) -- every payload serializes
  ///     into a mailbox frame through deliver(), carrying the full
  ///     failure-containment stack (per-link sequence numbers, checksums,
  ///     fault injection);
  ///   * TransportKind::SharedMemory -- counted exchanges hand lane
  ///     buffers off pointer-wise between rank threads (an on-node halo
  ///     exchange is two memcpys, no frame serialization).  All OTHER
  ///     traffic still rides deliver(), and the zero-copy rendezvous is
  ///     fence-registered and watchdog-aware, so aborts and deadlock
  ///     reports work unchanged.
  ///
  /// The default comes from the VF_TRANSPORT environment variable
  /// ("mailbox" | "shm"; unset means mailbox) -- the switch CI's
  /// transport-matrix job flips to run the whole suite over both.  Both
  /// transports are constructed up front; set_transport() swaps between
  /// them at any point with no SPMD run in flight.
  explicit Machine(int nprocs, CostModel cm = {},
                   TransportKind transport = default_transport_kind());

  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cm_; }

  [[nodiscard]] Mailbox& mailbox(int rank);

  /// Rank `rank`'s own counters, bumped by that rank's thread without
  /// synchronization on the send hot path.  The machine-wide accessors
  /// (total_stats, max_rank_modeled_us, reset_stats) are safe from
  /// outside a run; from INSIDE an SPMD body they are safe only when
  /// bracketed by barriers -- the leading barrier orders every rank's
  /// prior traffic before the access, the trailing barrier holds peers
  /// back until it completes, and the barrier's own collectives count is
  /// taken under the barrier lock precisely so this idiom stays
  /// race-free (see barrier_wait).
  [[nodiscard]] CommStats& stats(int rank);

  /// The active counted-exchange transport (see the constructor docs).
  [[nodiscard]] Transport& transport() noexcept { return *active_transport_; }
  [[nodiscard]] TransportKind transport_kind() const noexcept {
    return active_transport_->kind();
  }
  /// Switches the active transport.  Only safe with no SPMD run in
  /// flight; in-flight split-phase exchanges must complete under the
  /// transport they began on.
  void set_transport(TransportKind k) noexcept;

  /// Sum of all per-rank statistics.  Serialized under the barrier lock;
  /// see stats() for when a machine-wide read is safe.
  [[nodiscard]] CommStats total_stats() const;

  /// Maximum over ranks of modeled communication time -- the machine-level
  /// communication critical path under the simple model where each rank's
  /// traffic serializes at its own network interface.
  [[nodiscard]] double max_rank_modeled_us() const;

  void reset_stats();

  /// The single delivery path: frames the payload (per-link sequence
  /// number; checksum on control messages always and on data messages when
  /// a fault plan is active), consults the fault plan, and pushes into the
  /// destination mailbox.  Called on the sending rank's thread; throws
  /// RankAbort if the push detects a frame-integrity violation.
  void deliver(int src, int dest, int tag, bool ctl,
               std::vector<std::byte> payload);

  /// Sense-reversing barrier across all nprocs() ranks.  `rank` (when >= 0)
  /// is recorded in the blocked-state registry for watchdog reports.
  /// Throws RankAbort once the fence trips, or on watchdog expiry.
  void barrier_wait(int rank = -1);

  // ---- failure containment ------------------------------------------------

  [[nodiscard]] AbortFence& fence() noexcept { return fence_; }
  [[nodiscard]] const AbortFence& fence() const noexcept { return fence_; }

  /// Arms (zero disarms) the recv watchdog: the deadline on every blocking
  /// receive and barrier wait.  Set while no SPMD run is in flight.
  void set_recv_watchdog(std::chrono::milliseconds d) noexcept {
    fence_.set_watchdog(d);
  }

  /// Cumulative fence trips (0 across any healthy run).
  [[nodiscard]] std::uint64_t fence_trips() const noexcept {
    return fence_.trips();
  }

  /// Arms (or disarms) the lockstep checker: every collective folds an
  /// op signature into a per-rank hash chain and cross-checks its peers'
  /// records, so collective order / count divergence surfaces
  /// deterministically as a LockstepMismatch naming the first diverging
  /// op instead of a watchdog timeout.  Defaults to the VF_LOCKSTEP
  /// environment variable ("1"/"on" arms it).  Set while no SPMD run is
  /// in flight.
  void set_lockstep_check(bool on) { lockstep_.set_enabled(on); }
  [[nodiscard]] bool lockstep_check() const noexcept {
    return lockstep_.enabled();
  }
  [[nodiscard]] LockstepChecker& lockstep() noexcept { return lockstep_; }

  /// Installs a fault-injection plan (FaultKind::None clears it) and
  /// rewinds the delivery / injected-fault counters.  Set while no SPMD
  /// run is in flight.
  void set_fault_plan(const FaultPlan& plan) noexcept;
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  /// Machine-wide deliveries performed since the last set_fault_plan()
  /// (the coordinate space of FaultPlan::nth).
  [[nodiscard]] std::uint64_t deliveries() const noexcept {
    return deliveries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  /// Clears all failure state -- fence, queued and parked frames, link
  /// sequence numbers, barrier arrival count -- so the machine can run
  /// again after an aborted SPMD run.  Only safe with no rank running.
  void reset_failure_state();

  /// The per-rank report of the most recent failed run_spmd() on this
  /// machine (FailureReport::any_failed == false if the last run, or no
  /// run yet, completed cleanly).
  [[nodiscard]] FailureReport last_failure_report() const;
  void set_last_failure_report(FailureReport r);

 private:
  int nprocs_;
  CostModel cm_;
  AbortFence fence_;  // before boxes_: mailboxes register wakes with it
  LockstepChecker lockstep_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  // Both transports live for the machine's lifetime (the shared-memory
  // one registers fence wake-ups at construction, which cannot be
  // undone); switching only swaps the active pointer.
  std::unique_ptr<Transport> mailbox_transport_;
  std::unique_ptr<Transport> shm_transport_;
  Transport* active_transport_ = nullptr;

  // Stats are padded to their own cache lines: every send bumps the
  // sender's counters and ranks run concurrently.
  struct alignas(64) PaddedStats {
    CommStats s;
  };
  std::vector<PaddedStats> stats_;

  // mutable: the machine-wide stats readers (const) serialize against the
  // barrier's own collectives bump under this lock.
  mutable std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  // Sender-side per-link sequence counters, indexed src * nprocs + dest.
  // Row `src` is touched only by rank src's thread during a run; reset
  // only happens with no rank running.
  std::vector<std::uint64_t> link_seq_;

  FaultPlan plan_;  // written only while no run is in flight
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> faults_injected_{0};

  struct ParkedFrame {
    int dest;
    Message m;
  };
  std::mutex parked_mu_;
  std::vector<ParkedFrame> parked_;  // frames held in flight by Delay faults

  mutable std::mutex report_mu_;
  FailureReport report_;
};

}  // namespace vf::msg
