// Communication cost model and statistics for the virtual
// distributed-memory machine.
//
// The paper (Section 4) argues about distribution choice in terms of the
// per-message startup overhead and the per-byte cost of the target machine
// ("given the startup overhead and cost per byte of each message of the
// target machine, the ratio N/p will determine the most appropriate
// distribution").  We make those two constants explicit so experiments can
// sweep them, and we meter every transfer so that the analytic claims of
// the paper can be checked against observed message counts and volumes.
#pragma once

#include <cstdint>
#include <string>

namespace vf::msg {

/// Linear (postal) communication cost model: a message of s bytes costs
/// `alpha_us + beta_us_per_byte * s` microseconds of modeled time.
/// Defaults approximate an early-1990s hypercube (Intel iPSC/860-class):
/// ~70us startup, ~2.8MB/s sustained point-to-point bandwidth.
struct CostModel {
  double alpha_us = 70.0;            ///< per-message startup latency
  double beta_us_per_byte = 0.36;    ///< per-byte transfer cost

  /// Modeled cost of a single message of `bytes` payload bytes.
  [[nodiscard]] double message_us(std::uint64_t bytes) const noexcept {
    return alpha_us + beta_us_per_byte * static_cast<double>(bytes);
  }
};

/// Communication counters kept per virtual processor.
///
/// Data traffic (payload of user-level sends) is counted separately from
/// control traffic (count exchanges inside collectives such as the
/// all-to-all used by redistribution) so that experiments can report the
/// quantity the paper reasons about -- data messages -- while still
/// accounting for the full protocol cost.
struct CommStats {
  std::uint64_t data_messages = 0;  ///< point-to-point payload messages sent
  std::uint64_t data_bytes = 0;     ///< payload bytes sent
  std::uint64_t ctl_messages = 0;   ///< control messages sent (collective plumbing)
  std::uint64_t ctl_bytes = 0;      ///< control bytes sent
  std::uint64_t collectives = 0;    ///< collective operations entered

  CommStats& operator+=(const CommStats& o) noexcept {
    data_messages += o.data_messages;
    data_bytes += o.data_bytes;
    ctl_messages += o.ctl_messages;
    ctl_bytes += o.ctl_bytes;
    collectives += o.collectives;
    return *this;
  }

  friend CommStats operator+(CommStats a, const CommStats& b) noexcept {
    a += b;
    return a;
  }

  friend bool operator==(const CommStats&, const CommStats&) = default;

  /// Total modeled communication time in microseconds under `cm`,
  /// counting both data and control traffic.
  [[nodiscard]] double modeled_us(const CostModel& cm) const noexcept {
    const auto msgs =
        static_cast<double>(data_messages) + static_cast<double>(ctl_messages);
    const auto bytes =
        static_cast<double>(data_bytes) + static_cast<double>(ctl_bytes);
    return cm.alpha_us * msgs + cm.beta_us_per_byte * bytes;
  }

  /// Modeled time of the data traffic only (the quantity Section 4 of the
  /// paper reasons about).
  [[nodiscard]] double modeled_data_us(const CostModel& cm) const noexcept {
    return cm.alpha_us * static_cast<double>(data_messages) +
           cm.beta_us_per_byte * static_cast<double>(data_bytes);
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace vf::msg
