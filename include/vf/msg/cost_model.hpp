// Communication cost model and statistics for the virtual
// distributed-memory machine.
//
// The paper (Section 4) argues about distribution choice in terms of the
// per-message startup overhead and the per-byte cost of the target machine
// ("given the startup overhead and cost per byte of each message of the
// target machine, the ratio N/p will determine the most appropriate
// distribution").  We make those two constants explicit so experiments can
// sweep them, and we meter every transfer so that the analytic claims of
// the paper can be checked against observed message counts and volumes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vf::msg {

/// Linear (postal) communication cost model: a message of s bytes costs
/// `alpha_us + beta_us_per_byte * s` microseconds of modeled time.
/// Defaults approximate an early-1990s hypercube (Intel iPSC/860-class):
/// ~70us startup, ~2.8MB/s sustained point-to-point bandwidth.
struct CostModel {
  double alpha_us = 70.0;            ///< per-message startup latency
  double beta_us_per_byte = 0.36;    ///< per-byte transfer cost

  /// Modeled cost of a single message of `bytes` payload bytes.
  [[nodiscard]] double message_us(std::uint64_t bytes) const noexcept {
    return alpha_us + beta_us_per_byte * static_cast<double>(bytes);
  }
};

/// Communication counters kept per virtual processor.
///
/// Data traffic (payload of user-level sends) is counted separately from
/// control traffic (count exchanges inside collectives such as the
/// all-to-all used by redistribution) so that experiments can report the
/// quantity the paper reasons about -- data messages -- while still
/// accounting for the full protocol cost.
struct CommStats {
  std::uint64_t data_messages = 0;  ///< point-to-point payload messages sent
  std::uint64_t data_bytes = 0;     ///< payload bytes sent
  std::uint64_t ctl_messages = 0;   ///< control messages sent (collective plumbing)
  std::uint64_t ctl_bytes = 0;      ///< control bytes sent
  std::uint64_t collectives = 0;    ///< collective operations entered

  /// Per-destination data traffic (payload messages / bytes sent to each
  /// peer).  Sized lazily to the highest destination rank seen, so a rank
  /// that never sends carries no per-peer storage.  The skew detector and
  /// `bench_skew` read real per-link volumes from here instead of
  /// re-deriving them from plan counts.
  std::vector<std::uint64_t> peer_messages;
  std::vector<std::uint64_t> peer_bytes;

  /// Record one data message of `bytes` payload bytes sent to `dest`.
  void add_peer(int dest, std::uint64_t bytes) {
    const auto need = static_cast<std::size_t>(dest) + 1;
    if (peer_messages.size() < need) {
      peer_messages.resize(need, 0);
      peer_bytes.resize(need, 0);
    }
    peer_messages[static_cast<std::size_t>(dest)] += 1;
    peer_bytes[static_cast<std::size_t>(dest)] += bytes;
  }

  CommStats& operator+=(const CommStats& o) noexcept {
    data_messages += o.data_messages;
    data_bytes += o.data_bytes;
    ctl_messages += o.ctl_messages;
    ctl_bytes += o.ctl_bytes;
    collectives += o.collectives;
    merge_peer(peer_messages, o.peer_messages);
    merge_peer(peer_bytes, o.peer_bytes);
    return *this;
  }

  friend CommStats operator+(CommStats a, const CommStats& b) noexcept {
    a += b;
    return a;
  }

  /// Equality treats absent per-peer slots as zero, so a fresh counter and
  /// one that was resized by traffic to silent peers still compare equal.
  friend bool operator==(const CommStats& a, const CommStats& b) noexcept {
    return a.data_messages == b.data_messages && a.data_bytes == b.data_bytes &&
           a.ctl_messages == b.ctl_messages && a.ctl_bytes == b.ctl_bytes &&
           a.collectives == b.collectives &&
           peer_equal(a.peer_messages, b.peer_messages) &&
           peer_equal(a.peer_bytes, b.peer_bytes);
  }

  /// Total modeled communication time in microseconds under `cm`,
  /// counting both data and control traffic.
  [[nodiscard]] double modeled_us(const CostModel& cm) const noexcept {
    const auto msgs =
        static_cast<double>(data_messages) + static_cast<double>(ctl_messages);
    const auto bytes =
        static_cast<double>(data_bytes) + static_cast<double>(ctl_bytes);
    return cm.alpha_us * msgs + cm.beta_us_per_byte * bytes;
  }

  /// Modeled time of the data traffic only (the quantity Section 4 of the
  /// paper reasons about).
  [[nodiscard]] double modeled_data_us(const CostModel& cm) const noexcept {
    return cm.alpha_us * static_cast<double>(data_messages) +
           cm.beta_us_per_byte * static_cast<double>(data_bytes);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  static void merge_peer(std::vector<std::uint64_t>& dst,
                         const std::vector<std::uint64_t>& src) {
    if (dst.size() < src.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
  }

  static bool peer_equal(const std::vector<std::uint64_t>& a,
                         const std::vector<std::uint64_t>& b) noexcept {
    const std::size_t n = std::max(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t av = i < a.size() ? a[i] : 0;
      const std::uint64_t bv = i < b.size() ? b[i] : 0;
      if (av != bv) return false;
    }
    return true;
  }
};

}  // namespace vf::msg
