// Per-processor mailbox: the delivery endpoint of the virtual machine's
// message-passing fabric.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "vf/msg/fault.hpp"

namespace vf::msg {

/// A message in flight: sender rank, user tag, raw payload bytes, plus the
/// frame-integrity fields the fabric maintains (per-link sequence number
/// and, when `checked`, a checksum over the payload as the sender framed
/// it -- control messages always, data messages whenever a fault plan is
/// active).
struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
  std::uint64_t seq = 0;  ///< 1-based per (src, dest) link; 0 = unframed
  std::uint64_t checksum = 0;
  bool checked = false;
};

/// Matches any source rank when passed as the `src` argument of
/// Mailbox::pop / Context::recv.
inline constexpr int kAnySource = -1;

/// Unbounded MPMC mailbox with (source, tag) matching.
///
/// Sends in the virtual machine are buffered (the sender copies the payload
/// into the destination mailbox and continues), so programs written against
/// this substrate cannot deadlock on send order -- matching the buffered
/// message layer the Vienna Fortran Engine assumes.
///
/// A machine-owned mailbox is fenced: push() verifies per-link frame
/// sequence numbers (a replayed or skipped seq -- a duplicated, dropped or
/// delayed frame -- trips the machine's abort fence), and pop() verifies
/// checksummed frames, honours the recv watchdog, and wakes with a
/// RankAbort once the fence trips.  A default-constructed mailbox has no
/// fence and behaves as a plain queue (unit tests).
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(AbortFence* fence, int rank, int nprocs);
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver a message (called by the sending rank's thread).  On a
  /// framed message whose seq is not the link's next expected, trips the
  /// fence and throws RankAbort (frame-integrity violation).
  void push(Message m);

  /// Block until a message matching (src, tag) is available and remove it.
  /// `src == kAnySource` matches any sender.  Messages are matched in FIFO
  /// order among those that satisfy the filter.  Throws RankAbort once the
  /// machine's fence trips (or, with the recv watchdog armed, when this
  /// rank has been blocked past the deadline -- tripping the fence with a
  /// machine-wide deadlock report), and RankAbort on a checksum mismatch
  /// of the matched frame.
  [[nodiscard]] Message pop(int src, int tag);

  /// Non-blocking variant: returns true and fills `out` if a matching
  /// message was available.  Never blocks, so it does not consult the
  /// fence; a matched corrupt frame still throws.
  [[nodiscard]] bool try_pop(int src, int tag, Message& out);

  /// Number of queued messages (racy; intended for tests/diagnostics).
  [[nodiscard]] std::size_t size() const;

  /// Drops all queued messages and rewinds the per-link expected sequence
  /// numbers.  Part of Machine::reset_failure_state(); only safe with no
  /// rank running.
  void reset_links();

 private:
  /// Verifies a matched frame's checksum; trips the fence and throws
  /// RankAbort on mismatch.  Called with mu_ NOT held.
  void verify_frame(const Message& m) const;

  AbortFence* fence_ = nullptr;
  int rank_ = -1;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
  std::vector<std::uint64_t> expected_seq_;  ///< per src, guarded by mu_
};

}  // namespace vf::msg
