// Per-processor mailbox: the delivery endpoint of the virtual machine's
// message-passing fabric.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace vf::msg {

/// A message in flight: sender rank, user tag, raw payload bytes.
struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Matches any source rank when passed as the `src` argument of
/// Mailbox::pop / Context::recv.
inline constexpr int kAnySource = -1;

/// Unbounded MPMC mailbox with (source, tag) matching.
///
/// Sends in the virtual machine are buffered (the sender copies the payload
/// into the destination mailbox and continues), so programs written against
/// this substrate cannot deadlock on send order -- matching the buffered
/// message layer the Vienna Fortran Engine assumes.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver a message (called by the sending rank's thread).
  void push(Message m);

  /// Block until a message matching (src, tag) is available and remove it.
  /// `src == kAnySource` matches any sender.  Messages are matched in FIFO
  /// order among those that satisfy the filter.
  [[nodiscard]] Message pop(int src, int tag);

  /// Non-blocking variant: returns true and fills `out` if a matching
  /// message was available.
  [[nodiscard]] bool try_pop(int src, int tag, Message& out);

  /// Number of queued messages (racy; intended for tests/diagnostics).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
};

}  // namespace vf::msg
