// Per-rank communication context: the MPI-flavoured interface each virtual
// processor uses (point-to-point sends/recvs plus the collectives the
// Vienna Fortran Engine needs: barrier, broadcast, reductions, gathers and
// the all-to-all exchange that underlies DISTRIBUTE).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "vf/msg/exchange_scratch.hpp"
#include "vf/msg/machine.hpp"

namespace vf::msg {

/// Reduction operations supported by reduce/allreduce.
enum class ReduceOp { Sum, Min, Max, LogicalAnd, LogicalOr };

namespace detail {
template <typename T>
concept TriviallySendable = std::is_trivially_copyable_v<T>;

template <typename T>
T apply_op(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::Sum:
      return static_cast<T>(a + b);
    case ReduceOp::Min:
      return b < a ? b : a;
    case ReduceOp::Max:
      return a < b ? b : a;
    case ReduceOp::LogicalAnd:
      return static_cast<T>(a && b);
    case ReduceOp::LogicalOr:
      return static_cast<T>(a || b);
  }
  return a;
}

/// PeerConsumer adapter over a callable -- lets end_exchange take a
/// lambda without a std::function allocation.
template <typename F>
class FnConsumer final : public PeerConsumer {
 public:
  explicit FnConsumer(F& f) : f_(f) {}
  void consume(int peer, std::span<const std::byte> bytes) override {
    f_(peer, bytes);
  }

 private:
  F& f_;
};

/// Deserializes a typed payload.  The element count is derived from the
/// byte size (never from wire-carried counts), so the only failure mode
/// is a size that is not a multiple of sizeof(T).
template <typename T>
std::vector<T> bytes_to_vector(std::span<const std::byte> bytes) {
  const std::size_t n = bytes.size() / sizeof(T);
  if (n * sizeof(T) != bytes.size()) {
    throw std::runtime_error("typed recv: payload size mismatch");
  }
  std::vector<T> v(n);
  if (!v.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
  return v;
}

/// Serializes [count, payload] frames for the `count` blocks starting
/// at ring position `start` (mod np), in ring order -- the dissemination
/// round's deterministic wire format.
template <typename T>
std::vector<std::byte> pack_ring(const std::vector<std::vector<T>>& vs,
                                 int start, int count, int np) {
  std::size_t total = 0;
  for (int j = 0; j < count; ++j) {
    const auto k = static_cast<std::size_t>((start + j) % np);
    total += sizeof(std::uint64_t) + vs[k].size() * sizeof(T);
  }
  std::vector<std::byte> blob(total);
  std::size_t off = 0;
  for (int j = 0; j < count; ++j) {
    const auto& v = vs[static_cast<std::size_t>((start + j) % np)];
    const std::uint64_t n = v.size();
    std::memcpy(blob.data() + off, &n, sizeof n);
    off += sizeof n;
    if (n != 0) {
      std::memcpy(blob.data() + off, v.data(), n * sizeof(T));
      off += n * sizeof(T);
    }
  }
  return blob;
}

/// Inverse of pack_ring: fills slots start, start+1, ... (mod np) of
/// `vs` from the blob's frames.  The per-frame element count n comes off
/// the wire, so every bound is checked with overflow-safe arithmetic: a
/// corrupt n must not wrap `off + n * sizeof(T)` past the blob size (and
/// thereby pass the truncation check into a huge resize or a read past
/// the buffer).
template <typename T>
void unpack_ring(std::span<const std::byte> blob,
                 std::vector<std::vector<T>>& vs, int start, int count,
                 int np) {
  std::size_t off = 0;
  for (int j = 0; j < count; ++j) {
    auto& v = vs[static_cast<std::size_t>((start + j) % np)];
    std::uint64_t n = 0;
    if (blob.size() - off < sizeof n) {  // off <= blob.size() invariant
      throw std::runtime_error("unpack_ring: truncated blob");
    }
    std::memcpy(&n, blob.data() + off, sizeof n);
    off += sizeof n;
    if (n > (blob.size() - off) / sizeof(T)) {
      throw std::runtime_error("unpack_ring: truncated payload");
    }
    v.resize(static_cast<std::size_t>(n));
    if (n != 0) std::memcpy(v.data(), blob.data() + off, n * sizeof(T));
    off += static_cast<std::size_t>(n) * sizeof(T);
  }
  if (off != blob.size()) {
    throw std::runtime_error("unpack_ring: trailing bytes in blob");
  }
}
}  // namespace detail

/// Handle through which rank `rank()` of a Machine communicates.
///
/// SPMD discipline: all ranks of a machine must call each collective the
/// same number of times in the same order.  Collective calls are matched by
/// an internal per-rank sequence number, so interleaving point-to-point
/// traffic with collectives is safe.
class Context {
 public:
  Context(Machine& m, int rank) : m_(&m), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nprocs() const noexcept { return m_->nprocs(); }
  [[nodiscard]] Machine& machine() const noexcept { return *m_; }
  [[nodiscard]] CommStats& stats() noexcept { return m_->stats(rank_); }
  [[nodiscard]] const CostModel& cost_model() const noexcept {
    return m_->cost_model();
  }

  // ---- point-to-point ----------------------------------------------------

  /// Buffered send of raw bytes: copies the payload into `dest`'s mailbox
  /// and returns immediately.  Counted as one data message.
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Blocking receive matching (src, tag); src may be kAnySource.
  [[nodiscard]] std::vector<std::byte> recv_bytes(int src, int tag);

  /// Blocking receive that also reports the sender (useful with
  /// kAnySource).
  [[nodiscard]] Message recv_msg(int src, int tag);

  /// Counted blocking receive into caller-owned storage: the matched
  /// message's payload must be exactly dst.size() bytes (the pre-agreed
  /// count of a planned exchange); anything else is a protocol error.
  /// The executor-replay receive path -- no allocation attributable to
  /// the caller, no vector handed back.
  void recv_bytes_into(int src, int tag, std::span<std::byte> dst);

  /// Typed send/recv of contiguous trivially-copyable elements.
  template <detail::TriviallySendable T>
  void send(int dest, int tag, std::span<const T> data) {
    send_bytes(dest, tag, std::as_bytes(data));
  }

  template <detail::TriviallySendable T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::span<const T>(&v, 1));
  }

  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<T> recv(int src, int tag) {
    auto bytes = recv_bytes(src, tag);
    return detail::bytes_to_vector<T>(bytes);
  }

  template <detail::TriviallySendable T>
  [[nodiscard]] T recv_value(int src, int tag) {
    auto v = recv<T>(src, tag);
    if (v.empty()) {
      throw std::runtime_error(
          "recv_value: empty payload from src=" + std::to_string(src) +
          " tag=" + std::to_string(tag) + "; expected 1 element of " +
          std::to_string(sizeof(T)) + " bytes");
    }
    return v.front();
  }

  // ---- failure containment -------------------------------------------------

  /// Trips the machine's abort fence with this rank as the origin and
  /// throws the corresponding RankAbort: every peer blocked in a receive
  /// or barrier wakes and throws the same structured error, and run_spmd
  /// rethrows it with a per-rank report.  Use for rank-local conditions
  /// (bad input, broken invariant) that make continuing the SPMD program
  /// pointless.
  [[noreturn]] void abort(const std::string& reason);

  /// Collective sequence numbers at or below this value map to distinct
  /// negative tags (the last one to INT_MIN); next_coll_tag() throws
  /// std::overflow_error beyond it rather than reusing tags.
  static constexpr std::uint64_t kMaxCollSeq =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max()) - 1;

  /// Advances the collective sequence counter without communicating --
  /// a test hook for exercising tag-space exhaustion.  All ranks of a
  /// machine must skip identically or subsequent collectives mismatch.
  void skip_coll_tags(std::uint64_t n) noexcept { coll_seq_ += n; }

  /// Folds an SPMD-uniform token (an interned distribution or halo-family
  /// uid, a plan fingerprint) into the signature of the NEXT collective
  /// this rank records when the lockstep checker is armed; a no-op (one
  /// relaxed load and a branch) otherwise.  The rt layer tags
  /// redistributions and halo exchanges this way, so a LockstepMismatch
  /// names which plan the ranks diverged on.
  void lockstep_note(std::uint64_t v) noexcept {
    if (m_->lockstep_check()) lockstep_note_ = mix64(lockstep_note_ ^ v);
  }

  // ---- collectives ---------------------------------------------------------

  /// Barrier across all ranks of the machine.
  void barrier();

  /// Broadcast `v` from `root` to all ranks; returns the root's value
  /// everywhere.
  template <detail::TriviallySendable T>
  [[nodiscard]] T broadcast(T v, int root = 0) {
    auto vec = broadcast_vec(rank_ == root
                                 ? std::vector<T>{v}
                                 : std::vector<T>{},
                             root);
    return vec.at(0);
  }

  /// Broadcast a vector from `root`; non-root input values are ignored.
  ///
  /// Binomial tree: the payload fans out over ceil(log2 P) rounds, so no
  /// rank (in particular not the root) sends more than ceil(log2 P)
  /// messages -- the modeled critical path is O(alpha log P) instead of
  /// the O(alpha P) a root-serialized broadcast costs.
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<T> broadcast_vec(std::vector<T> v, int root = 0) {
    const int tag = next_coll_tag();
    stats().collectives++;
    if (lockstep_on()) {
      // Non-root ranks pass an empty vector, so the payload size is not
      // SPMD-uniform at entry; the root IS.
      lockstep_record(LockstepOp::Broadcast, tag,
                      static_cast<std::uint32_t>(sizeof(T)),
                      static_cast<std::uint64_t>(root) + 1);
    }
    return broadcast_tree(std::move(v), root, tag);
  }

  /// All-reduce of a single value.  Allocation-free: the value reduces
  /// in place on the stack and the fan-in rides the persistent
  /// collective scratch.
  template <detail::TriviallySendable T>
  [[nodiscard]] T allreduce(T v, ReduceOp op) {
    allreduce_inplace(std::span<T>(&v, 1), op);
    return v;
  }

  /// Element-wise all-reduce of equal-length vectors.  See
  /// allreduce_inplace for the algorithm and allocation contract.
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<T> allreduce_vec(std::vector<T> v, ReduceOp op) {
    allreduce_inplace(std::span<T>(v), op);
    return v;
  }

  /// Element-wise all-reduce over caller-owned storage: every rank passes
  /// an equal-length span and receives the reduction in place.
  ///
  /// Binomial reduction to rank 0 followed by a binomial broadcast: every
  /// rank sends at most 1 + ceil(log2 P) messages and the critical path
  /// is O(alpha log P).  (The old implementation serialized 2(P-1)
  /// messages through rank 0.)  Reduction order is the binomial-tree
  /// combine order, deterministic for a given P.
  ///
  /// The fan-in receives each contribution into a persistent lane of the
  /// context's collective scratch and the broadcast phase fills `v`
  /// directly (its length is SPMD-agreed), so a warm replay -- every
  /// reduction after the first of a given element size -- performs no
  /// heap allocation (the collective_scratch_stats() counters CI gates).
  template <detail::TriviallySendable T>
  void allreduce_inplace(std::span<T> v, ReduceOp op) {
    const int reduce_tag = next_coll_tag();
    const int bcast_tag = next_coll_tag();
    stats().collectives++;
    if (lockstep_on()) {
      // Span lengths are SPMD-agreed, so they (and the op) join the
      // signature.
      lockstep_record(LockstepOp::Allreduce, reduce_tag,
                      static_cast<std::uint32_t>(sizeof(T)),
                      mix64((static_cast<std::uint64_t>(v.size()) << 3) ^
                            static_cast<std::uint64_t>(op)));
    }
    const int np = nprocs();
    for (int mask = 1; mask < np; mask <<= 1) {
      if ((rank_ & mask) != 0) {
        // Fold my partial into the partner below and leave the tree.
        send_ctl_bytes(rank_ - mask, reduce_tag, std::as_bytes(v));
        break;
      }
      const int src = rank_ + mask;
      if (src < np) {
        // One single-peer lane per element size: the contribution buffer
        // that replaces the per-receive bytes_to_vector allocation.
        ExchangeLane& lane = coll_scratch_.lane(sizeof(T));
        const std::uint64_t n = v.size();
        lane.prepare(std::span<const std::uint64_t>(&n, 1),
                     std::span<const std::uint64_t>(&n, 1));
        recv_bytes_into(src, reduce_tag, lane.recv_bytes(0));
        const std::span<const T> contrib = lane.recv<T>(0);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = detail::apply_op(op, v[i], contrib[i]);
        }
      }
    }
    broadcast_tree_into(v, 0, bcast_tag);
  }

  /// Gather one value per rank; every rank receives the full vector,
  /// indexed by rank.
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<T> allgather(T v) {
    auto per_rank = allgather_vec(std::vector<T>{v});
    std::vector<T> flat;
    flat.reserve(per_rank.size());
    for (auto& r : per_rank) flat.push_back(r.at(0));
    return flat;
  }

  /// Gather a (possibly differently sized) vector from each rank; every
  /// rank receives all contributions, indexed by rank.
  ///
  /// Dissemination (Bruck) algorithm: in the round with distance d, every
  /// rank ships the blocks the rank d below still lacks and receives the
  /// matching blocks from the rank d above, doubling its held prefix.
  /// After ceil(log2 P) rounds each rank holds all P contributions.  No
  /// rank ever serializes O(P) messages (the old implementation funneled
  /// everything through rank 0); every rank sends exactly ceil(log2 P)
  /// messages, so the modeled critical path is O(alpha log P + beta N).
  /// Block membership per round is deterministic, so no block headers
  /// travel -- only [count, payload] frames in rank order.
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<std::vector<T>> allgather_vec(std::vector<T> v) {
    const int tag = next_coll_tag();
    stats().collectives++;
    if (lockstep_on()) {
      // Per-rank contribution sizes legitimately differ, so only the op,
      // tag and element size are signature material.
      lockstep_record(LockstepOp::Allgather, tag,
                      static_cast<std::uint32_t>(sizeof(T)));
    }
    const int np = nprocs();
    std::vector<std::vector<T>> all(static_cast<std::size_t>(np));
    all[static_cast<std::size_t>(rank_)] = std::move(v);
    // Invariant: before the round with distance d, every rank r holds
    // blocks {r, r+1, ..., r + min(d, P) - 1} (mod P).
    for (int d = 1; d < np; d <<= 1) {
      const int have = std::min(2 * d, np) - d;  // blocks the receiver lacks
      const int dest = (rank_ - d + np) % np;
      const int src = (rank_ + d) % np;
      send_ctl_bytes(dest, tag, detail::pack_ring(all, rank_, have, np));
      auto blob = recv_bytes(src, tag);
      detail::unpack_ring<T>(blob, all, src, have, np);
    }
    return all;
  }

  /// Personalized all-to-all: `out[d]` is the payload for rank d (out[rank()]
  /// is delivered locally without touching the network).  Returns `in` with
  /// `in[s]` = payload received from rank s.
  ///
  /// Protocol: counts are exchanged through an allgather (control traffic),
  /// then only the non-empty payloads travel as data messages -- so the
  /// data-message count matches what the paper's analysis predicts for a
  /// redistribution (at most one message per communicating processor pair).
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      std::vector<std::vector<T>> out) {
    const int np = nprocs();
    if (static_cast<int>(out.size()) != np) {
      throw std::invalid_argument("alltoallv: out.size() != nprocs()");
    }
    // Exchange the full count matrix so each rank knows which (possibly
    // empty) payloads to expect, then run the counted exchange.
    std::vector<std::uint64_t> my_counts(static_cast<std::size_t>(np));
    for (int d = 0; d < np; ++d) {
      my_counts[static_cast<std::size_t>(d)] =
          out[static_cast<std::size_t>(d)].size();
    }
    auto counts = allgather_vec(my_counts);  // counts[s][d]
    std::vector<std::uint64_t> expected(static_cast<std::size_t>(np));
    for (int s = 0; s < np; ++s) {
      expected[static_cast<std::size_t>(s)] =
          counts[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)];
    }
    return alltoallv_known(std::move(out),
                           std::span<const std::uint64_t>(expected));
  }

  /// Personalized all-to-all with pre-agreed counts: like alltoallv, but
  /// every rank already knows how many elements to expect from every peer
  /// (expected[s] = elements arriving from rank s), so the count-exchange
  /// collective is skipped entirely.  This is the executor-side transport
  /// of inspector/executor schedules and cached redistribution plans: the
  /// inspector established the counts once, and every replay pays only the
  /// value messages.
  ///
  /// The counts are a hard protocol precondition (as with MPI counted
  /// receives): a non-zero payload whose size disagrees with the expected
  /// count raises an error below, but if a sender holds ZERO elements for
  /// a peer expecting more, no message travels and the receiver blocks in
  /// recv -- the same failure mode as mismatched MPI counts.  Callers must
  /// derive both sides from one deterministic computation (a RedistPlan or
  /// Schedule inspector), never from independent guesses.
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv_known(
      std::vector<std::vector<T>> out,
      std::span<const std::uint64_t> expected) {
    const int np = nprocs();
    if (static_cast<int>(out.size()) != np ||
        static_cast<int>(expected.size()) != np) {
      throw std::invalid_argument(
          "alltoallv_known: out/expected size != nprocs()");
    }
    const int tag = next_coll_tag();
    stats().collectives++;
    if (lockstep_on()) {
      auto& c = lockstep_counts();
      for (int d = 0; d < np; ++d) {
        c[static_cast<std::size_t>(d)] =
            out[static_cast<std::size_t>(d)].size() * sizeof(T);
      }
      for (int s = 0; s < np; ++s) {
        c[static_cast<std::size_t>(np + s)] =
            expected[static_cast<std::size_t>(s)] * sizeof(T);
      }
      lockstep_record_counted(LockstepOp::Alltoallv, tag,
                              static_cast<std::uint32_t>(sizeof(T)));
    }
    std::vector<std::vector<T>> in(static_cast<std::size_t>(np));
    in[static_cast<std::size_t>(rank_)] =
        std::move(out[static_cast<std::size_t>(rank_)]);
    for (int d = 0; d < np; ++d) {
      if (d == rank_) continue;
      const auto& payload = out[static_cast<std::size_t>(d)];
      if (payload.empty()) continue;
      send_bytes(d, tag, std::as_bytes(std::span<const T>(payload)));
    }
    for (int s = 0; s < np; ++s) {
      if (s == rank_ || expected[static_cast<std::size_t>(s)] == 0) continue;
      // Size the result slot up front and receive straight into it: the
      // counted receive enforces the pre-agreed size, and no intermediate
      // bytes_to_vector allocation is made per peer.
      auto& slot = in[static_cast<std::size_t>(s)];
      slot.resize(static_cast<std::size_t>(expected[static_cast<std::size_t>(s)]));
      recv_bytes_into(s, tag, std::as_writable_bytes(std::span<T>(slot)));
    }
    if (in[static_cast<std::size_t>(rank_)].size() !=
        expected[static_cast<std::size_t>(rank_)]) {
      throw std::runtime_error(
          "alltoallv_known: received payload size does not match the "
          "pre-agreed count");
    }
    return in;
  }

  /// The fully reusable counted exchange: both sides of the transfer live
  /// in one ExchangeLane the caller owns and keeps across replays.  The
  /// caller packs lane.send(d) for every destination (sizes fixed by the
  /// last prepare(); they ARE the pre-agreed send counts) and on return
  /// lane.recv(s) holds rank s's payload (its size is the pre-agreed
  /// receive count, enforced against what actually arrived).  The local
  /// slot is copied send -> recv without touching the network.
  ///
  /// This is the executor-replay transport: a warmed-up replay (cached
  /// RedistPlan, PARTI executor, halo exchange) allocates nothing on
  /// either side of the exchange.  The count precondition of
  /// alltoallv_known applies unchanged: both ranks' lane geometries must
  /// come from one deterministic inspector product, and a zero-size send
  /// a peer expects data for blocks that peer in recv.
  void alltoallv_known_into(ExchangeLane& lane);

  // ---- split-phase counted exchange ---------------------------------------

  /// Starts a counted exchange on `lane` and returns its matching tag:
  /// the active transport ships (or publishes) every non-empty remote
  /// send buffer and returns WITHOUT waiting for anything to arrive.
  /// The caller may now compute on data unrelated to the exchange --
  /// that is the whole point -- and must eventually call end_exchange()
  /// with the returned tag.  The lane's buffers (both sides) must stay
  /// untouched until end_exchange() returns.
  ///
  /// Counts as one collective; the count precondition of
  /// alltoallv_known_into applies unchanged.
  [[nodiscard]] int begin_exchange(ExchangeLane& lane);

  /// Completes a split-phase exchange: copies the local slot send->recv,
  /// then receives every expected remote payload into lane.recv(s).
  void end_exchange(ExchangeLane& lane, int tag);

  /// As above, but hands each non-empty payload (local slot included) to
  /// `consume(int peer, std::span<const std::byte> bytes)` instead of
  /// unconditionally memcpying into lane.recv(peer).  Under the
  /// shared-memory transport `bytes` aliases the PEER's send buffer --
  /// the consumer unpacks zero-copy; under the mailbox transport it is
  /// lane.recv(peer), already filled.  The consumer must not recurse
  /// into this context.
  template <typename F>
  void end_exchange(ExchangeLane& lane, int tag, F&& consume) {
    detail::FnConsumer<std::remove_reference_t<F>> c(consume);
    end_exchange_impl(lane, tag, c);
  }

  /// Counters of the persistent scratch behind the allocation-free
  /// collectives (allreduce / allreduce_vec / allreduce_inplace): after
  /// one warmup reduction per element size, grow_allocs stays flat
  /// across replays -- the collectives-side analogue of the executor
  /// allocs_per_replay == 0 contract.
  [[nodiscard]] const ExchangeScratch::Stats& collective_scratch_stats()
      const noexcept {
    return coll_scratch_.stats();
  }
  void reset_collective_scratch_stats() noexcept {
    coll_scratch_.reset_stats();
  }

 private:
  /// Control-plane send: same transport, separate accounting.
  void send_ctl_bytes(int dest, int tag, std::span<const std::byte> payload);

  // ---- lockstep checker plumbing ------------------------------------------
  // One relaxed load when disarmed; when armed, each collective records
  // its signature (and, for counted exchanges, its per-peer byte
  // geometry) with the machine's LockstepChecker at op ENTRY -- before
  // any byte moves -- so divergence throws here, deterministically,
  // instead of hanging in a receive.

  [[nodiscard]] bool lockstep_on() const noexcept {
    return m_->lockstep_check();
  }

  /// Records a non-counted collective, consuming the pending note.
  void lockstep_record(LockstepOp op, int tag, std::uint32_t elem,
                       std::uint64_t extra = 0) {
    const std::uint64_t note = lockstep_note_ ^ extra;
    lockstep_note_ = 0;
    m_->lockstep().record(rank_, op, tag, elem, note, {}, {});
  }

  /// Records a counted collective whose per-peer byte geometry the
  /// caller staged in lockstep_counts() ([0,np) out, [np,2np) in).
  void lockstep_record_counted(LockstepOp op, int tag, std::uint32_t elem,
                               std::uint64_t extra = 0) {
    const std::uint64_t note = lockstep_note_ ^ extra;
    lockstep_note_ = 0;
    const auto np = static_cast<std::size_t>(nprocs());
    m_->lockstep().record(
        rank_, op, tag, elem, note,
        std::span<const std::uint64_t>(lockstep_counts_.data(), np),
        std::span<const std::uint64_t>(lockstep_counts_.data() + np, np));
  }

  /// The count staging buffer: sized once per context (first armed
  /// counted op), then reused -- no per-op allocation.
  [[nodiscard]] std::vector<std::uint64_t>& lockstep_counts() {
    const auto need = 2 * static_cast<std::size_t>(nprocs());
    if (lockstep_counts_.size() != need) lockstep_counts_.assign(need, 0);
    return lockstep_counts_;
  }

  /// Binomial-tree broadcast body shared by broadcast_vec and the
  /// broadcast phase of allreduce_vec (does not bump the collectives
  /// counter; the caller owns the tag).
  template <detail::TriviallySendable T>
  [[nodiscard]] std::vector<T> broadcast_tree(std::vector<T> v, int root,
                                              int tag) {
    const int np = nprocs();
    if (np == 1) return v;
    const int rel = (rank_ - root + np) % np;
    int mask = 1;
    while (mask < np) {
      if ((rel & mask) != 0) {
        const int src = (rel - mask + root) % np;
        v = detail::bytes_to_vector<T>(recv_bytes(src, tag));
        break;
      }
      mask <<= 1;
    }
    // Forward to children: every mask below the one that delivered (for
    // the root: below the smallest power of two >= P).
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < np) {
        const int dst = (rel + mask + root) % np;
        send_ctl_bytes(dst, tag, std::as_bytes(std::span<const T>(v)));
      }
      mask >>= 1;
    }
    return v;
  }

  /// broadcast_tree over caller-owned storage: every rank passes a span
  /// whose length equals the root's payload (SPMD-agreed), so non-root
  /// ranks receive straight into it with a counted receive -- no
  /// bytes_to_vector allocation.  Does not bump the collectives counter;
  /// the caller owns the tag.
  template <detail::TriviallySendable T>
  void broadcast_tree_into(std::span<T> v, int root, int tag) {
    const int np = nprocs();
    if (np == 1) return;
    const int rel = (rank_ - root + np) % np;
    int mask = 1;
    while (mask < np) {
      if ((rel & mask) != 0) {
        const int src = (rel - mask + root) % np;
        recv_bytes_into(src, tag, std::as_writable_bytes(v));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < np) {
        const int dst = (rel + mask + root) % np;
        send_ctl_bytes(dst, tag, std::as_bytes(v));
      }
      mask >>= 1;
    }
  }

  /// Shared body of the end_exchange overloads: handles the local slot
  /// first (size check + consume), then lets the active transport drain
  /// the remote payloads through `consume`.
  void end_exchange_impl(ExchangeLane& lane, int tag, PeerConsumer& consume);

  [[nodiscard]] int next_coll_tag() {
    // Collective tags live in the negative tag space, below kAnySource:
    // tag = -2 - seq, so seq kMaxCollSeq maps to INT_MIN exactly.  Beyond
    // that the space is exhausted; wrapping would silently re-match stale
    // pending messages from collectives issued ~2^31 calls earlier, so we
    // fail loudly instead.
    if (coll_seq_ > kMaxCollSeq) {
      throw std::overflow_error(
          "Context: collective tag space exhausted after " +
          std::to_string(kMaxCollSeq + 1) + " collectives on rank " +
          std::to_string(rank_));
    }
    return -2 - static_cast<int>(coll_seq_++);
  }

  Machine* m_;
  int rank_;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t lockstep_note_ = 0;
  std::vector<std::uint64_t> lockstep_counts_;
  // Persistent fan-in buffers for the allocation-free collectives.  Its
  // lanes only ever hold single-peer geometry (peers() == 1): reusing a
  // lane across different peer counts would shrink-and-regrow the inner
  // buffers and show up as spurious grow_allocs.
  ExchangeScratch coll_scratch_;
};

}  // namespace vf::msg
