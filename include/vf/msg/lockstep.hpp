// The runtime lockstep checker: deterministic detection of SPMD
// collective divergence.
//
// The SPMD contract (context.hpp) is that every rank calls every
// collective the same number of times in the same order with compatible
// geometry.  A violation today surfaces as a hang (caught only by the
// recv watchdog, which can name where everyone is stuck but not *why*) or
// as a frame-integrity abort far from the cause.  When armed
// (Machine::set_lockstep_check / VF_LOCKSTEP), every rank:
//
//   * folds a per-op signature -- op kind, tag, element size, and an
//     SPMD-uniform note (distribution / halo-family uids supplied by the
//     rt layer) -- into a per-rank hash chain, and
//   * publishes the signature plus the op's per-peer byte counts into a
//     lock-free ring slot indexed by the op's sequence number, then
//     cross-checks every peer's slot for the SAME sequence number.
//
// Because every rank publishes before it compares, the later-arriving
// rank of any diverging pair is guaranteed to see the other's record:
// a mismatched collective order, tag or count surfaces deterministically
// as a structured LockstepMismatch naming the first diverging op, before
// anyone blocks on the wire.  Barriers additionally compare the full
// chains (under the barrier mutex), a backstop for divergences whose
// ring slots were overwritten by deep pipelining.
//
// TSan discipline: every cross-thread field is a std::atomic.  Slots use
// an invalidate/publish protocol (seq := kNoSlot, fields, seq := n with
// release; readers acquire-validate seq on both sides of the field
// reads), so a torn slot is *skipped*, never misread.  The chain and op
// counter are owner-written; peers read them only under the barrier
// mutex, whose happens-before makes the plain reads safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vf/msg/fault.hpp"

namespace vf::msg {

/// Collective kinds the checker distinguishes (the signature's op field).
enum class LockstepOp : int {
  None = 0,
  Barrier,
  Broadcast,
  Allreduce,
  Allgather,
  Alltoallv,  ///< counted all-to-all (alltoallv_known / _into)
  Exchange,   ///< split-phase counted exchange (begin_exchange)
};

[[nodiscard]] const char* to_string(LockstepOp op);

/// The structured divergence error: a RankAbort (so it propagates through
/// the fence and run_spmd type-preserved) carrying which collective
/// diverged and both ranks' recorded signatures.
struct LockstepMismatch : RankAbort {
  LockstepMismatch(int origin, int peer_rank, std::uint64_t op_index,
                   std::string mine_, std::string theirs_,
                   const std::string& why)
      : RankAbort(origin, why),
        peer(peer_rank),
        op_seq(op_index),
        mine(std::move(mine_)),
        theirs(std::move(theirs_)) {}

  int peer;              ///< the rank whose record disagreed
  std::uint64_t op_seq;  ///< 0-based index of the first diverging op
  std::string mine;      ///< origin rank's recorded signature
  std::string theirs;    ///< peer's recorded signature
};

/// Per-Machine lockstep state.  Thread-safe; zero-cost while disabled
/// (one relaxed load on the Context fast path, no memory until the first
/// enable).
class LockstepChecker {
 public:
  /// Ring depth per rank: how far one rank may run ahead of another
  /// before per-op cross-checks degrade to the barrier chain backstop.
  /// Every collective with a receive leg bounds the skew far below this;
  /// only fire-and-forget broadcast roots can pipeline past it.
  static constexpr std::uint64_t kRing = 16;
  static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

  LockstepChecker(int nprocs, AbortFence* fence);

  /// Arms or disarms the checker.  First enable allocates the rings;
  /// every enable/disable resets the chains.  Set with no SPMD run in
  /// flight.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one collective entered by `rank` and cross-checks every
  /// peer's record of the same op index.  `out_bytes` / `in_bytes`,
  /// when non-empty, are the op's per-peer byte counts (size nprocs)
  /// and are checked pairwise: peer.out[rank] must equal in_bytes[peer]
  /// and vice versa.  `note` is any SPMD-uniform extra folded into the
  /// signature (collapsed plan / distribution uids).  On divergence
  /// trips the fence and throws LockstepMismatch.  Precondition:
  /// enabled().
  void record(int rank, LockstepOp op, int tag, std::uint32_t elem_size,
              std::uint64_t note, std::span<const std::uint64_t> out_bytes,
              std::span<const std::uint64_t> in_bytes);

  /// Barrier piggyback, called under the machine's barrier mutex: stages
  /// `rank`'s chain and op count; when `last` (the completing arriver)
  /// also compares every staged chain and returns a non-empty divergence
  /// description on mismatch (the caller trips the fence and throws
  /// after unlocking).
  [[nodiscard]] std::string stage_barrier(int rank, bool last);

  /// Ops recorded by `rank` since the last reset (test/bench observability).
  [[nodiscard]] std::uint64_t ops(int rank) const;
  /// `rank`'s current hash chain (equal across ranks iff in lockstep).
  [[nodiscard]] std::uint64_t chain(int rank) const;
  /// Cumulative mismatches detected (0 across any healthy run).
  [[nodiscard]] std::uint64_t mismatches() const noexcept {
    return mismatches_.load(std::memory_order_relaxed);
  }

  /// Clears chains, rings and staged barrier state (keeps the enabled
  /// flag and the cumulative mismatch counter).  Only safe with no rank
  /// running; Machine::reset_failure_state calls it.
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{kNoSlot};
    std::atomic<std::uint64_t> sig{0};
    std::atomic<int> op{0};
    std::atomic<int> tag{0};
    std::atomic<std::uint32_t> elem{0};
    std::atomic<std::uint64_t> note{0};
    std::atomic<bool> counted{false};
  };

  struct alignas(64) RankState {
    std::atomic<std::uint64_t> nops{0};
    /// Owner-written; peers read only under the barrier mutex.
    std::uint64_t chain = 0;
    /// Staged at barrier arrival (under the barrier mutex).
    std::uint64_t barrier_chain = 0;
    std::uint64_t barrier_ops = 0;
    std::vector<Slot> ring;  ///< kRing slots
    /// Per-slot pairwise geometry, kRing * 2 * nprocs entries:
    /// slot i's out counts at [i*2*np, i*2*np+np), in counts after.
    std::vector<std::atomic<std::uint64_t>> counts;
  };

  [[nodiscard]] std::string describe(LockstepOp op, int tag,
                                     std::uint32_t elem, std::uint64_t note,
                                     std::uint64_t seq) const;

  [[noreturn]] void fail(int rank, int peer, std::uint64_t seq,
                         std::string mine, std::string theirs,
                         std::string why);

  int nprocs_;
  AbortFence* fence_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> mismatches_{0};
  std::vector<RankState> ranks_;  ///< allocated on first enable
};

}  // namespace vf::msg
