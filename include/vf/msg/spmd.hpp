// SPMD executor: runs one function body on every virtual processor of a
// Machine, mirroring the paper's execution model ("each processor executes
// essentially the same code, but on a local data set").
#pragma once

#include <functional>

#include "vf/msg/context.hpp"
#include "vf/msg/machine.hpp"

namespace vf::msg {

/// Runs `body(ctx)` on nprocs threads, one per virtual processor, and joins
/// them.  If any rank throws, the first exception (by rank order) is
/// rethrown on the calling thread after all ranks have been joined.
///
/// Note: an exception escaping one rank does not interrupt the others; if
/// they are blocked waiting for the failed rank (recv, barrier), the
/// program deadlocks -- the same behaviour as an MPI job whose member
/// aborts.  Throw on every rank (deterministic validation before
/// communication) or on none.
void run_spmd(Machine& m, const std::function<void(Context&)>& body);

/// Convenience: build a machine with `nprocs` processors, run `body`, and
/// return the machine's total communication statistics.
CommStats run_spmd(int nprocs, const std::function<void(Context&)>& body,
                   CostModel cm = {});

}  // namespace vf::msg
