// SPMD executor: runs one function body on every virtual processor of a
// Machine, mirroring the paper's execution model ("each processor executes
// essentially the same code, but on a local data set").
#pragma once

#include <functional>

#include "vf/msg/context.hpp"
#include "vf/msg/machine.hpp"

namespace vf::msg {

/// Runs `body(ctx)` on nprocs threads, one per virtual processor, and joins
/// them.
///
/// Failure semantics: any exception escaping one rank's body (or a call to
/// Context::abort) trips the machine's abort fence.  Every peer blocked in
/// a receive or barrier wakes and throws a structured RankAbort naming the
/// origin rank, so a rank-local error -- a plan-time validation failure, a
/// frame-integrity violation, a watchdog expiry -- can no longer strand the
/// other ranks.  Once every rank has been joined, run_spmd:
///
///   * stores a per-rank FailureReport on the Machine
///     (Machine::last_failure_report()) recording what each rank threw or
///     that it completed;
///   * resets the machine's failure state (fence, queued frames, link
///     sequence numbers, barrier count) so the Machine is reusable;
///   * rethrows the ORIGIN rank's original exception -- the error that
///     started the abort, with its concrete type preserved -- not the
///     secondary RankAborts the other ranks threw.
///
/// Ranks are never interrupted mid-computation: the fence is only observed
/// at blocking communication points, so a rank that communicates no further
/// simply runs to completion.  A failure that blocks without throwing (a
/// count mismatch where no message is ever sent) is only detected if the
/// recv watchdog is armed (Machine::set_recv_watchdog).
void run_spmd(Machine& m, const std::function<void(Context&)>& body);

/// Convenience: build a machine with `nprocs` processors, run `body`, and
/// return the machine's total communication statistics.
CommStats run_spmd(int nprocs, const std::function<void(Context&)>& body,
                   CostModel cm = {});

}  // namespace vf::msg
