// The pluggable transport layer under counted exchanges.
//
// Every counted exchange (alltoallv_known_into and the split-phase
// begin_exchange / end_exchange pair built on it) moves ExchangeLane
// buffers between ranks.  HOW those bytes move is a Transport decision:
//
//   * MailboxTransport (the default) serializes every payload into a
//     mailbox frame through Machine::deliver -- the fully metered path
//     that carries per-link sequence numbers, checksums, the recv
//     watchdog and the fault-injection plan.
//   * ShmTransport exploits that all ranks of the virtual machine share
//     one address space: a counted exchange hands the sender's lane
//     buffer off POINTER-WISE (publish pointer, peer reads it in place),
//     so an on-node halo exchange is two memcpys total -- pack into the
//     lane and unpack out of the peer's lane -- with no frame
//     serialization, no queueing and no intermediate copy.
//
// Only counted exchanges ride the transport.  Point-to-point sends,
// collectives and control traffic always travel through Machine::deliver,
// so frame integrity, fault injection and the abort fence stay effective
// under either transport; the shared-memory rendezvous waits are
// fence-registered and watchdog-aware themselves, so a RankAbort fires
// cleanly even mid-exchange.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

namespace vf::msg {

class AbortFence;
class Context;
class ExchangeLane;

/// The available transport implementations.  Selection: per Machine at
/// construction (or via Machine::set_transport between runs); the
/// process-wide default comes from the VF_TRANSPORT environment variable
/// (see default_transport_kind), which is how the CI transport matrix
/// runs the whole test suite over both implementations.
enum class TransportKind {
  Mailbox,       ///< frame-serializing mailbox fabric (default)
  SharedMemory,  ///< zero-copy pointer hand-off between rank threads
};

[[nodiscard]] const char* to_string(TransportKind k) noexcept;

/// Reads VF_TRANSPORT ("mailbox" | "shm"/"shared"/"shared-memory"/
/// "shared_memory"; unset or empty means mailbox) and returns the
/// corresponding kind.  Throws std::invalid_argument on anything else --
/// a typo must not silently fall back to the default in a CI matrix job.
[[nodiscard]] TransportKind default_transport_kind();

/// Receives one peer's payload of a counted exchange.  end_exchange
/// delivers each non-empty expected payload exactly once through this
/// interface; `bytes` is only valid for the duration of the call (under
/// the zero-copy transport it aliases the PEER's send buffer).
class PeerConsumer {
 public:
  virtual void consume(int peer, std::span<const std::byte> bytes) = 0;

 protected:
  ~PeerConsumer() = default;
};

/// One counted-exchange transport of a Machine.  Implementations handle
/// the REMOTE slots only; the local slot is copied (or consumed) by
/// Context::end_exchange before the transport runs.  Thread-safe across
/// ranks: begin/end are called concurrently from every rank's thread.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Initiates rank ctx.rank()'s side of one counted exchange: makes
  /// every non-empty remote send buffer of `lane` available to its
  /// destination under `tag` and returns without waiting for any
  /// receiver.  The lane's send buffers must stay untouched until the
  /// matching end() returns (the zero-copy transport's peers read them
  /// in place).
  virtual void begin(Context& ctx, ExchangeLane& lane, int tag) = 0;

  /// Completes the exchange begun under `tag`: delivers each non-empty
  /// expected remote payload (lane.recv_bytes(s).size() is the pre-agreed
  /// byte count from rank s) to `consume`, in ascending source-rank
  /// order, then releases the lane's send buffers for reuse.  Blocking;
  /// wakes with a RankAbort once the machine's fence trips, and honours
  /// the recv watchdog.
  virtual void end(Context& ctx, ExchangeLane& lane, int tag,
                   PeerConsumer& consume) = 0;

  /// Reclaims rank `me`'s publications under `tag` WITHOUT completing the
  /// exchange: erases records no peer has started consuming and waits out
  /// any consumer currently reading one, so the lane buffers the records
  /// alias may be freed.  Called during abort unwinding -- a rank dying
  /// between begin() and end(), or end() itself aborting -- and therefore
  /// must be safe to run concurrently with peers still inside end().
  /// No-op for transports that copy payloads at begin() time.
  virtual void withdraw(int /*me*/, int /*tag*/) noexcept {}

  /// Drops any in-flight exchange state (part of
  /// Machine::reset_failure_state; only safe with no rank running).
  virtual void reset() {}
};

/// Factory for the built-in transports.  The shared-memory transport
/// registers its rendezvous wake-ups with `fence` at construction, so a
/// Machine constructs its transports once and keeps them alive for its
/// own lifetime (switching transports swaps an active pointer, never
/// destroys one).
[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind k,
                                                        AbortFence& fence,
                                                        int nprocs);

}  // namespace vf::msg
