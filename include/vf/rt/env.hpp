// Per-processor runtime environment: the entry point of the Vienna Fortran
// Engine (paper Section 3.2).  Each virtual processor of an SPMD program
// holds one Env, which binds the message-passing context to the processor
// array declared by the program and keeps the registry of live distributed
// arrays.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "vf/dist/processors.hpp"
#include "vf/dist/registry.hpp"
#include "vf/halo/plan.hpp"
#include "vf/msg/context.hpp"

namespace vf::rt {

class DistArrayBase;

class Env {
 public:
  /// Binds the context to an explicit processor array (PROCESSORS R(...)).
  /// The processor array must fit within the machine's rank space.
  Env(msg::Context& ctx, dist::ProcessorArray procs);

  /// Default 1-D processor array $P(1:nprocs) over the whole machine.
  explicit Env(msg::Context& ctx);

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  [[nodiscard]] int rank() const noexcept { return ctx_->rank(); }
  [[nodiscard]] int nprocs() const noexcept { return ctx_->nprocs(); }
  [[nodiscard]] msg::Context& comm() const noexcept { return *ctx_; }

  [[nodiscard]] const dist::ProcessorArray& processors() const noexcept {
    return procs_;
  }

  /// Whole-processor-array section: the default target of distributions.
  [[nodiscard]] dist::ProcessorSection whole() const {
    return dist::ProcessorSection(procs_);
  }

  /// $NP intrinsic (paper Section 4, footnote): the number of processors
  /// executing the program.
  [[nodiscard]] int np() const noexcept { return nprocs(); }

  /// This rank's descriptor registry: every distribution the runtime
  /// traffics in is interned here, so descriptor equality is handle
  /// identity (see dist/registry.hpp).
  [[nodiscard]] dist::DistRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const dist::DistRegistry& registry() const noexcept {
    return registry_;
  }

  /// This rank's halo-plan cache, keyed on interned (DistHandle uid,
  /// HaloSpec uid) pairs and shared by every array of this Env: two
  /// arrays with the same descriptor pair (the smoothing ping-pong pair)
  /// replay one plan.  Plans invalidate naturally on DISTRIBUTE because
  /// the descriptor handle changes.
  [[nodiscard]] halo::HaloPlanCache& halo_plans() noexcept {
    return halo_plans_;
  }
  [[nodiscard]] const halo::HaloPlanCache& halo_plans() const noexcept {
    return halo_plans_;
  }

  /// Convenience interning of a distribution type over this Env's default
  /// section (or an explicit one).
  [[nodiscard]] dist::DistHandle intern(const dist::IndexDomain& dom,
                                        const dist::DistributionType& type) {
    return registry_.intern(dom, type, whole());
  }
  [[nodiscard]] dist::DistHandle intern(const dist::IndexDomain& dom,
                                        const dist::DistributionType& type,
                                        const dist::ProcessorSection& sec) {
    return registry_.intern(dom, type, sec);
  }

  // Array registry (used by diagnostics and name-based lookups).
  void register_array(DistArrayBase& a);
  void unregister_array(DistArrayBase& a) noexcept;
  [[nodiscard]] DistArrayBase* find_array(std::string_view name) const noexcept;

  /// What one Env::sweep() call reclaimed.
  struct SweepReport {
    std::size_t registry_swept = 0;      ///< interned entries reclaimed
    std::size_t halo_plans_dropped = 0;  ///< dead halo-plan cache entries
  };

  /// Epoch-based reclamation entry point for long-running adaptive
  /// programs: (1) asks every registered array to drop derived cache
  /// state that pins retired descriptors (skew memos, plans not touching
  /// the live descriptor); (2) drops halo-plan cache entries keyed on
  /// distributions no registered array holds (their uids are retired and
  /// can never be looked up again); (3) sweeps the registry, reclaiming
  /// every intern nothing outside it references.  Purely local -- no
  /// communication -- so ranks may sweep at different times.  Throws
  /// ExchangeInFlightError if any registered array has a split-phase
  /// exchange pending (the pending plan pins descriptors mid-unpack).
  SweepReport sweep();

 private:
  msg::Context* ctx_;
  dist::ProcessorArray procs_;
  dist::DistRegistry registry_;
  halo::HaloPlanCache halo_plans_;
  std::vector<DistArrayBase*> arrays_;
};

}  // namespace vf::rt
