// Procedure-boundary distribution semantics (paper Sections 3 and 5).
//
// "Many of the problems posed by run time redistribution of data
// structures are the same as, or similar to, those posed by the
// redistribution of arrays at subroutine boundaries, and those posed by
// the fact that in any code, several arrays, with possibly distinct
// distributions, may be bound to the same formal argument."
//
// Vienna Fortran lets a procedure declare a dummy argument with a specific
// distribution; calling the procedure implicitly redistributes the actual
// argument to match.  On return, Vienna Fortran permits the procedure's
// final distribution to be visible to the caller, whereas "in contrast to
// Vienna Fortran, if an array is redistributed in a procedure, HPF does
// not permit the new distribution to be returned to the calling
// procedure" (Section 5).  Both semantics are provided so the difference
// can be measured (bench/EXPERIMENTS E10).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vf/query/pattern.hpp"
#include "vf/rt/array_base.hpp"

namespace vf::rt {

/// Declaration of one dummy (formal) argument.
class FormalArg {
 public:
  /// Dummy declared with an explicit distribution: the actual argument is
  /// redistributed on entry if its current distribution differs.
  static FormalArg with_type(dist::DistributionType t,
                             std::optional<dist::ProcessorSection> to = {}) {
    FormalArg a;
    a.kind_ = Kind::Explicit;
    a.type_ = std::move(t);
    a.to_ = std::move(to);
    return a;
  }

  /// Dummy inherits the actual argument's distribution unchanged ("*"
  /// annotation): no entry redistribution.
  static FormalArg inherited() { return FormalArg{}; }

  /// Dummy requires the actual to already match the pattern; a mismatch is
  /// an error rather than an implicit redistribution (the restricted
  /// interface style that avoids hidden data motion).
  static FormalArg matching(query::TypePattern p) {
    FormalArg a;
    a.kind_ = Kind::Match;
    a.pattern_ = std::move(p);
    return a;
  }

  enum class Kind { Inherited, Explicit, Match };
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const dist::DistributionType& type() const noexcept {
    return type_;
  }
  [[nodiscard]] const std::optional<dist::ProcessorSection>& to()
      const noexcept {
    return to_;
  }
  [[nodiscard]] const query::TypePattern& pattern() const noexcept {
    return pattern_;
  }

 private:
  Kind kind_ = Kind::Inherited;
  dist::DistributionType type_;
  std::optional<dist::ProcessorSection> to_;
  query::TypePattern pattern_;
};

/// What happens to an actual argument's distribution when the procedure
/// returns.
enum class ArgReturnMode {
  /// Vienna Fortran: the distribution current at procedure exit is
  /// returned to the caller.
  ReturnNewDistribution,
  /// HPF: the caller's distribution is reinstated on exit (possibly
  /// paying a second redistribution).
  RestoreOnExit,
};

/// Diagnostic summary of one procedure call's implicit data motion.
struct CallReport {
  int entry_redistributions = 0;
  int exit_restores = 0;
};

/// Thrown when a FormalArg::matching dummy receives a non-matching actual.
class ArgumentMismatchError : public std::runtime_error {
 public:
  ArgumentMismatchError(const std::string& array, const std::string& want,
                        const std::string& got)
      : std::runtime_error("argument " + array + ": distribution " + got +
                           " does not match required " + want) {}
};

/// Calls `body` with the given actual/formal argument bindings (collective;
/// every rank must call with equivalent arguments).  Entry: each actual is
/// redistributed (or checked) per its formal declaration.  Exit: per
/// `mode`.  Actual arguments bound to Explicit formals must be dynamic
/// primary arrays (implicit redistribution follows the same rules as the
/// DISTRIBUTE statement, including RANGE checks and connect-class
/// propagation).
CallReport call_procedure(
    std::vector<std::pair<DistArrayBase*, FormalArg>> args,
    ArgReturnMode mode, const std::function<void()>& body);

}  // namespace vf::rt
