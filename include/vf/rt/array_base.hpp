// Type-erased distributed-array base: descriptors, the DYNAMIC attribute,
// RANGE enforcement, the DISTRIBUTE statement (paper Sections 2.3, 2.4
// and 3.2.2), and the element-type-independent local storage geometry
// (overlap widths, allocation strides, loc_map offsets) that both the
// runtime and the PARTI executors address through.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "vf/dist/alignment.hpp"
#include "vf/dist/distribution.hpp"
#include "vf/msg/exchange_scratch.hpp"
#include "vf/query/pattern.hpp"
#include "vf/rt/connect.hpp"
#include "vf/rt/env.hpp"

namespace vf::rt {

/// Thrown when an access or query requires a distribution but the array has
/// not been associated with one ("An array for which an initial
/// distribution has not been specified cannot be legally accessed before it
/// has been explicitly associated with a distribution", Section 2.3).
class NotDistributedError : public std::logic_error {
 public:
  explicit NotDistributedError(const std::string& array)
      : std::logic_error("array " + array +
                         " has no distribution associated with it") {}
};

/// Thrown when a DISTRIBUTE statement violates the array's RANGE attribute
/// ("Distribute statements applied to the Bi must respect the restrictions
/// imposed by this attribute", Section 2.3).
class RangeViolationError : public std::runtime_error {
 public:
  RangeViolationError(const std::string& array, const std::string& type)
      : std::runtime_error("distribution " + type + " violates the RANGE of " +
                           array) {}
};

/// Thrown when an operation that would invalidate or tear down halo
/// geometry (DISTRIBUTE, set_overlap, a second begin_exchange_overlap)
/// is attempted while a split-phase overlap exchange is in flight on the
/// array.  The exchange pins the plan and the lane buffers; completing
/// it first (end_exchange_overlap) is the only legal continuation.
class ExchangeInFlightError : public std::logic_error {
 public:
  ExchangeInFlightError(const std::string& array, const std::string& op,
                        int tag)
      : std::logic_error(op + " on array " + array +
                         ": a split-phase overlap exchange (tag " +
                         std::to_string(tag) +
                         ") is in flight; call end_exchange_overlap() first"),
        array_name(array),
        operation(op),
        pending_tag(tag) {}

  std::string array_name;
  std::string operation;
  int pending_tag;
};

/// Thrown by end_exchange_overlap() when no begin_exchange_overlap() is
/// pending on the array.
class NoExchangeInFlightError : public std::logic_error {
 public:
  explicit NoExchangeInFlightError(const std::string& array)
      : std::logic_error(
            "end_exchange_overlap on array " + array +
            ": no split-phase overlap exchange is in flight (call "
            "begin_exchange_overlap() first)"),
        array_name(array) {}

  std::string array_name;
};

class DistArrayBase;

/// One component of a distribution expression: a per-dimension intrinsic
/// (BLOCK, CYCLIC(k), ...) or the extraction of another array's current
/// per-dimension distribution, as in DISTRIBUTE B4 :: (=B1, CYCLIC(3)).
struct DimExprItem {
  std::variant<dist::DimDist, std::pair<const DistArrayBase*, int>> v;

  DimExprItem(dist::DimDist d) : v(std::move(d)) {}  // NOLINT(google-explicit-constructor)
  DimExprItem(std::pair<const DistArrayBase*, int> e) : v(e) {}  // NOLINT
};

/// Extraction of dimension `dim` of B's current distribution type (=B).
[[nodiscard]] DimExprItem extract_dim(const DistArrayBase& b, int dim = 0);

/// The `da` operand of a distribute statement: a distribution expression
/// (possibly containing extractions), a whole-type extraction, or an
/// alignment specification -- optionally associated with a processor
/// section (Section 2.4).
class DistExpr {
 public:
  DistExpr(dist::DistributionType t)  // NOLINT(google-explicit-constructor)
      : form_(std::move(t)) {}
  DistExpr(std::initializer_list<DimExprItem> items)
      : form_(std::vector<DimExprItem>(items)) {}
  DistExpr(std::vector<DimExprItem> items) : form_(std::move(items)) {}  // NOLINT

  /// Whole-type extraction: DISTRIBUTE B :: (=A).
  static DistExpr extraction(const DistArrayBase& a) {
    DistExpr e{dist::DistributionType{}};
    e.form_ = &a;
    return e;
  }

  /// Alignment form: DISTRIBUTE B :: ALIGN WITH target(...).
  static DistExpr align_with(const DistArrayBase& target, dist::Alignment a);

  /// Associates the expression with an explicit processor section (the
  /// "TO section" clause).
  [[nodiscard]] DistExpr to(dist::ProcessorSection s) && {
    to_ = std::move(s);
    return std::move(*this);
  }
  [[nodiscard]] DistExpr to(dist::ProcessorSection s) const& {
    DistExpr e = *this;
    e.to_ = std::move(s);
    return e;
  }

  /// Evaluates the expression for `target` (the array being distributed):
  /// returns the new distribution as an interned handle from `reg`.
  /// `fallback_section` is used when no explicit section was given.  For
  /// the plain-type and extraction forms a previously-seen distribution
  /// is a registry hash hit -- nothing is constructed.
  [[nodiscard]] dist::DistHandle evaluate(
      const DistArrayBase& target,
      const dist::ProcessorSection& fallback_section,
      dist::DistRegistry& reg) const;

 private:
  std::variant<dist::DistributionType, std::vector<DimExprItem>,
               const DistArrayBase*,
               std::pair<const DistArrayBase*, dist::Alignment>>
      form_;
  std::optional<dist::ProcessorSection> to_;
};

/// The NOTRANSFER attribute of a distribute statement: for the named
/// secondary arrays "only the access function is changed and the elements
/// of the array are not physically moved" (Section 2.4).
struct NoTransfer {
  std::vector<const DistArrayBase*> arrays;

  NoTransfer() = default;
  NoTransfer(std::initializer_list<const DistArrayBase*> as) : arrays(as) {}
  [[nodiscard]] bool contains(const DistArrayBase* a) const noexcept {
    for (const auto* x : arrays) {
      if (x == a) return true;
    }
    return false;
  }
};

/// Per-array runtime descriptor snapshot (paper Section 3.2.1): the
/// components of the information stored locally on each processor.
struct Descriptor {
  dist::IndexDomain index_dom;                 ///< index_dom(A)
  dist::DistHandle dist;                       ///< dist(A); null if none
  dist::LocalLayout segment;                   ///< loc_map / segment basis
  bool dynamic = false;
  bool primary = false;
  std::size_t connect_class_size = 1;          ///< |C(B)| including primary
};

class DistArrayBase {
 public:
  DistArrayBase(const DistArrayBase&) = delete;
  DistArrayBase& operator=(const DistArrayBase&) = delete;
  virtual ~DistArrayBase();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Process-unique array identity (never recycled, unlike heap
  /// addresses): the key executor binding caches use, since with interned
  /// descriptors two distinct arrays may share one DistHandle.
  [[nodiscard]] std::uint64_t serial() const noexcept { return serial_; }

  [[nodiscard]] const dist::IndexDomain& domain() const noexcept {
    return dom_;
  }
  [[nodiscard]] Env& env() const noexcept { return *env_; }
  [[nodiscard]] bool is_dynamic() const noexcept { return dynamic_; }
  [[nodiscard]] const query::RangeSpec& range() const noexcept {
    return range_;
  }

  [[nodiscard]] bool has_distribution() const noexcept {
    return dist_ != nullptr;
  }
  [[nodiscard]] const dist::Distribution& distribution() const {
    if (!dist_) throw NotDistributedError(name_);
    return *dist_;
  }
  /// The array's current descriptor as an interned handle: the identity
  /// key every runtime cache (plans, schedule bindings, procedure
  /// interfaces) uses.  Null when no distribution is associated.
  [[nodiscard]] const dist::DistHandle& dist_handle() const noexcept {
    return dist_;
  }
  /// The array's interned LOCAL overlap description (never null): together
  /// with dist_handle() it keys the Env's halo-plan cache, and PARTI
  /// schedule bindings compare it by identity to validate overlap-area
  /// reads.  Under an asymmetric declaration this is this rank's own spec;
  /// the reconciled per-rank family lives in halo_family().
  [[nodiscard]] const halo::HaloHandle& halo_spec() const noexcept {
    return halo_;
  }
  /// Whether the overlap declaration is per-rank (asymmetric): each rank
  /// may have declared different ghost widths, reconciled by a plan-time
  /// spec exchange (halo/exchange.hpp).  Uniform (SPMD-declared) arrays
  /// never pay that collective.
  [[nodiscard]] bool halo_asymmetric() const noexcept {
    return halo_asymmetric_;
  }
  /// The reconciled per-rank spec family; null until the first
  /// exchange_overlap() after an asymmetric declaration (the exchange is
  /// lazy, at plan time), and always null for uniform declarations.
  [[nodiscard]] const halo::FamilyHandle& halo_family() const noexcept {
    return halo_family_;
  }
  /// Number of spec-exchange collectives this array has performed (one per
  /// asymmetric declaration actually used by an exchange; 0 forever for
  /// uniform arrays -- the fast-path assertion).
  [[nodiscard]] std::uint64_t halo_spec_exchanges() const noexcept {
    return halo_spec_exchanges_;
  }
  /// This rank's local layout under the current distribution.
  [[nodiscard]] const dist::LocalLayout& layout() const {
    if (!dist_) throw NotDistributedError(name_);
    return layout_;
  }

  [[nodiscard]] ConnectClass& connect_class() const noexcept {
    return *cclass_;
  }
  [[nodiscard]] bool is_primary() const noexcept {
    return cclass_->primary() == this;
  }
  [[nodiscard]] bool is_secondary() const noexcept { return !is_primary(); }

  [[nodiscard]] Descriptor describe() const;

  /// The DISTRIBUTE statement (Section 2.4).  Collective: every rank of the
  /// machine must call it with equivalent arguments.  Only legal on dynamic
  /// primary arrays; redistributes every member of the connect class,
  /// skipping data motion for NOTRANSFER members and for members whose
  /// mapping does not actually change.
  void distribute(const DistExpr& expr, const NoTransfer& nt = {});

  /// DISTRIBUTE to a pre-interned descriptor: the handle must cover this
  /// array's index domain.  Distributing to the array's current handle is
  /// a pure no-op (identity is equality); otherwise a cached plan keyed on
  /// the (old, new) handle pair replays without any mapping comparison.
  void distribute(const dist::DistHandle& nd, const NoTransfer& nt = {});

  /// Number of bytes per element (for communication accounting).
  [[nodiscard]] virtual std::size_t element_size() const noexcept = 0;

  /// Whether a split-phase overlap exchange (begin_exchange_overlap) is
  /// pending on this array.  While true, DISTRIBUTE, set_overlap and a
  /// second begin throw ExchangeInFlightError; end_exchange_overlap()
  /// clears it.
  [[nodiscard]] bool exchange_in_flight() const noexcept {
    return exchange_in_flight_;
  }
  /// Tag of the pending split-phase exchange (0 when none is in flight).
  [[nodiscard]] int pending_exchange_tag() const noexcept {
    return pending_exchange_tag_;
  }

  /// Env::sweep() hook, called on every registered array before the
  /// registry sweep: drops derived per-array cache state that pins
  /// retired descriptors without contributing to future hits.  The base
  /// drops the uid-keyed skew memo (its hybrid handles pin hybrid
  /// descriptors; re-deriving one costs a single histogram pass);
  /// DistArray<T> additionally prunes its redistribution plan cache.
  /// Never touches the array's own handle chain -- the live
  /// dist/halo/family handles are exactly what pins their interns.
  virtual void sweep_caches() { hybrid_memo_.clear(); }

  /// The per-side interior margins of this rank under the array's halo
  /// plan: owned elements at least this far from every face are safe to
  /// update while an overlap exchange is in flight (see
  /// HaloPlan::interior_lo).  Uses the pending plan when an exchange is
  /// in flight, so a consumer array of a different shape (e.g. the amr
  /// destination) can partition ITS traversal by the source's margins.
  struct SplitMargins {
    dist::IndexVec lo;
    dist::IndexVec hi;
  };
  [[nodiscard]] SplitMargins split_margins();

  /// Counters of this array's exchange scratch (shared by DISTRIBUTE
  /// replay and exchange_overlap): prepares == replays that moved data
  /// through the facility, grow_allocs == heap allocations it performed.
  /// A warmed-up replay loop holds grow_allocs flat -- the
  /// allocs_per_replay == 0 steady state bench_pic/bench_halo gate.
  [[nodiscard]] const msg::ExchangeScratch::Stats& exchange_scratch_stats()
      const noexcept {
    return exch_scratch_.stats();
  }
  void reset_exchange_scratch_stats() const noexcept {
    exch_scratch_.reset_stats();
  }

  // ---- skew-aware redistribution (PRPD hybrid plans) ----------------------
  //
  // When enabled, DISTRIBUTE runs a cheap ownership-histogram pass over
  // the resolved target mapping; a skewed target is replaced by the
  // interned hybrid H(old, new) in which excess dimension-0 elements keep
  // their old owners (heavy keys stay local, light keys ride the ordinary
  // run-based plan).  See dist/skew.hpp.  Off by default: opting in is an
  // explicit per-array decision because it intentionally changes the
  // installed descriptor.

  enum class SkewPolicy {
    Off,    ///< never hybridize (the all-to-owner reference behavior)
    Auto,   ///< hybridize targets whose ownership skew exceeds the threshold
    Force,  ///< hybridize every applicable non-identity flip (testing)
  };

  /// Sets the skew policy and its knobs.  `threshold` is the ownership
  /// max/mean above which Auto triggers; `cap_factor` scales the per-rank
  /// fair-share receive cap (see dist::SkewConfig).  Clears the
  /// hybridization memo so knob changes take effect on the next flip.
  void set_skew_policy(SkewPolicy p, double threshold = 4.0,
                       double cap_factor = 1.0) {
    skew_policy_ = p;
    skew_threshold_ = threshold;
    skew_cap_factor_ = cap_factor;
    hybrid_memo_.clear();
  }
  [[nodiscard]] SkewPolicy skew_policy() const noexcept {
    return skew_policy_;
  }
  /// Flips whose target was replaced by a hybrid distribution.
  [[nodiscard]] std::uint64_t hybrid_flips() const noexcept {
    return hybrid_flips_;
  }
  /// Detection passes run (memoized pairs count once per first sight).
  [[nodiscard]] std::uint64_t skew_checks() const noexcept {
    return skew_checks_;
  }
  /// Ownership max/mean of the most recently inspected target mapping.
  [[nodiscard]] double last_target_skew() const noexcept {
    return last_target_skew_;
  }
  /// Largest ownership max/mean any detection pass has seen on this array
  /// (a flip loop's balanced flip-back overwrites last_target_skew(); the
  /// peak keeps the skewed target visible to reports).
  [[nodiscard]] double peak_target_skew() const noexcept {
    return peak_target_skew_;
  }

  // ---- local storage geometry (loc_map, Section 3.2.1) --------------------
  //
  // Local storage is laid out column-major over the per-dimension dense
  // local indices, padded by the overlap (ghost) widths.  The geometry is
  // element-type independent, so executors (PARTI schedules) can translate
  // index points to flat storage offsets through the base class.

  /// Flat local-storage offset of an owned element (no ownership check;
  /// the caller guarantees this rank owns i).
  [[nodiscard]] dist::Index storage_offset(const dist::IndexVec& i) const {
    if (!dist_) throw NotDistributedError(name_);
    dist::Index off = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      off += (dim_local(d, i[d]) + ghost_lo_[d]) * alloc_strides_[d];
    }
    return off;
  }

  /// Total allocated elements (owned extent plus ghost padding).
  [[nodiscard]] dist::Index alloc_total() const noexcept {
    return alloc_total_;
  }

  /// Storage offset for a halo-readable element (bounds-checked against
  /// the overlap widths): the access function overlap-area reads -- the
  /// halo() accessor and PARTI halo bindings -- translate through.
  [[nodiscard]] dist::Index halo_offset(const dist::IndexVec& i) const {
    if (!dist_) throw NotDistributedError(name_);
    dist::Index off = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::Index l = dim_local(d, i[d]);
      if (l < -ghost_lo_[d] || l >= layout_.counts[d] + ghost_hi_[d]) {
        throw std::out_of_range("halo access outside overlap area of " +
                                name_);
      }
      off += (l + ghost_lo_[d]) * alloc_strides_[d];
    }
    return off;
  }

 protected:
  DistArrayBase(Env& env, std::string name, dist::IndexDomain dom,
                bool dynamic, query::RangeSpec range,
                std::optional<Connection> connect);

  /// Installs a new distribution.  When `transfer` is true the previous
  /// distribution's data must be moved to the new one (collective); when
  /// false the storage is reallocated with unspecified contents.
  virtual void apply_distribution(dist::DistHandle nd, bool transfer) = 0;

  /// Installs a new distribution that is mapping-equivalent to the current
  /// one: only the descriptor changes (e.g. DISTRIBUTE to an S_BLOCK that
  /// happens to equal the current BLOCK); data stays in place.
  virtual void adopt_descriptor(dist::DistHandle nd) = 0;

  /// Whether a redistribution plan for the (old, new) handle pair is
  /// already cached (an identity-keyed peek; never touches hit/miss
  /// counters).  The DISTRIBUTE engine uses it to skip the O(N) mapping
  /// comparison on flips whose motion is already planned.
  [[nodiscard]] virtual bool has_cached_plan(
      const dist::DistHandle& od, const dist::DistHandle& nd) const {
    (void)od;
    (void)nd;
    return false;
  }

  /// Called by subclasses and the DISTRIBUTE engine after storage has been
  /// swapped.
  void set_distribution(dist::DistHandle d) {
    dist_ = std::move(d);
    layout_ = dist_ ? dist_->layout_for(env_->rank()) : dist::LocalLayout{};
  }

  void check_range(const dist::DistributionType& t) const {
    if (!query::range_allows(range_, t)) {
      throw RangeViolationError(name_, t.to_string());
    }
  }

  /// Local coordinate (0-based within the owned extent) of global index g
  /// in dimension d; may be negative / beyond the extent for halo use.
  [[nodiscard]] dist::Index dim_local(int d, dist::Index g) const {
    if (contig_[static_cast<std::size_t>(d)]) {
      return g - seg_lo_[d];
    }
    return dist_->dim_map(d).local_of(g);
  }

  /// Precondition checks shared by both distribute() entry points.
  void check_distribute_legal(const NoTransfer& nt) const;

  /// Throws ExchangeInFlightError naming `op` if a split-phase overlap
  /// exchange is pending on this array.
  void check_no_exchange_in_flight(const char* op) const;

  /// Resolves this array's current halo plan through the Env's cache.
  /// Uniform declarations key on the (DistHandle uid, HaloSpec uid) pair
  /// exactly as before families existed; asymmetric declarations first
  /// reconcile the per-rank family (one lazy allgather, cached on the
  /// array until the next set_overlap) and -- unless reconciliation
  /// detected the family is actually uniform -- key on the family uid
  /// instead, so two ranks with different local specs can never alias one
  /// plan entry.
  [[nodiscard]] std::shared_ptr<const halo::HaloPlan> lookup_halo_plan();

  /// The DISTRIBUTE engine proper, after the target descriptor has been
  /// resolved to an interned handle.
  void distribute_resolved(dist::DistHandle nd, const NoTransfer& nt);

  /// Skew-policy gatekeeper: runs the detection pass over `nd` and returns
  /// either `nd` unchanged or the interned hybrid H(dist_, nd).  Memoized
  /// per (old, new) uid pair, so flip loops pay the O(N) inspector cost
  /// once per direction and replay through the plan cache afterwards.
  [[nodiscard]] dist::DistHandle maybe_hybridize(dist::DistHandle nd);

  /// Recomputes the allocation shape (counts, strides, segment bases) for
  /// the current distribution and ghost widths.
  void rebuild_storage_shape() {
    const int r = dom_.rank();
    alloc_counts_ = dist::IndexVec::filled(r, 0);
    alloc_strides_ = dist::IndexVec::filled(r, 0);
    seg_lo_ = dist::IndexVec::filled(r, 0);
    alloc_total_ = layout_.member ? 1 : 0;
    for (int d = 0; d < r; ++d) {
      const auto& m = dist_->dim_map(d);
      contig_[static_cast<std::size_t>(d)] = m.contiguous();
      if ((ghost_lo_[d] > 0 || ghost_hi_[d] > 0) && !m.contiguous()) {
        throw std::invalid_argument(
            "array " + name_ +
            ": overlap areas require a contiguous distribution in dimension " +
            std::to_string(d));
      }
      if (!layout_.member) continue;
      if (contig_[static_cast<std::size_t>(d)]) {
        auto seg = m.segment(static_cast<int>(layout_.coords[d]));
        seg_lo_[d] = seg ? seg->lo : 0;
      }
      alloc_counts_[d] = layout_.counts[d] + ghost_lo_[d] + ghost_hi_[d];
      alloc_strides_[d] = alloc_total_;
      alloc_total_ *= alloc_counts_[d];
    }
  }

  [[nodiscard]] static std::uint64_t next_serial() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  Env* env_;
  std::uint64_t serial_ = next_serial();
  std::string name_;
  dist::IndexDomain dom_;
  bool dynamic_;
  query::RangeSpec range_;
  dist::DistHandle dist_;
  dist::LocalLayout layout_;
  halo::HaloHandle halo_;
  // Asymmetric overlap state: the declaration flag, the lazily reconciled
  // per-rank family (null while stale) and the spec-exchange count.
  bool halo_asymmetric_ = false;
  halo::FamilyHandle halo_family_;
  std::uint64_t halo_spec_exchanges_ = 0;
  std::shared_ptr<ConnectClass> cclass_;

  // Split-phase overlap exchange state: the transport tag the begin
  // returned and the plan it packed under, pinned so the end unpacks the
  // exact same geometry even if the Env's plan cache evicts the entry
  // mid-flight.
  bool exchange_in_flight_ = false;
  int pending_exchange_tag_ = 0;
  std::shared_ptr<const halo::HaloPlan> pending_halo_plan_;

  // Persistent exchange scratch shared by every executor replay this
  // array performs (cached DISTRIBUTE data motion, halo exchange): one
  // element-size lane (sizeof(T)), per-peer send/recv buffers and run
  // cursors that survive across calls.
  mutable msg::ExchangeScratch exch_scratch_;

  // Skew-aware redistribution state: the per-array policy and knobs, the
  // per-(old,new)-uid-pair memo of hybridization decisions (a null handle
  // records "leave this pair alone"), and the observability counters the
  // benches/tests assert on.
  SkewPolicy skew_policy_ = SkewPolicy::Off;
  double skew_threshold_ = 4.0;
  double skew_cap_factor_ = 1.0;
  std::unordered_map<std::uint64_t, dist::DistHandle> hybrid_memo_;
  std::uint64_t hybrid_flips_ = 0;
  std::uint64_t skew_checks_ = 0;
  double last_target_skew_ = 1.0;
  double peak_target_skew_ = 1.0;

  // Storage geometry under the current distribution.
  dist::IndexVec ghost_lo_;
  dist::IndexVec ghost_hi_;
  dist::IndexVec alloc_counts_;
  dist::IndexVec alloc_strides_;
  dist::IndexVec seg_lo_;
  dist::Index alloc_total_ = 0;
  std::array<bool, dist::kMaxRank> contig_{};
};

}  // namespace vf::rt
