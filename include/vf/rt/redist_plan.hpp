// Run-based redistribution plans (paper Section 3.2.2 + the PARTI
// inspector/executor discipline of reference [15]).
//
// The DISTRIBUTE statement's data motion is deterministic given the (old,
// new) distribution pair and this rank's storage geometry: both sides
// enumerate their owned sets in global column-major order, so the
// per-(sender, receiver) subsequences agree and only values travel.  A
// RedistPlan is the "inspector" product of that enumeration, factored out
// so it can be cached and replayed:
//
//   * pack_runs:   maximal innermost-dimension runs of the OLD local
//                  storage whose elements go to one destination rank --
//                  each run is a single memcpy into that rank's buffer;
//   * send_counts: exact per-destination element counts (the counting
//                  pass), so buffers are sized once with no reallocation;
//   * unpack_runs / recv_counts: the mirror image for the NEW storage.
//
// Because the plan knows the exact per-peer counts on both sides, the
// executor can use Context::alltoallv_known and skip the count-exchange
// collective entirely: a cached DISTRIBUTE performs exactly one
// all-to-all of values, at most one message per communicating pair.
//
// Successive owned global indices of any DimMap occupy successive local
// storage slots (local_of is ascending-dense), so run detection only has
// to split where the destination rank changes; the innermost dimension's
// storage stride is 1 by construction (column-major allocation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vf/dist/distribution.hpp"

namespace vf::rt {

struct RedistPlan {
  /// One contiguous span of local storage exchanged with one peer.
  struct Run {
    std::size_t offset;  ///< element offset into local storage
    std::size_t length;  ///< run length in elements
    int peer;            ///< destination (pack) / source (unpack) rank
  };

  /// Runs over the OLD storage, in global column-major enumeration order.
  std::vector<Run> pack_runs;
  /// Exact elements sent to each rank (index = destination rank).
  std::vector<std::uint64_t> send_counts;

  /// Runs over the NEW storage, in global column-major enumeration order.
  std::vector<Run> unpack_runs;
  /// Exact elements received from each rank (index = source rank).
  std::vector<std::uint64_t> recv_counts;

  /// Whether this plan degenerates to (near) per-element runs: the run
  /// lists are large and the average run moves fewer than two elements,
  /// so replaying buys the least over rebuilding while the cached Run
  /// lists cost the most memory.  The DistArray plan cache gives such
  /// plans a small budget of their own and never lets them evict compact
  /// plans (the ROADMAP cache-bypass heuristic).
  [[nodiscard]] bool per_element_fragmented() const noexcept {
    const std::size_t runs = pack_runs.size() + unpack_runs.size();
    if (runs < 64) return false;
    std::uint64_t moved = 0;
    for (std::uint64_t c : send_counts) moved += c;
    for (std::uint64_t c : recv_counts) moved += c;
    return moved < 2 * runs;
  }

  /// Per-link balance of this rank's traffic: the maximum per-peer element
  /// total (sent + received) over the mean across peers with the plan's
  /// peer range.  1.0 when the plan moves nothing.  The plan cache
  /// consults this alongside per_element_fragmented(): a fragmented plan
  /// whose traffic concentrates on few links is a skewed-workload plan
  /// (the PRPD hybrid flips), worth full cache priority -- only
  /// fragmented AND balanced plans take the bypass lane.
  [[nodiscard]] double link_skew() const noexcept {
    const std::size_t np =
        send_counts.size() > recv_counts.size() ? send_counts.size()
                                                : recv_counts.size();
    if (np == 0) return 1.0;
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    for (std::size_t p = 0; p < np; ++p) {
      const std::uint64_t s = p < send_counts.size() ? send_counts[p] : 0;
      const std::uint64_t r = p < recv_counts.size() ? recv_counts[p] : 0;
      total += s + r;
      max = s + r > max ? s + r : max;
    }
    if (total == 0) return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(np);
    return static_cast<double>(max) / mean;
  }

  /// Heap + inline bytes this plan holds (cache byte budgeting: fragmented
  /// plans carry O(N) Run entries and dominate any budget they share).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return sizeof(RedistPlan) +
           (pack_runs.capacity() + unpack_runs.capacity()) * sizeof(Run) +
           (send_counts.capacity() + recv_counts.capacity()) *
               sizeof(std::uint64_t);
  }

  /// Builds the plan for rank `me` of an `np`-processor machine moving an
  /// array with the given ghost widths from `od` to `nd`.  Purely local:
  /// no communication.
  [[nodiscard]] static RedistPlan build(const dist::Distribution& od,
                                        const dist::Distribution& nd, int me,
                                        int np, const dist::IndexVec& ghost_lo,
                                        const dist::IndexVec& ghost_hi);
};

}  // namespace vf::rt
