// Connect classes (paper Section 2.3).
//
// "Each equivalence class consists of one distinguished member, the primary
// array B, and 0 or more secondary arrays. ... Distribute statements are
// explicitly applied to primary arrays only; their effect is to
// redistribute all arrays in the associated equivalence class so that the
// connection is maintained."
#pragma once

#include <optional>
#include <vector>

#include "vf/dist/alignment.hpp"
#include "vf/dist/distribution.hpp"
#include "vf/dist/registry.hpp"

namespace vf::rt {

class DistArrayBase;

/// Connection of a secondary array to its primary: either distribution
/// extraction (CONNECT (=B)) or an alignment specification
/// (CONNECT A(I,J) WITH B(...)).
struct Connection {
  DistArrayBase* primary = nullptr;
  std::optional<dist::Alignment> align;  ///< nullopt => distribution extraction

  static Connection extraction(DistArrayBase& b) { return {&b, std::nullopt}; }
  static Connection alignment(DistArrayBase& b, dist::Alignment a) {
    return {&b, std::move(a)};
  }
};

/// The equivalence class C(B) of a primary array B.
class ConnectClass {
 public:
  explicit ConnectClass(DistArrayBase* primary) : primary_(primary) {}

  struct Member {
    DistArrayBase* array = nullptr;
    std::optional<dist::Alignment> align;  ///< nullopt => extraction
  };

  /// The primary array, or nullptr if it has been destroyed while
  /// secondaries were still alive (the class is then orphaned and further
  /// DISTRIBUTE statements are errors).
  [[nodiscard]] DistArrayBase* primary() const noexcept { return primary_; }

  [[nodiscard]] const std::vector<Member>& secondaries() const noexcept {
    return secondaries_;
  }

  void add_secondary(DistArrayBase* a, std::optional<dist::Alignment> align);
  void remove(DistArrayBase* a) noexcept;
  void orphan() noexcept { primary_ = nullptr; }

  [[nodiscard]] bool contains(const DistArrayBase* a) const noexcept;

  /// The distribution induced on a secondary member by the primary's (new)
  /// distribution: CONSTRUCT for alignment connections, re-application of
  /// the distribution type for extraction connections.
  [[nodiscard]] dist::Distribution construct_for(
      const Member& m, const dist::Distribution& primary_dist) const;

  /// Interned variant: extraction connections resolve through the
  /// registry's (domain, type, section) fast path -- a repeated primary
  /// DISTRIBUTE re-derives every secondary descriptor as a hash hit --
  /// and alignment CONSTRUCT results are interned post hoc.
  [[nodiscard]] dist::DistHandle construct_handle_for(
      const Member& m, const dist::DistHandle& primary,
      dist::DistRegistry& reg) const;

 private:
  DistArrayBase* primary_;
  std::vector<Member> secondaries_;
};

}  // namespace vf::rt
