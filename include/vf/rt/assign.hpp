// Cross-distribution array assignment: the "array assignments to produce
// the effect of redistribution" alternative the paper discusses in
// Section 4 ("one could declare two or more arrays with different static
// distribution and use array assignments ... This approach, clearly,
// wastes storage space").
//
// Assignment is implemented with a reusable inspector/executor plan, so
// repeated copies between the same pair of static arrays pay the
// inspection once -- the strongest version of the alternative the paper
// argues against, which the ADI bench (E2) compares with DISTRIBUTE.
#pragma once

#include <memory>

#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::rt {

/// A reusable plan for `dst = src` where both arrays share one index
/// domain but may be distributed differently.
template <typename T>
class AssignPlan {
 public:
  /// Collective.  The plan is bound to the two arrays' *current*
  /// distributions; run() refuses to execute if either has changed.
  AssignPlan(msg::Context& ctx, const DistArray<T>& src,
             const DistArray<T>& dst)
      : src_dist_(src.dist_handle()), dst_dist_(dst.dist_handle()) {
    if (!(src.domain() == dst.domain())) {
      throw std::invalid_argument(
          "AssignPlan: arrays must share an index domain");
    }
    dst.distribution().for_owned(
        ctx.rank(), [&](const dist::IndexVec& i) { points_.push_back(i); });
    schedule_ = std::make_unique<parti::Schedule>(ctx, src.dist_handle(),
                                                  points_);
    buf_.resize(points_.size());
  }

  /// Executes dst = src (collective).  Validity is handle identity: the
  /// plan is bound to the descriptors current at construction.
  void run(msg::Context& ctx, const DistArray<T>& src, DistArray<T>& dst) {
    if (src.dist_handle() != src_dist_ || dst.dist_handle() != dst_dist_) {
      throw std::logic_error(
          "AssignPlan: an array was redistributed since the plan was built");
    }
    schedule_->gather(ctx, src, std::span<T>(buf_));
    for (std::size_t k = 0; k < points_.size(); ++k) {
      dst.at(points_[k]) = buf_[k];
    }
  }

  [[nodiscard]] const parti::Schedule& schedule() const noexcept {
    return *schedule_;
  }

 private:
  dist::DistHandle src_dist_;
  dist::DistHandle dst_dist_;
  std::vector<dist::IndexVec> points_;
  std::unique_ptr<parti::Schedule> schedule_;
  std::vector<T> buf_;
};

/// One-shot dst = src (collective); builds and discards a plan.
template <typename T>
void assign(msg::Context& ctx, const DistArray<T>& src, DistArray<T>& dst) {
  AssignPlan<T> plan(ctx, src, dst);
  plan.run(ctx, src, dst);
}

}  // namespace vf::rt
