// DistArray<T>: the run-time representation of a (possibly dynamically)
// distributed array (paper Section 3.2.1), including:
//
//   * local storage in each processor's memory, laid out column-major over
//     the owned index set, with optional overlap (ghost) areas;
//   * the access functions loc_map (owned access) and halo access;
//   * the realization of the DISTRIBUTE statement's data motion
//     (Section 3.2.2): each processor determines the new locations of its
//     current local data, ships it with at most one message per
//     destination processor, and receives its new local data;
//   * overlap-area exchange for stencil codes and global reductions.
//
// Declaration mirrors the language syntax through DistArray<T>::Spec:
//
//   REAL V(NX,NY) DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST(:,BLOCK)
//
//   DistArray<double> V(env, {.name = "V",
//                             .domain = IndexDomain::of_extents({NX, NY}),
//                             .dynamic = true,
//                             .initial = DistributionType{col(), block()},
//                             .range = {{p_col(), p_block()},
//                                       {p_block(), p_col()}}});
#pragma once

#include <cassert>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <type_traits>

#include "vf/msg/context.hpp"
#include "vf/rt/array_base.hpp"

namespace vf::rt {

template <typename T>
class DistArray final : public DistArrayBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "DistArray elements must be trivially copyable (they travel "
                "in messages)");

 public:
  struct Spec {
    std::string name;
    dist::IndexDomain domain;
    bool dynamic = false;
    /// Initial distribution (DIST clause); static arrays must provide one.
    std::optional<dist::DistributionType> initial;
    /// Target processor section of the initial distribution (TO clause);
    /// defaults to the whole processor array.
    std::optional<dist::ProcessorSection> to;
    /// RANGE attribute; empty = unrestricted.
    query::RangeSpec range;
    /// Overlap (ghost) widths per dimension, low and high side.  Non-zero
    /// widths require the dimension's distribution to be contiguous.
    dist::IndexVec overlap_lo;
    dist::IndexVec overlap_hi;
  };

  /// Declares a primary (or static) array.
  DistArray(Env& env, Spec spec)
      : DistArray(env, std::move(spec), std::optional<Connection>{}) {}

  /// Declares a secondary array connected to a primary (CONNECT clause).
  DistArray(Env& env, Spec spec, Connection connect)
      : DistArray(env, std::move(spec), std::optional<Connection>(connect)) {}

  [[nodiscard]] std::size_t element_size() const noexcept override {
    return sizeof(T);
  }

  // ---- local access (owner-computes fast path) ---------------------------

  /// Reference to owned element i; undefined behaviour if this rank does
  /// not own i (asserted in debug builds).
  [[nodiscard]] T& at(const dist::IndexVec& i) {
    assert(distribution().owns(env_->rank(), i));
    return local_[static_cast<std::size_t>(storage_offset(i))];
  }
  [[nodiscard]] const T& at(const dist::IndexVec& i) const {
    assert(distribution().owns(env_->rank(), i));
    return local_[static_cast<std::size_t>(storage_offset(i))];
  }

  template <typename... Is>
  [[nodiscard]] T& operator()(Is... is) {
    return at(dist::IndexVec{static_cast<dist::Index>(is)...});
  }
  template <typename... Is>
  [[nodiscard]] const T& operator()(Is... is) const {
    return at(dist::IndexVec{static_cast<dist::Index>(is)...});
  }

  /// Read access that may fall into the overlap area: legal for indices
  /// within `overlap` of this rank's owned segment in contiguous
  /// dimensions.  Call exchange_overlap() first to make ghost values
  /// current.
  [[nodiscard]] const T& halo(const dist::IndexVec& i) const {
    return local_[static_cast<std::size_t>(halo_offset(i))];
  }

  /// Whether this rank may read index i through halo() (owned or within
  /// the ghost region).
  [[nodiscard]] bool halo_readable(const dist::IndexVec& i) const {
    if (!dist_) return false;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::Index l = dim_local(d, i[d]);
      if (l < -ghost_lo_[d] || l >= layout_.counts[d] + ghost_hi_[d]) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::span<T> local_span() noexcept { return local_; }
  [[nodiscard]] std::span<const T> local_span() const noexcept {
    return local_;
  }

  // ---- whole-array operations ---------------------------------------------

  /// Calls fn(i, element) for every owned element, in global column-major
  /// order.
  void for_owned(const std::function<void(const dist::IndexVec&, T&)>& fn) {
    distribution().for_owned(env_->rank(), [&](const dist::IndexVec& i) {
      fn(i, local_[static_cast<std::size_t>(storage_offset(i))]);
    });
  }
  void for_owned(
      const std::function<void(const dist::IndexVec&, const T&)>& fn) const {
    distribution().for_owned(env_->rank(), [&](const dist::IndexVec& i) {
      fn(i, local_[static_cast<std::size_t>(storage_offset(i))]);
    });
  }

  void fill(const T& v) {
    for_owned([&](const dist::IndexVec&, T& x) { x = v; });
  }

  /// Initializes every owned element from a global function of its index.
  void init(const std::function<T(const dist::IndexVec&)>& f) {
    for_owned([&](const dist::IndexVec& i, T& x) { x = f(i); });
  }

  /// Global reduction over all elements (collective).
  [[nodiscard]] T reduce(msg::ReduceOp op) const {
    bool first = true;
    T acc{};
    for_owned([&](const dist::IndexVec&, const T& x) {
      acc = first ? x : msg::detail::apply_op(op, acc, x);
      first = false;
    });
    if (first) {
      // Rank owns nothing: contribute the identity.
      acc = identity_of(op);
    }
    return env_->comm().allreduce(acc, op);
  }

  /// Collects the full array on every rank, ordered by the domain's
  /// column-major linearization (collective; intended for tests, examples
  /// and verification).  Requires an arithmetic element type.
  [[nodiscard]] std::vector<T> gather_global() const {
    static_assert(std::is_arithmetic_v<T>,
                  "gather_global requires an arithmetic element type");
    std::vector<T> full(static_cast<std::size_t>(dom_.size()), T{});
    for_owned([&](const dist::IndexVec& i, const T& x) {
      full[static_cast<std::size_t>(dom_.linearize(i))] = x;
    });
    return env_->comm().allreduce_vec(std::move(full), msg::ReduceOp::Sum);
  }

  // ---- overlap areas -------------------------------------------------------

  /// Exchanges overlap areas with segment neighbours in every dimension
  /// with non-zero ghost widths (collective).  Faces only; corners are not
  /// exchanged.
  void exchange_overlap();

 private:
  DistArray(Env& env, Spec spec, std::optional<Connection> connect)
      : DistArrayBase(env, std::move(spec.name), spec.domain, spec.dynamic,
                      std::move(spec.range), connect) {
    if (!dynamic_ && !spec.initial && !connect) {
      throw std::invalid_argument(
          "array " + name_ +
          ": statically distributed arrays need a DIST clause");
    }
    ghost_lo_ = normalize_ghost(spec.overlap_lo);
    ghost_hi_ = normalize_ghost(spec.overlap_hi);

    if (connect) {
      // Secondary: adopt a distribution derived from the primary if the
      // primary already has one.  An explicit DIST clause is not allowed.
      if (spec.initial) {
        throw std::invalid_argument(
            "array " + name_ +
            ": secondary arrays derive their distribution from the primary");
      }
      DistArrayBase* prim = connect->primary;
      if (prim->has_distribution()) {
        for (const auto& m : cclass_->secondaries()) {
          if (m.array == this) {
            auto sd = std::make_shared<const dist::Distribution>(
                cclass_->construct_for(m, prim->distribution()));
            check_range(sd->type());
            apply_distribution(sd, false);
            break;
          }
        }
      }
      return;
    }
    if (spec.initial) {
      auto d = std::make_shared<const dist::Distribution>(
          dist::Distribution(dom_, *spec.initial,
                             spec.to ? *spec.to : env.whole()));
      check_range(d->type());
      apply_distribution(d, false);
    }
  }

  [[nodiscard]] dist::IndexVec normalize_ghost(const dist::IndexVec& g) const {
    if (g.empty()) return dist::IndexVec::filled(dom_.rank(), 0);
    if (g.size() != dom_.rank()) {
      throw std::invalid_argument("array " + name_ +
                                  ": overlap widths must match the rank");
    }
    for (dist::Index w : g) {
      if (w < 0) throw std::invalid_argument("negative overlap width");
    }
    return g;
  }

  /// Local coordinate (0-based within the owned extent) of global index g
  /// in dimension d; may be negative / beyond the extent for halo use.
  [[nodiscard]] dist::Index dim_local(int d, dist::Index g) const {
    if (contig_[static_cast<std::size_t>(d)]) {
      return g - seg_lo_[d];
    }
    return dist_->dim_map(d).local_of(g);
  }

  /// Storage offset of an owned element.
  [[nodiscard]] dist::Index storage_offset(const dist::IndexVec& i) const {
    if (!dist_) throw NotDistributedError(name_);
    dist::Index off = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      off += (dim_local(d, i[d]) + ghost_lo_[d]) * alloc_strides_[d];
    }
    return off;
  }

  /// Storage offset for halo-readable element (bounds-checked).
  [[nodiscard]] dist::Index halo_offset(const dist::IndexVec& i) const {
    if (!dist_) throw NotDistributedError(name_);
    dist::Index off = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::Index l = dim_local(d, i[d]);
      if (l < -ghost_lo_[d] || l >= layout_.counts[d] + ghost_hi_[d]) {
        throw std::out_of_range("halo access outside overlap area of " +
                                name_);
      }
      off += (l + ghost_lo_[d]) * alloc_strides_[d];
    }
    return off;
  }

  void rebuild_storage_shape() {
    const int r = dom_.rank();
    alloc_counts_ = dist::IndexVec::filled(r, 0);
    alloc_strides_ = dist::IndexVec::filled(r, 0);
    seg_lo_ = dist::IndexVec::filled(r, 0);
    alloc_total_ = layout_.member ? 1 : 0;
    for (int d = 0; d < r; ++d) {
      const auto& m = dist_->dim_map(d);
      contig_[static_cast<std::size_t>(d)] = m.contiguous();
      if ((ghost_lo_[d] > 0 || ghost_hi_[d] > 0) && !m.contiguous()) {
        throw std::invalid_argument(
            "array " + name_ +
            ": overlap areas require a contiguous distribution in dimension " +
            std::to_string(d));
      }
      if (!layout_.member) continue;
      if (contig_[static_cast<std::size_t>(d)]) {
        auto seg = m.segment(static_cast<int>(layout_.coords[d]));
        seg_lo_[d] = seg ? seg->lo : 0;
      }
      alloc_counts_[d] = layout_.counts[d] + ghost_lo_[d] + ghost_hi_[d];
      alloc_strides_[d] = alloc_total_;
      alloc_total_ *= alloc_counts_[d];
    }
  }

  void apply_distribution(dist::DistributionPtr nd, bool transfer) override {
    if (!transfer) {
      set_distribution(std::move(nd));
      rebuild_storage_shape();
      local_.assign(static_cast<std::size_t>(alloc_total_), T{});
      return;
    }
    redistribute_data(std::move(nd));
  }

  void adopt_descriptor(dist::DistributionPtr nd) override {
    // Mapping-equivalent swap: same owned sets, same local ordering and
    // sizes; only the descriptor (and the per-dimension addressing
    // representation) changes.
    set_distribution(std::move(nd));
    rebuild_storage_shape();
  }

  /// The data-motion core of DISTRIBUTE (Section 3.2.2): both sides
  /// enumerate their (old/new) owned sets in global column-major order;
  /// the per-(sender,receiver) subsequences agree, so no index lists need
  /// to travel -- only values, at most one message per processor pair.
  void redistribute_data(dist::DistributionPtr ndp) {
    auto& ctx = env_->comm();
    const int np = ctx.nprocs();
    const int me = env_->rank();
    // Keep the old distribution alive through the unpack phase (the
    // descriptor swap below releases this array's reference to it).
    const dist::DistributionPtr odp = dist_;
    const dist::Distribution& od = *odp;
    const dist::Distribution& nd = *ndp;
    const int r = dom_.rank();

    // ---- pack: walk my old owned set, bucket values by new owner --------
    std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
    if (layout_.member && layout_.total > 0) {
      // Per-dimension precomputation: old storage offset contribution and
      // new owner-rank contribution for every owned index.
      std::array<std::vector<dist::Index>, dist::kMaxRank> off_c;
      std::array<std::vector<dist::Index>, dist::kMaxRank> rank_c;
      const auto& na = nd.rank_affine();
      for (int d = 0; d < r; ++d) {
        auto owned = od.owned_in_dim(me, d);
        off_c[static_cast<std::size_t>(d)].reserve(owned.size());
        rank_c[static_cast<std::size_t>(d)].reserve(owned.size());
        for (dist::Index g : owned) {
          off_c[static_cast<std::size_t>(d)].push_back(
              (dim_local(d, g) + ghost_lo_[d]) * alloc_strides_[d]);
          rank_c[static_cast<std::size_t>(d)].push_back(
              na.stride[static_cast<std::size_t>(d)] *
              nd.dim_map(d).proc_of(g));
        }
      }
      std::array<std::size_t, dist::kMaxRank> pos{};
      std::array<std::size_t, dist::kMaxRank> lim{};
      for (int d = 0; d < r; ++d) {
        lim[static_cast<std::size_t>(d)] =
            off_c[static_cast<std::size_t>(d)].size();
      }
      for (;;) {
        dist::Index off = 0;
        dist::Index dest = na.base;
        for (int d = 0; d < r; ++d) {
          off += off_c[static_cast<std::size_t>(d)]
                      [pos[static_cast<std::size_t>(d)]];
          dest += rank_c[static_cast<std::size_t>(d)]
                        [pos[static_cast<std::size_t>(d)]];
        }
        out[static_cast<std::size_t>(dest)].push_back(
            local_[static_cast<std::size_t>(off)]);
        int d = 0;
        for (; d < r; ++d) {
          if (++pos[static_cast<std::size_t>(d)] <
              lim[static_cast<std::size_t>(d)]) {
            break;
          }
          pos[static_cast<std::size_t>(d)] = 0;
        }
        if (d == r) break;
      }
    }

    auto in = ctx.alltoallv(std::move(out));

    // ---- install the new distribution and unpack ------------------------
    set_distribution(std::move(ndp));
    rebuild_storage_shape();
    local_.assign(static_cast<std::size_t>(alloc_total_), T{});

    if (layout_.member && layout_.total > 0) {
      std::array<std::vector<dist::Index>, dist::kMaxRank> off_c;
      std::array<std::vector<dist::Index>, dist::kMaxRank> rank_c;
      const auto& oa = od.rank_affine();
      for (int d = 0; d < r; ++d) {
        auto owned = nd.owned_in_dim(me, d);
        off_c[static_cast<std::size_t>(d)].reserve(owned.size());
        rank_c[static_cast<std::size_t>(d)].reserve(owned.size());
        for (dist::Index g : owned) {
          off_c[static_cast<std::size_t>(d)].push_back(
              (dim_local(d, g) + ghost_lo_[d]) * alloc_strides_[d]);
          rank_c[static_cast<std::size_t>(d)].push_back(
              oa.stride[static_cast<std::size_t>(d)] *
              od.dim_map(d).proc_of(g));
        }
      }
      std::vector<std::size_t> cursor(static_cast<std::size_t>(np), 0);
      std::array<std::size_t, dist::kMaxRank> pos{};
      std::array<std::size_t, dist::kMaxRank> lim{};
      for (int d = 0; d < r; ++d) {
        lim[static_cast<std::size_t>(d)] =
            off_c[static_cast<std::size_t>(d)].size();
      }
      for (;;) {
        dist::Index off = 0;
        dist::Index src = oa.base;
        for (int d = 0; d < r; ++d) {
          off += off_c[static_cast<std::size_t>(d)]
                      [pos[static_cast<std::size_t>(d)]];
          src += rank_c[static_cast<std::size_t>(d)]
                       [pos[static_cast<std::size_t>(d)]];
        }
        local_[static_cast<std::size_t>(off)] =
            in[static_cast<std::size_t>(src)]
              [cursor[static_cast<std::size_t>(src)]++];
        int d = 0;
        for (; d < r; ++d) {
          if (++pos[static_cast<std::size_t>(d)] <
              lim[static_cast<std::size_t>(d)]) {
            break;
          }
          pos[static_cast<std::size_t>(d)] = 0;
        }
        if (d == r) break;
      }
    }
  }

  static T identity_of(msg::ReduceOp op) {
    switch (op) {
      case msg::ReduceOp::Sum:
        return T{};
      case msg::ReduceOp::Min:
        return std::numeric_limits<T>::max();
      case msg::ReduceOp::Max:
        return std::numeric_limits<T>::lowest();
      case msg::ReduceOp::LogicalAnd:
        return static_cast<T>(1);
      case msg::ReduceOp::LogicalOr:
        return T{};
    }
    return T{};
  }

  // ---- overlap exchange helpers -------------------------------------------

  /// Next section coordinate at or beyond `c` (exclusive) in direction
  /// `step` with a non-empty owned count in dimension d, or -1.
  [[nodiscard]] int neighbour_coord(int d, int c, int step) const {
    const auto& m = dist_->dim_map(d);
    for (int x = c + step; x >= 0 && x < m.nprocs(); x += step) {
      if (m.count_on(x) > 0) return x;
    }
    return -1;
  }

  [[nodiscard]] int rank_with_coord(int d, int coord) const {
    const auto& a = dist_->rank_affine();
    const dist::Index delta =
        (static_cast<dist::Index>(coord) - layout_.coords[d]) *
        a.stride[static_cast<std::size_t>(d)];
    return static_cast<int>(env_->rank() + delta);
  }

  /// Copies the slab of owned elements with dimension-d local coordinates
  /// in [from, from+width) into a flat buffer (all other dimensions full
  /// owned extent, ghost planes excluded).
  void pack_slab(int d, dist::Index from, dist::Index width,
                 std::vector<T>& buf) const {
    iterate_slab(d, from, width, [&](dist::Index off) {
      buf.push_back(local_[static_cast<std::size_t>(off)]);
    });
  }

  void unpack_slab(int d, dist::Index from, dist::Index width,
                   const std::vector<T>& buf, std::size_t& cur) {
    iterate_slab(d, from, width, [&](dist::Index off) {
      local_[static_cast<std::size_t>(off)] = buf[cur++];
    });
  }

  /// Iterates storage offsets of the slab where dim-d local coordinates
  /// (possibly in ghost space: negative or >= count) span [from,
  /// from+width) and the other dimensions cover their owned extents.
  void iterate_slab(int d, dist::Index from, dist::Index width,
                    const std::function<void(dist::Index)>& fn) const {
    const int r = dom_.rank();
    std::array<dist::Index, dist::kMaxRank> pos{};
    for (;;) {
      dist::Index off = 0;
      for (int e = 0; e < r; ++e) {
        const dist::Index l =
            e == d ? from + pos[static_cast<std::size_t>(e)]
                   : pos[static_cast<std::size_t>(e)];
        off += (l + ghost_lo_[e]) * alloc_strides_[e];
      }
      fn(off);
      int e = 0;
      for (; e < r; ++e) {
        const dist::Index limit =
            e == d ? width : layout_.counts[e];
        if (++pos[static_cast<std::size_t>(e)] < limit) break;
        pos[static_cast<std::size_t>(e)] = 0;
      }
      if (e == r) break;
    }
  }

  std::vector<T> local_;
  dist::IndexVec ghost_lo_;
  dist::IndexVec ghost_hi_;
  dist::IndexVec alloc_counts_;
  dist::IndexVec alloc_strides_;
  dist::IndexVec seg_lo_;
  dist::Index alloc_total_ = 0;
  std::array<bool, dist::kMaxRank> contig_{};
};

template <typename T>
void DistArray<T>::exchange_overlap() {
  auto& ctx = env_->comm();
  const int np = ctx.nprocs();
  std::vector<std::vector<T>> out(static_cast<std::size_t>(np));
  struct Expect {
    int src;
    int d;
    bool from_low;  // fills my low ghost
    dist::Index width;
  };
  std::vector<Expect> expected;

  if (layout_.member && layout_.total > 0) {
    for (int d = 0; d < dom_.rank(); ++d) {
      if (ghost_lo_[d] == 0 && ghost_hi_[d] == 0) continue;
      const int c = static_cast<int>(layout_.coords[d]);
      const int lo_n = neighbour_coord(d, c, -1);
      const int hi_n = neighbour_coord(d, c, +1);
      // Send my bottom ghost_hi planes to the low neighbour (they fill its
      // high ghost) and my top ghost_lo planes to the high neighbour.
      if (lo_n >= 0 && ghost_hi_[d] > 0) {
        const dist::Index w = std::min<dist::Index>(ghost_hi_[d],
                                                    layout_.counts[d]);
        pack_slab(d, 0, w, out[static_cast<std::size_t>(rank_with_coord(d, lo_n))]);
      }
      if (hi_n >= 0 && ghost_lo_[d] > 0) {
        const dist::Index w = std::min<dist::Index>(ghost_lo_[d],
                                                    layout_.counts[d]);
        pack_slab(d, layout_.counts[d] - w, w,
                  out[static_cast<std::size_t>(rank_with_coord(d, hi_n))]);
      }
      // Expected widths are bounded by the *neighbour's* segment size: a
      // neighbour owning fewer planes than the overlap width sends what it
      // has (partial fill; faces only).
      const auto& m = dist_->dim_map(d);
      if (lo_n >= 0 && ghost_lo_[d] > 0) {
        const dist::Index w =
            std::min<dist::Index>(ghost_lo_[d], m.count_on(lo_n));
        if (w > 0) expected.push_back(Expect{rank_with_coord(d, lo_n), d, true, w});
      }
      if (hi_n >= 0 && ghost_hi_[d] > 0) {
        const dist::Index w =
            std::min<dist::Index>(ghost_hi_[d], m.count_on(hi_n));
        if (w > 0) expected.push_back(Expect{rank_with_coord(d, hi_n), d, false, w});
      }
    }
  }

  auto in = ctx.alltoallv(std::move(out));

  std::vector<std::size_t> cursor(static_cast<std::size_t>(np), 0);
  for (const auto& e : expected) {
    if (e.from_low) {
      unpack_slab(e.d, -e.width, e.width, in[static_cast<std::size_t>(e.src)],
                  cursor[static_cast<std::size_t>(e.src)]);
    } else {
      unpack_slab(e.d, layout_.counts[e.d], e.width,
                  in[static_cast<std::size_t>(e.src)],
                  cursor[static_cast<std::size_t>(e.src)]);
    }
  }
}

}  // namespace vf::rt
