// DistArray<T>: the run-time representation of a (possibly dynamically)
// distributed array (paper Section 3.2.1), including:
//
//   * local storage in each processor's memory, laid out column-major over
//     the owned index set, with optional overlap (ghost) areas;
//   * the access functions loc_map (owned access) and halo access;
//   * the realization of the DISTRIBUTE statement's data motion
//     (Section 3.2.2): the exchange is decomposed into maximal
//     innermost-dimension contiguous runs (RedistPlan), moved with memcpy
//     into exactly-sized buffers, and shipped with at most one message per
//     destination processor.  Plans are cached per (old, new) distribution
//     pair, so repeated DISTRIBUTE flips -- the ADI row/column pattern of
//     Section 4 -- pay the inspector cost once;
//   * overlap-area exchange for stencil codes and global reductions, also
//     run-based.
//
// Declaration mirrors the language syntax through DistArray<T>::Spec:
//
//   REAL V(NX,NY) DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST(:,BLOCK)
//
//   DistArray<double> V(env, {.name = "V",
//                             .domain = IndexDomain::of_extents({NX, NY}),
//                             .dynamic = true,
//                             .initial = DistributionType{col(), block()},
//                             .range = {{p_col(), p_block()},
//                                       {p_block(), p_col()}}});
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>
#include <unordered_map>

#include "vf/core/cache_budget.hpp"
#include "vf/msg/context.hpp"
#include "vf/rt/array_base.hpp"
#include "vf/rt/redist_plan.hpp"

namespace vf::rt {

template <typename T>
class DistArray final : public DistArrayBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "DistArray elements must be trivially copyable (they travel "
                "in messages)");

 public:
  struct Spec {
    std::string name;
    dist::IndexDomain domain;
    bool dynamic = false;
    /// Initial distribution (DIST clause); static arrays must provide one.
    std::optional<dist::DistributionType> initial;
    /// Pre-interned initial descriptor (alternative to `initial`): the
    /// handle form of the DIST clause, for code that already holds one.
    dist::DistHandle initial_dist;
    /// Target processor section of the initial distribution (TO clause);
    /// defaults to the whole processor array.
    std::optional<dist::ProcessorSection> to;
    /// RANGE attribute; empty = unrestricted.
    query::RangeSpec range;
    /// Overlap (ghost) widths per dimension, low and high side.  Non-zero
    /// widths require the dimension's distribution to be contiguous.
    dist::IndexVec overlap_lo;
    dist::IndexVec overlap_hi;
    /// Whether diagonal (corner) ghost regions are exchanged too -- the
    /// OVERLAP shape a 9-point stencil needs.  Faces only by default.
    bool overlap_corners = false;
    /// Per-rank (asymmetric) overlap: each rank may pass DIFFERENT widths
    /// above (an adaptive refinement front widening its ghost zone only
    /// where it currently sits).  The first exchange_overlap() reconciles
    /// them with a plan-time spec exchange; the default (uniform, the
    /// SPMD-declared OVERLAP of the paper) never pays that collective.
    bool overlap_asymmetric = false;
  };

  /// Declares a primary (or static) array.
  DistArray(Env& env, Spec spec)
      : DistArray(env, std::move(spec), std::optional<Connection>{}) {}

  /// Declares a secondary array connected to a primary (CONNECT clause).
  DistArray(Env& env, Spec spec, Connection connect)
      : DistArray(env, std::move(spec), std::optional<Connection>(connect)) {}

  [[nodiscard]] std::size_t element_size() const noexcept override {
    return sizeof(T);
  }

  // ---- local access (owner-computes fast path) ---------------------------

  /// Reference to owned element i; undefined behaviour if this rank does
  /// not own i (asserted in debug builds).
  [[nodiscard]] T& at(const dist::IndexVec& i) {
    assert(distribution().owns(env_->rank(), i));
    return local_[static_cast<std::size_t>(storage_offset(i))];
  }
  [[nodiscard]] const T& at(const dist::IndexVec& i) const {
    assert(distribution().owns(env_->rank(), i));
    return local_[static_cast<std::size_t>(storage_offset(i))];
  }

  template <typename... Is>
  [[nodiscard]] T& operator()(Is... is) {
    return at(dist::IndexVec{static_cast<dist::Index>(is)...});
  }
  template <typename... Is>
  [[nodiscard]] const T& operator()(Is... is) const {
    return at(dist::IndexVec{static_cast<dist::Index>(is)...});
  }

  /// Read access that may fall into the overlap area: legal for indices
  /// within `overlap` of this rank's owned segment in contiguous
  /// dimensions.  Call exchange_overlap() first to make ghost values
  /// current.
  [[nodiscard]] const T& halo(const dist::IndexVec& i) const {
    return local_[static_cast<std::size_t>(halo_offset(i))];
  }

  /// Whether this rank may read index i through halo() (owned or within
  /// the ghost region).
  [[nodiscard]] bool halo_readable(const dist::IndexVec& i) const {
    if (!dist_) return false;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::Index l = dim_local(d, i[d]);
      if (l < -ghost_lo_[d] || l >= layout_.counts[d] + ghost_hi_[d]) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::span<T> local_span() noexcept { return local_; }
  [[nodiscard]] std::span<const T> local_span() const noexcept {
    return local_;
  }

  // ---- whole-array operations ---------------------------------------------

  /// Calls fn(i, element) for every owned element, in global column-major
  /// order.  fn is a templated callable -- no std::function indirection on
  /// the iteration path.
  template <typename F>
  void for_owned(F&& fn) {
    distribution().for_owned(env_->rank(), [&](const dist::IndexVec& i) {
      fn(i, local_[static_cast<std::size_t>(storage_offset(i))]);
    });
  }
  template <typename F>
  void for_owned(F&& fn) const {
    distribution().for_owned(env_->rank(), [&](const dist::IndexVec& i) {
      fn(i, static_cast<const T&>(
                local_[static_cast<std::size_t>(storage_offset(i))]));
    });
  }

  void fill(const T& v) {
    for_owned([&](const dist::IndexVec&, T& x) { x = v; });
  }

  /// Initializes every owned element from a global function of its index.
  template <typename F>
  void init(F&& f) {
    for_owned([&](const dist::IndexVec& i, T& x) { x = f(i); });
  }

  /// Global reduction over all elements (collective).
  [[nodiscard]] T reduce(msg::ReduceOp op) const {
    bool first = true;
    T acc{};
    for_owned([&](const dist::IndexVec&, const T& x) {
      acc = first ? x : msg::detail::apply_op(op, acc, x);
      first = false;
    });
    if (first) {
      // Rank owns nothing: contribute the identity.
      acc = identity_of(op);
    }
    return env_->comm().allreduce(acc, op);
  }

  /// Collects the full array on every rank, ordered by the domain's
  /// column-major linearization (collective; intended for tests, examples
  /// and verification).  Requires an arithmetic element type.
  ///
  /// Implemented as an allgatherv of owned runs: each rank contributes
  /// only its owned values in deterministic global column-major order,
  /// and every receiver re-enumerates each peer's owned set locally to
  /// place them -- so contribution traffic is O(N) total instead of the
  /// former allreduce over a full-size zero vector (O(P*N) inbound plus a
  /// per-element reduction).
  [[nodiscard]] std::vector<T> gather_global() const {
    static_assert(std::is_arithmetic_v<T>,
                  "gather_global requires an arithmetic element type");
    const dist::Distribution& d = distribution();
    std::vector<T> mine;
    mine.reserve(static_cast<std::size_t>(layout_.member ? layout_.total
                                                         : 0));
    for_owned([&](const dist::IndexVec&, const T& x) { mine.push_back(x); });
    auto per_rank = env_->comm().allgather_vec(std::move(mine));
    std::vector<T> full(static_cast<std::size_t>(dom_.size()), T{});
    for (int p = 0; p < env_->comm().nprocs(); ++p) {
      const auto& vals = per_rank[static_cast<std::size_t>(p)];
      std::size_t k = 0;
      d.for_owned(p, [&](const dist::IndexVec& i) {
        full[static_cast<std::size_t>(dom_.linearize(i))] =
            vals[k++];
      });
    }
    return full;
  }

  // ---- overlap areas -------------------------------------------------------

  /// Exchanges overlap areas with segment neighbours in every dimension
  /// with non-zero ghost widths (collective); with overlap_corners set,
  /// diagonal regions travel in the same exchange.  The pack/unpack run
  /// lists come from the Env's halo-plan cache keyed on this array's
  /// (DistHandle, HaloSpec) uid pair: a repeat exchange under an
  /// unchanged distribution replays memcpy runs with pre-agreed counts
  /// (no count collective, no index-list rebuild); a DISTRIBUTE swaps the
  /// handle and thereby the plan.
  void exchange_overlap();

  // ---- split-phase overlap exchange ---------------------------------------
  //
  // begin_exchange_overlap() packs this rank's boundary planes (a
  // SNAPSHOT: later owned writes do not affect what peers receive) and
  // starts the exchange on the machine's active transport;
  // end_exchange_overlap() completes it, scattering arriving payloads
  // into the ghost planes.  Between the two calls:
  //
  //   * owned elements remain readable AND writable -- the exchange
  //     works from the packed snapshot and writes only ghost storage;
  //   * ghost values are UNSPECIFIED: halo() reads of non-owned points
  //     are only meaningful again after end_exchange_overlap() returns;
  //   * DISTRIBUTE, set_overlap and a second begin on this array throw
  //     ExchangeInFlightError -- they would tear down the plan and
  //     storage the pending exchange unpacks into;
  //   * the overlapped-computation pattern is
  //         src.begin_exchange_overlap();
  //         /* update interior points: for_owned_interior */
  //         src.end_exchange_overlap();
  //         /* update boundary points: for_owned_boundary */
  //     which is bitwise-identical to exchange_overlap() followed by a
  //     full sweep, because interior points never read ghost values.
  //
  // Collective exactly like exchange_overlap(): every rank must begin
  // and end in matching order.
  void begin_exchange_overlap();
  void end_exchange_overlap();

  /// Calls fn(i, element) for every owned element whose per-dimension
  /// distance from this rank's segment faces is at least the plan's
  /// interior margin (HaloPlan::interior_lo/_hi) -- the elements whose
  /// stencil reads cannot touch ghost storage, safe to update while an
  /// overlap exchange is in flight.  One rectangular core box, walked in
  /// column-major order.
  template <typename F>
  void for_owned_interior(F&& fn) {
    for_owned_interior(split_margins(), std::forward<F>(fn));
  }

  /// As above with explicit margins: a consumer array updated from a
  /// DIFFERENT array's halo (the amr destination reading the source's
  /// ghosts) partitions its own traversal by the source's margins.
  template <typename F>
  void for_owned_interior(const SplitMargins& m, F&& fn) {
    OwnedPartition p;
    if (!owned_partition(m, p)) return;
    walk_box(p.owned, p.core_lo, p.core_hi, fn);
  }

  /// Complement of for_owned_interior under the same margins: the owned
  /// elements within the margin of some face.  Together the two visit
  /// every owned element exactly once.  Walked as at most 2*rank disjoint
  /// boxes (low/high slab per dimension), each in column-major order.
  template <typename F>
  void for_owned_boundary(F&& fn) {
    for_owned_boundary(split_margins(), std::forward<F>(fn));
  }

  template <typename F>
  void for_owned_boundary(const SplitMargins& m, F&& fn) {
    OwnedPartition p;
    if (!owned_partition(m, p)) return;
    const int r = dom_.rank();
    // Slab decomposition: dimension d's low/high slabs span the core of
    // every earlier dimension and the full extent of every later one, so
    // the slabs are disjoint and their union with the core box is the
    // whole owned block.
    std::array<std::size_t, dist::kMaxRank> lo{};
    std::array<std::size_t, dist::kMaxRank> hi{};
    for (int d = 0; d < r; ++d) {
      for (int e = 0; e < r; ++e) {
        if (e < d) {
          lo[static_cast<std::size_t>(e)] = p.core_lo[static_cast<std::size_t>(e)];
          hi[static_cast<std::size_t>(e)] = p.core_hi[static_cast<std::size_t>(e)];
        } else {
          lo[static_cast<std::size_t>(e)] = 0;
          hi[static_cast<std::size_t>(e)] =
              p.owned[static_cast<std::size_t>(e)].size();
        }
      }
      lo[static_cast<std::size_t>(d)] = 0;
      hi[static_cast<std::size_t>(d)] = p.core_lo[static_cast<std::size_t>(d)];
      walk_box(p.owned, lo, hi, fn);
      lo[static_cast<std::size_t>(d)] = p.core_hi[static_cast<std::size_t>(d)];
      hi[static_cast<std::size_t>(d)] =
          p.owned[static_cast<std::size_t>(d)].size();
      walk_box(p.owned, lo, hi, fn);
    }
  }

  /// Re-declares this array's overlap (ghost) widths -- the dynamic
  /// counterpart of the Spec's OVERLAP clause, for adaptive codes whose
  /// ghost needs move with a refinement front.  Collective: EVERY rank
  /// must call it at the same point, even ranks whose own widths are
  /// unchanged (the call marks the reconciled spec family stale on all
  /// ranks together; a rank that skipped it would enter the next spec
  /// exchange with a stale family and the collective would not match up).
  /// With `asymmetric` (the default) each rank passes its own widths;
  /// with it false the call is the uniform SPMD declaration and no spec
  /// exchange will happen.  Owned element values are preserved across the
  /// storage reshape; ghost contents are invalidated (zeroed) until the
  /// next exchange_overlap().
  ///
  /// Validation errors (rank mismatch, negative widths, a ghost wider
  /// than a neighbour's segment at plan time) need not be thrown on
  /// every rank: a lone failing rank trips the machine's abort fence and
  /// peers blocked in the spec exchange or the halo exchange wake with a
  /// RankAbort instead of hanging.
  void set_overlap(const dist::IndexVec& lo, const dist::IndexVec& hi,
                   bool corners = false, bool asymmetric = true) {
    check_no_exchange_in_flight("set_overlap");
    const dist::IndexVec nlo = normalize_ghost(lo);
    const dist::IndexVec nhi = normalize_ghost(hi);
    halo::HaloHandle nh =
        env_->registry().intern(halo::HaloSpec(nlo, nhi, corners));
    halo_asymmetric_ = asymmetric;
    // Stale on every call: peers may have changed their widths even when
    // this rank's handle is unchanged.
    halo_family_ = halo::FamilyHandle{};
    if (nh == halo_) return;
    if (!dist_) {
      ghost_lo_ = nlo;
      ghost_hi_ = nhi;
      halo_ = std::move(nh);
      return;
    }
    reshape_ghost_storage(nlo, nhi, std::move(nh));
  }

  // ---- redistribution plan cache ------------------------------------------

  /// Enables/disables the (old, new) distribution plan cache; disabling
  /// also drops cached plans AND the hit/miss counters -- stats describe
  /// the cache's contents, and a cold-path benchmark toggling the cache
  /// off must not read pre-toggle traffic.  Mainly for benchmarks
  /// measuring the cold inspector path.
  void set_redist_plan_cache(bool enabled) {
    plan_cache_enabled_ = enabled;
    if (!enabled) {
      plan_cache_.clear();
      plan_order_.clear();
      plan_budget_.reset();
      plan_hits_ = 0;
      plan_misses_ = 0;
    }
  }
  [[nodiscard]] std::uint64_t redist_plan_hits() const noexcept {
    return plan_hits_;
  }
  [[nodiscard]] std::uint64_t redist_plan_misses() const noexcept {
    return plan_misses_;
  }
  [[nodiscard]] std::uint64_t redist_plan_evictions() const noexcept {
    return plan_budget_.evictions();
  }
  [[nodiscard]] std::size_t redist_plan_resident_bytes() const noexcept {
    return plan_budget_.resident_bytes();
  }
  [[nodiscard]] std::size_t redist_plan_count() const noexcept {
    return plan_cache_.size();
  }
  /// Byte ceiling of the plan cache (default 64 MiB -- generous because
  /// skewed fragmented plans are large and exactly the ones whose replay
  /// the skew path depends on); shrinking evicts immediately.
  void set_redist_plan_budget(std::size_t max_bytes) {
    plan_budget_.set_max_bytes(max_bytes);
    while (!plan_order_.empty() && plan_budget_.over()) evict_plan();
  }

  /// Env::sweep() hook: drops the skew memo (base) plus every cached plan
  /// not involving the CURRENT descriptor.  Such a plan could only replay
  /// if the array returned to a retired distribution -- impossible after
  /// the sweep retires its uid for good -- so keeping it would pin dead
  /// interns forever.  Plans touching the live descriptor stay warm.
  void sweep_caches() override {
    DistArrayBase::sweep_caches();
    for (auto it = plan_order_.begin(); it != plan_order_.end();) {
      const PlanEntry& e = plan_cache_.find(*it)->second;
      if (e.od == dist_ || e.nd == dist_) {
        ++it;
        continue;
      }
      it = drop_plan(it, /*pressure=*/false);
    }
  }

  /// Per-link max/mean at or above which a fragmented plan counts as a
  /// skewed-workload plan and keeps full cache priority.
  static constexpr double kPlanSkewThreshold = 4.0;

  /// Whether a plan takes the fragmented-plan bypass lane.  Being
  /// per-element fragmented alone is not enough: a fragmented plan whose
  /// per-link totals are skewed is a skewed-workload plan (the PRPD hybrid
  /// flips land here -- indirect owner tables fragment runs by nature),
  /// and those are exactly the plans whose replay the skew path depends
  /// on.  Only fragmented AND link-balanced plans are second-class.
  [[nodiscard]] static bool bypass_eligible(const RedistPlan& plan) noexcept {
    return plan.per_element_fragmented() &&
           plan.link_skew() < kPlanSkewThreshold;
  }

 private:
  DistArray(Env& env, Spec spec, std::optional<Connection> connect)
      : DistArrayBase(env, std::move(spec.name), spec.domain, spec.dynamic,
                      std::move(spec.range), connect) {
    const bool has_initial = spec.initial || spec.initial_dist;
    if (!dynamic_ && !has_initial && !connect) {
      throw std::invalid_argument(
          "array " + name_ +
          ": statically distributed arrays need a DIST clause");
    }
    ghost_lo_ = normalize_ghost(spec.overlap_lo);
    ghost_hi_ = normalize_ghost(spec.overlap_hi);
    halo_ = env.registry().intern(
        halo::HaloSpec(ghost_lo_, ghost_hi_, spec.overlap_corners));
    halo_asymmetric_ = spec.overlap_asymmetric;

    if (connect) {
      // Secondary: adopt a distribution derived from the primary if the
      // primary already has one.  An explicit DIST clause is not allowed.
      if (has_initial) {
        throw std::invalid_argument(
            "array " + name_ +
            ": secondary arrays derive their distribution from the primary");
      }
      DistArrayBase* prim = connect->primary;
      if (prim->has_distribution()) {
        for (const auto& m : cclass_->secondaries()) {
          if (m.array == this) {
            dist::DistHandle sd = cclass_->construct_handle_for(
                m, prim->dist_handle(), env.registry());
            check_range(sd->type());
            apply_distribution(std::move(sd), false);
            break;
          }
        }
      }
      return;
    }
    if (spec.initial_dist) {
      if (spec.initial) {
        throw std::invalid_argument(
            "array " + name_ + ": initial and initial_dist are exclusive");
      }
      if (spec.to) {
        throw std::invalid_argument(
            "array " + name_ +
            ": initial_dist already fixes the processor section; a TO "
            "clause is not allowed");
      }
      if (!(spec.initial_dist->domain() == dom_)) {
        throw std::invalid_argument(
            "array " + name_ +
            ": initial_dist's index domain does not match the array");
      }
      dist::DistHandle d = env.registry().intern(spec.initial_dist.ptr());
      check_range(d->type());
      apply_distribution(std::move(d), false);
      return;
    }
    if (spec.initial) {
      dist::DistHandle d = env.registry().intern(
          dom_, *spec.initial, spec.to ? *spec.to : env.whole());
      check_range(d->type());
      apply_distribution(std::move(d), false);
    }
  }

  /// Re-allocates local storage for new ghost widths, copying the owned
  /// block across (run-wise over the innermost dimension: both layouts are
  /// column-major over the same owned counts, only the ghost padding and
  /// therefore the strides differ).  Ghost planes start zeroed.
  void reshape_ghost_storage(const dist::IndexVec& nlo,
                             const dist::IndexVec& nhi, halo::HaloHandle nh) {
    // Cached redistribution plans address the ghost-padded storage, so
    // new widths make every cached offset stale: replaying one would
    // read/write outside the reshaped allocation.  Invalidation, not
    // eviction -- the budget is credited, the counter untouched.
    for (auto it = plan_order_.begin(); it != plan_order_.end();) {
      it = drop_plan(it, /*pressure=*/false);
    }
    const dist::IndexVec old_lo = ghost_lo_;
    const dist::IndexVec old_strides = alloc_strides_;
    const std::vector<T> old_local = std::move(local_);
    ghost_lo_ = nlo;
    ghost_hi_ = nhi;
    halo_ = std::move(nh);
    rebuild_storage_shape();
    local_.assign(static_cast<std::size_t>(alloc_total_), T{});
    if (!layout_.member || layout_.total == 0) return;
    const int r = dom_.rank();
    std::array<dist::Index, dist::kMaxRank> pos{};
    for (;;) {
      dist::Index old_off = old_lo[0] * old_strides[0];
      dist::Index new_off = ghost_lo_[0] * alloc_strides_[0];
      for (int d = 1; d < r; ++d) {
        old_off += (pos[static_cast<std::size_t>(d)] + old_lo[d]) *
                   old_strides[d];
        new_off += (pos[static_cast<std::size_t>(d)] + ghost_lo_[d]) *
                   alloc_strides_[d];
      }
      std::memcpy(local_.data() + new_off, old_local.data() + old_off,
                  static_cast<std::size_t>(layout_.counts[0]) * sizeof(T));
      int d = 1;
      for (; d < r; ++d) {
        if (++pos[static_cast<std::size_t>(d)] < layout_.counts[d]) break;
        pos[static_cast<std::size_t>(d)] = 0;
      }
      if (d >= r) break;
    }
  }

  [[nodiscard]] dist::IndexVec normalize_ghost(const dist::IndexVec& g) const {
    if (g.empty()) return dist::IndexVec::filled(dom_.rank(), 0);
    if (static_cast<int>(g.size()) != dom_.rank()) {
      throw std::invalid_argument("array " + name_ +
                                  ": overlap widths must match the rank");
    }
    for (dist::Index w : g) {
      if (w < 0) throw std::invalid_argument("negative overlap width");
    }
    return g;
  }

  void apply_distribution(dist::DistHandle nd, bool transfer) override {
    if (!transfer) {
      set_distribution(std::move(nd));
      rebuild_storage_shape();
      local_.assign(static_cast<std::size_t>(alloc_total_), T{});
      return;
    }
    redistribute_data(std::move(nd));
  }

  void adopt_descriptor(dist::DistHandle nd) override {
    // Mapping-equivalent swap: same owned sets, same local ordering and
    // sizes; only the descriptor (and the per-dimension addressing
    // representation) changes.
    set_distribution(std::move(nd));
    rebuild_storage_shape();
  }

  // ---- DISTRIBUTE data motion (Section 3.2.2) -----------------------------
  //
  // Plans are cached in a flat map keyed on the (old, new) handle-identity
  // pair.  Interning makes handle identity equivalent to structural
  // equality, so a hit needs no fingerprint comparison and no structural
  // re-verification -- one integer hash lookup.

  [[nodiscard]] static std::uint64_t plan_key(
      const dist::DistHandle& od, const dist::DistHandle& nd) noexcept {
    return (static_cast<std::uint64_t>(od.uid()) << 32) | nd.uid();
  }

  [[nodiscard]] bool has_cached_plan(
      const dist::DistHandle& od,
      const dist::DistHandle& nd) const override {
    return plan_cache_enabled_ && od.interned() && nd.interned() &&
           plan_cache_.contains(plan_key(od, nd));
  }

  /// Looks up a cached plan for the (old, new) handle pair.  Handles that
  /// never went through a registry (uid 0) are uncacheable and always
  /// rebuild -- exactly the benchmark cold path.  A hit refreshes the
  /// entry's recency (true LRU, not insertion order).
  [[nodiscard]] std::shared_ptr<const RedistPlan> lookup_plan(
      const dist::DistHandle& od, const dist::DistHandle& nd) {
    if (!plan_cache_enabled_ || !od.interned() || !nd.interned()) {
      return nullptr;
    }
    const std::uint64_t key = plan_key(od, nd);
    const auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++plan_hits_;
      const auto o = std::find(plan_order_.begin(), plan_order_.end(), key);
      std::rotate(o, o + 1, plan_order_.end());  // touch: move to MRU end
      return it->second.plan;
    }
    ++plan_misses_;
    return nullptr;
  }

  /// Removes one cached plan; `pressure` distinguishes budget evictions
  /// (counted) from invalidation drops (not).  Returns the recency-list
  /// iterator following the removed entry.
  std::vector<std::uint64_t>::iterator drop_plan(
      std::vector<std::uint64_t>::iterator o, bool pressure) {
    const auto f = plan_cache_.find(*o);
    if (pressure) {
      plan_budget_.evict(f->second.bytes);
    } else {
      plan_budget_.remove(f->second.bytes);
    }
    plan_cache_.erase(f);
    return plan_order_.erase(o);
  }

  /// Evicts the least-recently-used bypass-eligible (fragmented,
  /// link-balanced) cached plan, falling back to the overall LRU when
  /// none qualifies.  plan_order_ is recency-ordered, LRU first.
  void evict_plan() {
    for (auto it = plan_order_.begin(); it != plan_order_.end(); ++it) {
      if (bypass_eligible(*plan_cache_.find(*it)->second.plan)) {
        drop_plan(it, /*pressure=*/true);
        return;
      }
    }
    if (!plan_order_.empty()) {
      drop_plan(plan_order_.begin(), /*pressure=*/true);
    }
  }

  void store_plan(dist::DistHandle od, dist::DistHandle nd,
                  std::shared_ptr<const RedistPlan> plan) {
    if (!plan_cache_enabled_ || !od.interned() || !nd.interned()) return;
    const std::size_t bytes = sizeof(PlanEntry) + plan->footprint_bytes();
    // A plan larger than the whole ceiling can never fit: leave it
    // uncached (it rebuilds next flip) rather than emptying the cache.
    if (bytes > plan_budget_.max_bytes()) return;
    // Cache-bypass heuristic for per-element-fragmented plans (ROADMAP):
    // their replay advantage is the smallest and their run lists are the
    // largest (O(N) Run entries), so they get a small budget of their own
    // and never evict a compact plan -- when the cache is full of compact
    // plans, the fragmented plan is simply not cached.  Fragmented plans
    // with skewed per-link traffic are exempt (see bypass_eligible).
    const bool bypass = bypass_eligible(*plan);
    if (bypass) {
      std::size_t fragmented = 0;
      for (const auto& [k, e] : plan_cache_) {
        fragmented += bypass_eligible(*e.plan) ? 1u : 0u;
      }
      if (fragmented >= kFragmentedPlanCapacity) {
        evict_plan();  // a fragmented entry exists; it is evicted
      } else if (plan_cache_.size() >= kPlanCacheCapacity) {
        if (fragmented == 0) return;  // bypass: keep the compact plans
        evict_plan();
      }
    } else if (plan_cache_.size() >= kPlanCacheCapacity) {
      // Compact insert into a full cache: prefer evicting the oldest
      // fragmented plan, falling back to the overall oldest.
      evict_plan();
    }
    // Byte ceiling on top of the count caps, same second-class rule: a
    // bypass-eligible plan never pushes a compact one out to make room.
    while (plan_budget_.would_exceed(bytes) && !plan_order_.empty()) {
      if (bypass &&
          !bypass_eligible(
              *plan_cache_.find(plan_order_.front())->second.plan)) {
        bool any_fragmented = false;
        for (const auto& [k, e] : plan_cache_) {
          any_fragmented |= bypass_eligible(*e.plan);
        }
        if (!any_fragmented) return;  // bypass: keep the compact plans
      }
      evict_plan();
    }
    const std::uint64_t key = plan_key(od, nd);
    plan_order_.push_back(key);
    plan_budget_.add(bytes);
    PlanEntry e{std::move(od), std::move(nd), std::move(plan)};
    e.bytes = bytes;
    plan_cache_.insert_or_assign(key, std::move(e));
  }

  /// The data-motion core of DISTRIBUTE: both sides enumerate their
  /// (old/new) owned sets in global column-major order; the
  /// per-(sender,receiver) subsequences agree, so no index lists travel --
  /// only values, at most one message per processor pair.  The enumeration
  /// itself is factored into a cached RedistPlan of contiguous runs; data
  /// moves with memcpy through the array's persistent exchange scratch,
  /// and the exchange skips the count collective because the plan knows
  /// both sides' counts.  A replayed flip (cached plan, warmed scratch,
  /// storage capacity settled) performs no heap allocation.
  void redistribute_data(dist::DistHandle ndp) {
    auto& ctx = env_->comm();
    const int np = ctx.nprocs();
    const int me = env_->rank();
    // Keep the old distribution alive through the unpack phase (the
    // descriptor swap below releases this array's reference to it).
    const dist::DistHandle odp = dist_;

    std::shared_ptr<const RedistPlan> plan = lookup_plan(odp, ndp);
    if (!plan) {
      plan = std::make_shared<const RedistPlan>(
          RedistPlan::build(*odp, *ndp, me, np, ghost_lo_, ghost_hi_));
      store_plan(odp, ndp, plan);
    }

    // ---- pack: one memcpy per run into exactly-sized scratch buffers ----
    msg::ExchangeLane& lane = exch_scratch_.lane(sizeof(T));
    lane.prepare(plan->send_counts, plan->recv_counts);
    const std::span<std::size_t> cur = lane.cursors();
    const T* src = local_.data();
    for (const RedistPlan::Run& run : plan->pack_runs) {
      const auto peer = static_cast<std::size_t>(run.peer);
      std::memcpy(lane.send<T>(run.peer).data() + cur[peer],
                  src + run.offset, run.length * sizeof(T));
      cur[peer] += run.length;
    }

    // Tag the exchange with the (old, new) distribution identity: a
    // lockstep-armed run reports WHICH flip diverged, not just that one
    // did.
    ctx.lockstep_note(plan_key(odp, ndp));
    ctx.alltoallv_known_into(lane);

    // ---- install the new distribution and unpack ------------------------
    // assign() reuses local_'s capacity: once a flip loop has seen its
    // largest shape, the reallocation below disappears too.
    set_distribution(std::move(ndp));
    rebuild_storage_shape();
    local_.assign(static_cast<std::size_t>(alloc_total_), T{});
    std::fill(cur.begin(), cur.end(), std::size_t{0});
    T* dst = local_.data();
    for (const RedistPlan::Run& run : plan->unpack_runs) {
      const auto peer = static_cast<std::size_t>(run.peer);
      std::memcpy(dst + run.offset, lane.recv<T>(run.peer).data() + cur[peer],
                  run.length * sizeof(T));
      cur[peer] += run.length;
    }
  }

  // ---- split-phase traversal helpers --------------------------------------

  /// Per-dimension owned index lists plus the position bounds of the core
  /// (interior) box under a set of margins.
  struct OwnedPartition {
    std::array<std::vector<dist::Index>, dist::kMaxRank> owned;
    std::array<std::size_t, dist::kMaxRank> core_lo{};
    std::array<std::size_t, dist::kMaxRank> core_hi{};
  };

  /// Fills `p` for this rank; returns false when the rank owns nothing.
  /// core = positions [min(m_lo, len), max(that, len - m_hi)) per dim --
  /// clamped so oversized margins yield an empty core, never wrap.
  [[nodiscard]] bool owned_partition(const SplitMargins& m,
                                     OwnedPartition& p) {
    if (!dist_) throw NotDistributedError(name_);
    if (!layout_.member || layout_.total == 0) return false;
    const int r = dom_.rank();
    for (int d = 0; d < r; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      p.owned[ud] = distribution().owned_in_dim(env_->rank(), d);
      if (p.owned[ud].empty()) return false;
      const std::size_t len = p.owned[ud].size();
      const auto mlo = static_cast<std::size_t>(m.lo[d]);
      const auto mhi = static_cast<std::size_t>(m.hi[d]);
      p.core_lo[ud] = std::min(mlo, len);
      p.core_hi[ud] =
          std::max(p.core_lo[ud], len - std::min(mhi, len));
    }
    return true;
  }

  /// Calls fn(i, element) for every owned element whose per-dimension
  /// positions (into the owned index lists) fall in [lo[d], hi[d]), in
  /// column-major order.
  template <typename F>
  void walk_box(const std::array<std::vector<dist::Index>,
                                 dist::kMaxRank>& owned,
                const std::array<std::size_t, dist::kMaxRank>& lo,
                const std::array<std::size_t, dist::kMaxRank>& hi, F&& fn) {
    const int r = dom_.rank();
    dist::IndexVec i;
    for (int d = 0; d < r; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (lo[ud] >= hi[ud]) return;
      i.push_back(owned[ud][lo[ud]]);
    }
    std::array<std::size_t, dist::kMaxRank> pos = lo;
    for (;;) {
      fn(static_cast<const dist::IndexVec&>(i),
         local_[static_cast<std::size_t>(storage_offset(i))]);
      int d = 0;
      for (; d < r; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        if (++pos[ud] < hi[ud]) {
          i[d] = owned[ud][pos[ud]];
          break;
        }
        pos[ud] = lo[ud];
        i[d] = owned[ud][pos[ud]];
      }
      if (d >= r) break;
    }
  }

  static T identity_of(msg::ReduceOp op) {
    switch (op) {
      case msg::ReduceOp::Sum:
        return T{};
      case msg::ReduceOp::Min:
        return std::numeric_limits<T>::max();
      case msg::ReduceOp::Max:
        return std::numeric_limits<T>::lowest();
      case msg::ReduceOp::LogicalAnd:
        return static_cast<T>(1);
      case msg::ReduceOp::LogicalOr:
        return T{};
    }
    return T{};
  }

  struct PlanEntry {
    // The handles pin the interned distributions (and therefore the uid
    // pair the key was built from) for the lifetime of the entry.
    dist::DistHandle od;
    dist::DistHandle nd;
    std::shared_ptr<const RedistPlan> plan;
    std::size_t bytes = 0;
  };
  static constexpr std::size_t kPlanCacheCapacity = 8;
  static constexpr std::size_t kFragmentedPlanCapacity = 2;
  static constexpr std::size_t kDefaultPlanBudgetBytes = std::size_t{64} << 20;

  std::vector<T> local_;
  std::unordered_map<std::uint64_t, PlanEntry> plan_cache_;
  std::vector<std::uint64_t> plan_order_;  ///< recency order, LRU first
  core::CacheBudget plan_budget_{kDefaultPlanBudgetBytes};
  bool plan_cache_enabled_ = true;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_misses_ = 0;
};

template <typename T>
void DistArray<T>::exchange_overlap() {
  check_no_exchange_in_flight("exchange_overlap");
  begin_exchange_overlap();
  end_exchange_overlap();
}

template <typename T>
void DistArray<T>::begin_exchange_overlap() {
  check_no_exchange_in_flight("begin_exchange_overlap");
  // Plan resolution handles both declaration forms: uniform specs go
  // straight to the (DistHandle, HaloSpec) keyed cache with no extra
  // collective; asymmetric specs reconcile the per-rank family first (one
  // lazy allgather) and key on it unless it turned out uniform.
  const std::shared_ptr<const halo::HaloPlan> plan = lookup_halo_plan();

  // Executor, send half: one memcpy per run into exactly-sized buffers,
  // then hand the lane to the active transport.  Buffers and cursors live
  // in the array's shared exchange scratch (the same facility DISTRIBUTE
  // replay uses): a repeat exchange performs no heap allocation on either
  // side.
  msg::ExchangeLane& lane = exch_scratch_.lane(sizeof(T));
  lane.prepare(plan->send_counts, plan->recv_counts);
  const std::span<std::size_t> cur = lane.cursors();
  const T* src = local_.data();
  for (const halo::HaloPlan::Run& run : plan->pack_runs) {
    const auto peer = static_cast<std::size_t>(run.peer);
    std::memcpy(lane.send<T>(run.peer).data() + cur[peer], src + run.offset,
                run.length * sizeof(T));
    cur[peer] += run.length;
  }

  // Tag the exchange with the (array, distribution) identity so a
  // lockstep-armed run names which array's ghost exchange diverged.  The
  // note must be SPMD-uniform, so it folds the array NAME, not the halo
  // spec uid: asymmetric declarations give every rank a legitimately
  // different local spec.
  std::uint64_t note =
      msg::mix64(static_cast<std::uint64_t>(dist_handle().uid()) ^
                 0x9e3779b97f4a7c15ULL);
  for (const char c : name_) {
    note = msg::mix64(note ^ static_cast<unsigned char>(c));
  }
  env_->comm().lockstep_note(note);
  pending_exchange_tag_ = env_->comm().begin_exchange(lane);
  pending_halo_plan_ = plan;
  exchange_in_flight_ = true;
}

template <typename T>
void DistArray<T>::end_exchange_overlap() {
  if (!exchange_in_flight_) throw NoExchangeInFlightError(name_);
  const std::shared_ptr<const halo::HaloPlan> plan =
      std::move(pending_halo_plan_);
  msg::ExchangeLane& lane = exch_scratch_.lane(sizeof(T));
  T* dst = local_.data();
  // Executor, receive half: scatter each arriving payload straight into
  // the ghost planes, peer by peer, via the plan's grouped unpack runs.
  // Under the shared-memory transport `bytes` aliases the PEER's packed
  // send buffer -- the whole transfer is pack memcpy + this scatter, no
  // intermediate frame; under the mailbox transport it is this lane's
  // already-filled recv buffer.  Within one peer the runs advance a
  // cursor in block order, consuming the payload in exactly the order the
  // peer packed it.
  env_->comm().end_exchange(
      lane, pending_exchange_tag_,
      [&](int peer, std::span<const std::byte> bytes) {
        const T* in = reinterpret_cast<const T*>(bytes.data());
        std::size_t cursor = 0;
        for (const halo::HaloPlan::PeerRuns& g : plan->unpack_peers) {
          if (g.peer != peer) continue;
          for (std::uint32_t k = g.begin; k < g.end; ++k) {
            const halo::HaloPlan::Run& run = plan->unpack_runs[k];
            std::memcpy(dst + run.offset, in + cursor,
                        run.length * sizeof(T));
            cursor += run.length;
          }
        }
      });
  exchange_in_flight_ = false;
  pending_exchange_tag_ = 0;
}

}  // namespace vf::rt
