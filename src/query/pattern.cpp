#include "vf/query/pattern.hpp"

#include <sstream>

namespace vf::query {

bool DimPattern::matches(const dist::DimDist& d) const {
  if (kind && *kind != d.kind) return false;
  if (param && d.kind == dist::DimDistKind::Cyclic && *param != d.cyclic_block) {
    return false;
  }
  return true;
}

std::string DimPattern::to_string() const {
  if (!kind) return "*";
  switch (*kind) {
    case dist::DimDistKind::Collapsed:
      return ":";
    case dist::DimDistKind::Block:
      return "BLOCK";
    case dist::DimDistKind::Cyclic:
      return param ? "CYCLIC(" + std::to_string(*param) + ")" : "CYCLIC(*)";
    case dist::DimDistKind::GenBlock:
      return "GEN_BLOCK(*)";
    case dist::DimDistKind::Indirect:
      return "INDIRECT(*)";
  }
  return "?";
}

DimPattern any_dim() { return DimPattern{}; }
DimPattern p_block() { return DimPattern{dist::DimDistKind::Block, {}}; }
DimPattern p_cyclic(dist::Index k) {
  return DimPattern{dist::DimDistKind::Cyclic, k};
}
DimPattern p_cyclic_any() {
  return DimPattern{dist::DimDistKind::Cyclic, {}};
}
DimPattern p_gen_block() { return DimPattern{dist::DimDistKind::GenBlock, {}}; }
DimPattern p_indirect() { return DimPattern{dist::DimDistKind::Indirect, {}}; }
DimPattern p_col() { return DimPattern{dist::DimDistKind::Collapsed, {}}; }

TypePattern TypePattern::exact(const dist::DistributionType& t) {
  std::vector<DimPattern> dims;
  dims.reserve(static_cast<std::size_t>(t.rank()));
  for (const auto& d : t.dims()) {
    DimPattern p;
    p.kind = d.kind;
    if (d.kind == dist::DimDistKind::Cyclic) p.param = d.cyclic_block;
    dims.push_back(p);
  }
  return TypePattern(std::move(dims));
}

bool TypePattern::matches(const dist::DistributionType& t) const {
  if (any_) return true;
  if (t.rank() != rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    if (!dims_[static_cast<std::size_t>(d)].matches(t.dim(d))) return false;
  }
  return true;
}

namespace {

bool dim_may_match(const DimPattern& pattern, const DimPattern& abstract) {
  if (!pattern.kind || !abstract.kind) return true;
  if (*pattern.kind != *abstract.kind) return false;
  if (!pattern.param || !abstract.param) return true;
  return *pattern.param == *abstract.param;
}

bool dim_must_match(const DimPattern& pattern, const DimPattern& abstract) {
  if (!pattern.kind) return true;  // "*" accepts everything
  if (!abstract.kind) return false;
  if (*pattern.kind != *abstract.kind) return false;
  if (!pattern.param) return true;
  if (*pattern.kind != dist::DimDistKind::Cyclic) return true;
  if (!abstract.param) return false;
  return *pattern.param == *abstract.param;
}

}  // namespace

bool TypePattern::may_match(const TypePattern& abstract) const {
  if (any_ || abstract.any_) return true;
  if (rank() != abstract.rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    if (!dim_may_match(dims_[static_cast<std::size_t>(d)],
                       abstract.dims_[static_cast<std::size_t>(d)])) {
      return false;
    }
  }
  return true;
}

bool TypePattern::must_match(const TypePattern& abstract) const {
  if (any_) return true;
  if (abstract.any_) return false;
  if (rank() != abstract.rank()) return false;
  for (int d = 0; d < rank(); ++d) {
    if (!dim_must_match(dims_[static_cast<std::size_t>(d)],
                        abstract.dims_[static_cast<std::size_t>(d)])) {
      return false;
    }
  }
  return true;
}

std::string TypePattern::to_string() const {
  if (any_) return "*";
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    os << (d ? ", " : "") << dims_[d].to_string();
  }
  os << ")";
  return os.str();
}

bool range_allows(const RangeSpec& range, const dist::DistributionType& t) {
  if (range.empty()) return true;
  for (const auto& p : range) {
    if (p.matches(t)) return true;
  }
  return false;
}

std::string to_string(const RangeSpec& range) {
  std::ostringstream os;
  os << "RANGE (";
  for (std::size_t i = 0; i < range.size(); ++i) {
    os << (i ? ", " : "") << range[i].to_string();
  }
  os << ")";
  return os.str();
}

}  // namespace vf::query
