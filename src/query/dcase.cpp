#include "vf/query/dcase.hpp"

#include <stdexcept>

namespace vf::query {

bool idt(const rt::DistArrayBase& a, const TypePattern& p) {
  return p.matches(a.distribution().type());
}

bool idt(const rt::DistArrayBase& a, const TypePattern& p,
         const dist::ProcessorSection& section) {
  return p.matches(a.distribution().type()) &&
         a.distribution().section() == section;
}

DCase::DCase(std::vector<const rt::DistArrayBase*> selectors)
    : selectors_(std::move(selectors)) {
  if (selectors_.empty()) {
    throw std::invalid_argument("DCASE: at least one selector required");
  }
  for (const auto* s : selectors_) {
    if (s == nullptr) throw std::invalid_argument("DCASE: null selector");
  }
}

DCase& DCase::when(std::vector<TypePattern> positional,
                   std::function<void()> action) {
  if (positional.size() > selectors_.size()) {
    throw std::invalid_argument(
        "DCASE: more queries than selectors in positional list");
  }
  Arm arm;
  arm.pats.resize(selectors_.size());
  for (std::size_t k = 0; k < positional.size(); ++k) {
    arm.pats[k] = std::move(positional[k]);
  }
  arm.action = std::move(action);
  arms_.push_back(std::move(arm));
  return *this;
}

DCase& DCase::when_named(
    std::vector<std::pair<std::string, TypePattern>> tagged,
    std::function<void()> action) {
  Arm arm;
  arm.pats.resize(selectors_.size());
  for (auto& [name, pat] : tagged) {
    const int k = selector_index(name);
    if (arm.pats[static_cast<std::size_t>(k)]) {
      throw std::invalid_argument("DCASE: duplicate query for selector " +
                                  name);
    }
    arm.pats[static_cast<std::size_t>(k)] = std::move(pat);
  }
  arm.action = std::move(action);
  arms_.push_back(std::move(arm));
  return *this;
}

DCase& DCase::otherwise(std::function<void()> action) {
  Arm arm;
  arm.is_default = true;
  arm.pats.resize(selectors_.size());
  arm.action = std::move(action);
  arms_.push_back(std::move(arm));
  return *this;
}

int DCase::selector_index(const std::string& name) const {
  for (std::size_t k = 0; k < selectors_.size(); ++k) {
    if (selectors_[k]->name() == name) return static_cast<int>(k);
  }
  throw std::invalid_argument("DCASE: name tag '" + name +
                              "' is not a selector");
}

int DCase::run() const {
  // Memoized dispatch: identical descriptor handles imply identical
  // types, so the previously matched arm is still the first match.  An
  // undistributed selector has a null handle, never equals the memoized
  // (non-null) one, and falls through to the type loop below that throws.
  if (memo_arm_count_ == arms_.size() &&
      memo_handles_.size() == selectors_.size()) {
    bool same = true;
    for (std::size_t k = 0; k < selectors_.size(); ++k) {
      if (!(selectors_[k]->dist_handle() == memo_handles_[k])) {
        same = false;
        break;
      }
    }
    if (same) {
      ++dispatch_hits_;
      if (memo_arm_ >= 0) {
        const Arm& arm = arms_[static_cast<std::size_t>(memo_arm_)];
        if (arm.action) arm.action();
      }
      return memo_arm_;
    }
  }

  // "At the time of execution of the dcase construct, each selector must
  // be allocated and associated with a well-defined distribution."
  std::vector<const dist::DistributionType*> types;
  types.reserve(selectors_.size());
  for (const auto* s : selectors_) {
    types.push_back(&s->distribution().type());  // throws if undistributed
  }

  const auto memoize = [&](int arm) {
    memo_handles_.clear();
    memo_handles_.reserve(selectors_.size());
    for (const auto* s : selectors_) memo_handles_.push_back(s->dist_handle());
    memo_arm_ = arm;
    memo_arm_count_ = arms_.size();
  };

  for (std::size_t j = 0; j < arms_.size(); ++j) {
    const Arm& arm = arms_[j];
    bool match = true;
    if (!arm.is_default) {
      for (std::size_t k = 0; k < selectors_.size() && match; ++k) {
        if (arm.pats[k] && !arm.pats[k]->matches(*types[k])) match = false;
      }
    }
    if (match) {
      memoize(static_cast<int>(j));
      if (arm.action) arm.action();
      return static_cast<int>(j);
    }
  }
  memoize(-1);
  return -1;
}

}  // namespace vf::query
