#include "vf/halo/spec.hpp"

#include <sstream>
#include <stdexcept>

namespace vf::halo {

namespace {
// Families hash in a salted keyspace so a single-member family can never
// collide with its member spec inside a shared bucket map.
constexpr std::uint64_t kFamilyHashSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

HaloSpec::HaloSpec(dist::IndexVec lo, dist::IndexVec hi, bool corners)
    : lo_(lo), hi_(hi), corners_(corners) {
  if (lo_.size() != hi_.size()) {
    throw std::invalid_argument(
        "HaloSpec: lo and hi widths must have the same rank");
  }
  for (dist::Index w : lo_) {
    if (w < 0) throw std::invalid_argument("HaloSpec: negative low width");
  }
  for (dist::Index w : hi_) {
    if (w < 0) throw std::invalid_argument("HaloSpec: negative high width");
  }
}

HaloSpec HaloSpec::none(int rank) {
  return HaloSpec(dist::IndexVec::filled(rank, 0),
                  dist::IndexVec::filled(rank, 0), false);
}

bool HaloSpec::empty() const noexcept {
  for (dist::Index w : lo_) {
    if (w != 0) return false;
  }
  for (dist::Index w : hi_) {
    if (w != 0) return false;
  }
  return true;
}

std::uint64_t HaloSpec::hash() const noexcept {
  std::uint64_t h = dist::fnv1a(dist::kFnvBasis,
                                static_cast<std::uint64_t>(lo_.size()));
  for (dist::Index w : lo_) h = dist::fnv1a(h, static_cast<std::uint64_t>(w));
  for (dist::Index w : hi_) h = dist::fnv1a(h, static_cast<std::uint64_t>(w));
  return dist::fnv1a(h, corners_ ? 1u : 0u);
}

HaloFamily::HaloFamily(std::vector<HaloHandle> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty()) {
    throw std::invalid_argument("HaloFamily: no per-rank specs");
  }
  const HaloHandle& first = specs_.front();
  if (!first) throw std::invalid_argument("HaloFamily: null member spec");
  // Rank consistency is checked against the first member that actually
  // declares a rank; rank-0 "none" specs are compatible with anything.
  int rank = 0;
  for (const HaloHandle& h : specs_) {
    if (!h) throw std::invalid_argument("HaloFamily: null member spec");
    if (h->rank() != 0) {
      if (rank == 0) {
        rank = h->rank();
      } else if (h->rank() != rank) {
        throw std::invalid_argument(
            "HaloFamily: member specs disagree on the array rank");
      }
    }
    uniform_ = uniform_ && h == first;
    empty_ = empty_ && h->empty();
  }
}

std::uint64_t HaloFamily::hash() const noexcept {
  std::uint64_t h = dist::fnv1a(kFamilyHashSalt,
                                static_cast<std::uint64_t>(specs_.size()));
  for (const HaloHandle& s : specs_) h = dist::fnv1a(h, s->hash());
  return h;
}

std::string HaloFamily::to_string() const {
  std::ostringstream os;
  os << "FAMILY[";
  for (std::size_t r = 0; r < specs_.size(); ++r) {
    if (r) os << ", ";
    os << specs_[r]->to_string();
  }
  os << "]";
  return os.str();
}

std::string HaloSpec::to_string() const {
  std::ostringstream os;
  os << "HALO(";
  for (int d = 0; d < rank(); ++d) {
    if (d) os << ", ";
    os << lo_[d] << ":" << hi_[d];
  }
  os << (corners_ ? "; corners" : "") << ")";
  return os.str();
}

}  // namespace vf::halo
