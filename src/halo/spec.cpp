#include "vf/halo/spec.hpp"

#include <sstream>
#include <stdexcept>

namespace vf::halo {

HaloSpec::HaloSpec(dist::IndexVec lo, dist::IndexVec hi, bool corners)
    : lo_(lo), hi_(hi), corners_(corners) {
  if (lo_.size() != hi_.size()) {
    throw std::invalid_argument(
        "HaloSpec: lo and hi widths must have the same rank");
  }
  for (dist::Index w : lo_) {
    if (w < 0) throw std::invalid_argument("HaloSpec: negative low width");
  }
  for (dist::Index w : hi_) {
    if (w < 0) throw std::invalid_argument("HaloSpec: negative high width");
  }
}

HaloSpec HaloSpec::none(int rank) {
  return HaloSpec(dist::IndexVec::filled(rank, 0),
                  dist::IndexVec::filled(rank, 0), false);
}

bool HaloSpec::empty() const noexcept {
  for (dist::Index w : lo_) {
    if (w != 0) return false;
  }
  for (dist::Index w : hi_) {
    if (w != 0) return false;
  }
  return true;
}

std::uint64_t HaloSpec::hash() const noexcept {
  std::uint64_t h = dist::fnv1a(dist::kFnvBasis,
                                static_cast<std::uint64_t>(lo_.size()));
  for (dist::Index w : lo_) h = dist::fnv1a(h, static_cast<std::uint64_t>(w));
  for (dist::Index w : hi_) h = dist::fnv1a(h, static_cast<std::uint64_t>(w));
  return dist::fnv1a(h, corners_ ? 1u : 0u);
}

std::string HaloSpec::to_string() const {
  std::ostringstream os;
  os << "HALO(";
  for (int d = 0; d < rank(); ++d) {
    if (d) os << ", ";
    os << lo_[d] << ":" << hi_[d];
  }
  os << (corners_ ? "; corners" : "") << ")";
  return os.str();
}

}  // namespace vf::halo
