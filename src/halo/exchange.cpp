#include "vf/halo/exchange.hpp"

#include <atomic>
#include <stdexcept>

namespace vf::halo {

namespace {

std::atomic<std::uint64_t> g_spec_exchanges{0};

/// Wire form of one rank's spec: [rank, corners, lo..., hi...].
std::vector<dist::Index> flatten(const HaloSpec& s) {
  std::vector<dist::Index> v;
  v.reserve(2 + 2 * static_cast<std::size_t>(s.rank()));
  v.push_back(s.rank());
  v.push_back(s.corners() ? 1 : 0);
  for (int d = 0; d < s.rank(); ++d) v.push_back(s.lo(d));
  for (int d = 0; d < s.rank(); ++d) v.push_back(s.hi(d));
  return v;
}

HaloSpec unflatten(const std::vector<dist::Index>& v, int peer) {
  if (v.size() < 2 || v[0] < 0 || v[0] > dist::kMaxRank ||
      v.size() != 2 + 2 * static_cast<std::size_t>(v[0])) {
    throw std::runtime_error("halo spec exchange: malformed width vector "
                             "from rank " +
                             std::to_string(peer));
  }
  const int r = static_cast<int>(v[0]);
  dist::IndexVec lo = dist::IndexVec::filled(r, 0);
  dist::IndexVec hi = dist::IndexVec::filled(r, 0);
  for (int d = 0; d < r; ++d) {
    lo[d] = v[static_cast<std::size_t>(2 + d)];
    hi[d] = v[static_cast<std::size_t>(2 + r + d)];
  }
  return HaloSpec(lo, hi, v[1] != 0);
}

}  // namespace

std::uint64_t spec_exchanges() noexcept {
  return g_spec_exchanges.load(std::memory_order_relaxed);
}

FamilyHandle exchange_specs(msg::Context& ctx, dist::DistRegistry& reg,
                            const HaloHandle& local) {
  if (!local) {
    throw std::invalid_argument("exchange_specs: null local halo handle");
  }
  g_spec_exchanges.fetch_add(1, std::memory_order_relaxed);
  auto per_rank = ctx.allgather_vec(flatten(*local));
  std::vector<HaloHandle> specs;
  specs.reserve(per_rank.size());
  for (std::size_t p = 0; p < per_rank.size(); ++p) {
    specs.push_back(reg.intern(unflatten(per_rank[p], static_cast<int>(p))));
  }
  return reg.intern_family(std::move(specs));
}

}  // namespace vf::halo
