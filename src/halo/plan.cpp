#include "vf/halo/plan.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <stdexcept>

namespace vf::halo {

namespace {

using dist::Index;
using dist::kMaxRank;

std::atomic<std::uint64_t> g_builds{0};

/// Nearest coordinate at or beyond `c` (exclusive) in direction `step`
/// with a non-empty owned count in the map, or -1.
int neighbour_coord(const dist::DimMap& m, int c, int step) {
  for (int x = c + step; x >= 0 && x < m.nprocs(); x += step) {
    if (m.count_on(x) > 0) return x;
  }
  return -1;
}

/// Strict admission check of a genuinely asymmetric family against a
/// distribution: every ghosted dimension must be contiguous for every
/// member, and no rank may request a ghost wider than the segment its
/// neighbour actually owns (the uniform path clips instead -- see
/// HaloPlan::build_family's contract).
///
/// The family is replicated, so these throws are normally rank-symmetric
/// -- but they no longer have to be: a rank that swallows the error (or
/// validates against a diverged family) trips the abort fence on its
/// next blocking call instead of deadlocking the exchange.
void validate_family(const dist::Distribution& d, const HaloFamily& fam,
                     int np) {
  const int r = d.domain().rank();
  for (int dd = 0; dd < r; ++dd) {
    bool any = false;
    for (int p = 0; p < np && !any; ++p) {
      const HaloSpec& s = fam.spec_of(p);
      any = s.rank() != 0 && (s.lo(dd) > 0 || s.hi(dd) > 0);
    }
    if (any && !d.dim_map(dd).contiguous()) {
      throw std::invalid_argument(
          "HaloPlan: asymmetric overlap areas require a contiguous "
          "distribution in dimension " +
          std::to_string(dd));
    }
  }
  const auto check_side = [&](int p, const dist::LocalLayout& L, int dd,
                              Index want, int step, const char* side) {
    if (want <= 0) return;
    const dist::DimMap& m = d.dim_map(dd);
    const int n = neighbour_coord(m, static_cast<int>(L.coords[dd]), step);
    if (n >= 0 && m.count_on(n) < want) {
      throw std::invalid_argument(
          "HaloPlan: rank " + std::to_string(p) + " requests a " + side +
          " ghost of " + std::to_string(want) + " plane(s) in dimension " +
          std::to_string(dd) + " but its neighbour owns only " +
          std::to_string(m.count_on(n)) +
          " (asymmetric specs are exact; shrink the requested width)");
    }
  };
  for (int p = 0; p < np; ++p) {
    const HaloSpec& s = fam.spec_of(p);
    if (s.rank() == 0 || s.empty()) continue;
    if (s.rank() != r) {
      throw std::invalid_argument(
          "HaloPlan: rank " + std::to_string(p) +
          "'s spec rank does not match the distribution");
    }
    const dist::LocalLayout L = d.layout_for(p);
    if (!L.member || L.total == 0) continue;
    for (int dd = 0; dd < r; ++dd) {
      check_side(p, L, dd, s.lo(dd), -1, "low");
      check_side(p, L, dd, s.hi(dd), +1, "high");
    }
  }
}

/// The shared plan-construction body.  `mine` is this rank's own spec (the
/// receive side: my ghost regions); `spec_of(rank)` yields the spec of any
/// peer (the send side: what that peer's ghost regions demand of me).  For
/// the uniform build both are the same spec; for a family the send side
/// reads each neighbour's member spec.  `any_remote_ghost` says whether
/// ANY rank's spec has non-zero widths -- a rank with an empty local spec
/// must still walk the direction loop to serve its neighbours.
template <typename SpecOf>
HaloPlan build_impl(const dist::Distribution& d, const HaloSpec& mine,
                    SpecOf&& spec_of, bool any_remote_ghost, int me, int np) {
  g_builds.fetch_add(1, std::memory_order_relaxed);
  HaloPlan plan;
  plan.send_counts.assign(static_cast<std::size_t>(np), 0);
  plan.recv_counts.assign(static_cast<std::size_t>(np), 0);

  const int r = d.domain().rank();
  plan.interior_lo = dist::IndexVec::filled(r, 0);
  plan.interior_hi = dist::IndexVec::filled(r, 0);
  const HaloSpec& spec = mine;
  if (spec.rank() != 0 && spec.rank() != r) {
    throw std::invalid_argument(
        "HaloPlan: spec rank does not match the distribution");
  }
  const dist::LocalLayout L = d.layout_for(me);
  if (!L.member || L.total == 0) return plan;

  // Ghost widths and the ghost-padded column-major storage geometry this
  // plan's offsets address (the same shape DistArrayBase allocates).
  std::array<Index, kMaxRank> glo{};
  std::array<Index, kMaxRank> ghi{};
  std::array<Index, kMaxRank> stride{};
  Index total_alloc = 1;
  bool any_ghost = false;
  for (int dd = 0; dd < r; ++dd) {
    glo[static_cast<std::size_t>(dd)] = spec.rank() == 0 ? 0 : spec.lo(dd);
    ghi[static_cast<std::size_t>(dd)] = spec.rank() == 0 ? 0 : spec.hi(dd);
    if (glo[static_cast<std::size_t>(dd)] > 0 ||
        ghi[static_cast<std::size_t>(dd)] > 0) {
      any_ghost = true;
      if (!d.dim_map(dd).contiguous()) {
        throw std::invalid_argument(
            "HaloPlan: overlap areas require a contiguous distribution in "
            "dimension " +
            std::to_string(dd));
      }
    }
    stride[static_cast<std::size_t>(dd)] = total_alloc;
    total_alloc *= L.counts[dd] + glo[static_cast<std::size_t>(dd)] +
                   ghi[static_cast<std::size_t>(dd)];
    plan.interior_lo[dd] = glo[static_cast<std::size_t>(dd)];
    plan.interior_hi[dd] = ghi[static_cast<std::size_t>(dd)];
  }
  if (!any_ghost && !any_remote_ghost) return plan;

  const dist::RankAffine& affine = d.rank_affine();
  const auto rank_of = [&](const std::array<int, kMaxRank>& coords) {
    Index delta = 0;
    for (int dd = 0; dd < r; ++dd) {
      delta += (static_cast<Index>(coords[static_cast<std::size_t>(dd)]) -
                L.coords[dd]) *
               affine.stride[static_cast<std::size_t>(dd)];
    }
    return static_cast<int>(me + delta);
  };

  // Emits one rectangular region (per-dimension local [from, from+width))
  // as innermost-dimension runs, in local column-major order.  Both sides
  // of every transfer enumerate ascending, so the per-pair sequences
  // agree and only values travel.
  const auto emit = [&](const std::array<Index, kMaxRank>& from,
                        const std::array<Index, kMaxRank>& width, int peer,
                        std::vector<HaloPlan::Run>& runs,
                        std::vector<std::uint64_t>& counts) {
    Index total = 1;
    for (int dd = 0; dd < r; ++dd) total *= width[static_cast<std::size_t>(dd)];
    counts[static_cast<std::size_t>(peer)] +=
        static_cast<std::uint64_t>(total);
    std::array<Index, kMaxRank> pos{};
    for (;;) {
      Index off = (from[0] + glo[0]) * stride[0];
      for (int e = 1; e < r; ++e) {
        off += (from[static_cast<std::size_t>(e)] +
                pos[static_cast<std::size_t>(e)] +
                glo[static_cast<std::size_t>(e)]) *
               stride[static_cast<std::size_t>(e)];
      }
      runs.push_back(HaloPlan::Run{static_cast<std::size_t>(off),
                         static_cast<std::size_t>(width[0]), peer});
      int e = 1;
      for (; e < r; ++e) {
        if (++pos[static_cast<std::size_t>(e)] <
            width[static_cast<std::size_t>(e)]) {
          break;
        }
        pos[static_cast<std::size_t>(e)] = 0;
      }
      if (e >= r) break;
    }
  };

  // Every non-zero direction vector in {-1, 0, +1}^r names one ghost
  // region: faces have exactly one non-zero offset, corners more.  Each
  // region is filled by the nearest rank owning planes in that direction,
  // clipped to what it owns ("partial fill": a neighbour owning fewer
  // planes than the overlap width sends what it has).  Distinct
  // directions always name distinct peers, so each ordered pair moves at
  // most one region -- one buffer, one message.
  std::array<int, kMaxRank> s{};
  for (int dd = 0; dd < r; ++dd) s[static_cast<std::size_t>(dd)] = -1;
  const auto advance = [&]() {
    for (int dd = 0; dd < r; ++dd) {
      auto& x = s[static_cast<std::size_t>(dd)];
      if (++x <= 1) return true;
      x = -1;
    }
    return false;
  };
  do {
    int nonzero = 0;
    for (int dd = 0; dd < r; ++dd) nonzero += s[static_cast<std::size_t>(dd)] != 0;
    if (nonzero == 0) continue;

    // Receiver role: the rank at direction s is my source; it fills my
    // ghost region on side s.  Gated on MY corners flag -- my spec alone
    // defines my ghost regions.
    if (nonzero == 1 || spec.corners()) {
      bool valid = true;
      std::array<Index, kMaxRank> from{};
      std::array<Index, kMaxRank> width{};
      std::array<int, kMaxRank> peer{};
      for (int dd = 0; dd < r && valid; ++dd) {
        const auto ud = static_cast<std::size_t>(dd);
        const int c = static_cast<int>(L.coords[dd]);
        peer[ud] = c;
        if (s[ud] == 0) {
          from[ud] = 0;
          width[ud] = L.counts[dd];
        } else {
          const dist::DimMap& m = d.dim_map(dd);
          const Index g = s[ud] < 0 ? glo[ud] : ghi[ud];
          const int n = neighbour_coord(m, c, s[ud]);
          if (g == 0 || n < 0) {
            valid = false;
            break;
          }
          const Index w = std::min<Index>(g, m.count_on(n));
          if (w == 0) {
            valid = false;
            break;
          }
          peer[ud] = n;
          from[ud] = s[ud] < 0 ? -w : L.counts[dd];
          width[ud] = w;
        }
      }
      if (valid) {
        emit(from, width, rank_of(peer), plan.unpack_runs, plan.recv_counts);
      }
    }

    // Sender role: the rank at direction s is my receiver; I fill its
    // ghost region on the side facing me with my outermost owned planes.
    // The region is defined by the RECEIVER's spec (widths and corners
    // flag), so resolve the peer rank first and read its member spec --
    // under a uniform family that is my own spec and this degenerates to
    // the original symmetric walk.
    {
      bool valid = true;
      std::array<int, kMaxRank> peer{};
      for (int dd = 0; dd < r && valid; ++dd) {
        const auto ud = static_cast<std::size_t>(dd);
        const int c = static_cast<int>(L.coords[dd]);
        peer[ud] = c;
        if (s[ud] == 0) continue;
        const int n = neighbour_coord(d.dim_map(dd), c, s[ud]);
        if (n < 0) {
          valid = false;
          break;
        }
        peer[ud] = n;
      }
      if (valid) {
        const int peer_rank = rank_of(peer);
        const HaloSpec& rs = spec_of(peer_rank);
        const bool rs_none = rs.rank() == 0;
        if (nonzero > 1 && (rs_none || !rs.corners())) valid = false;
        std::array<Index, kMaxRank> from{};
        std::array<Index, kMaxRank> width{};
        for (int dd = 0; dd < r && valid; ++dd) {
          const auto ud = static_cast<std::size_t>(dd);
          if (s[ud] == 0) {
            from[ud] = 0;
            width[ud] = L.counts[dd];
            continue;
          }
          // A receiver above me (s = +1) reads my top planes into its low
          // ghost; a receiver below reads my bottom planes into its high
          // ghost.
          const Index g = rs_none ? 0 : (s[ud] > 0 ? rs.lo(dd) : rs.hi(dd));
          const Index w = std::min<Index>(g, L.counts[dd]);
          if (w == 0) {
            valid = false;
            break;
          }
          from[ud] = s[ud] > 0 ? L.counts[dd] - w : 0;
          width[ud] = w;
        }
        if (valid) {
          emit(from, width, peer_rank, plan.pack_runs, plan.send_counts);
        }
      }
    }
  } while (advance());

  // Group unpack_runs into contiguous same-peer blocks.  The direction
  // walk emits each region's runs back to back, and distinct directions
  // name distinct peers, so one block per (direction, peer) pair results;
  // consumers scatter one peer's payload by walking every block with that
  // peer (corners make several blocks per peer).
  for (std::size_t i = 0; i < plan.unpack_runs.size();) {
    std::size_t j = i;
    while (j < plan.unpack_runs.size() &&
           plan.unpack_runs[j].peer == plan.unpack_runs[i].peer) {
      ++j;
    }
    plan.unpack_peers.push_back(HaloPlan::PeerRuns{
        plan.unpack_runs[i].peer, static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(j)});
    i = j;
  }

  return plan;
}

}  // namespace

std::uint64_t HaloPlan::builds() noexcept {
  return g_builds.load(std::memory_order_relaxed);
}

HaloPlan HaloPlan::build(const dist::Distribution& d, const HaloSpec& spec,
                         int me, int np) {
  return build_impl(
      d, spec, [&](int) -> const HaloSpec& { return spec; },
      /*any_remote_ghost=*/!spec.empty(), me, np);
}

HaloPlan HaloPlan::build_family(const dist::Distribution& d,
                                const HaloFamily& fam, int me, int np) {
  if (fam.nprocs() != np) {
    throw std::invalid_argument(
        "HaloPlan: family member count does not match the machine size");
  }
  if (fam.uniform()) return build(d, fam.spec_of(me), me, np);
  validate_family(d, fam, np);
  return build_impl(
      d, fam.spec_of(me),
      [&](int rank) -> const HaloSpec& { return fam.spec_of(rank); },
      /*any_remote_ghost=*/!fam.empty(), me, np);
}

HaloFill filled_widths(const dist::Distribution& d, const HaloSpec& spec,
                       int me) {
  HaloFill f;
  const int r = d.domain().rank();
  f.lo = dist::IndexVec::filled(r, 0);
  f.hi = dist::IndexVec::filled(r, 0);
  f.corners = spec.corners();
  const dist::LocalLayout L = d.layout_for(me);
  f.member = L.member && L.total > 0;
  if (!f.member || spec.rank() == 0) return f;
  for (int dd = 0; dd < r; ++dd) {
    const dist::DimMap& m = d.dim_map(dd);
    const int c = static_cast<int>(L.coords[dd]);
    if (spec.lo(dd) > 0) {
      const int n = neighbour_coord(m, c, -1);
      if (n >= 0) f.lo[dd] = std::min<Index>(spec.lo(dd), m.count_on(n));
    }
    if (spec.hi(dd) > 0) {
      const int n = neighbour_coord(m, c, +1);
      if (n >= 0) f.hi[dd] = std::min<Index>(spec.hi(dd), m.count_on(n));
    }
  }
  return f;
}

void HaloPlanCache::drop(std::uint64_t key, bool pressure) {
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  if (pressure) {
    budget_.evict(it->second.bytes);
  } else {
    budget_.remove(it->second.bytes);
  }
  lru_.erase(it->second.lru);
  map_.erase(it);
}

void HaloPlanCache::set_max_bytes(std::size_t b) {
  budget_.set_max_bytes(b);
  while (!lru_.empty() && budget_.over()) evict_lru();
}

std::size_t HaloPlanCache::sweep(
    const std::vector<std::uint32_t>& live_dist_uids) {
  std::vector<std::uint64_t> dead;
  for (const auto& [key, e] : map_) {
    const auto uid = static_cast<std::uint32_t>(key >> 33);
    if (std::find(live_dist_uids.begin(), live_dist_uids.end(), uid) ==
        live_dist_uids.end()) {
      dead.push_back(key);
    }
  }
  for (std::uint64_t key : dead) drop(key, /*pressure=*/false);
  return dead.size();
}

std::shared_ptr<const HaloPlan> HaloPlanCache::insert(std::uint64_t key,
                                                      Entry e) {
  drop(key, /*pressure=*/false);  // replacing an entry must not leak bytes
  e.bytes = sizeof(Entry) + e.plan->footprint_bytes();
  // An entry larger than the whole ceiling would evict everything and
  // still not fit: hand the plan back uncached, it rebuilds next time.
  if (e.bytes > budget_.max_bytes()) return e.plan;
  while (!lru_.empty() &&
         (map_.size() >= kCapacity || budget_.would_exceed(e.bytes))) {
    evict_lru();
  }
  lru_.push_front(key);
  e.lru = lru_.begin();
  budget_.add(e.bytes);
  auto plan = e.plan;
  map_.insert_or_assign(key, std::move(e));
  return plan;
}

std::shared_ptr<const HaloPlan> HaloPlanCache::lookup_or_build(
    const dist::DistHandle& d, const HaloHandle& h, int me, int np) {
  if (!d || !h) {
    throw std::invalid_argument(
        "HaloPlanCache: null distribution or halo handle");
  }
  const bool cacheable = enabled_ && d.interned() && h.interned();
  if (cacheable) {
    const auto it = map_.find(key_of(d, h));
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.plan;
    }
    ++stats_.misses;
  }
  auto plan =
      std::make_shared<const HaloPlan>(HaloPlan::build(*d, *h, me, np));
  if (cacheable) {
    return insert(key_of(d, h), Entry{d, h, FamilyHandle{}, std::move(plan)});
  }
  return plan;
}

std::shared_ptr<const HaloPlan> HaloPlanCache::lookup_or_build(
    const dist::DistHandle& d, const FamilyHandle& f, int me, int np) {
  if (!d || !f) {
    throw std::invalid_argument(
        "HaloPlanCache: null distribution or family handle");
  }
  const bool cacheable = enabled_ && d.interned() && f.interned();
  if (cacheable) {
    const auto it = map_.find(key_of(d, f));
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.plan;
    }
    ++stats_.misses;
  }
  auto plan = std::make_shared<const HaloPlan>(
      HaloPlan::build_family(*d, *f, me, np));
  if (cacheable) {
    return insert(key_of(d, f), Entry{d, HaloHandle{}, f, std::move(plan)});
  }
  return plan;
}

}  // namespace vf::halo
