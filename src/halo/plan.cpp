#include "vf/halo/plan.hpp"

#include <array>
#include <atomic>
#include <stdexcept>

namespace vf::halo {

namespace {

using dist::Index;
using dist::kMaxRank;

std::atomic<std::uint64_t> g_builds{0};

/// Nearest coordinate at or beyond `c` (exclusive) in direction `step`
/// with a non-empty owned count in the map, or -1.
int neighbour_coord(const dist::DimMap& m, int c, int step) {
  for (int x = c + step; x >= 0 && x < m.nprocs(); x += step) {
    if (m.count_on(x) > 0) return x;
  }
  return -1;
}

}  // namespace

std::uint64_t HaloPlan::builds() noexcept {
  return g_builds.load(std::memory_order_relaxed);
}

HaloPlan HaloPlan::build(const dist::Distribution& d, const HaloSpec& spec,
                         int me, int np) {
  g_builds.fetch_add(1, std::memory_order_relaxed);
  HaloPlan plan;
  plan.send_counts.assign(static_cast<std::size_t>(np), 0);
  plan.recv_counts.assign(static_cast<std::size_t>(np), 0);

  const int r = d.domain().rank();
  if (spec.rank() != 0 && spec.rank() != r) {
    throw std::invalid_argument(
        "HaloPlan: spec rank does not match the distribution");
  }
  const dist::LocalLayout L = d.layout_for(me);
  if (!L.member || L.total == 0) return plan;

  // Ghost widths and the ghost-padded column-major storage geometry this
  // plan's offsets address (the same shape DistArrayBase allocates).
  std::array<Index, kMaxRank> glo{};
  std::array<Index, kMaxRank> ghi{};
  std::array<Index, kMaxRank> stride{};
  Index total_alloc = 1;
  bool any_ghost = false;
  for (int dd = 0; dd < r; ++dd) {
    glo[static_cast<std::size_t>(dd)] = spec.rank() == 0 ? 0 : spec.lo(dd);
    ghi[static_cast<std::size_t>(dd)] = spec.rank() == 0 ? 0 : spec.hi(dd);
    if (glo[static_cast<std::size_t>(dd)] > 0 ||
        ghi[static_cast<std::size_t>(dd)] > 0) {
      any_ghost = true;
      if (!d.dim_map(dd).contiguous()) {
        throw std::invalid_argument(
            "HaloPlan: overlap areas require a contiguous distribution in "
            "dimension " +
            std::to_string(dd));
      }
    }
    stride[static_cast<std::size_t>(dd)] = total_alloc;
    total_alloc *= L.counts[dd] + glo[static_cast<std::size_t>(dd)] +
                   ghi[static_cast<std::size_t>(dd)];
  }
  if (!any_ghost) return plan;

  const dist::RankAffine& affine = d.rank_affine();
  const auto rank_of = [&](const std::array<int, kMaxRank>& coords) {
    Index delta = 0;
    for (int dd = 0; dd < r; ++dd) {
      delta += (static_cast<Index>(coords[static_cast<std::size_t>(dd)]) -
                L.coords[dd]) *
               affine.stride[static_cast<std::size_t>(dd)];
    }
    return static_cast<int>(me + delta);
  };

  // Emits one rectangular region (per-dimension local [from, from+width))
  // as innermost-dimension runs, in local column-major order.  Both sides
  // of every transfer enumerate ascending, so the per-pair sequences
  // agree and only values travel.
  const auto emit = [&](const std::array<Index, kMaxRank>& from,
                        const std::array<Index, kMaxRank>& width, int peer,
                        std::vector<Run>& runs,
                        std::vector<std::uint64_t>& counts) {
    Index total = 1;
    for (int dd = 0; dd < r; ++dd) total *= width[static_cast<std::size_t>(dd)];
    counts[static_cast<std::size_t>(peer)] +=
        static_cast<std::uint64_t>(total);
    std::array<Index, kMaxRank> pos{};
    for (;;) {
      Index off = (from[0] + glo[0]) * stride[0];
      for (int e = 1; e < r; ++e) {
        off += (from[static_cast<std::size_t>(e)] +
                pos[static_cast<std::size_t>(e)] +
                glo[static_cast<std::size_t>(e)]) *
               stride[static_cast<std::size_t>(e)];
      }
      runs.push_back(Run{static_cast<std::size_t>(off),
                         static_cast<std::size_t>(width[0]), peer});
      int e = 1;
      for (; e < r; ++e) {
        if (++pos[static_cast<std::size_t>(e)] <
            width[static_cast<std::size_t>(e)]) {
          break;
        }
        pos[static_cast<std::size_t>(e)] = 0;
      }
      if (e >= r) break;
    }
  };

  // Every non-zero direction vector in {-1, 0, +1}^r names one ghost
  // region: faces have exactly one non-zero offset, corners more.  Each
  // region is filled by the nearest rank owning planes in that direction,
  // clipped to what it owns ("partial fill": a neighbour owning fewer
  // planes than the overlap width sends what it has).  Distinct
  // directions always name distinct peers, so each ordered pair moves at
  // most one region -- one buffer, one message.
  std::array<int, kMaxRank> s{};
  for (int dd = 0; dd < r; ++dd) s[static_cast<std::size_t>(dd)] = -1;
  const auto advance = [&]() {
    for (int dd = 0; dd < r; ++dd) {
      auto& x = s[static_cast<std::size_t>(dd)];
      if (++x <= 1) return true;
      x = -1;
    }
    return false;
  };
  do {
    int nonzero = 0;
    for (int dd = 0; dd < r; ++dd) nonzero += s[static_cast<std::size_t>(dd)] != 0;
    if (nonzero == 0) continue;
    if (nonzero > 1 && !spec.corners()) continue;

    // Receiver role: the rank at direction s is my source; it fills my
    // ghost region on side s.
    {
      bool valid = true;
      std::array<Index, kMaxRank> from{};
      std::array<Index, kMaxRank> width{};
      std::array<int, kMaxRank> peer{};
      for (int dd = 0; dd < r && valid; ++dd) {
        const auto ud = static_cast<std::size_t>(dd);
        const int c = static_cast<int>(L.coords[dd]);
        peer[ud] = c;
        if (s[ud] == 0) {
          from[ud] = 0;
          width[ud] = L.counts[dd];
        } else {
          const dist::DimMap& m = d.dim_map(dd);
          const Index g = s[ud] < 0 ? glo[ud] : ghi[ud];
          const int n = neighbour_coord(m, c, s[ud]);
          if (g == 0 || n < 0) {
            valid = false;
            break;
          }
          const Index w = std::min<Index>(g, m.count_on(n));
          if (w == 0) {
            valid = false;
            break;
          }
          peer[ud] = n;
          from[ud] = s[ud] < 0 ? -w : L.counts[dd];
          width[ud] = w;
        }
      }
      if (valid) {
        emit(from, width, rank_of(peer), plan.unpack_runs, plan.recv_counts);
      }
    }

    // Sender role: the rank at direction s is my receiver; I fill its
    // ghost region on the side facing me with my outermost owned planes.
    {
      bool valid = true;
      std::array<Index, kMaxRank> from{};
      std::array<Index, kMaxRank> width{};
      std::array<int, kMaxRank> peer{};
      for (int dd = 0; dd < r && valid; ++dd) {
        const auto ud = static_cast<std::size_t>(dd);
        const int c = static_cast<int>(L.coords[dd]);
        peer[ud] = c;
        if (s[ud] == 0) {
          from[ud] = 0;
          width[ud] = L.counts[dd];
        } else {
          // A receiver above me (s = +1) reads my top planes into its low
          // ghost; a receiver below reads my bottom planes into its high
          // ghost.
          const dist::DimMap& m = d.dim_map(dd);
          const Index g = s[ud] > 0 ? glo[ud] : ghi[ud];
          const int n = neighbour_coord(m, c, s[ud]);
          if (g == 0 || n < 0) {
            valid = false;
            break;
          }
          const Index w = std::min<Index>(g, L.counts[dd]);
          if (w == 0) {
            valid = false;
            break;
          }
          peer[ud] = n;
          from[ud] = s[ud] > 0 ? L.counts[dd] - w : 0;
          width[ud] = w;
        }
      }
      if (valid) {
        emit(from, width, rank_of(peer), plan.pack_runs, plan.send_counts);
      }
    }
  } while (advance());

  return plan;
}

HaloFill filled_widths(const dist::Distribution& d, const HaloSpec& spec,
                       int me) {
  HaloFill f;
  const int r = d.domain().rank();
  f.lo = dist::IndexVec::filled(r, 0);
  f.hi = dist::IndexVec::filled(r, 0);
  f.corners = spec.corners();
  const dist::LocalLayout L = d.layout_for(me);
  f.member = L.member && L.total > 0;
  if (!f.member || spec.rank() == 0) return f;
  for (int dd = 0; dd < r; ++dd) {
    const dist::DimMap& m = d.dim_map(dd);
    const int c = static_cast<int>(L.coords[dd]);
    if (spec.lo(dd) > 0) {
      const int n = neighbour_coord(m, c, -1);
      if (n >= 0) f.lo[dd] = std::min<Index>(spec.lo(dd), m.count_on(n));
    }
    if (spec.hi(dd) > 0) {
      const int n = neighbour_coord(m, c, +1);
      if (n >= 0) f.hi[dd] = std::min<Index>(spec.hi(dd), m.count_on(n));
    }
  }
  return f;
}

std::shared_ptr<const HaloPlan> HaloPlanCache::lookup_or_build(
    const dist::DistHandle& d, const HaloHandle& h, int me, int np) {
  if (!d || !h) {
    throw std::invalid_argument(
        "HaloPlanCache: null distribution or halo handle");
  }
  const bool cacheable = enabled_ && d.interned() && h.interned();
  if (cacheable) {
    const auto it = map_.find(key_of(d, h));
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second.plan;
    }
    ++stats_.misses;
  }
  auto plan =
      std::make_shared<const HaloPlan>(HaloPlan::build(*d, *h, me, np));
  if (cacheable) {
    if (map_.size() >= kCapacity && !order_.empty()) {
      map_.erase(order_.front());
      order_.erase(order_.begin());
    }
    const std::uint64_t key = key_of(d, h);
    order_.push_back(key);
    map_.insert_or_assign(key, Entry{d, h, plan});
  }
  return plan;
}

}  // namespace vf::halo
