#include "vf/rt/redist_plan.hpp"

#include <array>

namespace vf::rt {

namespace {

using dist::Index;
using dist::IndexVec;
using dist::kMaxRank;

/// Emits the runs for one side of the exchange: `mine` is the distribution
/// whose data occupies local storage (old for packing, new for unpacking),
/// `other` is the distribution determining the peer rank of each element.
/// Runs are produced in global column-major enumeration order over this
/// rank's owned set, split wherever the peer changes; counts[peer]
/// accumulates exact element totals (the counting pass).
void build_side(const dist::Distribution& mine, const dist::Distribution& other,
                int me, const IndexVec& ghost_lo, const IndexVec& ghost_hi,
                std::vector<RedistPlan::Run>& runs,
                std::vector<std::uint64_t>& counts) {
  const dist::LocalLayout L = mine.layout_for(me);
  if (!L.member || L.total == 0) return;
  const int r = mine.domain().rank();

  // Column-major allocation strides over the ghost-padded owned extents.
  IndexVec strides = IndexVec::filled(r, 0);
  Index total = 1;
  for (int d = 0; d < r; ++d) {
    strides[d] = total;
    total *= L.counts[d] + ghost_lo[d] + ghost_hi[d];
  }

  const dist::RankAffine& oa = other.rank_affine();

  // Innermost dimension: collapse the per-element peer contributions into
  // maximal constant-peer runs.  Successive owned globals sit at
  // successive local offsets (local_of is ascending-dense), so each run is
  // one contiguous span of storage.
  struct InnerRun {
    Index start_local;
    Index len;
    Index contrib;
  };
  std::vector<InnerRun> inner;
  {
    const auto owned0 = mine.owned_in_dim(me, 0);
    const auto& m0 = other.dim_map(0);
    const Index s0 = oa.stride[0];
    for (std::size_t j = 0; j < owned0.size(); ++j) {
      const Index contrib = s0 * m0.proc_of(owned0[j]);
      if (!inner.empty() && inner.back().contrib == contrib &&
          inner.back().start_local + inner.back().len ==
              static_cast<Index>(j)) {
        ++inner.back().len;
      } else {
        inner.push_back({static_cast<Index>(j), 1, contrib});
      }
    }
  }

  // Outer dimensions: per-dimension peer-rank contributions; storage
  // offsets follow from the dense local enumeration directly.
  std::array<std::vector<Index>, kMaxRank> rank_c;
  for (int d = 1; d < r; ++d) {
    const auto owned = mine.owned_in_dim(me, d);
    auto& rc = rank_c[static_cast<std::size_t>(d)];
    rc.reserve(owned.size());
    const auto& md = other.dim_map(d);
    const Index sd = oa.stride[static_cast<std::size_t>(d)];
    for (Index g : owned) rc.push_back(sd * md.proc_of(g));
  }

  std::array<std::size_t, kMaxRank> pos{};
  for (;;) {
    Index outer_off = 0;
    Index outer_rank = oa.base;
    for (int d = 1; d < r; ++d) {
      const auto p = pos[static_cast<std::size_t>(d)];
      outer_off += (static_cast<Index>(p) + ghost_lo[d]) * strides[d];
      outer_rank += rank_c[static_cast<std::size_t>(d)][p];
    }
    for (const InnerRun& ir : inner) {
      const int peer = static_cast<int>(outer_rank + ir.contrib);
      runs.push_back(RedistPlan::Run{
          static_cast<std::size_t>(outer_off +
                                   (ir.start_local + ghost_lo[0]) *
                                       strides[0]),
          static_cast<std::size_t>(ir.len), peer});
      counts[static_cast<std::size_t>(peer)] +=
          static_cast<std::uint64_t>(ir.len);
    }
    int d = 1;
    for (; d < r; ++d) {
      auto& p = pos[static_cast<std::size_t>(d)];
      if (++p < rank_c[static_cast<std::size_t>(d)].size()) break;
      p = 0;
    }
    if (d == r) break;
  }
}

}  // namespace

RedistPlan RedistPlan::build(const dist::Distribution& od,
                             const dist::Distribution& nd, int me, int np,
                             const dist::IndexVec& ghost_lo,
                             const dist::IndexVec& ghost_hi) {
  RedistPlan plan;
  plan.send_counts.assign(static_cast<std::size_t>(np), 0);
  plan.recv_counts.assign(static_cast<std::size_t>(np), 0);
  build_side(od, nd, me, ghost_lo, ghost_hi, plan.pack_runs,
             plan.send_counts);
  build_side(nd, od, me, ghost_lo, ghost_hi, plan.unpack_runs,
             plan.recv_counts);
  return plan;
}

}  // namespace vf::rt
