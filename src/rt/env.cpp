#include "vf/rt/env.hpp"

#include <algorithm>
#include <stdexcept>

#include "vf/rt/array_base.hpp"

namespace vf::rt {

Env::Env(msg::Context& ctx, dist::ProcessorArray procs)
    : ctx_(&ctx), procs_(std::move(procs)) {
  if (procs_.base_rank() < 0 ||
      procs_.base_rank() + procs_.nprocs() > ctx.nprocs()) {
    throw std::invalid_argument(
        "Env: processor array does not fit within the machine");
  }
}

Env::Env(msg::Context& ctx)
    : Env(ctx, dist::ProcessorArray::line(ctx.nprocs())) {}

void Env::register_array(DistArrayBase& a) { arrays_.push_back(&a); }

void Env::unregister_array(DistArrayBase& a) noexcept {
  arrays_.erase(std::remove(arrays_.begin(), arrays_.end(), &a),
                arrays_.end());
}

DistArrayBase* Env::find_array(std::string_view name) const noexcept {
  for (auto* a : arrays_) {
    if (a->name() == name) return a;
  }
  return nullptr;
}

Env::SweepReport Env::sweep() {
  // A pending split-phase exchange pins its plan and the descriptors
  // under it; sweeping mid-exchange would tear down what end_exchange
  // is about to unpack into.
  for (const auto* a : arrays_) {
    if (a->exchange_in_flight()) {
      throw ExchangeInFlightError(a->name(), "Env::sweep",
                                  a->pending_exchange_tag());
    }
  }

  // Per-array derived caches first: plan entries and skew memos released
  // here fall to use_count()==1 before the registry pass sees them.
  for (auto* a : arrays_) a->sweep_caches();

  // Halo plans keyed on a distribution no registered array holds can
  // never be looked up again (uids are not reused); everything keyed on
  // a live descriptor stays warm.
  std::vector<std::uint32_t> live;
  live.reserve(arrays_.size());
  for (const auto* a : arrays_) {
    if (a->dist_handle().interned()) live.push_back(a->dist_handle().uid());
  }

  SweepReport r;
  r.halo_plans_dropped = halo_plans_.sweep(live);
  r.registry_swept = registry_.sweep();
  return r;
}

}  // namespace vf::rt
