#include "vf/rt/env.hpp"

#include <algorithm>
#include <stdexcept>

#include "vf/rt/array_base.hpp"

namespace vf::rt {

Env::Env(msg::Context& ctx, dist::ProcessorArray procs)
    : ctx_(&ctx), procs_(std::move(procs)) {
  if (procs_.base_rank() < 0 ||
      procs_.base_rank() + procs_.nprocs() > ctx.nprocs()) {
    throw std::invalid_argument(
        "Env: processor array does not fit within the machine");
  }
}

Env::Env(msg::Context& ctx)
    : Env(ctx, dist::ProcessorArray::line(ctx.nprocs())) {}

void Env::register_array(DistArrayBase& a) { arrays_.push_back(&a); }

void Env::unregister_array(DistArrayBase& a) noexcept {
  arrays_.erase(std::remove(arrays_.begin(), arrays_.end(), &a),
                arrays_.end());
}

DistArrayBase* Env::find_array(std::string_view name) const noexcept {
  for (auto* a : arrays_) {
    if (a->name() == name) return a;
  }
  return nullptr;
}

}  // namespace vf::rt
