#include "vf/rt/array_base.hpp"

#include <utility>

#include "vf/dist/skew.hpp"
#include "vf/halo/exchange.hpp"
#include "vf/halo/plan.hpp"

namespace vf::rt {

DimExprItem extract_dim(const DistArrayBase& b, int dim) {
  return DimExprItem(std::pair<const DistArrayBase*, int>{&b, dim});
}

DistExpr DistExpr::align_with(const DistArrayBase& target, dist::Alignment a) {
  DistExpr e{dist::DistributionType{}};
  e.form_ = std::pair<const DistArrayBase*, dist::Alignment>{&target,
                                                             std::move(a)};
  return e;
}

dist::DistHandle DistExpr::evaluate(
    const DistArrayBase& target,
    const dist::ProcessorSection& fallback_section,
    dist::DistRegistry& reg) const {
  const dist::ProcessorSection& section = to_ ? *to_ : fallback_section;

  if (const auto* t = std::get_if<dist::DistributionType>(&form_)) {
    return reg.intern(target.domain(), *t, section);
  }
  if (const auto* items = std::get_if<std::vector<DimExprItem>>(&form_)) {
    std::vector<dist::DimDist> dims;
    dims.reserve(items->size());
    for (const auto& item : *items) {
      if (const auto* dd = std::get_if<dist::DimDist>(&item.v)) {
        dims.push_back(*dd);
      } else {
        const auto& [arr, d] =
            std::get<std::pair<const DistArrayBase*, int>>(item.v);
        dims.push_back(arr->distribution().type().dim(d));
      }
    }
    return reg.intern(target.domain(),
                      dist::DistributionType(std::move(dims)), section);
  }
  if (const auto* whole = std::get_if<const DistArrayBase*>(&form_)) {
    // Whole-type extraction (=A): apply A's current type on A's section
    // (an explicit `to` clause overrides the section).
    const auto& src = (*whole)->distribution();
    if (to_) return reg.intern(target.domain(), src.type(), *to_);
    return reg.intern(target.domain(), src.type(), src.section_ptr());
  }
  const auto& [aligned_to, align] =
      std::get<std::pair<const DistArrayBase*, dist::Alignment>>(form_);
  return reg.intern(
      align.construct(aligned_to->distribution(), target.domain()));
}

DistArrayBase::DistArrayBase(Env& env, std::string name, dist::IndexDomain dom,
                             bool dynamic, query::RangeSpec range,
                             std::optional<Connection> connect)
    : env_(&env),
      name_(std::move(name)),
      dom_(dom),
      dynamic_(dynamic),
      range_(std::move(range)) {
  if (connect) {
    if (connect->primary == nullptr) {
      throw std::invalid_argument("Connection: null primary array");
    }
    if (!connect->primary->is_primary()) {
      throw std::invalid_argument(
          "CONNECT: " + connect->primary->name() +
          " is itself a secondary array; connections must name a primary");
    }
    if (!dynamic_) {
      throw std::invalid_argument(
          "CONNECT: secondary arrays must be declared DYNAMIC");
    }
    cclass_ = connect->primary->cclass_;
    cclass_->add_secondary(this, connect->align);
  } else {
    cclass_ = std::make_shared<ConnectClass>(this);
  }
  env_->register_array(*this);
}

DistArrayBase::~DistArrayBase() {
  env_->unregister_array(*this);
  if (is_primary()) {
    cclass_->orphan();
  } else {
    cclass_->remove(this);
  }
}

Descriptor DistArrayBase::describe() const {
  Descriptor d;
  d.index_dom = dom_;
  d.dist = dist_;
  d.segment = layout_;
  d.dynamic = dynamic_;
  d.primary = is_primary();
  d.connect_class_size = cclass_->secondaries().size() + 1;
  return d;
}

void DistArrayBase::check_no_exchange_in_flight(const char* op) const {
  if (exchange_in_flight_) {
    throw ExchangeInFlightError(name_, op, pending_exchange_tag_);
  }
}

DistArrayBase::SplitMargins DistArrayBase::split_margins() {
  const std::shared_ptr<const halo::HaloPlan> plan =
      exchange_in_flight_ ? pending_halo_plan_ : lookup_halo_plan();
  return SplitMargins{plan->interior_lo, plan->interior_hi};
}

void DistArrayBase::check_distribute_legal(const NoTransfer& nt) const {
  // A redistribution tears down the very storage and plan a pending
  // split-phase exchange will unpack into -- on this array or any
  // connect-class member it would drag along.
  check_no_exchange_in_flight("distribute");
  for (const auto& m : cclass_->secondaries()) {
    m.array->check_no_exchange_in_flight("distribute (via connect class)");
  }
  if (!dynamic_) {
    throw std::logic_error("DISTRIBUTE " + name_ +
                           ": array is statically distributed");
  }
  if (cclass_->primary() == nullptr) {
    throw std::logic_error("DISTRIBUTE " + name_ +
                           ": connect class is orphaned (primary destroyed)");
  }
  if (is_secondary()) {
    throw std::logic_error(
        "DISTRIBUTE " + name_ +
        ": distribute statements are explicitly applied to primary arrays "
        "only (Section 2.3)");
  }
  for (const auto* a : nt.arrays) {
    if (a == this || !cclass_->contains(a)) {
      throw std::invalid_argument(
          "NOTRANSFER: all names must be secondary arrays of C(" + name_ +
          ")");
    }
  }
}

std::shared_ptr<const halo::HaloPlan> DistArrayBase::lookup_halo_plan() {
  if (!dist_) throw NotDistributedError(name_);
  const int me = env_->rank();
  const int np = env_->nprocs();
  if (halo_asymmetric_) {
    if (!halo_family_) {
      // Plan-time spec exchange (lazy, collective): one allgather of the
      // per-rank width vectors, cached until the next set_overlap.  All
      // ranks' families go stale together because set_overlap is
      // collective, so the collective below matches up.
      halo_family_ =
          halo::exchange_specs(env_->comm(), env_->registry(), halo_);
      ++halo_spec_exchanges_;
    }
    if (!halo_family_->uniform()) {
      return env_->halo_plans().lookup_or_build(dist_, halo_family_, me, np);
    }
    // Reconciliation found the family uniform: fall through to the
    // uniform key so this entry is shared with uniform declarations.
  }
  return env_->halo_plans().lookup_or_build(dist_, halo_, me, np);
}

void DistArrayBase::distribute(const DistExpr& expr, const NoTransfer& nt) {
  check_distribute_legal(nt);

  // Step 1 (Section 3.2.2): evaluate the new distribution.  A previously
  // seen distribution resolves to its interned handle without descriptor
  // construction.
  const dist::ProcessorSection fallback =
      dist_ ? dist_->section() : env_->whole();
  dist::DistHandle nd = expr.evaluate(*this, fallback, env_->registry());
  check_range(nd->type());
  distribute_resolved(std::move(nd), nt);
}

void DistArrayBase::distribute(const dist::DistHandle& nd,
                               const NoTransfer& nt) {
  check_distribute_legal(nt);
  if (!nd) {
    throw std::invalid_argument("DISTRIBUTE " + name_ + ": null descriptor");
  }
  if (!(nd->domain() == dom_)) {
    throw std::invalid_argument(
        "DISTRIBUTE " + name_ +
        ": descriptor's index domain does not match the array");
  }
  // Canonicalize through this Env's registry so identity keys stay
  // consistent even for handles wrapped elsewhere.
  dist::DistHandle canon = env_->registry().intern(nd.ptr());
  check_range(canon->type());
  distribute_resolved(std::move(canon), nt);
}

void DistArrayBase::distribute_resolved(dist::DistHandle nd,
                                        const NoTransfer& nt) {
  // Skew gate: under an opted-in policy, a non-identity flip may have its
  // target swapped for the hybrid H(old, new) before any planning --
  // downstream (plan cache, secondaries, queries) sees only the resolved
  // handle, hybrid or not.
  if (skew_policy_ != SkewPolicy::Off && dist_ && nd && !(dist_ == nd)) {
    nd = maybe_hybridize(std::move(nd));
  }

  // Identity is equality: distributing to the handle the whole connect
  // class already holds is a pure no-op (secondaries were derived from
  // this very handle and interning makes the derivation stable).
  if (dist_ == nd) return;

  // Primary: move data unless this is the first distribution or a no-op
  // (equivalent mappings still swap descriptors so queries see the
  // requested type).  A cached plan for the (old, new) handle pair
  // already proves the mappings differ, so the O(N) comparison is skipped
  // on planned flips.
  const bool first = dist_ == nullptr;
  if (!first && has_cached_plan(dist_, nd)) {
    apply_distribution(nd, true);
  } else if (!first && dist_->same_mapping(*nd)) {
    adopt_descriptor(nd);
  } else {
    apply_distribution(nd, !first);
  }

  // Steps 2+3: determine the distributions of connected arrays and
  // communicate.
  for (const auto& m : cclass_->secondaries()) {
    dist::DistHandle sd =
        cclass_->construct_handle_for(m, dist_, env_->registry());
    if (!query::range_allows(m.array->range_, sd->type())) {
      throw RangeViolationError(m.array->name_, sd->type().to_string());
    }
    DistArrayBase* a = m.array;
    if (a->dist_ == sd) continue;
    const bool transfer = a->dist_ != nullptr && !nt.contains(a);
    if (transfer && a->has_cached_plan(a->dist_, sd)) {
      a->apply_distribution(sd, true);
      continue;
    }
    if (a->dist_ && a->dist_->same_mapping(*sd)) {
      a->adopt_descriptor(sd);
      continue;
    }
    a->apply_distribution(sd, transfer);
  }
}

dist::DistHandle DistArrayBase::maybe_hybridize(dist::DistHandle nd) {
  // Uninterned handles never hit identity-keyed caches; hybridizing them
  // would re-run the O(N) table build on every flip.  Leave them alone.
  if (!dist_.interned() || !nd.interned()) return nd;

  const std::uint64_t key =
      (static_cast<std::uint64_t>(dist_.uid()) << 32) | nd.uid();
  if (const auto it = hybrid_memo_.find(key); it != hybrid_memo_.end()) {
    if (it->second) {
      ++hybrid_flips_;
      return it->second;
    }
    return nd;
  }

  ++skew_checks_;
  const dist::SkewReport rep = dist::ownership_skew(*nd, env_->nprocs());
  last_target_skew_ = rep.max_over_mean();
  if (last_target_skew_ > peak_target_skew_) {
    peak_target_skew_ = last_target_skew_;
  }

  dist::DistHandle hybrid;
  if (skew_policy_ == SkewPolicy::Force || rep.skewed(skew_threshold_)) {
    const dist::SkewConfig cfg{skew_threshold_, skew_cap_factor_};
    hybrid = dist::hybridize(env_->registry(), dist_, nd, cfg);
    // The hybrid carries an INDIRECT dimension-0 type; an array whose
    // RANGE attribute forbids that must fall back to the nominal target.
    if (hybrid && !query::range_allows(range_, hybrid->type())) {
      hybrid = dist::DistHandle{};
    }
  }
  hybrid_memo_.emplace(key, hybrid);
  if (hybrid) {
    ++hybrid_flips_;
    return hybrid;
  }
  return nd;
}

}  // namespace vf::rt
