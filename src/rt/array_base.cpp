#include "vf/rt/array_base.hpp"

#include <utility>

namespace vf::rt {

DimExprItem extract_dim(const DistArrayBase& b, int dim) {
  return DimExprItem(std::pair<const DistArrayBase*, int>{&b, dim});
}

DistExpr DistExpr::align_with(const DistArrayBase& target, dist::Alignment a) {
  DistExpr e{dist::DistributionType{}};
  e.form_ = std::pair<const DistArrayBase*, dist::Alignment>{&target,
                                                             std::move(a)};
  return e;
}

dist::Distribution DistExpr::evaluate(
    const DistArrayBase& target,
    const dist::ProcessorSection& fallback_section) const {
  const dist::ProcessorSection& section = to_ ? *to_ : fallback_section;

  if (const auto* t = std::get_if<dist::DistributionType>(&form_)) {
    return dist::Distribution(target.domain(), *t, section);
  }
  if (const auto* items = std::get_if<std::vector<DimExprItem>>(&form_)) {
    std::vector<dist::DimDist> dims;
    dims.reserve(items->size());
    for (const auto& item : *items) {
      if (const auto* dd = std::get_if<dist::DimDist>(&item.v)) {
        dims.push_back(*dd);
      } else {
        const auto& [arr, d] =
            std::get<std::pair<const DistArrayBase*, int>>(item.v);
        dims.push_back(arr->distribution().type().dim(d));
      }
    }
    return dist::Distribution(target.domain(),
                              dist::DistributionType(std::move(dims)),
                              section);
  }
  if (const auto* whole = std::get_if<const DistArrayBase*>(&form_)) {
    // Whole-type extraction (=A): apply A's current type on A's section
    // (an explicit `to` clause overrides the section).
    const auto& src = (*whole)->distribution();
    return dist::Distribution(target.domain(), src.type(),
                              to_ ? *to_ : src.section());
  }
  const auto& [aligned_to, align] =
      std::get<std::pair<const DistArrayBase*, dist::Alignment>>(form_);
  return align.construct(aligned_to->distribution(), target.domain());
}

DistArrayBase::DistArrayBase(Env& env, std::string name, dist::IndexDomain dom,
                             bool dynamic, query::RangeSpec range,
                             std::optional<Connection> connect)
    : env_(&env),
      name_(std::move(name)),
      dom_(dom),
      dynamic_(dynamic),
      range_(std::move(range)) {
  if (connect) {
    if (connect->primary == nullptr) {
      throw std::invalid_argument("Connection: null primary array");
    }
    if (!connect->primary->is_primary()) {
      throw std::invalid_argument(
          "CONNECT: " + connect->primary->name() +
          " is itself a secondary array; connections must name a primary");
    }
    if (!dynamic_) {
      throw std::invalid_argument(
          "CONNECT: secondary arrays must be declared DYNAMIC");
    }
    cclass_ = connect->primary->cclass_;
    cclass_->add_secondary(this, connect->align);
  } else {
    cclass_ = std::make_shared<ConnectClass>(this);
  }
  env_->register_array(*this);
}

DistArrayBase::~DistArrayBase() {
  env_->unregister_array(*this);
  if (is_primary()) {
    cclass_->orphan();
  } else {
    cclass_->remove(this);
  }
}

Descriptor DistArrayBase::describe() const {
  Descriptor d;
  d.index_dom = dom_;
  d.dist = dist_;
  d.segment = layout_;
  d.dynamic = dynamic_;
  d.primary = is_primary();
  d.connect_class_size = cclass_->secondaries().size() + 1;
  return d;
}

void DistArrayBase::distribute(const DistExpr& expr, const NoTransfer& nt) {
  if (!dynamic_) {
    throw std::logic_error("DISTRIBUTE " + name_ +
                           ": array is statically distributed");
  }
  if (cclass_->primary() == nullptr) {
    throw std::logic_error("DISTRIBUTE " + name_ +
                           ": connect class is orphaned (primary destroyed)");
  }
  if (is_secondary()) {
    throw std::logic_error(
        "DISTRIBUTE " + name_ +
        ": distribute statements are explicitly applied to primary arrays "
        "only (Section 2.3)");
  }
  for (const auto* a : nt.arrays) {
    if (a == this || !cclass_->contains(a)) {
      throw std::invalid_argument(
          "NOTRANSFER: all names must be secondary arrays of C(" + name_ +
          ")");
    }
  }

  // Step 1 (Section 3.2.2): evaluate the new distribution.
  const dist::ProcessorSection fallback =
      dist_ ? dist_->section() : env_->whole();
  auto nd = std::make_shared<const dist::Distribution>(
      expr.evaluate(*this, fallback));
  check_range(nd->type());

  // Primary: move data unless this is the first distribution or a no-op
  // (equivalent mappings still swap descriptors so queries see the
  // requested type).
  const bool primary_noop = dist_ && dist_->same_mapping(*nd);
  if (primary_noop) {
    adopt_descriptor(nd);
  } else {
    apply_distribution(nd, dist_ != nullptr);
  }

  // Steps 2+3: determine the distributions of connected arrays and
  // communicate.
  for (const auto& m : cclass_->secondaries()) {
    auto sd = std::make_shared<const dist::Distribution>(
        cclass_->construct_for(m, *nd));
    if (!query::range_allows(m.array->range_, sd->type())) {
      throw RangeViolationError(m.array->name_, sd->type().to_string());
    }
    const bool noop =
        m.array->dist_ && m.array->dist_->same_mapping(*sd);
    if (noop) {
      m.array->adopt_descriptor(sd);
      continue;
    }
    const bool transfer =
        m.array->dist_ != nullptr && !nt.contains(m.array);
    m.array->apply_distribution(sd, transfer);
  }
}

}  // namespace vf::rt
