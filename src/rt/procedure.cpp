#include "vf/rt/procedure.hpp"

namespace vf::rt {

CallReport call_procedure(
    std::vector<std::pair<DistArrayBase*, FormalArg>> args,
    ArgReturnMode mode, const std::function<void()>& body) {
  CallReport report;

  struct Saved {
    DistArrayBase* array;
    dist::DistHandle entry_dist;
  };
  std::vector<Saved> saved;
  saved.reserve(args.size());

  // Entry: bind actuals to formals.  Interface matching keys on handle
  // identity: the formal's required distribution is interned once into
  // the actual's registry, so an already-matching actual is recognized
  // with one pointer compare and no descriptor construction.
  for (auto& [array, formal] : args) {
    if (array == nullptr) {
      throw std::invalid_argument("call_procedure: null actual argument");
    }
    saved.push_back(Saved{array, array->dist_handle()});
    switch (formal.kind()) {
      case FormalArg::Kind::Inherited:
        break;
      case FormalArg::Kind::Match: {
        if (!formal.pattern().matches(array->distribution().type())) {
          throw ArgumentMismatchError(
              array->name(), formal.pattern().to_string(),
              array->distribution().type().to_string());
        }
        break;
      }
      case FormalArg::Kind::Explicit: {
        const dist::ProcessorSection target_section =
            formal.to() ? *formal.to() : array->distribution().section();
        const dist::DistHandle want = array->env().registry().intern(
            array->domain(), formal.type(), target_section);
        if (array->dist_handle() == want) break;  // identity: no motion
        if (!array->distribution().same_mapping(*want)) {
          array->distribute(want);
          ++report.entry_redistributions;
        }
        break;
      }
    }
  }

  body();

  // Exit: HPF semantics reinstate the caller's distribution; Vienna
  // Fortran returns whatever the procedure left behind.  An unchanged
  // handle is again one pointer compare.
  if (mode == ArgReturnMode::RestoreOnExit) {
    for (auto& s : saved) {
      if (!s.entry_dist) continue;  // was undistributed at entry
      if (s.array->dist_handle() == s.entry_dist) continue;
      if (!s.array->has_distribution() ||
          !s.array->distribution().same_mapping(*s.entry_dist)) {
        s.array->distribute(s.entry_dist);
        ++report.exit_restores;
      }
    }
  }
  return report;
}

}  // namespace vf::rt
