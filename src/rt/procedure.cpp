#include "vf/rt/procedure.hpp"

namespace vf::rt {

CallReport call_procedure(
    std::vector<std::pair<DistArrayBase*, FormalArg>> args,
    ArgReturnMode mode, const std::function<void()>& body) {
  CallReport report;

  struct Saved {
    DistArrayBase* array;
    dist::DistributionPtr entry_dist;
  };
  std::vector<Saved> saved;
  saved.reserve(args.size());

  // Entry: bind actuals to formals.
  for (auto& [array, formal] : args) {
    if (array == nullptr) {
      throw std::invalid_argument("call_procedure: null actual argument");
    }
    saved.push_back(Saved{array, array->distribution_ptr()});
    switch (formal.kind()) {
      case FormalArg::Kind::Inherited:
        break;
      case FormalArg::Kind::Match: {
        if (!formal.pattern().matches(array->distribution().type())) {
          throw ArgumentMismatchError(
              array->name(), formal.pattern().to_string(),
              array->distribution().type().to_string());
        }
        break;
      }
      case FormalArg::Kind::Explicit: {
        const dist::ProcessorSection target_section =
            formal.to() ? *formal.to() : array->distribution().section();
        const dist::Distribution want(array->domain(), formal.type(),
                                      target_section);
        if (!array->distribution().same_mapping(want)) {
          DistExpr expr{formal.type()};
          array->distribute(formal.to() ? std::move(expr).to(*formal.to())
                                        : expr);
          ++report.entry_redistributions;
        }
        break;
      }
    }
  }

  body();

  // Exit: HPF semantics reinstate the caller's distribution; Vienna
  // Fortran returns whatever the procedure left behind.
  if (mode == ArgReturnMode::RestoreOnExit) {
    for (auto& s : saved) {
      if (!s.entry_dist) continue;  // was undistributed at entry
      if (!s.array->has_distribution() ||
          !s.array->distribution().same_mapping(*s.entry_dist)) {
        s.array->distribute(DistExpr{s.entry_dist->type()}.to(
            s.entry_dist->section()));
        ++report.exit_restores;
      }
    }
  }
  return report;
}

}  // namespace vf::rt
