#include "vf/rt/connect.hpp"

#include <algorithm>
#include <stdexcept>

#include "vf/rt/array_base.hpp"

namespace vf::rt {

void ConnectClass::add_secondary(DistArrayBase* a,
                                 std::optional<dist::Alignment> align) {
  secondaries_.push_back(Member{a, std::move(align)});
}

void ConnectClass::remove(DistArrayBase* a) noexcept {
  secondaries_.erase(
      std::remove_if(secondaries_.begin(), secondaries_.end(),
                     [&](const Member& m) { return m.array == a; }),
      secondaries_.end());
}

bool ConnectClass::contains(const DistArrayBase* a) const noexcept {
  if (a == primary_) return true;
  return std::any_of(secondaries_.begin(), secondaries_.end(),
                     [&](const Member& m) { return m.array == a; });
}

dist::Distribution ConnectClass::construct_for(
    const Member& m, const dist::Distribution& primary_dist) const {
  if (m.align) {
    // CONNECT A(...) WITH B(...): delta_A = CONSTRUCT(alpha_A, delta_B).
    return m.align->construct(primary_dist, m.array->domain());
  }
  // CONNECT (=B): distribution extraction -- the primary's distribution
  // *type* is applied to the secondary's own index domain and the same
  // processor section.
  return dist::Distribution(m.array->domain(), primary_dist.type(),
                            primary_dist.section());
}

dist::DistHandle ConnectClass::construct_handle_for(
    const Member& m, const dist::DistHandle& primary,
    dist::DistRegistry& reg) const {
  if (m.align) {
    return reg.intern(m.align->construct(*primary, m.array->domain()));
  }
  return reg.intern(m.array->domain(), primary->type(),
                    primary->section_ptr());
}

}  // namespace vf::rt
