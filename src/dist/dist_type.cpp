#include "vf/dist/dist_type.hpp"

#include <sstream>

#include "vf/dist/hash.hpp"

namespace vf::dist {

IndirectTable::IndirectTable(std::vector<int> owners)
    : owners_(std::move(owners)) {
  std::uint64_t h = fnv1a(kFnvBasis, owners_.size());
  for (int o : owners_) h = fnv1a(h, static_cast<std::uint64_t>(o));
  hash_ = h;
}

std::uint64_t DimDist::hash() const noexcept {
  std::uint64_t h = fnv1a(kFnvBasis, static_cast<std::uint64_t>(kind));
  h = fnv1a(h, static_cast<std::uint64_t>(block_width));
  h = fnv1a(h, static_cast<std::uint64_t>(cyclic_block));
  for (Index s : gen_sizes) h = fnv1a(h, static_cast<std::uint64_t>(s));
  for (Index b : gen_bounds) h = fnv1a(h, static_cast<std::uint64_t>(b));
  if (owners != nullptr) h = fnv1a(h, owners->hash());
  return h;
}

std::string to_string(DimDistKind k) {
  switch (k) {
    case DimDistKind::Collapsed:
      return ":";
    case DimDistKind::Block:
      return "BLOCK";
    case DimDistKind::Cyclic:
      return "CYCLIC";
    case DimDistKind::GenBlock:
      return "GEN_BLOCK";
    case DimDistKind::Indirect:
      return "INDIRECT";
  }
  return "?";
}

std::string DimDist::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case DimDistKind::Collapsed:
      return ":";
    case DimDistKind::Block:
      if (block_width > 0) {
        os << "BLOCK(" << block_width << ")";
      } else {
        os << "BLOCK";
      }
      return os.str();
    case DimDistKind::Cyclic:
      os << "CYCLIC(" << cyclic_block << ")";
      return os.str();
    case DimDistKind::GenBlock:
      if (!gen_bounds.empty()) {
        os << "B_BLOCK(";
        for (std::size_t k = 0; k < gen_bounds.size(); ++k) {
          os << (k ? "," : "") << gen_bounds[k];
        }
      } else {
        os << "S_BLOCK(";
        for (std::size_t k = 0; k < gen_sizes.size(); ++k) {
          os << (k ? "," : "") << gen_sizes[k];
        }
      }
      os << ")";
      return os.str();
    case DimDistKind::Indirect:
      os << "INDIRECT(" << (owners ? owners->size() : 0) << ")";
      return os.str();
  }
  return "?";
}

DimDist block() {
  DimDist d;
  d.kind = DimDistKind::Block;
  return d;
}

DimDist block_width(Index m) {
  if (m < 1) {
    throw std::invalid_argument("BLOCK(M): width must be at least 1");
  }
  DimDist d;
  d.kind = DimDistKind::Block;
  d.block_width = m;
  return d;
}

DimDist cyclic(Index k) {
  if (k < 1) {
    throw std::invalid_argument("CYCLIC(k): block length must be at least 1");
  }
  DimDist d;
  d.kind = DimDistKind::Cyclic;
  d.cyclic_block = k;
  return d;
}

DimDist col() { return DimDist{}; }

DimDist s_block(std::vector<Index> sizes) {
  if (sizes.empty()) {
    throw std::invalid_argument("S_BLOCK: at least one size required");
  }
  DimDist d;
  d.kind = DimDistKind::GenBlock;
  d.gen_sizes = std::move(sizes);
  return d;
}

DimDist b_block(std::vector<Index> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("B_BLOCK: at least one bound required");
  }
  for (std::size_t k = 1; k < bounds.size(); ++k) {
    if (bounds[k] < bounds[k - 1]) {
      throw std::invalid_argument("B_BLOCK: bounds must be non-decreasing");
    }
  }
  DimDist d;
  d.kind = DimDistKind::GenBlock;
  d.gen_bounds = std::move(bounds);
  return d;
}

DimDist indirect(std::vector<int> owners) {
  if (owners.empty()) {
    throw std::invalid_argument("INDIRECT: mapping array must be non-empty");
  }
  return indirect(std::make_shared<const IndirectTable>(std::move(owners)));
}

DimDist indirect(IndirectTablePtr table) {
  if (table == nullptr || table->size() == 0) {
    throw std::invalid_argument("INDIRECT: mapping array must be non-empty");
  }
  DimDist d;
  d.kind = DimDistKind::Indirect;
  d.owners = std::move(table);
  return d;
}

std::string DistributionType::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    os << (d ? ", " : "") << dims_[d].to_string();
  }
  os << ")";
  return os.str();
}

}  // namespace vf::dist
