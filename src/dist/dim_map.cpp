#include "vf/dist/dim_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace vf::dist {

namespace {

[[noreturn]] void bad_domain_index(Index g, Range dom) {
  throw std::out_of_range("DimMap: index " + std::to_string(g) +
                          " outside domain [" + std::to_string(dom.lo) + "," +
                          std::to_string(dom.hi) + "]");
}

}  // namespace

void DimMap::check_coord(int c) const {
  if (c < 0 || c >= np_) {
    throw std::out_of_range("DimMap: processor coordinate " +
                            std::to_string(c) + " outside 0.." +
                            std::to_string(np_ - 1));
  }
}

void DimMap::check_index(Index g) const {
  if (!dom_.contains(g)) bad_domain_index(g, dom_);
}

void DimMap::build_contig_lookup() {
  starts_.clear();
  for (int c = 0; c < np_; ++c) {
    const Range& s = segs_[static_cast<std::size_t>(c)];
    if (!s.empty()) starts_.emplace_back(s.lo, c);
  }
  std::sort(starts_.begin(), starts_.end());
}

DimMap DimMap::block(Range dom, int nprocs) {
  if (nprocs < 1) throw std::invalid_argument("DimMap::block: nprocs < 1");
  const Index n = dom.size();
  const Index w = n == 0 ? 1 : (n + nprocs - 1) / nprocs;
  return block_width(dom, nprocs, w);
}

DimMap DimMap::block_width(Range dom, int nprocs, Index w) {
  if (nprocs < 1) {
    throw std::invalid_argument("DimMap::block_width: nprocs < 1");
  }
  if (w < 1) {
    throw std::invalid_argument("BLOCK(M): width must be at least 1");
  }
  if (w * nprocs < dom.size()) {
    throw std::invalid_argument(
        "BLOCK(M): M * nprocs does not cover the dimension");
  }
  DimMap m;
  m.rep_ = Rep::Contig;
  m.dom_ = dom;
  m.np_ = nprocs;
  m.segs_.resize(static_cast<std::size_t>(nprocs));
  for (int c = 0; c < nprocs; ++c) {
    const Index lo = dom.lo + static_cast<Index>(c) * w;
    const Index hi = std::min(dom.hi, lo + w - 1);
    m.segs_[static_cast<std::size_t>(c)] =
        lo > dom.hi ? Range{1, 0} : Range{lo, hi};
  }
  m.build_contig_lookup();
  return m;
}

DimMap DimMap::cyclic(Range dom, int nprocs, Index k) {
  if (nprocs < 1) throw std::invalid_argument("DimMap::cyclic: nprocs < 1");
  if (k < 1) {
    throw std::invalid_argument("CYCLIC(k): block length must be at least 1");
  }
  DimMap m;
  m.rep_ = Rep::Cyclic;
  m.dom_ = dom;
  m.np_ = nprocs;
  m.k_ = k;
  m.contiguous_ = nprocs == 1 || dom.size() <= k * nprocs;
  return m;
}

DimMap DimMap::gen_block(Range dom, std::vector<Index> sizes) {
  if (sizes.empty()) {
    throw std::invalid_argument("GEN_BLOCK: at least one size required");
  }
  Index total = 0;
  for (Index s : sizes) {
    if (s < 0) throw std::invalid_argument("GEN_BLOCK: negative segment size");
    total += s;
  }
  if (total != dom.size()) {
    throw std::invalid_argument(
        "GEN_BLOCK: segment sizes must sum to the dimension extent");
  }
  DimMap m;
  m.rep_ = Rep::Contig;
  m.dom_ = dom;
  m.np_ = static_cast<int>(sizes.size());
  m.segs_.resize(sizes.size());
  Index lo = dom.lo;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    m.segs_[c] = sizes[c] == 0 ? Range{1, 0} : Range{lo, lo + sizes[c] - 1};
    lo += sizes[c];
  }
  m.build_contig_lookup();
  return m;
}

DimMap DimMap::collapsed(Range dom) {
  DimMap m;
  m.rep_ = Rep::Contig;
  m.dom_ = dom;
  m.np_ = 1;
  m.collapsed_ = true;
  m.segs_ = {dom};
  m.build_contig_lookup();
  return m;
}

DimMap DimMap::indirect(Range dom, std::vector<int> owners, int nprocs) {
  if (nprocs < 1) throw std::invalid_argument("INDIRECT: nprocs < 1");
  if (static_cast<Index>(owners.size()) != dom.size()) {
    throw std::invalid_argument(
        "INDIRECT: mapping array length must equal the dimension extent");
  }
  for (int o : owners) {
    if (o < 0 || o >= nprocs) {
      throw std::invalid_argument(
          "INDIRECT: owner coordinate outside the processor range");
    }
  }
  DimMap m;
  m.rep_ = Rep::Table;
  m.dom_ = dom;
  m.np_ = nprocs;
  m.owners_ = std::move(owners);
  m.locals_.resize(m.owners_.size());
  m.owned_.resize(static_cast<std::size_t>(nprocs));
  for (std::size_t j = 0; j < m.owners_.size(); ++j) {
    auto& lst = m.owned_[static_cast<std::size_t>(m.owners_[j])];
    m.locals_[j] = static_cast<Index>(lst.size());
    lst.push_back(dom.lo + static_cast<Index>(j));
  }
  m.contiguous_ = true;
  for (const auto& lst : m.owned_) {
    if (!lst.empty() &&
        lst.back() - lst.front() + 1 != static_cast<Index>(lst.size())) {
      m.contiguous_ = false;
      break;
    }
  }
  return m;
}

int DimMap::proc_of(Index g) const {
  check_index(g);
  switch (rep_) {
    case Rep::Contig: {
      // Last entry with start <= g.
      auto it = std::upper_bound(
          starts_.begin(), starts_.end(), std::make_pair(g, np_));
      return std::prev(it)->second;
    }
    case Rep::Cyclic:
      return static_cast<int>(((g - dom_.lo) / k_) % np_);
    case Rep::Table:
      return owners_[static_cast<std::size_t>(g - dom_.lo)];
  }
  return 0;
}

Index DimMap::local_of(Index g) const {
  check_index(g);
  switch (rep_) {
    case Rep::Contig: {
      auto it = std::upper_bound(
          starts_.begin(), starts_.end(), std::make_pair(g, np_));
      return g - std::prev(it)->first;
    }
    case Rep::Cyclic: {
      const Index i0 = g - dom_.lo;
      return (i0 / (k_ * np_)) * k_ + i0 % k_;
    }
    case Rep::Table:
      return locals_[static_cast<std::size_t>(g - dom_.lo)];
  }
  return 0;
}

Index DimMap::global_of(int c, Index l) const {
  check_coord(c);
  if (l < 0 || l >= count_on(c)) {
    throw std::out_of_range("DimMap::global_of: local index outside segment");
  }
  switch (rep_) {
    case Rep::Contig:
      return segs_[static_cast<std::size_t>(c)].lo + l;
    case Rep::Cyclic: {
      const Index cycle = l / k_;
      const Index pos = l % k_;
      return dom_.lo + cycle * k_ * np_ + static_cast<Index>(c) * k_ + pos;
    }
    case Rep::Table:
      return owned_[static_cast<std::size_t>(c)][static_cast<std::size_t>(l)];
  }
  return 0;
}

Index DimMap::count_on(int c) const {
  check_coord(c);
  switch (rep_) {
    case Rep::Contig:
      return segs_[static_cast<std::size_t>(c)].size();
    case Rep::Cyclic: {
      const Index n = dom_.size();
      const Index cycle = k_ * np_;
      const Index full = n / cycle;
      const Index rem = n % cycle;
      const Index extra =
          std::clamp<Index>(rem - static_cast<Index>(c) * k_, 0, k_);
      return full * k_ + extra;
    }
    case Rep::Table:
      return static_cast<Index>(owned_[static_cast<std::size_t>(c)].size());
  }
  return 0;
}

std::optional<Range> DimMap::segment(int c) const {
  check_coord(c);
  if (!contiguous_ || count_on(c) == 0) return std::nullopt;
  switch (rep_) {
    case Rep::Contig:
      return segs_[static_cast<std::size_t>(c)];
    case Rep::Cyclic: {
      if (np_ == 1) return dom_;
      const Index lo = dom_.lo + static_cast<Index>(c) * k_;
      return Range{lo, std::min(dom_.hi, lo + k_ - 1)};
    }
    case Rep::Table: {
      const auto& lst = owned_[static_cast<std::size_t>(c)];
      return Range{lst.front(), lst.back()};
    }
  }
  return std::nullopt;
}

std::vector<Index> DimMap::owned_ascending(int c) const {
  check_coord(c);
  switch (rep_) {
    case Rep::Contig: {
      const Range& s = segs_[static_cast<std::size_t>(c)];
      std::vector<Index> out;
      out.reserve(static_cast<std::size_t>(s.size()));
      for (Index g = s.lo; g <= s.hi; ++g) out.push_back(g);
      return out;
    }
    case Rep::Cyclic: {
      std::vector<Index> out;
      out.reserve(static_cast<std::size_t>(count_on(c)));
      const Index n = dom_.size();
      for (Index start = static_cast<Index>(c) * k_; start < n;
           start += k_ * np_) {
        for (Index j = 0; j < k_ && start + j < n; ++j) {
          out.push_back(dom_.lo + start + j);
        }
      }
      return out;
    }
    case Rep::Table:
      return owned_[static_cast<std::size_t>(c)];
  }
  return {};
}

bool DimMap::same_mapping(const DimMap& o) const {
  if (!(dom_ == o.dom_)) return false;
  for (Index g = dom_.lo; g <= dom_.hi; ++g) {
    if (proc_of(g) != o.proc_of(g)) return false;
  }
  return true;
}

DimMap DimMap::realigned(Range new_dom, Index stride, Index offset) const {
  if (stride != 1 && stride != -1) {
    throw std::invalid_argument(
        "DimMap::realigned: alignment stride must be +1 or -1");
  }
  if (!new_dom.empty()) {
    const Index a = stride * new_dom.lo + offset;
    const Index b = stride * new_dom.hi + offset;
    if (!dom_.contains(a) || !dom_.contains(b)) {
      throw std::out_of_range(
          "DimMap::realigned: aligned image escapes the target dimension");
    }
  }
  // Identity alignment over a prefix of the domain keeps the closed form.
  if (rep_ == Rep::Cyclic && stride == 1 && offset == 0 &&
      new_dom.lo == dom_.lo) {
    DimMap m = *this;
    m.dom_ = new_dom;
    m.contiguous_ = np_ == 1 || new_dom.size() <= k_ * np_;
    return m;
  }
  if (rep_ == Rep::Contig) {
    // Preimages of contiguous segments are contiguous.
    DimMap m;
    m.rep_ = Rep::Contig;
    m.dom_ = new_dom;
    m.np_ = np_;
    m.collapsed_ = collapsed_;
    m.segs_.resize(static_cast<std::size_t>(np_));
    for (int c = 0; c < np_; ++c) {
      const Range& s = segs_[static_cast<std::size_t>(c)];
      Range pre{1, 0};
      if (!s.empty()) {
        pre = stride == 1 ? Range{s.lo - offset, s.hi - offset}
                          : Range{offset - s.hi, offset - s.lo};
        pre = pre.intersect(new_dom);
      }
      m.segs_[static_cast<std::size_t>(c)] = pre.empty() ? Range{1, 0} : pre;
    }
    m.build_contig_lookup();
    return m;
  }
  // General case: materialize the owner table.
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(new_dom.size()));
  for (Index i = new_dom.lo; i <= new_dom.hi; ++i) {
    owners.push_back(proc_of(stride * i + offset));
  }
  return indirect(new_dom, std::move(owners), np_);
}

std::size_t DimMap::footprint_bytes() const noexcept {
  std::size_t b = sizeof(DimMap);
  b += segs_.capacity() * sizeof(Range);
  b += starts_.capacity() * sizeof(std::pair<Index, int>);
  b += owners_.capacity() * sizeof(int);
  b += locals_.capacity() * sizeof(Index);
  b += owned_.capacity() * sizeof(std::vector<Index>);
  for (const auto& v : owned_) b += v.capacity() * sizeof(Index);
  return b;
}

}  // namespace vf::dist
