#include "vf/dist/alignment.hpp"

#include <stdexcept>

namespace vf::dist {

Alignment::Alignment(int source_rank, std::vector<AlignExpr> exprs)
    : src_rank_(source_rank), exprs_(std::move(exprs)) {
  if (src_rank_ < 0 || src_rank_ > kMaxRank) {
    throw std::invalid_argument("Alignment: bad source rank");
  }
  if (exprs_.empty() ||
      exprs_.size() > static_cast<std::size_t>(kMaxRank)) {
    throw std::invalid_argument("Alignment: bad target rank");
  }
  std::vector<bool> used(static_cast<std::size_t>(src_rank_), false);
  for (const AlignExpr& e : exprs_) {
    if (e.kind != AlignExpr::Kind::Dim) continue;
    if (e.src_dim < 0 || e.src_dim >= src_rank_) {
      throw std::invalid_argument(
          "Alignment: source dimension index outside the source rank");
    }
    if (used[static_cast<std::size_t>(e.src_dim)]) {
      throw std::invalid_argument(
          "Alignment: a source dimension may appear at most once");
    }
    used[static_cast<std::size_t>(e.src_dim)] = true;
    if (e.stride != 1 && e.stride != -1) {
      throw std::invalid_argument("Alignment: stride must be +1 or -1");
    }
  }
}

Alignment Alignment::identity(int r) {
  std::vector<AlignExpr> es;
  es.reserve(static_cast<std::size_t>(r));
  for (int d = 0; d < r; ++d) es.push_back(AlignExpr::dim(d));
  return Alignment(r, std::move(es));
}

Alignment Alignment::permutation(int source_rank, std::vector<int> perm) {
  std::vector<AlignExpr> es;
  es.reserve(perm.size());
  for (int s : perm) es.push_back(AlignExpr::dim(s));
  return Alignment(source_rank, std::move(es));
}

IndexVec Alignment::apply(const IndexVec& i) const {
  if (static_cast<int>(i.size()) != src_rank_) {
    throw std::invalid_argument("Alignment::apply: rank mismatch");
  }
  IndexVec out;
  for (const AlignExpr& e : exprs_) {
    if (e.kind == AlignExpr::Kind::Constant) {
      out.push_back(e.value);
    } else {
      out.push_back(e.stride * i[e.src_dim] + e.offset);
    }
  }
  return out;
}

Distribution Alignment::construct(const Distribution& target,
                                  const IndexDomain& source_dom) const {
  if (static_cast<int>(exprs_.size()) != target.domain().rank()) {
    throw std::invalid_argument(
        "CONSTRUCT: alignment target rank does not match the target "
        "array's rank");
  }
  if (source_dom.rank() != src_rank_) {
    throw std::invalid_argument(
        "CONSTRUCT: source domain rank does not match the alignment");
  }

  const ProcessorSection& bsec = target.section();
  // Array-dimension index (within the processor array) of each free dim.
  std::vector<int> free_to_array_dim;
  for (int d = 0; d < bsec.array().rank(); ++d) {
    if (!bsec.dims()[static_cast<std::size_t>(d)].fixed) {
      free_to_array_dim.push_back(d);
    }
  }

  // Which target dimension (if any) feeds each source dimension, and
  // which free dims get pinned by constant alignments.
  std::vector<int> feeding(static_cast<std::size_t>(src_rank_), -1);
  std::vector<SectionDim> sdims = bsec.dims();
  std::vector<bool> pinned(static_cast<std::size_t>(bsec.free_rank()), false);
  for (int t = 0; t < static_cast<int>(exprs_.size()); ++t) {
    const AlignExpr& e = exprs_[static_cast<std::size_t>(t)];
    const int f = target.proc_dim_of(t);
    if (e.kind == AlignExpr::Kind::Dim) {
      if (f >= 0) feeding[static_cast<std::size_t>(e.src_dim)] = t;
      continue;
    }
    if (f < 0) continue;  // constant into a collapsed dimension: no effect
    // Pin the free dimension to the coordinate owning the constant.
    const int c = target.dim_map(t).proc_of(e.value);
    const int ad = free_to_array_dim[static_cast<std::size_t>(f)];
    sdims[static_cast<std::size_t>(ad)] = SectionDim::at(
        sdims[static_cast<std::size_t>(ad)].range.lo + c);
    pinned[static_cast<std::size_t>(f)] = true;
  }

  ProcessorSection nsec(bsec.array(), std::move(sdims));
  // Old free-dim index -> new free-dim index after pinning.
  std::vector<int> remap(static_cast<std::size_t>(bsec.free_rank()), -1);
  int next = 0;
  for (int f = 0; f < bsec.free_rank(); ++f) {
    if (!pinned[static_cast<std::size_t>(f)]) {
      remap[static_cast<std::size_t>(f)] = next++;
    }
  }

  std::vector<DimMap> maps;
  std::vector<int> free_dims;
  std::vector<DimDist> tdims;
  for (int s = 0; s < src_rank_; ++s) {
    const Range sr = source_dom.dim(s);
    const int t = feeding[static_cast<std::size_t>(s)];
    if (t < 0) {
      maps.push_back(DimMap::collapsed(sr));
      free_dims.push_back(-1);
      tdims.push_back(col());
      continue;
    }
    const AlignExpr& e = exprs_[static_cast<std::size_t>(t)];
    DimMap m = target.dim_map(t).realigned(sr, e.stride, e.offset);
    const bool ident = e.stride == 1 && e.offset == 0 &&
                       sr == target.domain().dim(t);
    if (ident) {
      tdims.push_back(target.type().dim(t));
    } else if (target.type().dim(t).kind != DimDistKind::Indirect &&
               m.contiguous()) {
      std::vector<Index> sizes;
      sizes.reserve(static_cast<std::size_t>(m.nprocs()));
      for (int c = 0; c < m.nprocs(); ++c) sizes.push_back(m.count_on(c));
      tdims.push_back(s_block(std::move(sizes)));
    } else {
      std::vector<int> owners;
      owners.reserve(static_cast<std::size_t>(sr.size()));
      for (Index g = sr.lo; g <= sr.hi; ++g) owners.push_back(m.proc_of(g));
      tdims.push_back(indirect(std::move(owners)));
    }
    maps.push_back(std::move(m));
    free_dims.push_back(remap[static_cast<std::size_t>(target.proc_dim_of(t))]);
  }

  return Distribution(source_dom, DistributionType(std::move(tdims)),
                      std::move(nsec), std::move(maps), std::move(free_dims));
}

}  // namespace vf::dist
