#include "vf/dist/distribution.hpp"

#include <sstream>
#include <stdexcept>

#include "vf/dist/hash.hpp"

namespace vf::dist {

namespace {

/// Converts B_BLOCK cumulative bounds into per-coordinate sizes.
std::vector<Index> sizes_from_bounds(const std::vector<Index>& bounds,
                                     Range dom) {
  std::vector<Index> sizes;
  sizes.reserve(bounds.size());
  Index prev = dom.lo - 1;
  for (Index b : bounds) {
    if (b < prev) {
      throw std::invalid_argument("B_BLOCK: bounds must be non-decreasing");
    }
    sizes.push_back(b - prev);
    prev = b;
  }
  if (prev != dom.hi) {
    throw std::invalid_argument(
        "B_BLOCK: final bound must equal the dimension upper bound");
  }
  return sizes;
}

}  // namespace

void Distribution::check_applicable(const IndexDomain& dom,
                                    const DistributionType& type,
                                    const ProcessorSection& sec) {
  if (type.rank() != dom.rank()) {
    throw std::invalid_argument(
        "Distribution: type rank " + std::to_string(type.rank()) +
        " does not match array rank " + std::to_string(dom.rank()));
  }
  int distributed = 0;
  for (const DimDist& d : type.dims()) {
    if (d.distributed()) ++distributed;
  }
  // Each distributed dimension consumes one section free dimension, in
  // order.  Surplus free dimensions are only tolerated when they carry a
  // single processor (e.g. a fully collapsed type on a 1-processor
  // section); anything else would silently ignore processors.
  if (distributed > sec.free_rank()) {
    throw std::invalid_argument(
        "Distribution: " + std::to_string(distributed) +
        " distributed dimensions exceed the section's free rank " +
        std::to_string(sec.free_rank()));
  }
  for (int f = distributed; f < sec.free_rank(); ++f) {
    if (sec.free_extent(f) != 1) {
      throw std::invalid_argument(
          "Distribution: " + std::to_string(distributed) +
          " distributed dimensions do not match the section's free rank " +
          std::to_string(sec.free_rank()));
    }
  }
}

DimMap Distribution::build_dim_map(const DimDist& dd, Range r, int nprocs) {
  switch (dd.kind) {
    case DimDistKind::Collapsed:
      return DimMap::collapsed(r);
    case DimDistKind::Block:
      return dd.block_width > 0 ? DimMap::block_width(r, nprocs,
                                                      dd.block_width)
                                : DimMap::block(r, nprocs);
    case DimDistKind::Cyclic:
      return DimMap::cyclic(r, nprocs, dd.cyclic_block);
    case DimDistKind::GenBlock: {
      std::vector<Index> sizes = dd.gen_bounds.empty()
                                     ? dd.gen_sizes
                                     : sizes_from_bounds(dd.gen_bounds, r);
      if (static_cast<int>(sizes.size()) != nprocs) {
        throw std::invalid_argument(
            "GEN_BLOCK: segment count does not match the processor count");
      }
      return DimMap::gen_block(r, std::move(sizes));
    }
    case DimDistKind::Indirect:
      if (dd.owners == nullptr) {
        throw std::invalid_argument("INDIRECT: missing owner table");
      }
      return DimMap::indirect(r, dd.owners->owners(), nprocs);
  }
  throw std::invalid_argument("Distribution: unknown dimension kind");
}

std::vector<int> Distribution::derive_free_dims(const DistributionType& type) {
  std::vector<int> free_dims;
  free_dims.reserve(static_cast<std::size_t>(type.rank()));
  int next_free = 0;
  for (const DimDist& dd : type.dims()) {
    free_dims.push_back(dd.distributed() ? next_free++ : -1);
  }
  return free_dims;
}

Distribution::Distribution(IndexDomain dom, DistributionType type,
                           ProcessorSection sec)
    : dom_(dom),
      type_(std::move(type)),
      sec_(std::make_shared<const ProcessorSection>(std::move(sec))) {
  check_applicable(dom_, type_, *sec_);
  maps_.reserve(static_cast<std::size_t>(dom_.rank()));
  free_dims_ = derive_free_dims(type_);
  for (int d = 0; d < dom_.rank(); ++d) {
    const DimDist& dd = type_.dim(d);
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const int p = f < 0 ? 1 : sec_->free_extent(f);
    maps_.push_back(
        std::make_shared<const DimMap>(build_dim_map(dd, dom_.dim(d), p)));
  }
  finish_init();
}

Distribution::Distribution(IndexDomain dom, DistributionType type,
                           ProcessorSection sec, std::vector<DimMap> maps,
                           std::vector<int> free_dims)
    : dom_(dom),
      type_(std::move(type)),
      sec_(std::make_shared<const ProcessorSection>(std::move(sec))),
      free_dims_(std::move(free_dims)) {
  maps_.reserve(maps.size());
  for (DimMap& m : maps) {
    maps_.push_back(std::make_shared<const DimMap>(std::move(m)));
  }
  if (static_cast<int>(maps_.size()) != dom_.rank() ||
      free_dims_.size() != maps_.size()) {
    throw std::invalid_argument(
        "Distribution: one DimMap and free-dim index per dimension required");
  }
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const int expect = f < 0 ? 1 : sec_->free_extent(f);
    if (maps_[static_cast<std::size_t>(d)]->nprocs() != expect) {
      throw std::invalid_argument(
          "Distribution: DimMap processor count does not match the section");
    }
  }
  finish_init();
}

Distribution::Distribution(IndexDomain dom, DistributionType type,
                           ProcessorSectionPtr sec,
                           std::vector<DimMapPtr> maps,
                           std::vector<int> free_dims)
    : dom_(dom),
      type_(std::move(type)),
      sec_(std::move(sec)),
      maps_(std::move(maps)),
      free_dims_(std::move(free_dims)) {
  if (sec_ == nullptr) {
    throw std::invalid_argument("Distribution: null processor section");
  }
  if (static_cast<int>(maps_.size()) != dom_.rank() ||
      free_dims_.size() != maps_.size()) {
    throw std::invalid_argument(
        "Distribution: one DimMap and free-dim index per dimension required");
  }
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const int expect = f < 0 ? 1 : sec_->free_extent(f);
    const DimMapPtr& m = maps_[static_cast<std::size_t>(d)];
    if (m == nullptr || m->nprocs() != expect) {
      throw std::invalid_argument(
          "Distribution: DimMap processor count does not match the section");
    }
  }
  finish_init();
}

std::uint64_t Distribution::fingerprint_of(const IndexDomain& dom,
                                           const DistributionType& type,
                                           const ProcessorSection& sec,
                                           const std::vector<int>& free_dims) {
  // Indirect owner tables contribute their content hash precomputed at
  // table admission (IndirectTable), so a fingerprint is O(rank * P) --
  // never O(N) -- and repeated DISTRIBUTE statements pay no per-element
  // work.
  std::uint64_t h = kFnvBasis;
  for (int d = 0; d < dom.rank(); ++d) {
    const Range r = dom.dim(d);
    h = fnv1a(h, static_cast<std::uint64_t>(r.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(r.hi));
    h = fnv1a(h, type.dim(d).hash());
    h = fnv1a(h, static_cast<std::uint64_t>(
                     free_dims[static_cast<std::size_t>(d)] + 1));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(sec.array().base_rank()));
  for (const SectionDim& s : sec.dims()) {
    h = fnv1a(h, s.fixed ? 1u : 0u);
    h = fnv1a(h, static_cast<std::uint64_t>(s.fixed ? s.coord : s.range.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(s.fixed ? 0 : s.range.hi));
  }
  return h;
}

void Distribution::finish_init() {
  affine_.base = sec_->rank_base();
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    affine_.stride[static_cast<std::size_t>(d)] =
        f < 0 ? 0 : sec_->rank_stride(f);
  }
  fingerprint_ = fingerprint_of(dom_, type_, *sec_, free_dims_);
}

int Distribution::owner_rank(const IndexVec& i) const {
  if (static_cast<int>(i.size()) != dom_.rank()) {
    throw std::invalid_argument("Distribution::owner_rank: rank mismatch");
  }
  Index rank = affine_.base;
  for (int d = 0; d < dom_.rank(); ++d) {
    rank += affine_.stride[static_cast<std::size_t>(d)] *
            maps_[static_cast<std::size_t>(d)]->proc_of(i[d]);
  }
  return static_cast<int>(rank);
}

Index Distribution::local_size(int rank) const {
  const LocalLayout L = layout_for(rank);
  return L.member ? L.total : 0;
}

LocalLayout Distribution::layout_for(int rank) const {
  LocalLayout L;
  const auto fc = sec_->free_coords_of(rank);
  if (!fc) return L;
  L.member = true;
  L.total = 1;
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const Index c = f < 0 ? 0 : (*fc)[f];
    L.coords.push_back(c);
    const Index n =
        maps_[static_cast<std::size_t>(d)]->count_on(static_cast<int>(c));
    L.counts.push_back(n);
    L.total *= n;
  }
  return L;
}

Index Distribution::local_offset(const LocalLayout& L,
                                 const IndexVec& i) const {
  Index off = 0;
  Index stride = 1;
  for (int d = 0; d < dom_.rank(); ++d) {
    off += maps_[static_cast<std::size_t>(d)]->local_of(i[d]) * stride;
    stride *= L.counts[d];
  }
  return off;
}

std::vector<Index> Distribution::owned_in_dim(int rank, int d) const {
  if (d < 0 || d >= dom_.rank()) {
    throw std::out_of_range("Distribution::owned_in_dim");
  }
  const auto fc = sec_->free_coords_of(rank);
  if (!fc) return {};
  const int f = free_dims_[static_cast<std::size_t>(d)];
  const Index c = f < 0 ? 0 : (*fc)[f];
  return maps_[static_cast<std::size_t>(d)]->owned_ascending(
      static_cast<int>(c));
}

bool Distribution::same_mapping(const Distribution& o) const {
  if (!(dom_ == o.dom_)) return false;
  if (affine_.base != o.affine_.base) return false;
  for (int d = 0; d < dom_.rank(); ++d) {
    const Index sa = affine_.stride[static_cast<std::size_t>(d)];
    const Index sb = o.affine_.stride[static_cast<std::size_t>(d)];
    const DimMap& ma = *maps_[static_cast<std::size_t>(d)];
    const DimMap& mb = *o.maps_[static_cast<std::size_t>(d)];
    // Shared interned maps on matching strides are trivially equal.
    if (sa == sb && &ma == &mb) continue;
    const Range r = dom_.dim(d);
    for (Index g = r.lo; g <= r.hi; ++g) {
      if (sa * ma.proc_of(g) != sb * mb.proc_of(g)) return false;
    }
  }
  return true;
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  os << type_.to_string() << " TO " << sec_->to_string();
  return os.str();
}

}  // namespace vf::dist
