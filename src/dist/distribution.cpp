#include "vf/dist/distribution.hpp"

#include <sstream>
#include <stdexcept>

namespace vf::dist {

namespace {

/// Converts B_BLOCK cumulative bounds into per-coordinate sizes.
std::vector<Index> sizes_from_bounds(const std::vector<Index>& bounds,
                                     Range dom) {
  std::vector<Index> sizes;
  sizes.reserve(bounds.size());
  Index prev = dom.lo - 1;
  for (Index b : bounds) {
    if (b < prev) {
      throw std::invalid_argument("B_BLOCK: bounds must be non-decreasing");
    }
    sizes.push_back(b - prev);
    prev = b;
  }
  if (prev != dom.hi) {
    throw std::invalid_argument(
        "B_BLOCK: final bound must equal the dimension upper bound");
  }
  return sizes;
}

/// Word-wise FNV-1a variant: one xor-multiply per 64-bit value (the
/// fingerprint hashes whole owners tables, so per-byte mixing would make
/// indirect-distribution construction O(8n) multiplies).
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  return (h ^ x) * kPrime;
}

}  // namespace

Distribution::Distribution(IndexDomain dom, DistributionType type,
                           ProcessorSection sec)
    : dom_(dom), type_(std::move(type)), sec_(std::move(sec)) {
  if (type_.rank() != dom_.rank()) {
    throw std::invalid_argument(
        "Distribution: type rank " + std::to_string(type_.rank()) +
        " does not match array rank " + std::to_string(dom_.rank()));
  }
  int distributed = 0;
  for (const DimDist& d : type_.dims()) {
    if (d.distributed()) ++distributed;
  }
  // Each distributed dimension consumes one section free dimension, in
  // order.  Surplus free dimensions are only tolerated when they carry a
  // single processor (e.g. a fully collapsed type on a 1-processor
  // section); anything else would silently ignore processors.
  if (distributed > sec_.free_rank()) {
    throw std::invalid_argument(
        "Distribution: " + std::to_string(distributed) +
        " distributed dimensions exceed the section's free rank " +
        std::to_string(sec_.free_rank()));
  }
  for (int f = distributed; f < sec_.free_rank(); ++f) {
    if (sec_.free_extent(f) != 1) {
      throw std::invalid_argument(
          "Distribution: " + std::to_string(distributed) +
          " distributed dimensions do not match the section's free rank " +
          std::to_string(sec_.free_rank()));
    }
  }

  maps_.reserve(static_cast<std::size_t>(dom_.rank()));
  free_dims_.reserve(static_cast<std::size_t>(dom_.rank()));
  int next_free = 0;
  for (int d = 0; d < dom_.rank(); ++d) {
    const DimDist& dd = type_.dim(d);
    const Range r = dom_.dim(d);
    if (!dd.distributed()) {
      maps_.push_back(DimMap::collapsed(r));
      free_dims_.push_back(-1);
      continue;
    }
    const int p = sec_.free_extent(next_free);
    switch (dd.kind) {
      case DimDistKind::Block:
        maps_.push_back(dd.block_width > 0
                            ? DimMap::block_width(r, p, dd.block_width)
                            : DimMap::block(r, p));
        break;
      case DimDistKind::Cyclic:
        maps_.push_back(DimMap::cyclic(r, p, dd.cyclic_block));
        break;
      case DimDistKind::GenBlock: {
        std::vector<Index> sizes = dd.gen_bounds.empty()
                                       ? dd.gen_sizes
                                       : sizes_from_bounds(dd.gen_bounds, r);
        if (static_cast<int>(sizes.size()) != p) {
          throw std::invalid_argument(
              "GEN_BLOCK: segment count does not match the processor count");
        }
        maps_.push_back(DimMap::gen_block(r, std::move(sizes)));
        break;
      }
      case DimDistKind::Indirect:
        maps_.push_back(DimMap::indirect(r, dd.owners, p));
        break;
      case DimDistKind::Collapsed:
        break;  // unreachable
    }
    free_dims_.push_back(next_free++);
  }
  finish_init();
}

Distribution::Distribution(IndexDomain dom, DistributionType type,
                           ProcessorSection sec, std::vector<DimMap> maps,
                           std::vector<int> free_dims)
    : dom_(dom),
      type_(std::move(type)),
      sec_(std::move(sec)),
      maps_(std::move(maps)),
      free_dims_(std::move(free_dims)) {
  if (static_cast<int>(maps_.size()) != dom_.rank() ||
      free_dims_.size() != maps_.size()) {
    throw std::invalid_argument(
        "Distribution: one DimMap and free-dim index per dimension required");
  }
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const int expect =
        f < 0 ? 1 : sec_.free_extent(f);
    if (maps_[static_cast<std::size_t>(d)].nprocs() != expect) {
      throw std::invalid_argument(
          "Distribution: DimMap processor count does not match the section");
    }
  }
  finish_init();
}

void Distribution::finish_init() {
  affine_.base = sec_.rank_base();
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    affine_.stride[static_cast<std::size_t>(d)] =
        f < 0 ? 0 : sec_.rank_stride(f);
  }

  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (int d = 0; d < dom_.rank(); ++d) {
    const Range r = dom_.dim(d);
    h = fnv1a(h, static_cast<std::uint64_t>(r.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(r.hi));
    const DimDist& dd = type_.dim(d);
    h = fnv1a(h, static_cast<std::uint64_t>(dd.kind));
    h = fnv1a(h, static_cast<std::uint64_t>(dd.block_width));
    h = fnv1a(h, static_cast<std::uint64_t>(dd.cyclic_block));
    for (Index s : dd.gen_sizes) h = fnv1a(h, static_cast<std::uint64_t>(s));
    for (Index b : dd.gen_bounds) h = fnv1a(h, static_cast<std::uint64_t>(b));
    for (int o : dd.owners) h = fnv1a(h, static_cast<std::uint64_t>(o));
    h = fnv1a(h, static_cast<std::uint64_t>(
                     free_dims_[static_cast<std::size_t>(d)] + 1));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(sec_.array().base_rank()));
  for (const SectionDim& s : sec_.dims()) {
    h = fnv1a(h, s.fixed ? 1u : 0u);
    h = fnv1a(h, static_cast<std::uint64_t>(s.fixed ? s.coord : s.range.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(s.fixed ? 0 : s.range.hi));
  }
  fingerprint_ = h;
}

int Distribution::owner_rank(const IndexVec& i) const {
  if (static_cast<int>(i.size()) != dom_.rank()) {
    throw std::invalid_argument("Distribution::owner_rank: rank mismatch");
  }
  Index rank = affine_.base;
  for (int d = 0; d < dom_.rank(); ++d) {
    rank += affine_.stride[static_cast<std::size_t>(d)] *
            maps_[static_cast<std::size_t>(d)].proc_of(i[d]);
  }
  return static_cast<int>(rank);
}

Index Distribution::local_size(int rank) const {
  const LocalLayout L = layout_for(rank);
  return L.member ? L.total : 0;
}

LocalLayout Distribution::layout_for(int rank) const {
  LocalLayout L;
  const auto fc = sec_.free_coords_of(rank);
  if (!fc) return L;
  L.member = true;
  L.total = 1;
  for (int d = 0; d < dom_.rank(); ++d) {
    const int f = free_dims_[static_cast<std::size_t>(d)];
    const Index c = f < 0 ? 0 : (*fc)[f];
    L.coords.push_back(c);
    const Index n =
        maps_[static_cast<std::size_t>(d)].count_on(static_cast<int>(c));
    L.counts.push_back(n);
    L.total *= n;
  }
  return L;
}

Index Distribution::local_offset(const LocalLayout& L,
                                 const IndexVec& i) const {
  Index off = 0;
  Index stride = 1;
  for (int d = 0; d < dom_.rank(); ++d) {
    off += maps_[static_cast<std::size_t>(d)].local_of(i[d]) * stride;
    stride *= L.counts[d];
  }
  return off;
}

std::vector<Index> Distribution::owned_in_dim(int rank, int d) const {
  if (d < 0 || d >= dom_.rank()) {
    throw std::out_of_range("Distribution::owned_in_dim");
  }
  const auto fc = sec_.free_coords_of(rank);
  if (!fc) return {};
  const int f = free_dims_[static_cast<std::size_t>(d)];
  const Index c = f < 0 ? 0 : (*fc)[f];
  return maps_[static_cast<std::size_t>(d)].owned_ascending(
      static_cast<int>(c));
}

bool Distribution::same_mapping(const Distribution& o) const {
  if (!(dom_ == o.dom_)) return false;
  if (affine_.base != o.affine_.base) return false;
  for (int d = 0; d < dom_.rank(); ++d) {
    const Index sa = affine_.stride[static_cast<std::size_t>(d)];
    const Index sb = o.affine_.stride[static_cast<std::size_t>(d)];
    const DimMap& ma = maps_[static_cast<std::size_t>(d)];
    const DimMap& mb = o.maps_[static_cast<std::size_t>(d)];
    const Range r = dom_.dim(d);
    for (Index g = r.lo; g <= r.hi; ++g) {
      if (sa * ma.proc_of(g) != sb * mb.proc_of(g)) return false;
    }
  }
  return true;
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  os << type_.to_string() << " TO " << sec_.to_string();
  return os.str();
}

}  // namespace vf::dist
