#include "vf/dist/registry.hpp"

#include <string_view>
#include <utility>

#include "vf/dist/hash.hpp"

namespace vf::dist {

namespace {

std::uint64_t hash_range(std::uint64_t h, Range r) noexcept {
  h = fnv1a(h, static_cast<std::uint64_t>(r.lo));
  return fnv1a(h, static_cast<std::uint64_t>(r.hi));
}

std::uint64_t hash_domain(const IndexDomain& d) noexcept {
  std::uint64_t h = fnv1a(kFnvBasis, static_cast<std::uint64_t>(d.rank()));
  for (int k = 0; k < d.rank(); ++k) h = hash_range(h, d.dim(k));
  return h;
}

std::uint64_t hash_section(const ProcessorSection& s) noexcept {
  std::uint64_t h = kFnvBasis;
  for (char c : std::string_view(s.array().name())) {
    h = fnv1a(h, static_cast<unsigned char>(c));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(s.array().base_rank()));
  h = fnv1a(h, hash_domain(s.array().domain()));
  for (const SectionDim& d : s.dims()) {
    h = fnv1a(h, d.fixed ? 1u : 0u);
    h = fnv1a(h, static_cast<std::uint64_t>(d.fixed ? d.coord : d.range.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(d.fixed ? 0 : d.range.hi));
  }
  return h;
}

// Heap bytes a DimDist key holds beyond its inline storage.  A shared
// IndirectTable is charged to the dim-map entry that keys on it; two
// entries sharing one table double-count it, which is rare and keeps the
// accounting single-pass (it is a growth gauge, not an allocator).
std::size_t dim_dist_bytes(const DimDist& dd) noexcept {
  std::size_t b = dd.gen_sizes.capacity() * sizeof(Index) +
                  dd.gen_bounds.capacity() * sizeof(Index);
  if (dd.owners != nullptr) {
    b += sizeof(IndirectTable) + dd.owners->owners().capacity() * sizeof(int);
  }
  return b;
}

void sub_bytes(std::uint64_t& acc, std::size_t b) noexcept {
  acc = b > acc ? 0 : acc - b;
}

}  // namespace

DistHandle DistRegistry::wrap(Distribution d) {
  return DistHandle(std::make_shared<const Distribution>(std::move(d)), 0);
}

DistHandle DistRegistry::wrap(DistributionPtr d) {
  return DistHandle(std::move(d), 0);
}

DistHandle DistRegistry::admit(DistributionPtr d, std::uint64_t key) {
  DistHandle h(std::move(d), next_uid_++);
  stats_.resident_bytes += h->footprint_bytes() + sizeof(DistHandle);
  dists_[key].push_back(h);
  ++n_dists_;
  return h;
}

DistHandle DistRegistry::intern(const IndexDomain& dom,
                                const DistributionType& type,
                                const ProcessorSection& sec) {
  if (!enabled_) return wrap(Distribution(dom, type, sec));
  return intern(dom, type, intern_section(sec));
}

DistHandle DistRegistry::intern(const IndexDomain& dom,
                                const DistributionType& type,
                                ProcessorSectionPtr sec) {
  if (sec == nullptr) {
    throw std::invalid_argument("DistRegistry::intern: null section");
  }
  if (!enabled_) return wrap(Distribution(dom, type, *sec));
  Distribution::check_applicable(dom, type, *sec);
  const std::vector<int> fd = Distribution::derive_free_dims(type);
  const std::uint64_t key = Distribution::fingerprint_of(dom, type, *sec, fd);
  for (const DistHandle& cand : dists_[key]) {
    // Admission-time structural verification: after this, handle identity
    // IS structural equality, so no downstream cache re-verifies.
    if (cand->domain() == dom && cand->free_dims() == fd &&
        cand->type() == type && cand->section() == *sec) {
      ++stats_.hits;
      return cand;
    }
  }
  ++stats_.misses;
  std::vector<DimMapPtr> maps;
  maps.reserve(static_cast<std::size_t>(dom.rank()));
  for (int d = 0; d < dom.rank(); ++d) {
    const int f = fd[static_cast<std::size_t>(d)];
    const int p = f < 0 ? 1 : sec->free_extent(f);
    maps.push_back(intern_dim_map(type.dim(d), dom.dim(d), p));
  }
  return admit(std::make_shared<const Distribution>(
                   dom, type, std::move(sec), std::move(maps), fd),
               key);
}

DistHandle DistRegistry::intern(Distribution d) {
  if (!enabled_) return wrap(std::move(d));
  const std::uint64_t key = d.fingerprint();
  for (const DistHandle& cand : dists_[key]) {
    if (cand->structural_equal(d)) {
      ++stats_.hits;
      return cand;
    }
  }
  ++stats_.misses;
  return admit(std::make_shared<const Distribution>(std::move(d)), key);
}

DistHandle DistRegistry::intern(DistributionPtr d) {
  if (d == nullptr) {
    throw std::invalid_argument("DistRegistry::intern: null distribution");
  }
  if (!enabled_) return wrap(std::move(d));
  const std::uint64_t key = d->fingerprint();
  for (const DistHandle& cand : dists_[key]) {
    if (cand.get() == d.get() || cand->structural_equal(*d)) {
      ++stats_.hits;
      return cand;
    }
  }
  ++stats_.misses;
  return admit(std::move(d), key);
}

DimMapPtr DistRegistry::intern_dim_map(const DimDist& dd, Range r,
                                       int nprocs) {
  std::uint64_t key = fnv1a(kFnvBasis, dd.hash());
  key = hash_range(key, r);
  key = fnv1a(key, static_cast<std::uint64_t>(nprocs));
  for (const DimMapEntry& e : dim_maps_[key]) {
    if (e.np == nprocs && e.r == r && e.dd == dd) {
      ++stats_.dim_map_hits;
      return e.map;
    }
  }
  ++stats_.dim_map_misses;
  auto m = std::make_shared<const DimMap>(
      Distribution::build_dim_map(dd, r, nprocs));
  dim_maps_[key].push_back(DimMapEntry{dd, r, nprocs, m});
  // Charge from the STORED entry (its vector capacities, not the
  // caller's), so the sweep's credit mirrors the charge exactly and
  // resident_bytes returns to zero when everything is reclaimed.
  const DimMapEntry& e = dim_maps_[key].back();
  stats_.resident_bytes +=
      sizeof(DimMapEntry) + dim_dist_bytes(e.dd) + e.map->footprint_bytes();
  return m;
}

ProcessorSectionPtr DistRegistry::intern_section(const ProcessorSection& s) {
  const std::uint64_t key = hash_section(s);
  for (const ProcessorSectionPtr& cand : sections_[key]) {
    if (*cand == s) return cand;
  }
  auto p = std::make_shared<const ProcessorSection>(s);
  stats_.resident_bytes += p->footprint_bytes() + sizeof(ProcessorSectionPtr);
  sections_[key].push_back(p);
  return p;
}

halo::HaloHandle DistRegistry::intern(const halo::HaloSpec& s) {
  if (!enabled_) return halo::HaloHandle::wrap(s);
  const std::uint64_t key = s.hash();
  for (const halo::HaloHandle& cand : halos_[key]) {
    if (*cand == s) {
      ++stats_.halo_spec_hits;
      return cand;
    }
  }
  ++stats_.halo_spec_misses;
  halo::HaloHandle h(std::make_shared<const halo::HaloSpec>(s),
                     next_halo_uid_++);
  stats_.resident_bytes +=
      halo::HaloSpec::footprint_bytes() + sizeof(halo::HaloHandle);
  halos_[key].push_back(h);
  return h;
}

halo::FamilyHandle DistRegistry::intern_family(
    std::vector<halo::HaloHandle> specs) {
  halo::HaloFamily f(std::move(specs));
  if (!enabled_) return halo::FamilyHandle::wrap(std::move(f));
  const std::uint64_t key = f.hash();
  for (const halo::FamilyHandle& cand : halo_families_[key]) {
    if (*cand == f) {
      ++stats_.halo_family_hits;
      return cand;
    }
  }
  ++stats_.halo_family_misses;
  halo::FamilyHandle h(std::make_shared<const halo::HaloFamily>(std::move(f)),
                       next_family_uid_++);
  stats_.resident_bytes += h->footprint_bytes() + sizeof(halo::FamilyHandle);
  halo_families_[key].push_back(h);
  return h;
}

std::size_t DistRegistry::sweep() {
  ++epoch_;
  std::size_t reclaimed = 0;
  std::uint64_t pinned = 0;

  const auto reclaim = [&](std::size_t bytes) {
    sub_bytes(stats_.resident_bytes, bytes);
    ++stats_.swept;
    ++reclaimed;
  };
  // An entry is pinned iff anything besides the registry's own bucket
  // still shares its pointer (a live array's handle chain, a cached
  // plan, a schedule binding, a user handle).
  const auto unpinned = [&](const auto& shared) {
    if (shared.use_count() > 1) {
      ++pinned;
      return false;
    }
    return true;
  };

  // Distributions first: destroying one releases its DimMapPtr and
  // ProcessorSectionPtr references, so components unshared after this
  // pass fall to use_count()==1 before their own passes below.
  for (auto it = dists_.begin(); it != dists_.end();) {
    std::erase_if(it->second, [&](const DistHandle& h) {
      if (!unpinned(h.ptr())) return false;
      reclaim(h->footprint_bytes() + sizeof(DistHandle));
      --n_dists_;
      return true;
    });
    it = it->second.empty() ? dists_.erase(it) : std::next(it);
  }

  // Families before the member specs they hold handles to.
  for (auto it = halo_families_.begin(); it != halo_families_.end();) {
    std::erase_if(it->second, [&](const halo::FamilyHandle& h) {
      if (!unpinned(h.p_)) return false;
      reclaim(h->footprint_bytes() + sizeof(halo::FamilyHandle));
      return true;
    });
    it = it->second.empty() ? halo_families_.erase(it) : std::next(it);
  }

  for (auto it = halos_.begin(); it != halos_.end();) {
    std::erase_if(it->second, [&](const halo::HaloHandle& h) {
      if (!unpinned(h.p_)) return false;
      reclaim(halo::HaloSpec::footprint_bytes() + sizeof(halo::HaloHandle));
      return true;
    });
    it = it->second.empty() ? halos_.erase(it) : std::next(it);
  }

  for (auto it = dim_maps_.begin(); it != dim_maps_.end();) {
    std::erase_if(it->second, [&](const DimMapEntry& e) {
      if (!unpinned(e.map)) return false;
      reclaim(sizeof(DimMapEntry) + dim_dist_bytes(e.dd) +
              e.map->footprint_bytes());
      return true;
    });
    it = it->second.empty() ? dim_maps_.erase(it) : std::next(it);
  }

  for (auto it = sections_.begin(); it != sections_.end();) {
    std::erase_if(it->second, [&](const ProcessorSectionPtr& p) {
      if (!unpinned(p)) return false;
      reclaim(p->footprint_bytes() + sizeof(ProcessorSectionPtr));
      return true;
    });
    it = it->second.empty() ? sections_.erase(it) : std::next(it);
  }

  stats_.pinned = pinned;
  return reclaimed;
}

void DistRegistry::clear() {
  dists_.clear();
  dim_maps_.clear();
  sections_.clear();
  halos_.clear();
  halo_families_.clear();
  n_dists_ = 0;
  // Counters describe current contents; after a clear there are none.
  // uid counters intentionally survive (monotonic across clear/sweep).
  stats_ = RegistryStats{};
}

}  // namespace vf::dist
