#include "vf/dist/processors.hpp"

#include <sstream>
#include <stdexcept>

namespace vf::dist {

ProcessorArray::ProcessorArray(std::string name, IndexDomain dom,
                               int base_rank)
    : name_(std::move(name)), dom_(dom), base_(base_rank) {
  if (dom_.rank() == 0 || dom_.size() <= 0) {
    throw std::invalid_argument("ProcessorArray " + name_ +
                                ": domain must be non-empty");
  }
  if (base_ < 0) {
    throw std::invalid_argument("ProcessorArray " + name_ +
                                ": negative base rank");
  }
}

ProcessorArray ProcessorArray::line(int n) {
  return ProcessorArray("$P", IndexDomain::of_extents({n}));
}

ProcessorArray ProcessorArray::grid(int r, int c) {
  return ProcessorArray("$P", IndexDomain::of_extents({r, c}));
}

int ProcessorArray::machine_rank(const IndexVec& coords) const {
  if (!dom_.contains(coords)) {
    throw std::out_of_range("ProcessorArray " + name_ + ": coordinates " +
                            coords.to_string() + " outside the array");
  }
  return base_ + static_cast<int>(dom_.linearize(coords));
}

IndexVec ProcessorArray::coords_of(int machine_rank) const {
  if (!contains_rank(machine_rank)) {
    throw std::out_of_range("ProcessorArray " + name_ +
                            ": machine rank outside the array");
  }
  return dom_.delinearize(machine_rank - base_);
}

bool ProcessorArray::contains_rank(int machine_rank) const noexcept {
  return machine_rank >= base_ && machine_rank < base_ + nprocs();
}

ProcessorSection::ProcessorSection(ProcessorArray arr) : arr_(std::move(arr)) {
  dims_.reserve(static_cast<std::size_t>(arr_.rank()));
  for (int d = 0; d < arr_.rank(); ++d) {
    dims_.push_back(SectionDim::all(arr_.domain().dim(d)));
    free_.push_back(d);
  }
}

ProcessorSection::ProcessorSection(ProcessorArray arr,
                                   std::vector<SectionDim> dims)
    : arr_(std::move(arr)), dims_(std::move(dims)) {
  if (static_cast<int>(dims_.size()) != arr_.rank()) {
    throw std::invalid_argument(
        "ProcessorSection: one SectionDim per processor-array dimension "
        "required");
  }
  for (int d = 0; d < arr_.rank(); ++d) {
    const SectionDim& s = dims_[static_cast<std::size_t>(d)];
    const Range& dom = arr_.domain().dim(d);
    if (s.fixed) {
      if (!dom.contains(s.coord)) {
        throw std::out_of_range(
            "ProcessorSection: fixed coordinate outside the array");
      }
    } else {
      if (s.range.empty() || !dom.contains(s.range.lo) ||
          !dom.contains(s.range.hi)) {
        throw std::out_of_range(
            "ProcessorSection: coordinate range outside the array");
      }
      free_.push_back(d);
    }
  }
  if (free_.empty()) {
    throw std::invalid_argument(
        "ProcessorSection: at least one free dimension required");
  }
}

int ProcessorSection::nprocs() const noexcept {
  int n = 1;
  for (int f : free_) {
    n *= static_cast<int>(dims_[static_cast<std::size_t>(f)].range.size());
  }
  return n;
}

int ProcessorSection::free_extent(int f) const {
  if (f < 0 || f >= free_rank()) {
    throw std::out_of_range("ProcessorSection::free_extent");
  }
  return static_cast<int>(
      dims_[static_cast<std::size_t>(free_[static_cast<std::size_t>(f)])]
          .range.size());
}

int ProcessorSection::machine_rank(const IndexVec& free_coords) const {
  if (static_cast<int>(free_coords.size()) != free_rank()) {
    throw std::invalid_argument(
        "ProcessorSection::machine_rank: coordinate count mismatch");
  }
  IndexVec full;
  int f = 0;
  for (int d = 0; d < arr_.rank(); ++d) {
    const SectionDim& s = dims_[static_cast<std::size_t>(d)];
    if (s.fixed) {
      full.push_back(s.coord);
    } else {
      const Index c = free_coords[f++];
      if (c < 0 || c >= s.range.size()) {
        throw std::out_of_range(
            "ProcessorSection::machine_rank: free coordinate outside range");
      }
      full.push_back(s.range.lo + c);
    }
  }
  return arr_.machine_rank(full);
}

int ProcessorSection::rank_base() const {
  return machine_rank(IndexVec::filled(free_rank(), 0));
}

Index ProcessorSection::rank_stride(int f) const {
  if (free_extent(f) <= 1) return 0;
  IndexVec unit = IndexVec::filled(free_rank(), 0);
  unit[f] = 1;
  return machine_rank(unit) - rank_base();
}

std::vector<int> ProcessorSection::machine_ranks() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(nprocs()));
  IndexVec c = IndexVec::filled(free_rank(), 0);
  for (;;) {
    out.push_back(machine_rank(c));
    int f = 0;
    for (; f < free_rank(); ++f) {
      if (++c[f] < free_extent(f)) break;
      c[f] = 0;
    }
    if (f == free_rank()) break;
  }
  return out;
}

std::optional<IndexVec> ProcessorSection::free_coords_of(
    int machine_rank) const {
  if (!arr_.contains_rank(machine_rank)) return std::nullopt;
  const IndexVec coords = arr_.coords_of(machine_rank);
  IndexVec fc;
  for (int d = 0; d < arr_.rank(); ++d) {
    const SectionDim& s = dims_[static_cast<std::size_t>(d)];
    if (s.fixed) {
      if (coords[d] != s.coord) return std::nullopt;
    } else {
      if (!s.range.contains(coords[d])) return std::nullopt;
      fc.push_back(coords[d] - s.range.lo);
    }
  }
  return fc;
}

std::string ProcessorSection::to_string() const {
  std::ostringstream os;
  os << arr_.name() << "(";
  for (int d = 0; d < arr_.rank(); ++d) {
    const SectionDim& s = dims_[static_cast<std::size_t>(d)];
    if (d) os << ", ";
    if (s.fixed) {
      os << s.coord;
    } else {
      os << s.range.lo << ":" << s.range.hi;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace vf::dist
