#include "vf/dist/skew.hpp"

#include <algorithm>
#include <cmath>

namespace vf::dist {

double SkewReport::max_over_mean() const noexcept {
  if (total <= 0 || members <= 0) return 1.0;
  Index max = 0;
  for (const Index e : rank_elems) max = e > max ? e : max;
  const double mean =
      static_cast<double>(total) / static_cast<double>(members);
  return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

SkewReport ownership_skew(const Distribution& d, int nprocs) {
  SkewReport rep;
  rep.rank_elems.assign(static_cast<std::size_t>(nprocs > 0 ? nprocs : 0), 0);
  for (int p = 0; p < nprocs; ++p) {
    const LocalLayout L = d.layout_for(p);
    if (!L.member) continue;
    rep.members++;
    rep.rank_elems[static_cast<std::size_t>(p)] = L.total;
    rep.total += L.total;
  }
  return rep;
}

DistHandle hybridize(DistRegistry& reg, const DistHandle& od,
                     const DistHandle& nd, const SkewConfig& cfg) {
  if (!od || !nd) return {};
  const Distribution& o = *od;
  const Distribution& n = *nd;
  if (!(o.domain() == n.domain())) return {};
  if (!(o.section() == n.section())) return {};
  if (o.free_dims() != n.free_dims()) return {};

  const DimMap& o0 = o.dim_map(0);
  const DimMap& n0 = n.dim_map(0);
  if (o0.is_collapsed() || n0.is_collapsed()) return {};
  const int np0 = n0.nprocs();
  if (o0.nprocs() != np0 || np0 <= 0) return {};
  for (int d = 1; d < o.domain().rank(); ++d) {
    if (!o.dim_map(d).same_mapping(n.dim_map(d))) return {};
  }

  const Range r0 = o.domain().dim(0);
  const Index extent = r0.size();
  if (extent <= 0) return {};
  const Index cap = std::max<Index>(
      1, static_cast<Index>(std::ceil(cfg.cap_factor *
                                      static_cast<double>(extent) /
                                      static_cast<double>(np0))));

  // Ascending cap walk: the first `cap` elements targeting a coordinate
  // keep the new owner; the excess keeps the old one.  Every rank scans
  // the same order, so the table (and the interned handle) is
  // SPMD-uniform.
  std::vector<int> owners(static_cast<std::size_t>(extent));
  std::vector<Index> cnt(static_cast<std::size_t>(np0), 0);
  bool any_capped = false;
  for (Index g = r0.lo; g <= r0.hi; ++g) {
    const int c = n0.proc_of(g);
    const auto slot = static_cast<std::size_t>(g - r0.lo);
    if (cnt[static_cast<std::size_t>(c)] < cap) {
      cnt[static_cast<std::size_t>(c)]++;
      owners[slot] = c;
    } else {
      owners[slot] = o0.proc_of(g);
      any_capped = true;
    }
  }
  if (!any_capped) return {};

  std::vector<DimDist> dims = n.type().dims();
  dims[0] = indirect(std::move(owners));
  return reg.intern(o.domain(), DistributionType(std::move(dims)),
                    n.section_ptr());
}

}  // namespace vf::dist
