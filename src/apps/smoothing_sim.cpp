#include "vf/apps/smoothing_sim.hpp"

#include <cmath>

#include "vf/rt/dist_array.hpp"

namespace vf::apps {

namespace {

using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

int isqrt(int p) {
  int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  while (r * r > p) --r;
  while ((r + 1) * (r + 1) <= p) ++r;
  return r;
}

/// One 9-point update at i; out-of-domain neighbours reuse the centre
/// value, like the 5-point kernel.
double smooth9(const rt::DistArray<double>& src, const IndexVec& i, Index n) {
  const double c = src.at(i);
  const auto rd = [&](Index di, Index dj) {
    const Index x = i[0] + di;
    const Index y = i[1] + dj;
    if (x < 1 || x > n || y < 1 || y > n) return c;
    return src.halo({x, y});
  };
  return smooth9_combine(c, rd(-1, 0), rd(+1, 0), rd(0, -1), rd(0, +1),
                         rd(-1, -1), rd(-1, +1), rd(+1, -1), rd(+1, +1));
}

}  // namespace

const char* to_string(SmoothLayout l) {
  return l == SmoothLayout::Columns ? "columns" : "grid2d";
}

const char* to_string(SmoothStencil s) {
  return s == SmoothStencil::FivePoint ? "5pt" : "9pt";
}

SmoothResult run_smoothing(msg::Context& ctx, const SmoothConfig& cfg,
                           SmoothLayout layout) {
  const int np = ctx.nprocs();
  const Index n = cfg.n;

  dist::ProcessorArray parr;
  dist::DistributionType type;
  dist::IndexVec glo, ghi;
  if (layout == SmoothLayout::Columns) {
    parr = dist::ProcessorArray::line(np);
    type = dist::DistributionType{dist::col(), dist::block()};
    glo = {0, 1};
    ghi = {0, 1};
  } else {
    const int q = isqrt(np);
    if (q * q != np) {
      throw std::invalid_argument(
          "smoothing grid2d layout needs a square processor count");
    }
    parr = dist::ProcessorArray::grid(q, q);
    type = dist::DistributionType{dist::block(), dist::block()};
    glo = {1, 1};
    ghi = {1, 1};
  }
  // A 9-point step reads the diagonal neighbours too; on a 2-D block
  // grid those live in corner ghost regions (on the column layout the
  // first dimension is fully local, so faces already cover them).
  const bool corners = cfg.stencil == SmoothStencil::NinePoint;
  rt::Env env(ctx, parr);
  rt::DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({n, n}),
                                .dynamic = true,
                                .initial = type,
                                .overlap_lo = glo,
                                .overlap_hi = ghi,
                                .overlap_corners = corners});
  rt::DistArray<double> b(env, {.name = "B",
                                .domain = IndexDomain::of_extents({n, n}),
                                .dynamic = true,
                                .initial = type,
                                .overlap_lo = glo,
                                .overlap_hi = ghi,
                                .overlap_corners = corners});
  a.init([n](const IndexVec& i) {
    return std::sin(0.07 * static_cast<double>(i[0])) *
           std::cos(0.05 * static_cast<double>(i[1])) +
           (i[0] == n / 2 && i[1] == n / 2 ? 10.0 : 0.0);
  });

  rt::DistArray<double>* src = &a;
  rt::DistArray<double>* dst = &b;
  for (int s = 0; s < cfg.steps; ++s) {
    const auto update = [&](const IndexVec& i, double& out) {
      if (cfg.stencil == SmoothStencil::FivePoint) {
        const double c = src->at(i);
        const double w = i[0] > 1 ? src->halo({i[0] - 1, i[1]}) : c;
        const double e = i[0] < n ? src->halo({i[0] + 1, i[1]}) : c;
        const double so = i[1] > 1 ? src->halo({i[0], i[1] - 1}) : c;
        const double no = i[1] < n ? src->halo({i[0], i[1] + 1}) : c;
        out = 0.2 * (c + w + e + so + no);
      } else {
        out = smooth9(*src, i, n);
      }
    };
    if (cfg.split_phase) {
      // Interior points read only owned src values, so they update while
      // the boundary exchange is in flight; boundary points wait for the
      // ghosts.  src and dst share their distribution and spec, but the
      // margins are src's by rights (its ghosts are the ones arriving).
      src->begin_exchange_overlap();
      const auto m = src->split_margins();
      dst->for_owned_interior(m, update);
      src->end_exchange_overlap();
      dst->for_owned_boundary(m, update);
    } else {
      src->exchange_overlap();
      dst->for_owned(update);
    }
    std::swap(src, dst);
  }
  const auto& cache = env.halo_plans().stats();
  const auto hits = static_cast<std::int64_t>(cache.hits);
  const auto misses = static_cast<std::int64_t>(cache.misses);
  return SmoothResult{
      src->reduce(msg::ReduceOp::Sum),
      static_cast<std::uint64_t>(
          ctx.allreduce(hits, msg::ReduceOp::Sum)),
      static_cast<std::uint64_t>(
          ctx.allreduce(misses, msg::ReduceOp::Sum))};
}

double modeled_step_cost_us(SmoothLayout layout, Index n, int nprocs,
                            const msg::CostModel& cm, std::size_t elem_size) {
  if (layout == SmoothLayout::Columns) {
    return 2.0 * cm.message_us(static_cast<std::uint64_t>(n) * elem_size);
  }
  const int q = isqrt(nprocs);
  const auto face = static_cast<std::uint64_t>((n + q - 1) / q) * elem_size;
  return 4.0 * cm.message_us(face);
}

SmoothLayout choose_layout(Index n, int nprocs, const msg::CostModel& cm,
                           std::size_t elem_size) {
  const double cols =
      modeled_step_cost_us(SmoothLayout::Columns, n, nprocs, cm, elem_size);
  const double grid =
      modeled_step_cost_us(SmoothLayout::Grid2D, n, nprocs, cm, elem_size);
  return cols <= grid ? SmoothLayout::Columns : SmoothLayout::Grid2D;
}

}  // namespace vf::apps
