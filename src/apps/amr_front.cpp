#include "vf/apps/amr_front.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "vf/rt/dist_array.hpp"

namespace vf::apps {

namespace {

using dist::Index;
using dist::IndexVec;

/// Per-rank ghost widths in dimension 0 for a segment [a, b] when the
/// front is at f: the widest reach of any owned cell's radius past each
/// segment edge.  A cell i reads down to i - r(i), so the low width is
/// max over owned i of r(i) - (i - a); only cells within front_width of
/// the edge can contribute a positive value.
struct Dim0Widths {
  Index lo = 0;
  Index hi = 0;
};

Dim0Widths dim0_widths(Index a, Index b, Index f, const AmrFrontConfig& cfg) {
  Dim0Widths w;
  for (Index i = a; i <= b && i <= a + cfg.front_width; ++i) {
    const Index r =
        amr_radius(i, f, cfg.front_halfspan, cfg.base_width, cfg.front_width);
    w.lo = std::max(w.lo, r - (i - a));
  }
  for (Index i = std::max(a, b - cfg.front_width); i <= b; ++i) {
    const Index r =
        amr_radius(i, f, cfg.front_halfspan, cfg.base_width, cfg.front_width);
    w.hi = std::max(w.hi, r - (b - i));
  }
  return w;
}

int isqrt_exact(int np) {
  int q = 1;
  while (q * q < np) ++q;
  if (q * q != np) {
    throw std::invalid_argument(
        "run_amr_front: nprocs must be a perfect square, got " +
        std::to_string(np));
  }
  return q;
}

}  // namespace

double amr_seed(Index i, Index j, Index n) {
  // Position-sensitive and cheap; the spike makes directional mistakes
  // visible immediately.
  return static_cast<double>((i * 13 + j * 29) % 31) +
         (i == n / 2 && j == n / 3 ? 50.0 : 0.0);
}

double amr_checksum(const std::vector<double>& full) {
  double acc = 0.0;
  for (double v : full) acc += v;
  return acc;
}

AmrFrontResult run_amr_front(msg::Context& ctx, const AmrFrontConfig& cfg) {
  const int np = ctx.nprocs();
  const int q = isqrt_exact(np);
  // The asymmetric spec contract is exact (no partial fill): every
  // non-empty BLOCK segment must be able to serve a front_width ghost.
  const Index bw = (cfg.n + q - 1) / q;           // ceil(n / q)
  const Index last = cfg.n - (q - 1) * bw;        // final coordinate's share
  if (cfg.front_width > bw || (last > 0 && cfg.front_width > last)) {
    throw std::invalid_argument(
        "run_amr_front: block segments must be at least front_width wide");
  }
  rt::Env env(ctx, dist::ProcessorArray::grid(q, q));
  const Index n = cfg.n;
  const rt::DistArray<double>::Spec base{
      .name = "AMR_A",
      .domain = dist::IndexDomain::of_extents({n, n}),
      .dynamic = true,
      .initial = dist::DistributionType{dist::block(), dist::block()},
      .overlap_lo = {cfg.base_width, 1},
      .overlap_hi = {cfg.base_width, 1},
      .overlap_corners = false,
      .overlap_asymmetric = true};
  rt::DistArray<double> a(env, base);
  auto bspec = base;
  bspec.name = "AMR_B";
  rt::DistArray<double> b(env, bspec);
  a.init([n](const IndexVec& i) { return amr_seed(i[0], i[1], n); });

  rt::DistArray<double>* src = &a;
  rt::DistArray<double>* dst = &b;
  for (int step = 0; step < cfg.steps; ++step) {
    const Index f = cfg.front0 + static_cast<Index>(step) * cfg.front_step;
    // Re-declare this rank's ghost needs for the current front position
    // (collective: every rank calls, including ranks far from the front
    // whose widths stay at base_width).
    Index lo0 = cfg.base_width;
    Index hi0 = cfg.base_width;
    if (src->layout().member) {
      const auto seg = src->distribution().dim_map(0).segment(
          static_cast<int>(src->layout().coords[0]));
      if (seg) {
        const Dim0Widths w = dim0_widths(seg->lo, seg->hi, f, cfg);
        lo0 = std::max(lo0, w.lo);
        hi0 = std::max(hi0, w.hi);
      }
    }
    src->set_overlap({lo0, 1}, {hi0, 1}, /*corners=*/false,
                     /*asymmetric=*/true);
    const auto update = [&](const IndexVec& i, double& out) {
      const Index r = amr_radius(i[0], f, cfg.front_halfspan, cfg.base_width,
                                 cfg.front_width);
      out = amr_point(i[0], i[1], n, r, [&](Index x, Index y) {
        return src->halo({x, y});
      });
    };
    if (cfg.split_phase) {
      // The interior margin must cover the stencil's TRUE per-cell reach,
      // which for the refined stencil is wider than the declared ghost
      // widths split_margins() reports: those are max over cells of
      // (radius - edge distance), so a cell can sit `width` cells inside
      // the segment and still read past the edge with its own radius.
      // The largest radius any owned cell reads with is front_width when
      // the front zone touches this rank's segment, base_width otherwise;
      // partitioning dst (which shares src's distribution) by that keeps
      // every in-flight read owned.
      src->begin_exchange_overlap();
      auto m = src->split_margins();
      Index reach = cfg.base_width;
      if (src->layout().member) {
        const auto seg = src->distribution().dim_map(0).segment(
            static_cast<int>(src->layout().coords[0]));
        if (seg && seg->lo <= f + cfg.front_halfspan &&
            seg->hi >= f - cfg.front_halfspan) {
          reach = cfg.front_width;
        }
      }
      m.lo[0] = reach;
      m.hi[0] = reach;
      dst->for_owned_interior(m, update);
      src->end_exchange_overlap();
      dst->for_owned_boundary(m, update);
    } else {
      src->exchange_overlap();
      dst->for_owned(update);
    }
    std::swap(src, dst);
  }

  AmrFrontResult res;
  const std::vector<double> full = src->gather_global();
  res.checksum = amr_checksum(full);
  res.spec_exchanges = ctx.allreduce<std::uint64_t>(
      a.halo_spec_exchanges() + b.halo_spec_exchanges(), msg::ReduceOp::Sum);
  res.halo_plan_hits = ctx.allreduce<std::uint64_t>(
      env.halo_plans().stats().hits, msg::ReduceOp::Sum);
  res.halo_plan_misses = ctx.allreduce<std::uint64_t>(
      env.halo_plans().stats().misses, msg::ReduceOp::Sum);
  return res;
}

std::vector<double> amr_front_reference(const AmrFrontConfig& cfg) {
  const Index n = cfg.n;
  std::vector<double> cur(static_cast<std::size_t>(n * n));
  for (Index j = 1; j <= n; ++j) {
    for (Index i = 1; i <= n; ++i) {
      cur[static_cast<std::size_t>((i - 1) + n * (j - 1))] =
          amr_seed(i, j, n);
    }
  }
  std::vector<double> next(cur.size());
  for (int step = 0; step < cfg.steps; ++step) {
    const Index f = cfg.front0 + static_cast<Index>(step) * cfg.front_step;
    const auto rd = [&](Index x, Index y) {
      return cur[static_cast<std::size_t>((x - 1) + n * (y - 1))];
    };
    for (Index j = 1; j <= n; ++j) {
      for (Index i = 1; i <= n; ++i) {
        const Index r = amr_radius(i, f, cfg.front_halfspan, cfg.base_width,
                                   cfg.front_width);
        next[static_cast<std::size_t>((i - 1) + n * (j - 1))] =
            amr_point(i, j, n, r, rd);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace vf::apps
