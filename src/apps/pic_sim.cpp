#include "vf/apps/pic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "vf/apps/kernels.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::apps {

namespace {

using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

constexpr double kPi = 3.14159265358979323846;

/// Cell (1-based) of a position in [0, ncell).
Index cell_of(double pos, Index ncell) {
  auto c = static_cast<Index>(pos) + 1;
  if (c < 1) c = 1;
  if (c > ncell) c = ncell;
  return c;
}

double wrap(double pos, double ncell) {
  pos = std::fmod(pos, ncell);
  return pos < 0 ? pos + ncell : pos;
}

}  // namespace

PicResult run_pic(msg::Context& ctx, const PicConfig& cfg) {
  rt::Env env(ctx);
  const int np = ctx.nprocs();
  const int me = ctx.rank();
  const auto ncell = cfg.ncell;

  // FIELD(NCELL, NPART) DYNAMIC, DIST(BLOCK, :) -- positions per cell.
  rt::DistArray<double> field(
      env, {.name = "FIELD",
            .domain = IndexDomain({dist::Range{1, ncell},
                                   dist::Range{1, cfg.npart_max}}),
            .dynamic = true,
            .initial = {{dist::block(), dist::col()}}});
  // Per-cell particle counts: COUNT(c) colocated with FIELD(c, 1) -- a
  // secondary array of C(FIELD), so DISTRIBUTE keeps it consistent.
  rt::DistArray<std::int64_t> count(
      env,
      {.name = "COUNT",
       .domain = IndexDomain({dist::Range{1, ncell}}),
       .dynamic = true},
      rt::Connection::alignment(
          field, dist::Alignment(1, {dist::AlignExpr::dim(0),
                                     dist::AlignExpr::constant(1)})));
  count.fill(0);

  switch (cfg.skew) {
    case PicSkewMode::Off:
      break;
    case PicSkewMode::Auto:
      field.set_skew_policy(rt::DistArrayBase::SkewPolicy::Auto,
                            cfg.skew_threshold);
      break;
    case PicSkewMode::Force:
      field.set_skew_policy(rt::DistArrayBase::SkewPolicy::Force,
                            cfg.skew_threshold);
      break;
  }

  PicResult result;

  // Inserts a particle into its (locally owned) cell; returns false when
  // the cell's NPART slots are exhausted.
  auto insert = [&](double pos) -> bool {
    const Index c = cell_of(pos, ncell);
    std::int64_t& n = count.at({c});
    if (n >= cfg.npart_max) {
      result.dropped++;
      return false;
    }
    field.at({c, n + 1}) = pos;
    ++n;
    return true;
  };

  // --- initpos: a compact cloud around 0.25*NCELL, or a Zipf-clustered
  // cloud (heavy cells first) in the skewed rebalance mode ----------------
  {
    std::mt19937_64 rng(cfg.seed);
    std::normal_distribution<double> gauss(0.25 * static_cast<double>(ncell),
                                           0.04 * static_cast<double>(ncell));
    std::vector<double> zipf_cdf;
    if (cfg.zipf_s > 0.0) {
      zipf_cdf.resize(static_cast<std::size_t>(ncell));
      double acc = 0.0;
      for (Index c = 1; c <= ncell; ++c) {
        acc += std::pow(static_cast<double>(c), -cfg.zipf_s);
        zipf_cdf[static_cast<std::size_t>(c - 1)] = acc;
      }
      for (double& v : zipf_cdf) v /= acc;
    }
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int g = 0; g < cfg.particles; ++g) {
      double pos;
      if (cfg.zipf_s > 0.0) {
        const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(),
                                         unit(rng));
        const auto cell =
            static_cast<double>(it - zipf_cdf.begin());  // 0-based
        pos = wrap(cell + unit(rng), static_cast<double>(ncell));
      } else {
        pos = wrap(gauss(rng), static_cast<double>(ncell));
      }
      // Owner-computes: only the owner of the cell stores the particle.
      if (field.distribution().owner_rank({cell_of(pos, ncell), 1}) == me) {
        insert(pos);
      }
    }
  }

  // --- initial partition of cells (Figure 2: balance + DISTRIBUTE) -------
  auto global_counts = [&]() {
    std::vector<std::int64_t> g(static_cast<std::size_t>(ncell), 0);
    count.for_owned([&](const IndexVec& i, const std::int64_t& n) {
      g[static_cast<std::size_t>(i[0] - 1)] = n;
    });
    return ctx.allreduce_vec(std::move(g), msg::ReduceOp::Sum);
  };
  auto redistribute_balanced = [&]() {
    const auto counts = global_counts();
    const auto bounds = balance(counts, np);
    field.distribute(
        dist::DistributionType{dist::b_block(bounds), dist::col()});
    result.rebalances++;
  };
  if (cfg.rebalance_period > 0) redistribute_balanced();

  // --- time stepping ------------------------------------------------------
  double imbalance_sum = 0.0;
  for (int step = 1; step <= cfg.steps; ++step) {
    PicStepStats st;

    // update_field: work proportional to the local particle count.
    std::int64_t local_particles = 0;
    double field_energy = 0.0;
    count.for_owned([&](const IndexVec& i, const std::int64_t& n) {
      for (std::int64_t k = 1; k <= n; ++k) {
        field_energy += std::cos(field.at({i[0], k}));
      }
      local_particles += n;
    });
    (void)field_energy;

    // update_part: move particles (drift + self-focusing), collect the
    // ones that leave this processor's cells.
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(np));
    std::vector<double> staying;
    staying.reserve(static_cast<std::size_t>(local_particles));
    count.for_owned([&](const IndexVec& i, std::int64_t& n) {
      for (std::int64_t k = 1; k <= n; ++k) {
        double pos = field.at({i[0], k});
        pos += cfg.drift +
               cfg.focus * std::sin(2.0 * kPi * pos /
                                    static_cast<double>(ncell));
        pos = wrap(pos, static_cast<double>(ncell));
        const int owner =
            field.distribution().owner_rank({cell_of(pos, ncell), 1});
        if (owner == me) {
          staying.push_back(pos);
        } else {
          outgoing[static_cast<std::size_t>(owner)].push_back(pos);
          st.moved++;
        }
      }
      n = 0;  // cells are rebuilt below
    });
    // "If a particle has moved from one cell to another, it is explicitly
    // reassigned.  This obviously requires communication if the new cell
    // is on a different processor."
    auto incoming = ctx.alltoallv(std::move(outgoing));
    for (double pos : staying) insert(pos);
    for (const auto& from : incoming) {
      for (double pos : from) insert(pos);
    }

    // Step statistics: per-processor particle loads.
    std::int64_t after = 0;
    count.for_owned(
        [&](const IndexVec&, const std::int64_t& n) { after += n; });
    auto loads = ctx.allgather<std::int64_t>(after);
    st.imbalance = imbalance(loads);
    result.makespan_units += static_cast<double>(
        *std::max_element(loads.begin(), loads.end()));

    // "Rebalance every 10th iteration if necessary."
    if (cfg.rebalance_period > 0 && step % cfg.rebalance_period == 0) {
      const int need = st.imbalance > cfg.rebalance_threshold ? 1 : 0;
      if (ctx.broadcast(need, 0) != 0) {
        redistribute_balanced();
        st.rebalanced = true;
      }
    }

    imbalance_sum += st.imbalance;
    result.max_imbalance = std::max(result.max_imbalance, st.imbalance);
    result.steps.push_back(st);
  }
  result.mean_imbalance = imbalance_sum / std::max(1, cfg.steps);

  std::int64_t mine = 0;
  count.for_owned([&](const IndexVec&, const std::int64_t& n) { mine += n; });
  result.final_particles = ctx.allreduce(mine, msg::ReduceOp::Sum);
  result.dropped = ctx.allreduce(result.dropped, msg::ReduceOp::Sum);
  const auto& fs = field.exchange_scratch_stats();
  const auto& cs = count.exchange_scratch_stats();
  result.redist_scratch_prepares = static_cast<std::uint64_t>(ctx.allreduce(
      static_cast<std::int64_t>(fs.prepares + cs.prepares),
      msg::ReduceOp::Sum));
  result.redist_scratch_allocs = static_cast<std::uint64_t>(ctx.allreduce(
      static_cast<std::int64_t>(fs.grow_allocs + cs.grow_allocs),
      msg::ReduceOp::Sum));
  // Skew counters are SPMD-uniform (every rank runs the same DISTRIBUTE
  // sequence); Max keeps that property explicit in the report.
  result.skew_checks = static_cast<std::uint64_t>(ctx.allreduce(
      static_cast<std::int64_t>(field.skew_checks()), msg::ReduceOp::Max));
  result.hybrid_flips = static_cast<std::uint64_t>(ctx.allreduce(
      static_cast<std::int64_t>(field.hybrid_flips()), msg::ReduceOp::Max));
  result.last_target_skew = field.last_target_skew();
  return result;
}

}  // namespace vf::apps
