#include "vf/apps/soak.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "vf/apps/amr_front.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::apps {

namespace {

using dist::Index;
using dist::IndexVec;

/// Front column at `step`, wrapping around [1, n] so the churn of new
/// positions never stops over an arbitrarily long run.
Index front_at(const SoakConfig& cfg, int step) {
  const Index span = cfg.n;
  const Index raw = cfg.front0 - 1 + static_cast<Index>(step) * cfg.front_step;
  return 1 + ((raw % span) + span) % span;
}

/// Per-rank ghost widths in dimension 0 for segment [a, b] with the
/// front at f (same reach rule as amr_front.cpp).
struct Dim0Widths {
  Index lo = 0;
  Index hi = 0;
};

Dim0Widths dim0_widths(Index a, Index b, Index f, const SoakConfig& cfg) {
  Dim0Widths w;
  for (Index i = a; i <= b && i <= a + cfg.front_width; ++i) {
    const Index r =
        amr_radius(i, f, cfg.front_halfspan, cfg.base_width, cfg.front_width);
    w.lo = std::max(w.lo, r - (i - a));
  }
  for (Index i = std::max(a, b - cfg.front_width); i <= b; ++i) {
    const Index r =
        amr_radius(i, f, cfg.front_halfspan, cfg.base_width, cfg.front_width);
    w.hi = std::max(w.hi, r - (b - i));
  }
  return w;
}

int isqrt_exact(int np) {
  int q = 1;
  while (q * q < np) ++q;
  if (q * q != np) {
    throw std::invalid_argument(
        "run_soak: nprocs must be a perfect square, got " + std::to_string(np));
  }
  return q;
}

std::uint64_t lcg(std::uint64_t x) {
  return x * 6364136223846793005ULL + 1442695040888963407ULL;
}

/// Least-squares slope (bytes/step) of total residency over the second
/// half of the sample series.
double second_half_slope(const std::vector<SoakSample>& s) {
  const std::size_t h = s.size() / 2;
  const std::size_t m = s.size() - h;
  if (m < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t k = h; k < s.size(); ++k) {
    const double x = static_cast<double>(s[k].step);
    const double y =
        static_cast<double>(s[k].registry_bytes + s[k].cache_bytes);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double nn = static_cast<double>(m);
  const double den = nn * sxx - sx * sx;
  return den == 0.0 ? 0.0 : (nn * sxy - sx * sy) / den;
}

}  // namespace

std::vector<Index> soak_split_sizes(Index n, int q, Index min_seg,
                                    std::uint64_t seed, int step) {
  std::vector<Index> sizes(static_cast<std::size_t>(q), n / q);
  for (Index r = 0; r < n % q; ++r) sizes[static_cast<std::size_t>(r)] += 1;
  if (q < 2) return sizes;
  std::uint64_t x =
      lcg(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(step) +
                                           1)));
  const auto m = static_cast<std::size_t>((x >> 33) %
                                          static_cast<std::uint64_t>(q - 1));
  x = lcg(x);
  const Index give = sizes[m] - min_seg;       // how far m can shrink
  const Index take = sizes[m + 1] - min_seg;   // how far m+1 can shrink
  const Index span = std::max<Index>(0, give) + std::max<Index>(0, take);
  if (span == 0) return sizes;
  const Index s = static_cast<Index>((x >> 33) %
                                     static_cast<std::uint64_t>(span + 1)) -
                  std::max<Index>(0, give);
  sizes[m] += s;
  sizes[m + 1] -= s;
  return sizes;
}

SoakResult run_soak(msg::Context& ctx, const SoakConfig& cfg) {
  const int np = ctx.nprocs();
  const int q = isqrt_exact(np);
  const Index min_seg = std::max(cfg.front_width, cfg.base_width);
  if (cfg.n / q < min_seg) {
    throw std::invalid_argument(
        "run_soak: segments must be at least front_width wide");
  }
  rt::Env env(ctx, dist::ProcessorArray::grid(q, q));
  if (cfg.halo_budget_bytes != 0) {
    env.halo_plans().set_max_bytes(cfg.halo_budget_bytes);
  }
  const Index n = cfg.n;
  const dist::IndexDomain dom = dist::IndexDomain::of_extents({n, n});
  const rt::DistArray<double>::Spec base{
      .name = "SOAK_A",
      .domain = dom,
      .dynamic = true,
      .initial = dist::DistributionType{dist::block(), dist::block()},
      .overlap_lo = {cfg.base_width, 1},
      .overlap_hi = {cfg.base_width, 1},
      .overlap_corners = false,
      .overlap_asymmetric = true};
  rt::DistArray<double> a(env, base);
  auto bspec = base;
  bspec.name = "SOAK_B";
  rt::DistArray<double> b(env, bspec);
  if (cfg.plan_budget_bytes != 0) {
    a.set_redist_plan_budget(cfg.plan_budget_bytes);
    b.set_redist_plan_budget(cfg.plan_budget_bytes);
  }
  a.init([n](const IndexVec& i) { return amr_seed(i[0], i[1], n); });

  SoakResult res;
  std::uint64_t halo_dropped = 0;
  const auto sample = [&](int step) {
    SoakSample s;
    s.step = step;
    s.registry_bytes = env.registry().stats().resident_bytes;
    s.cache_bytes = env.halo_plans().resident_bytes() +
                    a.redist_plan_resident_bytes() +
                    b.redist_plan_resident_bytes();
    res.samples.push_back(s);
  };

  rt::DistArray<double>* src = &a;
  rt::DistArray<double>* dst = &b;
  for (int step = 0; step < cfg.steps; ++step) {
    const Index f = front_at(cfg, step);
    if (cfg.redist_every > 0 && step % cfg.redist_every == 0) {
      // A fresh split per cadence: the jittered boundary makes the
      // descriptor (and the (old, new) plan pair) churn like the front.
      const dist::DistHandle nd = env.intern(
          dom, dist::DistributionType{
                   dist::s_block(soak_split_sizes(n, q, min_seg, cfg.seed,
                                                  step)),
                   dist::block()});
      src->distribute(nd);
      dst->distribute(nd);
    }
    Index lo0 = cfg.base_width;
    Index hi0 = cfg.base_width;
    if (src->layout().member) {
      const auto seg = src->distribution().dim_map(0).segment(
          static_cast<int>(src->layout().coords[0]));
      if (seg) {
        const Dim0Widths w = dim0_widths(seg->lo, seg->hi, f, cfg);
        lo0 = std::max(lo0, w.lo);
        hi0 = std::max(hi0, w.hi);
      }
    }
    src->set_overlap({lo0, 1}, {hi0, 1}, /*corners=*/false,
                     /*asymmetric=*/true);
    src->exchange_overlap();
    dst->for_owned([&](const IndexVec& i, double& out) {
      const Index r = amr_radius(i[0], f, cfg.front_halfspan, cfg.base_width,
                                 cfg.front_width);
      out = amr_point(i[0], i[1], n, r, [&](Index x, Index y) {
        return src->halo({x, y});
      });
    });
    std::swap(src, dst);

    if (cfg.sweep_every > 0 && (step + 1) % cfg.sweep_every == 0) {
      const rt::Env::SweepReport rep = env.sweep();
      ++res.sweeps;
      halo_dropped += rep.halo_plans_dropped;
    }
    if (cfg.sample_every > 0 && (step + 1) % cfg.sample_every == 0) {
      sample(step + 1);
    }
  }
  if (res.samples.empty() || res.samples.back().step != cfg.steps) {
    sample(cfg.steps);
  }

  res.checksum = amr_checksum(src->gather_global());
  for (const SoakSample& s : res.samples) {
    res.peak_resident_bytes = std::max(res.peak_resident_bytes,
                                       s.registry_bytes + s.cache_bytes);
  }
  res.final_resident_bytes =
      res.samples.back().registry_bytes + res.samples.back().cache_bytes;
  res.bytes_per_step_slope = second_half_slope(res.samples);
  res.registry_pinned = env.registry().stats().pinned;
  const auto sum = [&](std::uint64_t v) {
    return ctx.allreduce<std::uint64_t>(v, msg::ReduceOp::Sum);
  };
  res.registry_swept = sum(env.registry().stats().swept);
  res.halo_plans_dropped = sum(halo_dropped);
  res.halo_evictions = sum(env.halo_plans().evictions());
  res.plan_evictions =
      sum(a.redist_plan_evictions() + b.redist_plan_evictions());
  res.halo_plan_hits = sum(env.halo_plans().stats().hits);
  res.halo_plan_misses = sum(env.halo_plans().stats().misses);
  return res;
}

std::vector<double> soak_reference(const SoakConfig& cfg) {
  const Index n = cfg.n;
  std::vector<double> cur(static_cast<std::size_t>(n * n));
  for (Index j = 1; j <= n; ++j) {
    for (Index i = 1; i <= n; ++i) {
      cur[static_cast<std::size_t>((i - 1) + n * (j - 1))] = amr_seed(i, j, n);
    }
  }
  std::vector<double> next(cur.size());
  for (int step = 0; step < cfg.steps; ++step) {
    const Index f = front_at(cfg, step);
    const auto rd = [&](Index x, Index y) {
      return cur[static_cast<std::size_t>((x - 1) + n * (y - 1))];
    };
    for (Index j = 1; j <= n; ++j) {
      for (Index i = 1; i <= n; ++i) {
        const Index r = amr_radius(i, f, cfg.front_halfspan, cfg.base_width,
                                   cfg.front_width);
        next[static_cast<std::size_t>((i - 1) + n * (j - 1))] =
            amr_point(i, j, n, r, rd);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace vf::apps
