#include "vf/apps/adi_sim.hpp"

#include <cmath>
#include <vector>

#include "vf/apps/kernels.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"

namespace vf::apps {

namespace {

using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

/// Finishes a strategy run: the checksum reduction plus the machine-wide
/// halo-plan counters every AdiResult reports.
AdiResult finish(msg::Context& ctx, rt::Env& env, rt::DistArray<double>& v) {
  const auto& cache = env.halo_plans().stats();
  return AdiResult{
      v.reduce(msg::ReduceOp::Sum),
      static_cast<std::uint64_t>(ctx.allreduce(
          static_cast<std::int64_t>(cache.hits), msg::ReduceOp::Sum)),
      static_cast<std::uint64_t>(ctx.allreduce(
          static_cast<std::int64_t>(cache.misses), msg::ReduceOp::Sum))};
}

/// The neighbour-coupled RHS (rhs_halo): base term plus a fraction of
/// the previous iterate's dimension-1 neighbours.  Computed into a
/// storage-shaped scratch first and written back in a second sweep, so
/// neither the in-place write order nor the interior/boundary traversal
/// split can change the values read.
void fill_rhs_coupled(rt::DistArray<double>& v, int iter,
                      const AdiConfig& cfg) {
  const Index ny = cfg.ny;
  std::vector<double> rhs(v.local_span().size());
  double* base = v.local_span().data();
  const auto compute = [&](const IndexVec& i, double& x) {
    const double b = std::sin(0.01 * static_cast<double>(i[0] * (iter + 1))) +
                     0.001 * static_cast<double>(i[1]);
    const double c = v.at(i);
    const double lo = i[1] > 1 ? v.halo({i[0], i[1] - 1}) : c;
    const double hi = i[1] < ny ? v.halo({i[0], i[1] + 1}) : c;
    rhs[static_cast<std::size_t>(&x - base)] = b + 0.125 * (lo + hi);
  };
  if (cfg.split_phase) {
    // Interior cells' dim-1 neighbours are owned (margin 1 from the
    // ghosted faces), so they compute while the boundary planes travel.
    v.begin_exchange_overlap();
    const auto m = v.split_margins();
    v.for_owned_interior(m, compute);
    v.end_exchange_overlap();
    v.for_owned_boundary(m, compute);
  } else {
    v.exchange_overlap();
    v.for_owned(compute);
  }
  v.for_owned([&](const IndexVec&, double& x) {
    x = rhs[static_cast<std::size_t>(&x - base)];
  });
}

void fill_rhs(rt::DistArray<double>& v, int iter, const AdiConfig& cfg) {
  if (cfg.rhs_halo) {
    fill_rhs_coupled(v, iter, cfg);
    return;
  }
  v.for_owned([&](const IndexVec& i, double& x) {
    x = std::sin(0.01 * static_cast<double>(i[0] * (iter + 1))) +
        0.001 * static_cast<double>(i[1]);
  });
}

/// The (0,1)/(0,1) overlap the coupled RHS needs, applied to a V spec.
template <typename Spec>
Spec with_rhs_overlap(Spec s, const AdiConfig& cfg) {
  if (cfg.rhs_halo) {
    s.overlap_lo = {0, 1};
    s.overlap_hi = {0, 1};
  }
  return s;
}

/// Solves every owned line along dimension `d` of a locally complete
/// array: dimension d must be collapsed (fully local).
void solve_local_lines(rt::DistArray<double>& v, int d, int me) {
  const int other = 1 - d;
  const auto lines = v.distribution().owned_in_dim(me, other);
  const dist::Range r = v.distribution().domain().dim(d);
  std::vector<double> line(static_cast<std::size_t>(r.size()));
  for (Index fixed : lines) {
    IndexVec idx{0, 0};
    idx[other] = fixed;
    for (Index k = r.lo; k <= r.hi; ++k) {
      idx[d] = k;
      line[static_cast<std::size_t>(k - r.lo)] = v.at(idx);
    }
    tridiag(line);
    for (Index k = r.lo; k <= r.hi; ++k) {
      idx[d] = k;
      v.at(idx) = line[static_cast<std::size_t>(k - r.lo)];
    }
  }
}

AdiResult run_dynamic(msg::Context& ctx, const AdiConfig& cfg) {
  rt::Env env(ctx);
  rt::DistArray<double> v(
      env, with_rhs_overlap(
               rt::DistArray<double>::Spec{
                   .name = "V",
                   .domain = IndexDomain({dist::Range{1, cfg.nx},
                                          dist::Range{1, cfg.ny}}),
                   .dynamic = true,
                   .initial = {{dist::col(), dist::block()}},
                   .range = {{query::p_col(), query::p_block()},
                             {query::p_block(), query::p_col()}}},
               cfg));
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    fill_rhs(v, iter, cfg);
    solve_local_lines(v, /*d=*/0, ctx.rank());  // x-lines local
    v.distribute(dist::DistributionType{dist::block(), dist::col()});
    solve_local_lines(v, /*d=*/1, ctx.rank());  // y-lines local
    v.distribute(dist::DistributionType{dist::col(), dist::block()});
  }
  return finish(ctx, env, v);
}

AdiResult run_static_gather(msg::Context& ctx, const AdiConfig& cfg) {
  rt::Env env(ctx);
  rt::DistArray<double> v(
      env, with_rhs_overlap(
               rt::DistArray<double>::Spec{
                   .name = "V",
                   .domain = IndexDomain({dist::Range{1, cfg.nx},
                                          dist::Range{1, cfg.ny}}),
                   .initial = {{dist::col(), dist::block()}}},
               cfg));
  // The y-sweep's lines (rows) are distributed: assign rows to processors
  // round-robin and build a reusable gather/scatter schedule for the rows
  // this rank is responsible for.
  std::vector<IndexVec> my_row_points;
  for (Index i = 1 + ctx.rank(); i <= cfg.nx; i += ctx.nprocs()) {
    for (Index j = 1; j <= cfg.ny; ++j) my_row_points.push_back({i, j});
  }
  parti::Schedule rows(ctx, v.dist_handle(), my_row_points);
  std::vector<double> buf(my_row_points.size());

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    fill_rhs(v, iter, cfg);
    solve_local_lines(v, /*d=*/0, ctx.rank());  // x-lines local
    // y-sweep: gather my rows, solve, scatter back -- per-iteration
    // communication the static layout cannot avoid.
    rows.gather(ctx, v, buf);
    for (std::size_t r = 0; r * cfg.ny < buf.size(); ++r) {
      tridiag(std::span<double>(buf.data() + r * cfg.ny,
                                static_cast<std::size_t>(cfg.ny)));
    }
    rows.scatter(ctx, buf, v);
    ctx.barrier();
  }
  return finish(ctx, env, v);
}

AdiResult run_two_copies(msg::Context& ctx, const AdiConfig& cfg) {
  rt::Env env(ctx);
  const IndexDomain dom({dist::Range{1, cfg.nx}, dist::Range{1, cfg.ny}});
  rt::DistArray<double> v(
      env, with_rhs_overlap(
               rt::DistArray<double>::Spec{
                   .name = "V",
                   .domain = dom,
                   .initial = {{dist::col(), dist::block()}}},
               cfg));
  rt::DistArray<double> vt(env, {.name = "VT",
                                 .domain = dom,
                                 .initial = {{dist::block(), dist::col()}}});
  // Array-assignment schedules in both directions (each element of the
  // destination reads its copy from the source's owner).
  std::vector<IndexVec> vt_owned;
  vt.distribution().for_owned(
      ctx.rank(), [&](const IndexVec& i) { vt_owned.push_back(i); });
  parti::Schedule to_vt(ctx, v.dist_handle(), vt_owned);
  std::vector<IndexVec> v_owned;
  v.distribution().for_owned(
      ctx.rank(), [&](const IndexVec& i) { v_owned.push_back(i); });
  parti::Schedule to_v(ctx, vt.dist_handle(), v_owned);
  std::vector<double> bufa(vt_owned.size());
  std::vector<double> bufb(v_owned.size());

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    fill_rhs(v, iter, cfg);
    solve_local_lines(v, /*d=*/0, ctx.rank());
    // VT = V (array assignment across distributions).
    to_vt.gather(ctx, v, bufa);
    for (std::size_t k = 0; k < vt_owned.size(); ++k) {
      vt.at(vt_owned[k]) = bufa[k];
    }
    solve_local_lines(vt, /*d=*/1, ctx.rank());
    // V = VT.
    to_v.gather(ctx, vt, bufb);
    for (std::size_t k = 0; k < v_owned.size(); ++k) {
      v.at(v_owned[k]) = bufb[k];
    }
    ctx.barrier();
  }
  return finish(ctx, env, v);
}

}  // namespace

const char* to_string(AdiStrategy s) {
  switch (s) {
    case AdiStrategy::DynamicRedistribution:
      return "dynamic-redistribution";
    case AdiStrategy::StaticGatherLines:
      return "static-gather-lines";
    case AdiStrategy::StaticTwoCopies:
      return "static-two-copies";
  }
  return "?";
}

AdiResult run_adi(msg::Context& ctx, const AdiConfig& cfg, AdiStrategy strat) {
  switch (strat) {
    case AdiStrategy::DynamicRedistribution:
      return run_dynamic(ctx, cfg);
    case AdiStrategy::StaticGatherLines:
      return run_static_gather(ctx, cfg);
    case AdiStrategy::StaticTwoCopies:
      return run_two_copies(ctx, cfg);
  }
  return {};
}

}  // namespace vf::apps
