#include "vf/compile/lint.hpp"

#include <algorithm>
#include <functional>

namespace vf::compile {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::string to_string(LintCode c) {
  switch (c) {
    case LintCode::StaleHaloRead:
      return "stale-halo-read";
    case LintCode::UseBeforeDistribute:
      return "use-before-distribute";
    case LintCode::RedundantDistribute:
      return "redundant-distribute";
    case LintCode::RedundantHaloExchange:
      return "redundant-halo-exchange";
    case LintCode::AsymShortcutHazard:
      return "asym-shortcut-hazard";
    case LintCode::DCaseArmDivergence:
      return "dcase-arm-divergence";
    case LintCode::PossibleRangeViolation:
      return "possible-range-violation";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string s = compile::to_string(severity);
  s += " [";
  s += compile::to_string(code);
  s += "] stmt ";
  s += std::to_string(stmt_id);
  if (!array.empty()) {
    s += " array ";
    s += array;
  }
  s += ": ";
  s += message;
  return s;
}

std::size_t LintReport::count(LintCode c) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [c](const Diagnostic& d) { return d.code == c; }));
}

bool LintReport::has(LintCode c, int stmt_id) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.code == c &&
                              (stmt_id < 0 || d.stmt_id == stmt_id);
                     });
}

std::string LintReport::to_string() const {
  std::string s;
  for (const auto& d : diagnostics) {
    s += d.to_string();
    s += '\n';
  }
  return s;
}

namespace {

/// "label 'x'" suffix for messages, or "" when the node is unlabelled.
std::string at_label(const Program& p, int node) {
  const std::string& l = p.node(node).stmt.label;
  return l.empty() ? std::string() : " (label '" + l + "')";
}

/// Forward reachability over succs from `start` (inclusive).
std::vector<bool> reachable_from(const Program& p, int start) {
  std::vector<bool> seen(p.num_nodes(), false);
  std::vector<int> stack{start};
  seen[static_cast<std::size_t>(start)] = true;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (const int s : p.node(n).succs) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

/// The synchronization-relevant signature of one DCASE arm: the sequence
/// of DISTRIBUTE / ExchangeHalo statements exclusive to that arm, in
/// program order (node ids are allocated in program order, so sorting by
/// id linearizes the arm body).  Nodes reachable from more than one arm
/// (the join and everything after it) drop out of every signature.
std::vector<std::string> arm_signature(const Program& p,
                                       const std::vector<bool>& mine,
                                       const std::vector<bool>& others) {
  std::vector<std::string> sig;
  for (std::size_t id = 0; id < p.num_nodes(); ++id) {
    if (!mine[id] || others[id]) continue;
    const Stmt& s = p.node(static_cast<int>(id)).stmt;
    if (s.kind == StmtKind::Distribute) {
      sig.push_back("distribute " + s.array + " :: " + s.dist.to_string());
    } else if (s.kind == StmtKind::ExchangeHalo) {
      sig.push_back("exchange " + s.array);
    }
  }
  return sig;
}

}  // namespace

LintReport lint(const Program& p, const ReachingResult& r,
                const PartialEvalReport& pe) {
  LintReport report;
  auto emit = [&](Severity sev, LintCode code, int node,
                  const std::string& array, std::string message) {
    report.diagnostics.push_back(
        Diagnostic{sev, code, node, array, std::move(message)});
  };

  // Per-node walk: stale stencil reads and asymmetric shortcut hazards
  // come straight from the reaching sets.
  for (std::size_t id = 0; id < p.num_nodes(); ++id) {
    const Node& n = p.node(static_cast<int>(id));
    if (n.stmt.kind == StmtKind::Use && n.stmt.reads_halo) {
      for (const auto& a : n.stmt.arrays) {
        const DistSet& before = r.plausible(n.id, a);
        if (!before.halo) {
          emit(Severity::Error, LintCode::StaleHaloRead, n.id, a,
               "stencil read of '" + a +
                   "' but the array declares no OVERLAP: the ghost "
                   "regions it reads do not exist" +
                   at_label(p, n.id));
          continue;
        }
        if (!before.halo_asymmetric && before.halo->empty()) {
          continue;  // no ghost planes anywhere: nothing can be stale
        }
        if (!before.halo_fresh) {
          emit(Severity::Error, LintCode::StaleHaloRead, n.id, a,
               "stencil read of '" + a +
                   "' may see stale ghost regions: on some reaching path "
                   "the overlap area was written, redistributed or passed "
                   "to an opaque call after the last exchange (or never "
                   "exchanged)" +
                   at_label(p, n.id));
        }
      }
    }
    if (n.stmt.kind == StmtKind::ExchangeHalo) {
      const DistSet& before = r.plausible(n.id, n.stmt.array);
      if (before.halo_asymmetric && before.halo && before.halo->empty()) {
        emit(Severity::Warning, LintCode::AsymShortcutHazard, n.id,
             n.stmt.array,
             "'" + n.stmt.array +
                 "' has a per-rank OVERLAP and this rank's local spec is "
                 "empty: do not skip this exchange locally -- neighbours "
                 "with wider halos still receive from this rank, and a "
                 "rank-dependent skip deadlocks the collective" +
                 at_label(p, n.id));
      }
    }
  }

  // Promotions from the partial-evaluation report.
  for (const auto& [node, array] : pe.use_before_distribution) {
    emit(Severity::Error, LintCode::UseBeforeDistribute, node, array,
         "'" + array +
             "' may be referenced before any distribution is associated "
             "with it (Section 2.3: access before association is "
             "illegal)" +
             at_label(p, node));
  }
  for (const int node : pe.redundant_distributes) {
    const Stmt& s = p.node(node).stmt;
    emit(Severity::Warning, LintCode::RedundantDistribute, node, s.array,
         "DISTRIBUTE " + s.array + " :: " + s.dist.to_string() +
             " is redundant: the unique plausible reaching distribution "
             "already equals the target, so the statement moves no data" +
             at_label(p, node));
  }
  for (const int node : pe.redundant_halo_exchanges) {
    const Stmt& s = p.node(node).stmt;
    const DistSet& before = r.plausible(node, s.array);
    emit(Severity::Warning, LintCode::RedundantHaloExchange, node, s.array,
         "halo exchange of '" + s.array + "' is redundant: " +
             (before.halo_fresh
                  ? std::string("the ghost regions are still current on "
                                "every reaching path (no write, DISTRIBUTE "
                                "or opaque call since the last exchange)")
                  : std::string("the declared OVERLAP has no ghost planes, "
                                "so the exchange moves nothing")) +
             at_label(p, node));
  }
  for (const auto& [node, array] : pe.possible_range_violations) {
    const Stmt& s = p.node(node).stmt;
    emit(Severity::Warning, LintCode::PossibleRangeViolation, node, array,
         "DISTRIBUTE " + array + " :: " + s.dist.to_string() +
             " may violate the array's RANGE attribute" + at_label(p, node));
  }

  // DCASE-arm divergence: two arms that may both run but whose exclusive
  // DISTRIBUTE/ExchangeHalo sequences differ.  The arm verdicts come from
  // partial evaluation (pe.dcases is index-aligned with p.dcases()).
  for (std::size_t d = 0; d < p.dcases().size(); ++d) {
    const DCaseInfo& dc = p.dcases()[d];
    const DCaseEvaluation& ev = pe.dcases[d];
    std::vector<std::size_t> live;
    for (std::size_t j = 0; j < dc.arm_entries.size(); ++j) {
      if (ev.arms[j] != ArmVerdict::Never) live.push_back(j);
    }
    if (live.size() < 2) continue;
    std::vector<std::vector<bool>> reach;
    reach.reserve(live.size());
    for (const std::size_t j : live) {
      reach.push_back(reachable_from(p, dc.arm_entries[j]));
    }
    std::vector<std::vector<std::string>> sigs(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      std::vector<bool> others(p.num_nodes(), false);
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (k == i) continue;
        for (std::size_t id = 0; id < p.num_nodes(); ++id) {
          if (reach[k][id]) others[id] = true;
        }
      }
      sigs[i] = arm_signature(p, reach[i], others);
    }
    for (std::size_t i = 1; i < live.size(); ++i) {
      if (sigs[i] != sigs[0]) {
        emit(Severity::Warning, LintCode::DCaseArmDivergence, dc.node, "",
             "DCASE arms " + std::to_string(live[0]) + " and " +
                 std::to_string(live[i]) +
                 " may both run but their data-motion sequences differ "
                 "(arm " +
                 std::to_string(live[0]) + ": [" +
                 [](const std::vector<std::string>& v) {
                   std::string s;
                   for (std::size_t k = 0; k < v.size(); ++k) {
                     if (k != 0) s += "; ";
                     s += v[k];
                   }
                   return s;
                 }(sigs[0]) +
                 "], arm " + std::to_string(live[i]) + ": [" +
                 [](const std::vector<std::string>& v) {
                   std::string s;
                   for (std::size_t k = 0; k < v.size(); ++k) {
                     if (k != 0) s += "; ";
                     s += v[k];
                   }
                   return s;
                 }(sigs[i]) +
                 "]): ranks disagreeing on the selectors would "
                 "desynchronize on these collectives");
        break;  // one record per DCASE names the first diverging pair
      }
    }
  }

  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.stmt_id < b.stmt_id;
                   });
  return report;
}

LintReport lint(const Program& p) {
  const ReachingResult r = analyze_reaching(p);
  const PartialEvalReport pe = partial_eval(p, r);
  return lint(p, r, pe);
}

}  // namespace vf::compile
