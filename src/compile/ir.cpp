#include "vf/compile/ir.hpp"

#include <stdexcept>

namespace vf::compile {

Program::Program() {
  entry_ = add_node(Stmt{.kind = StmtKind::Entry});
  exit_ = add_node(Stmt{.kind = StmtKind::Exit});
}

void Program::declare(ArrayInfo info) {
  if (array(info.name) != nullptr) {
    throw std::invalid_argument("Program: duplicate array " + info.name);
  }
  arrays_.push_back(std::move(info));
}

const ArrayInfo* Program::array(const std::string& name) const {
  for (const auto& a : arrays_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

int Program::add_node(Stmt s) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{id, std::move(s), {}, {}});
  return id;
}

void Program::add_edge(int from, int to) {
  nodes_.at(static_cast<std::size_t>(from)).succs.push_back(to);
  nodes_.at(static_cast<std::size_t>(to)).preds.push_back(from);
}

int Program::add_procedure(ProcedureDecl p) {
  if (p.body == nullptr) {
    throw std::invalid_argument("add_procedure: null body");
  }
  for (const auto& f : p.formals) {
    if (p.body->array(f.array) == nullptr) {
      throw std::invalid_argument("add_procedure: formal " + f.array +
                                  " is not declared in the body");
    }
  }
  procedures_.push_back(std::move(p));
  return static_cast<int>(procedures_.size()) - 1;
}

int Program::find_label(const std::string& label) const {
  for (const auto& n : nodes_) {
    if (n.stmt.label == label) return n.id;
  }
  throw std::invalid_argument("Program: no node labelled '" + label + "'");
}

void Program::seal(int tail) { add_edge(tail, exit_); }

ProgramBuilder::ProgramBuilder() : cur_(p_.entry()) {}

int ProgramBuilder::append(Stmt s) {
  const int id = p_.add_node(std::move(s));
  p_.add_edge(cur_, id);
  cur_ = id;
  return id;
}

ProgramBuilder& ProgramBuilder::declare(ArrayInfo info) {
  p_.declare(std::move(info));
  return *this;
}

ProgramBuilder& ProgramBuilder::distribute(const std::string& array,
                                           AbstractDist dist) {
  if (p_.array(array) == nullptr) {
    throw std::invalid_argument("distribute: undeclared array " + array);
  }
  append(Stmt{.kind = StmtKind::Distribute,
              .array = array,
              .dist = std::move(dist)});
  return *this;
}

ProgramBuilder& ProgramBuilder::use(std::vector<std::string> arrays,
                                    const std::string& label) {
  for (const auto& a : arrays) {
    if (p_.array(a) == nullptr) {
      throw std::invalid_argument("use: undeclared array " + a);
    }
  }
  append(Stmt{.kind = StmtKind::Use,
              .arrays = std::move(arrays),
              .label = label});
  return *this;
}

ProgramBuilder& ProgramBuilder::write(std::vector<std::string> arrays,
                                      const std::string& label) {
  for (const auto& a : arrays) {
    if (p_.array(a) == nullptr) {
      throw std::invalid_argument("write: undeclared array " + a);
    }
  }
  append(Stmt{.kind = StmtKind::Use,
              .arrays = std::move(arrays),
              .writes = true,
              .label = label});
  return *this;
}

ProgramBuilder& ProgramBuilder::stencil_use(std::vector<std::string> arrays,
                                            const std::string& label) {
  for (const auto& a : arrays) {
    if (p_.array(a) == nullptr) {
      throw std::invalid_argument("stencil_use: undeclared array " + a);
    }
  }
  append(Stmt{.kind = StmtKind::Use,
              .arrays = std::move(arrays),
              .reads_halo = true,
              .label = label});
  return *this;
}

ProgramBuilder& ProgramBuilder::exchange_halo(const std::string& array,
                                              const std::string& label) {
  if (p_.array(array) == nullptr) {
    throw std::invalid_argument("exchange_halo: undeclared array " + array);
  }
  append(Stmt{.kind = StmtKind::ExchangeHalo, .array = array, .label = label});
  return *this;
}

ProgramBuilder& ProgramBuilder::call_unknown(std::vector<std::string> arrays) {
  append(Stmt{.kind = StmtKind::CallUnknown, .arrays = std::move(arrays)});
  return *this;
}

int ProgramBuilder::declare_procedure(ProcedureDecl p) {
  return p_.add_procedure(std::move(p));
}

ProgramBuilder& ProgramBuilder::call_proc(int proc,
                                          std::vector<std::string> actuals) {
  const ProcedureDecl& decl = p_.procedure(proc);
  if (actuals.size() != decl.formals.size()) {
    throw std::invalid_argument("call_proc: actual/formal count mismatch");
  }
  for (const auto& a : actuals) {
    if (p_.array(a) == nullptr) {
      throw std::invalid_argument("call_proc: undeclared actual " + a);
    }
  }
  append(Stmt{.kind = StmtKind::CallProc,
              .arrays = std::move(actuals),
              .proc = proc});
  return *this;
}

ProgramBuilder& ProgramBuilder::if_else(const BodyFn& then_body,
                                        const BodyFn& else_body) {
  const int branch = append(Stmt{.kind = StmtKind::Nop, .label = "if"});
  cur_ = branch;
  if (then_body) then_body(*this);
  const int then_end = cur_;
  cur_ = branch;
  if (else_body) else_body(*this);
  const int else_end = cur_;
  const int join = p_.add_node(Stmt{.kind = StmtKind::Nop, .label = "join"});
  p_.add_edge(then_end, join);
  if (else_end != then_end) {
    p_.add_edge(else_end, join);
  } else {
    // Empty else: fall-through edge from the branch itself.
    p_.add_edge(branch, join);
  }
  cur_ = join;
  return *this;
}

ProgramBuilder& ProgramBuilder::loop(const BodyFn& body) {
  const int head = append(Stmt{.kind = StmtKind::Nop, .label = "loop"});
  cur_ = head;
  if (body) body(*this);
  p_.add_edge(cur_, head);  // back edge
  const int exit_node =
      p_.add_node(Stmt{.kind = StmtKind::Nop, .label = "endloop"});
  p_.add_edge(head, exit_node);
  cur_ = exit_node;
  return *this;
}

ProgramBuilder& ProgramBuilder::dcase(std::vector<std::string> selectors,
                                      std::vector<DCaseArm> arms,
                                      const BodyFn& default_body) {
  for (const auto& s : selectors) {
    if (p_.array(s) == nullptr) {
      throw std::invalid_argument("dcase: undeclared selector " + s);
    }
  }
  DCaseInfo info;
  info.selectors = selectors;
  const int branch = append(Stmt{.kind = StmtKind::Nop, .label = "dcase"});
  info.node = branch;
  const int join = p_.add_node(Stmt{.kind = StmtKind::Nop, .label = "endselect"});

  for (auto& arm : arms) {
    if (arm.pats.size() > selectors.size()) {
      throw std::invalid_argument("dcase: more queries than selectors");
    }
    arm.pats.resize(selectors.size());
    // Arm body entry: chain of Assume nodes refining each queried
    // selector's plausible set.
    cur_ = branch;
    int entry = -1;
    for (std::size_t k = 0; k < selectors.size(); ++k) {
      if (!arm.pats[k]) continue;
      const int a = append(Stmt{.kind = StmtKind::Assume,
                                .array = selectors[k],
                                .dist = *arm.pats[k]});
      if (entry < 0) entry = a;
    }
    if (entry < 0) {
      // All-wildcard arm: a Nop keeps the arm entry distinct.
      entry = append(Stmt{.kind = StmtKind::Nop, .label = "arm"});
    }
    if (arm.body) arm.body(*this);
    p_.add_edge(cur_, join);
    info.arms.push_back(arm.pats);
    info.arm_entries.push_back(entry);
  }
  if (default_body) {
    cur_ = branch;
    const int entry = append(Stmt{.kind = StmtKind::Nop, .label = "default"});
    default_body(*this);
    p_.add_edge(cur_, join);
    info.has_default = true;
    info.arms.emplace_back(selectors.size());
    info.arm_entries.push_back(entry);
  } else {
    // "If no match occurs, the execution of the construct is completed
    // without executing an action."
    p_.add_edge(branch, join);
  }
  p_.record_dcase(std::move(info));
  cur_ = join;
  return *this;
}

Program ProgramBuilder::build() {
  p_.seal(cur_);
  return std::move(p_);
}

}  // namespace vf::compile
