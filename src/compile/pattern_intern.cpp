#include "vf/compile/pattern_intern.hpp"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "vf/dist/hash.hpp"

namespace vf::compile {

namespace {

using dist::fnv1a;

struct Interner {
  std::mutex mu;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const query::TypePattern>>>
      buckets;
  std::size_t count = 0;
};

Interner& interner() {
  static Interner i;
  return i;
}

}  // namespace

std::uint64_t hash_pattern(const query::TypePattern& p) noexcept {
  std::uint64_t h = dist::kFnvBasis;
  h = fnv1a(h, p.is_wildcard() ? 1u : 0u);
  h = fnv1a(h, p.dims().size());
  for (const query::DimPattern& d : p.dims()) {
    h = fnv1a(h, d.kind ? static_cast<std::uint64_t>(*d.kind) + 1 : 0);
    h = fnv1a(h, d.param ? static_cast<std::uint64_t>(*d.param) + 1 : 0);
  }
  return h;
}

PatternHandle intern_pattern(query::TypePattern p) {
  Interner& in = interner();
  const std::uint64_t key = hash_pattern(p);
  const std::scoped_lock lock(in.mu);
  auto& bucket = in.buckets[key];
  for (const auto& cand : bucket) {
    if (*cand == p) return PatternHandle(cand);
  }
  auto shared = std::make_shared<const query::TypePattern>(std::move(p));
  bucket.push_back(shared);
  ++in.count;
  return PatternHandle(std::move(shared));
}

std::size_t interned_pattern_count() {
  Interner& in = interner();
  const std::scoped_lock lock(in.mu);
  return in.count;
}

PatternHandle::PatternHandle(const query::TypePattern& p)
    : PatternHandle(query::TypePattern(p)) {}

PatternHandle::PatternHandle(query::TypePattern&& p) {
  *this = intern_pattern(std::move(p));
}

}  // namespace vf::compile
