#include "vf/compile/parteval.hpp"

#include <algorithm>

namespace vf::compile {

std::string to_string(ArmVerdict v) {
  switch (v) {
    case ArmVerdict::Never:
      return "never";
    case ArmVerdict::Maybe:
      return "maybe";
    case ArmVerdict::Always:
      return "always";
  }
  return "?";
}

ArmVerdict eval_idt(const DistSet& plausible, const query::TypePattern& p) {
  bool may = false;
  bool must = !plausible.types.empty() && !plausible.undistributed;
  for (const auto& t : plausible.types) {
    if (p.may_match(t)) {
      may = true;
    } else {
      must = false;
    }
    if (!p.must_match(t)) must = false;
  }
  if (!may) return ArmVerdict::Never;
  return must ? ArmVerdict::Always : ArmVerdict::Maybe;
}

namespace {

/// True when the pattern is one exact concrete type (no wildcards).
bool is_concrete(const query::TypePattern& p) {
  if (p.is_wildcard()) return false;
  for (const auto& d : p.dims()) {
    if (!d.kind) return false;
    if (*d.kind == dist::DimDistKind::Cyclic && !d.param) return false;
  }
  return true;
}

}  // namespace

PartialEvalReport partial_eval(const Program& p, const ReachingResult& r) {
  PartialEvalReport report;

  // DCASE arm verdicts: an arm matches iff every queried selector matches.
  for (const auto& dc : p.dcases()) {
    DCaseEvaluation ev;
    ev.node = dc.node;
    bool earlier_may_match = false;
    for (std::size_t j = 0; j < dc.arms.size(); ++j) {
      bool arm_may = true;
      bool arm_must = true;
      for (std::size_t k = 0; k < dc.selectors.size(); ++k) {
        const auto& pat = dc.arms[j][k];
        if (!pat) continue;  // implicit "*": matches anything
        const ArmVerdict v =
            eval_idt(r.plausible(dc.node, dc.selectors[k]), *pat);
        if (v == ArmVerdict::Never) arm_may = false;
        if (v != ArmVerdict::Always) arm_must = false;
      }
      ArmVerdict verdict;
      if (!arm_may) {
        verdict = ArmVerdict::Never;
      } else if (arm_must && !earlier_may_match) {
        verdict = ArmVerdict::Always;
      } else {
        verdict = ArmVerdict::Maybe;
      }
      // Arms after an Always arm can never run.
      if (!ev.arms.empty() &&
          std::find(ev.arms.begin(), ev.arms.end(), ArmVerdict::Always) !=
              ev.arms.end()) {
        verdict = ArmVerdict::Never;
      }
      if (verdict != ArmVerdict::Never) earlier_may_match = true;
      ev.arms.push_back(verdict);
    }
    report.dcases.push_back(std::move(ev));
  }

  // Per-node checks.
  for (std::size_t id = 0; id < p.num_nodes(); ++id) {
    const Node& n = p.node(static_cast<int>(id));
    if (n.stmt.kind == StmtKind::Distribute) {
      const DistSet& before = r.plausible(n.id, n.stmt.array);
      // Redundant DISTRIBUTE: unique concrete plausible type equal to the
      // (concrete) target.
      if (!before.undistributed && before.types.size() == 1 &&
          is_concrete(before.types.front()) && is_concrete(n.stmt.dist) &&
          before.types.front() == n.stmt.dist) {
        report.redundant_distributes.push_back(n.id);
      }
      // RANGE check: flag if the target may fall outside the declared
      // range.
      const ArrayInfo* info = p.array(n.stmt.array);
      if (info != nullptr && !info->range.empty()) {
        bool definitely_allowed = false;
        for (const auto& rp : info->range) {
          if (rp.must_match(n.stmt.dist)) {
            definitely_allowed = true;
            break;
          }
        }
        if (!definitely_allowed) {
          report.possible_range_violations.emplace_back(n.id, n.stmt.array);
        }
      }
    }
    if (n.stmt.kind == StmtKind::ExchangeHalo) {
      const DistSet& before = r.plausible(n.id, n.stmt.array);
      // The empty-spec shortcut is a rank-local spec-shape deduction:
      // under an asymmetric declaration this rank's spec says nothing
      // about its neighbours' ghost demands (and a rank-dependent skip of
      // a collective would deadlock), so only the SPMD-consistent
      // freshness argument applies there.
      const bool empty_spec = !before.halo_asymmetric && before.halo &&
                              before.halo->empty();
      if (before.halo_fresh || empty_spec) {
        report.redundant_halo_exchanges.push_back(n.id);
      }
    }
    if (n.stmt.kind == StmtKind::Use) {
      for (const auto& a : n.stmt.arrays) {
        if (r.plausible(n.id, a).undistributed) {
          report.use_before_distribution.emplace_back(n.id, a);
        }
      }
    }
  }
  return report;
}

}  // namespace vf::compile
