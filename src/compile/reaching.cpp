#include "vf/compile/reaching.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

namespace vf::compile {

void DistSet::add(const AbstractDist& d) { add(PatternHandle(d)); }

void DistSet::add(const PatternHandle& h) {
  if (is_widened()) return;
  // Interning makes membership a pointer scan: no deep pattern compares.
  if (std::find(types.begin(), types.end(), h) != types.end()) return;
  types.push_back(h);
  if (types.size() > kWidenLimit) {
    types.clear();
    types.push_back(PatternHandle(AbstractDist::wildcard()));
  }
}

void DistSet::merge(const DistSet& o) {
  undistributed = undistributed || o.undistributed;
  for (const auto& t : o.types) add(t);
  // Freshness is a must-property: the ghosts are current only if every
  // joining path left them current.
  halo_fresh = halo_fresh && o.halo_fresh;
  // Asymmetry is a may-property: if any joining path carries a per-rank
  // declaration, spec-shape deductions stay disabled downstream.
  halo_asymmetric = halo_asymmetric || o.halo_asymmetric;
  if (!halo) {
    halo = o.halo;
  } else if (o.halo && !(*halo == *o.halo)) {
    halo.reset();
  }
}

bool DistSet::is_widened() const {
  return types.size() == 1 && types.front()->is_wildcard();
}

std::string DistSet::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  if (undistributed) {
    os << "<undistributed>";
    first = false;
  }
  for (const auto& t : types) {
    if (!first) os << ", ";
    os << t->to_string();
    first = false;
  }
  if (halo) {
    if (!first) os << ", ";
    os << halo->to_string() << (halo_fresh ? "/fresh" : "/stale")
       << (halo_asymmetric ? "/asym" : "");
    first = false;
  }
  os << "}";
  return os.str();
}

const DistSet& ReachingResult::plausible(int node,
                                         const std::string& array) const {
  const State& s = in.at(static_cast<std::size_t>(node));
  auto it = s.find(array);
  if (it == s.end()) {
    throw std::invalid_argument("plausible: unknown array " + array);
  }
  return it->second;
}

namespace {

using SummaryCache = std::vector<std::optional<ProcedureSummary>>;

/// Transfer function of one statement.
State transfer(const Program& p, const Node& n, State s,
               SummaryCache& summaries) {
  switch (n.stmt.kind) {
    case StmtKind::Distribute: {
      // Strong update: after DISTRIBUTE the (only) plausible type is the
      // statement's (possibly partially unknown) type.  Redistribution
      // reallocates ghost storage, so any overlap freshness is lost (the
      // declared spec itself is a property of the array and survives).
      DistSet d;
      d.undistributed = false;
      d.add(n.stmt.dist);
      const auto it = s.find(n.stmt.array);
      if (it != s.end()) {
        d.halo = it->second.halo;
        d.halo_asymmetric = it->second.halo_asymmetric;
      }
      s[n.stmt.array] = std::move(d);
      break;
    }
    case StmtKind::Assume: {
      // DCASE arm entry: the selector matched the arm's pattern, so prune
      // plausible types that cannot match, and the selector was
      // necessarily distributed.  Analysis-only: ghosts are untouched.
      auto it = s.find(n.stmt.array);
      if (it != s.end()) {
        DistSet d;
        d.undistributed = false;
        d.halo = it->second.halo;
        d.halo_fresh = it->second.halo_fresh;
        d.halo_asymmetric = it->second.halo_asymmetric;
        for (const auto& t : it->second.types) {
          if (n.stmt.dist.may_match(t)) d.add(t);
        }
        it->second = std::move(d);
      }
      break;
    }
    case StmtKind::ExchangeHalo: {
      // The exchange makes every ghost plane current.
      auto it = s.find(n.stmt.array);
      if (it != s.end()) it->second.halo_fresh = true;
      break;
    }
    case StmtKind::CallUnknown: {
      // The callee may redistribute the named arrays; the damage is
      // bounded by their RANGE attributes (Section 3.1: "the compiler will
      // have to rely on range specifications provided by the user, or make
      // worst case assumptions").
      for (const auto& name : n.stmt.arrays) {
        const ArrayInfo* info = p.array(name);
        DistSet d;
        d.undistributed = false;
        if (info != nullptr && !info->range.empty()) {
          for (const auto& r : info->range) d.add(r);
        } else {
          d.add(AbstractDist::wildcard());
        }
        const auto it = s.find(name);
        if (it != s.end()) {
          d.halo = it->second.halo;
          d.halo_asymmetric = it->second.halo_asymmetric;
        }
        s[name] = std::move(d);
      }
      break;
    }
    case StmtKind::CallProc: {
      // Interprocedural: the callee's exit sets flow back to the actuals
      // (Vienna Fortran returns the new distribution to the caller).  The
      // callee may have written the actuals, so halo freshness is lost;
      // the caller's declared spec is kept.
      auto& cached = summaries.at(static_cast<std::size_t>(n.stmt.proc));
      if (!cached) {
        cached = summarize_procedure(p.procedure(n.stmt.proc));
      }
      for (std::size_t k = 0; k < n.stmt.arrays.size(); ++k) {
        DistSet d = cached->exit_sets.at(k);
        const auto it = s.find(n.stmt.arrays[k]);
        if (it != s.end()) {
          d.halo = it->second.halo;
          d.halo_asymmetric = it->second.halo_asymmetric;
        }
        d.halo_fresh = false;
        s[n.stmt.arrays[k]] = std::move(d);
      }
      break;
    }
    case StmtKind::Use: {
      // A storing reference invalidates overlap freshness.
      if (n.stmt.writes) {
        for (const auto& name : n.stmt.arrays) {
          auto it = s.find(name);
          if (it != s.end()) it->second.halo_fresh = false;
        }
      }
      break;
    }
    case StmtKind::Entry:
    case StmtKind::Exit:
    case StmtKind::Nop:
      break;
  }
  return s;
}

}  // namespace

ProcedureSummary summarize_procedure(const ProcedureDecl& decl) {
  State entry;
  for (const auto& f : decl.formals) {
    DistSet d;
    if (f.entry) {
      d.add(*f.entry);
    } else {
      d.add(AbstractDist::wildcard());
    }
    entry[f.array] = std::move(d);
  }
  const ReachingResult r = analyze_reaching(*decl.body, &entry);
  ProcedureSummary summary;
  const State& at_exit =
      r.in.at(static_cast<std::size_t>(decl.body->exit()));
  for (const auto& f : decl.formals) {
    auto it = at_exit.find(f.array);
    if (it == at_exit.end()) {
      DistSet d;
      d.add(AbstractDist::wildcard());
      summary.exit_sets.push_back(std::move(d));
    } else {
      summary.exit_sets.push_back(it->second);
    }
  }
  return summary;
}

ReachingResult analyze_reaching(const Program& p,
                                const State* entry_override) {
  ReachingResult r;
  r.in.assign(p.num_nodes(), State{});
  SummaryCache summaries(p.num_procedures());

  // Entry state from the declarations, then any caller-provided override
  // (procedure bodies: formals adopt their dummy distributions).
  State init;
  for (const auto& a : p.arrays()) {
    DistSet d;
    if (a.initial) {
      d.add(*a.initial);
    } else {
      d.undistributed = true;
    }
    d.halo = a.halo;
    d.halo_asymmetric = a.halo_asymmetric;
    init[a.name] = std::move(d);
  }
  if (entry_override != nullptr) {
    for (const auto& [name, dset] : *entry_override) {
      init[name] = dset;
    }
  }
  r.in[static_cast<std::size_t>(p.entry())] = std::move(init);

  std::deque<int> worklist;
  std::vector<bool> queued(p.num_nodes(), false);
  worklist.push_back(p.entry());
  queued[static_cast<std::size_t>(p.entry())] = true;

  while (!worklist.empty()) {
    const int id = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(id)] = false;
    ++r.iterations;

    const Node& n = p.node(id);
    State out =
        transfer(p, n, r.in[static_cast<std::size_t>(id)], summaries);
    for (int succ : n.succs) {
      State& sin = r.in[static_cast<std::size_t>(succ)];
      State merged = sin;
      for (const auto& [name, dset] : out) {
        auto [it, inserted] = merged.try_emplace(name, dset);
        if (!inserted) it->second.merge(dset);
      }
      if (merged != sin) {
        sin = std::move(merged);
        if (!queued[static_cast<std::size_t>(succ)]) {
          worklist.push_back(succ);
          queued[static_cast<std::size_t>(succ)] = true;
        }
      }
    }
  }
  return r;
}

}  // namespace vf::compile
