#include "vf/parti/translation_table.hpp"

#include <stdexcept>

namespace vf::parti {

TranslationTable::TranslationTable(
    msg::Context& ctx, dist::Index n,
    const std::function<int(dist::Index)>& owner)
    : n_(n) {
  if (n < 0) throw std::invalid_argument("TranslationTable: negative size");
  const int np = ctx.nprocs();
  page_width_ = n == 0 ? 1 : (n + np - 1) / np;
  const dist::Index lo = page_width_ * ctx.rank();
  const dist::Index hi = std::min<dist::Index>(n, lo + page_width_);
  page_.reserve(static_cast<std::size_t>(std::max<dist::Index>(0, hi - lo)));
  for (dist::Index i = lo; i < hi; ++i) page_.push_back(owner(i));
}

TranslationTable::TranslationTable(msg::Context& ctx,
                                   const dist::Distribution& d)
    : TranslationTable(ctx, d.domain().size(), [&d](dist::Index i) {
        return d.owner_rank(d.domain().delinearize(i));
      }) {}

int TranslationTable::page_owner(dist::Index i) const {
  if (i < 0 || i >= n_) {
    throw std::out_of_range("TranslationTable: index outside table");
  }
  return static_cast<int>(i / page_width_);
}

std::vector<int> TranslationTable::dereference(
    msg::Context& ctx, std::span<const dist::Index> queries) const {
  const int np = ctx.nprocs();
  // Phase 1: route each query to the rank storing its page.
  std::vector<std::vector<dist::Index>> requests(
      static_cast<std::size_t>(np));
  std::vector<std::vector<std::size_t>> positions(
      static_cast<std::size_t>(np));
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const int p = page_owner(queries[q]);
    requests[static_cast<std::size_t>(p)].push_back(queries[q]);
    positions[static_cast<std::size_t>(p)].push_back(q);
  }
  auto incoming = ctx.alltoallv(std::move(requests));

  // Phase 2: answer from the local page and send replies back.
  const dist::Index lo = page_width_ * ctx.rank();
  std::vector<std::vector<int>> replies(static_cast<std::size_t>(np));
  for (int s = 0; s < np; ++s) {
    auto& qs = incoming[static_cast<std::size_t>(s)];
    auto& rs = replies[static_cast<std::size_t>(s)];
    rs.reserve(qs.size());
    for (dist::Index i : qs) {
      rs.push_back(page_.at(static_cast<std::size_t>(i - lo)));
    }
  }
  auto answers = ctx.alltoallv(std::move(replies));

  std::vector<int> out(queries.size(), -1);
  for (int p = 0; p < np; ++p) {
    const auto& pos = positions[static_cast<std::size_t>(p)];
    const auto& ans = answers[static_cast<std::size_t>(p)];
    if (ans.size() != pos.size()) {
      throw std::runtime_error("TranslationTable: reply size mismatch");
    }
    for (std::size_t k = 0; k < pos.size(); ++k) out[pos[k]] = ans[k];
  }
  return out;
}

}  // namespace vf::parti
