#include "vf/parti/schedule.hpp"

#include <unordered_map>

namespace vf::parti {

Schedule::Schedule(msg::Context& ctx, const dist::Distribution& target,
                   std::vector<dist::IndexVec> points) {
  const int np = ctx.nprocs();
  const int me = ctx.rank();
  n_points_ = points.size();
  occ_positions_.resize(static_cast<std::size_t>(np));
  occ_unique_index_.resize(static_cast<std::size_t>(np));
  serve_counts_.assign(static_cast<std::size_t>(np), 0);
  serve_unique_.resize(static_cast<std::size_t>(np));

  const dist::IndexDomain& dom = target.domain();

  // Group this rank's requests by owner and deduplicate per owner, in
  // order of first occurrence.  Only the unique linear ids travel.
  std::vector<std::vector<dist::Index>> unique_ids(
      static_cast<std::size_t>(np));
  std::vector<std::unordered_map<dist::Index, std::size_t>> uniq(
      static_cast<std::size_t>(np));
  for (std::size_t k = 0; k < points.size(); ++k) {
    const dist::IndexVec& pt = points[k];
    const int p = target.owner_rank(pt);
    if (p == me) {
      local_points_.push_back(pt);
      local_positions_.push_back(k);
      continue;
    }
    const auto up = static_cast<std::size_t>(p);
    const dist::Index lin = dom.linearize(pt);
    auto [it, inserted] = uniq[up].try_emplace(lin, uniq[up].size());
    if (inserted) unique_ids[up].push_back(lin);
    occ_positions_[up].push_back(k);
    occ_unique_index_[up].push_back(it->second);
  }
  for (std::size_t p = 0; p < uniq.size(); ++p) {
    serve_counts_[p] = unique_ids[p].size();
    n_unique_offproc_ += unique_ids[p].size();
  }

  // Inspector exchange: ship the unique request lists to the owners.
  auto incoming = ctx.alltoallv(std::move(unique_ids));
  for (int s = 0; s < np; ++s) {
    const auto us = static_cast<std::size_t>(s);
    serve_unique_[us].reserve(incoming[us].size());
    for (dist::Index lin : incoming[us]) {
      serve_unique_[us].push_back(dom.delinearize(lin));
    }
  }
}

}  // namespace vf::parti
